module regconn

go 1.22
