package regconn

import (
	"context"
	"reflect"
	"testing"

	"regconn/internal/bench"
)

// arenaArchs covers all five register backends at a pressured operating
// point, so the arena-vs-fresh comparison exercises every scheme's machine
// shape (spill's core-only file, rc's extended file, unlimited's grown
// file, portreduce's port hazard, chain's forwarding marks).
func arenaArchs() []Arch {
	base := Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Verify: true}
	spill, rc, unl, ports, chain := base, base, base, base, base
	spill.Mode = WithoutRC
	rc.Mode, rc.CombineConnects = WithRC, true
	unl.Mode = Unlimited
	ports.Backend = "portreduce"
	chain.Backend = "chain"
	return []Arch{spill, rc, unl, ports, chain}
}

// TestArenaMatchesFreshRun: for every backend, a run on a reused Arena must
// be bit-identical to Executable.Run on a fresh machine — same cycles, same
// ledger, same telemetry — including when the arena is hopping between
// executables of different shapes.
func TestArenaMatchesFreshRun(t *testing.T) {
	bm, err := bench.ByName("cmp")
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	for _, arch := range arenaArchs() {
		be, err := arch.resolveBackend()
		if err != nil {
			t.Fatal(err)
		}
		name := be.Name()
		ex, err := Build(bm.Build(), arch)
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		fresh, err := ex.Run()
		if err != nil {
			t.Fatalf("%s: fresh run: %v", name, err)
		}
		for rep := 0; rep < 2; rep++ {
			got, err := arena.VerifyContext(context.Background(), ex)
			if err != nil {
				t.Fatalf("%s rep %d: arena run: %v", name, rep, err)
			}
			a, b := *fresh, *got
			a.Mem, b.Mem = nil, nil // images are distinct objects; contents checked by VerifyContext
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s rep %d: arena result diverges from fresh run:\nfresh: %+v\narena: %+v",
					name, rep, a, b)
			}
			if !reflect.DeepEqual(fresh.Stats(), got.Stats()) {
				t.Errorf("%s rep %d: exported stats diverge", name, rep)
			}
		}
	}
}

// TestArenaStatsSurviveReuse: statistics exported from an arena result must
// stay valid after the arena is reused for a different point — the aliasing
// contract of DESIGN.md §13 (Result.Stats deep-copies what it exports).
func TestArenaStatsSurviveReuse(t *testing.T) {
	bm, err := bench.ByName("cmp")
	if err != nil {
		t.Fatal(err)
	}
	archs := arenaArchs()
	rc, spill := archs[1], archs[0]
	exRC, err := Build(bm.Build(), rc)
	if err != nil {
		t.Fatal(err)
	}
	exSpill, err := Build(bm.Build(), spill)
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	res, err := arena.Run(exRC)
	if err != nil {
		t.Fatal(err)
	}
	saved := res.Stats()
	if _, err := arena.Run(exSpill); err != nil { // overwrites the arena
		t.Fatal(err)
	}
	fresh, err := exRC.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(saved, fresh.Stats()) {
		t.Error("stats exported before arena reuse were corrupted by the next run")
	}
}

// TestArenaRunProcesses: the multiprogrammed path through a reused arena
// must match the one-shot RunProcesses run for run.
func TestArenaRunProcesses(t *testing.T) {
	bm, err := bench.ByName("cmp")
	if err != nil {
		t.Fatal(err)
	}
	arch := arenaArchs()[1] // rc
	exes := make([]*Executable, 2)
	for i := range exes {
		ex, err := Build(bm.Build(), arch)
		if err != nil {
			t.Fatal(err)
		}
		exes[i] = ex
	}
	fresh, err := RunProcesses(exes, 500, FullSave)
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	// A single-process run first, so the multi path reuses dirty state.
	if _, err := arena.Run(exes[0]); err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		got, err := arena.RunProcesses(context.Background(), exes, 500, FullSave)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if got.Switches != fresh.Switches || got.SwitchCycles != fresh.SwitchCycles ||
			got.Cycles != fresh.Cycles {
			t.Fatalf("rep %d: scheduler diverges: %d/%d/%d vs %d/%d/%d", rep,
				got.Switches, got.SwitchCycles, got.Cycles,
				fresh.Switches, fresh.SwitchCycles, fresh.Cycles)
		}
		for p := range exes {
			a, b := *fresh.Results[p], *got.Results[p]
			a.Mem, b.Mem = nil, nil
			if !reflect.DeepEqual(a, b) {
				t.Errorf("rep %d: process %d result diverges", rep, p)
			}
		}
		if !reflect.DeepEqual(fresh.MapInt, got.MapInt) || !reflect.DeepEqual(fresh.MapFP, got.MapFP) {
			t.Errorf("rep %d: shared map telemetry diverges", rep)
		}
	}
}

// BenchmarkArenaRun times repeated simulation of a prebuilt executable on
// one arena — the batch-sweep hot path (compare with BenchmarkRunProfilingOff,
// which reallocates the machine per run). Run under -benchmem this pins the
// steady-state allocation behavior at the facade level.
func BenchmarkArenaRun(b *testing.B) {
	bm, err := bench.ByName("cmp")
	if err != nil {
		b.Fatal(err)
	}
	arch := Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32,
		Mode: WithRC, CombineConnects: true}
	ex, err := Build(bm.Build(), arch)
	if err != nil {
		b.Fatal(err)
	}
	arena := NewArena()
	if _, err := arena.Run(ex); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arena.Run(ex); err != nil {
			b.Fatal(err)
		}
	}
}
