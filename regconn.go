// Package regconn is the public entry point of the Register Connection
// reproduction (Kiyohara et al., ISCA 1993). It wires the full pipeline —
//
//	IR → classical optimization → profiling → ILP transformation →
//	register allocation (unlimited / spill / RC) → code generation with
//	connect insertion → list scheduling → execution-driven simulation —
//
// behind two calls: Build compiles a program for an architecture
// configuration, and Executable.Run simulates it. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for the reproduced results.
package regconn

import (
	"context"
	"fmt"
	"io"

	"regconn/internal/abi"
	"regconn/internal/analysis"
	"regconn/internal/backend"
	"regconn/internal/codegen"
	"regconn/internal/core"
	"regconn/internal/ilp"
	"regconn/internal/interp"
	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/machine"
	"regconn/internal/mapcheck"
	"regconn/internal/mem"
	"regconn/internal/opt"
	"regconn/internal/regalloc"
	"regconn/internal/sched"
)

// RegMode selects the register model of an experiment. It is a thin
// compatibility alias for backend.ID: every per-scheme decision lives in
// the internal/backend registry, and String() renders the registered
// backend's display name.
type RegMode = backend.ID

const (
	// Unlimited gives every virtual register its own physical register
	// (the paper's idealized dotted lines and the 1-issue baseline).
	Unlimited = backend.Unlimited
	// WithoutRC uses only the core registers and spills the rest.
	WithoutRC = backend.WithoutRC
	// WithRC extends the core with connect-accessed extended registers
	// for a 256-register total file (paper §5.2).
	WithRC = backend.WithRC
	// PortReduce exposes the whole file directly but models a reduced
	// register-file read-port count as an issue-stage structural hazard
	// (arXiv 2502.00147).
	PortReduce = backend.PortReduce
	// Chain forwards single-use producer values to the next instruction,
	// eliding the register-file write/read pair (arXiv 2503.20609).
	Chain = backend.Chain
)

// TotalRegs is the full physical register file size under RC (paper §5.2:
// "the register file is assumed to contain a total of 256 registers").
const TotalRegs = backend.TotalRegs

// Arch is one experimental configuration: the paper's axes plus the
// compiler knobs needed for the ablations.
type Arch struct {
	Issue       int // instructions per cycle: 1, 2, 4, 8
	MemChannels int // memory channels (0 = paper default for the issue rate)
	LoadLatency int // 2 or 4 cycles

	IntCore int // core integer registers (8..64)
	FPCore  int // core floating-point registers (16..128)

	Mode  RegMode
	Model core.Model // RC automatic-reset model (default: model 3)

	// Backend selects the register architecture by registry name
	// ("rc", "spill", "unlimited", "portreduce", "chain"); when set it
	// takes precedence over Mode. Empty for the three legacy modes keeps
	// serialized configurations (rcserve canonical point keys)
	// byte-identical with pre-backend builds.
	Backend string `json:",omitempty"`

	// ReadPorts is the register-file read-port count for the portreduce
	// backend (0 = the issue rate).
	ReadPorts int `json:",omitempty"`

	ConnectLatency   int  // 0 or 1 (Figure 12)
	ExtraDecodeStage bool // Figure 12
	CombineConnects  bool // two-pair connect instructions (paper footnote 1)

	// Windows selects the connect-window policy (§3 map-entry selection;
	// see the "windows" ablation). Zero value = LRU.
	Windows WindowPolicy

	// ExpandAccumulators enables accumulator variable expansion: each
	// unrolled copy reduces into its own partial, merged at loop exits.
	// Raises ILP for reduction chains but also register pressure (see the
	// "accum" ablation); off by default, as the tradeoff is negative at
	// the paper's 16/32-register operating point.
	ExpandAccumulators bool

	// ScalarOnly disables the ILP transformations (the baseline
	// "conventional compiler scalar optimizations" of §5.3).
	ScalarOnly bool
	// NoSchedule disables list scheduling (diagnostics).
	NoSchedule bool

	// Verify runs the static map-state verifier (internal/mapcheck, the
	// rclint pass) on the scheduled machine code and fails the build on
	// any violation. All tests enable it; it is off by default only to
	// keep experiment sweeps at full speed.
	Verify bool

	// Trap enables periodic interrupts or context switches and selects
	// the operating-system strategy for RC state (§4.2–4.3). The
	// ProgramUsesRC bit is set automatically from Mode.
	Trap TrapConfig

	// Profile enables per-static-instruction cycle attribution: the run's
	// Result carries a machine.PCProf that internal/prof rolls up to
	// functions, basic blocks, and virtual registers (cmd/rcprof). It has
	// no effect on simulated timing or architectural results.
	Profile bool

	// MemSize is the simulated memory image size in bytes (0 = the
	// default 16 MiB). Programs whose data or stack exceed it fail with a
	// guest memory fault (*machine.RuntimeError), which makes small sizes
	// useful for exercising fault paths end to end.
	MemSize int64
}

// DefaultMemChannels returns the paper's channel count for an issue rate:
// two channels for 1/2/4-issue, four for 8-issue (§5.2).
func DefaultMemChannels(issue int) int {
	if issue >= 8 {
		return 4
	}
	return 2
}

// Baseline returns the speedup denominator configuration of §5.3: a
// single-issue processor with unlimited registers and conventional scalar
// optimization.
func Baseline() Arch {
	return Arch{Issue: 1, LoadLatency: 2, Mode: Unlimited, ScalarOnly: true}
}

func (a Arch) normalize() Arch {
	if a.MemChannels == 0 {
		a.MemChannels = DefaultMemChannels(a.Issue)
	}
	if a.LoadLatency == 0 {
		a.LoadLatency = 2
	}
	if a.IntCore == 0 {
		a.IntCore = 64
	}
	if a.FPCore == 0 {
		a.FPCore = 64
	}
	if !a.Model.Valid() {
		a.Model = core.WriteResetReadUpdate
	}
	return a
}

// resolveBackend resolves the architecture's register scheme through the
// backend registry: a non-empty Backend name wins, otherwise the legacy
// Mode value. Unknown names and unknown mode values both error (listing
// the registered names) instead of silently falling back to spilling.
func (a Arch) resolveBackend() (backend.Backend, error) {
	if a.Backend != "" {
		return backend.ByName(a.Backend)
	}
	return backend.ByID(a.Mode)
}

// Canonical normalizes the backend identification of the architecture so
// equivalent configurations serialize identically: the three legacy modes
// keep Backend empty (byte-compatible with pre-backend point keys), newer
// backends carry their registry name with Mode set to the matching ID. An
// unresolvable configuration is returned unchanged (Build will reject it).
func (a Arch) Canonical() Arch {
	be, err := a.resolveBackend()
	if err != nil {
		return a
	}
	a.Mode = be.ID()
	if be.ID() <= WithRC {
		a.Backend = ""
	} else {
		a.Backend = be.Name()
	}
	return a
}

// Executable is a compiled program bound to a machine configuration.
type Executable struct {
	Arch   Arch
	Image  *machine.Image
	MProg  *codegen.MProg
	Alloc  *regalloc.ProgramAssignment
	Golden *interp.Result // interpreter run of the final IR (oracle + profile)

	// Static code-size statistics (Figure 9): instruction counts before
	// and after register allocation, split by cause.
	PreAllocSize    int
	PostAllocSize   int
	SpillInstrs     int
	ConnectInstrs   int
	SaveRestoreExts int

	machineIntTotal, machineFPTotal int
	be                              backend.Backend
	bp                              backend.Params
}

// CodeGrowth returns the fractional code-size increase due to register
// allocation — the Figure 9 metric. It counts exactly the instructions
// allocation inserted (spill loads/stores, connects, extended-register
// save/restore around calls), not the fixed calling-convention expansion,
// relative to the pre-allocation instruction count.
func (e *Executable) CodeGrowth() float64 {
	if e.PreAllocSize == 0 {
		return 0
	}
	return float64(e.SpillInstrs+e.ConnectInstrs+e.SaveRestoreExts) / float64(e.PreAllocSize)
}

// SaveRestoreGrowth returns the fraction of code growth attributable to
// extended-register save/restore (the black portion of Figure 9's bars).
func (e *Executable) SaveRestoreGrowth() float64 {
	if e.PreAllocSize == 0 {
		return 0
	}
	return float64(e.SaveRestoreExts) / float64(e.PreAllocSize)
}

// Build compiles the program for the architecture. The input program is
// never mutated: compilation (which optimizes and profiles IR in place)
// works on a deep copy, so one constructed program can be built under many
// architectures — the fuzz oracle and the workload generator both rely on
// this.
func Build(p *ir.Program, arch Arch) (*Executable, error) {
	arch = arch.normalize()
	// Reject a non-positive issue rate here rather than letting the list
	// scheduler spin forever on a machine that can never issue (the
	// simulator's own config check comes too late to help).
	if arch.Issue <= 0 {
		return nil, fmt.Errorf("regconn: invalid issue rate %d", arch.Issue)
	}
	be, err := arch.resolveBackend()
	if err != nil {
		return nil, fmt.Errorf("regconn: %w", err)
	}
	bp := backend.Params{
		Issue:           arch.Issue,
		IntCore:         arch.IntCore,
		FPCore:          arch.FPCore,
		TotalRegs:       TotalRegs,
		Model:           arch.Model,
		ConnectLatency:  arch.ConnectLatency,
		CombineConnects: arch.CombineConnects,
		Windows:         arch.Windows,
		ReadPorts:       arch.ReadPorts,
	}
	if err := ir.Verify(p); err != nil {
		return nil, fmt.Errorf("regconn: verify: %w", err)
	}
	for _, f := range p.Funcs {
		if err := analysis.CheckDefiniteAssignment(f); err != nil {
			return nil, fmt.Errorf("regconn: %w", err)
		}
	}

	// 1. Classical optimization (always on — §5.1: all benchmarks get
	// full classical optimization). From here on every pass rewrites IR
	// in place, so work on a private deep copy: the caller's program
	// stays byte-identical however many times it is built.
	p = ir.Clone(p)
	opt.Classical(p)

	// 2. ILP transformation sized to the issue rate, guided by a
	// trip-count profile (low-trip loops are not worth unrolling).
	if !arch.ScalarOnly {
		interp.ClearProfile(p)
		if _, err := interp.Run(p, "main", nil, interp.Options{Profile: true}); err != nil {
			return nil, fmt.Errorf("regconn: pre-ILP profiling run: %w", err)
		}
		ilp.Transform(p, ilp.UnrollFactorFor(arch.Issue), arch.ExpandAccumulators)
	}

	// 3. Re-profile the final IR: allocator priorities, branch
	// prediction, and the correctness oracle all come from this run.
	interp.ClearProfile(p)
	golden, err := interp.Run(p, "main", nil, interp.Options{Profile: true})
	if err != nil {
		return nil, fmt.Errorf("regconn: profiling run: %w", err)
	}

	// 4. Register allocation. The backend shapes the file and selects the
	// allocation strategy.
	file := be.File(bp)
	intTotal, fpTotal := file.IntTotal, file.FPTotal
	conv := abi.New(arch.IntCore, intTotal, arch.FPCore, fpTotal)
	// The prepass-overlap window scales with the scheduler's reach: wider
	// machines keep more instructions in flight (see regalloc.Allocate).
	pa := regalloc.Allocate(p, be.AllocMode(), conv, 6*arch.Issue)
	if file.GrowToDemand {
		intTotal, fpTotal = pa.NeedInt, pa.NeedFP
		if intTotal < arch.IntCore {
			intTotal = arch.IntCore
		}
		if fpTotal < arch.FPCore {
			fpTotal = arch.FPCore
		}
	}

	// 5. Code generation.
	preSize := 0
	for _, f := range p.Funcs {
		preSize += f.NumInstrs()
	}
	ccfg := be.Codegen(bp)
	ccfg.Conv = conv
	mp, err := codegen.Lower(p, pa, ccfg)
	if err != nil {
		return nil, fmt.Errorf("regconn: %w", err)
	}

	ex := &Executable{
		Arch:         arch,
		MProg:        mp,
		Alloc:        pa,
		Golden:       golden,
		PreAllocSize: preSize,
	}
	for _, f := range mp.Funcs {
		if f.Name == mp.Entry {
			continue
		}
		ex.PostAllocSize += len(f.Code)
		ex.SpillInstrs += f.SpillCount
		ex.ConnectInstrs += f.ConnectCount
		ex.SaveRestoreExts += f.SaveRestoreCount
	}

	// 6. List scheduling.
	if !arch.NoSchedule {
		scfg := sched.Config{
			Issue:          arch.Issue,
			MemChannels:    arch.MemChannels,
			Lat:            isa.DefaultLatencies(arch.LoadLatency),
			Conv:           conv,
			ConnectLatency: arch.ConnectLatency,
		}
		scfg = be.Sched(bp, scfg)
		scfg.Lat.Connect = arch.ConnectLatency
		for _, f := range mp.Funcs {
			sched.Schedule(f, scfg)
		}
	}

	// 6b. Backend finishing pass (post-schedule annotation passes such as
	// chain marking). Runs in the NoSchedule path too, so diagnostics see
	// the same annotations the scheduled build carries.
	if err := be.Finish(mp, bp); err != nil {
		return nil, fmt.Errorf("regconn: %w", err)
	}

	// 7. Static map-state verification (rclint). Runs after scheduling so
	// it checks the code the machine will actually execute.
	if arch.Verify {
		if err := mapcheck.Check(mp); err != nil {
			return nil, fmt.Errorf("regconn: %w", err)
		}
	}

	img, err := machine.Load(mp)
	if err != nil {
		return nil, fmt.Errorf("regconn: %w", err)
	}
	ex.Image = img
	ex.Arch.IntCore, ex.Arch.FPCore = arch.IntCore, arch.FPCore
	// Stash machine totals and the resolved backend for Run.
	ex.machineIntTotal, ex.machineFPTotal = intTotal, fpTotal
	ex.be, ex.bp = be, bp
	return ex, nil
}

// MapCheck runs the static map-state verifier over the compiled program
// and returns its findings (empty for a correct compilation). Build with
// Arch.Verify already runs this and fails on violations; MapCheck exposes
// the raw findings for tools (cmd/rclint) and for mutation tests that
// corrupt a program and expect precise rejections.
func (e *Executable) MapCheck() []mapcheck.Violation {
	return mapcheck.Verify(e.MProg)
}

// machineConfig translates the architecture into the simulator's
// configuration — the single point where the Arch → machine.Config mapping
// lives, shared by Run, RunWithTrace, RunWithEvents, and RunProcesses.
func (e *Executable) machineConfig() machine.Config {
	a := e.Arch
	lat := isa.DefaultLatencies(a.LoadLatency)
	lat.Connect = a.ConnectLatency
	trap := a.Trap
	trap.ProgramUsesRC = e.be.UsesRC()
	cfg := machine.Config{
		IssueRate:        a.Issue,
		MemChannels:      a.MemChannels,
		Lat:              lat,
		Trap:             trap,
		IntCore:          maxInt(a.IntCore, 0),
		IntTotal:         e.machineIntTotal,
		FPCore:           a.FPCore,
		FPTotal:          e.machineFPTotal,
		Model:            a.Model,
		ConnectLatency:   a.ConnectLatency,
		ExtraDecodeStage: a.ExtraDecodeStage,
		Prof:             a.Profile,
		MemSize:          a.MemSize,
	}
	// The backend owns the scheme-specific knobs: the identity map of the
	// unlimited machine, the spill machine's core-only file, portreduce's
	// read-port hazard, chain's forwarding marks.
	return e.be.Machine(e.bp, cfg)
}

// Run simulates the executable and returns the machine result.
func (e *Executable) Run() (*machine.Result, error) {
	return e.RunContext(context.Background())
}

// RunContext simulates the executable under ctx: cancellation or deadline
// expiry stops the cycle loop within machine.RunContext's poll stride and
// surfaces as an error wrapping both machine.ErrCanceled and the context's
// own error.
func (e *Executable) RunContext(ctx context.Context) (*machine.Result, error) {
	return machine.RunContext(ctx, e.Image, e.machineConfig())
}

// RunWithTrace simulates with a per-cycle issue trace written to w for the
// first cycles cycles (0 = unlimited).
func (e *Executable) RunWithTrace(w io.Writer, cycles int64) (*machine.Result, error) {
	cfg := e.machineConfig()
	cfg.Trace = w
	cfg.TraceCycles = cycles
	return machine.Run(e.Image, cfg)
}

// RunWithEvents simulates with the structured event trace enabled: the
// pipeline records issues, stalls, connects, map resets, and traps into
// ring (most recent window when the ring fills). Render the result with
// ring.WriteTraceJSON for chrome://tracing / Perfetto.
func (e *Executable) RunWithEvents(ring *machine.EventRing) (*machine.Result, error) {
	cfg := e.machineConfig()
	cfg.Events = ring
	return machine.Run(e.Image, cfg)
}

// MultiResult reports a multiprogrammed run (see RunProcesses).
type MultiResult = machine.MultiResult

// Context-switch save strategies for RunProcesses (paper §4.2): FullSave
// preserves extended registers and connection state; CoreOnlySave models a
// pre-RC operating system and corrupts RC-extended processes.
const (
	FullSave     = machine.FullSave
	CoreOnlySave = machine.CoreOnlySave
)

// processImages validates that the executables target one architecture and
// returns their images with the shared machine configuration — the common
// preparation of RunProcesses and Arena.RunProcesses.
func processImages(exes []*Executable) ([]*machine.Image, machine.Config, error) {
	if len(exes) == 0 {
		return nil, machine.Config{}, fmt.Errorf("regconn: no processes")
	}
	imgs := make([]*machine.Image, len(exes))
	for i, e := range exes {
		if e.Arch.Issue != exes[0].Arch.Issue || e.Arch.IntCore != exes[0].Arch.IntCore ||
			e.Arch.FPCore != exes[0].Arch.FPCore {
			return nil, machine.Config{}, fmt.Errorf("regconn: process %d targets a different architecture", i)
		}
		imgs[i] = e.Image
	}
	cfg := exes[0].machineConfig()
	// The quantum-driven switch machinery replaces the trap model.
	cfg.Trap = machine.TrapConfig{}
	return imgs, cfg, nil
}

// RunProcesses time-shares the executables on one machine with the given
// quantum, context-switching under the chosen save mode. All executables
// must target the same architecture (the first one's machine configuration
// is used).
func RunProcesses(exes []*Executable, quantum int64, mode machine.SaveMode) (*MultiResult, error) {
	imgs, cfg, err := processImages(exes)
	if err != nil {
		return nil, err
	}
	return machine.RunMultiprogrammed(imgs, cfg, quantum, mode)
}

// Verify runs the executable and checks its architectural results against
// the interpreter oracle: main's return value and the final contents of
// the global data section must match exactly.
func (e *Executable) Verify() (*machine.Result, error) {
	return e.VerifyContext(context.Background())
}

// VerifyContext is Verify under a cancelable context (see RunContext).
func (e *Executable) VerifyContext(ctx context.Context) (*machine.Result, error) {
	res, err := e.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return res, e.checkOracle(res)
}

// checkOracle compares a machine result against the interpreter oracle:
// main's return value and the final contents of the global data section
// must match exactly. Shared by the one-shot and arena verify paths.
func (e *Executable) checkOracle(res *machine.Result) error {
	if res.RetInt != e.Golden.Ret {
		return fmt.Errorf("regconn: result mismatch: machine %d, interpreter %d", res.RetInt, e.Golden.Ret)
	}
	p := e.MProg.IR
	end := e.Golden.Layout.DataEnd(p)
	for addr := int64(mem.GlobalBase); addr < end; addr += 8 {
		if got, want := res.Mem.LoadI(addr), e.Golden.Mem.LoadI(addr); got != want {
			return fmt.Errorf("regconn: memory mismatch at %#x: machine %d, interpreter %d", addr, got, want)
		}
	}
	return nil
}

// Arena is a reusable simulation arena: it wraps a machine.Machine so that
// running many executables — a sweep of architecture points over one
// benchmark, or many benchmarks back to back — reuses one set of simulator
// allocations instead of paying them per run. Build once, then run the
// executables through the arena:
//
//	arena := regconn.NewArena()
//	for _, e := range exes {
//		res, err := arena.Run(e)
//		// use res before the next arena.Run / copy via res.Stats()
//	}
//
// Results returned by an Arena alias its internal state and are valid only
// until the arena's next run; Result.Stats() deep-copies everything it
// exports and is the way to keep data across runs. An Arena is not safe
// for concurrent use — pool arenas for parallel sweeps (internal/exp does).
type Arena struct {
	m *machine.Machine
}

// NewArena returns an empty arena; the first run sizes it.
func NewArena() *Arena { return &Arena{m: machine.NewMachine()} }

// Run simulates the executable on the arena (see Arena's aliasing rules).
func (a *Arena) Run(e *Executable) (*machine.Result, error) {
	return a.RunContext(context.Background(), e)
}

// RunContext simulates the executable on the arena under ctx, with
// Executable.RunContext's cancellation semantics.
func (a *Arena) RunContext(ctx context.Context, e *Executable) (*machine.Result, error) {
	if err := a.m.Reset(e.Image, e.machineConfig()); err != nil {
		return nil, err
	}
	return a.m.RunContext(ctx)
}

// VerifyContext runs the executable on the arena and checks it against the
// interpreter oracle, exactly like Executable.VerifyContext.
func (a *Arena) VerifyContext(ctx context.Context, e *Executable) (*machine.Result, error) {
	res, err := a.RunContext(ctx, e)
	if err != nil {
		return nil, err
	}
	return res, e.checkOracle(res)
}

// RunProcesses is RunProcesses on the arena: the multiprogrammed machinery
// (per-process pipelines, PCBs, the shared register file) is reused across
// calls like the single-process state.
func (a *Arena) RunProcesses(ctx context.Context, exes []*Executable, quantum int64, mode machine.SaveMode) (*MultiResult, error) {
	imgs, cfg, err := processImages(exes)
	if err != nil {
		return nil, err
	}
	return a.m.RunMultiprogrammedContext(ctx, imgs, cfg, quantum, mode)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
