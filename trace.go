package regconn

import (
	"encoding/json"
	"fmt"

	"regconn/internal/workload"
)

// Trace records the executable into a replayable workload trace: the
// linked code and annotations, the exact simulator configuration, the
// globals' initial data, and the recorded outcome. The executable is
// verified first — one simulation checked against the interpreter oracle —
// so a trace is only ever written for a run the oracle has already proven,
// and the recorded cycle count pins the simulator's determinism for every
// future replay. name is the workload name embedded in the trace (the
// benchmark or gen/<profile>/<seed> name).
func (e *Executable) Trace(name string) (*workload.Trace, error) {
	res, err := e.Verify()
	if err != nil {
		return nil, fmt.Errorf("regconn: trace %s: %w", name, err)
	}
	archJSON, err := json.Marshal(e.Arch.Canonical())
	if err != nil {
		return nil, fmt.Errorf("regconn: trace %s: %w", name, err)
	}
	cfg := e.machineConfig()
	cfg.Trace, cfg.TraceCycles, cfg.Events, cfg.Prof = nil, 0, nil, false
	p := e.MProg.IR
	globals := make([]workload.TraceGlobal, 0, len(p.Globals))
	for _, g := range p.Globals {
		globals = append(globals, workload.TraceGlobal{
			Name:  g.Name,
			Size:  g.Size,
			InitI: g.InitI,
			InitF: g.InitF,
		})
	}
	return &workload.Trace{
		Name:      name,
		Arch:      archJSON,
		Config:    cfg,
		Entry:     e.MProg.Entry,
		EntryPC:   e.Image.Entry,
		Code:      e.Image.Code,
		Ann:       e.Image.Ann,
		FuncStart: e.Image.FuncStart,
		Globals:   globals,
		Expect:    e.Golden.Ret,
		MemSum:    workload.DataDigest(e.Golden.Mem, e.Golden.Layout.DataEnd(p)),
		Cycles:    res.Cycles,
		Instrs:    res.Instrs,
	}, nil
}
