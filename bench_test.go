// Benchmark harness: one testing.B benchmark per reproduced table and
// figure. Each iteration regenerates the experiment end to end (compile,
// simulate, verify) on the reduced three-benchmark suite so that
// `go test -bench=.` finishes in minutes; the full-suite numbers in
// EXPERIMENTS.md come from `go run ./cmd/rcexp`. Custom metrics report the
// experiment's headline number (geometric-mean speedup or percent growth)
// so regressions in reproduced *results*, not just runtime, are visible.
package regconn_test

import (
	"testing"

	"regconn"
	"regconn/internal/exp"
)

func archDefault() regconn.Arch {
	return regconn.Arch{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32,
		Mode: regconn.WithRC, CombineConnects: true, Verify: true}
}

// lastVals returns the summary (geomean) row of a table.
func lastVals(t *exp.Table) []float64 {
	return t.Rows[len(t.Rows)-1].Vals
}

func benchExperiment(b *testing.B, id string, metric func([]*exp.Table) (string, float64)) {
	for i := 0; i < b.N; i++ {
		r := exp.NewQuickRunner() // fresh: no memoized results
		tables, err := r.Generate(id)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && metric != nil {
			name, v := metric(tables)
			b.ReportMetric(v, name)
		}
	}
}

func BenchmarkTable1Latencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.Table1()
		if len(t.Rows) != 10 {
			b.Fatal("table 1 shape")
		}
	}
}

func BenchmarkFig7UnlimitedSpeedup(b *testing.B) {
	benchExperiment(b, "fig7", func(ts []*exp.Table) (string, float64) {
		return "geomean-8issue-speedup", lastVals(ts[0])[3]
	})
}

func BenchmarkFig8CoreSweep(b *testing.B) {
	benchExperiment(b, "fig8", func(ts []*exp.Table) (string, float64) {
		// headline: with-RC speedup at the smallest core of the first
		// benchmark's table.
		return "withRC-smallest-core-speedup", ts[0].Rows[0].Vals[1]
	})
}

func BenchmarkFig9CodeGrowth(b *testing.B) {
	benchExperiment(b, "fig9", func(ts []*exp.Table) (string, float64) {
		return "withRC-growth-pct", ts[0].Rows[0].Vals[1]
	})
}

func BenchmarkFig10IssueSweepLoad2(b *testing.B) {
	benchExperiment(b, "fig10", func(ts []*exp.Table) (string, float64) {
		return "geomean-8issue-RC-speedup", lastVals(ts[0])[5]
	})
}

func BenchmarkFig11IssueSweepLoad4(b *testing.B) {
	benchExperiment(b, "fig11", func(ts []*exp.Table) (string, float64) {
		return "geomean-8issue-RC-speedup", lastVals(ts[0])[5]
	})
}

func BenchmarkFig12ImplementationScenarios(b *testing.B) {
	benchExperiment(b, "fig12", func(ts []*exp.Table) (string, float64) {
		// headline: worst-scenario retention vs the best.
		m := lastVals(ts[0])
		return "worst-vs-best-retention", m[3] / m[0]
	})
}

func BenchmarkFig13MemoryChannels(b *testing.B) {
	benchExperiment(b, "fig13", func(ts []*exp.Table) (string, float64) {
		m := lastVals(ts[0])
		return "RC2ch-over-noRC4ch", m[2] / m[1]
	})
}

func BenchmarkAblationModels(b *testing.B) {
	benchExperiment(b, "models", nil)
}

func BenchmarkAblationCombinedConnects(b *testing.B) {
	benchExperiment(b, "combined", nil)
}

// BenchmarkSimulatorThroughput measures raw simulation speed (machine
// instructions per second) on the largest benchmark, the quantity that
// bounds full-suite experiment time.
func BenchmarkSimulatorThroughput(b *testing.B) {
	r := exp.NewQuickRunner()
	bm := r.Benchmarks[0]
	total := int64(0)
	for i := 0; i < b.N; i++ {
		r := exp.NewQuickRunner()
		res, err := r.Run(bm, archDefault())
		if err != nil {
			b.Fatal(err)
		}
		total += res.Instrs
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "sim-instrs/s")
}
