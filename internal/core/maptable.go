// Package core implements the paper's primary contribution: the register
// mapping table that realizes Register Connection (RC).
//
// The base architecture addresses m registers per class; the extended
// architecture provides n > m physical registers. Every register operand is
// an index into an m-entry mapping table whose entries each hold a *read
// map* and a *write map* (paper §2.1): source operands are redirected
// through the read map, destinations through the write map. The connect
// instructions (§2.2) rewrite map entries; the four automatic-reset models
// (§2.3, Figure 3) additionally adjust the maps as a side effect of every
// register write. CALL/RET reset the table to home locations (§4.1), and an
// enable flag lets trap handlers bypass the table entirely (§4.3).
package core

import "fmt"

// Model selects one of the four automatic register-connection models of
// paper §2.3 (Figure 3). All models alter only the mapping entry of the
// destination index, and only as a side effect of a register write.
type Model uint8

const (
	// NoReset (model 1): the mapping table changes only via explicit
	// connect instructions.
	NoReset Model = iota + 1

	// WriteReset (model 2): after a write through index i, the write map
	// of i resets to the home location. Reading the written value still
	// requires an explicit connect-use.
	WriteReset

	// WriteResetReadUpdate (model 3, the model evaluated in the paper):
	// after a write through index i, the read map of i is set to the old
	// write map (so subsequent reads see the written value) and the write
	// map resets to the home location.
	WriteResetReadUpdate

	// ReadWriteReset (model 4): after a write through index i, both maps
	// of i reset to the home location.
	ReadWriteReset
)

func (m Model) String() string {
	switch m {
	case NoReset:
		return "no-reset"
	case WriteReset:
		return "write-reset"
	case WriteResetReadUpdate:
		return "write-reset+read-update"
	case ReadWriteReset:
		return "read/write-reset"
	}
	return fmt.Sprintf("model(%d)", uint8(m))
}

// Valid reports whether m is one of the four defined models.
func (m Model) Valid() bool { return m >= NoReset && m <= ReadWriteReset }

// Stats is the telemetry of one mapping table: how often each observable
// mutation class occurred over the table's lifetime. Counters describe the
// physical table, not the process using it, so they accumulate across
// context save/restore. GenAdvances is the number of generation-counter
// advances (observable mapping changes) since construction.
//
// The per-index slices break the connect/auto-reset totals down by map
// entry (length m, index = map entry); they are nil when the table saw no
// mutation of that class, so idle tables export compactly. Each slice sums
// to its total counter (enforced by CheckIndexSums and the unit tests).
type Stats struct {
	ConnectUses int64 `json:"connect_uses"` // explicit connect-use instructions
	ConnectDefs int64 `json:"connect_defs"` // explicit connect-def instructions
	AutoResets  int64 `json:"auto_resets"`  // NoteWrite side effects that changed a map entry
	Resets      int64 `json:"resets"`       // Reset calls that found a diverted table
	Restores    int64 `json:"restores"`     // context restores
	GenAdvances int64 `json:"gen_advances"` // observable mapping changes

	ConnectUsesByIndex []int64 `json:"connect_uses_by_index,omitempty"`
	ConnectDefsByIndex []int64 `json:"connect_defs_by_index,omitempty"`
	AutoResetsByIndex  []int64 `json:"auto_resets_by_index,omitempty"`
}

// CheckIndexSums verifies that each per-index breakdown sums exactly to its
// total counter (a nil breakdown stands for all-zero and requires a zero
// total).
func (s Stats) CheckIndexSums() error {
	check := func(name string, total int64, byIdx []int64) error {
		var sum int64
		for _, c := range byIdx {
			sum += c
		}
		if sum != total {
			return fmt.Errorf("core: per-index %s sum %d does not match total %d", name, sum, total)
		}
		return nil
	}
	if err := check("connect-use", s.ConnectUses, s.ConnectUsesByIndex); err != nil {
		return err
	}
	if err := check("connect-def", s.ConnectDefs, s.ConnectDefsByIndex); err != nil {
		return err
	}
	return check("auto-reset", s.AutoResets, s.AutoResetsByIndex)
}

// MapTable is the register mapping table for one register class. The zero
// value is not usable; construct with NewMapTable.
type MapTable struct {
	model   Model
	m       int // addressable indices (core registers)
	n       int // physical registers, n >= m
	read    []uint16
	write   []uint16
	enabled bool
	stats   Stats

	// Per-map-index mutation counters (length m), feeding the Stats
	// breakdowns. Kept separate from stats so the aggregate struct stays
	// cheap to copy.
	usesByIdx []int64
	defsByIdx []int64
	autoByIdx []int64

	// gen counts observable mapping changes: it advances only when a map
	// entry actually changes value or the enable flag flips, so cached
	// physical resolutions stamped with gen stay valid across the automatic
	// resets that leave an at-home table at home (the common case for
	// programs that never connect). off tracks how many map slots are away
	// from their home location, making Reset free when nothing is diverted.
	gen uint64
	off int
}

// NewMapTable returns a table with m addressable indices over n physical
// registers, all entries at their home locations, mapping enabled, using
// the given automatic-reset model. It panics if the geometry is invalid:
// the table is hardware, and a malformed machine is a programming error.
func NewMapTable(model Model, m, n int) *MapTable {
	t := &MapTable{}
	t.Reinit(model, m, n)
	return t
}

// Reinit reinitializes the table in place to exactly the state
// NewMapTable(model, m, n) constructs — all entries at home, mapping
// enabled, generation 1, telemetry zeroed — reusing the existing slice
// capacity when it suffices. It is the allocation-free reset of the
// simulator's run arenas (machine.Machine); like NewMapTable it panics on
// invalid geometry.
func (t *MapTable) Reinit(model Model, m, n int) {
	if !model.Valid() {
		panic(fmt.Sprintf("core: invalid model %d", model))
	}
	if m <= 0 || n < m || n > 1<<16 {
		panic(fmt.Sprintf("core: invalid geometry m=%d n=%d", m, n))
	}
	t.model, t.m, t.n = model, m, n
	t.read = growSlice(t.read, m)
	t.write = growSlice(t.write, m)
	t.usesByIdx = growSlice(t.usesByIdx, m)
	t.defsByIdx = growSlice(t.defsByIdx, m)
	t.autoByIdx = growSlice(t.autoByIdx, m)
	clear(t.usesByIdx)
	clear(t.defsByIdx)
	clear(t.autoByIdx)
	for i := range t.read {
		t.read[i] = uint16(i)
		t.write[i] = uint16(i)
	}
	t.enabled = true
	t.stats = Stats{}
	t.gen = 1
	t.off = 0
}

// growSlice returns s resized to length n, reusing its backing array when
// the capacity allows (contents are then stale — callers reinitialize).
func growSlice[E uint16 | int64](s []E, n int) []E {
	if cap(s) < n {
		return make([]E, n)
	}
	return s[:n]
}

// Gen returns the table's generation counter. It changes exactly when a
// resolution through the table could change: a map entry taking a new
// value, a reset of a diverted table, a context restore, or an enable-flag
// flip. Callers may cache ReadPhys/WritePhys results stamped with Gen and
// revalidate with a single comparison.
func (t *MapTable) Gen() uint64 { return t.gen }

// Stats returns the table's accumulated mutation telemetry. The per-index
// breakdowns are copied snapshots and are nil when their total is zero.
func (t *MapTable) Stats() Stats {
	s := t.stats
	s.GenAdvances = int64(t.gen - 1) // gen starts at 1
	if s.ConnectUses > 0 {
		s.ConnectUsesByIndex = append([]int64(nil), t.usesByIdx...)
	}
	if s.ConnectDefs > 0 {
		s.ConnectDefsByIndex = append([]int64(nil), t.defsByIdx...)
	}
	if s.AutoResets > 0 {
		s.AutoResetsByIndex = append([]int64(nil), t.autoByIdx...)
	}
	return s
}

// StatsInto writes the table's telemetry into dst, reusing dst's existing
// breakdown slices when their capacity suffices — the allocation-free
// variant of Stats for the simulator's run arenas. The result is
// value-identical to Stats(): breakdowns are nil when their total is zero.
// dst's breakdowns must not alias another table's live counters.
func (t *MapTable) StatsInto(dst *Stats) {
	uses, defs, auto := dst.ConnectUsesByIndex, dst.ConnectDefsByIndex, dst.AutoResetsByIndex
	*dst = t.stats
	dst.GenAdvances = int64(t.gen - 1) // gen starts at 1
	dst.ConnectUsesByIndex, dst.ConnectDefsByIndex, dst.AutoResetsByIndex = nil, nil, nil
	if dst.ConnectUses > 0 {
		dst.ConnectUsesByIndex = append(uses[:0], t.usesByIdx...)
	}
	if dst.ConnectDefs > 0 {
		dst.ConnectDefsByIndex = append(defs[:0], t.defsByIdx...)
	}
	if dst.AutoResets > 0 {
		dst.AutoResetsByIndex = append(auto[:0], t.autoByIdx...)
	}
}

// Clone returns a deep copy of the stats: the breakdown slices are copied,
// so the clone stays valid after the source (possibly an arena-owned
// scratch) is overwritten by a later run.
func (s Stats) Clone() Stats {
	if s.ConnectUsesByIndex != nil {
		s.ConnectUsesByIndex = append([]int64(nil), s.ConnectUsesByIndex...)
	}
	if s.ConnectDefsByIndex != nil {
		s.ConnectDefsByIndex = append([]int64(nil), s.ConnectDefsByIndex...)
	}
	if s.AutoResetsByIndex != nil {
		s.AutoResetsByIndex = append([]int64(nil), s.AutoResetsByIndex...)
	}
	return s
}

// setRead and setWrite route every map mutation through one place so the
// generation counter and off-home count stay exact.
func (t *MapTable) setRead(idx int, phys uint16) {
	old := t.read[idx]
	if old == phys {
		return
	}
	home := uint16(idx)
	if old == home {
		t.off++
	} else if phys == home {
		t.off--
	}
	t.read[idx] = phys
	t.gen++
}

func (t *MapTable) setWrite(idx int, phys uint16) {
	old := t.write[idx]
	if old == phys {
		return
	}
	home := uint16(idx)
	if old == home {
		t.off++
	} else if phys == home {
		t.off--
	}
	t.write[idx] = phys
	t.gen++
}

// Model returns the automatic-reset model the table was built with.
func (t *MapTable) Model() Model { return t.model }

// Core returns m, the number of addressable indices (core registers).
func (t *MapTable) Core() int { return t.m }

// Phys returns n, the total number of physical registers.
func (t *MapTable) Phys() int { return t.n }

// Reset restores every entry to its home location (read i -> i,
// write i -> i). Hardware performs this at power-up and on CALL/RET
// (paper §4.1). A table already at home resets for free and does not
// advance the generation counter.
func (t *MapTable) Reset() {
	if t.off == 0 {
		return
	}
	for i := range t.read {
		t.read[i] = uint16(i)
		t.write[i] = uint16(i)
	}
	t.off = 0
	t.gen++
	t.stats.Resets++
}

// Enabled reports whether mapping is enabled. When disabled (trap/interrupt
// entry, §4.3), all accesses go directly to the core registers.
func (t *MapTable) Enabled() bool { return t.enabled }

// SetEnabled sets the register-map enable flag of the processor status word.
func (t *MapTable) SetEnabled(on bool) {
	if t.enabled != on {
		t.enabled = on
		t.gen++
	}
}

// ConnectUse sets the read map of idx to phys: all subsequent reads through
// idx are redirected to phys (connect-use, §2.2).
func (t *MapTable) ConnectUse(idx, phys int) {
	t.check(idx, phys)
	t.setRead(idx, uint16(phys))
	t.stats.ConnectUses++
	t.usesByIdx[idx]++
}

// ConnectDef sets the write map of idx to phys: all subsequent writes
// through idx are redirected to phys (connect-def, §2.2).
func (t *MapTable) ConnectDef(idx, phys int) {
	t.check(idx, phys)
	t.setWrite(idx, uint16(phys))
	t.stats.ConnectDefs++
	t.defsByIdx[idx]++
}

// ReadPhys returns the physical register accessed when idx is used as a
// source operand.
func (t *MapTable) ReadPhys(idx int) int {
	t.checkIdx(idx)
	if !t.enabled {
		return idx
	}
	return int(t.read[idx])
}

// WritePhys returns the physical register accessed when idx is used as a
// destination operand. It does not apply the automatic reset; call
// NoteWrite once the write has architecturally happened.
func (t *MapTable) WritePhys(idx int) int {
	t.checkIdx(idx)
	if !t.enabled {
		return idx
	}
	return int(t.write[idx])
}

// NoteWrite applies the automatic-reset side effect of a completed register
// write through idx, per the table's model (§2.3). It returns the physical
// register the write went to.
func (t *MapTable) NoteWrite(idx int) int {
	t.checkIdx(idx)
	if !t.enabled {
		return idx
	}
	phys := t.write[idx]
	before := t.gen
	switch t.model {
	case NoReset:
		// maps unchanged
	case WriteReset:
		t.setWrite(idx, uint16(idx))
	case WriteResetReadUpdate:
		t.setRead(idx, phys)
		t.setWrite(idx, uint16(idx))
	case ReadWriteReset:
		t.setRead(idx, uint16(idx))
		t.setWrite(idx, uint16(idx))
	}
	if t.gen != before {
		t.stats.AutoResets++
		t.autoByIdx[idx]++
	}
	return int(phys)
}

// ReadMap and WriteMap return copies of the current maps (for context
// switching, §4.2, and for tests).
func (t *MapTable) ReadMap() []uint16  { return append([]uint16(nil), t.read...) }
func (t *MapTable) WriteMap() []uint16 { return append([]uint16(nil), t.write...) }

// AtHome reports whether every entry of both maps is at its home location.
func (t *MapTable) AtHome() bool { return t.off == 0 }

// Context is the saved connection state of one mapping table, the extra
// process state an RC-aware operating system preserves across context
// switches (paper §4.2).
type Context struct {
	Read, Write []uint16
	Enabled     bool
}

// SaveContext captures the connection state.
func (t *MapTable) SaveContext() Context {
	return Context{Read: t.ReadMap(), Write: t.WriteMap(), Enabled: t.enabled}
}

// SaveContextInto captures the connection state into c, reusing its slices
// when their capacity suffices — the allocation-free SaveContext used on
// the simulator's trap path, which saves and restores every interrupt.
func (t *MapTable) SaveContextInto(c *Context) {
	c.Read = append(c.Read[:0], t.read...)
	c.Write = append(c.Write[:0], t.write...)
	c.Enabled = t.enabled
}

// HomeContext returns the connection state of a freshly constructed
// m-entry table: both maps at their home locations, mapping enabled. It is
// the initial PCB state of a multiprogrammed process, built without
// constructing a throwaway table.
func HomeContext(m int) Context {
	c := Context{Read: make([]uint16, m), Write: make([]uint16, m), Enabled: true}
	for i := range c.Read {
		c.Read[i] = uint16(i)
		c.Write[i] = uint16(i)
	}
	return c
}

// RestoreContext restores connection state saved by SaveContext. It panics
// if the context geometry does not match the table, or if any entry
// references a physical register outside the table's file — a corrupted or
// foreign context must not be silently installed (every map lookup after
// an unchecked copy would index the register file out of bounds).
func (t *MapTable) RestoreContext(c Context) {
	if len(c.Read) != t.m || len(c.Write) != t.m {
		panic(fmt.Sprintf("core: context geometry %d/%d does not match table m=%d",
			len(c.Read), len(c.Write), t.m))
	}
	for i := 0; i < t.m; i++ {
		if int(c.Read[i]) >= t.n {
			panic(fmt.Sprintf("core: context read map entry %d references physical register %d outside file [0,%d)",
				i, c.Read[i], t.n))
		}
		if int(c.Write[i]) >= t.n {
			panic(fmt.Sprintf("core: context write map entry %d references physical register %d outside file [0,%d)",
				i, c.Write[i], t.n))
		}
	}
	copy(t.read, c.Read)
	copy(t.write, c.Write)
	t.enabled = c.Enabled
	t.stats.Restores++
	t.off = 0
	for i := range t.read {
		if t.read[i] != uint16(i) {
			t.off++
		}
		if t.write[i] != uint16(i) {
			t.off++
		}
	}
	t.gen++
}

func (t *MapTable) checkIdx(idx int) {
	if idx < 0 || idx >= t.m {
		panic(fmt.Sprintf("core: map index %d out of range [0,%d)", idx, t.m))
	}
}

func (t *MapTable) check(idx, phys int) {
	t.checkIdx(idx)
	if phys < 0 || phys >= t.n {
		panic(fmt.Sprintf("core: physical register %d out of range [0,%d)", phys, t.n))
	}
}
