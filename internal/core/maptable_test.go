package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewMapTableStartsAtHome(t *testing.T) {
	tab := NewMapTable(WriteResetReadUpdate, 8, 256)
	if !tab.AtHome() {
		t.Fatal("fresh table not at home")
	}
	for i := 0; i < 8; i++ {
		if tab.ReadPhys(i) != i || tab.WritePhys(i) != i {
			t.Errorf("index %d not at home", i)
		}
	}
	if tab.Core() != 8 || tab.Phys() != 256 {
		t.Errorf("geometry = %d/%d", tab.Core(), tab.Phys())
	}
}

func TestConnectUseDef(t *testing.T) {
	tab := NewMapTable(NoReset, 4, 12)
	tab.ConnectUse(2, 10)
	tab.ConnectDef(3, 7)
	if tab.ReadPhys(2) != 10 {
		t.Errorf("read map 2 = %d, want 10", tab.ReadPhys(2))
	}
	if tab.WritePhys(3) != 7 {
		t.Errorf("write map 3 = %d, want 7", tab.WritePhys(3))
	}
	// Paper Figure 2: connects redirect an add's operands.
	// connect_use ri2,rp10; connect_use ri3,rp7 (as def there);
	// reads via 2 go to 10, write via 3 goes to 7.
	if tab.ReadPhys(0) != 0 || tab.WritePhys(2) != 2 {
		t.Error("unrelated entries must stay at home")
	}
}

// TestModelSemantics encodes Figure 3 of the paper: the state of the map
// entry after "write via Rix" under each model, starting from
// read=a, write=b (both diverted).
func TestModelSemantics(t *testing.T) {
	const (
		idx  = 1
		a    = 9  // initial read map
		b    = 10 // initial write map
		home = idx
	)
	cases := []struct {
		model               Model
		wantRead, wantWrite int
	}{
		{NoReset, a, b},
		{WriteReset, a, home},
		{WriteResetReadUpdate, b, home},
		{ReadWriteReset, home, home},
	}
	for _, c := range cases {
		tab := NewMapTable(c.model, 4, 16)
		tab.ConnectUse(idx, a)
		tab.ConnectDef(idx, b)
		phys := tab.NoteWrite(idx)
		if phys != b {
			t.Errorf("%v: write went to %d, want %d", c.model, phys, b)
		}
		if got := tab.ReadPhys(idx); got != c.wantRead {
			t.Errorf("%v: read map after write = %d, want %d", c.model, got, c.wantRead)
		}
		if got := tab.WritePhys(idx); got != c.wantWrite {
			t.Errorf("%v: write map after write = %d, want %d", c.model, got, c.wantWrite)
		}
	}
}

// TestModel3PaperExample reproduces the code sequence of paper §3: after a
// connect-def and a write, reads see the written location without an extra
// connect-use.
func TestModel3PaperExample(t *testing.T) {
	tab := NewMapTable(WriteResetReadUpdate, 8, 256)
	// connect_use Ri6,Rp9 ; (1) Ri2 += Ri6
	tab.ConnectUse(6, 9)
	if tab.ReadPhys(6) != 9 {
		t.Fatal("Ri6 reads must reach Rp9")
	}
	tab.NoteWrite(2) // instruction 1 writes Ri2 (home)
	// connect_def Ri7,Rp10 ; (2) Ri7 = Ri3 + 1
	tab.ConnectDef(7, 10)
	if got := tab.WritePhys(7); got != 10 {
		t.Fatalf("Ri7 write map = %d, want 10", got)
	}
	tab.NoteWrite(7)
	// (3) Ri4 = Ri7 + Ri5: no connect-use needed — the read map of Ri7
	// was set to Rp10 by the write side effect.
	if got := tab.ReadPhys(7); got != 10 {
		t.Errorf("Ri7 read map after write = %d, want 10 (model 3 side effect)", got)
	}
	if got := tab.WritePhys(7); got != 7 {
		t.Errorf("Ri7 write map after write = %d, want home 7", got)
	}
}

func TestResetAndCALLSemantics(t *testing.T) {
	tab := NewMapTable(WriteResetReadUpdate, 8, 64)
	tab.ConnectUse(5, 30)
	tab.ConnectDef(6, 31)
	if tab.AtHome() {
		t.Fatal("table should be diverted")
	}
	tab.Reset() // jsr/rts behaviour, paper §4.1
	if !tab.AtHome() {
		t.Fatal("reset did not restore home mapping")
	}
}

func TestEnableFlagBypassesMap(t *testing.T) {
	tab := NewMapTable(WriteResetReadUpdate, 8, 64)
	tab.ConnectUse(3, 40)
	tab.SetEnabled(false) // trap entry, paper §4.3
	if tab.ReadPhys(3) != 3 {
		t.Error("disabled map must read core registers directly")
	}
	if tab.NoteWrite(3) != 3 {
		t.Error("disabled map must write core registers directly")
	}
	tab.SetEnabled(true) // return from exception restores the PSW
	if tab.ReadPhys(3) != 40 {
		t.Error("re-enabled map lost connection state")
	}
}

func TestContextSaveRestore(t *testing.T) {
	tab := NewMapTable(NoReset, 8, 64)
	tab.ConnectUse(2, 20)
	tab.ConnectDef(4, 21)
	ctx := tab.SaveContext()
	tab.Reset()
	tab.ConnectUse(2, 33)
	tab.RestoreContext(ctx)
	if tab.ReadPhys(2) != 20 || tab.WritePhys(4) != 21 {
		t.Error("context restore did not reproduce connection state")
	}
}

func TestGeometryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad model", func() { NewMapTable(Model(9), 8, 64) })
	mustPanic("n<m", func() { NewMapTable(NoReset, 8, 4) })
	mustPanic("m=0", func() { NewMapTable(NoReset, 0, 4) })
	tab := NewMapTable(NoReset, 8, 64)
	mustPanic("idx range", func() { tab.ReadPhys(8) })
	mustPanic("phys range", func() { tab.ConnectUse(0, 64) })
	mustPanic("ctx geometry", func() { tab.RestoreContext(Context{Read: make([]uint16, 4), Write: make([]uint16, 4)}) })
}

func TestRestoreContextBounds(t *testing.T) {
	// A context whose entries reference physical registers outside the
	// table's file must be rejected, not silently installed: once copied,
	// every lookup through the poisoned entry would index the register
	// file out of bounds.
	mustPanic := func(name string, fn func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: expected panic", name)
				return
			}
			if !strings.Contains(fmt.Sprint(r), "outside file") {
				t.Errorf("%s: panic message %q does not explain the bounds violation", name, r)
			}
		}()
		fn()
	}
	tab := NewMapTable(NoReset, 8, 64)
	good := tab.SaveContext()

	bad := Context{Read: append([]uint16(nil), good.Read...), Write: append([]uint16(nil), good.Write...)}
	bad.Read[3] = 64 // == n: first out-of-file register
	mustPanic("read entry out of file", func() { tab.RestoreContext(bad) })

	bad2 := Context{Read: append([]uint16(nil), good.Read...), Write: append([]uint16(nil), good.Write...)}
	bad2.Write[7] = 9999
	mustPanic("write entry out of file", func() { tab.RestoreContext(bad2) })

	// The rejected restores must not have modified the table.
	for i := 0; i < 8; i++ {
		if tab.ReadPhys(i) != i || tab.WritePhys(i) != i {
			t.Fatalf("rejected restore mutated the table at entry %d", i)
		}
	}
	// A context at the geometry boundary (phys n-1) is legal.
	ok := Context{Read: append([]uint16(nil), good.Read...), Write: append([]uint16(nil), good.Write...), Enabled: good.Enabled}
	ok.Read[2] = 63
	tab.RestoreContext(ok)
	if tab.ReadPhys(2) != 63 {
		t.Fatal("legal boundary context not restored")
	}
}

// Property: under any sequence of connects and writes, (1) every map entry
// stays within [0, n); (2) with the map disabled accesses are identity;
// (3) Reset always restores home; (4) upward compatibility — a trace with
// no connects on models 2-4 keeps the table at home forever (an original-
// architecture binary behaves as if there were no extended registers).
func TestQuickMapInvariants(t *testing.T) {
	f := func(seed int64, modelSel uint8, ops []uint8) bool {
		model := Model(modelSel%4 + 1)
		const m, n = 8, 64
		tab := NewMapTable(model, m, n)
		rng := rand.New(rand.NewSource(seed))
		for _, o := range ops {
			idx := rng.Intn(m)
			phys := rng.Intn(n)
			switch o % 3 {
			case 0:
				tab.ConnectUse(idx, phys)
			case 1:
				tab.ConnectDef(idx, phys)
			case 2:
				tab.NoteWrite(idx)
			}
			for i := 0; i < m; i++ {
				if r := tab.ReadPhys(i); r < 0 || r >= n {
					return false
				}
				if w := tab.WritePhys(i); w < 0 || w >= n {
					return false
				}
			}
		}
		tab.Reset()
		return tab.AtHome()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickUpwardCompatibility(t *testing.T) {
	// A binary compiled for the original architecture executes no connect
	// instructions; under every model, writes must keep all maps at home.
	f := func(writes []uint8) bool {
		for _, model := range []Model{NoReset, WriteReset, WriteResetReadUpdate, ReadWriteReset} {
			tab := NewMapTable(model, 8, 256)
			for _, w := range writes {
				idx := int(w) % 8
				if tab.NoteWrite(idx) != idx {
					return false
				}
				if !tab.AtHome() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModelStrings(t *testing.T) {
	for _, m := range []Model{NoReset, WriteReset, WriteResetReadUpdate, ReadWriteReset} {
		if !m.Valid() {
			t.Errorf("%v invalid", m)
		}
		if m.String() == "" {
			t.Errorf("model %d has empty name", m)
		}
	}
	if Model(0).Valid() || Model(5).Valid() {
		t.Error("invalid models accepted")
	}
}

// TestPerIndexCounters drives a mixed mutation sequence and checks that the
// per-index breakdowns attribute every connect and auto-reset to the right
// map entry and sum exactly to the aggregate totals.
func TestPerIndexCounters(t *testing.T) {
	tab := NewMapTable(WriteResetReadUpdate, 4, 16)
	tab.ConnectUse(1, 9)
	tab.ConnectUse(1, 10)
	tab.ConnectDef(2, 11)
	tab.NoteWrite(2) // model 3: read<-11, write<-home (auto reset on idx 2)
	tab.NoteWrite(3) // at-home write: no map change, no auto reset
	tab.ConnectDef(0, 12)
	tab.NoteWrite(0)

	s := tab.Stats()
	if err := s.CheckIndexSums(); err != nil {
		t.Fatal(err)
	}
	wantUses := []int64{0, 2, 0, 0}
	wantDefs := []int64{1, 0, 1, 0}
	wantAuto := []int64{1, 0, 1, 0}
	for i := 0; i < 4; i++ {
		if s.ConnectUsesByIndex[i] != wantUses[i] {
			t.Errorf("uses[%d] = %d, want %d", i, s.ConnectUsesByIndex[i], wantUses[i])
		}
		if s.ConnectDefsByIndex[i] != wantDefs[i] {
			t.Errorf("defs[%d] = %d, want %d", i, s.ConnectDefsByIndex[i], wantDefs[i])
		}
		if s.AutoResetsByIndex[i] != wantAuto[i] {
			t.Errorf("auto[%d] = %d, want %d", i, s.AutoResetsByIndex[i], wantAuto[i])
		}
	}
}

// TestPerIndexCountersIdleExport checks that a table with no mutations of a
// class exports a nil breakdown for it (compact JSON) and that the random
// mutation mix of the quick invariants keeps sums exact.
func TestPerIndexCountersIdleExport(t *testing.T) {
	tab := NewMapTable(NoReset, 4, 8)
	if s := tab.Stats(); s.ConnectUsesByIndex != nil || s.ConnectDefsByIndex != nil || s.AutoResetsByIndex != nil {
		t.Fatal("idle table must export nil per-index breakdowns")
	}
	tab.ConnectUse(3, 7)
	s := tab.Stats()
	if s.ConnectUsesByIndex == nil || s.ConnectDefsByIndex != nil {
		t.Fatal("only the mutated class should export a breakdown")
	}
	if err := s.CheckIndexSums(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for _, model := range []Model{NoReset, WriteReset, WriteResetReadUpdate, ReadWriteReset} {
		tab := NewMapTable(model, 6, 24)
		for i := 0; i < 500; i++ {
			idx, phys := rng.Intn(6), rng.Intn(24)
			switch rng.Intn(4) {
			case 0:
				tab.ConnectUse(idx, phys)
			case 1:
				tab.ConnectDef(idx, phys)
			case 2:
				tab.NoteWrite(idx)
			case 3:
				tab.Reset()
			}
		}
		if err := tab.Stats().CheckIndexSums(); err != nil {
			t.Fatalf("model %v: %v", model, err)
		}
	}
}
