// Package asm provides a textual assembler and disassembler for the
// machine ISA, including the register-connection instructions. It lets raw
// machine programs — connects and all — be written, inspected, and run
// without the compiler, and gives the repository's tools a stable text
// format (cmd/rcasm).
//
// Syntax (one instruction per line, ';' starts a comment):
//
//	.global name size          ; data object, size in bytes
//	.init name index value     ; integer word initializer
//	.initf name index value    ; float word initializer
//	.func name                 ; begin function
//	label:                     ; local label
//	    movi r2, #42
//	    add r3, r2, #8
//	    ld r4, 16(r3)
//	    st r4, 0(r3)
//	    fadd f1, f2, f3
//	    blt r2, r3, label
//	    con_du ri3:rp100, ri4:rp101   ; connect-def-use (fp: fi3:fp100)
//	    call helper
//	    ret
//	    halt
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"regconn/internal/codegen"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// Assemble parses source text into a loadable machine program. The entry
// point is the first function unless one is named "__start".
func Assemble(src string) (*codegen.MProg, error) {
	p := &parser{
		prog:    ir.NewProgram(),
		mp:      &codegen.MProg{},
		opNames: opNames(),
	}
	if err := p.run(src); err != nil {
		return nil, err
	}
	p.mp.IR = p.prog
	if p.mp.Entry == "" {
		if len(p.mp.Funcs) == 0 {
			return nil, fmt.Errorf("asm: no functions")
		}
		p.mp.Entry = p.mp.Funcs[0].Name
	}
	return p.mp, nil
}

type parser struct {
	prog    *ir.Program
	mp      *codegen.MProg
	opNames map[string]isa.Op

	cur    *codegen.MFunc
	labels map[string]int
	fixes  []labelFix
	line   int
}

type labelFix struct {
	instr int
	label string
	line  int
}

func opNames() map[string]isa.Op {
	m := map[string]isa.Op{}
	for op := isa.Op(0); op < isa.Op(255); op++ {
		name := op.String()
		if strings.HasPrefix(name, "op(") {
			continue
		}
		m[name] = op
		if op == isa.HALT {
			break
		}
	}
	return m
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("asm: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) run(src string) error {
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		line := raw
		if c := strings.IndexByte(line, ';'); c >= 0 {
			line = line[:c]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.parseLine(line); err != nil {
			return err
		}
	}
	return p.endFunc()
}

func (p *parser) parseLine(line string) error {
	switch {
	case strings.HasPrefix(line, ".global"):
		return p.parseGlobal(line)
	case strings.HasPrefix(line, ".initf"):
		return p.parseInit(line, true)
	case strings.HasPrefix(line, ".init"):
		return p.parseInit(line, false)
	case strings.HasPrefix(line, ".func"):
		f := strings.Fields(line)
		if len(f) != 2 {
			return p.errf(".func needs a name")
		}
		if err := p.endFunc(); err != nil {
			return err
		}
		p.cur = &codegen.MFunc{Name: f[1]}
		p.labels = map[string]int{}
		return nil
	case strings.HasSuffix(line, ":"):
		if p.cur == nil {
			return p.errf("label outside function")
		}
		name := strings.TrimSuffix(line, ":")
		if _, dup := p.labels[name]; dup {
			return p.errf("duplicate label %q", name)
		}
		p.labels[name] = len(p.cur.Code)
		return nil
	default:
		if p.cur == nil {
			return p.errf("instruction outside function")
		}
		in, fix, err := p.parseInstr(line)
		if err != nil {
			return err
		}
		if fix != "" {
			p.fixes = append(p.fixes, labelFix{len(p.cur.Code), fix, p.line})
		}
		p.cur.Code = append(p.cur.Code, in)
		p.cur.Ann = append(p.cur.Ann, codegen.Annot{PDst: codegen.NoPhys, PA: codegen.NoPhys, PB: codegen.NoPhys})
		return nil
	}
}

func (p *parser) endFunc() error {
	if p.cur == nil {
		return nil
	}
	for _, fx := range p.fixes {
		at, ok := p.labels[fx.label]
		if !ok {
			return fmt.Errorf("asm: line %d: undefined label %q", fx.line, fx.label)
		}
		p.cur.Code[fx.instr].Target = at
	}
	p.fixes = p.fixes[:0]
	if p.cur.Name == "__start" {
		p.mp.Entry = "__start"
	}
	p.mp.Funcs = append(p.mp.Funcs, p.cur)
	p.cur = nil
	return nil
}

func (p *parser) parseGlobal(line string) error {
	f := strings.Fields(line)
	if len(f) != 3 {
		return p.errf(".global needs name and size")
	}
	size, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil || size <= 0 {
		return p.errf("bad size %q", f[2])
	}
	p.prog.AddGlobal(f[1], size)
	return nil
}

func (p *parser) parseInit(line string, fp bool) error {
	f := strings.Fields(line)
	if len(f) != 4 {
		return p.errf(".init needs name, index, value")
	}
	var g *ir.Global
	for _, gg := range p.prog.Globals {
		if gg.Name == f[1] {
			g = gg
		}
	}
	if g == nil {
		return p.errf("unknown global %q", f[1])
	}
	idx, err := strconv.Atoi(f[2])
	if err != nil || idx < 0 || int64(idx) >= g.Words() {
		return p.errf("bad index %q", f[2])
	}
	if fp {
		v, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return p.errf("bad float %q", f[3])
		}
		for len(g.InitF) <= idx {
			g.InitF = append(g.InitF, 0)
		}
		g.InitF[idx] = v
	} else {
		v, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return p.errf("bad int %q", f[3])
		}
		for len(g.InitI) <= idx {
			g.InitI = append(g.InitI, 0)
		}
		g.InitI[idx] = v
	}
	return nil
}

// splitOperands splits "a, b, c" respecting no nesting (the syntax has
// none).
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (p *parser) parseReg(tok string, class isa.RegClass) (isa.Reg, error) {
	want := byte('r')
	if class == isa.ClassFloat {
		want = 'f'
	}
	if len(tok) < 2 || tok[0] != want {
		return isa.Reg{}, p.errf("expected %c-register, got %q", want, tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 {
		return isa.Reg{}, p.errf("bad register %q", tok)
	}
	return isa.Reg{Class: class, N: n}, nil
}

func (p *parser) parseImm(tok string) (int64, error) {
	if !strings.HasPrefix(tok, "#") {
		return 0, p.errf("expected immediate, got %q", tok)
	}
	v, err := strconv.ParseInt(tok[1:], 0, 64)
	if err != nil {
		return 0, p.errf("bad immediate %q", tok)
	}
	return v, nil
}

// parseMem parses "off(rN)".
func (p *parser) parseMem(tok string) (isa.Reg, int64, error) {
	open := strings.IndexByte(tok, '(')
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return isa.Reg{}, 0, p.errf("expected off(reg), got %q", tok)
	}
	off, err := strconv.ParseInt(tok[:open], 10, 64)
	if err != nil {
		return isa.Reg{}, 0, p.errf("bad offset in %q", tok)
	}
	base, err := p.parseReg(tok[open+1:len(tok)-1], isa.ClassInt)
	if err != nil {
		return isa.Reg{}, 0, err
	}
	return base, off, nil
}

// parseConnPair parses "ri3:rp100" / "fi3:fp100".
func (p *parser) parseConnPair(tok string) (idx, phys uint16, class isa.RegClass, err error) {
	class = isa.ClassInt
	pfxI, pfxP := "ri", "rp"
	if strings.HasPrefix(tok, "fi") {
		class = isa.ClassFloat
		pfxI, pfxP = "fi", "fp"
	}
	colon := strings.IndexByte(tok, ':')
	if colon < 0 || !strings.HasPrefix(tok, pfxI) || !strings.HasPrefix(tok[colon+1:], pfxP) {
		return 0, 0, class, p.errf("expected %s<n>:%s<n>, got %q", pfxI, pfxP, tok)
	}
	i, err1 := strconv.Atoi(tok[len(pfxI):colon])
	ph, err2 := strconv.Atoi(tok[colon+1+len(pfxP):])
	if err1 != nil || err2 != nil || i < 0 || ph < 0 || i > 0xffff || ph > 0xffff {
		return 0, 0, class, p.errf("bad connect pair %q", tok)
	}
	return uint16(i), uint16(ph), class, nil
}

func (p *parser) parseInstr(line string) (isa.Instr, string, error) {
	sp := strings.IndexAny(line, " \t")
	mn := line
	rest := ""
	if sp >= 0 {
		mn, rest = line[:sp], strings.TrimSpace(line[sp+1:])
	}
	op, ok := p.opNames[mn]
	if !ok {
		return isa.Instr{}, "", p.errf("unknown mnemonic %q", mn)
	}
	ops := splitOperands(rest)
	in := isa.Instr{Op: op}

	need := func(n int) error {
		if len(ops) != n {
			return p.errf("%s needs %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}
	fclass := func() isa.RegClass {
		switch op {
		case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FMOV, isa.FNEG, isa.FABS,
			isa.FBEQ, isa.FBNE, isa.FBLT, isa.FBLE, isa.FMOVI:
			return isa.ClassFloat
		}
		return isa.ClassInt
	}

	var err error
	switch op {
	case isa.NOP, isa.HALT, isa.RET:
		return in, "", need(0)
	case isa.MOVI:
		if err = need(2); err != nil {
			return in, "", err
		}
		if in.Dst, err = p.parseReg(ops[0], isa.ClassInt); err != nil {
			return in, "", err
		}
		in.Imm, err = p.parseImm(ops[1])
		return in, "", err
	case isa.FMOVI:
		if err = need(2); err != nil {
			return in, "", err
		}
		if in.Dst, err = p.parseReg(ops[0], isa.ClassFloat); err != nil {
			return in, "", err
		}
		if !strings.HasPrefix(ops[1], "#") {
			return in, "", p.errf("expected float immediate")
		}
		v, ferr := strconv.ParseFloat(ops[1][1:], 64)
		if ferr != nil {
			return in, "", p.errf("bad float %q", ops[1])
		}
		in.Imm = int64(math.Float64bits(v))
		return in, "", nil
	case isa.LGA:
		if err = need(2); err != nil {
			return in, "", err
		}
		if in.Dst, err = p.parseReg(ops[0], isa.ClassInt); err != nil {
			return in, "", err
		}
		plus := strings.LastIndexByte(ops[1], '+')
		if plus < 0 {
			return in, "", p.errf("expected sym+off, got %q", ops[1])
		}
		in.Sym = ops[1][:plus]
		in.Imm, err = strconv.ParseInt(ops[1][plus+1:], 10, 64)
		if err != nil {
			return in, "", p.errf("bad offset in %q", ops[1])
		}
		return in, "", nil
	case isa.MOV, isa.FMOV, isa.FNEG, isa.FABS:
		if err = need(2); err != nil {
			return in, "", err
		}
		if in.Dst, err = p.parseReg(ops[0], fclass()); err != nil {
			return in, "", err
		}
		in.A, err = p.parseReg(ops[1], fclass())
		return in, "", err
	case isa.CVTIF:
		if err = need(2); err != nil {
			return in, "", err
		}
		if in.Dst, err = p.parseReg(ops[0], isa.ClassFloat); err != nil {
			return in, "", err
		}
		in.A, err = p.parseReg(ops[1], isa.ClassInt)
		return in, "", err
	case isa.CVTFI:
		if err = need(2); err != nil {
			return in, "", err
		}
		if in.Dst, err = p.parseReg(ops[0], isa.ClassInt); err != nil {
			return in, "", err
		}
		in.A, err = p.parseReg(ops[1], isa.ClassFloat)
		return in, "", err
	case isa.LD, isa.FLD:
		if err = need(2); err != nil {
			return in, "", err
		}
		dc := isa.ClassInt
		if op == isa.FLD {
			dc = isa.ClassFloat
		}
		if in.Dst, err = p.parseReg(ops[0], dc); err != nil {
			return in, "", err
		}
		in.A, in.Imm, err = p.parseMem(ops[1])
		return in, "", err
	case isa.ST, isa.FST:
		if err = need(2); err != nil {
			return in, "", err
		}
		vc := isa.ClassInt
		if op == isa.FST {
			vc = isa.ClassFloat
		}
		if in.B, err = p.parseReg(ops[0], vc); err != nil {
			return in, "", err
		}
		in.A, in.Imm, err = p.parseMem(ops[1])
		return in, "", err
	case isa.BR:
		if err = need(1); err != nil {
			return in, "", err
		}
		return in, ops[0], nil
	case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE:
		if err = need(3); err != nil {
			return in, "", err
		}
		if in.A, err = p.parseReg(ops[0], isa.ClassInt); err != nil {
			return in, "", err
		}
		if strings.HasPrefix(ops[1], "#") {
			in.UseImm = true
			if in.Imm, err = p.parseImm(ops[1]); err != nil {
				return in, "", err
			}
		} else if in.B, err = p.parseReg(ops[1], isa.ClassInt); err != nil {
			return in, "", err
		}
		return in, ops[2], nil
	case isa.FBEQ, isa.FBNE, isa.FBLT, isa.FBLE:
		if err = need(3); err != nil {
			return in, "", err
		}
		if in.A, err = p.parseReg(ops[0], isa.ClassFloat); err != nil {
			return in, "", err
		}
		if in.B, err = p.parseReg(ops[1], isa.ClassFloat); err != nil {
			return in, "", err
		}
		return in, ops[2], nil
	case isa.CALL:
		if err = need(1); err != nil {
			return in, "", err
		}
		in.Sym = ops[0]
		return in, "", nil
	case isa.CONUSE, isa.CONDEF:
		if err = need(1); err != nil {
			return in, "", err
		}
		i0, p0, class, cerr := p.parseConnPair(ops[0])
		if cerr != nil {
			return in, "", cerr
		}
		in.CIdx[0], in.CPhys[0], in.CClass = i0, p0, class
		return in, "", nil
	case isa.CONUU, isa.CONDU, isa.CONDD:
		if err = need(2); err != nil {
			return in, "", err
		}
		i0, p0, c0, e0 := p.parseConnPair(ops[0])
		i1, p1, c1, e1 := p.parseConnPair(ops[1])
		if e0 != nil {
			return in, "", e0
		}
		if e1 != nil {
			return in, "", e1
		}
		if c0 != c1 {
			return in, "", p.errf("connect pairs must address one register file")
		}
		in.CIdx, in.CPhys, in.CClass = [2]uint16{i0, i1}, [2]uint16{p0, p1}, c0
		return in, "", nil
	default: // three-address ALU / FP ops
		if err = need(3); err != nil {
			return in, "", err
		}
		class := fclass()
		if in.Dst, err = p.parseReg(ops[0], class); err != nil {
			return in, "", err
		}
		if in.A, err = p.parseReg(ops[1], class); err != nil {
			return in, "", err
		}
		if strings.HasPrefix(ops[2], "#") {
			if class == isa.ClassFloat {
				return in, "", p.errf("FP ops take no immediates")
			}
			in.UseImm = true
			in.Imm, err = p.parseImm(ops[2])
			return in, "", err
		}
		in.B, err = p.parseReg(ops[2], class)
		return in, "", err
	}
}
