package asm

import (
	"fmt"
	"strings"

	"regconn/internal/codegen"
	"regconn/internal/isa"
)

// Disassemble renders a machine program in the assembler's input syntax,
// so Assemble(Disassemble(p)) reproduces p (labels are synthesized as
// ".L<addr>").
func Disassemble(mp *codegen.MProg) string {
	var sb strings.Builder
	for _, g := range mp.IR.Globals {
		fmt.Fprintf(&sb, ".global %s %d\n", g.Name, g.Size)
		for i, v := range g.InitI {
			if v != 0 {
				fmt.Fprintf(&sb, ".init %s %d %d\n", g.Name, i, v)
			}
		}
		for i, v := range g.InitF {
			if v != 0 {
				fmt.Fprintf(&sb, ".initf %s %d %v\n", g.Name, i, v)
			}
		}
	}
	for _, f := range mp.Funcs {
		fmt.Fprintf(&sb, "\n.func %s\n", f.Name)
		labels := map[int]bool{}
		for i := range f.Code {
			in := &f.Code[i]
			if in.Op == isa.BR || in.Op.IsCondBranch() {
				labels[in.Target] = true
			}
		}
		for i := range f.Code {
			if labels[i] {
				fmt.Fprintf(&sb, ".L%d:\n", i)
			}
			fmt.Fprintf(&sb, "    %s\n", formatInstr(&f.Code[i]))
		}
		// A trailing label (branch past the end).
		if labels[len(f.Code)] {
			fmt.Fprintf(&sb, ".L%d:\n", len(f.Code))
			fmt.Fprintf(&sb, "    nop\n")
		}
	}
	return sb.String()
}

// formatInstr prints one instruction in assembler syntax (isa.Instr.String
// with ".T<n>" targets rewritten to ".L<n>" labels).
func formatInstr(in *isa.Instr) string {
	s := in.String()
	if in.Op == isa.BR || in.Op.IsCondBranch() {
		s = strings.Replace(s, fmt.Sprintf(".T%d", in.Target), fmt.Sprintf(".L%d", in.Target), 1)
	}
	return s
}
