package asm

import (
	"strings"
	"testing"

	"regconn/internal/isa"
	"regconn/internal/machine"
)

const demo = `
; demo: sum the array through a connected extended register
.global arr 32
.init arr 0 5
.init arr 1 6
.init arr 2 7
.init arr 3 8

.func __start
    call main
    halt

.func main
    lga r3, arr+0
    con_def ri4:rp40       ; accumulator lives in extended rp40
    movi r4, #0            ; lands in rp40; model 3 redirects reads
    movi r5, #0
loop:
    ld r6, 0(r3)
    add r4, r4, r6
    add r3, r3, #8
    add r5, r5, #1
    blt r5, #4, loop
    mov r2, r4
    ret
`

func TestAssembleAndRunDemo(t *testing.T) {
	mp, err := Assemble(demo)
	if err != nil {
		t.Fatal(err)
	}
	img, err := machine.Load(mp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.IntCore, cfg.IntTotal = 8, 64
	cfg.FPCore, cfg.FPTotal = 8, 64
	res, err := machine.Run(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetInt != 26 {
		t.Errorf("sum = %d, want 26", res.RetInt)
	}
	if res.Connects != 1 {
		t.Errorf("connects = %d, want 1", res.Connects)
	}
	// The accumulator writes truly landed in rp40, not core r4: under
	// model 3 the final value is read back through the diverted map.
}

func TestRoundTrip(t *testing.T) {
	mp, err := Assemble(demo)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(mp)
	mp2, err := Assemble(text)
	if err != nil {
		t.Fatalf("re-assemble:\n%s\nerror: %v", text, err)
	}
	if len(mp2.Funcs) != len(mp.Funcs) {
		t.Fatalf("function count changed")
	}
	for fi := range mp.Funcs {
		a, b := mp.Funcs[fi], mp2.Funcs[fi]
		if a.Name != b.Name || len(a.Code) != len(b.Code) {
			t.Fatalf("%s: shape changed", a.Name)
		}
		for i := range a.Code {
			x, y := a.Code[i], b.Code[i]
			// Args/annotations are not part of the text format.
			if x.Op != y.Op || x.Dst != y.Dst || x.A != y.A || x.B != y.B ||
				x.Imm != y.Imm || x.UseImm != y.UseImm || x.Target != y.Target ||
				x.Sym != y.Sym || x.CIdx != y.CIdx || x.CPhys != y.CPhys || x.CClass != y.CClass {
				t.Errorf("%s[%d]: %v != %v", a.Name, i, &x, &y)
			}
		}
	}
}

func TestRoundTripAllFormats(t *testing.T) {
	src := `
.global g 16
.initf g 0 2.5

.func main
    movi r2, #-7
    fmovi f1, #0.125
    fmovi f2, #3
    fadd f3, f1, f2
    fsub f3, f3, f1
    fmul f3, f3, f2
    fdiv f3, f3, f2
    fneg f4, f3
    fabs f5, f4
    cvtif f6, r2
    cvtfi r3, f5
    lga r4, g+8
    fld f7, 0(r4)
    fst f7, 8(r4)
    mov r5, r3
    and r6, r5, #255
    or r6, r6, r5
    xor r6, r6, #3
    sll r6, r6, #2
    srl r6, r6, #1
    sra r6, r6, #1
    slt r7, r6, r5
    mul r7, r7, #3
    div r7, r5, #2
    rem r7, r5, #2
    sub r7, r7, r6
top:
    beq r7, r5, top
    bne r7, #1, top
    ble r7, r5, top
    bgt r7, r5, top
    bge r7, #0, top
    fbeq f1, f2, top
    fbne f1, f2, top
    fblt f1, f2, top
    fble f1, f2, top
    con_use ri3:rp60
    con_def ri4:rp61
    con_uu ri3:rp60, ri5:rp62
    con_du fi4:fp61, fi3:fp60
    con_dd ri4:rp61, ri5:rp62
    br top
`
	mp, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Assemble(Disassemble(mp))
	if err != nil {
		t.Fatal(err)
	}
	a, b := mp.Funcs[0], again.Funcs[0]
	if len(a.Code) != len(b.Code) {
		t.Fatalf("length changed: %d vs %d", len(a.Code), len(b.Code))
	}
	for i := range a.Code {
		if a.Code[i].String() != b.Code[i].String() {
			t.Errorf("[%d] %q != %q", i, a.Code[i].String(), b.Code[i].String())
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"add r1, r2, r3", "outside function"},
		{".func f\n    bogus r1", "unknown mnemonic"},
		{".func f\n    add r1, r2", "needs 3 operands"},
		{".func f\n    add f1, r2, r3", "expected r-register"},
		{".func f\n    br nowhere", "undefined label"},
		{".func f\n    movi r1, 5", "expected immediate"},
		{".func f\n    ld r1, r2", "expected off(reg)"},
		{".func f\n    con_use r3:rp6", "expected ri<n>:rp<n>"},
		{".func f\n    con_du ri3:rp6, fi4:fp7", "one register file"},
		{".func f\nx:\nx:\n    ret", "duplicate label"},
		{".global g", "needs name and size"},
		{".init g 0 5", "unknown global"},
		{"", "no functions"},
		{".func f\n    fadd f1, f2, #3", "no immediates"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestEntrySelection(t *testing.T) {
	mp, err := Assemble(".func first\n    halt\n.func __start\n    halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if mp.Entry != "__start" {
		t.Errorf("entry = %q", mp.Entry)
	}
	mp2, err := Assemble(".func solo\n    halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if mp2.Entry != "solo" {
		t.Errorf("entry = %q", mp2.Entry)
	}
}

func TestConnectSemanticDemoViaAsm(t *testing.T) {
	// Figure 2 of the paper, assembled directly: core file of 4, the add
	// reads rp10/rp7 and writes rp6.
	src := `
.func main
    con_uu ri2:rp10, ri3:rp7
    con_def ri1:rp6
    movi r2, #0     ; note: goes through the *write* map (home r2)
    add r1, r2, r3
    mov r2, r1
    ret

.func __start
    call main
    halt
`
	mp, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := machine.Load(mp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.IntCore, cfg.IntTotal = 4, 12
	cfg.FPCore, cfg.FPTotal = 4, 12
	if _, err := machine.Run(img, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleShowsConnects(t *testing.T) {
	mp, err := Assemble(demo)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(mp)
	if !strings.Contains(text, "con_def ri4:rp40") {
		t.Errorf("connect missing from disassembly:\n%s", text)
	}
	if !strings.Contains(text, ".init arr 3 8") {
		t.Errorf("initializer missing:\n%s", text)
	}
	_ = isa.CONUSE
}
