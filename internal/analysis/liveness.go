package analysis

import (
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// RegIDs gives virtual registers of both classes a dense numbering within a
// function: integer registers are [0, NextInt), floats are
// [NextInt, NextInt+NextFloat).
type RegIDs struct {
	F      *ir.Func
	NumInt int
	Total  int
}

// NewRegIDs captures the function's current register counts.
func NewRegIDs(f *ir.Func) *RegIDs {
	return &RegIDs{F: f, NumInt: f.NextInt, Total: f.NextInt + f.NextFloat}
}

// ID returns the dense id of r; Reg inverts it.
func (ids *RegIDs) ID(r isa.Reg) int {
	if r.Class == isa.ClassFloat {
		return ids.NumInt + r.N
	}
	return r.N
}

// Reg returns the register with dense id v.
func (ids *RegIDs) Reg(v int) isa.Reg {
	if v >= ids.NumInt {
		return isa.FloatReg(v - ids.NumInt)
	}
	return isa.IntReg(v)
}

// Liveness holds per-block live-in/live-out sets over dense register ids.
type Liveness struct {
	IDs     *RegIDs
	LiveIn  []BitSet
	LiveOut []BitSet
	use     []BitSet // upward-exposed uses per block
	def     []BitSet // defs per block
}

// ComputeLiveness runs backward liveness over the function's virtual
// registers.
func ComputeLiveness(f *ir.Func, cfg *CFG) *Liveness {
	ids := NewRegIDs(f)
	n := len(f.Blocks)
	lv := &Liveness{
		IDs:     ids,
		LiveIn:  make([]BitSet, n),
		LiveOut: make([]BitSet, n),
		use:     make([]BitSet, n),
		def:     make([]BitSet, n),
	}
	var scratch []isa.Reg
	for i, b := range f.Blocks {
		use := NewBitSet(ids.Total)
		def := NewBitSet(ids.Total)
		for j := range b.Instrs {
			in := &b.Instrs[j]
			scratch = in.Uses(scratch[:0])
			for _, r := range scratch {
				id := ids.ID(r)
				if !def.Has(id) {
					use.Add(id)
				}
			}
			if d := in.Def(); d.Valid() {
				def.Add(ids.ID(d))
			}
		}
		lv.use[i], lv.def[i] = use, def
		lv.LiveIn[i] = NewBitSet(ids.Total)
		lv.LiveOut[i] = NewBitSet(ids.Total)
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := lv.LiveOut[i]
			for _, s := range cfg.Succs[i] {
				if out.UnionWith(lv.LiveIn[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			newIn := out.Clone()
			for w := range newIn {
				newIn[w] &^= lv.def[i][w]
				newIn[w] |= lv.use[i][w]
			}
			if !newIn.Equal(lv.LiveIn[i]) {
				lv.LiveIn[i].Copy(newIn)
				changed = true
			}
		}
	}
	return lv
}

// ForEachLivePoint walks block b backward, calling fn before each
// instruction with the set of registers live just after it. The set is
// reused between calls; fn must not retain it.
func (lv *Liveness) ForEachLivePoint(f *ir.Func, b int, fn func(j int, liveAfter BitSet)) {
	live := lv.LiveOut[b].Clone()
	blk := f.Blocks[b]
	var scratch []isa.Reg
	for j := len(blk.Instrs) - 1; j >= 0; j-- {
		in := &blk.Instrs[j]
		fn(j, live)
		if d := in.Def(); d.Valid() {
			live.Remove(lv.IDs.ID(d))
		}
		scratch = in.Uses(scratch[:0])
		for _, r := range scratch {
			live.Add(lv.IDs.ID(r))
		}
	}
}
