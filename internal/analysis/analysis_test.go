package analysis

import (
	"testing"
	"testing/quick"

	"regconn/internal/ir"
	"regconn/internal/isa"
)

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(200)
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(199)
	if !s.Has(0) || !s.Has(63) || !s.Has(64) || !s.Has(199) || s.Has(1) {
		t.Fatal("membership wrong")
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d", s.Count())
	}
	s.Remove(63)
	if s.Has(63) || s.Count() != 3 {
		t.Fatal("remove failed")
	}
	u := NewBitSet(200)
	u.Add(5)
	if !u.UnionWith(s) || !u.Has(0) || !u.Has(5) {
		t.Fatal("union failed")
	}
	if u.UnionWith(s) {
		t.Fatal("second union should not change")
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 199 {
		t.Fatalf("forEach = %v", got)
	}
	c := s.Clone()
	if !c.Equal(s) {
		t.Fatal("clone not equal")
	}
	c.Clear()
	if c.Count() != 0 {
		t.Fatal("clear failed")
	}
}

func TestQuickBitSetUnionIdempotent(t *testing.T) {
	f := func(xs []uint16) bool {
		s := NewBitSet(1 << 16)
		for _, x := range xs {
			s.Add(int(x))
		}
		u := s.Clone()
		if u.UnionWith(s) { // union with self never changes
			return false
		}
		for _, x := range xs {
			if !s.Has(int(x)) {
				return false
			}
		}
		return s.Count() <= len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// diamond builds: 0 -> (1,2) -> 3, with a loop 3 -> 1 guarded in block 3.
func buildDiamondLoop() *ir.Func {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "f", 1, 0)
	n := b.Param(0)
	left := b.NewBlock()  // 1
	right := b.NewBlock() // 2
	join := b.NewBlock()  // 3
	exit := b.NewBlock()  // 4

	// Block 0: if n > 0 goto right (2); else fall to left (1).
	// (left is block 1 = fallthrough)
	b.BgtI(n, 0, right)

	b.SetBlock(left)
	b.Br(join)
	b.SetBlock(right)
	b.Br(join)

	b.SetBlock(join)
	x := b.AddI(n, 1)
	_ = x
	b.BltI(n, 100, left) // back edge: join -> left? left doesn't dominate join
	b.SetBlock(exit)
	b.Ret(n)
	return b.F
}

func TestCFGAndDominators(t *testing.T) {
	f := buildDiamondLoop()
	cfg := BuildCFG(f)
	if len(cfg.Preds[3]) != 2 {
		t.Errorf("join preds = %v", cfg.Preds[3])
	}
	idom := cfg.Dominators()
	if idom[3] != 0 {
		t.Errorf("idom(join) = %d, want 0 (diamond)", idom[3])
	}
	if !Dominates(idom, 0, 4) {
		t.Error("entry must dominate exit")
	}
	if Dominates(idom, 1, 3) {
		t.Error("left branch must not dominate join")
	}
}

// buildNestedLoops: for i { for j { body } }
func buildNestedLoops() *ir.Func {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "g", 1, 0)
	n := b.Param(0)
	i := b.Const(0)

	outer := b.NewBlock() // 1: outer header (init j)
	inner := b.NewBlock() // 2: inner body+latch
	outerLatch := b.NewBlock()
	exit := b.NewBlock()
	b.Br(outer)

	b.SetBlock(outer)
	j := b.Const(0)
	b.Br(inner)

	b.SetBlock(inner)
	j2 := b.AddI(j, 1)
	b.MovTo(j, j2)
	b.Blt(j, n, inner) // inner back edge

	b.SetBlock(outerLatch)
	i2 := b.AddI(i, 1)
	b.MovTo(i, i2)
	b.Blt(i, n, outer) // outer back edge

	b.SetBlock(exit)
	b.Ret(i)
	return b.F
}

func TestNaturalLoops(t *testing.T) {
	f := buildNestedLoops()
	cfg := BuildCFG(f)
	idom := cfg.Dominators()
	loops := cfg.NaturalLoops(idom)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	outer, inner := loops[0], loops[1]
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Fatalf("depths = %d,%d", outer.Depth, inner.Depth)
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent should be the outer loop")
	}
	if !outer.Contains(inner.Header) {
		t.Error("outer must contain inner header")
	}
	if Innermost(outer, loops) || !Innermost(inner, loops) {
		t.Error("innermost classification wrong")
	}
	if len(inner.Latches) != 1 {
		t.Errorf("inner latches = %v", inner.Latches)
	}
	exits := inner.Exits(cfg)
	if len(exits) != 1 {
		t.Errorf("inner exits = %v", exits)
	}
}

func TestLiveness(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "h", 1, 0)
	n := b.Param(0) // r0
	x := b.Const(7) // r1
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	n2 := b.SubI(n, 1)
	b.MovTo(n, n2)
	b.BgtI(n, 0, loop)
	exit := b.NewBlock()
	b.SetBlock(exit)
	b.Ret(x)

	cfg := BuildCFG(b.F)
	lv := ComputeLiveness(b.F, cfg)
	xid := lv.IDs.ID(x)
	nid := lv.IDs.ID(n)
	if !lv.LiveIn[loop.Index].Has(xid) {
		t.Error("x must be live through the loop (used at exit)")
	}
	if !lv.LiveIn[loop.Index].Has(nid) {
		t.Error("n must be live into the loop")
	}
	if lv.LiveOut[exit.Index].Count() != 0 {
		t.Error("nothing live out of exit")
	}
}

func TestForEachLivePoint(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "k", 0, 0)
	a := b.Const(1)   // r0
	c := b.AddI(a, 2) // r1 (kills a's last use here)
	b.Ret(c)

	cfg := BuildCFG(b.F)
	lv := ComputeLiveness(b.F, cfg)
	var liveAfterConst int
	lv.ForEachLivePoint(b.F, 0, func(j int, live BitSet) {
		if j == 0 { // after MOVI a
			liveAfterConst = live.Count()
		}
	})
	// After the MOVI, 'a' is live (used by ADD) — just a: count 1.
	if liveAfterConst != 1 {
		t.Errorf("live after const = %d, want 1", liveAfterConst)
	}
	_ = c
}

func TestRegIDsRoundTrip(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "m", 2, 1)
	b.RetVoid()
	ids := NewRegIDs(b.F)
	for _, r := range []isa.Reg{isa.IntReg(0), isa.IntReg(1), isa.FloatReg(0)} {
		if ids.Reg(ids.ID(r)) != r {
			t.Errorf("round trip failed for %v", r)
		}
	}
}
