package analysis

import (
	"fmt"

	"regconn/internal/ir"
	"regconn/internal/isa"
)

// CheckDefiniteAssignment verifies that every register use in f is
// dominated by a definition (or a parameter): forward dataflow computing
// the definitely-assigned set at each block entry (intersection over
// predecessors), then a per-block scan. Programs that violate this read
// unspecified values when compiled (see package ir), so the facade rejects
// them at build time.
func CheckDefiniteAssignment(f *ir.Func) error {
	cfg := BuildCFG(f)
	ids := NewRegIDs(f)
	n := len(f.Blocks)

	// defsIn[b] = definitely assigned at entry to b. Initialize entry to
	// the parameter set and everything else to "all" (top for an
	// intersection lattice).
	all := NewBitSet(ids.Total)
	for i := 0; i < ids.Total; i++ {
		all.Add(i)
	}
	defsIn := make([]BitSet, n)
	for b := range defsIn {
		defsIn[b] = all.Clone()
	}
	entry := NewBitSet(ids.Total)
	for _, p := range f.Params {
		entry.Add(ids.ID(p))
	}
	defsIn[0] = entry

	// Per-block gen sets.
	gen := make([]BitSet, n)
	for bi, b := range f.Blocks {
		g := NewBitSet(ids.Total)
		for j := range b.Instrs {
			if d := b.Instrs[j].Def(); d.Valid() {
				g.Add(ids.ID(d))
			}
		}
		gen[bi] = g
	}

	reach := cfg.Reachable()
	for changed := true; changed; {
		changed = false
		for bi := 0; bi < n; bi++ {
			out := defsIn[bi].Clone()
			out.UnionWith(gen[bi])
			for _, s := range cfg.Succs[bi] {
				// in[s] = intersection of predecessors' outs.
				newIn := defsIn[s].Clone()
				for w := range newIn {
					newIn[w] &= out[w]
				}
				if !newIn.Equal(defsIn[s]) {
					defsIn[s].Copy(newIn)
					changed = true
				}
			}
		}
	}

	var buf [4]isa.Reg
	for bi, b := range f.Blocks {
		if !reach.Has(bi) {
			continue
		}
		have := defsIn[bi].Clone()
		for j := range b.Instrs {
			in := &b.Instrs[j]
			for _, u := range in.Uses(buf[:0]) {
				if !have.Has(ids.ID(u)) {
					return fmt.Errorf("%s: .T%d[%d] %v: %v may be used before assignment",
						f.Name, bi, j, in, u)
				}
			}
			if d := in.Def(); d.Valid() {
				have.Add(ids.ID(d))
			}
		}
	}
	return nil
}
