// Package analysis provides the dataflow substrate used by the optimizer,
// the ILP transformer and the register allocator: CFG predecessors,
// dominators, natural-loop detection, and liveness over virtual registers.
package analysis

import "math/bits"

// BitSet is a fixed-capacity bit set.
type BitSet []uint64

// NewBitSet returns a set able to hold n elements.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Has reports whether i is in the set.
func (s BitSet) Has(i int) bool { return s[i>>6]&(1<<uint(i&63)) != 0 }

// Add inserts i.
func (s BitSet) Add(i int) { s[i>>6] |= 1 << uint(i&63) }

// Remove deletes i.
func (s BitSet) Remove(i int) { s[i>>6] &^= 1 << uint(i&63) }

// UnionWith adds all of t to s, reporting whether s changed.
func (s BitSet) UnionWith(t BitSet) bool {
	changed := false
	for i, w := range t {
		if s[i]|w != s[i] {
			s[i] |= w
			changed = true
		}
	}
	return changed
}

// Copy overwrites s with t.
func (s BitSet) Copy(t BitSet) { copy(s, t) }

// Clear empties the set.
func (s BitSet) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Count returns the number of elements.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether s and t contain the same elements.
func (s BitSet) Equal(t BitSet) bool {
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order.
func (s BitSet) ForEach(fn func(int)) {
	for i, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(i*64 + b)
			w &^= 1 << uint(b)
		}
	}
}

// Clone returns a copy of s.
func (s BitSet) Clone() BitSet { return append(BitSet(nil), s...) }
