package analysis

import (
	"strings"
	"testing"

	"regconn/internal/ir"
	"regconn/internal/isa"
)

func TestDefiniteAssignmentAcceptsStraightLine(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "f", 1, 0)
	x := b.AddI(b.Param(0), 1)
	b.Ret(x)
	if err := CheckDefiniteAssignment(b.F); err != nil {
		t.Fatal(err)
	}
}

func TestDefiniteAssignmentRejectsBranchLocal(t *testing.T) {
	// v defined only on the taken path, used at the join.
	p := ir.NewProgram()
	b := ir.NewFunc(p, "f", 1, 0)
	v := b.F.NewInt() // declared, not yet defined
	join := b.NewBlock()
	thenB := b.NewBlock()
	b.BgtI(b.Param(0), 0, thenB)
	b.Continue()
	b.Br(join)
	b.SetBlock(thenB)
	b.Block().Append(isa.Instr{Op: isa.MOVI, Dst: v, Imm: 5})
	b.Br(join)
	b.SetBlock(join)
	b.Ret(v)
	err := CheckDefiniteAssignment(b.F)
	if err == nil || !strings.Contains(err.Error(), "before assignment") {
		t.Fatalf("err = %v", err)
	}
}

func TestDefiniteAssignmentAcceptsBothArms(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "f", 1, 0)
	v := b.F.NewInt()
	join := b.NewBlock()
	thenB := b.NewBlock()
	b.BgtI(b.Param(0), 0, thenB)
	b.Continue()
	b.Block().Append(isa.Instr{Op: isa.MOVI, Dst: v, Imm: 1})
	b.Br(join)
	b.SetBlock(thenB)
	b.Block().Append(isa.Instr{Op: isa.MOVI, Dst: v, Imm: 2})
	b.Br(join)
	b.SetBlock(join)
	b.Ret(v)
	if err := CheckDefiniteAssignment(b.F); err != nil {
		t.Fatal(err)
	}
}

func TestDefiniteAssignmentAcceptsBottomTestLoop(t *testing.T) {
	// Values defined in a do-while body are assigned after the loop
	// (the body always executes once).
	p := ir.NewProgram()
	b := ir.NewFunc(p, "f", 1, 0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	v := b.MulI(i, 3)
	b.MovTo(i, b.AddI(i, 1))
	b.Blt(i, b.Param(0), loop)
	b.Continue()
	b.Ret(v)
	if err := CheckDefiniteAssignment(b.F); err != nil {
		t.Fatal(err)
	}
}

func TestDefiniteAssignmentRejectsLoopCarriedFirstUse(t *testing.T) {
	// s read in the body before its only definition (the body's end):
	// undefined on the first iteration.
	p := ir.NewProgram()
	b := ir.NewFunc(p, "f", 1, 0)
	s := b.F.NewInt()
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	use := b.AddI(s, 1) // s not yet assigned on iteration 1
	b.Block().Append(isa.Instr{Op: isa.MOV, Dst: s, A: use})
	b.MovTo(i, b.AddI(i, 1))
	b.Blt(i, b.Param(0), loop)
	b.Continue()
	b.Ret(s)
	if err := CheckDefiniteAssignment(b.F); err == nil {
		t.Fatal("expected use-before-assignment error")
	}
}
