package analysis

import "regconn/internal/ir"

// CFG caches predecessor/successor lists for a function.
type CFG struct {
	F     *ir.Func
	Succs [][]int
	Preds [][]int
}

// BuildCFG computes the control-flow graph of f.
func BuildCFG(f *ir.Func) *CFG {
	n := len(f.Blocks)
	c := &CFG{F: f, Succs: make([][]int, n), Preds: make([][]int, n)}
	for i, b := range f.Blocks {
		c.Succs[i] = b.Succs()
		for _, s := range c.Succs[i] {
			c.Preds[s] = append(c.Preds[s], i)
		}
	}
	return c
}

// Reachable returns the set of blocks reachable from the entry.
func (c *CFG) Reachable() BitSet {
	seen := NewBitSet(len(c.Succs))
	stack := []int{0}
	seen.Add(0)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.Succs[b] {
			if !seen.Has(s) {
				seen.Add(s)
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// Dominators computes the immediate-dominator relation with the classic
// iterative algorithm. idom[0] == 0; unreachable blocks get idom -1.
func (c *CFG) Dominators() []int {
	n := len(c.Succs)
	// Reverse postorder.
	order := make([]int, 0, n)
	state := make([]uint8, n)
	var dfs func(int)
	dfs = func(b int) {
		state[b] = 1
		for _, s := range c.Succs[b] {
			if state[s] == 0 {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(0)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b] = i
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.Preds[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under idom.
func Dominates(idom []int, a, b int) bool {
	for {
		if b == a {
			return true
		}
		if b == 0 || idom[b] == -1 {
			return false
		}
		if idom[b] == b {
			return b == a
		}
		b = idom[b]
	}
}

// Loop is a natural loop: header plus body block set (header included).
type Loop struct {
	Header  int
	Blocks  BitSet
	Latches []int // blocks with a back edge to Header
	Depth   int   // nesting depth, 1 = outermost
	Parent  *Loop // enclosing loop, nil if outermost
}

// Contains reports whether block b is in the loop.
func (l *Loop) Contains(b int) bool { return l.Blocks.Has(b) }

// Exits returns the (fromBlock, toBlock) edges leaving the loop.
func (l *Loop) Exits(c *CFG) [][2]int {
	var out [][2]int
	l.Blocks.ForEach(func(b int) {
		for _, s := range c.Succs[b] {
			if !l.Blocks.Has(s) {
				out = append(out, [2]int{b, s})
			}
		}
	})
	return out
}

// NaturalLoops finds all natural loops of the function, outermost first.
// Loops sharing a header are merged (standard practice).
func (c *CFG) NaturalLoops(idom []int) []*Loop {
	n := len(c.Succs)
	byHeader := map[int]*Loop{}
	for b := 0; b < n; b++ {
		for _, s := range c.Succs[b] {
			if Dominates(idom, s, b) { // back edge b -> s
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: NewBitSet(n)}
					l.Blocks.Add(s)
					byHeader[s] = l
				}
				l.Latches = append(l.Latches, b)
				// Collect the natural loop body by walking preds from b.
				stack := []int{b}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if l.Blocks.Has(x) {
						continue
					}
					l.Blocks.Add(x)
					for _, p := range c.Preds[x] {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	loops := make([]*Loop, 0, len(byHeader))
	for _, l := range byHeader {
		loops = append(loops, l)
	}
	// Establish nesting: loop A is inside loop B if B contains A's header
	// and A != B. Parent = smallest containing loop.
	for _, a := range loops {
		for _, b := range loops {
			if a == b || !b.Blocks.Has(a.Header) {
				continue
			}
			if a.Parent == nil || a.Parent.Blocks.Count() > b.Blocks.Count() {
				a.Parent = b
			}
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	// Outermost first, stable by header index.
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			li, lj := loops[i], loops[j]
			if lj.Depth < li.Depth || (lj.Depth == li.Depth && lj.Header < li.Header) {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	return loops
}

// Innermost reports whether l contains no other loop in loops.
func Innermost(l *Loop, loops []*Loop) bool {
	for _, o := range loops {
		if o != l && o.Parent == l {
			return false
		}
	}
	return true
}
