package codegen

import (
	"fmt"

	"regconn/internal/core"
	"regconn/internal/isa"
	"regconn/internal/regalloc"
)

// emitter appends machine instructions for one function, maintaining the
// compile-time emulation of the register mapping table (paper §3). The
// emulator state is reset at block boundaries and calls, where the runtime
// table's window contents are unknown; allocated core registers are never
// the target of connects, so their home mapping is a global invariant and
// per-block emulation is sound.
type emitter struct {
	cfg Config
	mf  *MFunc

	// RC emulation state (nil tables when Mode != RC).
	tabInt, tabFP *core.MapTable
	lruInt, lruFP []int // window indices, least recently used first

	busy    map[isa.Reg]bool // windows/temps claimed by the current instruction
	pending []pendingConnect
	rrInt   int // round-robin cursors (WindowRoundRobin)
	rrFP    int

	// spDelta is how far SP currently sits below the frame base
	// (non-zero only inside a call's argument-push window).
	spDelta int64
}

type pendingConnect struct {
	class isa.RegClass
	idx   int
	phys  int
	def   bool
	vreg  int32 // virtual register the connect serves (NoVReg if unknown)
}

func newEmitter(cfg Config, mf *MFunc) *emitter {
	e := &emitter{cfg: cfg, mf: mf, busy: map[isa.Reg]bool{}}
	if cfg.Mode == regalloc.RC && !cfg.DirectExtended {
		e.tabInt = core.NewMapTable(cfg.Model, cfg.Conv.Int.Core, cfg.Conv.Int.Total)
		e.tabFP = core.NewMapTable(cfg.Model, cfg.Conv.FP.Core, cfg.Conv.FP.Total)
		e.lruInt = append([]int(nil), cfg.Conv.Int.SpillTemps...)
		e.lruFP = append([]int(nil), cfg.Conv.FP.SpillTemps...)
	}
	return e
}

func (e *emitter) table(class isa.RegClass) *core.MapTable {
	if class == isa.ClassFloat {
		return e.tabFP
	}
	return e.tabInt
}

func (e *emitter) windows(class isa.RegClass) *[]int {
	if class == isa.ClassFloat {
		return &e.lruFP
	}
	return &e.lruInt
}

// resetTables forgets all emulated connection state (block entry; after
// CALL, which resets the hardware table too).
func (e *emitter) resetTables() {
	if e.tabInt != nil {
		e.tabInt.Reset()
		e.tabFP.Reset()
	}
}

// beginInstr starts lowering a new source-level operation.
func (e *emitter) beginInstr() {
	if len(e.pending) != 0 {
		panic("codegen: pending connects not flushed")
	}
	clear(e.busy)
}

// emit appends one machine instruction with its annotation.
func (e *emitter) emit(in isa.Instr, ann Annot) {
	e.mf.Code = append(e.mf.Code, in)
	e.mf.Ann = append(e.mf.Ann, ann)
}

// useIdx returns the map index through which physical register phys can be
// read, queueing a connect-use if needed. Core registers are addressed
// directly (home mapping invariant). vreg is the virtual register the
// access serves, recorded as debug info on any connect emitted for it.
func (e *emitter) useIdx(class isa.RegClass, phys int, vreg int32) int {
	cv := e.cfg.Conv.Of(class)
	if e.cfg.Mode != regalloc.RC || e.cfg.DirectExtended || !cv.IsExtended(phys) {
		// Unlimited mode and DirectExtended address the whole file
		// directly (identity map); core registers are always at home.
		return phys
	}
	tab := e.table(class)
	win := e.windows(class)
	for _, w := range *win {
		if tab.ReadPhys(w) == phys {
			e.touch(class, w)
			e.busy[isa.Reg{Class: class, N: w}] = true
			return w
		}
	}
	w := e.pickWindow(class)
	tab.ConnectUse(w, phys)
	e.pending = append(e.pending, pendingConnect{class, w, phys, false, vreg})
	return w
}

// defIdx returns the map index through which phys can be written, queueing
// a connect-def if needed.
func (e *emitter) defIdx(class isa.RegClass, phys int, vreg int32) int {
	cv := e.cfg.Conv.Of(class)
	if e.cfg.Mode != regalloc.RC || e.cfg.DirectExtended || !cv.IsExtended(phys) {
		return phys
	}
	tab := e.table(class)
	win := e.windows(class)
	for _, w := range *win {
		if tab.WritePhys(w) == phys {
			// Reusable only under models that do not auto-reset the
			// write map; the table reflects the model, so a match here
			// is always sound.
			e.touch(class, w)
			e.busy[isa.Reg{Class: class, N: w}] = true
			return w
		}
	}
	w := e.pickWindow(class)
	tab.ConnectDef(w, phys)
	e.pending = append(e.pending, pendingConnect{class, w, phys, true, vreg})
	return w
}

// pickWindow selects a connect window under the configured policy. The
// four reserved spill temporaries serve as windows in RC mode, so at least
// one is always free (an instruction claims at most three).
func (e *emitter) pickWindow(class isa.RegClass) int {
	win := e.windows(class)
	switch e.cfg.Windows {
	case WindowRoundRobin:
		cur := e.rrCursor(class)
		n := len(*win)
		for k := 0; k < n; k++ {
			w := (*win)[(*cur+k)%n]
			if !e.busy[isa.Reg{Class: class, N: w}] {
				*cur = (*cur + k + 1) % n
				e.busy[isa.Reg{Class: class, N: w}] = true
				return w
			}
		}
	case WindowFirstFree:
		lo := append([]int(nil), *win...)
		sortInts(lo)
		for _, w := range lo {
			if !e.busy[isa.Reg{Class: class, N: w}] {
				e.busy[isa.Reg{Class: class, N: w}] = true
				return w
			}
		}
	default: // WindowLRU
		for _, w := range *win {
			if !e.busy[isa.Reg{Class: class, N: w}] {
				e.touch(class, w)
				e.busy[isa.Reg{Class: class, N: w}] = true
				return w
			}
		}
	}
	panic(fmt.Sprintf("codegen: out of connect windows (class %v)", class))
}

func (e *emitter) rrCursor(class isa.RegClass) *int {
	if class == isa.ClassFloat {
		return &e.rrFP
	}
	return &e.rrInt
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// touch moves window w to most-recently-used position.
func (e *emitter) touch(class isa.RegClass, w int) {
	win := e.windows(class)
	for i, x := range *win {
		if x == w {
			copy((*win)[i:], (*win)[i+1:])
			(*win)[len(*win)-1] = w
			return
		}
	}
}

// takeTemp claims a reserved spill temporary for the current instruction
// (Spill mode; in RC mode spills only occur past 256 registers).
func (e *emitter) takeTemp(class isa.RegClass) int {
	cv := e.cfg.Conv.Of(class)
	for _, t := range cv.SpillTemps {
		if !e.busy[isa.Reg{Class: class, N: t}] {
			e.busy[isa.Reg{Class: class, N: t}] = true
			return t
		}
	}
	panic(fmt.Sprintf("codegen: out of spill temporaries (class %v)", class))
}

// flushConnects emits the queued connect instructions for the current
// operation, pairing them into combined connects when enabled.
func (e *emitter) flushConnects() {
	if len(e.pending) == 0 {
		return
	}
	// Group by class (a combined connect addresses one mapping table).
	for _, class := range []isa.RegClass{isa.ClassInt, isa.ClassFloat} {
		var group []pendingConnect
		for _, p := range e.pending {
			if p.class == class {
				group = append(group, p)
			}
		}
		// Defs first so def+use pairs combine into CONDU.
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if group[j].def && !group[i].def {
					group[i], group[j] = group[j], group[i]
				}
			}
		}
		for len(group) > 0 {
			if e.cfg.CombineConnects && len(group) >= 2 {
				a, b := group[0], group[1]
				group = group[2:]
				var op isa.Op
				switch {
				case a.def && b.def:
					op = isa.CONDD
				case a.def && !b.def:
					op = isa.CONDU
				default:
					op = isa.CONUU
				}
				e.emit(isa.Instr{
					Op:     op,
					CIdx:   [2]uint16{uint16(a.idx), uint16(b.idx)},
					CPhys:  [2]uint16{uint16(a.phys), uint16(b.phys)},
					CClass: class,
				}, Annot{PDst: NoPhys, PA: NoPhys, PB: NoPhys, CVReg: [2]int32{a.vreg, b.vreg}})
			} else {
				a := group[0]
				group = group[1:]
				op := isa.CONUSE
				if a.def {
					op = isa.CONDEF
				}
				e.emit(isa.Instr{
					Op:     op,
					CIdx:   [2]uint16{uint16(a.idx)},
					CPhys:  [2]uint16{uint16(a.phys)},
					CClass: class,
				}, Annot{PDst: NoPhys, PA: NoPhys, PB: NoPhys, CVReg: [2]int32{a.vreg, NoVReg}})
			}
			e.mf.ConnectCount++
		}
	}
	e.pending = e.pending[:0]
}

// noteWrite applies the automatic-reset side effect after a write through
// idx (mirrors the hardware).
func (e *emitter) noteWrite(class isa.RegClass, idx int) {
	if tab := e.table(class); tab != nil {
		tab.NoteWrite(idx)
	}
}
