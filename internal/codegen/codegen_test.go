package codegen

import (
	"testing"

	"regconn/internal/abi"
	"regconn/internal/core"
	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/regalloc"
)

func buildPressureProg(width int) *ir.Program {
	p := ir.NewProgram()
	g := p.AddGlobal("g", int64(width)*8)
	b := ir.NewFunc(p, "main", 0, 0)
	base := b.Addr(g, 0)
	var vs []isa.Reg
	for k := 0; k < width; k++ {
		vs = append(vs, b.Ld(base, int64(k)*8))
	}
	acc := b.Const(0)
	for _, v := range vs {
		b.MovTo(acc, b.Add(acc, v))
	}
	b.Ret(acc)
	return p
}

func lower(t *testing.T, p *ir.Program, mode regalloc.Mode, m int, model core.Model, combine bool) *MProg {
	t.Helper()
	if err := ir.Verify(p); err != nil {
		t.Fatal(err)
	}
	total := m
	if mode == regalloc.RC || mode == regalloc.Unlimited {
		total = 256
	}
	conv := abi.New(m, total, 16, maxOf(total, 16))
	pa := regalloc.Allocate(p, mode, conv, 0)
	mp, err := Lower(p, pa, Config{Conv: conv, Mode: mode, Model: model, CombineConnects: combine})
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestRCLoweringInsertsConnects(t *testing.T) {
	mp := lower(t, buildPressureProg(20), regalloc.RC, 8, core.WriteResetReadUpdate, true)
	mf := mp.FindFunc("main")
	if mf.ConnectCount == 0 {
		t.Fatal("no connects inserted under pressure")
	}
	if mf.SpillCount != 0 {
		t.Fatalf("RC lowering spilled %d ops", mf.SpillCount)
	}
	// All connect operands must be in range: index < m, phys < 256.
	for i := range mf.Code {
		in := &mf.Code[i]
		for _, pr := range in.ConnectPairs() {
			if pr.Idx >= 8 {
				t.Errorf("connect index %d out of range", pr.Idx)
			}
			if pr.Phys >= 256 {
				t.Errorf("connect phys %d out of range", pr.Phys)
			}
		}
	}
}

func TestRCConnectWindowsAreSpillTemps(t *testing.T) {
	conv := abi.New(8, 256, 16, 256)
	temps := map[uint16]bool{}
	for _, s := range conv.Int.SpillTemps {
		temps[uint16(s)] = true
	}
	mp := lower(t, buildPressureProg(20), regalloc.RC, 8, core.WriteResetReadUpdate, true)
	mf := mp.FindFunc("main")
	for i := range mf.Code {
		in := &mf.Code[i]
		if in.CClass == isa.ClassInt {
			for _, pr := range in.ConnectPairs() {
				if !temps[pr.Idx] {
					t.Errorf("connect window r%d is not a reserved spill temp", pr.Idx)
				}
			}
		}
	}
}

func TestSpillLoweringUsesTemps(t *testing.T) {
	mp := lower(t, buildPressureProg(20), regalloc.Spill, 8, core.WriteResetReadUpdate, false)
	mf := mp.FindFunc("main")
	if mf.SpillCount == 0 {
		t.Fatal("no spill code under pressure at 8 registers")
	}
	if mf.ConnectCount != 0 {
		t.Fatal("spill mode emitted connects")
	}
	if mf.FrameSize == 0 {
		t.Fatal("spilling needs a frame")
	}
}

func TestCombinedConnectsReduceCount(t *testing.T) {
	comb := lower(t, buildPressureProg(20), regalloc.RC, 8, core.WriteResetReadUpdate, true)
	single := lower(t, buildPressureProg(20), regalloc.RC, 8, core.WriteResetReadUpdate, false)
	c1 := comb.FindFunc("main").ConnectCount
	c2 := single.FindFunc("main").ConnectCount
	if c1 >= c2 {
		t.Errorf("combined connects (%d) should be fewer than single (%d)", c1, c2)
	}
	// Single mode must only use single-pair opcodes.
	for i := range single.FindFunc("main").Code {
		op := single.FindFunc("main").Code[i].Op
		if op == isa.CONUU || op == isa.CONDU || op == isa.CONDD {
			t.Errorf("combined opcode %v in single mode", op)
		}
	}
}

// TestModelConnectCounts verifies §2.3's qualitative ordering on a
// read-after-write pattern: model 3 (read update) needs the fewest
// connects, model 4 (full reset) the most.
func TestModelConnectCounts(t *testing.T) {
	counts := map[core.Model]int{}
	for _, model := range []core.Model{core.NoReset, core.WriteReset, core.WriteResetReadUpdate, core.ReadWriteReset} {
		mp := lower(t, buildPressureProg(20), regalloc.RC, 8, model, true)
		counts[model] = mp.FindFunc("main").ConnectCount
	}
	if counts[core.WriteResetReadUpdate] > counts[core.ReadWriteReset] {
		t.Errorf("model 3 (%d connects) should need no more than model 4 (%d)",
			counts[core.WriteResetReadUpdate], counts[core.ReadWriteReset])
	}
	t.Logf("connects by model: %v", counts)
}

func TestStartFunction(t *testing.T) {
	mp := lower(t, buildPressureProg(4), regalloc.Unlimited, 64, core.WriteResetReadUpdate, true)
	start := mp.FindFunc("__start")
	if start == nil || len(start.Code) != 2 {
		t.Fatal("missing __start")
	}
	if start.Code[0].Op != isa.CALL || start.Code[0].Sym != "main" || start.Code[1].Op != isa.HALT {
		t.Errorf("__start = %v", start.Code)
	}
	if mp.StaticSize() < 4 {
		t.Error("static size wrong")
	}
}

func TestLowerRejectsMissingMain(t *testing.T) {
	p := ir.NewProgram()
	f := ir.NewFunc(p, "notmain", 0, 0)
	f.RetVoid()
	conv := abi.New(8, 8, 16, 16)
	pa := regalloc.Allocate(p, regalloc.Spill, conv, 0)
	if _, err := Lower(p, pa, Config{Conv: conv, Mode: regalloc.Spill}); err == nil {
		t.Fatal("expected error for missing main")
	}
}

func TestAnnotationsResolvePhysicalRegs(t *testing.T) {
	mp := lower(t, buildPressureProg(20), regalloc.RC, 8, core.WriteResetReadUpdate, true)
	mf := mp.FindFunc("main")
	if len(mf.Ann) != len(mf.Code) {
		t.Fatalf("annotations %d != code %d", len(mf.Ann), len(mf.Code))
	}
	sawExt := false
	for i := range mf.Code {
		in, ann := &mf.Code[i], &mf.Ann[i]
		if d := in.Def(); d.Valid() && !in.Op.IsConnect() {
			if ann.PDst == NoPhys {
				t.Errorf("%d: %v has no resolved destination", i, in)
			}
			if ann.PDst >= 8 && d.Class == isa.ClassInt {
				sawExt = true
				// The encoded index must still fit the core file.
				if d.N >= 8 {
					t.Errorf("%d: %v encodes index %d >= m", i, in, d.N)
				}
			}
		}
	}
	if !sawExt {
		t.Error("no extended-register destinations annotated")
	}
}

func TestMemAnnotations(t *testing.T) {
	mp := lower(t, buildPressureProg(8), regalloc.Unlimited, 64, core.WriteResetReadUpdate, true)
	mf := mp.FindFunc("main")
	globals := 0
	for i := range mf.Code {
		in, ann := &mf.Code[i], &mf.Ann[i]
		if in.Op != isa.LD {
			continue
		}
		if ann.MemRootKind == RootGlobal && ann.MemOffKnown {
			globals++
		}
	}
	if globals < 8 {
		t.Errorf("only %d loads have global provenance, want >= 8", globals)
	}
}

func TestCallReachability(t *testing.T) {
	p := ir.NewProgram()
	fc := ir.NewFunc(p, "c", 0, 0)
	fc.RetVoid()
	fb := ir.NewFunc(p, "b", 0, 0)
	fb.CallVoid("c")
	fb.RetVoid()
	fa := ir.NewFunc(p, "a", 0, 0)
	fa.CallVoid("b")
	fa.RetVoid()
	frec := ir.NewFunc(p, "r", 0, 0)
	frec.CallVoid("r")
	frec.RetVoid()
	reach := callReachability(p)
	if !reach["a"]["c"] || reach["c"]["a"] {
		t.Error("transitive reachability wrong")
	}
	if !reach["r"]["r"] {
		t.Error("self recursion not detected")
	}
	if reach["b"]["a"] {
		t.Error("spurious back edge")
	}
}
