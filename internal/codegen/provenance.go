package codegen

import (
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// Memory disambiguation works on (root, offset) facts: an access's address
// is root + offset where the chain from root to the base register passes
// only through single-definition registers (so the fact is flow-
// insensitively sound). Two accesses are independent when their roots are
// provably distinct objects (different globals, global vs stack) or share
// the same root register value with different offsets. Sharing "the same
// root register value" is only certain if no definition of the root's
// physical register occurs between the two instructions — a check the
// scheduler performs within its region (see package sched).

// chains precomputes per-virtual-register single-definition facts.
type chains struct {
	defCount []int
	defInstr []*isa.Instr // the unique defining instruction when defCount==1
}

func buildChains(f *ir.Func) *chains {
	c := &chains{
		defCount: make([]int, f.NextInt),
		defInstr: make([]*isa.Instr, f.NextInt),
	}
	for _, b := range f.Blocks {
		for j := range b.Instrs {
			in := &b.Instrs[j]
			d := in.Def()
			if d.Valid() && d.Class == isa.ClassInt {
				c.defCount[d.N]++
				c.defInstr[d.N] = in
			}
		}
	}
	// Parameters are defined at entry (count as a definition).
	for _, p := range f.Params {
		if p.Class == isa.ClassInt {
			c.defCount[p.N]++
			c.defInstr[p.N] = nil
		}
	}
	return c
}

// addrProv resolves the provenance of base+off for a memory access.
// globalIdx maps global names to dense ids.
func (c *chains) addrProv(base isa.Reg, off int64, globalIdx map[string]int32) (kind RootKind, root int32, totalOff int64, known bool, rootVReg isa.Reg) {
	r := base
	total := off
	for steps := 0; steps < 64; steps++ {
		if r.N >= len(c.defCount) || c.defCount[r.N] != 1 || c.defInstr[r.N] == nil {
			// Multiple or unknown definitions: the register itself is the
			// root; the accumulated offset is still exact relative to it.
			return RootOpaque, int32(r.N), total, true, r
		}
		in := c.defInstr[r.N]
		switch {
		case in.Op == isa.LGA:
			gi, ok := globalIdx[in.Sym]
			if !ok {
				return RootUnknown, 0, 0, false, isa.Reg{}
			}
			return RootGlobal, gi, total + in.Imm, true, isa.Reg{}
		case in.Op == isa.MOV:
			r = in.A
		case in.Op == isa.ADD && in.UseImm:
			total += in.Imm
			r = in.A
		case in.Op == isa.SUB && in.UseImm:
			total -= in.Imm
			r = in.A
		case in.Op == isa.MOVI:
			// Absolute address: not produced by well-formed programs for
			// memory bases; treat as unknown.
			return RootUnknown, 0, 0, false, isa.Reg{}
		default:
			return RootOpaque, int32(r.N), total, true, r
		}
	}
	return RootUnknown, 0, 0, false, isa.Reg{}
}

// globalIndex builds the dense global-name index for a program.
func globalIndex(p *ir.Program) map[string]int32 {
	m := make(map[string]int32, len(p.Globals))
	for i, g := range p.Globals {
		m[g.Name] = int32(i)
	}
	return m
}
