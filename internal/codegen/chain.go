package codegen

import "regconn/internal/isa"

// MarkChains runs the chain backend's post-schedule marking pass over one
// machine function: it finds producer→consumer pairs where a one-cycle
// integer result is consumed only by the immediately following instruction
// and marks them for forwarding (arXiv 2503.20609). The machine then
// elides the producer's register-file write and the consumer's read of
// that operand.
//
// The rule is purely local and syntactic so the static verifier
// (package mapcheck) can re-derive it independently:
//
//   - the producer at pc is a one-cycle integer ALU op (isa.KindIntALU)
//     with a valid integer destination whose physical register is neither
//     absent nor the zero register;
//   - pc+1 is in the same basic block (not a leader: not the entry, not a
//     branch target, not the fall-through of a terminator);
//   - the consumer at pc+1 reads that physical register through A and/or
//     B (connects never consume a chain);
//   - the value is dead after the consumer: either the consumer itself
//     overwrites the register, or a following instruction in the block
//     overwrites it before any further read, CALL, terminator, block
//     boundary, or the end of the function.
//
// The dead-after requirement is what licenses eliding the write: no later
// instruction may observe the register's architectural value. A CALL or a
// block boundary ends the proof conservatively (liveness across them is
// not tracked here), so e.g. a return-value move immediately before RET is
// never marked.
func MarkChains(mf *MFunc) {
	n := len(mf.Code)
	if n == 0 {
		return
	}
	leaders := make([]bool, n)
	leaders[0] = true
	for i := range mf.Code {
		in := &mf.Code[i]
		if in.Op.Meta().Branch && in.Target >= 0 && in.Target < n {
			leaders[in.Target] = true
		}
		if in.Op.Meta().Terminator && i+1 < n {
			leaders[i+1] = true
		}
	}
	for pc := 0; pc+1 < n; pc++ {
		prod, pann := &mf.Code[pc], &mf.Ann[pc]
		if prod.Op.Kind() != isa.KindIntALU {
			continue
		}
		m := prod.Op.Meta()
		if !m.HasDst || !prod.Dst.Valid() || prod.Dst.Class != isa.ClassInt {
			continue
		}
		p := pann.PDst
		if p == NoPhys || p == isa.RegZero {
			continue
		}
		if leaders[pc+1] {
			continue
		}
		cons, cann := &mf.Code[pc+1], &mf.Ann[pc+1]
		if cons.Op.Meta().Connect {
			continue
		}
		chainA := readsSlotA(cons) && cons.A.Class == isa.ClassInt && cann.PA == p
		chainB := readsSlotB(cons) && cons.B.Class == isa.ClassInt && cann.PB == p
		if !chainA && !chainB {
			continue
		}
		if !deadAfter(mf, leaders, pc+1, p) {
			continue
		}
		pann.ChainOut = true
		cann.ChainA = chainA
		cann.ChainB = chainB
	}
}

// readsSlotA reports whether the instruction reads a register through its
// A slot.
func readsSlotA(in *isa.Instr) bool {
	return in.Op.Meta().ReadsA && in.A.Valid()
}

// readsSlotB reports whether the instruction reads a register through its
// B slot (an immediate displaces B).
func readsSlotB(in *isa.Instr) bool {
	m := in.Op.Meta()
	return m.ReadsB && !(m.BImm && in.UseImm) && in.B.Valid()
}

// defsPhys reports whether the instruction at i writes integer physical
// register p.
func defsPhys(mf *MFunc, i int, p int32) bool {
	in, ann := &mf.Code[i], &mf.Ann[i]
	return in.Op.Meta().HasDst && in.Dst.Valid() &&
		in.Dst.Class == isa.ClassInt && ann.PDst == p
}

// readsPhys reports whether the instruction at i reads integer physical
// register p through A or B.
func readsPhys(mf *MFunc, i int, p int32) bool {
	in, ann := &mf.Code[i], &mf.Ann[i]
	if readsSlotA(in) && in.A.Class == isa.ClassInt && ann.PA == p {
		return true
	}
	return readsSlotB(in) && in.B.Class == isa.ClassInt && ann.PB == p
}

// deadAfter proves that integer physical register p is dead after the
// consumer at pc: some following instruction kills it before anything can
// observe it. Reads are checked before defs at each step so a
// read-and-redefine (p = p + 1) counts as a second use.
func deadAfter(mf *MFunc, leaders []bool, pc int, p int32) bool {
	if defsPhys(mf, pc, p) {
		return true // the consumer itself overwrites the value
	}
	if mf.Code[pc].Op.Meta().Terminator {
		return false
	}
	for j := pc + 1; j < len(mf.Code); j++ {
		if leaders[j] {
			return false // control may arrive here from elsewhere
		}
		in := &mf.Code[j]
		if in.Op == isa.CALL {
			return false // clobber/liveness across calls is not tracked
		}
		if readsPhys(mf, j, p) {
			return false // a second use
		}
		if defsPhys(mf, j, p) {
			return true // killed before any observation
		}
		if in.Op.Meta().Terminator {
			return false
		}
	}
	return false // fell off the function
}
