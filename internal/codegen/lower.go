package codegen

import (
	"fmt"

	"regconn/internal/abi"
	"regconn/internal/analysis"
	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/regalloc"
)

// Lower translates the allocated program to machine code. It appends a
// synthetic "__start" function (call main, halt) and returns the machine
// program. The program must contain a parameterless "main".
func Lower(p *ir.Program, pa *regalloc.ProgramAssignment, cfg Config) (*MProg, error) {
	if f := p.Func("main"); f == nil || len(f.Params) != 0 {
		return nil, fmt.Errorf("codegen: program needs a parameterless main")
	}
	gidx := globalIndex(p)
	reach := callReachability(p)
	mp := &MProg{Entry: "__start", IR: p, Cfg: cfg}
	start := &MFunc{Name: "__start"}
	start.Code = []isa.Instr{
		{Op: isa.CALL, Sym: "main"},
		{Op: isa.HALT},
	}
	start.Ann = []Annot{
		{PDst: NoPhys, PA: NoPhys, PB: NoPhys},
		{PDst: NoPhys, PA: NoPhys, PB: NoPhys},
	}
	mp.Funcs = append(mp.Funcs, start)
	for _, f := range p.Funcs {
		mf, err := lowerFunc(f, pa.ByFunc[f], cfg, gidx, reach)
		if err != nil {
			return nil, fmt.Errorf("codegen: %s: %w", f.Name, err)
		}
		mp.Funcs = append(mp.Funcs, mf)
	}
	return mp, nil
}

// callReachability returns, per function name, the set of functions
// transitively reachable through calls. A call from F to G is recursive —
// requiring caller saves even on the idealized unlimited-register machine,
// whose register assignment is only disjoint across *distinct* functions —
// when F is reachable from G.
func callReachability(p *ir.Program) map[string]map[string]bool {
	direct := map[string]map[string]bool{}
	for _, f := range p.Funcs {
		set := map[string]bool{}
		for _, b := range f.Blocks {
			for j := range b.Instrs {
				if b.Instrs[j].Op == isa.CALL {
					set[b.Instrs[j].Sym] = true
				}
			}
		}
		direct[f.Name] = set
	}
	reach := map[string]map[string]bool{}
	for name := range direct {
		seen := map[string]bool{}
		stack := []string{name}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for callee := range direct[cur] {
				if !seen[callee] {
					seen[callee] = true
					stack = append(stack, callee)
				}
			}
		}
		reach[name] = seen
	}
	return reach
}

// lowerer carries per-function lowering state.
type lowerer struct {
	f     *ir.Func
	a     *regalloc.Assignment
	cfg   Config
	e     *emitter
	mf    *MFunc
	gidx  map[string]int32
	ch    *chains
	reach map[string]map[string]bool

	// Frame layout (offsets from SP after the prologue):
	calleeSlotInt map[int]int64 // callee-save int reg -> frame offset
	calleeSlotFP  map[int]int64
	spillBase     int64 // first spill slot offset
	extSlot       map[isa.Reg]int64
	frameSize     int64

	// extLiveAcross[callSiteID] lists ext-allocated vregs live across it.
	extLiveAcross map[*isa.Instr][]isa.Reg

	blockStart []int
	fixups     []fixup
}

type fixup struct {
	codeIdx int
	irBlock int
}

func lowerFunc(f *ir.Func, a *regalloc.Assignment, cfg Config, gidx map[string]int32, reach map[string]map[string]bool) (*MFunc, error) {
	if a == nil {
		return nil, fmt.Errorf("no assignment")
	}
	mf := &MFunc{Name: f.Name}
	lw := &lowerer{
		f: f, a: a, cfg: cfg, mf: mf, gidx: gidx, reach: reach,
		ch:            buildChains(f),
		calleeSlotInt: map[int]int64{},
		calleeSlotFP:  map[int]int64{},
		extSlot:       map[isa.Reg]int64{},
		extLiveAcross: map[*isa.Instr][]isa.Reg{},
		blockStart:    make([]int, len(f.Blocks)),
	}
	lw.e = newEmitter(cfg, mf)
	lw.layoutFrame()
	lw.prologue()
	for bi, b := range f.Blocks {
		lw.blockStart[bi] = len(mf.Code)
		lw.e.resetTables() // block boundary: runtime window state unknown
		for j := range b.Instrs {
			if err := lw.lowerInstr(b, &b.Instrs[j]); err != nil {
				return nil, fmt.Errorf(".T%d[%d] %v: %w", bi, j, &b.Instrs[j], err)
			}
		}
	}
	// Resolve branch targets to code offsets.
	for _, fx := range lw.fixups {
		mf.Code[fx.codeIdx].Target = lw.blockStart[fx.irBlock]
	}
	return mf, nil
}

// layoutFrame computes frame offsets. Layout (from SP upward after the
// prologue): callee-save area, spill slots, extended save slots.
func (lw *lowerer) layoutFrame() {
	off := int64(0)
	for _, c := range lw.a.UsedCalleeSaveInt {
		lw.calleeSlotInt[c] = off
		off += abi.WordSize
	}
	for _, c := range lw.a.UsedCalleeSaveFP {
		lw.calleeSlotFP[c] = off
		off += abi.WordSize
	}
	lw.spillBase = off
	off += int64(lw.a.SpillSlots) * abi.WordSize

	// Extended registers live across calls need caller save slots.
	cfgAnalysis := analysis.BuildCFG(lw.f)
	lv := analysis.ComputeLiveness(lw.f, cfgAnalysis)
	ids := lv.IDs
	for bi, b := range lw.f.Blocks {
		lv.ForEachLivePoint(lw.f, bi, func(j int, liveAfter analysis.BitSet) {
			in := &b.Instrs[j]
			if in.Op != isa.CALL {
				return
			}
			var acc []isa.Reg
			recursive := lw.reach[in.Sym][lw.f.Name]
			liveAfter.ForEach(func(id int) {
				r := ids.Reg(id)
				if d := in.Def(); d.Valid() && d == r {
					return // defined by the call itself
				}
				loc, ok := lw.a.Loc[r]
				if !ok || loc.Kind != regalloc.LocReg {
					return
				}
				switch {
				case lw.cfg.Mode == regalloc.RC && lw.cfg.Conv.Of(r.Class).IsExtended(loc.N):
					// Extended registers are caller-save (Figure 9).
					acc = append(acc, r)
				case lw.cfg.Mode == regalloc.Unlimited && recursive:
					// The idealized machine's disjoint assignment only
					// holds across distinct functions; recursion needs
					// real caller saves.
					acc = append(acc, r)
				}
			})
			lw.extLiveAcross[in] = acc
			for _, r := range acc {
				if _, ok := lw.extSlot[r]; !ok {
					lw.extSlot[r] = off
					off += abi.WordSize
				}
			}
		})
	}
	lw.frameSize = off
	lw.mf.FrameSize = off
}

func (lw *lowerer) spillOff(slot int) int64 {
	return lw.spillBase + int64(slot)*abi.WordSize
}

// argSlotOff returns the frame offset of incoming argument i.
func (lw *lowerer) argSlotOff(i int) int64 {
	return lw.frameSize + abi.RetAddrWords*abi.WordSize + int64(i)*abi.WordSize
}

const spReg = isa.RegSP

func stackAnn(off int64) Annot {
	return Annot{
		PDst: NoPhys, PA: spReg, PB: NoPhys,
		MemRootKind: RootStack, MemRoot: 0, MemRootPhys: NoPhys,
		MemOff: off, MemOffKnown: true,
	}
}

// prologue emits frame setup, callee-save stores, and parameter loads.
func (lw *lowerer) prologue() {
	e := lw.e
	if lw.frameSize > 0 {
		e.beginInstr()
		e.emit(isa.Instr{Op: isa.SUB, Dst: isa.IntReg(spReg), A: isa.IntReg(spReg), Imm: lw.frameSize, UseImm: true},
			Annot{PDst: spReg, PA: spReg, PB: NoPhys})
	}
	for _, c := range lw.a.UsedCalleeSaveInt {
		e.beginInstr()
		ann := stackAnn(lw.calleeSlotInt[c])
		ann.PB = int32(c)
		e.emit(isa.Instr{Op: isa.ST, A: isa.IntReg(spReg), B: isa.IntReg(c), Imm: lw.calleeSlotInt[c]}, ann)
	}
	for _, c := range lw.a.UsedCalleeSaveFP {
		e.beginInstr()
		ann := stackAnn(lw.calleeSlotFP[c])
		ann.PB = int32(c)
		e.emit(isa.Instr{Op: isa.FST, A: isa.IntReg(spReg), B: isa.FloatReg(c), Imm: lw.calleeSlotFP[c]}, ann)
	}
	// Parameter loads.
	for i, p := range lw.f.Params {
		loc, ok := lw.a.Loc[p]
		if !ok {
			continue // unreferenced parameter
		}
		off := lw.argSlotOff(i)
		switch loc.Kind {
		case regalloc.LocReg:
			lw.loadWord(p.Class, loc.N, spReg, off, stackAnn(off), int32(p.N))
		case regalloc.LocSpill:
			e.beginInstr()
			t := e.takeTemp(p.Class)
			op, sop := isa.LD, isa.ST
			if p.Class == isa.ClassFloat {
				op, sop = isa.FLD, isa.FST
			}
			ann := stackAnn(off)
			ann.PDst = int32(t)
			e.emit(isa.Instr{Op: op, Dst: isa.Reg{Class: p.Class, N: t}, A: isa.IntReg(spReg), Imm: off}, ann)
			e.noteWrite(p.Class, t)
			sann := stackAnn(lw.spillOff(loc.N))
			sann.PB = int32(t)
			e.emit(isa.Instr{Op: sop, A: isa.IntReg(spReg), B: isa.Reg{Class: p.Class, N: t}, Imm: lw.spillOff(loc.N)}, sann)
			lw.mf.SpillCount++
		}
	}
}

// loadWord emits a load of one word into physical register phys (handling
// extended destinations via connect windows). vreg attributes any connect
// this forces to the virtual register being materialized (NoVReg if none).
func (lw *lowerer) loadWord(class isa.RegClass, phys, base int, off int64, ann Annot, vreg int32) {
	e := lw.e
	e.beginInstr()
	idx := e.defIdx(class, phys, vreg)
	e.flushConnects()
	op := isa.LD
	if class == isa.ClassFloat {
		op = isa.FLD
	}
	ann.PDst = int32(phys)
	e.emit(isa.Instr{Op: op, Dst: isa.Reg{Class: class, N: idx}, A: isa.IntReg(base), Imm: off}, ann)
	e.noteWrite(class, idx)
}

// storeWord emits a store of physical register phys to base+off.
func (lw *lowerer) storeWord(class isa.RegClass, phys, base int, off int64, ann Annot, vreg int32) {
	e := lw.e
	e.beginInstr()
	idx := e.useIdx(class, phys, vreg)
	e.flushConnects()
	op := isa.ST
	if class == isa.ClassFloat {
		op = isa.FST
	}
	ann.PB = int32(phys)
	e.emit(isa.Instr{Op: op, A: isa.IntReg(base), B: isa.Reg{Class: class, N: idx}, Imm: off}, ann)
}
