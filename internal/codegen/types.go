// Package codegen lowers allocated IR to machine code: it rewrites virtual
// registers to physical map indices, inserts spill code (without-RC) or
// connect instructions (with-RC, paper §3), expands the calling convention,
// and emits prologue/epilogue including caller save/restore of extended
// registers around calls (§4.1, the black bars of Figure 9).
//
// The with-RC path drives a compile-time core.MapTable — the same hardware
// model the simulator executes — as the "emulation of the register mapping
// table" the paper describes in §3. Because the emulator's table has
// exactly the machine's semantics (including the automatic-reset model's
// side effects), the generated connect placement is correct by
// construction for every RC model.
package codegen

import (
	"regconn/internal/abi"
	"regconn/internal/core"
	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/regalloc"
)

// Config selects the lowering strategy.
type Config struct {
	Conv  *abi.Conventions
	Mode  regalloc.Mode
	Model core.Model // RC automatic-reset model (RC mode only)

	// CombineConnects enables the two-pair connect instructions
	// (connect-use-use / def-use / def-def); the paper's experiments use
	// them (footnote 1). When false, only single-pair connects are
	// emitted (Ablation B).
	CombineConnects bool

	// Windows selects how the code generator picks the map entry for an
	// extended-register access — §3 notes the choice is arbitrary for
	// correctness but matters for the artificial dependences it creates.
	Windows WindowPolicy

	// DirectExtended (the portreduce backend) makes RC-mode allocation
	// address the whole file directly: instructions carry physical
	// register numbers, no connects are emitted, and no mapping table
	// exists. Verification degenerates to the identity check.
	DirectExtended bool

	// Chain (the chain backend) enables producer→consumer forwarding
	// annotations: a post-schedule pass (MarkChains) marks single-use
	// values whose register-file write/read pair the machine elides.
	Chain bool
}

// WindowPolicy is the connect-window selection strategy.
type WindowPolicy uint8

const (
	// WindowLRU evicts the least-recently-used window (default): reuses
	// cached connections and spreads map-entry dependences.
	WindowLRU WindowPolicy = iota
	// WindowRoundRobin cycles through the windows regardless of use.
	WindowRoundRobin
	// WindowFirstFree always picks the lowest-numbered free window,
	// serializing accesses through one map entry.
	WindowFirstFree
)

func (w WindowPolicy) String() string {
	switch w {
	case WindowLRU:
		return "lru"
	case WindowRoundRobin:
		return "round-robin"
	case WindowFirstFree:
		return "first-free"
	}
	return "policy?"
}

// RootKind classifies a memory address's provenance for the scheduler's
// alias analysis.
type RootKind uint8

const (
	RootUnknown RootKind = iota
	RootGlobal           // a named global; Root is the global's index
	RootStack            // frame-relative (codegen-inserted spill/arg traffic)
	RootOpaque           // some register value; Root is a virtual reg id
)

// Annot carries compiler-known facts about one machine instruction: the
// per-operand *intent* — the physical register each operand is meant to
// resolve to through the mapping table (the map indices in the instruction
// are not the truth under RC) — and memory provenance. The scheduler builds
// its dependence graph from these, and the static map-state verifier
// (package mapcheck) independently re-derives every resolution from the
// connect stream and checks it against them; an instruction that reads or
// writes a register operand must therefore carry the corresponding PA/PB/
// PDst, or verification fails with a missing-intent violation.
type Annot struct {
	PDst int32 // physical destination register, -1 if none
	PA   int32 // physical first source, -1 if none
	PB   int32 // physical second source, -1 if none

	// CVReg is connect-instruction debug info: the virtual register whose
	// access forced each connect pair (index-aligned with Instr.CIdx),
	// NoVReg when absent. The attribution profiler (internal/prof) uses it
	// to report connect overhead per source-level virtual register; it has
	// no semantic effect on verification or execution.
	CVReg [2]int32

	MemRootKind RootKind
	MemRoot     int32 // global index / virtual reg id
	MemRootPhys int32 // physical register holding the root value (RootOpaque), else -1
	MemOff      int64 // byte offset from the root
	MemOffKnown bool

	// Chain-forwarding marks (Config.Chain; see MarkChains). ChainOut on
	// a producer means its destination value forwards to the next
	// instruction and the register-file write is elided; ChainA/ChainB on
	// the consumer mark which source slot reads the forwarded value
	// instead of the register file.
	ChainOut bool
	ChainA   bool
	ChainB   bool
}

// NoPhys marks an absent physical operand.
const NoPhys = -1

// NoVReg marks an absent virtual-register attribution (Annot.CVReg).
const NoVReg = -1

// MFunc is one lowered machine function. Branch targets in Code are local
// instruction indices; the loader (package machine) resolves them and CALL
// symbols to absolute addresses.
type MFunc struct {
	Name      string
	Code      []isa.Instr
	Ann       []Annot
	FrameSize int64

	// Static instruction counts for the Figure 9 code-size series.
	ConnectCount     int // connect instructions inserted
	SaveRestoreCount int // extended-register save/restore around calls
	SpillCount       int // spill loads/stores (without-RC)
}

// MProg is a lowered machine program.
type MProg struct {
	Funcs []*MFunc
	Entry string // start function (calls main, then halts)
	IR    *ir.Program

	// Cfg records the lowering configuration the program was generated
	// under (conventions, register mode, RC model, connect combining), so
	// downstream consumers — the scheduler and the mapcheck verifier —
	// interpret the code under exactly the semantics it was compiled for.
	Cfg Config
}

// FindFunc returns the machine function with the given name, or nil.
func (mp *MProg) FindFunc(name string) *MFunc {
	for _, f := range mp.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// StaticSize returns the total static instruction count of the program.
func (mp *MProg) StaticSize() int {
	n := 0
	for _, f := range mp.Funcs {
		n += len(f.Code)
	}
	return n
}
