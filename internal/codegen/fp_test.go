package codegen

import (
	"testing"

	"regconn/internal/abi"
	"regconn/internal/core"
	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/regalloc"
)

// buildFPPressure creates more live FP values than a 16-entry file holds,
// across a call with an FP parameter and FP return.
func buildFPPressure(width int) *ir.Program {
	p := ir.NewProgram()
	g := p.AddGlobal("fg", int64(width)*8)
	fh := ir.NewFunc(p, "fhalf", 0, 1)
	fh.Ret(fh.FMul(fh.Param(0), fh.FConst(0.5)))

	b := ir.NewFunc(p, "main", 0, 0)
	base := b.Addr(g, 0)
	var vs []isa.Reg
	for k := 0; k < width; k++ {
		vs = append(vs, b.FLd(base, int64(k)*8))
	}
	h := b.FCall("fhalf", vs[0])
	acc := b.FMov(h)
	for _, v := range vs {
		b.MovTo(acc, b.FAdd(acc, v))
	}
	b.Ret(b.FToI(acc))
	return p
}

func TestFPSpillPath(t *testing.T) {
	mp := lower(t, buildFPPressure(24), regalloc.Spill, 16, core.WriteResetReadUpdate, false)
	mf := mp.FindFunc("main")
	if mf.SpillCount == 0 {
		t.Fatal("24 live FP values in a 16-entry file must spill")
	}
	// FP spill traffic uses FLD/FST through SP.
	flds, fsts := 0, 0
	for i := range mf.Code {
		switch mf.Code[i].Op {
		case isa.FLD:
			if mf.Code[i].A.N == isa.RegSP {
				flds++
			}
		case isa.FST:
			if mf.Code[i].A.N == isa.RegSP {
				fsts++
			}
		}
	}
	if flds == 0 || fsts == 0 {
		t.Errorf("FP spill loads/stores = %d/%d", flds, fsts)
	}
}

func TestFPExtendedPath(t *testing.T) {
	mp := lower(t, buildFPPressure(24), regalloc.RC, 16, core.WriteResetReadUpdate, true)
	mf := mp.FindFunc("main")
	if mf.SpillCount != 0 {
		t.Fatalf("RC mode spilled %d FP ops", mf.SpillCount)
	}
	fpConnects := 0
	for i := range mf.Code {
		if mf.Code[i].Op.IsConnect() && mf.Code[i].CClass == isa.ClassFloat {
			fpConnects++
		}
	}
	if fpConnects == 0 {
		t.Fatal("no FP connects under FP pressure")
	}
	// The FP value live across the call must be saved/restored.
	if mf.SaveRestoreCount == 0 {
		t.Error("extended FP values live across the call need caller save/restore")
	}
}

func TestWindowPolicies(t *testing.T) {
	for _, pol := range []WindowPolicy{WindowLRU, WindowRoundRobin, WindowFirstFree} {
		p := buildFPPressure(24)
		if err := ir.Verify(p); err != nil {
			t.Fatal(err)
		}
		conv := convFor(16)
		pa := regalloc.Allocate(p, regalloc.RC, conv, 0)
		mp, err := Lower(p, pa, Config{Conv: conv, Mode: regalloc.RC,
			Model: core.WriteResetReadUpdate, CombineConnects: true, Windows: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if mp.FindFunc("main").ConnectCount == 0 {
			t.Errorf("%v: no connects", pol)
		}
		if pol.String() == "policy?" {
			t.Errorf("missing String for %d", pol)
		}
	}
}

func convFor(m int) *abi.Conventions {
	return abi.New(64, 256, m, 256)
}
