package codegen

import (
	"fmt"

	"regconn/internal/abi"
	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/regalloc"
)

// resolveSrc makes the value of virtual register r readable and returns
// the map index to encode in the instruction plus the physical register
// the data actually comes from.
func (lw *lowerer) resolveSrc(r isa.Reg) (idx int, phys int32, err error) {
	loc, ok := lw.a.Loc[r]
	if !ok {
		return 0, NoPhys, fmt.Errorf("use of unallocated register %v", r)
	}
	e := lw.e
	switch loc.Kind {
	case regalloc.LocReg:
		return e.useIdx(r.Class, loc.N, int32(r.N)), int32(loc.N), nil
	case regalloc.LocSpill:
		t := e.takeTemp(r.Class)
		off := lw.spillOff(loc.N) + e.spDelta
		op := isa.LD
		if r.Class == isa.ClassFloat {
			op = isa.FLD
		}
		ann := stackAnn(lw.spillOff(loc.N))
		ann.PDst = int32(t)
		e.emit(isa.Instr{Op: op, Dst: isa.Reg{Class: r.Class, N: t}, A: isa.IntReg(spReg), Imm: off}, ann)
		e.noteWrite(r.Class, t)
		lw.mf.SpillCount++
		return t, int32(t), nil
	}
	return 0, NoPhys, fmt.Errorf("register %v has no location", r)
}

// resolveDst prepares the destination of virtual register r: the returned
// index goes into the instruction; after() must run once the instruction
// is emitted (auto-reset side effect plus spill store if needed).
func (lw *lowerer) resolveDst(r isa.Reg) (idx int, phys int32, after func(), err error) {
	loc, ok := lw.a.Loc[r]
	if !ok {
		return 0, NoPhys, nil, fmt.Errorf("def of unallocated register %v", r)
	}
	e := lw.e
	switch loc.Kind {
	case regalloc.LocReg:
		idx = e.defIdx(r.Class, loc.N, int32(r.N))
		return idx, int32(loc.N), func() { e.noteWrite(r.Class, idx) }, nil
	case regalloc.LocSpill:
		t := e.takeTemp(r.Class)
		return t, int32(t), func() {
			e.noteWrite(r.Class, t)
			off := lw.spillOff(loc.N) + e.spDelta
			op := isa.ST
			if r.Class == isa.ClassFloat {
				op = isa.FST
			}
			ann := stackAnn(lw.spillOff(loc.N))
			ann.PB = int32(t)
			e.emit(isa.Instr{Op: op, A: isa.IntReg(spReg), B: isa.Reg{Class: r.Class, N: t}, Imm: off}, ann)
			lw.mf.SpillCount++
		}, nil
	}
	return 0, NoPhys, nil, fmt.Errorf("register %v has no location", r)
}

// memAnn computes the alias annotation for an access base+off (IR-level
// registers).
func (lw *lowerer) memAnn(base isa.Reg, off int64) Annot {
	kind, root, totalOff, known, rootVReg := lw.ch.addrProv(base, off, lw.gidx)
	ann := Annot{PDst: NoPhys, PA: NoPhys, PB: NoPhys,
		MemRootKind: kind, MemRoot: root, MemRootPhys: NoPhys, MemOff: totalOff, MemOffKnown: known}
	if kind == RootOpaque {
		if loc, ok := lw.a.Loc[rootVReg]; ok && loc.Kind == regalloc.LocReg {
			ann.MemRootPhys = int32(loc.N)
		} else {
			// Cannot verify the root value's stability: degrade.
			ann.MemRootKind = RootUnknown
			ann.MemOffKnown = false
		}
	}
	return ann
}

// lowerInstr lowers one IR instruction.
func (lw *lowerer) lowerInstr(b *ir.Block, in *isa.Instr) error {
	e := lw.e
	switch in.Op {
	case isa.NOP:
		return nil
	case isa.CALL:
		return lw.lowerCall(in)
	case isa.RET:
		return lw.lowerRet(in)
	case isa.BR:
		e.beginInstr()
		lw.fixups = append(lw.fixups, fixup{len(lw.mf.Code), in.Target})
		e.emit(isa.Instr{Op: isa.BR, Target: in.Target}, Annot{PDst: NoPhys, PA: NoPhys, PB: NoPhys})
		return nil
	case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE, isa.FBEQ, isa.FBNE, isa.FBLT, isa.FBLE:
		e.beginInstr()
		aIdx, aPhys, err := lw.resolveSrc(in.A)
		if err != nil {
			return err
		}
		out := isa.Instr{Op: in.Op, A: isa.Reg{Class: in.A.Class, N: aIdx}, Imm: in.Imm, UseImm: in.UseImm, Target: in.Target}
		ann := Annot{PDst: NoPhys, PA: aPhys, PB: NoPhys}
		if !in.UseImm && in.B.Valid() {
			bIdx, bPhys, err := lw.resolveSrc(in.B)
			if err != nil {
				return err
			}
			out.B = isa.Reg{Class: in.B.Class, N: bIdx}
			ann.PB = bPhys
		}
		// Static prediction from the profile.
		if b.Weight > 0 {
			out.Pred = b.TakenWeight*2 >= b.Weight
		}
		e.flushConnects()
		lw.fixups = append(lw.fixups, fixup{len(lw.mf.Code), in.Target})
		e.emit(out, ann)
		return nil
	case isa.HALT:
		e.beginInstr()
		e.emit(isa.Instr{Op: isa.HALT}, Annot{PDst: NoPhys, PA: NoPhys, PB: NoPhys})
		return nil
	}

	// Generic data operation.
	e.beginInstr()
	out := *in
	ann := Annot{PDst: NoPhys, PA: NoPhys, PB: NoPhys}
	if in.Op.IsMem() {
		m := lw.memAnn(in.A, in.Imm)
		ann.MemRootKind, ann.MemRoot, ann.MemRootPhys = m.MemRootKind, m.MemRoot, m.MemRootPhys
		ann.MemOff, ann.MemOffKnown = m.MemOff, m.MemOffKnown
	}

	// Sources.
	if useReads(in.Op, opA) && in.A.Valid() {
		idx, phys, err := lw.resolveSrc(in.A)
		if err != nil {
			return err
		}
		out.A = isa.Reg{Class: in.A.Class, N: idx}
		ann.PA = phys
	}
	if useReads(in.Op, opB) && !in.UseImm && in.B.Valid() {
		idx, phys, err := lw.resolveSrc(in.B)
		if err != nil {
			return err
		}
		out.B = isa.Reg{Class: in.B.Class, N: idx}
		ann.PB = phys
	}
	// Destination.
	var after func()
	if d := in.Def(); d.Valid() {
		idx, phys, fn, err := lw.resolveDst(d)
		if err != nil {
			return err
		}
		out.Dst = isa.Reg{Class: d.Class, N: idx}
		ann.PDst = phys
		after = fn
	}
	// LGA keeps its symbol; the loader resolves it to an absolute MOVI.
	e.flushConnects()
	e.emit(out, ann)
	if after != nil {
		after()
	}
	return nil
}

type opSlot uint8

const (
	opA opSlot = iota
	opB
)

// useReads reports whether the op reads the given operand slot as a
// register source.
func useReads(op isa.Op, slot opSlot) bool {
	switch op {
	case isa.MOVI, isa.FMOVI, isa.LGA:
		return false
	case isa.LD, isa.FLD:
		return slot == opA
	case isa.ST, isa.FST:
		return true
	case isa.MOV, isa.FMOV, isa.FNEG, isa.FABS, isa.CVTIF, isa.CVTFI:
		return slot == opA
	default:
		return true
	}
}

// lowerCall expands an IR call: save extended registers live across the
// call, push arguments, CALL, pop arguments, fetch the result, restore
// extended registers (paper §4.1; the connect traffic and save/restore
// instructions are the Figure 9 black-bar cost).
func (lw *lowerer) lowerCall(in *isa.Instr) error {
	e := lw.e
	conv := lw.cfg.Conv

	// 1. Caller save of extended registers live across this call.
	saved := lw.extLiveAcross[in]
	for _, r := range saved {
		loc := lw.a.Loc[r]
		off := lw.extSlot[r]
		before := len(lw.mf.Code)
		lw.storeWord(r.Class, loc.N, spReg, off, stackAnn(off), int32(r.N))
		lw.mf.SaveRestoreCount += len(lw.mf.Code) - before
	}

	// 2. Push arguments.
	n := int64(len(in.Args))
	if n > 0 {
		e.beginInstr()
		e.emit(isa.Instr{Op: isa.SUB, Dst: isa.IntReg(spReg), A: isa.IntReg(spReg), Imm: n * abi.WordSize, UseImm: true},
			Annot{PDst: spReg, PA: spReg, PB: NoPhys})
		e.spDelta += n * abi.WordSize
		for i, arg := range in.Args {
			e.beginInstr()
			idx, phys, err := lw.resolveSrc(arg)
			if err != nil {
				return err
			}
			e.flushConnects()
			op := isa.ST
			if arg.Class == isa.ClassFloat {
				op = isa.FST
			}
			// Outgoing argument area: below the frame base.
			ann := stackAnn(int64(i)*abi.WordSize - e.spDelta)
			ann.PB = phys
			e.emit(isa.Instr{Op: op, A: isa.IntReg(spReg), B: isa.Reg{Class: arg.Class, N: idx}, Imm: int64(i) * abi.WordSize}, ann)
		}
	}

	// 3. The call itself. Hardware resets the mapping table (§4.1).
	e.beginInstr()
	e.emit(isa.Instr{Op: isa.CALL, Sym: in.Sym}, Annot{PDst: NoPhys, PA: NoPhys, PB: NoPhys})
	e.resetTables()

	// 4. Pop arguments.
	if n > 0 {
		e.beginInstr()
		e.emit(isa.Instr{Op: isa.ADD, Dst: isa.IntReg(spReg), A: isa.IntReg(spReg), Imm: n * abi.WordSize, UseImm: true},
			Annot{PDst: spReg, PA: spReg, PB: NoPhys})
		e.spDelta -= n * abi.WordSize
	}

	// 5. Result.
	if d := in.Def(); d.Valid() {
		if _, ok := lw.a.Loc[d]; ok {
			rv := conv.Of(d.Class).RetReg()
			e.beginInstr()
			idx, phys, after, err := lw.resolveDst(d)
			if err != nil {
				return err
			}
			if !(phys == int32(rv)) { // result already in place otherwise
				op := isa.MOV
				if d.Class == isa.ClassFloat {
					op = isa.FMOV
				}
				e.flushConnects()
				e.emit(isa.Instr{Op: op, Dst: isa.Reg{Class: d.Class, N: idx}, A: isa.Reg{Class: d.Class, N: rv}},
					Annot{PDst: phys, PA: int32(rv), PB: NoPhys})
				after()
			} else {
				// Drop any queued connect for a no-op move.
				e.pending = e.pending[:0]
			}
		}
	}

	// 6. Restore extended registers.
	for _, r := range saved {
		loc := lw.a.Loc[r]
		off := lw.extSlot[r]
		before := len(lw.mf.Code)
		lw.loadWord(r.Class, loc.N, spReg, off, stackAnn(off), int32(r.N))
		lw.mf.SaveRestoreCount += len(lw.mf.Code) - before
	}
	return nil
}

// lowerRet moves the return value into r2/f2, restores callee-save
// registers, releases the frame and returns.
func (lw *lowerer) lowerRet(in *isa.Instr) error {
	e := lw.e
	if in.A.Valid() {
		rv := lw.cfg.Conv.Of(in.A.Class).RetReg()
		e.beginInstr()
		idx, phys, err := lw.resolveSrc(in.A)
		if err != nil {
			return err
		}
		if phys != int32(rv) {
			op := isa.MOV
			if in.A.Class == isa.ClassFloat {
				op = isa.FMOV
			}
			e.flushConnects()
			e.emit(isa.Instr{Op: op, Dst: isa.Reg{Class: in.A.Class, N: rv}, A: isa.Reg{Class: in.A.Class, N: idx}},
				Annot{PDst: int32(rv), PA: phys, PB: NoPhys})
			e.noteWrite(in.A.Class, rv)
		} else {
			e.pending = e.pending[:0]
		}
	}
	for _, c := range lw.a.UsedCalleeSaveInt {
		e.beginInstr()
		ann := stackAnn(lw.calleeSlotInt[c])
		ann.PDst = int32(c)
		e.emit(isa.Instr{Op: isa.LD, Dst: isa.IntReg(c), A: isa.IntReg(spReg), Imm: lw.calleeSlotInt[c]}, ann)
		e.noteWrite(isa.ClassInt, c)
	}
	for _, c := range lw.a.UsedCalleeSaveFP {
		e.beginInstr()
		ann := stackAnn(lw.calleeSlotFP[c])
		ann.PDst = int32(c)
		e.emit(isa.Instr{Op: isa.FLD, Dst: isa.FloatReg(c), A: isa.IntReg(spReg), Imm: lw.calleeSlotFP[c]}, ann)
		e.noteWrite(isa.ClassFloat, c)
	}
	if lw.frameSize > 0 {
		e.beginInstr()
		e.emit(isa.Instr{Op: isa.ADD, Dst: isa.IntReg(spReg), A: isa.IntReg(spReg), Imm: lw.frameSize, UseImm: true},
			Annot{PDst: spReg, PA: spReg, PB: NoPhys})
	}
	e.beginInstr()
	e.emit(isa.Instr{Op: isa.RET}, Annot{PDst: NoPhys, PA: NoPhys, PB: NoPhys})
	e.resetTables()
	return nil
}
