// Package interp executes IR directly. It serves three roles in the
// reproduction pipeline (DESIGN.md §6):
//
//  1. Profiling: block execution counts and branch taken counts drive the
//     allocator's priority function, block layout, and static branch
//     prediction — the roles IMPACT's profiler played for the paper.
//  2. Correctness oracle: every compiled configuration's simulated memory
//     image and result are compared against the interpreter's.
//  3. The paper's "unlimited registers, conventional optimization,
//     single-issue" baseline denominator is validated against it.
package interp

import (
	"errors"
	"fmt"

	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/mem"
)

// Options configures a run.
type Options struct {
	// Profile accumulates block weights and branch taken counts into the
	// IR's Block fields.
	Profile bool
	// MaxSteps aborts runaway executions (0 = default limit).
	MaxSteps int64
	// MemSize is the memory image size in bytes (0 = mem.DefaultSize).
	MemSize int64
}

// Result reports a completed execution.
type Result struct {
	Ret    int64       // integer return value of the entry function
	FRet   float64     // floating return value of the entry function
	Steps  int64       // dynamic IR instructions executed
	Mem    *mem.Memory // final memory image
	Layout mem.Layout
}

// ErrStepLimit reports that execution exceeded Options.MaxSteps.
var ErrStepLimit = errors.New("interp: step limit exceeded")

const defaultMaxSteps = 1 << 32

type machine struct {
	prog   *ir.Program
	layout mem.Layout
	mem    *mem.Memory
	opts   Options
	steps  int64
	sp     int64
}

// Run executes the named entry function with the given integer arguments
// and returns the result. The entry function must take only integer
// parameters.
func Run(p *ir.Program, entry string, args []int64, opts Options) (*Result, error) {
	f := p.Func(entry)
	if f == nil {
		return nil, fmt.Errorf("interp: no function %q", entry)
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	if opts.MemSize == 0 {
		opts.MemSize = mem.DefaultSize
	}
	layout := mem.ComputeLayout(p)

	// Everything that can raise a mem.Fault panic — including image
	// initialization, which faults when a global's initializer does not fit
	// in opts.MemSize — runs inside the recovering closure, so a guest
	// memory violation always comes back as an error, never a host panic.
	var res Result
	var m *machine
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if f, ok := r.(*mem.Fault); ok {
					err = fmt.Errorf("interp: %w", f)
					return
				}
				panic(r)
			}
		}()
		m = &machine{
			prog:   p,
			layout: layout,
			mem:    mem.InitImage(p, layout, opts.MemSize),
			opts:   opts,
		}
		m.sp = m.mem.StackTop()
		ret, fret, e := m.call(f, args, nil)
		if e != nil {
			return e
		}
		res.Ret, res.FRet = ret, fret
		return nil
	}()
	if err != nil {
		return nil, err
	}
	res.Steps = m.steps
	res.Mem = m.mem
	res.Layout = layout
	return &res, nil
}

// call runs one function invocation to completion.
func (m *machine) call(f *ir.Func, iargs []int64, fargs []float64) (int64, float64, error) {
	ri := make([]int64, f.NextInt)
	rf := make([]float64, f.NextFloat)
	ii, fi := 0, 0
	for _, p := range f.Params {
		switch p.Class {
		case isa.ClassInt:
			if ii >= len(iargs) {
				return 0, 0, fmt.Errorf("interp: %s: missing int arg %d", f.Name, ii)
			}
			ri[p.N] = iargs[ii]
			ii++
		case isa.ClassFloat:
			if fi >= len(fargs) {
				return 0, 0, fmt.Errorf("interp: %s: missing float arg %d", f.Name, fi)
			}
			rf[p.N] = fargs[fi]
			fi++
		}
	}

	bi := 0 // current block index
	for {
		b := f.Blocks[bi]
		if m.opts.Profile {
			b.Weight++
		}
		next := bi + 1
		jumped := false
	instrs:
		for k := range b.Instrs {
			in := &b.Instrs[k]
			m.steps++
			if m.steps > m.opts.MaxSteps {
				return 0, 0, fmt.Errorf("%w in %s", ErrStepLimit, f.Name)
			}
			src2 := func() int64 {
				if in.UseImm {
					return in.Imm
				}
				return ri[in.B.N]
			}
			switch in.Op {
			case isa.NOP:
			case isa.ADD:
				ri[in.Dst.N] = ri[in.A.N] + src2()
			case isa.SUB:
				ri[in.Dst.N] = ri[in.A.N] - src2()
			case isa.MUL:
				ri[in.Dst.N] = ri[in.A.N] * src2()
			case isa.DIV:
				d := src2()
				if d == 0 {
					return 0, 0, fmt.Errorf("interp: %s: divide by zero", f.Name)
				}
				ri[in.Dst.N] = ri[in.A.N] / d
			case isa.REM:
				d := src2()
				if d == 0 {
					return 0, 0, fmt.Errorf("interp: %s: rem by zero", f.Name)
				}
				ri[in.Dst.N] = ri[in.A.N] % d
			case isa.AND:
				ri[in.Dst.N] = ri[in.A.N] & src2()
			case isa.OR:
				ri[in.Dst.N] = ri[in.A.N] | src2()
			case isa.XOR:
				ri[in.Dst.N] = ri[in.A.N] ^ src2()
			case isa.SLL:
				ri[in.Dst.N] = ri[in.A.N] << uint64(src2()&63)
			case isa.SRL:
				ri[in.Dst.N] = int64(uint64(ri[in.A.N]) >> uint64(src2()&63))
			case isa.SRA:
				ri[in.Dst.N] = ri[in.A.N] >> uint64(src2()&63)
			case isa.SLT:
				if ri[in.A.N] < src2() {
					ri[in.Dst.N] = 1
				} else {
					ri[in.Dst.N] = 0
				}
			case isa.MOV:
				ri[in.Dst.N] = ri[in.A.N]
			case isa.MOVI:
				ri[in.Dst.N] = in.Imm
			case isa.LGA:
				ri[in.Dst.N] = m.layout[in.Sym] + in.Imm
			case isa.LD:
				ri[in.Dst.N] = m.mem.LoadI(ri[in.A.N] + in.Imm)
			case isa.ST:
				m.mem.StoreI(ri[in.A.N]+in.Imm, ri[in.B.N])
			case isa.FLD:
				rf[in.Dst.N] = m.mem.LoadF(ri[in.A.N] + in.Imm)
			case isa.FST:
				m.mem.StoreF(ri[in.A.N]+in.Imm, rf[in.B.N])
			case isa.FADD:
				rf[in.Dst.N] = rf[in.A.N] + rf[in.B.N]
			case isa.FSUB:
				rf[in.Dst.N] = rf[in.A.N] - rf[in.B.N]
			case isa.FMUL:
				rf[in.Dst.N] = rf[in.A.N] * rf[in.B.N]
			case isa.FDIV:
				rf[in.Dst.N] = rf[in.A.N] / rf[in.B.N]
			case isa.FMOV:
				rf[in.Dst.N] = rf[in.A.N]
			case isa.FMOVI:
				rf[in.Dst.N] = in.FImm()
			case isa.FNEG:
				rf[in.Dst.N] = -rf[in.A.N]
			case isa.FABS:
				v := rf[in.A.N]
				if v < 0 {
					v = -v
				}
				rf[in.Dst.N] = v
			case isa.CVTIF:
				rf[in.Dst.N] = float64(ri[in.A.N])
			case isa.CVTFI:
				ri[in.Dst.N] = int64(rf[in.A.N])
			case isa.BR:
				next = in.Target
				jumped = true
				break instrs
			case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE:
				taken := intBranchTaken(in.Op, ri[in.A.N], src2())
				if m.opts.Profile && taken {
					b.TakenWeight++
				}
				if taken {
					next = in.Target
					jumped = true
				}
				break instrs
			case isa.FBEQ, isa.FBNE, isa.FBLT, isa.FBLE:
				taken := fpBranchTaken(in.Op, rf[in.A.N], rf[in.B.N])
				if m.opts.Profile && taken {
					b.TakenWeight++
				}
				if taken {
					next = in.Target
					jumped = true
				}
				break instrs
			case isa.CALL:
				callee := m.prog.Func(in.Sym)
				var ia []int64
				var fa []float64
				for _, a := range in.Args {
					if a.Class == isa.ClassInt {
						ia = append(ia, ri[a.N])
					} else {
						fa = append(fa, rf[a.N])
					}
				}
				r, fr, err := m.call(callee, ia, fa)
				if err != nil {
					return 0, 0, err
				}
				if in.Dst.Valid() {
					if in.Dst.Class == isa.ClassInt {
						ri[in.Dst.N] = r
					} else {
						rf[in.Dst.N] = fr
					}
				}
			case isa.RET:
				if in.A.Valid() {
					if in.A.Class == isa.ClassInt {
						return ri[in.A.N], 0, nil
					}
					return 0, rf[in.A.N], nil
				}
				return 0, 0, nil
			case isa.HALT:
				return 0, 0, nil
			default:
				return 0, 0, fmt.Errorf("interp: %s: cannot execute %v in IR form", f.Name, in.Op)
			}
		}
		if !jumped && next >= len(f.Blocks) {
			return 0, 0, fmt.Errorf("interp: %s: fell off function end", f.Name)
		}
		bi = next
	}
}

func intBranchTaken(op isa.Op, a, b int64) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return a < b
	case isa.BLE:
		return a <= b
	case isa.BGT:
		return a > b
	case isa.BGE:
		return a >= b
	}
	return false
}

func fpBranchTaken(op isa.Op, a, b float64) bool {
	switch op {
	case isa.FBEQ:
		return a == b
	case isa.FBNE:
		return a != b
	case isa.FBLT:
		return a < b
	case isa.FBLE:
		return a <= b
	}
	return false
}

// ClearProfile zeroes all profile weights in the program.
func ClearProfile(p *ir.Program) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			b.Weight = 0
			b.TakenWeight = 0
		}
	}
}
