package interp

import (
	"testing"

	"regconn/internal/ir"
	"regconn/internal/isa"
)

type irReg = isa.Reg

// TestKitchenSinkIntOps exercises every integer operation of the builder
// against values computed in Go.
func TestKitchenSinkIntOps(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "main", 0, 0)
	x := b.Const(-40)
	y := b.Const(12)

	type ck struct {
		name string
		reg  isa.Reg
		want int64
	}
	var checks []ck
	add := func(name string, r isa.Reg, want int64) {
		checks = append(checks, ck{name, r, want})
	}
	add("add", b.Add(x, y), -28)
	add("addi", b.AddI(x, 2), -38)
	add("sub", b.Sub(x, y), -52)
	add("subi", b.SubI(y, 2), 10)
	add("mul", b.Mul(x, y), -480)
	add("muli", b.MulI(y, 3), 36)
	add("div", b.Div(x, y), -3)
	add("divi", b.DivI(x, 4), -10)
	add("rem", b.Rem(x, y), -4)
	add("remi", b.RemI(y, 5), 2)
	add("and", b.And(x, y), int64(-40)&12)
	add("andi", b.AndI(x, 0xff), int64(-40)&0xff)
	add("or", b.Or(x, y), int64(-40)|12)
	add("ori", b.OrI(y, 1), 13)
	add("xor", b.Xor(x, y), int64(-40)^12)
	add("xori", b.XorI(y, 5), 9)
	add("sll", b.Sll(y, b.Const(2)), 48)
	add("slli", b.SllI(y, 3), 96)
	add("srli", b.SrlI(b.Const(64), 2), 16)
	add("srai", b.SraI(x, 2), -10)
	add("slt", b.Slt(x, y), 1)
	add("slti", b.SltI(y, 5), 0)
	add("mov", b.Mov(y), 12)

	// Sum a weighted combination so every value is architecturally used.
	total := b.Const(0)
	var want int64
	for i, c := range checks {
		w := int64(i + 1)
		b.MovTo(total, b.Add(total, b.MulI(c.reg, w)))
		want += c.want * w
	}
	b.Ret(total)
	if err := ir.Verify(p); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, "main", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != want {
		t.Fatalf("kitchen sink = %d, want %d", res.Ret, want)
	}
}

// TestKitchenSinkFPOps exercises the floating-point builder surface.
func TestKitchenSinkFPOps(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "main", 0, 0)
	a := b.FConst(2.5)
	c := b.FConst(-1.25)
	sum := b.FAdd(a, c)        // 1.25
	diff := b.FSub(a, c)       // 3.75
	prod := b.FMul(a, c)       // -3.125
	quot := b.FDiv(a, c)       // -2.0
	neg := b.FNeg(c)           // 1.25
	abs := b.FAbs(c)           // 1.25
	cp := b.FMov(abs)          // 1.25
	conv := b.IToF(b.Const(3)) // 3.0
	// total = (1.25+3.75-3.125-2.0+1.25+1.25+1.25+3.0) * 16 = 5.375*16 = 86
	t1 := b.FAdd(sum, diff)
	t2 := b.FAdd(prod, quot)
	t3 := b.FAdd(neg, cp)
	t4 := b.FAdd(t3, conv)
	total := b.FAdd(b.FAdd(t1, t2), t4)
	b.Ret(b.FToI(b.FMul(total, b.FConst(16))))
	if err := ir.Verify(p); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, "main", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 86 {
		t.Fatalf("fp kitchen sink = %d, want 86", res.Ret)
	}
}

// TestFPBranches covers the FP compare-branch family.
func TestFPBranches(t *testing.T) {
	cases := []struct {
		build func(b *ir.Builder, x, y irReg, tgt *ir.Block)
		taken bool
	}{
		{func(b *ir.Builder, x, y irReg, tgt *ir.Block) { b.FBeq(x, x, tgt) }, true},
		{func(b *ir.Builder, x, y irReg, tgt *ir.Block) { b.FBeq(x, y, tgt) }, false},
		{func(b *ir.Builder, x, y irReg, tgt *ir.Block) { b.FBne(x, y, tgt) }, true},
		{func(b *ir.Builder, x, y irReg, tgt *ir.Block) { b.FBlt(x, y, tgt) }, true},
		{func(b *ir.Builder, x, y irReg, tgt *ir.Block) { b.FBlt(y, x, tgt) }, false},
		{func(b *ir.Builder, x, y irReg, tgt *ir.Block) { b.FBle(x, x, tgt) }, true},
	}
	for i, c := range cases {
		p := ir.NewProgram()
		b := ir.NewFunc(p, "main", 0, 0)
		x := b.FConst(1.0)
		y := b.FConst(2.0)
		tgt := b.NewBlock()
		c.build(b, x, y, tgt)
		b.Continue()
		b.Ret(b.Const(0))
		b.SetBlock(tgt)
		b.Ret(b.Const(1))
		res, err := Run(p, "main", nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		if c.taken {
			want = 1
		}
		if res.Ret != want {
			t.Errorf("case %d: taken = %d, want %d", i, res.Ret, want)
		}
	}
}

// TestIntBranchesImmediate covers the immediate compare-branch family.
func TestIntBranchesImmediate(t *testing.T) {
	type mk func(b *ir.Builder, x irReg, k int64, tgt *ir.Block)
	cases := []struct {
		build mk
		x, k  int64
		taken bool
	}{
		{func(b *ir.Builder, x irReg, k int64, t *ir.Block) { b.BeqI(x, k, t) }, 5, 5, true},
		{func(b *ir.Builder, x irReg, k int64, t *ir.Block) { b.BneI(x, k, t) }, 5, 5, false},
		{func(b *ir.Builder, x irReg, k int64, t *ir.Block) { b.BltI(x, k, t) }, 4, 5, true},
		{func(b *ir.Builder, x irReg, k int64, t *ir.Block) { b.BleI(x, k, t) }, 5, 5, true},
		{func(b *ir.Builder, x irReg, k int64, t *ir.Block) { b.BgtI(x, k, t) }, 5, 5, false},
		{func(b *ir.Builder, x irReg, k int64, t *ir.Block) { b.BgeI(x, k, t) }, 5, 5, true},
		{func(b *ir.Builder, x irReg, k int64, t *ir.Block) { b.Bgt(x, b.Const(k), t) }, 9, 5, true},
		{func(b *ir.Builder, x irReg, k int64, t *ir.Block) { b.Bge(x, b.Const(k), t) }, 4, 5, false},
		{func(b *ir.Builder, x irReg, k int64, t *ir.Block) { b.Ble(x, b.Const(k), t) }, 4, 5, true},
		{func(b *ir.Builder, x irReg, k int64, t *ir.Block) { b.Bne(x, b.Const(k), t) }, 4, 5, true},
	}
	for i, c := range cases {
		p := ir.NewProgram()
		b := ir.NewFunc(p, "main", 0, 0)
		x := b.Const(c.x)
		tgt := b.NewBlock()
		c.build(b, x, c.k, tgt)
		b.Continue()
		b.Ret(b.Const(0))
		b.SetBlock(tgt)
		b.Ret(b.Const(1))
		res, err := Run(p, "main", nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		if c.taken {
			want = 1
		}
		if res.Ret != want {
			t.Errorf("case %d: taken = %d, want %d", i, res.Ret, want)
		}
	}
}

// TestCallVarieties covers FCall, CallVoid and float returns.
func TestCallVarieties(t *testing.T) {
	p := ir.NewProgram()
	g := p.AddGlobal("out", 8)
	// fhalf(f) = f * 0.5 (float param, float result)
	fh := ir.NewFunc(p, "fhalf", 0, 1)
	fh.Ret(fh.FMul(fh.Param(0), fh.FConst(0.5)))
	// store9() writes 9 to the global (void)
	sv := ir.NewFunc(p, "store9", 0, 0)
	sv.St(sv.Const(9), sv.Addr(g, 0), 0)
	sv.RetVoid()

	b := ir.NewFunc(p, "main", 0, 0)
	b.CallVoid("store9")
	half := b.FCall("fhalf", b.FConst(7.0))            // 3.5
	v := b.Ld(b.Addr(g, 0), 0)                         // 9
	b.Ret(b.Add(v, b.FToI(b.FMul(half, b.FConst(2))))) // 9 + 7 = 16
	if err := ir.Verify(p); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, "main", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 16 {
		t.Fatalf("calls = %d, want 16", res.Ret)
	}
}
