package interp

import (
	"errors"
	"testing"

	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/mem"
)

// buildFib builds a recursive fib plus a main calling it.
func buildFib(p *ir.Program) {
	fb := ir.NewFunc(p, "fib", 1, 0)
	n := fb.Param(0)
	base := fb.NewBlock() // fallthrough: n <= 1
	rec := fb.NewBlock()
	fb.BgtI(n, 1, rec)
	fb.SetBlock(base)
	fb.Ret(n)
	fb.SetBlock(rec)
	a := fb.Call("fib", fb.SubI(n, 1))
	b := fb.Call("fib", fb.SubI(n, 2))
	fb.Ret(fb.Add(a, b))
}

func TestFib(t *testing.T) {
	p := ir.NewProgram()
	buildFib(p)
	if err := ir.Verify(p); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, "fib", []int64{10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 55 {
		t.Errorf("fib(10) = %d, want 55", res.Ret)
	}
	if res.Steps == 0 {
		t.Error("no steps counted")
	}
}

func TestArraySumAndGlobals(t *testing.T) {
	p := ir.NewProgram()
	g := p.AddGlobal("arr", 10*8)
	g.InitI = []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := ir.NewFunc(p, "main", 0, 0)
	base := b.Addr(g, 0)
	s := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	addr := b.Add(base, b.MulI(i, 8))
	v := b.Ld(addr, 0)
	s2 := b.Add(s, v)
	b.St(s2, base, 80) // running sum spilled after the array
	i2 := b.AddI(i, 1)
	// write back loop-carried values
	loopBlk := b.Block()
	loopBlk.Instrs = append(loopBlk.Instrs, mov(s, s2), mov(i, i2))
	b.BltI(i, 10, loop)
	done := b.NewBlock()
	b.SetBlock(done)
	b.Ret(s)
	if err := ir.Verify(p); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, "main", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 55 {
		t.Errorf("sum = %d, want 55", res.Ret)
	}
	// Out-of-bounds store target was the word just past the init data;
	// check the final memory image recorded it.
	if got := res.Mem.LoadI(res.Layout["arr"] + 80); got != 55 {
		t.Errorf("mem[arr+80] = %d, want 55", got)
	}
}

func TestFloatKernel(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "dot", 1, 0)
	n := b.Param(0)
	acc := b.FConst(0)
	x := b.FConst(1.5)
	y := b.FConst(2.0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	acc2 := b.FAdd(acc, b.FMul(x, y))
	blk := b.Block()
	blk.Instrs = append(blk.Instrs, fmov(acc, acc2))
	i2 := b.AddI(i, 1)
	blk = b.Block()
	blk.Instrs = append(blk.Instrs, mov(i, i2))
	b.Blt(i, n, loop)
	out := b.NewBlock()
	b.SetBlock(out)
	b.Ret(b.FToI(acc))
	if err := ir.Verify(p); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, "dot", []int64{4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 12 { // 4 * 3.0
		t.Errorf("dot = %d, want 12", res.Ret)
	}
}

func TestProfileCounts(t *testing.T) {
	p := ir.NewProgram()
	buildFib(p)
	_, err := Run(p, "fib", []int64{8}, Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	f := p.Func("fib")
	// fib(8) calls fib 67 times in total; the entry block runs each call.
	if f.Blocks[0].Weight != 67 {
		t.Errorf("entry weight = %v, want 67", f.Blocks[0].Weight)
	}
	ClearProfile(p)
	if f.Blocks[0].Weight != 0 {
		t.Error("ClearProfile did not reset")
	}
}

func TestStepLimit(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "spin", 0, 0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	_, err := Run(p, "spin", nil, Options{MaxSteps: 1000})
	if err == nil {
		t.Fatal("expected step-limit error")
	}
}

func TestMemoryFaultIsError(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "bad", 0, 0)
	addr := b.Const(-8)
	v := b.Ld(addr, 0)
	b.Ret(v)
	_, err := Run(p, "bad", nil, Options{})
	if err == nil {
		t.Fatal("expected memory fault")
	}
	var f *mem.Fault
	if !errors.As(err, &f) {
		t.Fatalf("error %v (%T) does not wrap *mem.Fault", err, err)
	}
}

func TestInitImageFaultIsError(t *testing.T) {
	// A global initializer that does not fit in MemSize faults during image
	// setup, before the first instruction. That fault must come back as an
	// error like any other guest memory violation, not kill the host.
	p := ir.NewProgram()
	g := p.AddGlobal("big", 8*8)
	g.InitI = []int64{1, 2, 3, 4, 5, 6, 7, 8}
	b := ir.NewFunc(p, "main", 0, 0)
	b.Ret(b.Const(0))
	res, err := Run(p, "main", nil, Options{MemSize: mem.GlobalBase})
	if err == nil {
		t.Fatalf("expected init-image fault, got result %+v", res)
	}
	var f *mem.Fault
	if !errors.As(err, &f) {
		t.Fatalf("error %v (%T) does not wrap *mem.Fault", err, err)
	}
	if f.Reason != "out of range" {
		t.Errorf("fault reason = %q, want out of range", f.Reason)
	}
}

func TestDivideByZeroIsError(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "dz", 1, 0)
	z := b.Const(0)
	b.Ret(b.Div(b.Const(1), z))
	if _, err := Run(p, "dz", []int64{0}, Options{}); err == nil {
		t.Fatal("expected divide-by-zero error")
	}
}

// helpers constructing raw MOVs into existing registers (loop-carried vars)
func mov(dst, src isa.Reg) isa.Instr  { return isa.Instr{Op: isa.MOV, Dst: dst, A: src} }
func fmov(dst, src isa.Reg) isa.Instr { return isa.Instr{Op: isa.FMOV, Dst: dst, A: src} }
