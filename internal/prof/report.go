package prof

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// pct formats x as a percentage of total (0 when total is 0).
func pct(x, total int64) string {
	if total == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(x)/float64(total))
}

// WriteReport renders the full text report: a ledger summary, the topN
// hottest PCs and basic blocks, the per-function stall table, and the
// connect-overhead-by-vreg table. The output is deterministic for a
// deterministic run (golden-tested).
func (p *Profile) WriteReport(w io.Writer, topN int) error {
	if err := p.CrossCheck(); err != nil {
		return fmt.Errorf("prof: refusing to report unverified attribution: %w", err)
	}
	r := p.Res
	var issueCycles int64
	for k, c := range r.IssueHist {
		if k > 0 {
			issueCycles += c
		}
	}
	total := r.ActiveCycles

	fmt.Fprintf(w, "attribution profile: %d cycles, %d instrs, ipc %.3f\n",
		r.ActiveCycles, r.Instrs, float64(r.Instrs)/float64(maxI64(r.ActiveCycles, 1)))
	fmt.Fprintf(w, "  issue %d (%s)  stall-data %d (%s)  stall-mem %d (%s)  stall-conn %d (%s)\n",
		issueCycles, pct(issueCycles, total),
		r.StallData, pct(r.StallData, total),
		r.StallMem, pct(r.StallMem, total),
		r.StallConn, pct(r.StallConn, total))
	if r.StallPorts > 0 {
		// Only the portreduce backend produces this bucket; keep legacy
		// reports byte-identical by omitting it when zero.
		fmt.Fprintf(w, "  stall-ports %d (%s)\n", r.StallPorts, pct(r.StallPorts, total))
	}
	fmt.Fprintf(w, "  stall-branch %d (%s)  trap %d (%s)  halt %d\n",
		r.StallBranch, pct(r.StallBranch, total),
		r.TrapOverheads, pct(r.TrapOverheads, total), r.HaltCycles)
	co := p.ConnectOverhead()
	fmt.Fprintf(w, "  connect overhead: %d connects, %d cycles (%s of run)\n",
		r.Connects, co.Cycles, pct(co.Cycles, total))

	fmt.Fprintf(w, "\ntop %d PCs by attributed cycles:\n", topN)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "  pc\tcycles\t%%\tinstrs\twhere\tinstruction\n")
	for _, row := range p.TopPCs(topN) {
		fmt.Fprintf(tw, "  %d\t%d\t%s\t%d\t%s\t%s\n",
			row.PC, row.Cycles, pct(row.Cycles, total), row.Instrs, row.Name,
			p.Img.Code[row.PC].String())
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(w, "\ntop %d basic blocks:\n", topN)
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "  block\tcycles\t%%\tinstrs\n")
	for _, row := range p.Blocks(topN) {
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%d\n", row.Name, row.Cycles, pct(row.Cycles, total), row.Instrs)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nfunctions:\n")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "  func\tcycles\t%%\tinstrs\tissue\tdata\tmem\tconn\tbranch\ttrap\n")
	for _, row := range p.Funcs() {
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			row.Name, row.Cycles, pct(row.Cycles, total), row.Instrs,
			row.Issue, row.StallData, row.StallMem, row.StallConn, row.StallBranch, row.Trap)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if vr := p.VRegs(); len(vr) > 0 {
		fmt.Fprintf(w, "\nconnect overhead by virtual register:\n")
		tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintf(tw, "  vreg\tpairs\tcycles\n")
		for _, row := range vr {
			fmt.Fprintf(tw, "  %s\t%d\t%d\n", row.Name, row.Instrs, row.Cycles)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
