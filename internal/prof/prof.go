// Package prof rolls the simulator's per-PC cycle attribution
// (machine.PCProf) up to the compiler's units of meaning — functions,
// basic blocks, and the virtual registers whose accesses forced connect
// traffic — and renders the rcprof reports. Collection happens inside the
// issue engine (internal/machine charges each cycle as the ledger accounts
// for it); this package is pure analysis over a finished (Image, Result)
// pair, so it can cross-check the attribution against the run's cycle
// ledger and prove the profile is a lossless refinement of the aggregate
// accounting (CrossCheck).
package prof

import (
	"errors"
	"fmt"
	"sort"

	"regconn/internal/codegen"
	"regconn/internal/isa"
	"regconn/internal/machine"
)

// FuncSpan is one function's address range in the image.
type FuncSpan struct {
	Name       string
	Start, End int // [Start, End) in Image.Code
}

// Profile joins one run's per-PC attribution with the image's static
// metadata (function spans, per-instruction annotations).
type Profile struct {
	Img *machine.Image
	Res *machine.Result
	PC  *machine.PCProf

	funcs []FuncSpan      // address order
	ann   []codegen.Annot // aligned with Img.Code
}

// New builds a profile view over a run. The result must carry per-PC
// attribution (Arch.Profile / machine.Config.Prof).
func New(img *machine.Image, res *machine.Result) (*Profile, error) {
	if img == nil || res == nil {
		return nil, errors.New("prof: nil image or result")
	}
	if res.Prof == nil {
		return nil, errors.New("prof: result carries no per-PC attribution (enable profiling)")
	}
	if res.Prof.Len() != len(img.Code) {
		return nil, fmt.Errorf("prof: attribution covers %d PCs, image has %d instructions",
			res.Prof.Len(), len(img.Code))
	}
	p := &Profile{Img: img, Res: res, PC: res.Prof}
	off := 0
	for _, f := range img.Prog.Funcs {
		if start := img.FuncStart[f.Name]; start != off {
			return nil, fmt.Errorf("prof: image layout mismatch: %q starts at %d, expected %d",
				f.Name, start, off)
		}
		if len(f.Ann) != len(f.Code) {
			return nil, fmt.Errorf("prof: %q has %d annotations for %d instructions",
				f.Name, len(f.Ann), len(f.Code))
		}
		p.funcs = append(p.funcs, FuncSpan{Name: f.Name, Start: off, End: off + len(f.Code)})
		p.ann = append(p.ann, f.Ann...)
		off += len(f.Code)
	}
	if off != len(img.Code) {
		return nil, fmt.Errorf("prof: functions cover %d instructions, image has %d", off, len(img.Code))
	}
	return p, nil
}

// CrossCheck verifies the aggregate ledger closes AND that every per-PC
// attribution column sums bit-exactly to its ledger bucket.
func (p *Profile) CrossCheck() error {
	if err := p.Res.CheckLedger(); err != nil {
		return err
	}
	return p.PC.CheckAgainst(p.Res)
}

// FuncOf returns the function span containing pc.
func (p *Profile) FuncOf(pc int) FuncSpan {
	i := sort.Search(len(p.funcs), func(i int) bool { return p.funcs[i].End > pc })
	if i < len(p.funcs) && pc >= p.funcs[i].Start {
		return p.funcs[i]
	}
	return FuncSpan{Name: "?", Start: pc, End: pc + 1}
}

// Row is one aggregated report line: the attribution buckets summed over
// some set of PCs (a single PC, a basic block, a function, a vreg's
// connects).
type Row struct {
	Name   string
	PC     int   // representative pc (top-PC rows), -1 otherwise
	Instrs int64 // dynamic instructions (connect pairs for vreg rows)
	Cycles int64 // total attributed cycles (sum of the buckets below)

	Issue       int64 // issue cycles opened here
	StallData   int64
	StallMem    int64
	StallConn   int64
	StallPorts  int64
	StallBranch int64
	Trap        int64
	Halt        int64
}

// addPC accumulates one PC's attribution into the row.
func (p *Profile) addPC(r *Row, pc int) {
	r.Instrs += p.PC.Instrs[pc]
	r.Cycles += p.PC.CyclesAt(pc)
	r.Issue += p.PC.IssueCycles[pc]
	r.StallData += p.PC.StallData[pc]
	r.StallMem += p.PC.StallMem[pc]
	r.StallConn += p.PC.StallConn[pc]
	r.StallPorts += p.PC.StallPorts[pc]
	r.StallBranch += p.PC.StallBranch[pc]
	r.Trap += p.PC.TrapOverhead[pc]
	r.Halt += p.PC.Halt[pc]
}

// sortRows orders rows by attributed cycles (descending), breaking ties by
// name then pc so reports are deterministic.
func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		if rows[i].Name != rows[j].Name {
			return rows[i].Name < rows[j].Name
		}
		return rows[i].PC < rows[j].PC
	})
}

// TopPCs returns the n hottest static instructions by attributed cycles.
func (p *Profile) TopPCs(n int) []Row {
	var rows []Row
	for pc := range p.Img.Code {
		if p.PC.CyclesAt(pc) == 0 && p.PC.Instrs[pc] == 0 {
			continue
		}
		fs := p.FuncOf(pc)
		r := Row{Name: fmt.Sprintf("%s+%d", fs.Name, pc-fs.Start), PC: pc}
		p.addPC(&r, pc)
		rows = append(rows, r)
	}
	sortRows(rows)
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// Funcs returns per-function attribution totals, hottest first.
func (p *Profile) Funcs() []Row {
	var rows []Row
	for _, fs := range p.funcs {
		r := Row{Name: fs.Name, PC: -1}
		for pc := fs.Start; pc < fs.End; pc++ {
			p.addPC(&r, pc)
		}
		if r.Cycles == 0 && r.Instrs == 0 {
			continue
		}
		rows = append(rows, r)
	}
	sortRows(rows)
	return rows
}

// leaders marks the basic-block leaders of the image: function entries,
// branch targets, and the instruction after every terminator or call. The
// scheduler only reorders within these boundaries, so leaders derived from
// the final code are the blocks the machine actually executed.
func (p *Profile) leaders() []bool {
	lead := make([]bool, len(p.Img.Code))
	for _, fs := range p.funcs {
		if fs.Start < len(lead) {
			lead[fs.Start] = true
		}
	}
	for pc := range p.Img.Code {
		in := &p.Img.Code[pc]
		if in.Op == isa.BR || in.Op.IsCondBranch() {
			if in.Target >= 0 && in.Target < len(lead) {
				lead[in.Target] = true
			}
		}
		if (in.Op.IsTerminator() || in.Op == isa.CALL) && pc+1 < len(lead) {
			lead[pc+1] = true
		}
	}
	return lead
}

// Blocks returns the n hottest basic blocks by attributed cycles. Block
// names give the function plus the block's instruction offset range.
func (p *Profile) Blocks(n int) []Row {
	lead := p.leaders()
	var rows []Row
	for start := 0; start < len(lead); {
		end := start + 1
		for end < len(lead) && !lead[end] {
			end++
		}
		fs := p.FuncOf(start)
		r := Row{Name: fmt.Sprintf("%s+%d..%d", fs.Name, start-fs.Start, end-1-fs.Start), PC: start}
		for pc := start; pc < end; pc++ {
			p.addPC(&r, pc)
		}
		if r.Cycles != 0 || r.Instrs != 0 {
			rows = append(rows, r)
		}
		start = end
	}
	sortRows(rows)
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// ConnectOverhead sums the attribution over every connect instruction in
// the image plus the connect-interlock stalls they induced elsewhere —
// the run's total cycle cost of the register-connection mechanism as the
// profiler sees it.
func (p *Profile) ConnectOverhead() Row {
	r := Row{Name: "connects", PC: -1}
	for pc := range p.Img.Code {
		if p.Img.Code[pc].Op.IsConnect() {
			p.addPC(&r, pc)
		}
	}
	return r
}

// VRegs attributes connect traffic to the virtual registers that forced
// it, using the codegen debug info (Annot.CVReg). For a combined connect
// serving two vregs, the instruction's cycles are split between them (the
// first slot gets the odd cycle); pair counts are exact per slot. Connect
// pairs with no recorded vreg aggregate under "(unattributed)".
func (p *Profile) VRegs() []Row {
	acc := map[string]*Row{}
	charge := func(name string, pairs, cycles int64) {
		r, ok := acc[name]
		if !ok {
			r = &Row{Name: name, PC: -1}
			acc[name] = r
		}
		r.Instrs += pairs
		r.Cycles += cycles
	}
	for pc := range p.Img.Code {
		in := &p.Img.Code[pc]
		if !in.Op.IsConnect() {
			continue
		}
		pairs := p.PC.Instrs[pc]
		cycles := p.PC.CyclesAt(pc)
		if pairs == 0 && cycles == 0 {
			continue
		}
		fs := p.FuncOf(pc)
		prefix := "r"
		if in.CClass == isa.ClassFloat {
			prefix = "f"
		}
		name := func(slot int) string {
			v := p.ann[pc].CVReg[slot]
			if v == codegen.NoVReg {
				return "(unattributed)"
			}
			return fmt.Sprintf("%s/%s%d", fs.Name, prefix, v)
		}
		if in.Op == isa.CONUU || in.Op == isa.CONDU || in.Op == isa.CONDD {
			charge(name(0), pairs, (cycles+1)/2)
			charge(name(1), pairs, cycles/2)
		} else {
			charge(name(0), pairs, cycles)
		}
	}
	rows := make([]Row, 0, len(acc))
	for _, r := range acc {
		rows = append(rows, *r)
	}
	sortRows(rows)
	return rows
}
