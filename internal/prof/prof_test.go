package prof

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"regconn/internal/codegen"
	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/machine"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixture hand-assembles a tiny RC program — a connect-fed loop followed
// by a connect-use epilogue — and runs it with profiling on. The program
// is fully deterministic, so the rendered report is golden-testable.
func fixture(t *testing.T) (*machine.Image, *machine.Result) {
	t.Helper()
	ann := func(v int32) codegen.Annot {
		return codegen.Annot{PDst: codegen.NoPhys, PA: codegen.NoPhys, PB: codegen.NoPhys,
			CVReg: [2]int32{v, codegen.NoVReg}}
	}
	code := []isa.Instr{
		{Op: isa.MOVI, Dst: isa.IntReg(2), Imm: 0},
		{Op: isa.MOVI, Dst: isa.IntReg(3), Imm: 3},
		{Op: isa.CONDEF, CIdx: [2]uint16{4}, CPhys: [2]uint16{12}, CClass: isa.ClassInt},
		{Op: isa.MOVI, Dst: isa.IntReg(4), Imm: 7}, // writes extended r12
		// loop: r2 += r12 (via the read map), three iterations.
		{Op: isa.ADD, Dst: isa.IntReg(2), A: isa.IntReg(2), B: isa.IntReg(4)},
		{Op: isa.SUB, Dst: isa.IntReg(3), A: isa.IntReg(3), Imm: 1, UseImm: true},
		{Op: isa.BNE, A: isa.IntReg(3), Imm: 0, UseImm: true, Target: 4},
		{Op: isa.CONUSE, CIdx: [2]uint16{5}, CPhys: [2]uint16{12}, CClass: isa.ClassInt},
		{Op: isa.ADD, Dst: isa.IntReg(2), A: isa.IntReg(2), B: isa.IntReg(5)},
		{Op: isa.HALT},
	}
	anns := make([]codegen.Annot, len(code))
	for i := range anns {
		anns[i] = ann(codegen.NoVReg)
	}
	anns[2] = ann(7) // the connect-def serves vreg r7
	anns[7] = ann(9) // the connect-use serves vreg r9
	mp := &codegen.MProg{Entry: "t", IR: ir.NewProgram()}
	mp.Funcs = append(mp.Funcs, &codegen.MFunc{Name: "t", Code: code, Ann: anns})
	img, err := machine.Load(mp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.IssueRate = 2
	cfg.IntCore, cfg.IntTotal = 8, 16
	cfg.FPCore, cfg.FPTotal = 8, 16
	cfg.Prof = true
	res, err := machine.Run(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetInt != 28 {
		t.Fatalf("fixture returns %d, want 28", res.RetInt)
	}
	return img, res
}

func TestNewRequiresAttribution(t *testing.T) {
	img, res := fixture(t)
	if _, err := New(img, &machine.Result{}); err == nil {
		t.Error("New accepted a result without attribution")
	}
	if _, err := New(img, res); err != nil {
		t.Errorf("New rejected a profiled result: %v", err)
	}
}

func TestCrossCheck(t *testing.T) {
	img, res := fixture(t)
	p, err := New(img, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CrossCheck(); err != nil {
		t.Fatalf("cross-check failed on a clean run: %v", err)
	}
	// Any drift between the per-PC counters and the ledger must be caught.
	res.Prof.Instrs[0]++
	if err := p.CrossCheck(); err == nil {
		t.Error("cross-check missed a corrupted instruction counter")
	}
	res.Prof.Instrs[0]--
	res.Prof.StallData[3]++
	if err := p.CrossCheck(); err == nil {
		t.Error("cross-check missed a corrupted stall counter")
	}
	res.Prof.StallData[3]--
}

func TestRollupsPartitionCycles(t *testing.T) {
	img, res := fixture(t)
	p, err := New(img, res)
	if err != nil {
		t.Fatal(err)
	}
	// Function rows partition the active cycles exactly: every attributed
	// cycle belongs to exactly one PC, hence one function.
	var fn int64
	for _, r := range p.Funcs() {
		fn += r.Cycles
	}
	if fn != res.ActiveCycles {
		t.Errorf("function rollup covers %d cycles, run has %d", fn, res.ActiveCycles)
	}
	var blk int64
	for _, r := range p.Blocks(0) {
		blk += r.Cycles
	}
	if blk != res.ActiveCycles {
		t.Errorf("block rollup covers %d cycles, run has %d", blk, res.ActiveCycles)
	}
}

func TestVRegAttribution(t *testing.T) {
	img, res := fixture(t)
	p, err := New(img, res)
	if err != nil {
		t.Fatal(err)
	}
	rows := p.VRegs()
	if len(rows) != 2 {
		t.Fatalf("vreg rows = %+v, want r7 and r9", rows)
	}
	seen := map[string]int64{}
	for _, r := range rows {
		seen[r.Name] = r.Instrs
	}
	// Each connect executes once (neither is inside the loop).
	if seen["t/r7"] != 1 || seen["t/r9"] != 1 {
		t.Errorf("vreg pair counts = %v, want t/r7:1 t/r9:1", seen)
	}
	// The vreg table's cycles are exactly the connect instructions' share.
	var vr int64
	for _, r := range rows {
		vr += r.Cycles
	}
	if co := p.ConnectOverhead(); vr != co.Cycles {
		t.Errorf("vreg cycles %d != connect overhead %d", vr, co.Cycles)
	}
}

func TestGoldenReport(t *testing.T) {
	img, res := fixture(t)
	p, err := New(img, res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteReport(&buf, 5); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
