// Package mapcheck is the static map-state verifier (rclint): an abstract
// interpreter that symbolically executes the core.MapTable semantics — all
// four automatic-reset models (§2.3), single and combined connects (§2.2),
// and the CALL/RET home reset (§4.1) — over each lowered function's
// machine-code control-flow graph, joining map states at merge points.
//
// At every instruction it proves that
//
//	(a) each source operand's read map resolves to exactly the physical
//	    register the compiler intended (codegen.Annot.PA/PB),
//	(b) each destination's write map lands on the intended register
//	    (codegen.Annot.PDst), and
//	(c) no live connection crosses a call, return, or halt boundary: the
//	    hardware resets the table to home at CALL/RET, and trap handlers
//	    bypass it via the enable flag (§4.3), so a divert that is still
//	    unconsumed at such a site is provably wrong (or dead) code.
//
// The verifier is the static complement of the interpreter oracle: the
// oracle compares end-to-end results of one execution, while mapcheck
// proves the connect placement for *every* path of the compiled program,
// including paths the benchmark input never takes. It checks compiler
// output, so it also enforces the code generator's own invariants — only
// the reserved window registers are ever connect targets, connects route
// to the extended file, and combined connects appear only when the
// configuration enables them.
//
// Abstract domain (DESIGN.md §9): per register class, each map entry's
// read and write side holds either a known physical register or ⊤
// (unknown). Entry states join pointwise: equal values meet to themselves,
// different values to ⊤. Each diverted side additionally carries the
// program counter of the connect that diverted it until a dependent access
// consumes it; an unconsumed divert that is overwritten, auto-reset, or
// alive at a boundary is reported as a dead connect.
package mapcheck

import (
	"fmt"
	"sort"
	"strings"

	"regconn/internal/abi"
	"regconn/internal/codegen"
	"regconn/internal/core"
	"regconn/internal/isa"
	"regconn/internal/regalloc"
)

// Violation is one verifier finding, located to an exact instruction.
type Violation struct {
	Func  string // machine function name
	PC    int    // instruction index within the function
	Rule  string // rule identifier (see the Rule* constants)
	Msg   string // human-readable description
	Instr string // disassembly of the offending instruction
}

// Rule identifiers.
const (
	RuleReadMap     = "read-map"      // source resolves to the wrong/unknown register
	RuleWriteMap    = "write-map"     // destination lands on the wrong/unknown register
	RuleDeadConnect = "dead-connect"  // divert destroyed before any dependent access
	RuleIntent      = "intent"        // operand without a compiler intent annotation
	RuleGeometry    = "geometry"      // operand outside the table/file geometry
	RuleWindow      = "window"        // connect targets a non-window map entry
	RuleMode        = "mode"          // connect in a program compiled without RC
	RuleCombine     = "combine"       // combined connect with combining disabled
	RuleNoConfig    = "no-config"     // program carries no lowering configuration
	RuleBadTarget   = "branch-target" // branch target outside the function
	RuleChain       = "chain"         // chain-forwarding mark missing, spurious, or misplaced
)

func (v Violation) String() string {
	return fmt.Sprintf("%s+%d: [%s] %s  (%s)", v.Func, v.PC, v.Rule, v.Msg, v.Instr)
}

// Verify checks every function of the program under the configuration it
// was lowered with (MProg.Cfg) and returns all findings in function/pc
// order. A correct compilation yields an empty slice.
func Verify(mp *codegen.MProg) []Violation {
	var out []Violation
	if mp.Cfg.Conv == nil {
		return []Violation{{Func: mp.Entry, Rule: RuleNoConfig,
			Msg: "machine program carries no lowering configuration (MProg.Cfg unset)"}}
	}
	for _, f := range mp.Funcs {
		out = append(out, VerifyFunc(f, mp.Cfg)...)
	}
	return out
}

// Check is Verify with the findings folded into a single error (nil when
// the program verifies clean). At most eight findings are listed.
func Check(mp *codegen.MProg) error {
	vs := Verify(mp)
	if len(vs) == 0 {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "mapcheck: %d violation(s):", len(vs))
	for i, v := range vs {
		if i == 8 {
			fmt.Fprintf(&sb, "\n  ... and %d more", len(vs)-i)
			break
		}
		sb.WriteString("\n  ")
		sb.WriteString(v.String())
	}
	return fmt.Errorf("%s", sb.String())
}

// VerifyFunc checks a single machine function.
func VerifyFunc(mf *codegen.MFunc, cfg codegen.Config) []Violation {
	v := &verifier{mf: mf, cfg: cfg}
	if cfg.Mode == regalloc.RC && !cfg.DirectExtended {
		v.runRC()
	} else {
		// Spill, Unlimited, and DirectExtended (portreduce) all address
		// physical registers directly: the identity check applies.
		v.runIdentity()
	}
	if cfg.Chain {
		v.runChain()
	}
	sort.SliceStable(v.out, func(i, j int) bool { return v.out[i].PC < v.out[j].PC })
	return v.out
}

// unknown is the ⊤ element of the per-entry value lattice.
const unknown = int32(-1)

// noDivert marks an entry side with no unconsumed connect.
const noDivert = int32(-1)

// tabState is the abstract state of one class's mapping table: the value
// each side of each entry resolves to (or unknown), plus the pc of the
// connect whose divert has not yet been consumed by a dependent access.
type tabState struct {
	read, write   []int32
	readC, writeC []int32
}

func newTabState(m int) *tabState {
	t := &tabState{
		read: make([]int32, m), write: make([]int32, m),
		readC: make([]int32, m), writeC: make([]int32, m),
	}
	t.reset()
	return t
}

// reset puts every entry at its home location (the CALL/RET/power-up state).
func (t *tabState) reset() {
	for i := range t.read {
		t.read[i] = int32(i)
		t.write[i] = int32(i)
		t.readC[i] = noDivert
		t.writeC[i] = noDivert
	}
}

func (t *tabState) clone() *tabState {
	c := &tabState{
		read:  append([]int32(nil), t.read...),
		write: append([]int32(nil), t.write...),
		readC: append([]int32(nil), t.readC...), writeC: append([]int32(nil), t.writeC...),
	}
	return c
}

// join merges o into t pointwise and reports whether t changed. Values
// meet to ⊤ when they differ; divert markers survive a join only when both
// sides agree (dropping a marker can only under-report dead connects,
// never produce a false positive).
func (t *tabState) join(o *tabState) bool {
	changed := false
	meet := func(a []int32, b []int32, bottom int32) {
		for i := range a {
			if a[i] != b[i] && a[i] != bottom {
				a[i] = bottom
				changed = true
			}
		}
	}
	// A differing value meets to unknown; a differing marker is dropped.
	for i := range t.read {
		if t.read[i] != o.read[i] && t.read[i] != unknown {
			t.read[i] = unknown
			changed = true
		}
		if t.write[i] != o.write[i] && t.write[i] != unknown {
			t.write[i] = unknown
			changed = true
		}
	}
	meet(t.readC, o.readC, noDivert)
	meet(t.writeC, o.writeC, noDivert)
	return changed
}

// state is the full abstract machine state: one table per register class.
type state struct {
	i, f *tabState
}

func (s *state) of(class isa.RegClass) *tabState {
	if class == isa.ClassFloat {
		return s.f
	}
	return s.i
}

func (s *state) clone() *state { return &state{i: s.i.clone(), f: s.f.clone()} }

func (s *state) join(o *state) bool {
	ci := s.i.join(o.i)
	cf := s.f.join(o.f)
	return ci || cf
}

func (s *state) reset() {
	s.i.reset()
	s.f.reset()
}

// verifier holds the per-function analysis.
type verifier struct {
	mf  *codegen.MFunc
	cfg codegen.Config
	out []Violation

	leader  []bool
	inState map[int]*state
	work    []int
}

func (v *verifier) reportf(pc int, rule, format string, args ...any) {
	v.out = append(v.out, Violation{
		Func: v.mf.Name, PC: pc, Rule: rule,
		Msg:   fmt.Sprintf(format, args...),
		Instr: v.mf.Code[pc].String(),
	})
}

func (v *verifier) conv(class isa.RegClass) *abi.Convention { return v.cfg.Conv.Of(class) }

// runIdentity verifies programs compiled without RC (Spill and Unlimited
// modes): the mapping table is identity over the whole file and the code
// must contain no connects, so every operand index must equal the
// annotated physical register directly.
func (v *verifier) runIdentity() {
	for pc := range v.mf.Code {
		in, ann := &v.mf.Code[pc], &v.mf.Ann[pc]
		m := in.Op.Meta()
		if m.Connect {
			v.reportf(pc, RuleMode, "connect instruction in a program compiled without RC")
			continue
		}
		check := func(slot string, idx int, want int32) {
			if want == codegen.NoPhys {
				v.reportf(pc, RuleIntent, "%s operand read without intent annotation", slot)
				return
			}
			if int32(idx) != want {
				v.reportf(pc, RuleReadMap,
					"%s operand addresses r/f%d but the compiler intended physical %d (identity mapping)",
					slot, idx, want)
			}
		}
		if readsA(in) {
			check("A", in.A.N, ann.PA)
		}
		if readsB(in) {
			check("B", in.B.N, ann.PB)
		}
		if m.HasDst && in.Dst.Valid() {
			if ann.PDst == codegen.NoPhys {
				v.reportf(pc, RuleIntent, "destination written without intent annotation")
			} else if int32(in.Dst.N) != ann.PDst {
				v.reportf(pc, RuleWriteMap,
					"destination addresses %v but the compiler intended physical %d (identity mapping)",
					in.Dst, ann.PDst)
			}
		}
	}
}

// readsA and readsB report whether the machine instruction reads the given
// operand slot as a register source (mirrors the Meta operand roles with
// the RET-valid and immediate special cases).
func readsA(in *isa.Instr) bool {
	m := in.Op.Meta()
	if !m.ReadsA {
		return false
	}
	if in.Op == isa.RET {
		return in.A.Valid()
	}
	return in.A.Valid()
}

func readsB(in *isa.Instr) bool {
	m := in.Op.Meta()
	if !m.ReadsB {
		return false
	}
	if m.BImm && in.UseImm {
		return false
	}
	return in.B.Valid()
}

// runRC verifies a with-RC function: forward dataflow to a fixpoint over
// the instruction-level CFG, then one reporting pass per reachable block
// under the final entry states.
func (v *verifier) runRC() {
	n := len(v.mf.Code)
	if n == 0 {
		return
	}
	// Leaders: function entry, branch targets, and the instruction after
	// every terminator.
	v.leader = make([]bool, n)
	v.leader[0] = true
	for pc := range v.mf.Code {
		in := &v.mf.Code[pc]
		m := in.Op.Meta()
		if m.Branch {
			if in.Target >= 0 && in.Target < n {
				v.leader[in.Target] = true
			}
		}
		if m.Terminator && pc+1 < n {
			v.leader[pc+1] = true
		}
	}

	entry := &state{
		i: newTabState(v.cfg.Conv.Int.Core),
		f: newTabState(v.cfg.Conv.FP.Core),
	}
	v.inState = map[int]*state{0: entry}
	v.work = []int{0}
	for len(v.work) > 0 {
		pc := v.work[len(v.work)-1]
		v.work = v.work[:len(v.work)-1]
		v.walk(pc, v.inState[pc].clone(), false)
	}

	// Reporting pass: each reachable block exactly once, in address order.
	blocks := make([]int, 0, len(v.inState))
	for pc := range v.inState {
		blocks = append(blocks, pc)
	}
	sort.Ints(blocks)
	for _, pc := range blocks {
		v.walk(pc, v.inState[pc].clone(), true)
	}
}

// flow propagates st into the block starting at target (fixpoint phase
// only); the reporting phase re-walks blocks from their final in-states
// and must not propagate again.
func (v *verifier) flow(target int, st *state, report bool) {
	if report {
		return
	}
	cur, ok := v.inState[target]
	if !ok {
		v.inState[target] = st.clone()
		v.work = append(v.work, target)
		return
	}
	if cur.join(st) {
		v.work = append(v.work, target)
	}
}

// walk interprets one basic block from pc under st, transferring state
// across each instruction and dispatching successors. With report set it
// additionally records violations (state transfer is identical in both
// phases, so the fixpoint and the reporting pass see the same states).
func (v *verifier) walk(pc int, st *state, report bool) {
	n := len(v.mf.Code)
	for ; pc < n; pc++ {
		in := &v.mf.Code[pc]
		m := in.Op.Meta()
		v.step(st, pc, report)
		switch {
		case m.Branch:
			if in.Target < 0 || in.Target >= n {
				if report {
					v.reportf(pc, RuleBadTarget, "branch target %d outside function [0,%d)", in.Target, n)
				}
			} else {
				v.flow(in.Target, st, report)
			}
			if !m.CondBranch {
				return // unconditional: no fallthrough
			}
		case in.Op == isa.RET, in.Op == isa.HALT:
			return
		}
		if pc+1 < n && v.leader[pc+1] {
			v.flow(pc+1, st, report)
			return
		}
	}
}

// step applies one instruction's checks and abstract-state transfer.
func (v *verifier) step(st *state, pc int, report bool) {
	in, ann := &v.mf.Code[pc], &v.mf.Ann[pc]
	m := in.Op.Meta()
	switch {
	case m.Connect:
		v.stepConnect(st, pc, report)
	case in.Op == isa.CALL:
		v.checkBoundary(st, pc, "call", report)
		st.reset() // hardware resets the table to home (§4.1)
	case in.Op == isa.RET:
		if in.A.Valid() {
			v.checkRead(st, pc, "A", in.A, ann.PA, report)
		}
		v.checkBoundary(st, pc, "return", report)
	case in.Op == isa.HALT:
		v.checkBoundary(st, pc, "halt", report)
	default:
		if readsA(in) {
			v.checkRead(st, pc, "A", in.A, ann.PA, report)
		}
		if readsB(in) {
			v.checkRead(st, pc, "B", in.B, ann.PB, report)
		}
		if m.HasDst && in.Dst.Valid() {
			v.stepWrite(st, pc, ann.PDst, report)
		}
	}
}

// stepConnect applies a connect instruction: operand validation plus the
// map-entry updates, in pair order.
func (v *verifier) stepConnect(st *state, pc int, report bool) {
	in := &v.mf.Code[pc]
	m := in.Op.Meta()
	if m.NPairs == 2 && !v.cfg.CombineConnects && report {
		v.reportf(pc, RuleCombine, "combined connect emitted with CombineConnects disabled")
	}
	cv := v.conv(in.CClass)
	ts := st.of(in.CClass)
	for k := 0; k < int(m.NPairs); k++ {
		idx, phys, def := int(in.CIdx[k]), int(in.CPhys[k]), m.PairDef[k]
		if idx >= cv.Core || phys >= cv.Total {
			if report {
				v.reportf(pc, RuleGeometry,
					"connect pair %d (%d -> %d) outside table geometry m=%d n=%d",
					k, idx, phys, cv.Core, cv.Total)
			}
			continue
		}
		if !isWindow(cv, idx) {
			if report {
				v.reportf(pc, RuleWindow,
					"connect targets map entry %d, which is not a reserved window (%v)",
					idx, cv.SpillTemps)
			}
		}
		if !cv.IsExtended(phys) && report {
			v.reportf(pc, RuleWindow,
				"connect routes map entry %d to core register %d; only the extended file is a valid connect target",
				idx, phys)
		}
		side, mark := ts.read, ts.readC
		if def {
			side, mark = ts.write, ts.writeC
		}
		if mark[idx] != noDivert && report {
			v.reportf(pc, RuleDeadConnect,
				"connect at pc %d diverted %s map entry %d but no dependent access ran before this overwrite",
				mark[idx], sideName(def), idx)
		}
		side[idx] = int32(phys)
		if phys != idx {
			mark[idx] = int32(pc)
		} else {
			mark[idx] = noDivert
		}
	}
}

// checkRead verifies one source operand against its intent annotation and
// consumes the entry's divert marker.
func (v *verifier) checkRead(st *state, pc int, slot string, r isa.Reg, want int32, report bool) {
	cv := v.conv(r.Class)
	if r.N < 0 || r.N >= cv.Core {
		if report {
			v.reportf(pc, RuleGeometry, "%s operand %v outside addressable range [0,%d)", slot, r, cv.Core)
		}
		return
	}
	ts := st.of(r.Class)
	if report {
		switch got := ts.read[r.N]; {
		case want == codegen.NoPhys:
			v.reportf(pc, RuleIntent, "%s operand %v read without intent annotation", slot, r)
		case got == unknown:
			v.reportf(pc, RuleReadMap,
				"%s operand %v reads through a map entry whose resolution is path-dependent (intended physical %d)",
				slot, r, want)
		case got != want:
			v.reportf(pc, RuleReadMap,
				"%s operand %v resolves to physical %d but the compiler intended %d",
				slot, r, got, want)
		}
	}
	ts.readC[r.N] = noDivert
}

// stepWrite verifies the destination operand and applies the automatic-
// reset side effect of the configured model (§2.3, mirrors
// core.MapTable.NoteWrite).
func (v *verifier) stepWrite(st *state, pc int, want int32, report bool) {
	in := &v.mf.Code[pc]
	d := in.Dst
	cv := v.conv(d.Class)
	if d.N < 0 || d.N >= cv.Core {
		if report {
			v.reportf(pc, RuleGeometry, "destination %v outside addressable range [0,%d)", d, cv.Core)
		}
		return
	}
	ts := st.of(d.Class)
	old := ts.write[d.N]
	if report {
		switch {
		case want == codegen.NoPhys:
			v.reportf(pc, RuleIntent, "destination %v written without intent annotation", d)
		case old == unknown:
			v.reportf(pc, RuleWriteMap,
				"destination %v writes through a map entry whose resolution is path-dependent (intended physical %d)",
				d, want)
		case old != want:
			v.reportf(pc, RuleWriteMap,
				"destination %v lands on physical %d but the compiler intended %d",
				d, old, want)
		}
	}
	ts.writeC[d.N] = noDivert
	home := int32(d.N)
	switch v.cfg.Model {
	case core.NoReset:
		// maps unchanged
	case core.WriteReset:
		ts.write[d.N] = home
	case core.WriteResetReadUpdate:
		if ts.readC[d.N] != noDivert && report {
			v.reportf(pc, RuleDeadConnect,
				"connect at pc %d diverted read map entry %d but the write here retargets it before any read",
				ts.readC[d.N], d.N)
		}
		ts.read[d.N] = old
		ts.readC[d.N] = noDivert
		ts.write[d.N] = home
	case core.ReadWriteReset:
		if ts.readC[d.N] != noDivert && report {
			v.reportf(pc, RuleDeadConnect,
				"connect at pc %d diverted read map entry %d but the write here resets it before any read",
				ts.readC[d.N], d.N)
		}
		ts.read[d.N] = home
		ts.readC[d.N] = noDivert
		ts.write[d.N] = home
	}
}

// checkBoundary enforces rule (c): the hardware destroys all connection
// state at calls and returns (home reset, §4.1), and nothing survives a
// halt, so any divert still unconsumed at such a site can never influence
// execution — the connect that created it is misplaced or dead.
func (v *verifier) checkBoundary(st *state, pc int, site string, report bool) {
	if !report {
		return
	}
	for _, class := range []isa.RegClass{isa.ClassInt, isa.ClassFloat} {
		ts := st.of(class)
		for i := range ts.readC {
			if ts.readC[i] != noDivert {
				v.reportf(pc, RuleDeadConnect,
					"connect at pc %d diverted %s read map entry %d but the divert reaches this %s unconsumed",
					ts.readC[i], class, i, site)
			}
			if ts.writeC[i] != noDivert {
				v.reportf(pc, RuleDeadConnect,
					"connect at pc %d diverted %s write map entry %d but the divert reaches this %s unconsumed",
					ts.writeC[i], class, i, site)
			}
		}
	}
}

func sideName(def bool) string {
	if def {
		return "write"
	}
	return "read"
}

// isWindow reports whether idx is one of the reserved connect windows
// (the spill temporaries double as windows in RC mode; codegen never
// connects any other entry, which is what keeps allocated core registers
// at home globally).
func isWindow(cv *abi.Convention, idx int) bool {
	for _, w := range cv.SpillTemps {
		if w == idx {
			return true
		}
	}
	return false
}
