package mapcheck

import (
	"strings"
	"testing"

	"regconn/internal/abi"
	"regconn/internal/codegen"
	"regconn/internal/core"
	"regconn/internal/isa"
	"regconn/internal/regalloc"
)

// Hand-built machine functions over an 8-core/16-total geometry:
// windows (spill temps) are entries 4..7, extended registers 8..15.

func rcCfg(model core.Model) codegen.Config {
	return codegen.Config{
		Conv:            abi.New(8, 16, 8, 16),
		Mode:            regalloc.RC,
		Model:           model,
		CombineConnects: true,
	}
}

func ann(dst, a, b int32) codegen.Annot { return codegen.Annot{PDst: dst, PA: a, PB: b} }

const noP = codegen.NoPhys

func conuse(idx, phys int) (isa.Instr, codegen.Annot) {
	return isa.Instr{Op: isa.CONUSE, CIdx: [2]uint16{uint16(idx)}, CPhys: [2]uint16{uint16(phys)}, CClass: isa.ClassInt},
		ann(noP, noP, noP)
}

func condef(idx, phys int) (isa.Instr, codegen.Annot) {
	in, a := conuse(idx, phys)
	in.Op = isa.CONDEF
	return in, a
}

// mfunc assembles instruction/annotation pairs into an MFunc.
func mfunc(name string, pairs ...any) *codegen.MFunc {
	mf := &codegen.MFunc{Name: name}
	for i := 0; i < len(pairs); i += 2 {
		mf.Code = append(mf.Code, pairs[i].(isa.Instr))
		mf.Ann = append(mf.Ann, pairs[i+1].(codegen.Annot))
	}
	return mf
}

func wantRules(t *testing.T, vs []Violation, rules ...string) {
	t.Helper()
	var got []string
	for _, v := range vs {
		got = append(got, v.Rule)
	}
	if len(got) != len(rules) {
		t.Fatalf("got %d violations %v, want rules %v\n%v", len(got), got, rules, vs)
	}
	for i, r := range rules {
		if got[i] != r {
			t.Fatalf("violation %d: got rule %s, want %s\n%v", i, got[i], r, vs)
		}
	}
}

func TestCleanConnectSequence(t *testing.T) {
	// def through a window to ext r10, then (model 3) read it back via the
	// auto-updated read map, plus an explicit connect-use through another
	// window.
	cu, cua := conuse(5, 10)
	cd, cda := condef(4, 10)
	mf := mfunc("f",
		isa.Instr{Op: isa.MOVI, Dst: isa.IntReg(2), Imm: 5}, ann(2, noP, noP),
		cd, cda,
		isa.Instr{Op: isa.ADD, Dst: isa.IntReg(4), A: isa.IntReg(2), Imm: 1, UseImm: true}, ann(10, 2, noP),
		cu, cua,
		isa.Instr{Op: isa.MOV, Dst: isa.IntReg(3), A: isa.IntReg(5)}, ann(3, 10, noP),
		isa.Instr{Op: isa.RET}, ann(noP, noP, noP),
	)
	if vs := VerifyFunc(mf, rcCfg(core.WriteResetReadUpdate)); len(vs) != 0 {
		t.Fatalf("clean program flagged: %v", vs)
	}
}

func TestStaleReadAfterWriteReset(t *testing.T) {
	// Model 2 resets only the write map: reading the window afterwards
	// resolves to home, not the extended register the annotation intends.
	cd, cda := condef(4, 10)
	mf := mfunc("f",
		cd, cda,
		isa.Instr{Op: isa.ADD, Dst: isa.IntReg(4), Imm: 1, UseImm: true, A: isa.IntReg(2)}, ann(10, 2, noP),
		isa.Instr{Op: isa.MOV, Dst: isa.IntReg(3), A: isa.IntReg(4)}, ann(3, 10, noP),
		isa.Instr{Op: isa.RET}, ann(noP, noP, noP),
	)
	vs := VerifyFunc(mf, rcCfg(core.WriteReset))
	wantRules(t, vs, RuleReadMap)
	if vs[0].PC != 2 {
		t.Fatalf("violation at pc %d, want 2: %v", vs[0].PC, vs[0])
	}
	if !strings.Contains(vs[0].Msg, "intended 10") {
		t.Fatalf("message lacks intent: %q", vs[0].Msg)
	}
}

func TestUnknownAtMerge(t *testing.T) {
	// One path diverts entry 4's read map (model 1 never resets it), the
	// other leaves it home; the merge read is path-dependent.
	cu, cua := conuse(4, 10)
	mf := mfunc("f",
		isa.Instr{Op: isa.MOVI, Dst: isa.IntReg(2), Imm: 0}, ann(2, noP, noP),
		isa.Instr{Op: isa.BEQ, A: isa.IntReg(2), Imm: 0, UseImm: true, Target: 4}, ann(noP, 2, noP),
		cu, cua,
		isa.Instr{Op: isa.MOV, Dst: isa.IntReg(3), A: isa.IntReg(4)}, ann(3, 10, noP),
		isa.Instr{Op: isa.MOV, Dst: isa.IntReg(2), A: isa.IntReg(4)}, ann(2, 4, noP),
		isa.Instr{Op: isa.RET}, ann(noP, noP, noP),
	)
	vs := VerifyFunc(mf, rcCfg(core.NoReset))
	wantRules(t, vs, RuleReadMap)
	if vs[0].PC != 4 {
		t.Fatalf("violation at pc %d, want 4: %v", vs[0].PC, vs[0])
	}
	if !strings.Contains(vs[0].Msg, "path-dependent") {
		t.Fatalf("unexpected message: %q", vs[0].Msg)
	}
}

func TestDeadConnectAtCall(t *testing.T) {
	// A divert that reaches a CALL unconsumed is dead: the hardware resets
	// the table to home before the callee runs.
	cu, cua := conuse(4, 10)
	mf := mfunc("f",
		cu, cua,
		isa.Instr{Op: isa.CALL, Sym: "g"}, ann(noP, noP, noP),
		isa.Instr{Op: isa.MOV, Dst: isa.IntReg(3), A: isa.IntReg(4)}, ann(3, 4, noP),
		isa.Instr{Op: isa.RET}, ann(noP, noP, noP),
	)
	vs := VerifyFunc(mf, rcCfg(core.WriteResetReadUpdate))
	wantRules(t, vs, RuleDeadConnect)
	if vs[0].PC != 1 {
		t.Fatalf("violation at pc %d, want 1 (the call): %v", vs[0].PC, vs[0])
	}
	if !strings.Contains(vs[0].Msg, "connect at pc 0") {
		t.Fatalf("message does not locate the connect: %q", vs[0].Msg)
	}
}

func TestDeadConnectOverwrite(t *testing.T) {
	cu1, a1 := conuse(4, 10)
	cu2, a2 := conuse(4, 11)
	mf := mfunc("f",
		cu1, a1,
		cu2, a2,
		isa.Instr{Op: isa.MOV, Dst: isa.IntReg(3), A: isa.IntReg(4)}, ann(3, 11, noP),
		isa.Instr{Op: isa.RET}, ann(noP, noP, noP),
	)
	vs := VerifyFunc(mf, rcCfg(core.WriteResetReadUpdate))
	wantRules(t, vs, RuleDeadConnect)
	if vs[0].PC != 1 {
		t.Fatalf("violation at pc %d, want 1: %v", vs[0].PC, vs[0])
	}
}

func TestGeometryAndWindowRules(t *testing.T) {
	badIdx, aIdx := conuse(3, 10)   // entry 3 is not a window
	badPhys, aPhys := conuse(4, 20) // physical 20 outside n=16
	badExt, aExt := conuse(5, 3)    // core register as connect target
	mf := mfunc("f",
		badIdx, aIdx,
		badPhys, aPhys,
		badExt, aExt,
		isa.Instr{Op: isa.MOV, Dst: isa.IntReg(2), A: isa.IntReg(3)}, ann(2, 10, noP),
		isa.Instr{Op: isa.MOV, Dst: isa.IntReg(2), A: isa.IntReg(5)}, ann(2, 3, noP),
		isa.Instr{Op: isa.RET}, ann(noP, noP, noP),
	)
	vs := VerifyFunc(mf, rcCfg(core.WriteResetReadUpdate))
	wantRules(t, vs, RuleWindow, RuleGeometry, RuleWindow)
}

func TestMissingIntent(t *testing.T) {
	mf := mfunc("f",
		isa.Instr{Op: isa.MOVI, Dst: isa.IntReg(2), Imm: 1}, ann(noP, noP, noP),
		isa.Instr{Op: isa.RET}, ann(noP, noP, noP),
	)
	vs := VerifyFunc(mf, rcCfg(core.WriteResetReadUpdate))
	wantRules(t, vs, RuleIntent)
}

func TestIdentityModeRejectsConnects(t *testing.T) {
	cu, cua := conuse(4, 10)
	mf := mfunc("f",
		cu, cua,
		isa.Instr{Op: isa.MOV, Dst: isa.IntReg(3), A: isa.IntReg(4)}, ann(3, 9, noP),
		isa.Instr{Op: isa.RET}, ann(noP, noP, noP),
	)
	cfg := rcCfg(core.WriteResetReadUpdate)
	cfg.Mode = regalloc.Spill
	vs := VerifyFunc(mf, cfg)
	wantRules(t, vs, RuleMode, RuleReadMap)
}

func TestCombineDisabledRejectsPairOps(t *testing.T) {
	in := isa.Instr{Op: isa.CONUU,
		CIdx: [2]uint16{4, 5}, CPhys: [2]uint16{10, 11}, CClass: isa.ClassInt}
	mf := mfunc("f",
		in, ann(noP, noP, noP),
		isa.Instr{Op: isa.ADD, Dst: isa.IntReg(2), A: isa.IntReg(4), B: isa.IntReg(5)}, ann(2, 10, 11),
		isa.Instr{Op: isa.RET}, ann(noP, noP, noP),
	)
	cfg := rcCfg(core.WriteResetReadUpdate)
	cfg.CombineConnects = false
	vs := VerifyFunc(mf, cfg)
	wantRules(t, vs, RuleCombine)
}

func TestCallResetsToHome(t *testing.T) {
	// After a CALL the table is home again: reading entry 4 with home
	// intent must verify even though the pre-call state had it diverted
	// (and consumed).
	cu, cua := conuse(4, 10)
	mf := mfunc("f",
		cu, cua,
		isa.Instr{Op: isa.MOV, Dst: isa.IntReg(3), A: isa.IntReg(4)}, ann(3, 10, noP),
		isa.Instr{Op: isa.CALL, Sym: "g"}, ann(noP, noP, noP),
		isa.Instr{Op: isa.MOV, Dst: isa.IntReg(3), A: isa.IntReg(4)}, ann(3, 4, noP),
		isa.Instr{Op: isa.RET}, ann(noP, noP, noP),
	)
	if vs := VerifyFunc(mf, rcCfg(core.NoReset)); len(vs) != 0 {
		t.Fatalf("post-call home read flagged: %v", vs)
	}
}

func TestNoConfig(t *testing.T) {
	mp := &codegen.MProg{Entry: "__start"}
	vs := Verify(mp)
	wantRules(t, vs, RuleNoConfig)
}

func TestCheckAggregatesError(t *testing.T) {
	cu, cua := conuse(3, 10)
	mp := &codegen.MProg{
		Entry: "__start",
		Cfg:   rcCfg(core.WriteResetReadUpdate),
		Funcs: []*codegen.MFunc{mfunc("f",
			cu, cua,
			isa.Instr{Op: isa.RET}, ann(noP, noP, noP),
		)},
	}
	err := Check(mp)
	if err == nil {
		t.Fatal("Check accepted a bad program")
	}
	if !strings.Contains(err.Error(), "f+0") {
		t.Fatalf("error lacks location: %v", err)
	}
}
