package mapcheck

import (
	"regconn/internal/codegen"
	"regconn/internal/isa"
)

// Chain-forwarding verification (the chain backend). The marking rule is
// purely local and syntactic (see codegen.MarkChains), so the verifier
// re-derives the expected mark set from the machine code alone and
// compares it against the annotations elementwise. A missing mark would
// make the machine model a register-file access the scheme elides; a
// spurious or misplaced mark would forward a value that is not
// architecturally dead — both are rejected at the exact instruction.

// runChain checks every ChainOut/ChainA/ChainB annotation of the function
// against the independently re-derived expectation.
func (v *verifier) runChain() {
	mf := v.mf
	n := len(mf.Code)
	if n == 0 {
		return
	}
	leaders := make([]bool, n)
	leaders[0] = true
	for pc := range mf.Code {
		in := &mf.Code[pc]
		m := in.Op.Meta()
		if m.Branch && in.Target >= 0 && in.Target < n {
			leaders[in.Target] = true
		}
		if m.Terminator && pc+1 < n {
			leaders[pc+1] = true
		}
	}
	expOut := make([]bool, n)
	expA := make([]bool, n)
	expB := make([]bool, n)
	for pc := 0; pc+1 < n; pc++ {
		prod, pann := &mf.Code[pc], &mf.Ann[pc]
		if prod.Op.Kind() != isa.KindIntALU {
			continue
		}
		m := prod.Op.Meta()
		if !m.HasDst || !prod.Dst.Valid() || prod.Dst.Class != isa.ClassInt {
			continue
		}
		p := pann.PDst
		if p == codegen.NoPhys || p == isa.RegZero {
			continue
		}
		if leaders[pc+1] {
			continue
		}
		cons, cann := &mf.Code[pc+1], &mf.Ann[pc+1]
		if cons.Op.Meta().Connect {
			continue
		}
		chainA := readsA(cons) && cons.A.Class == isa.ClassInt && cann.PA == p
		chainB := readsB(cons) && cons.B.Class == isa.ClassInt && cann.PB == p
		if !chainA && !chainB {
			continue
		}
		if !chainDead(mf, leaders, pc+1, p) {
			continue
		}
		expOut[pc] = true
		expA[pc+1] = chainA
		expB[pc+1] = chainB
	}
	for pc := range mf.Code {
		ann := &mf.Ann[pc]
		if ann.ChainOut != expOut[pc] {
			v.reportf(pc, RuleChain, "chain-out mark is %v but re-derivation expects %v",
				ann.ChainOut, expOut[pc])
		}
		if ann.ChainA != expA[pc] {
			v.reportf(pc, RuleChain, "chain-A mark is %v but re-derivation expects %v",
				ann.ChainA, expA[pc])
		}
		if ann.ChainB != expB[pc] {
			v.reportf(pc, RuleChain, "chain-B mark is %v but re-derivation expects %v",
				ann.ChainB, expB[pc])
		}
	}
}

// chainDefs reports whether the instruction at i writes integer physical
// register p (by annotation; under chain mode instructions carry physical
// numbers directly and runIdentity enforces the agreement).
func chainDefs(mf *codegen.MFunc, i int, p int32) bool {
	in, ann := &mf.Code[i], &mf.Ann[i]
	return in.Op.Meta().HasDst && in.Dst.Valid() &&
		in.Dst.Class == isa.ClassInt && ann.PDst == p
}

// chainReads reports whether the instruction at i reads integer physical
// register p through A or B.
func chainReads(mf *codegen.MFunc, i int, p int32) bool {
	in, ann := &mf.Code[i], &mf.Ann[i]
	if readsA(in) && in.A.Class == isa.ClassInt && ann.PA == p {
		return true
	}
	return readsB(in) && in.B.Class == isa.ClassInt && ann.PB == p
}

// chainDead mirrors codegen's dead-after proof: after the consumer at pc,
// register p must be killed by a following def before any read, CALL,
// terminator, block boundary, or the end of the function. Reads are
// checked before defs so a read-and-redefine counts as a second use.
func chainDead(mf *codegen.MFunc, leaders []bool, pc int, p int32) bool {
	if chainDefs(mf, pc, p) {
		return true
	}
	if mf.Code[pc].Op.Meta().Terminator {
		return false
	}
	for j := pc + 1; j < len(mf.Code); j++ {
		if leaders[j] {
			return false
		}
		in := &mf.Code[j]
		if in.Op == isa.CALL {
			return false
		}
		if chainReads(mf, j, p) {
			return false
		}
		if chainDefs(mf, j, p) {
			return true
		}
		if in.Op.Meta().Terminator {
			return false
		}
	}
	return false
}
