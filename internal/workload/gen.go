package workload

import (
	"fmt"
	"math/rand"

	"regconn/internal/ir"
	"regconn/internal/isa"
)

// genWords is the size (in 8-byte words) of each scratch global. Every
// memory access the generator emits is masked into this range, so a
// generated program can never fault.
const genWords = 64

// maxNest bounds loop/branch nesting so a profile with heavy loop weights
// cannot stack trip counts into an unbounded runtime.
const maxNest = 3

// Statement kinds the generator draws from; a Profile weights them.
const (
	kNewVar  = iota // bind a fresh integer expression
	kMutate         // overwrite a live integer variable
	kStore          // bounded store to the integer scratch global
	kIfElse         // if/else on a comparison of live variables
	kLoop           // counted loop with a fixed trip count
	kBranchy        // counted loop with a data-dependent branch per trip
	kCall           // call a previously generated function
	kFP             // floating-point arithmetic (dyadic-exact constants)
	kFPMem          // bounded FP load/store on the FP scratch global
	kShift          // shift chain
	kExpr           // bind a small integer expression
	numKinds
)

// weights gives each statement kind a relative selection weight. A zero
// weight removes the kind from the profile's repertoire entirely.
type weights [numKinds]int

func (w weights) total() int {
	t := 0
	for _, v := range w {
		t += v
	}
	return t
}

// progGen holds the generator state while one program is built. The
// algorithm is the fuzz harness's original genProgram, generalized: every
// shape decision (function count, statement mix, loop trips, seed
// variables) comes from the Profile, and every random draw comes from one
// seeded rand.Rand, so a (profile, seed) pair names exactly one program.
type progGen struct {
	rng  *rand.Rand
	pr   *Profile
	p    *ir.Program
	b    *ir.Builder
	base isa.Reg // base address of the integer scratch global
	fbas isa.Reg // base address of the FP scratch global
	vars []isa.Reg
	fps  []isa.Reg
	fns  []string // callable (already generated) functions
	nest int      // current loop/branch nesting depth
}

// span draws uniformly from the inclusive range r.
func (g *progGen) span(r [2]int) int {
	if r[1] <= r[0] {
		return r[0]
	}
	return r[0] + g.rng.Intn(r[1]-r[0]+1)
}

// genProgram builds the profile's program for the seed: structured control
// flow (if/else, counted loops), bounded memory accesses, non-recursive
// calls, integer and floating-point arithmetic, folded into a single
// checksum that main returns. Programs are well-formed (ir.Verify clean)
// and terminating by construction.
func genProgram(pr *Profile, seed int64) *ir.Program {
	g := &progGen{rng: rand.New(rand.NewSource(seed ^ pr.seedSalt())), pr: pr, p: ir.NewProgram()}
	mem := g.p.AddGlobal("mem", genWords*8)
	mem.InitI = make([]int64, genWords)
	for i := range mem.InitI {
		mem.InitI[i] = g.rng.Int63n(1 << 16)
	}
	fmem := g.p.AddGlobal("fmem", genWords*8)
	fmem.InitF = make([]float64, genWords)
	for i := range fmem.InitF {
		fmem.InitF[i] = 0.25 * float64(g.rng.Intn(1<<10))
	}

	// Leaf functions first, then (for multiprogrammed mixes) one phase
	// function per sub-profile, then main, which may call any of them.
	nFuncs := g.span(pr.funcs)
	for i := 0; i < nFuncs; i++ {
		name := fmt.Sprintf("f%d", i)
		g.genFunc(pr, name, 1+g.rng.Intn(2))
		g.fns = append(g.fns, name)
	}
	var phases []string
	for i, sub := range pr.phases {
		subPr := mustProfile(sub)
		name := fmt.Sprintf("phase_%s_%d", subPr.Name[:4], i)
		g.genFunc(subPr, name, 1)
		phases = append(phases, name)
	}
	g.genMain(phases)
	return g.p
}

// genFunc emits one callable function shaped by prof (the program's own
// profile for leaf functions, a sub-profile for multiprogrammed phases).
func (g *progGen) genFunc(prof *Profile, name string, params int) {
	save := g.pr
	g.pr = prof
	defer func() { g.pr = save }()

	b := ir.NewFunc(g.p, name, params, 0)
	g.b = b
	g.base = b.Addr(g.p.Globals[0], 0)
	g.fbas = b.Addr(g.p.Globals[1], 0)
	g.vars = append([]isa.Reg(nil), b.F.Params...)
	g.fps = nil
	if prof.w[kFP] > 0 || prof.w[kFPMem] > 0 {
		g.fps = []isa.Reg{b.FConst(0.5 * float64(g.rng.Intn(8)))}
	}
	g.nest = 0
	g.stmts(g.span(prof.funcStmts))
	// Fold FP state into the integer return so phase results differ when
	// FP work differs.
	ret := g.intVar()
	for _, f := range g.fps {
		ret = b.Add(ret, b.FToI(f))
	}
	b.Ret(ret)
}

// genMain emits main: profile-seeded live variables, the statement body,
// one call per phase function, and the checksum fold.
func (g *progGen) genMain(phases []string) {
	pr := g.pr
	b := ir.NewFunc(g.p, "main", 0, 0)
	g.b = b
	g.base = b.Addr(g.p.Globals[0], 0)
	g.fbas = b.Addr(g.p.Globals[1], 0)
	g.vars = nil
	for i := 0; i < pr.intSeeds; i++ {
		g.vars = append(g.vars, b.Const(g.rng.Int63n(100)))
	}
	g.fps = nil
	for i := 0; i < pr.fpSeeds; i++ {
		g.fps = append(g.fps, b.FConst(0.5*float64(g.rng.Intn(8))))
	}
	g.nest = 0
	g.stmts(g.span(pr.mainStmts))
	for _, ph := range phases {
		g.vars = append(g.vars, b.Call(ph, g.intVar()))
	}
	// Fold everything into a checksum: integer vars, the FP samples, and
	// memory samples from both scratch globals.
	sum := b.Const(0)
	for _, v := range g.vars {
		b.MovTo(sum, b.Add(sum, v))
	}
	for _, f := range g.fps {
		b.MovTo(sum, b.Add(sum, b.FToI(f)))
	}
	b.MovTo(sum, b.Add(sum, b.Ld(g.base, 8*int64(g.rng.Intn(genWords)))))
	b.MovTo(sum, b.Add(sum, b.FToI(b.FLd(g.fbas, 8*int64(g.rng.Intn(genWords))))))
	b.Ret(sum)
}

// intVar picks a live integer register.
func (g *progGen) intVar() isa.Reg {
	if len(g.vars) == 0 {
		return g.b.Const(g.rng.Int63n(100))
	}
	return g.vars[g.rng.Intn(len(g.vars))]
}

// expr builds a small random integer expression.
func (g *progGen) expr() isa.Reg {
	b := g.b
	switch g.rng.Intn(8) {
	case 0:
		return b.Const(g.rng.Int63n(1000) - 500)
	case 1: // bounded load
		addr := b.Add(g.base, b.SllI(b.AndI(g.intVar(), genWords-1), 3))
		return b.Ld(addr, 0)
	case 2:
		return b.Mul(g.intVar(), g.intVar())
	case 3:
		return b.Sub(g.intVar(), g.intVar())
	case 4:
		return b.Xor(g.intVar(), g.intVar())
	case 5: // safe division by a non-zero constant
		return b.DivI(g.intVar(), int64(g.rng.Intn(7))+1)
	case 6:
		return b.AndI(g.intVar(), int64(g.rng.Intn(255)+1))
	default:
		return b.Add(g.intVar(), g.intVar())
	}
}

// stmts emits n random statements into the current block.
func (g *progGen) stmts(n int) {
	for i := 0; i < n; i++ {
		g.stmt()
	}
}

// pick draws a statement kind by the profile's weights. At maximum nesting
// depth the nesting kinds (if/else and both loop forms) are excluded so a
// loop-heavy profile cannot stack trip counts without bound.
func (g *progGen) pick() int {
	w := g.pr.w
	if g.nest >= maxNest {
		w[kIfElse], w[kLoop], w[kBranchy] = 0, 0, 0
	}
	t := w.total()
	if t == 0 {
		return kExpr
	}
	n := g.rng.Intn(t)
	for k, v := range w {
		if n < v {
			return k
		}
		n -= v
	}
	return kExpr
}

func (g *progGen) stmt() {
	b := g.b
	switch g.pick() {
	case kNewVar:
		g.vars = append(g.vars, g.expr())
	case kMutate:
		if len(g.vars) == 0 {
			g.vars = append(g.vars, g.expr())
			return
		}
		b.MovTo(g.intVar(), g.expr())
	case kStore: // bounded store
		addr := b.Add(g.base, b.SllI(b.AndI(g.intVar(), genWords-1), 3))
		b.St(g.intVar(), addr, 0)
	case kIfElse: // if/else on a comparison
		x, y := g.intVar(), g.intVar()
		ops := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE}
		join := b.NewBlock()
		elseB := b.NewBlock()
		b.CondBr(ops[g.rng.Intn(len(ops))], x, y, elseB)
		b.Continue()
		// Variables created inside a branch are not definitely assigned
		// at the join: scope them (the IR contract requires every use to
		// be dominated by a definition — see package ir).
		mark, fmark := len(g.vars), len(g.fps)
		g.nest++
		g.stmts(1 + g.rng.Intn(2))
		g.vars, g.fps = g.vars[:mark], g.fps[:fmark]
		b.Br(join)
		b.SetBlock(elseB)
		g.stmts(1 + g.rng.Intn(2))
		g.nest--
		g.vars, g.fps = g.vars[:mark], g.fps[:fmark]
		b.Br(join)
		b.SetBlock(join)
	case kLoop: // counted loop with a fixed bound
		trips := int64(g.span(g.pr.trips))
		cnt := b.Const(0)
		loop := b.NewBlock()
		b.Br(loop)
		b.SetBlock(loop)
		g.nest++
		g.stmts(1 + g.rng.Intn(3))
		g.nest--
		b.MovTo(cnt, b.AddI(cnt, 1))
		b.BltI(cnt, trips, loop)
		b.Continue()
	case kBranchy:
		g.branchyLoop()
	case kCall: // call a generated function
		if len(g.fns) > 0 {
			name := g.fns[g.rng.Intn(len(g.fns))]
			callee := g.p.Func(name)
			args := make([]isa.Reg, len(callee.Params))
			for i := range args {
				args[i] = g.intVar()
			}
			g.vars = append(g.vars, b.Call(name, args...))
		} else {
			g.vars = append(g.vars, g.expr())
		}
	case kFP: // floating point (dyadic-exact constants)
		if len(g.fps) == 0 {
			g.fps = append(g.fps, b.FConst(0.25*float64(g.rng.Intn(16))))
			return
		}
		f := g.fps[g.rng.Intn(len(g.fps))]
		switch g.rng.Intn(3) {
		case 0:
			g.fps = append(g.fps, b.FAdd(f, b.FConst(0.25*float64(g.rng.Intn(16)))))
		case 1:
			g.fps = append(g.fps, b.FMul(f, b.FConst(0.5)))
		default:
			b.MovTo(f, b.FAdd(f, b.IToF(b.AndI(g.intVar(), 15))))
		}
	case kFPMem: // bounded FP load/store
		addr := b.Add(g.fbas, b.SllI(b.AndI(g.intVar(), genWords-1), 3))
		if len(g.fps) > 0 && g.rng.Intn(2) == 0 {
			b.FSt(g.fps[g.rng.Intn(len(g.fps))], addr, 0)
		} else {
			g.fps = append(g.fps, b.FLd(addr, 0))
		}
	case kShift: // shift chain
		g.vars = append(g.vars, b.SraI(b.SllI(g.intVar(), int64(g.rng.Intn(8))), int64(g.rng.Intn(8))))
	default:
		g.vars = append(g.vars, g.expr())
	}
}

// branchyLoop emits a counted loop whose body branches on a data-dependent
// bit: the loop index walks the integer scratch global (initialized with
// pseudo-random words), and the branch tests the loaded word's low bit, so
// the outcome alternates irregularly across trips and static profile-based
// prediction misses about half of them — the mispredict-heavy profile's
// signature shape.
func (g *progGen) branchyLoop() {
	b := g.b
	trips := int64(g.span(g.pr.trips))
	cnt := b.Const(0)
	acc := b.Const(0)
	g.vars = append(g.vars, acc)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	addr := b.Add(g.base, b.SllI(b.AndI(b.Add(cnt, g.intVar()), genWords-1), 3))
	bit := b.AndI(b.Ld(addr, 0), 1)
	join := b.NewBlock()
	elseB := b.NewBlock()
	b.BeqI(bit, 0, elseB)
	b.Continue()
	mark, fmark := len(g.vars), len(g.fps)
	g.nest++
	g.stmts(1)
	g.vars, g.fps = g.vars[:mark], g.fps[:fmark]
	b.MovTo(acc, b.AddI(acc, 1))
	b.Br(join)
	b.SetBlock(elseB)
	g.stmts(1)
	g.nest--
	g.vars, g.fps = g.vars[:mark], g.fps[:fmark]
	b.MovTo(acc, b.Sub(acc, bit))
	b.Br(join)
	b.SetBlock(join)
	b.MovTo(cnt, b.AddI(cnt, 1))
	b.BltI(cnt, trips, loop)
	b.Continue()
}
