package workload

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"regconn/internal/codegen"
	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/machine"
	"regconn/internal/mem"
)

// The trace file format: a one-line header
//
//	rctrace <version> <payload-len> <payload-sha256-hex>\n
//
// followed by exactly payload-len bytes of JSON (the Trace struct). The
// checksum makes corruption and truncation detectable before anything is
// interpreted, and its hex form doubles as the trace's cache key — the
// same shape as the serve layer's point keys, so a replayed trace drops
// into the existing LRU/store/shard machinery unchanged.
const (
	traceMagic = "rctrace"

	// TraceVersion is the current trace format version. Decoding rejects
	// any other version: traces are snapshots, not a compatibility
	// surface, and a version bump means "re-emit".
	TraceVersion = 1

	// MaxTracePayload caps the declared payload length so a corrupt or
	// hostile header cannot drive a giant allocation.
	MaxTracePayload = 1 << 28
)

// ErrBadTrace marks a trace that failed structural validation: bad header,
// checksum mismatch, truncation, malformed JSON, or out-of-range code
// references. The serve layer maps it to a structured 4xx response.
var ErrBadTrace = errors.New("workload: bad trace")

// TraceGlobal is one global's layout and initial data — everything the
// simulator's memory-image initialization needs.
type TraceGlobal struct {
	Name  string    `json:"name"`
	Size  int64     `json:"size"`
	InitI []int64   `json:"init_i,omitempty"`
	InitF []float64 `json:"init_f,omitempty"`
}

// Trace is a replayable snapshot of a compiled workload: the linked
// machine code with its annotations, the exact simulator configuration,
// the globals' initial data, and the recorded outcome. Replay feeds the
// simulator directly — no IR pipeline, no compiler — and verifies the
// result against the recorded interpreter oracle (Expect, MemSum) and
// the recorded timing (Cycles, Instrs), so every replay is also a
// whole-simulator determinism check.
type Trace struct {
	Name string `json:"name"` // workload name the trace was recorded from

	// Arch is the canonical architecture JSON the trace was compiled for.
	// It identifies the point (reports, cache keys); replay does not
	// re-derive anything from it — Config is authoritative.
	Arch json.RawMessage `json:"arch"`

	// Config is the exact simulator configuration of the recorded run,
	// including backend-derived knobs (total register-file sizes, chain
	// forwarding, read-port caps, trap bookkeeping). Runtime-only fields
	// (Trace, Events, Prof) are zeroed at record time and at replay.
	Config machine.Config `json:"config"`

	Entry     string          `json:"entry"` // entry function name
	EntryPC   int             `json:"entry_pc"`
	Code      []isa.Instr     `json:"code"`
	Ann       []codegen.Annot `json:"ann"` // 1:1 with Code
	FuncStart map[string]int  `json:"func_start"`
	Globals   []TraceGlobal   `json:"globals"` // in layout order

	// Recorded outcome: the interpreter oracle's return value and data-
	// section digest, and the recorded simulation's cycle/instruction
	// counts. Replay re-verifies all four.
	Expect int64  `json:"expect"`
	MemSum string `json:"mem_sum"`
	Cycles int64  `json:"cycles"`
	Instrs int64  `json:"instrs"`
}

// DataDigest hashes the global data section — words from mem.GlobalBase up
// to end — into a hex digest. Recorded from the interpreter oracle's final
// memory at trace-write time and compared against the simulator's at
// replay.
func DataDigest(m *mem.Memory, end int64) string {
	h := sha256.New()
	var buf [8]byte
	for addr := int64(mem.GlobalBase); addr < end; addr += 8 {
		binary.LittleEndian.PutUint64(buf[:], uint64(m.LoadI(addr)))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Encode writes the trace to w and returns its key — the hex SHA-256 of
// the JSON payload, the same string the header carries and replay caching
// keys on.
func (t *Trace) Encode(w io.Writer) (key string, err error) {
	payload, err := json.Marshal(t)
	if err != nil {
		return "", fmt.Errorf("workload: encode trace: %w", err)
	}
	sum := sha256.Sum256(payload)
	key = fmt.Sprintf("%x", sum)
	if _, err := fmt.Fprintf(w, "%s %d %d %s\n", traceMagic, TraceVersion, len(payload), key); err != nil {
		return "", err
	}
	if _, err := w.Write(payload); err != nil {
		return "", err
	}
	return key, nil
}

// DecodeTrace reads and validates a trace: header shape, version, payload
// length bound, checksum, JSON, and the structural invariants replay
// relies on (Validate). All failures wrap ErrBadTrace; a valid file
// returns the trace and its key.
func DecodeTrace(r io.Reader) (*Trace, string, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, "", fmt.Errorf("%w: reading header: %v", ErrBadTrace, err)
	}
	var magic, key string
	var version, length int
	if n, err := fmt.Sscanf(header, "%s %d %d %s", &magic, &version, &length, &key); n != 4 || err != nil {
		return nil, "", fmt.Errorf("%w: malformed header %q", ErrBadTrace, header)
	}
	if magic != traceMagic {
		return nil, "", fmt.Errorf("%w: not a trace file (magic %q)", ErrBadTrace, magic)
	}
	if version != TraceVersion {
		return nil, "", fmt.Errorf("%w: version %d, this build reads %d", ErrBadTrace, version, TraceVersion)
	}
	if length <= 0 || length > MaxTracePayload {
		return nil, "", fmt.Errorf("%w: implausible payload length %d", ErrBadTrace, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, "", fmt.Errorf("%w: truncated payload: %v", ErrBadTrace, err)
	}
	if sum := fmt.Sprintf("%x", sha256.Sum256(payload)); sum != key {
		return nil, "", fmt.Errorf("%w: checksum mismatch (header %s, payload %s)", ErrBadTrace, key, sum)
	}
	var t Trace
	if err := json.Unmarshal(payload, &t); err != nil {
		return nil, "", fmt.Errorf("%w: payload: %v", ErrBadTrace, err)
	}
	if err := t.Validate(); err != nil {
		return nil, "", err
	}
	return &t, key, nil
}

// Validate checks the structural invariants replay relies on so that a
// hand-edited or corrupt-but-checksummed trace surfaces as a structured
// error rather than a simulator fault: non-empty code, annotations 1:1
// with it, entry and every branch/call target inside the code, sane
// globals, and a runnable configuration.
func (t *Trace) Validate() error {
	if len(t.Code) == 0 {
		return fmt.Errorf("%w: empty code", ErrBadTrace)
	}
	if len(t.Ann) != len(t.Code) {
		return fmt.Errorf("%w: %d annotations for %d instructions", ErrBadTrace, len(t.Ann), len(t.Code))
	}
	if t.EntryPC < 0 || t.EntryPC >= len(t.Code) {
		return fmt.Errorf("%w: entry pc %d outside code [0,%d)", ErrBadTrace, t.EntryPC, len(t.Code))
	}
	if t.Entry == "" {
		return fmt.Errorf("%w: empty entry name", ErrBadTrace)
	}
	for pc := range t.Code {
		in := &t.Code[pc]
		if in.Op == isa.BR || in.Op == isa.CALL || in.Op.IsCondBranch() {
			if in.Target < 0 || in.Target >= len(t.Code) {
				return fmt.Errorf("%w: pc %d: target %d outside code [0,%d)", ErrBadTrace, pc, in.Target, len(t.Code))
			}
		}
	}
	for _, g := range t.Globals {
		if g.Name == "" || g.Size < 0 {
			return fmt.Errorf("%w: global %q with size %d", ErrBadTrace, g.Name, g.Size)
		}
		if int64(len(g.InitI))*8 > g.Size || int64(len(g.InitF))*8 > g.Size {
			return fmt.Errorf("%w: global %q: initializer exceeds size %d", ErrBadTrace, g.Name, g.Size)
		}
	}
	if t.Config.IssueRate < 1 {
		return fmt.Errorf("%w: issue rate %d", ErrBadTrace, t.Config.IssueRate)
	}
	if t.Config.MemSize < 0 {
		return fmt.Errorf("%w: negative memory size %d", ErrBadTrace, t.Config.MemSize)
	}
	return nil
}

// image reconstructs the loaded machine image. The simulator needs the IR
// program only for the globals' initial data (mem.InitImageInto) and the
// entry name, so a minimal program carrying exactly the recorded globals —
// in recorded order, which makes mem.ComputeLayout reproduce the original
// layout; the code's absolute addresses were baked in at link time — is a
// faithful reconstruction.
func (t *Trace) image() *machine.Image {
	p := ir.NewProgram()
	for _, g := range t.Globals {
		ng := p.AddGlobal(g.Name, g.Size)
		ng.InitI = g.InitI
		ng.InitF = g.InitF
	}
	return &machine.Image{
		Code:      t.Code,
		Ann:       t.Ann,
		FuncStart: t.FuncStart,
		Entry:     t.EntryPC,
		Layout:    mem.ComputeLayout(p),
		Prog:      &codegen.MProg{Entry: t.Entry, IR: p},
	}
}

// Replay feeds the trace to the simulator — no IR pipeline, no compiler —
// and verifies the result against everything the trace recorded: the
// interpreter oracle's return value and memory digest, the recorded cycle
// and instruction counts (the determinism pin: one trace must produce one
// timing, bit-exact, forever), and the cycle-attribution ledger. The
// returned result is freshly allocated and safe to retain.
func (t *Trace) Replay(ctx context.Context) (*machine.Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	cfg := t.Config
	cfg.Trace, cfg.TraceCycles, cfg.Events, cfg.Prof = nil, 0, nil, false
	img := t.image()
	res, err := machine.RunContext(ctx, img, cfg)
	if err != nil {
		return nil, fmt.Errorf("workload: replay %s: %w", t.Name, err)
	}
	if res.RetInt != t.Expect {
		return nil, fmt.Errorf("workload: replay %s: result %d, trace recorded %d", t.Name, res.RetInt, t.Expect)
	}
	if t.MemSum != "" {
		end := img.Layout.DataEnd(img.Prog.IR)
		if sum := DataDigest(res.Mem, end); sum != t.MemSum {
			return nil, fmt.Errorf("workload: replay %s: memory digest %s, trace recorded %s", t.Name, sum, t.MemSum)
		}
	}
	if t.Cycles != 0 && (res.Cycles != t.Cycles || res.Instrs != t.Instrs) {
		return nil, fmt.Errorf("workload: replay %s: %d cycles / %d instrs, trace recorded %d / %d (simulator nondeterminism or drift)",
			t.Name, res.Cycles, res.Instrs, t.Cycles, t.Instrs)
	}
	if err := res.CheckLedger(); err != nil {
		return nil, fmt.Errorf("workload: replay %s: %w", t.Name, err)
	}
	return res, nil
}
