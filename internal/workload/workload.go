// Package workload is the scenario layer of the reproduction: where
// package bench fixes the paper's twelve benchmarks, workload turns the
// fuzz harness's proven program generator into a first-class workload
// source. A Profile names a program-shape family (call-heavy,
// connect-heavy, mispredict-heavy, ...) and a seed names one program in
// it, so "gen/connect-heavy/42" is a reproducible benchmark any tool in
// the repository can run; every generated workload carries an
// interpreter-computed expected checksum, so the simulation oracle and
// the cycle-ledger invariants pin each one exactly like a hand-written
// benchmark. The package also defines the instruction-trace format
// (trace.go): a versioned, checksummed snapshot of a compiled program
// plus its recorded outcome that replays through the simulator directly,
// without re-entering the IR pipeline.
package workload

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"regconn/internal/bench"
	"regconn/internal/interp"
	"regconn/internal/ir"
)

// ErrBadSpec marks a workload specification the caller got wrong (unknown
// profile, malformed name, negative seed). The serve layer maps it to a
// structured 400 response; errors.Is works through all constructors here.
var ErrBadSpec = errors.New("workload: bad spec")

// Profile is one named program-shape family. The exported fields identify
// it; the unexported ones parameterize the generator (gen.go).
type Profile struct {
	Name  string
	About string

	// FP classes the profile's workloads as floating-point benchmarks:
	// per-class sweeps (exp.archFor) vary the FP core file for them, as
	// they do for the paper's three FP codes.
	FP bool

	funcs     [2]int // callable leaf functions (min, max)
	funcStmts [2]int // statements per generated function body
	mainStmts [2]int // statements in main's body
	trips     [2]int // counted-loop trip range
	intSeeds  int    // live integer variables seeded into main
	fpSeeds   int    // live FP variables seeded into main
	w         weights
	phases    []string // multiprogrammed mixes: one phase function per entry
}

// seedSalt folds the profile name into the generator seed so each profile
// draws from its own program space: gen/call-heavy/7 and gen/fp-heavy/7
// are unrelated programs.
func (pr *Profile) seedSalt() int64 {
	h := fnv.New64a()
	h.Write([]byte(pr.Name))
	return int64(h.Sum64())
}

// profiles is the registry, in stable listing order. Weights are relative
// statement-selection frequencies; see gen.go for the kinds.
var profiles = []Profile{
	{
		Name:  "mixed",
		About: "balanced statement mix; the lifted fuzz-harness generator",
		funcs: [2]int{0, 2}, funcStmts: [2]int{2, 5}, mainStmts: [2]int{4, 11},
		trips: [2]int{1, 12}, intSeeds: 2, fpSeeds: 1,
		w: weights{kNewVar: 2, kMutate: 1, kStore: 1, kIfElse: 1, kLoop: 1, kCall: 1, kFP: 1, kShift: 1, kExpr: 1},
	},
	{
		Name:  "call-heavy",
		About: "many small leaf functions, call-dominated main (cccp/eqn-like)",
		funcs: [2]int{3, 5}, funcStmts: [2]int{1, 3}, mainStmts: [2]int{8, 14},
		trips: [2]int{1, 6}, intSeeds: 3, fpSeeds: 0,
		w: weights{kNewVar: 2, kMutate: 1, kIfElse: 1, kLoop: 1, kCall: 6, kExpr: 1},
	},
	{
		Name:  "connect-heavy",
		About: "long straight-line bodies with many simultaneously live integers: register pressure that forces extended-register connects",
		funcs: [2]int{0, 1}, funcStmts: [2]int{2, 4}, mainStmts: [2]int{12, 18},
		trips: [2]int{2, 8}, intSeeds: 10, fpSeeds: 0,
		w: weights{kNewVar: 5, kMutate: 2, kStore: 1, kLoop: 1, kShift: 2, kExpr: 2},
	},
	{
		Name:  "mispredict-heavy",
		About: "loops branching on pseudo-random data bits, defeating static profile-based prediction",
		funcs: [2]int{0, 1}, funcStmts: [2]int{1, 3}, mainStmts: [2]int{5, 9},
		trips: [2]int{6, 16}, intSeeds: 3, fpSeeds: 0,
		w: weights{kNewVar: 2, kMutate: 1, kIfElse: 2, kLoop: 1, kBranchy: 6, kExpr: 1},
	},
	{
		Name:  "trap-heavy",
		About: "long-running nested loops with wide live state: maximizes interrupts hit and per-trap save/restore cost under Arch.Trap",
		funcs: [2]int{0, 1}, funcStmts: [2]int{2, 4}, mainStmts: [2]int{8, 12},
		trips: [2]int{8, 24}, intSeeds: 4, fpSeeds: 2,
		w: weights{kNewVar: 2, kMutate: 2, kStore: 2, kLoop: 5, kBranchy: 1, kFP: 1, kExpr: 1},
	},
	{
		Name:  "fp-heavy",
		About: "dense FP arithmetic and FP memory traffic (matrix300/tomcatv-like); classed as an FP workload",
		FP:    true,
		funcs: [2]int{0, 1}, funcStmts: [2]int{2, 4}, mainStmts: [2]int{8, 14},
		trips: [2]int{4, 12}, intSeeds: 2, fpSeeds: 6,
		w: weights{kNewVar: 1, kMutate: 1, kLoop: 2, kFP: 6, kFPMem: 4, kExpr: 1},
	},
	{
		Name:  "multiprogrammed",
		About: "one phase function per shape family, called in sequence: a workload mix in a single program",
		funcs: [2]int{1, 2}, funcStmts: [2]int{2, 4}, mainStmts: [2]int{3, 6},
		trips: [2]int{2, 10}, intSeeds: 3, fpSeeds: 1,
		w:      weights{kNewVar: 2, kMutate: 1, kStore: 1, kLoop: 1, kCall: 2, kFP: 1, kExpr: 1},
		phases: []string{"call-heavy", "connect-heavy", "mispredict-heavy", "fp-heavy"},
	},
}

// Profiles returns the registry in stable order.
func Profiles() []Profile {
	return append([]Profile(nil), profiles...)
}

// ProfileNames returns the registered profile names in stable order.
func ProfileNames() []string {
	names := make([]string, len(profiles))
	for i := range profiles {
		names[i] = profiles[i].Name
	}
	return names
}

// ProfileByName finds a profile; unknown names wrap ErrBadSpec and list
// the registry.
func ProfileByName(name string) (*Profile, error) {
	for i := range profiles {
		if profiles[i].Name == name {
			return &profiles[i], nil
		}
	}
	return nil, fmt.Errorf("%w: unknown profile %q (have: %s)",
		ErrBadSpec, name, strings.Join(ProfileNames(), ", "))
}

// mustProfile is ProfileByName for registry-internal references (the
// multiprogrammed phase list); a bad name there is a programming error.
func mustProfile(name string) *Profile {
	pr, err := ProfileByName(name)
	if err != nil {
		panic(err)
	}
	return pr
}

// Spec names one generated workload: a profile and a seed. It is the wire
// form the serve layer accepts ({"profile": ..., "seed": ...}) and the
// parsed form of a canonical "gen/<profile>/<seed>" name.
type Spec struct {
	Profile string `json:"profile"`
	Seed    int64  `json:"seed"`
}

// namePrefix marks generated-workload benchmark names.
const namePrefix = "gen/"

// Name returns the canonical benchmark name of the spec. Every layer keys
// generated workloads by this name — the exp runner's memo, the serve
// cache/store/shard stack — so the two spellings of one workload (a
// workload spec or its gen/ name) land on one cache entry.
func (s Spec) Name() string {
	return fmt.Sprintf("%s%s/%d", namePrefix, s.Profile, s.Seed)
}

// Validate checks the spec without generating: the profile must be
// registered and the seed non-negative. Failures wrap ErrBadSpec.
func (s Spec) Validate() error {
	if _, err := ProfileByName(s.Profile); err != nil {
		return err
	}
	if s.Seed < 0 {
		return fmt.Errorf("%w: negative seed %d", ErrBadSpec, s.Seed)
	}
	return nil
}

// ParseName parses a canonical "gen/<profile>/<seed>" name. ok reports
// whether name carries the generated-workload prefix at all; a prefixed
// name that is malformed returns ok=true with a non-nil error (the caller
// meant a generated workload and got the shape wrong).
func ParseName(name string) (s Spec, ok bool, err error) {
	if !strings.HasPrefix(name, namePrefix) {
		return Spec{}, false, nil
	}
	rest := name[len(namePrefix):]
	i := strings.LastIndexByte(rest, '/')
	if i < 0 {
		return Spec{}, true, fmt.Errorf("%w: want gen/<profile>/<seed>, got %q", ErrBadSpec, name)
	}
	seed, perr := strconv.ParseInt(rest[i+1:], 10, 64)
	if perr != nil {
		return Spec{}, true, fmt.Errorf("%w: bad seed in %q: %v", ErrBadSpec, name, perr)
	}
	s = Spec{Profile: rest[:i], Seed: seed}
	return s, true, s.Validate()
}

// Generate builds the spec's workload: the program is generated from the
// seed, structurally verified, and executed once on the IR interpreter to
// compute the expected checksum. The returned Benchmark is fully
// compatible with the paper suite's — Build returns a fresh program per
// call (regenerated from the seed), and Expect is what every simulated
// configuration must return — so the exp runner, the serve daemon, and
// the oracle machinery run generated workloads unchanged.
func (s Spec) Generate() (bench.Benchmark, error) {
	if err := s.Validate(); err != nil {
		return bench.Benchmark{}, err
	}
	pr := mustProfile(s.Profile)
	p := genProgram(pr, s.Seed)
	if err := ir.Verify(p); err != nil {
		return bench.Benchmark{}, fmt.Errorf("workload: %s: generated IR invalid: %w", s.Name(), err)
	}
	res, err := interp.Run(p, "main", nil, interp.Options{})
	if err != nil {
		return bench.Benchmark{}, fmt.Errorf("workload: %s: interpreter: %w", s.Name(), err)
	}
	return bench.Benchmark{
		Name:   s.Name(),
		Paper:  "generated (" + s.Profile + ")",
		FP:     pr.FP,
		Build:  func() *ir.Program { return genProgram(pr, s.Seed) },
		Expect: res.Ret,
	}, nil
}

// ByName resolves a benchmark name against the paper suite first, then
// the generated-workload namespace: "grep" finds the paper stand-in,
// "gen/connect-heavy/42" generates that workload. It is the single
// resolution point the tools share, so every -bench flag and every serve
// request accepts both namespaces.
func ByName(name string) (bench.Benchmark, error) {
	if s, ok, err := ParseName(name); ok {
		if err != nil {
			return bench.Benchmark{}, err
		}
		return s.Generate()
	}
	return bench.ByName(name)
}
