package workload_test

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regconn"
	"regconn/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenArch is the fixed configuration the golden-scenario pins run
// under: a representative wide-issue RC point.
func goldenArch() regconn.Arch {
	return regconn.Arch{Issue: 4, LoadLatency: 2, IntCore: 8, FPCore: 16,
		Mode: regconn.WithRC, Verify: true}
}

func TestProfileRegistry(t *testing.T) {
	names := workload.ProfileNames()
	if len(names) < 6 {
		t.Fatalf("only %d profiles registered: %v", len(names), names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate profile %q", n)
		}
		seen[n] = true
		if _, err := workload.ProfileByName(n); err != nil {
			t.Fatalf("ProfileByName(%q): %v", n, err)
		}
	}
	for _, want := range []string{"mixed", "call-heavy", "connect-heavy",
		"mispredict-heavy", "trap-heavy", "fp-heavy", "multiprogrammed"} {
		if !seen[want] {
			t.Errorf("profile %q missing from registry %v", want, names)
		}
	}
	if _, err := workload.ProfileByName("no-such-profile"); !errors.Is(err, workload.ErrBadSpec) {
		t.Errorf("unknown profile: got %v, want ErrBadSpec", err)
	}
}

func TestParseName(t *testing.T) {
	cases := []struct {
		name    string
		ok      bool
		wantErr bool
		spec    workload.Spec
	}{
		{"grep", false, false, workload.Spec{}},
		{"gen/mixed/42", true, false, workload.Spec{Profile: "mixed", Seed: 42}},
		{"gen/connect-heavy/0", true, false, workload.Spec{Profile: "connect-heavy", Seed: 0}},
		{"gen/", true, true, workload.Spec{}},
		{"gen/mixed", true, true, workload.Spec{}},
		{"gen/mixed/abc", true, true, workload.Spec{}},
		{"gen/mixed/-3", true, true, workload.Spec{}},
		{"gen/no-such/1", true, true, workload.Spec{}},
	}
	for _, c := range cases {
		s, ok, err := workload.ParseName(c.name)
		if ok != c.ok {
			t.Errorf("ParseName(%q): ok=%v, want %v", c.name, ok, c.ok)
			continue
		}
		if (err != nil) != c.wantErr {
			t.Errorf("ParseName(%q): err=%v, wantErr=%v", c.name, err, c.wantErr)
			continue
		}
		if c.wantErr && !errors.Is(err, workload.ErrBadSpec) {
			t.Errorf("ParseName(%q): err=%v, want ErrBadSpec", c.name, err)
		}
		if !c.wantErr && c.ok {
			if s != c.spec {
				t.Errorf("ParseName(%q) = %+v, want %+v", c.name, s, c.spec)
			}
			if got := s.Name(); got != c.name {
				t.Errorf("Spec.Name() = %q, want %q", got, c.name)
			}
		}
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	for _, s := range []workload.Spec{
		{Profile: "no-such", Seed: 1},
		{Profile: "mixed", Seed: -1},
	} {
		if _, err := s.Generate(); !errors.Is(err, workload.ErrBadSpec) {
			t.Errorf("Generate(%+v): got %v, want ErrBadSpec", s, err)
		}
	}
}

// TestGenerateDeterminism pins the generator: one {profile, seed} names
// exactly one program, byte-identical however many times it is generated
// or built — the property every cache key and every golden file depends
// on.
func TestGenerateDeterminism(t *testing.T) {
	for _, pr := range workload.Profiles() {
		pr := pr
		t.Run(pr.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 3; seed++ {
				s := workload.Spec{Profile: pr.Name, Seed: seed}
				b1, err := s.Generate()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				b2, err := s.Generate()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if b1.Expect != b2.Expect {
					t.Fatalf("seed %d: expect %d vs %d across generations", seed, b1.Expect, b2.Expect)
				}
				p1, p2 := b1.Build().String(), b2.Build().String()
				if p1 != p2 {
					t.Fatalf("seed %d: programs differ across generations", seed)
				}
				if again := b1.Build().String(); again != p1 {
					t.Fatalf("seed %d: repeated Build on one benchmark differs", seed)
				}
				if b1.FP != pr.FP {
					t.Fatalf("seed %d: FP class %v, profile says %v", seed, b1.FP, pr.FP)
				}
			}
		})
	}
}

func TestByNameResolvesBothNamespaces(t *testing.T) {
	if _, err := workload.ByName("grep"); err != nil {
		t.Errorf("paper benchmark: %v", err)
	}
	b, err := workload.ByName("gen/fp-heavy/5")
	if err != nil {
		t.Fatalf("generated workload: %v", err)
	}
	if b.Name != "gen/fp-heavy/5" || !b.FP {
		t.Errorf("resolved %q FP=%v, want gen/fp-heavy/5 FP=true", b.Name, b.FP)
	}
	if _, err := workload.ByName("gen/fp-heavy/oops"); !errors.Is(err, workload.ErrBadSpec) {
		t.Errorf("malformed gen name: got %v, want ErrBadSpec", err)
	}
	if _, err := workload.ByName("no-such-benchmark"); err == nil {
		t.Errorf("unknown plain name resolved")
	}
}

// encodeTrace builds a workload under the golden architecture and encodes
// its trace, returning the trace, the encoded bytes, and the key.
func encodeTrace(t *testing.T, name string) (*workload.Trace, []byte, string) {
	t.Helper()
	bm, err := workload.ByName(name)
	if err != nil {
		t.Fatalf("resolve %s: %v", name, err)
	}
	ex, err := regconn.Build(bm.Build(), goldenArch())
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	tr, err := ex.Trace(name)
	if err != nil {
		t.Fatalf("trace %s: %v", name, err)
	}
	var buf bytes.Buffer
	key, err := tr.Encode(&buf)
	if err != nil {
		t.Fatalf("encode %s: %v", name, err)
	}
	return tr, buf.Bytes(), key
}

// TestTraceRoundTrip pins the trace pipeline end to end: encode → decode
// reproduces the trace and its key; replay reproduces the recorded
// result (return value, memory digest, cycle count) through the
// simulator without touching the IR pipeline; and re-encoding the
// decoded trace is byte-stable.
func TestTraceRoundTrip(t *testing.T) {
	tr, raw, key := encodeTrace(t, "gen/connect-heavy/3")
	dt, gotKey, err := workload.DecodeTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotKey != key {
		t.Fatalf("decoded key %s, encoded %s", gotKey, key)
	}
	if dt.Name != tr.Name || dt.Expect != tr.Expect || dt.Cycles != tr.Cycles {
		t.Fatalf("decoded trace differs: %+v vs %+v", dt, tr)
	}
	res, err := dt.Replay(context.Background())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.RetInt != tr.Expect || res.Cycles != tr.Cycles {
		t.Fatalf("replay ret=%d cycles=%d, trace recorded ret=%d cycles=%d",
			res.RetInt, res.Cycles, tr.Expect, tr.Cycles)
	}
	var buf2 bytes.Buffer
	key2, err := dt.Encode(&buf2)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if key2 != key || !bytes.Equal(buf2.Bytes(), raw) {
		t.Fatalf("re-encode not byte-stable (key %s vs %s)", key2, key)
	}
}

// TestTraceReplayOnPaperBenchmark replays a hand-written benchmark's
// trace, proving the format is not generator-specific.
func TestTraceReplayOnPaperBenchmark(t *testing.T) {
	_, raw, _ := encodeTrace(t, "grep")
	dt, _, err := workload.DecodeTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if _, err := dt.Replay(context.Background()); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

// TestTraceCorruption pins the decoder's failure behavior: corrupt,
// truncated, or structurally invalid inputs return structured ErrBadTrace
// errors — never a panic, never a silent success.
func TestTraceCorruption(t *testing.T) {
	tr, raw, _ := encodeTrace(t, "gen/mixed/0")
	headerLen := bytes.IndexByte(raw, '\n') + 1

	reencode := func(mutate func(c workload.Trace) workload.Trace) []byte {
		c := mutate(*tr)
		var buf bytes.Buffer
		if _, err := c.Encode(&buf); err != nil {
			t.Fatalf("re-encode mutant: %v", err)
		}
		return buf.Bytes()
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"no newline", []byte("rctrace 1 10 abcd")},
		{"bad magic", append([]byte("nottrace 1 5 abcde\n"), raw[headerLen:]...)},
		{"bad version", append([]byte(fmt.Sprintf("rctrace 99 %d deadbeef\n", len(raw)-headerLen)), raw[headerLen:]...)},
		{"garbage header", []byte("rctrace one two three\n")},
		{"negative length", []byte("rctrace 1 -5 abcd\n")},
		{"huge length", []byte("rctrace 1 999999999999 abcd\n")},
		{"truncated payload", raw[:len(raw)-10]},
		{"bitflip in payload", func() []byte {
			b := append([]byte(nil), raw...)
			b[headerLen+len(b[headerLen:])/2] ^= 0x40
			return b
		}()},
		{"entry pc out of range", reencode(func(c workload.Trace) workload.Trace {
			c.EntryPC = len(c.Code) + 7
			return c
		})},
		{"annotation mismatch", reencode(func(c workload.Trace) workload.Trace {
			c.Ann = c.Ann[:len(c.Ann)-1]
			return c
		})},
		{"empty code", reencode(func(c workload.Trace) workload.Trace {
			c.Code = nil
			c.Ann = nil
			c.EntryPC = 0
			return c
		})},
		{"zero issue rate", reencode(func(c workload.Trace) workload.Trace {
			c.Config.IssueRate = 0
			return c
		})},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.ReplaceAll(c.name, " ", "-"), func(t *testing.T) {
			_, _, err := workload.DecodeTrace(bytes.NewReader(c.data))
			if !errors.Is(err, workload.ErrBadTrace) {
				t.Fatalf("got %v, want ErrBadTrace", err)
			}
		})
	}
}

// TestGoldenScenarios pins one scenario per profile — program checksum,
// cycle count, and instruction count under a fixed architecture — against
// a golden file. Any change to the generator, the compiler, or the
// simulator that shifts a generated workload's behavior must consciously
// update the golden (go test ./internal/workload -run Golden -update).
func TestGoldenScenarios(t *testing.T) {
	var sb strings.Builder
	for _, pr := range workload.Profiles() {
		s := workload.Spec{Profile: pr.Name, Seed: 0}
		bm, err := s.Generate()
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		ex, err := regconn.Build(bm.Build(), goldenArch())
		if err != nil {
			t.Fatalf("%s: build: %v", s.Name(), err)
		}
		res, err := ex.Verify()
		if err != nil {
			t.Fatalf("%s: verify: %v", s.Name(), err)
		}
		if err := res.CheckLedger(); err != nil {
			t.Fatalf("%s: ledger: %v", s.Name(), err)
		}
		fmt.Fprintf(&sb, "%s expect=%d cycles=%d instrs=%d\n",
			bm.Name, bm.Expect, res.Cycles, res.Instrs)
	}
	got := sb.String()
	golden := filepath.Join("testdata", "scenarios.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden scenarios drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
