package isa

// Decoded is the predecoded micro-op form of an instruction: operand roles
// from the Meta table are resolved into fixed-size use/def sets, connect
// pairs are materialised, and the FMOVI bit pattern is pre-converted. The
// simulator decodes each instruction once per run and then issues from
// this form, so the per-cycle interlock and execute paths never allocate
// and never re-derive roles through per-op switches.
type Decoded struct {
	Op   Op
	Kind Kind

	// Classification flags, copied from Meta for single-load access.
	Mem     bool
	Connect bool

	// Operand slots, as in Instr.
	Dst  Reg // invalid when the op defines nothing
	A, B Reg

	// Use is the pre-extracted source-register set (Instr.Uses order).
	Use  [3]Reg
	NUse uint8

	// Pair holds the pre-materialised connect operands.
	Pair   [2]ConnectPair
	NPair  uint8
	CClass RegClass

	Imm    int64
	UseImm bool
	FI     float64 // FMOVI immediate, pre-converted

	Target int
	Pred   bool
}

// Decode extracts the micro-op form of the instruction. Machine-level
// CALLs carry no Args; decoding an IR-level CALL drops them (the simulator
// never sees one).
func (in *Instr) Decode() Decoded {
	m := in.Op.Meta()
	d := Decoded{
		Op:      in.Op,
		Kind:    m.Kind,
		Mem:     m.Mem,
		Connect: m.Connect,
		Dst:     in.Def(),
		A:       in.A,
		B:       in.B,
		CClass:  in.CClass,
		Imm:     in.Imm,
		UseImm:  in.UseImm,
		Target:  in.Target,
		Pred:    in.Pred,
	}
	if in.Op == FMOVI {
		d.FI = in.FImm()
	}
	uses := in.Uses(d.Use[:0])
	if len(uses) > len(d.Use) {
		// Only IR-level CALLs can exceed three sources; the machine form
		// never does. Record what fits — Decode is machine-level only.
		uses = uses[:len(d.Use)]
	}
	d.NUse = uint8(len(uses))
	d.NPair = m.NPairs
	for i := 0; i < int(m.NPairs); i++ {
		d.Pair[i] = ConnectPair{in.CIdx[i], in.CPhys[i], m.PairDef[i]}
	}
	return d
}

// Uses returns the pre-extracted source registers without allocating.
func (d *Decoded) Uses() []Reg { return d.Use[:d.NUse] }

// Pairs returns the pre-materialised connect operands without allocating.
func (d *Decoded) Pairs() []ConnectPair { return d.Pair[:d.NPair] }
