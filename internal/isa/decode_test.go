package isa

import (
	"testing"
)

// decodeCases builds at least one representative instruction per opcode,
// plus the operand-shape variants that change extraction: immediate second
// sources, invalid B slots, value-returning RET, and the FMOVI bit-pattern
// immediate.
func decodeCases() []Instr {
	var cases []Instr
	for op := Op(0); int(op) < NumOps; op++ {
		in := Instr{
			Op: op, Dst: IntReg(3), A: IntReg(4), B: IntReg(5),
			Imm: 16, Target: 7, Pred: true,
			CIdx: [2]uint16{2, 6}, CPhys: [2]uint16{90, 91}, CClass: ClassInt,
		}
		if op == FMOVI {
			in.SetFImm(2.5)
		}
		cases = append(cases, in)

		switch op {
		case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SLL, SRL, SRA, SLT,
			BEQ, BNE, BLT, BLE, BGT, BGE:
			imm := in
			imm.B = Reg{}
			imm.UseImm = true
			cases = append(cases, imm)
		case RET:
			void := in
			void.A = Reg{}
			cases = append(cases, void)
		case MOV, FMOV, FNEG, FABS, CVTIF, CVTFI, MOVI, FMOVI, LD, FLD:
			noB := in
			noB.B = Reg{}
			cases = append(cases, noB)
		}
	}
	return cases
}

// TestDecodeRoundTrip checks that the predecoded form agrees with the
// dynamic extraction helpers for every opcode: same use set, same def,
// same connect pairs, same classification and immediate/branch payload.
func TestDecodeRoundTrip(t *testing.T) {
	covered := map[Op]bool{}
	for _, in := range decodeCases() {
		in := in
		covered[in.Op] = true
		d := in.Decode()

		if d.Op != in.Op || d.Kind != in.Op.Kind() {
			t.Errorf("%v: op/kind mismatch: %+v", in.Op, d)
		}
		if d.Mem != in.Op.IsMem() || d.Connect != in.Op.IsConnect() {
			t.Errorf("%v: flags mismatch mem=%v connect=%v", in.Op, d.Mem, d.Connect)
		}
		if d.Dst != in.Def() {
			t.Errorf("%v: def %v, want %v", in.Op, d.Dst, in.Def())
		}

		want := in.Uses(nil)
		got := d.Uses()
		if len(got) != len(want) {
			t.Errorf("%v: uses %v, want %v", in.Op, got, want)
		} else {
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%v: use[%d] = %v, want %v", in.Op, i, got[i], want[i])
				}
			}
		}

		wantPairs := in.ConnectPairs()
		gotPairs := d.Pairs()
		if len(gotPairs) != len(wantPairs) {
			t.Errorf("%v: pairs %v, want %v", in.Op, gotPairs, wantPairs)
		} else {
			for i := range wantPairs {
				if gotPairs[i] != wantPairs[i] {
					t.Errorf("%v: pair[%d] = %v, want %v", in.Op, i, gotPairs[i], wantPairs[i])
				}
			}
		}

		if d.Imm != in.Imm || d.UseImm != in.UseImm || d.Target != in.Target || d.Pred != in.Pred {
			t.Errorf("%v: payload mismatch: %+v", in.Op, d)
		}
		if in.Op == FMOVI && d.FI != in.FImm() {
			t.Errorf("FMOVI: FI = %v, want %v", d.FI, in.FImm())
		}
		if d.CClass != in.CClass {
			t.Errorf("%v: cclass %v, want %v", in.Op, d.CClass, in.CClass)
		}
	}
	for op := Op(0); int(op) < NumOps; op++ {
		if !covered[op] {
			t.Errorf("no decode case for opcode %v", op)
		}
	}
}
