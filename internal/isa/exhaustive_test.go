package isa

import (
	"strings"
	"testing"
)

// sampleInstr builds a plausible instruction for any opcode.
func sampleInstr(op Op) Instr {
	in := Instr{Op: op}
	switch op {
	case NOP, HALT, RET:
	case MOVI:
		in.Dst, in.Imm = IntReg(3), 42
	case FMOVI:
		in.Dst = FloatReg(3)
		in.SetFImm(1.5)
	case LGA:
		in.Dst, in.Sym, in.Imm = IntReg(3), "g", 8
	case MOV, SLT:
		in.Dst, in.A, in.B = IntReg(1), IntReg(2), IntReg(3)
	case FMOV, FNEG, FABS:
		in.Dst, in.A = FloatReg(1), FloatReg(2)
	case CVTIF:
		in.Dst, in.A = FloatReg(1), IntReg(2)
	case CVTFI:
		in.Dst, in.A = IntReg(1), FloatReg(2)
	case LD:
		in.Dst, in.A, in.Imm = IntReg(1), IntReg(2), 16
	case FLD:
		in.Dst, in.A, in.Imm = FloatReg(1), IntReg(2), 16
	case ST:
		in.A, in.B, in.Imm = IntReg(2), IntReg(3), 16
	case FST:
		in.A, in.B, in.Imm = IntReg(2), FloatReg(3), 16
	case FADD, FSUB, FMUL, FDIV:
		in.Dst, in.A, in.B = FloatReg(1), FloatReg(2), FloatReg(3)
	case BR:
		in.Target = 7
	case BEQ, BNE, BLT, BLE, BGT, BGE:
		in.A, in.B, in.Target = IntReg(1), IntReg(2), 7
	case FBEQ, FBNE, FBLT, FBLE:
		in.A, in.B, in.Target = FloatReg(1), FloatReg(2), 7
	case CALL:
		in.Sym = "f"
		in.Dst = IntReg(4)
		in.Args = []Reg{IntReg(1), FloatReg(0)}
	case CONUSE, CONDEF:
		in.CIdx, in.CPhys, in.CClass = [2]uint16{3}, [2]uint16{99}, ClassInt
	case CONUU, CONDU, CONDD:
		in.CIdx, in.CPhys, in.CClass = [2]uint16{3, 4}, [2]uint16{99, 100}, ClassFloat
	default:
		in.Dst, in.A, in.B = IntReg(1), IntReg(2), IntReg(3)
	}
	return in
}

// TestEveryOpcode walks the whole opcode space: String is printable,
// Uses/Def are consistent with the register classes, latency is sane, and
// each classification predicate is total.
func TestEveryOpcode(t *testing.T) {
	lat := DefaultLatencies(2)
	count := 0
	for op := Op(0); ; op++ {
		name := op.String()
		if strings.HasPrefix(name, "op(") {
			break
		}
		count++
		in := sampleInstr(op)
		s := in.String()
		if s == "" {
			t.Errorf("%v: empty String", op)
		}
		if !strings.HasPrefix(s, name) {
			t.Errorf("%v: String %q does not start with mnemonic", op, s)
		}
		uses := in.Uses(nil)
		for _, u := range uses {
			if !u.Valid() {
				t.Errorf("%v: invalid register in Uses", op)
			}
		}
		if d := in.Def(); d.Valid() {
			switch op.Kind() {
			case KindStore, KindBranch, KindConnect, KindHalt:
				t.Errorf("%v: unexpected Def %v", op, d)
			}
		}
		if l := lat.Of(op); l < 0 || l > 10 {
			t.Errorf("%v: latency %d out of range", op, l)
		}
		// Predicates must not disagree with the kind table.
		if op.IsMem() != (op.Kind() == KindLoad || op.Kind() == KindStore) {
			t.Errorf("%v: IsMem inconsistent", op)
		}
		if op.IsConnect() != (op.Kind() == KindConnect) {
			t.Errorf("%v: IsConnect inconsistent", op)
		}
		// Immediate variants print with '#'.
		if op == ADD {
			imm := Instr{Op: ADD, Dst: IntReg(1), A: IntReg(2), Imm: 5, UseImm: true}
			if !strings.Contains(imm.String(), "#5") {
				t.Errorf("immediate form misprinted: %s", imm.String())
			}
		}
	}
	if count < 45 {
		t.Errorf("opcode walk covered only %d opcodes", count)
	}
}

func TestRegClassStrings(t *testing.T) {
	if ClassInt.String() != "int" || ClassFloat.String() != "float" || ClassNone.String() != "none" {
		t.Error("RegClass strings wrong")
	}
	if (Reg{}).String() != "_" {
		t.Error("invalid register should print _")
	}
	if IntReg(5).String() != "r5" || FloatReg(7).String() != "f7" {
		t.Error("register printing wrong")
	}
	if (Reg{}).Valid() || !IntReg(0).Valid() {
		t.Error("Valid wrong")
	}
}
