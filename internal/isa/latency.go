package isa

// Latencies holds the deterministic instruction latencies of the modeled
// microarchitecture. The defaults reproduce Table 1 of the paper; Load is
// the experimentally varied parameter (2 or 4 cycles), and Connect is 0 or
// 1 depending on the RC implementation scenario (Figure 12).
type Latencies struct {
	IntALU  int
	IntMul  int
	IntDiv  int
	FPALU   int
	FPConv  int
	FPMul   int
	FPDiv   int
	Branch  int
	Load    int
	Store   int
	Connect int
}

// DefaultLatencies returns Table 1 with the given load latency and
// zero-cycle connects.
func DefaultLatencies(load int) Latencies {
	return Latencies{
		IntALU:  1,
		IntMul:  3,
		IntDiv:  10,
		FPALU:   3,
		FPConv:  3,
		FPMul:   3,
		FPDiv:   10,
		Branch:  1,
		Load:    load,
		Store:   1,
		Connect: 0,
	}
}

// Of returns the latency of the opcode under this configuration. Latency is
// the number of cycles after issue before a dependent instruction may issue
// (1 means the result is available to instructions issuing the next cycle).
func (l Latencies) Of(op Op) int {
	switch op.Kind() {
	case KindIntALU:
		return l.IntALU
	case KindIntMul:
		return l.IntMul
	case KindIntDiv:
		return l.IntDiv
	case KindFPALU:
		return l.FPALU
	case KindFPConv:
		return l.FPConv
	case KindFPMul:
		return l.FPMul
	case KindFPDiv:
		return l.FPDiv
	case KindLoad:
		return l.Load
	case KindStore:
		return l.Store
	case KindBranch, KindCall:
		return l.Branch
	case KindConnect:
		return l.Connect
	}
	return 1
}
