package isa

import (
	"fmt"
	"math"
	"strings"
)

// Instr is one instruction. Which fields are meaningful depends on Op; see
// the opcode comments in op.go. The struct doubles as compiler IR (virtual
// registers, Target = block index, CALL carries Args) and machine code
// (physical map indices, Target = instruction address, CALL lowered to the
// stack convention).
type Instr struct {
	Op  Op
	Dst Reg // destination register (also the compare "fa" slot is A)
	A   Reg // first source
	B   Reg // second source (ignored when UseImm)

	// Imm is the second-source immediate (when UseImm), the load/store
	// displacement, the MOVI constant, the FMOVI bit pattern, or the LGA
	// offset.
	Imm    int64
	UseImm bool

	// Target is the branch destination: a block index in IR form, an
	// absolute instruction address in machine form.
	Target int

	// Sym is the callee name for CALL or the global symbol for LGA.
	Sym string

	// Args holds the argument registers of an IR-level CALL. Lowering
	// replaces them with explicit stack stores; machine-level CALLs have
	// no Args.
	Args []Reg

	// Connect operands: (map index, physical register) pairs. CONUSE and
	// CONDEF use pair 0 only. CClass tells which register file's mapping
	// table the connect addresses.
	CIdx   [2]uint16
	CPhys  [2]uint16
	CClass RegClass

	// Pred is the static branch prediction attached by the compiler from
	// profile data: true = predicted taken. Meaningful for conditional
	// branches only.
	Pred bool
}

// FImm returns the FMOVI immediate as a float64.
func (in *Instr) FImm() float64 { return math.Float64frombits(uint64(in.Imm)) }

// SetFImm stores a float64 immediate into Imm.
func (in *Instr) SetFImm(f float64) { in.Imm = int64(math.Float64bits(f)) }

// Uses appends the registers read by the instruction to dst and returns it.
// Connect instructions read no data registers (their operands are
// immediates); IR-level CALL reads its Args.
func (in *Instr) Uses(dst []Reg) []Reg {
	switch in.Op {
	case NOP, MOVI, FMOVI, LGA, BR, HALT, CONUSE, CONDEF, CONUU, CONDU, CONDD:
		return dst
	case LD, FLD:
		return append(dst, in.A)
	case ST, FST:
		return append(dst, in.A, in.B)
	case MOV, FMOV, FNEG, FABS, CVTIF, CVTFI:
		return append(dst, in.A)
	case RET:
		if in.A.Valid() {
			return append(dst, in.A)
		}
		return dst
	case CALL:
		return append(dst, in.Args...)
	case FBEQ, FBNE, FBLT, FBLE:
		return append(dst, in.A, in.B)
	case BEQ, BNE, BLT, BLE, BGT, BGE:
		dst = append(dst, in.A)
		if !in.UseImm {
			dst = append(dst, in.B)
		}
		return dst
	default: // three-address ALU/FP ops
		dst = append(dst, in.A)
		if !in.UseImm && in.B.Valid() {
			dst = append(dst, in.B)
		}
		return dst
	}
}

// Def returns the register written by the instruction, or an invalid Reg.
func (in *Instr) Def() Reg {
	switch in.Op {
	case ST, FST, BR, BEQ, BNE, BLT, BLE, BGT, BGE, FBEQ, FBNE, FBLT, FBLE,
		NOP, HALT, RET, CONUSE, CONDEF, CONUU, CONDU, CONDD:
		return Reg{}
	case CALL:
		return in.Dst // may be invalid for void calls
	default:
		return in.Dst
	}
}

// ConnectPairs returns the (index, phys, isDef) triples of a connect
// instruction in operand order, driven by the Meta table's pair shape. It
// returns nil for non-connects. Hot paths should prefer the pre-extracted
// Decoded.Pairs, which does not allocate.
func (in *Instr) ConnectPairs() []ConnectPair {
	m := in.Op.Meta()
	if m.NPairs == 0 {
		return nil
	}
	out := make([]ConnectPair, m.NPairs)
	for i := range out {
		out[i] = ConnectPair{in.CIdx[i], in.CPhys[i], m.PairDef[i]}
	}
	return out
}

// ConnectPair is one (map index, physical register) connect operand.
type ConnectPair struct {
	Idx  uint16
	Phys uint16
	Def  bool // true: updates the write map; false: the read map
}

// String renders the instruction in assembly-like form. Branch targets are
// rendered as ".T<n>" (block index or address, per form).
func (in *Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	arg := func(s string) {
		if strings.HasSuffix(b.String(), in.Op.String()) {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(s)
	}
	src2 := func() string {
		if in.UseImm {
			return fmt.Sprintf("#%d", in.Imm)
		}
		return in.B.String()
	}
	switch in.Op {
	case NOP, HALT:
	case MOVI:
		arg(in.Dst.String())
		arg(fmt.Sprintf("#%d", in.Imm))
	case FMOVI:
		arg(in.Dst.String())
		arg(fmt.Sprintf("#%g", in.FImm()))
	case LGA:
		arg(in.Dst.String())
		arg(fmt.Sprintf("%s+%d", in.Sym, in.Imm))
	case MOV, FMOV, FNEG, FABS, CVTIF, CVTFI:
		arg(in.Dst.String())
		arg(in.A.String())
	case LD, FLD:
		arg(in.Dst.String())
		arg(fmt.Sprintf("%d(%s)", in.Imm, in.A))
	case ST, FST:
		arg(in.B.String())
		arg(fmt.Sprintf("%d(%s)", in.Imm, in.A))
	case BR:
		arg(fmt.Sprintf(".T%d", in.Target))
	case BEQ, BNE, BLT, BLE, BGT, BGE:
		arg(in.A.String())
		arg(src2())
		arg(fmt.Sprintf(".T%d", in.Target))
	case FBEQ, FBNE, FBLT, FBLE:
		arg(in.A.String())
		arg(in.B.String())
		arg(fmt.Sprintf(".T%d", in.Target))
	case CALL:
		arg(in.Sym)
		if in.Dst.Valid() {
			arg("-> " + in.Dst.String())
		}
		for _, a := range in.Args {
			arg(a.String())
		}
	case RET:
		if in.A.Valid() {
			arg(in.A.String())
		}
	case CONUSE, CONDEF, CONUU, CONDU, CONDD:
		for _, p := range in.ConnectPairs() {
			cls := "r"
			if in.CClass == ClassFloat {
				cls = "f"
			}
			arg(fmt.Sprintf("%si%d:%sp%d", cls, p.Idx, cls, p.Phys))
		}
	default:
		arg(in.Dst.String())
		arg(in.A.String())
		arg(src2())
	}
	return b.String()
}
