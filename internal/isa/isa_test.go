package isa

import (
	"strings"
	"testing"
)

func TestOpStringsAndKinds(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
	cases := []struct {
		op   Op
		kind Kind
	}{
		{ADD, KindIntALU}, {MUL, KindIntMul}, {DIV, KindIntDiv},
		{FADD, KindFPALU}, {FMUL, KindFPMul}, {FDIV, KindFPDiv},
		{CVTIF, KindFPConv}, {LD, KindLoad}, {FST, KindStore},
		{BEQ, KindBranch}, {CALL, KindCall}, {CONUU, KindConnect},
	}
	for _, c := range cases {
		if c.op.Kind() != c.kind {
			t.Errorf("%v kind = %v, want %v", c.op, c.op.Kind(), c.kind)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !BR.IsBranch() || !BEQ.IsCondBranch() || BR.IsCondBranch() {
		t.Error("branch predicates wrong")
	}
	if !LD.IsMem() || !FST.IsMem() || ADD.IsMem() || CALL.IsMem() {
		t.Error("IsMem wrong")
	}
	for _, op := range []Op{CONUSE, CONDEF, CONUU, CONDU, CONDD} {
		if !op.IsConnect() {
			t.Errorf("%v should be connect", op)
		}
	}
	for _, op := range []Op{BR, BEQ, RET, HALT} {
		if !op.IsTerminator() {
			t.Errorf("%v should terminate a block", op)
		}
	}
	if CALL.IsTerminator() || ADD.IsTerminator() {
		t.Error("non-terminators misclassified")
	}
}

func TestUsesDefs(t *testing.T) {
	r := func(n int) Reg { return IntReg(n) }
	fr := func(n int) Reg { return FloatReg(n) }

	cases := []struct {
		in   Instr
		uses []Reg
		def  Reg
	}{
		{Instr{Op: ADD, Dst: r(1), A: r(2), B: r(3)}, []Reg{r(2), r(3)}, r(1)},
		{Instr{Op: ADD, Dst: r(1), A: r(2), Imm: 5, UseImm: true}, []Reg{r(2)}, r(1)},
		{Instr{Op: MOVI, Dst: r(1), Imm: 9}, nil, r(1)},
		{Instr{Op: LD, Dst: r(1), A: r(2), Imm: 8}, []Reg{r(2)}, r(1)},
		{Instr{Op: ST, A: r(2), B: r(3), Imm: 8}, []Reg{r(2), r(3)}, Reg{}},
		{Instr{Op: FST, A: r(2), B: fr(3)}, []Reg{r(2), fr(3)}, Reg{}},
		{Instr{Op: BEQ, A: r(1), B: r(2), Target: 3}, []Reg{r(1), r(2)}, Reg{}},
		{Instr{Op: BEQ, A: r(1), Imm: 0, UseImm: true}, []Reg{r(1)}, Reg{}},
		{Instr{Op: RET, A: r(4)}, []Reg{r(4)}, Reg{}},
		{Instr{Op: RET}, nil, Reg{}},
		{Instr{Op: CALL, Dst: r(5), Args: []Reg{r(1), fr(0)}}, []Reg{r(1), fr(0)}, r(5)},
		{Instr{Op: CONUSE, CIdx: [2]uint16{3}, CPhys: [2]uint16{40}}, nil, Reg{}},
		{Instr{Op: FADD, Dst: fr(0), A: fr(1), B: fr(2)}, []Reg{fr(1), fr(2)}, fr(0)},
	}
	for _, c := range cases {
		got := c.in.Uses(nil)
		if len(got) != len(c.uses) {
			t.Errorf("%v uses = %v, want %v", c.in.Op, got, c.uses)
			continue
		}
		for i := range got {
			if got[i] != c.uses[i] {
				t.Errorf("%v uses = %v, want %v", c.in.Op, got, c.uses)
			}
		}
		if c.in.Def() != c.def {
			t.Errorf("%v def = %v, want %v", c.in.Op, c.in.Def(), c.def)
		}
	}
}

func TestConnectPairs(t *testing.T) {
	in := Instr{Op: CONDU, CIdx: [2]uint16{3, 5}, CPhys: [2]uint16{100, 101}, CClass: ClassInt}
	pairs := in.ConnectPairs()
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(pairs))
	}
	if !pairs[0].Def || pairs[0].Idx != 3 || pairs[0].Phys != 100 {
		t.Errorf("pair0 = %+v", pairs[0])
	}
	if pairs[1].Def || pairs[1].Idx != 5 || pairs[1].Phys != 101 {
		t.Errorf("pair1 = %+v", pairs[1])
	}
	if (&Instr{Op: ADD}).ConnectPairs() != nil {
		t.Error("non-connect should have nil pairs")
	}
}

func TestLatenciesTable1(t *testing.T) {
	l := DefaultLatencies(2)
	want := map[Op]int{
		ADD: 1, MUL: 3, DIV: 10, FADD: 3, CVTIF: 3, FMUL: 3, FDIV: 10,
		BR: 1, LD: 2, ST: 1, CONUSE: 0,
	}
	for op, w := range want {
		if got := l.Of(op); got != w {
			t.Errorf("latency(%v) = %d, want %d", op, got, w)
		}
	}
	l4 := DefaultLatencies(4)
	if l4.Of(FLD) != 4 {
		t.Errorf("4-cycle load config: latency(FLD) = %d", l4.Of(FLD))
	}
}

func TestFImmRoundTrip(t *testing.T) {
	var in Instr
	in.SetFImm(3.5)
	if in.FImm() != 3.5 {
		t.Errorf("FImm round trip = %v", in.FImm())
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: ADD, Dst: IntReg(1), A: IntReg(2), B: IntReg(3)}, "add r1, r2, r3"},
		{Instr{Op: ADD, Dst: IntReg(1), A: IntReg(2), Imm: 4, UseImm: true}, "add r1, r2, #4"},
		{Instr{Op: LD, Dst: IntReg(1), A: IntReg(2), Imm: 16}, "ld r1, 16(r2)"},
		{Instr{Op: BEQ, A: IntReg(1), B: IntReg(0), Target: 7}, "beq r1, r0, .T7"},
		{Instr{Op: CONUSE, CIdx: [2]uint16{6}, CPhys: [2]uint16{9}, CClass: ClassInt}, "con_use ri6:rp9"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}
