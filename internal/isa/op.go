// Package isa defines the instruction set architecture used throughout the
// repository: a MIPS-R2000-like three-address instruction set extended with
// general compare-and-branch opcodes (as in the paper's experimental setup,
// §5.2) and with the register-connection instructions of §2.2.
//
// The same Instr type is used at two levels:
//
//   - as compiler IR, where register operands are virtual registers
//     (unbounded numbering per class), and
//   - as machine code, where register operands are physical map indices
//     (after register allocation) and branch targets are instruction
//     addresses.
//
// Sharing the representation keeps lowering honest: the compiler can only
// emit what the machine can execute.
package isa

import "fmt"

// Op is an instruction opcode.
type Op uint8

// Opcodes. The comments give the assembly shape; "rd" is a destination
// register, "ra"/"rb" source registers, "imm" a 64-bit immediate.
const (
	NOP Op = iota

	// Integer ALU (latency: IntALU).
	ADD // rd = ra + rb|imm
	SUB // rd = ra - rb|imm
	AND // rd = ra & rb|imm
	OR  // rd = ra | rb|imm
	XOR // rd = ra ^ rb|imm
	SLL // rd = ra << rb|imm
	SRL // rd = uint(ra) >> rb|imm
	SRA // rd = ra >> rb|imm
	SLT // rd = 1 if ra < rb|imm else 0
	MOV // rd = ra

	// Integer multiply / divide.
	MUL // rd = ra * rb|imm        (latency: IntMul)
	DIV // rd = ra / rb|imm        (latency: IntDiv)
	REM // rd = ra % rb|imm        (latency: IntDiv)

	// Immediate / address formation (latency: IntALU).
	MOVI // rd = imm
	LGA  // rd = address of global Sym (+ imm)

	// Memory (latency: Load / Store). Addresses are byte addresses; all
	// accesses move one 8-byte word.
	LD  // rd = mem[ra + imm]      (integer)
	ST  // mem[ra + imm] = rb      (integer; rb in the B slot)
	FLD // fd = mem[ra + imm]      (float dest, integer base)
	FST // mem[ra + imm] = fb      (float source in B slot, integer base)

	// Floating point (latency: FPALU / FPMul / FPDiv / FPConv).
	FADD  // fd = fa + fb
	FSUB  // fd = fa - fb
	FMUL  // fd = fa * fb
	FDIV  // fd = fa / fb
	FMOV  // fd = fa
	FMOVI // fd = float64frombits(imm)
	FNEG  // fd = -fa
	FABS  // fd = |fa|
	CVTIF // fd = float64(ra)      (int source)
	CVTFI // rd = int64(fa)        (float source; truncates)

	// Control (latency: Branch). In IR form Target is a block index; in
	// machine form it is an absolute instruction address.
	BR   // goto Target
	BEQ  // if ra == rb|imm goto Target
	BNE  // if ra != rb|imm goto Target
	BLT  // if ra <  rb|imm goto Target
	BLE  // if ra <= rb|imm goto Target
	BGT  // if ra >  rb|imm goto Target
	BGE  // if ra >= rb|imm goto Target
	FBEQ // if fa == fb goto Target
	FBNE // if fa != fb goto Target
	FBLT // if fa <  fb goto Target
	FBLE // if fa <= fb goto Target

	// Procedure linkage. CALL pushes the return address on the stack and
	// jumps to Sym; RET pops and returns. Both reset the register mapping
	// table to home locations (paper §4.1). In IR form CALL carries
	// explicit Args and an optional result in Dst; lowering expands these
	// into the stack-based calling convention.
	CALL
	RET

	// Register connection (paper §2.2). Operands are (map index, physical
	// register) pairs carried as immediates in CIdx/CPhys; connects never
	// read or write data registers. The single-pair forms are CONUSE and
	// CONDEF; the combined two-pair forms are CONUU (use,use),
	// CONDU (def,use) and CONDD (def,def) — footnote 1 of the paper says
	// the combined forms are what the experiments use.
	CONUSE // read-map[CIdx0] = CPhys0
	CONDEF // write-map[CIdx0] = CPhys0
	CONUU  // read-map[CIdx0] = CPhys0;  read-map[CIdx1] = CPhys1
	CONDU  // write-map[CIdx0] = CPhys0; read-map[CIdx1] = CPhys1
	CONDD  // write-map[CIdx0] = CPhys0; write-map[CIdx1] = CPhys1

	// HALT stops simulation; the interpreter treats falling off main the
	// same way.
	HALT

	numOps
)

// NumOps is the number of defined opcodes, for building dispatch tables
// indexed by Op.
const NumOps = int(numOps)

// Kind classifies opcodes by the functional-unit/latency class they occupy.
type Kind uint8

// Functional-unit classes (paper Table 1).
const (
	KindNop Kind = iota
	KindIntALU
	KindIntMul
	KindIntDiv
	KindFPALU
	KindFPMul
	KindFPDiv
	KindFPConv
	KindLoad
	KindStore
	KindBranch
	KindCall
	KindConnect
	KindHalt
)

// kindNames labels the functional-unit classes for stats export.
var kindNames = [...]string{
	KindNop:     "nop",
	KindIntALU:  "int-alu",
	KindIntMul:  "int-mul",
	KindIntDiv:  "int-div",
	KindFPALU:   "fp-alu",
	KindFPMul:   "fp-mul",
	KindFPDiv:   "fp-div",
	KindFPConv:  "fp-conv",
	KindLoad:    "load",
	KindStore:   "store",
	KindBranch:  "branch",
	KindCall:    "call",
	KindConnect: "connect",
	KindHalt:    "halt",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// OpMeta is the static description of one opcode: its functional-unit
// (latency) class, classification flags, and operand roles. The table is
// consulted once per instruction at predecode time; the simulator's hot
// path reads the extracted Decoded form instead of re-deriving roles
// through per-op switches.
type OpMeta struct {
	Name string
	Kind Kind

	// Classification flags (mirrored by the Op predicate methods).
	Mem        bool // load or store: occupies a memory channel
	Connect    bool // register-connection opcode
	Branch     bool // conditional or unconditional branch (not CALL/RET)
	CondBranch bool
	Terminator bool // ends a basic block

	// Operand roles.
	HasDst bool // writes the Dst slot (may still be invalid, e.g. void CALL)
	ReadsA bool // reads the A slot (for RET, only when A is valid)
	ReadsB bool // reads the B slot
	BImm   bool // the B slot may be replaced by an immediate (UseImm)

	// Connect operand shape: number of (index, phys) pairs and whether
	// each pair addresses the write map (def) or the read map (use).
	NPairs  uint8
	PairDef [2]bool
}

// role bundles for the Meta literal below.
func alu3(name string, k Kind) OpMeta {
	return OpMeta{Name: name, Kind: k, HasDst: true, ReadsA: true, ReadsB: true, BImm: true}
}
func alu2(name string, k Kind) OpMeta {
	return OpMeta{Name: name, Kind: k, HasDst: true, ReadsA: true}
}
func fp3(name string, k Kind) OpMeta {
	return OpMeta{Name: name, Kind: k, HasDst: true, ReadsA: true, ReadsB: true}
}
func brCond(name string, bImm bool) OpMeta {
	return OpMeta{Name: name, Kind: KindBranch, ReadsA: true, ReadsB: true, BImm: bImm,
		Branch: true, CondBranch: true, Terminator: true}
}
func connect(name string, pairs uint8, d0, d1 bool) OpMeta {
	return OpMeta{Name: name, Kind: KindConnect, Connect: true,
		NPairs: pairs, PairDef: [2]bool{d0, d1}}
}

// Meta is the static per-op metadata table.
var Meta = [NumOps]OpMeta{
	NOP:    {Name: "nop", Kind: KindNop},
	ADD:    alu3("add", KindIntALU),
	SUB:    alu3("sub", KindIntALU),
	AND:    alu3("and", KindIntALU),
	OR:     alu3("or", KindIntALU),
	XOR:    alu3("xor", KindIntALU),
	SLL:    alu3("sll", KindIntALU),
	SRL:    alu3("srl", KindIntALU),
	SRA:    alu3("sra", KindIntALU),
	SLT:    alu3("slt", KindIntALU),
	MOV:    alu2("mov", KindIntALU),
	MUL:    alu3("mul", KindIntMul),
	DIV:    alu3("div", KindIntDiv),
	REM:    alu3("rem", KindIntDiv),
	MOVI:   {Name: "movi", Kind: KindIntALU, HasDst: true},
	LGA:    {Name: "lga", Kind: KindIntALU, HasDst: true},
	LD:     {Name: "ld", Kind: KindLoad, Mem: true, HasDst: true, ReadsA: true},
	ST:     {Name: "st", Kind: KindStore, Mem: true, ReadsA: true, ReadsB: true},
	FLD:    {Name: "fld", Kind: KindLoad, Mem: true, HasDst: true, ReadsA: true},
	FST:    {Name: "fst", Kind: KindStore, Mem: true, ReadsA: true, ReadsB: true},
	FADD:   fp3("fadd", KindFPALU),
	FSUB:   fp3("fsub", KindFPALU),
	FMUL:   fp3("fmul", KindFPMul),
	FDIV:   fp3("fdiv", KindFPDiv),
	FMOV:   alu2("fmov", KindFPALU),
	FMOVI:  {Name: "fmovi", Kind: KindFPALU, HasDst: true},
	FNEG:   alu2("fneg", KindFPALU),
	FABS:   alu2("fabs", KindFPALU),
	CVTIF:  alu2("cvtif", KindFPConv),
	CVTFI:  alu2("cvtfi", KindFPConv),
	BR:     {Name: "br", Kind: KindBranch, Branch: true, Terminator: true},
	BEQ:    brCond("beq", true),
	BNE:    brCond("bne", true),
	BLT:    brCond("blt", true),
	BLE:    brCond("ble", true),
	BGT:    brCond("bgt", true),
	BGE:    brCond("bge", true),
	FBEQ:   brCond("fbeq", false),
	FBNE:   brCond("fbne", false),
	FBLT:   brCond("fblt", false),
	FBLE:   brCond("fble", false),
	CALL:   {Name: "call", Kind: KindCall, HasDst: true}, // IR CALL also reads Args
	RET:    {Name: "ret", Kind: KindCall, ReadsA: true, Terminator: true},
	CONUSE: connect("con_use", 1, false, false),
	CONDEF: connect("con_def", 1, true, false),
	CONUU:  connect("con_uu", 2, false, false),
	CONDU:  connect("con_du", 2, true, false),
	CONDD:  connect("con_dd", 2, true, true),
	HALT:   {Name: "halt", Kind: KindHalt, Terminator: true},
}

// Meta returns the static metadata for the opcode.
func (op Op) Meta() *OpMeta {
	if int(op) < NumOps {
		return &Meta[op]
	}
	return &Meta[NOP]
}

// String returns the assembly mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < NumOps && Meta[op].Name != "" {
		return Meta[op].Name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Kind reports the functional-unit class of the opcode.
func (op Op) Kind() Kind {
	if int(op) < NumOps {
		return Meta[op].Kind
	}
	return KindNop
}

// IsBranch reports whether op is a conditional or unconditional branch
// (excluding CALL/RET, which are classified as KindCall).
func (op Op) IsBranch() bool { return op.Meta().Branch }

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool { return op.Meta().CondBranch }

// IsMem reports whether op accesses memory (loads and stores only; CALL/RET
// touch the stack but are modeled on the branch path, not a memory channel).
func (op Op) IsMem() bool { return op.Meta().Mem }

// IsConnect reports whether op is one of the register-connection opcodes.
func (op Op) IsConnect() bool { return op.Meta().Connect }

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool { return op.Meta().Terminator }
