// Package isa defines the instruction set architecture used throughout the
// repository: a MIPS-R2000-like three-address instruction set extended with
// general compare-and-branch opcodes (as in the paper's experimental setup,
// §5.2) and with the register-connection instructions of §2.2.
//
// The same Instr type is used at two levels:
//
//   - as compiler IR, where register operands are virtual registers
//     (unbounded numbering per class), and
//   - as machine code, where register operands are physical map indices
//     (after register allocation) and branch targets are instruction
//     addresses.
//
// Sharing the representation keeps lowering honest: the compiler can only
// emit what the machine can execute.
package isa

import "fmt"

// Op is an instruction opcode.
type Op uint8

// Opcodes. The comments give the assembly shape; "rd" is a destination
// register, "ra"/"rb" source registers, "imm" a 64-bit immediate.
const (
	NOP Op = iota

	// Integer ALU (latency: IntALU).
	ADD // rd = ra + rb|imm
	SUB // rd = ra - rb|imm
	AND // rd = ra & rb|imm
	OR  // rd = ra | rb|imm
	XOR // rd = ra ^ rb|imm
	SLL // rd = ra << rb|imm
	SRL // rd = uint(ra) >> rb|imm
	SRA // rd = ra >> rb|imm
	SLT // rd = 1 if ra < rb|imm else 0
	MOV // rd = ra

	// Integer multiply / divide.
	MUL // rd = ra * rb|imm        (latency: IntMul)
	DIV // rd = ra / rb|imm        (latency: IntDiv)
	REM // rd = ra % rb|imm        (latency: IntDiv)

	// Immediate / address formation (latency: IntALU).
	MOVI // rd = imm
	LGA  // rd = address of global Sym (+ imm)

	// Memory (latency: Load / Store). Addresses are byte addresses; all
	// accesses move one 8-byte word.
	LD  // rd = mem[ra + imm]      (integer)
	ST  // mem[ra + imm] = rb      (integer; rb in the B slot)
	FLD // fd = mem[ra + imm]      (float dest, integer base)
	FST // mem[ra + imm] = fb      (float source in B slot, integer base)

	// Floating point (latency: FPALU / FPMul / FPDiv / FPConv).
	FADD  // fd = fa + fb
	FSUB  // fd = fa - fb
	FMUL  // fd = fa * fb
	FDIV  // fd = fa / fb
	FMOV  // fd = fa
	FMOVI // fd = float64frombits(imm)
	FNEG  // fd = -fa
	FABS  // fd = |fa|
	CVTIF // fd = float64(ra)      (int source)
	CVTFI // rd = int64(fa)        (float source; truncates)

	// Control (latency: Branch). In IR form Target is a block index; in
	// machine form it is an absolute instruction address.
	BR   // goto Target
	BEQ  // if ra == rb|imm goto Target
	BNE  // if ra != rb|imm goto Target
	BLT  // if ra <  rb|imm goto Target
	BLE  // if ra <= rb|imm goto Target
	BGT  // if ra >  rb|imm goto Target
	BGE  // if ra >= rb|imm goto Target
	FBEQ // if fa == fb goto Target
	FBNE // if fa != fb goto Target
	FBLT // if fa <  fb goto Target
	FBLE // if fa <= fb goto Target

	// Procedure linkage. CALL pushes the return address on the stack and
	// jumps to Sym; RET pops and returns. Both reset the register mapping
	// table to home locations (paper §4.1). In IR form CALL carries
	// explicit Args and an optional result in Dst; lowering expands these
	// into the stack-based calling convention.
	CALL
	RET

	// Register connection (paper §2.2). Operands are (map index, physical
	// register) pairs carried as immediates in CIdx/CPhys; connects never
	// read or write data registers. The single-pair forms are CONUSE and
	// CONDEF; the combined two-pair forms are CONUU (use,use),
	// CONDU (def,use) and CONDD (def,def) — footnote 1 of the paper says
	// the combined forms are what the experiments use.
	CONUSE // read-map[CIdx0] = CPhys0
	CONDEF // write-map[CIdx0] = CPhys0
	CONUU  // read-map[CIdx0] = CPhys0;  read-map[CIdx1] = CPhys1
	CONDU  // write-map[CIdx0] = CPhys0; read-map[CIdx1] = CPhys1
	CONDD  // write-map[CIdx0] = CPhys0; write-map[CIdx1] = CPhys1

	// HALT stops simulation; the interpreter treats falling off main the
	// same way.
	HALT

	numOps
)

// Kind classifies opcodes by the functional-unit/latency class they occupy.
type Kind uint8

// Functional-unit classes (paper Table 1).
const (
	KindNop Kind = iota
	KindIntALU
	KindIntMul
	KindIntDiv
	KindFPALU
	KindFPMul
	KindFPDiv
	KindFPConv
	KindLoad
	KindStore
	KindBranch
	KindCall
	KindConnect
	KindHalt
)

type opInfo struct {
	name string
	kind Kind
}

var opTable = [numOps]opInfo{
	NOP:    {"nop", KindNop},
	ADD:    {"add", KindIntALU},
	SUB:    {"sub", KindIntALU},
	AND:    {"and", KindIntALU},
	OR:     {"or", KindIntALU},
	XOR:    {"xor", KindIntALU},
	SLL:    {"sll", KindIntALU},
	SRL:    {"srl", KindIntALU},
	SRA:    {"sra", KindIntALU},
	SLT:    {"slt", KindIntALU},
	MOV:    {"mov", KindIntALU},
	MUL:    {"mul", KindIntMul},
	DIV:    {"div", KindIntDiv},
	REM:    {"rem", KindIntDiv},
	MOVI:   {"movi", KindIntALU},
	LGA:    {"lga", KindIntALU},
	LD:     {"ld", KindLoad},
	ST:     {"st", KindStore},
	FLD:    {"fld", KindLoad},
	FST:    {"fst", KindStore},
	FADD:   {"fadd", KindFPALU},
	FSUB:   {"fsub", KindFPALU},
	FMUL:   {"fmul", KindFPMul},
	FDIV:   {"fdiv", KindFPDiv},
	FMOV:   {"fmov", KindFPALU},
	FMOVI:  {"fmovi", KindFPALU},
	FNEG:   {"fneg", KindFPALU},
	FABS:   {"fabs", KindFPALU},
	CVTIF:  {"cvtif", KindFPConv},
	CVTFI:  {"cvtfi", KindFPConv},
	BR:     {"br", KindBranch},
	BEQ:    {"beq", KindBranch},
	BNE:    {"bne", KindBranch},
	BLT:    {"blt", KindBranch},
	BLE:    {"ble", KindBranch},
	BGT:    {"bgt", KindBranch},
	BGE:    {"bge", KindBranch},
	FBEQ:   {"fbeq", KindBranch},
	FBNE:   {"fbne", KindBranch},
	FBLT:   {"fblt", KindBranch},
	FBLE:   {"fble", KindBranch},
	CALL:   {"call", KindCall},
	RET:    {"ret", KindCall},
	CONUSE: {"con_use", KindConnect},
	CONDEF: {"con_def", KindConnect},
	CONUU:  {"con_uu", KindConnect},
	CONDU:  {"con_du", KindConnect},
	CONDD:  {"con_dd", KindConnect},
	HALT:   {"halt", KindHalt},
}

// String returns the assembly mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < len(opTable) && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Kind reports the functional-unit class of the opcode.
func (op Op) Kind() Kind {
	if int(op) < len(opTable) {
		return opTable[op].kind
	}
	return KindNop
}

// IsBranch reports whether op is a conditional or unconditional branch
// (excluding CALL/RET, which are classified as KindCall).
func (op Op) IsBranch() bool { return op.Kind() == KindBranch }

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool { return op.Kind() == KindBranch && op != BR }

// IsMem reports whether op accesses memory (loads and stores only; CALL/RET
// touch the stack but are modeled on the branch path, not a memory channel).
func (op Op) IsMem() bool { k := op.Kind(); return k == KindLoad || k == KindStore }

// IsConnect reports whether op is one of the register-connection opcodes.
func (op Op) IsConnect() bool { return op.Kind() == KindConnect }

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool {
	switch op.Kind() {
	case KindBranch, KindHalt:
		return true
	}
	return op == RET
}
