package isa

import "fmt"

// RegClass distinguishes the integer and floating-point register files.
type RegClass uint8

// Register classes.
const (
	ClassNone  RegClass = iota // no register (operand unused / immediate)
	ClassInt                   // integer file
	ClassFloat                 // floating-point file
)

func (c RegClass) String() string {
	switch c {
	case ClassInt:
		return "int"
	case ClassFloat:
		return "float"
	}
	return "none"
}

// Reg names a register. Before register allocation N is a virtual register
// number (unbounded); after allocation N is a map index into the register
// mapping table (equivalently, a core-register number of the base
// architecture). The zero value is "no register".
type Reg struct {
	Class RegClass
	N     int
}

// Convenience constructors.
func IntReg(n int) Reg   { return Reg{ClassInt, n} }
func FloatReg(n int) Reg { return Reg{ClassFloat, n} }

// Valid reports whether r names a register at all.
func (r Reg) Valid() bool { return r.Class != ClassNone }

func (r Reg) String() string {
	switch r.Class {
	case ClassInt:
		return fmt.Sprintf("r%d", r.N)
	case ClassFloat:
		return fmt.Sprintf("f%d", r.N)
	}
	return "_"
}

// Architectural register conventions (paper §5.1 and DESIGN.md §3):
// R0 is hardwired to zero, R1 is the stack pointer, R2/F2 carry return
// values, and four integer registers (the highest-numbered allocatable
// ones, chosen by the allocator) are reserved as spill temporaries.
const (
	RegZero = 0 // integer register hardwired to 0
	RegSP   = 1 // stack pointer
	RegRV   = 2 // integer return value
	RegFRV  = 2 // floating-point return value (F2)
)
