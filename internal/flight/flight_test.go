package flight

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupCoalesces(t *testing.T) {
	g := NewGroup[string]()
	var execs atomic.Int64
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	vals := make([]string, n)
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, sh := g.Do(context.Background(), "k", func(context.Context) (string, error) {
				execs.Add(1)
				<-release
				return "result", nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], shared[i] = v, sh
		}(i)
	}
	// Wait until all callers joined, then let the single execution finish.
	waitWaiters(t, g, "k", n)
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Errorf("%d executions for %d concurrent callers, want 1", got, n)
	}
	joiners := 0
	for i := range vals {
		if vals[i] != "result" {
			t.Errorf("caller %d got %q", i, vals[i])
		}
		if shared[i] {
			joiners++
		}
	}
	if joiners != n-1 {
		t.Errorf("%d callers joined an existing flight, want %d", joiners, n-1)
	}
}

func TestFlightSurvivesOneWaiterLeaving(t *testing.T) {
	g := NewGroup[string]()
	release := make(chan struct{})
	canceled := make(chan error, 1)
	fn := func(fctx context.Context) (string, error) {
		select {
		case <-release:
			return "ok", nil
		case <-fctx.Done():
			canceled <- context.Cause(fctx)
			return "", fctx.Err()
		}
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx1, "k", fn)
		done1 <- err
	}()
	done2 := make(chan error, 1)
	var val2 string
	go func() {
		v, err, _ := g.Do(context.Background(), "k", fn)
		val2 = v
		done2 <- err
	}()
	waitWaiters(t, g, "k", 2)

	cancel1()
	if err := <-done1; !errors.Is(err, context.Canceled) {
		t.Fatalf("leaver got %v, want context.Canceled", err)
	}
	// The flight must still be running for waiter 2.
	select {
	case err := <-canceled:
		t.Fatalf("flight canceled (%v) while a waiter remained", err)
	default:
	}
	close(release)
	if err := <-done2; err != nil || val2 != "ok" {
		t.Fatalf("remaining waiter got %q, %v", val2, err)
	}
}

func TestFlightCanceledWhenAllWaitersLeave(t *testing.T) {
	g := NewGroup[string]()
	canceled := make(chan error, 1)
	started := make(chan struct{})
	fn := func(fctx context.Context) (string, error) {
		close(started)
		<-fctx.Done()
		canceled <- context.Cause(fctx)
		return "", fctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx, "k", fn)
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter got %v", err)
	}
	select {
	case cause := <-canceled:
		if !errors.Is(cause, context.Canceled) {
			t.Errorf("flight cancel cause = %v", cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flight was never canceled after its last waiter left")
	}
	// The abandoned key must not block a fresh execution.
	v, err, _ := g.Do(context.Background(), "k", func(context.Context) (string, error) {
		return "fresh", nil
	})
	if err != nil || v != "fresh" {
		t.Fatalf("fresh flight after abandonment: %q, %v", v, err)
	}
}

func TestAbandonedFlightDoesNotTrapLaterCallers(t *testing.T) {
	g := NewGroup[string]()
	slowExit := make(chan struct{})
	started := make(chan struct{})
	doomed := func(fctx context.Context) (string, error) {
		close(started)
		<-fctx.Done()
		<-slowExit // a canceled simulation takes a while to notice
		return "", fctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx, "k", doomed)
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter got %v", err)
	}
	// The doomed execution has not exited yet; a new caller for the same
	// key must start a fresh flight rather than inherit the canceled one.
	v, err, _ := g.Do(context.Background(), "k", func(context.Context) (string, error) {
		return "fresh", nil
	})
	close(slowExit)
	if err != nil || v != "fresh" {
		t.Fatalf("later caller got %q, %v — joined the doomed flight?", v, err)
	}
}

func waitWaiters(t *testing.T, g *Group[string], key string, n int) {
	t.Helper()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if g.Waiters(key) == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d waiters on %q", n, key)
		}
		time.Sleep(time.Millisecond)
	}
}
