// Package flight provides a waiter-counted singleflight: concurrent
// requests for the same key coalesce onto one execution whose context is
// canceled only when every request waiting on it has gone away. One
// impatient caller therefore cannot kill a computation other callers are
// still waiting for, and a computation nobody wants anymore is stopped
// instead of burning a worker slot.
//
// It is shared by the rcserve daemon (internal/serve, values are marshaled
// response bytes) and the in-process experiment runner (internal/exp,
// values are simulation results).
package flight

import (
	"context"
	"sync"
)

// Group coalesces concurrent executions by key. The zero value is not
// usable; construct with NewGroup.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

// call is one in-flight execution and its waiters.
type call[V any] struct {
	done    chan struct{}
	val     V
	err     error
	waiters int
	cancel  context.CancelCauseFunc
}

// NewGroup returns an empty group.
func NewGroup[V any]() *Group[V] {
	return &Group[V]{m: map[string]*call[V]{}}
}

// Do runs fn for key, sharing one execution among concurrent callers. The
// execution runs under its own context, canceled (with the departing
// caller's cause) only when the last waiter leaves. It reports the result,
// the caller's context error if the caller gave up first, and whether this
// caller joined an execution another caller started (for coalescing
// telemetry). A canceled execution's error is returned to (and only to)
// the waiters that stayed; callers that never cache errors get a fresh
// flight on the next request for the key.
func (g *Group[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (val V, err error, shared bool) {
	g.mu.Lock()
	f, joined := g.m[key]
	if !joined {
		fctx, cancel := context.WithCancelCause(context.Background())
		f = &call[V]{done: make(chan struct{}), cancel: cancel}
		g.m[key] = f
		go func() {
			f.val, f.err = fn(fctx)
			g.mu.Lock()
			if g.m[key] == f { // a canceled flight may already be forgotten
				delete(g.m, key)
			}
			g.mu.Unlock()
			cancel(nil) // release the context's resources
			close(f.done)
		}()
	}
	f.waiters++
	g.mu.Unlock()

	select {
	case <-f.done:
		// If the caller's deadline expired while the flight was finishing
		// (both channels ready, select picked the flight), honor the
		// deadline: a caller that asked for 1ms never sees a success that
		// took longer. The completed result stays available for others.
		if cerr := ctx.Err(); cerr != nil {
			var zero V
			return zero, cerr, joined
		}
		return f.val, f.err, joined
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			f.cancel(context.Cause(ctx))
			// Forget the key immediately: the canceled execution may take a
			// while to notice (a simulation's cycle loop polls every few
			// thousand cycles), and a later caller must start a fresh
			// flight rather than join a doomed one.
			if g.m[key] == f {
				delete(g.m, key)
			}
		}
		g.mu.Unlock()
		var zero V
		return zero, ctx.Err(), joined
	}
}

// Waiters reports how many callers are currently waiting on key's flight
// (0 when no flight is active). It exists for tests that need to
// deterministically observe join states.
func (g *Group[V]) Waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f := g.m[key]; f != nil {
		return f.waiters
	}
	return 0
}
