// Package cli holds the flag-parsing helpers shared by the command-line
// tools. The library deliberately forgives a zero-value Arch (normalize
// fills in the paper defaults), but an explicit flag value that is out
// of range must be an error, not a silent substitution — `rcrun -model
// 9` used to run model 3 and exit 0.
package cli

import (
	"fmt"

	"regconn"
	"regconn/internal/backend"
	"regconn/internal/core"
)

// ParseBackend maps a -mode flag value to a registered backend. The
// accepted-name set and the error message come from the backend registry,
// so a newly registered backend is accepted — and named in the error —
// without touching this package.
func ParseBackend(s string) (backend.Backend, error) {
	return backend.ByName(s)
}

// ParseMode maps a -mode flag value to the register mode. It accepts
// exactly the registry's names (ParseBackend) and returns the backend's ID
// for tools that carry the selection in Arch.Mode.
func ParseMode(s string) (regconn.RegMode, error) {
	be, err := ParseBackend(s)
	if err != nil {
		return 0, err
	}
	return be.ID(), nil
}

// ModeNames returns the registry's mode names for usage strings, in
// sorted order.
func ModeNames() []string {
	return backend.Names()
}

// ParseModel validates a -model flag value against the four automatic-
// reset models of the paper (§4.1).
func ParseModel(n int) (core.Model, error) {
	m := core.Model(n)
	if !m.Valid() {
		return 0, fmt.Errorf("invalid RC model %d (want 1..4)", n)
	}
	return m, nil
}
