// Package cli holds the flag-parsing helpers shared by the command-line
// tools. The library deliberately forgives a zero-value Arch (normalize
// fills in the paper defaults), but an explicit flag value that is out
// of range must be an error, not a silent substitution — `rcrun -model
// 9` used to run model 3 and exit 0.
package cli

import (
	"fmt"

	"regconn"
	"regconn/internal/core"
)

// ParseMode maps a -mode flag value to the register mode.
func ParseMode(s string) (regconn.RegMode, error) {
	switch s {
	case "rc":
		return regconn.WithRC, nil
	case "spill":
		return regconn.WithoutRC, nil
	case "unlimited":
		return regconn.Unlimited, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want rc, spill, or unlimited)", s)
}

// ParseModel validates a -model flag value against the four automatic-
// reset models of the paper (§4.1).
func ParseModel(n int) (core.Model, error) {
	m := core.Model(n)
	if !m.Valid() {
		return 0, fmt.Errorf("invalid RC model %d (want 1..4)", n)
	}
	return m, nil
}
