package cli

import (
	"testing"

	"regconn"
	"regconn/internal/core"
)

func TestParseMode(t *testing.T) {
	good := map[string]regconn.RegMode{
		"rc":        regconn.WithRC,
		"spill":     regconn.WithoutRC,
		"unlimited": regconn.Unlimited,
	}
	for s, want := range good {
		m, err := ParseMode(s)
		if err != nil || m != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, m, err, want)
		}
	}
	for _, s := range []string{"", "RC", "junk", "with-RC"} {
		if _, err := ParseMode(s); err == nil {
			t.Errorf("ParseMode(%q) succeeded, want error", s)
		}
	}
}

func TestParseModel(t *testing.T) {
	for n := 1; n <= 4; n++ {
		m, err := ParseModel(n)
		if err != nil || m != core.Model(n) {
			t.Errorf("ParseModel(%d) = %v, %v", n, m, err)
		}
	}
	// Out-of-range models must be an error here even though the library's
	// Arch.normalize would silently fall back to the paper default.
	for _, n := range []int{0, -1, 5, 9} {
		if _, err := ParseModel(n); err == nil {
			t.Errorf("ParseModel(%d) succeeded, want error", n)
		}
	}
}
