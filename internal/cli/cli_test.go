package cli

import (
	"strings"
	"testing"

	"regconn"
	"regconn/internal/backend"
	"regconn/internal/core"
)

func TestParseMode(t *testing.T) {
	good := map[string]regconn.RegMode{
		"rc":         regconn.WithRC,
		"spill":      regconn.WithoutRC,
		"unlimited":  regconn.Unlimited,
		"portreduce": regconn.PortReduce,
		"chain":      regconn.Chain,
	}
	for s, want := range good {
		m, err := ParseMode(s)
		if err != nil || m != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, m, err, want)
		}
	}
	for _, s := range []string{"", "RC", "junk", "with-RC"} {
		_, err := ParseMode(s)
		if err == nil {
			t.Errorf("ParseMode(%q) succeeded, want error", s)
			continue
		}
		// The rejection names every registered backend so the user can
		// fix the flag without reading the source.
		for _, name := range backend.Names() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("ParseMode(%q) error %q does not name backend %q", s, err, name)
			}
		}
	}
}

func TestParseBackendMatchesRegistry(t *testing.T) {
	for _, name := range backend.Names() {
		be, err := ParseBackend(name)
		if err != nil {
			t.Errorf("ParseBackend(%q): %v", name, err)
			continue
		}
		if be.Name() != name {
			t.Errorf("ParseBackend(%q) returned backend named %q", name, be.Name())
		}
		m, err := ParseMode(name)
		if err != nil || m != be.ID() {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", name, m, err, be.ID())
		}
	}
}

func TestParseModel(t *testing.T) {
	for n := 1; n <= 4; n++ {
		m, err := ParseModel(n)
		if err != nil || m != core.Model(n) {
			t.Errorf("ParseModel(%d) = %v, %v", n, m, err)
		}
	}
	// Out-of-range models must be an error here even though the library's
	// Arch.normalize would silently fall back to the paper default.
	for _, n := range []int{0, -1, 5, 9} {
		if _, err := ParseModel(n); err == nil {
			t.Errorf("ParseModel(%d) succeeded, want error", n)
		}
	}
}
