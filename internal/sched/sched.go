package sched

import (
	"sort"

	"regconn/internal/analysis"
	"regconn/internal/codegen"
	"regconn/internal/isa"
)

// Schedule list-schedules the machine function in place, region by region.
// A region is a maximal single-entry run of instructions: it starts at the
// function entry, at a branch-target label, or after an unconditional
// control transfer. Instructions never move across region boundaries, so
// all label addresses are preserved.
func Schedule(mf *codegen.MFunc, cfg Config) {
	n := len(mf.Code)
	if n <= 1 {
		return
	}
	if cfg.ReadPorts > 0 && cfg.ReadPorts < 2 {
		cfg.ReadPorts = 2 // a two-source instruction must always fit
	}
	ids := newPhysID(mf, cfg)
	liveAt := liveness(mf, ids, cfg)

	label := make([]bool, n+1)
	for i := range mf.Code {
		in := &mf.Code[i]
		if in.Op == isa.BR || in.Op.IsCondBranch() {
			label[in.Target] = true
		}
	}
	start := 0
	for i := 1; i <= n; i++ {
		boundary := i == n || label[i]
		if !boundary {
			switch mf.Code[i-1].Op {
			case isa.BR, isa.RET, isa.HALT:
				boundary = true
			}
		}
		if boundary {
			scheduleRegion(mf, start, i, ids, liveAt, cfg)
			start = i
		}
	}
}

// node is per-instruction dependence information within a region.
type node struct {
	uses, defs []int // dense phys ids
	mapR, mapW []int // dense map-entry resource ids
	isMem      bool
	isStore    bool
	isBranch   bool // conditional or unconditional branch
	predTaken  bool // branch predicted taken (no speculation above it)
	isBarrier  bool // call / ret / halt
	spec       bool // may speculate above a side-exit branch
	lat        int

	succs []edge
	npred int
	// list-scheduling state
	height int
	ready  int // earliest issue cycle permitted by scheduled predecessors
}

type edge struct {
	to  int
	lat int
}

// mapRes gives each mapping-table entry side a dense resource id.
func mapRes(class isa.RegClass, def bool, idx, maxCore int) int {
	c := 0
	if class == isa.ClassFloat {
		c = 1
	}
	s := 0
	if def {
		s = 1
	}
	return ((c*2)+s)*maxCore + idx
}

func intersects(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func scheduleRegion(mf *codegen.MFunc, start, end int, ids physID, liveAt map[int]analysis.BitSet, cfg Config) {
	n := end - start
	if n <= 1 {
		return
	}
	maxCore := cfg.Conv.Int.Core
	if cfg.Conv.FP.Core > maxCore {
		maxCore = cfg.Conv.FP.Core
	}
	if mx := ids.nInt; mx > maxCore {
		maxCore = mx // Unlimited mode: indices range over the whole file
	}
	if mx := ids.nFP; mx > maxCore {
		maxCore = mx
	}

	nodes := make([]node, n)
	// Positions (region-relative) of defs per phys id, for the opaque-root
	// stability check in mayAlias.
	defPos := map[int][]int{}
	var scratch []int
	for k := 0; k < n; k++ {
		i := start + k
		in, ann := &mf.Code[i], &mf.Ann[i]
		nd := &nodes[k]
		scratch = instrUses(in, ann, ids, cfg, nil)
		nd.uses = append([]int(nil), scratch...)
		scratch = instrDefs(in, ann, ids, cfg, nil)
		nd.defs = append([]int(nil), scratch...)
		for _, d := range nd.defs {
			defPos[d] = append(defPos[d], k)
		}
		nd.isMem = in.Op.IsMem()
		nd.isStore = in.Op.Kind() == isa.KindStore
		nd.isBranch = in.Op == isa.BR || in.Op.IsCondBranch()
		nd.predTaken = in.Op == isa.BR || (in.Op.IsCondBranch() && in.Pred)
		nd.isBarrier = in.Op == isa.CALL || in.Op == isa.RET || in.Op == isa.HALT
		nd.lat = cfg.Lat.Of(in.Op)

		// Map-entry resources.
		if in.Op.IsConnect() {
			for _, p := range in.ConnectPairs() {
				nd.mapW = append(nd.mapW, mapRes(in.CClass, p.Def, int(p.Idx), maxCore))
			}
		} else if !nd.isBarrier {
			addIdx := func(r isa.Reg, def bool) {
				if !r.Valid() {
					return
				}
				nd.mapR = append(nd.mapR, mapRes(r.Class, def, r.N, maxCore))
			}
			var buf [3]isa.Reg
			for _, u := range in.Uses(buf[:0]) {
				addIdx(u, false)
			}
			if d := in.Def(); d.Valid() {
				addIdx(d, true)
				// The automatic-reset side effect may rewrite both map
				// sides of the destination entry (conservative over all
				// four models).
				nd.mapW = append(nd.mapW,
					mapRes(d.Class, false, d.N, maxCore),
					mapRes(d.Class, true, d.N, maxCore))
			}
		}

		// Speculation class: restartable and side-effect free.
		switch in.Op {
		case isa.DIV, isa.REM: // may trap
			nd.spec = false
		default:
			nd.spec = !nd.isStore && !nd.isBranch && !nd.isBarrier && !in.Op.IsConnect()
		}
	}

	addEdge := func(i, j, lat int) {
		nodes[i].succs = append(nodes[i].succs, edge{j, lat})
		nodes[j].npred++
	}

	hasDefBetween := func(phys int, i, j int) bool {
		ps := defPos[phys]
		// any position strictly between i and j
		lo := sort.SearchInts(ps, i+1)
		return lo < len(ps) && ps[lo] < j
	}

	mayAlias := func(i, j int) bool {
		a, b := &mf.Ann[start+i], &mf.Ann[start+j]
		ka, kb := a.MemRootKind, b.MemRootKind
		if ka == codegen.RootUnknown || kb == codegen.RootUnknown {
			return true
		}
		if ka != kb {
			// Distinct object kinds never overlap except opaque, which
			// can point anywhere.
			return ka == codegen.RootOpaque || kb == codegen.RootOpaque
		}
		switch ka {
		case codegen.RootGlobal:
			if a.MemRoot != b.MemRoot {
				return false
			}
			return !(a.MemOffKnown && b.MemOffKnown && a.MemOff != b.MemOff)
		case codegen.RootStack:
			return !(a.MemOffKnown && b.MemOffKnown && a.MemOff != b.MemOff)
		case codegen.RootOpaque:
			if a.MemRoot != b.MemRoot || a.MemRootPhys != b.MemRootPhys ||
				a.MemRootPhys == codegen.NoPhys {
				return true
			}
			if !a.MemOffKnown || !b.MemOffKnown || a.MemOff == b.MemOff {
				return true
			}
			// Same root register, different offsets: independent only if
			// the root's value is unchanged between the two accesses.
			rootID := ids.id(isa.ClassInt, a.MemRootPhys)
			return hasDefBetween(rootID, i, j)
		}
		return true
	}

	for j := 1; j < n; j++ {
		nj := &nodes[j]
		for i := j - 1; i >= 0; i-- {
			ni := &nodes[i]
			// Barriers order against everything (and their clobber lists
			// are large, so skip the fine-grained checks).
			if ni.isBarrier || nj.isBarrier {
				addEdge(i, j, ni.lat)
				continue
			}
			lat := -1 // max over reasons; -1 = no edge
			need := func(l int) {
				if l > lat {
					lat = l
				}
			}
			// Register data dependences on resolved physical registers.
			if intersects(ni.defs, nj.uses) { // RAW
				need(ni.lat)
			}
			if intersects(ni.defs, nj.defs) { // WAW (scoreboard)
				need(ni.lat)
			}
			if intersects(ni.uses, nj.defs) { // WAR
				need(0)
			}
			// Mapping-table entry dependences.
			if intersects(ni.mapW, nj.mapR) || intersects(ni.mapW, nj.mapW) {
				l := 0
				if mf.Code[start+i].Op.IsConnect() {
					l = cfg.ConnectLatency
				}
				need(l)
			}
			if intersects(ni.mapR, nj.mapW) {
				need(0)
			}
			// Memory dependences.
			if ni.isMem && nj.isMem && (ni.isStore || nj.isStore) && mayAlias(i, j) {
				need(0)
			}
			// Control: nothing sinks below a branch...
			if nj.isBranch {
				need(0)
			}
			// ...and only safely-speculatable instructions hoist above
			// one, and only when the branch is predicted not-taken —
			// speculation follows the superblock trace, so code below a
			// predicted-taken branch (e.g. after a loop back edge) stays
			// put instead of executing every iteration.
			if ni.isBranch && lat < 0 {
				hoistable := nj.spec && !ni.predTaken
				if hoistable {
					target := mf.Code[start+i].Target
					if live, ok := liveAt[target]; ok {
						for _, d := range nj.defs {
							if live.Has(d) {
								hoistable = false
								break
							}
						}
					} else {
						hoistable = false
					}
				}
				if !hoistable {
					need(0)
				}
			}
			if lat >= 0 {
				addEdge(i, j, lat)
			}
		}
	}

	// Height (critical path) priority.
	for i := n - 1; i >= 0; i-- {
		h := 0
		for _, e := range nodes[i].succs {
			if x := nodes[e.to].height + maxOf(e.lat, 1); x > h {
				h = x
			}
		}
		nodes[i].height = h
	}

	// List scheduling.
	order := make([]int, 0, n)
	scheduled := make([]bool, n)
	npredLeft := make([]int, n)
	for i := range nodes {
		npredLeft[i] = nodes[i].npred
	}
	var ready []int
	for i := range nodes {
		if npredLeft[i] == 0 {
			ready = append(ready, i)
		}
	}
	// Read-port tracking (portreduce): distinct registers read per cycle
	// and class, with operand-sharing credit. Barriers are exempt — their
	// use lists model calling-convention clobbers, not datapath reads.
	var portStamp []int
	portI, portF := 0, 0
	if cfg.ReadPorts > 0 {
		portStamp = make([]int, ids.total())
		for i := range portStamp {
			portStamp[i] = -1
		}
	}
	cycle := 0
	portNeed := func(uses []int) (ni, nf int) {
		for k, u := range uses {
			if portStamp[u] == cycle {
				continue // already read this cycle: shared
			}
			dup := false
			for _, v := range uses[:k] {
				if v == u {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if u < ids.nInt {
				ni++
			} else {
				nf++
			}
		}
		return
	}
	portCommit := func(uses []int) {
		for _, u := range uses {
			if portStamp[u] == cycle {
				continue
			}
			portStamp[u] = cycle
			if u < ids.nInt {
				portI++
			} else {
				portF++
			}
		}
	}
	for len(order) < n {
		issued := 0
		memUsed := 0
		portI, portF = 0, 0
		branched := false
		for issued < cfg.Issue && !branched {
			// Pick the ready node with the greatest height whose ready
			// cycle has arrived and whose resources fit.
			best := -1
			for _, r := range ready {
				if scheduled[r] || nodes[r].ready > cycle {
					continue
				}
				if nodes[r].isMem && memUsed >= cfg.MemChannels {
					continue
				}
				if cfg.ReadPorts > 0 && !nodes[r].isBarrier {
					ni, nf := portNeed(nodes[r].uses)
					if portI+ni > cfg.ReadPorts || portF+nf > cfg.ReadPorts {
						continue
					}
				}
				if best == -1 || nodes[r].height > nodes[best].height ||
					(nodes[r].height == nodes[best].height && r < best) {
					best = r
				}
			}
			if best == -1 {
				break
			}
			scheduled[best] = true
			order = append(order, best)
			issued++
			if nodes[best].isMem {
				memUsed++
			}
			if cfg.ReadPorts > 0 && !nodes[best].isBarrier {
				portCommit(nodes[best].uses)
			}
			if nodes[best].isBranch || nodes[best].isBarrier {
				branched = true // close the issue group conservatively
			}
			for _, e := range nodes[best].succs {
				npredLeft[e.to]--
				if at := cycle + e.lat; at > nodes[e.to].ready {
					nodes[e.to].ready = at
				}
				if npredLeft[e.to] == 0 {
					ready = append(ready, e.to)
				}
			}
		}
		cycle++
	}

	// Rewrite the region in scheduled order.
	newCode := make([]isa.Instr, n)
	newAnn := make([]codegen.Annot, n)
	for pos, idx := range order {
		newCode[pos] = mf.Code[start+idx]
		newAnn[pos] = mf.Ann[start+idx]
	}
	copy(mf.Code[start:end], newCode)
	copy(mf.Ann[start:end], newAnn)
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
