// Package sched implements superblock-style list scheduling on lowered
// machine code. The paper's code scheduler (§5.1) exploits the zero-cycle
// latency of connect instructions and hides spill latency; this scheduler
// reproduces that role:
//
//   - regions are maximal single-entry instruction runs (side exits
//     allowed), so unrolled loop bodies schedule as one superblock;
//   - data dependences use the *resolved physical registers* recorded by
//     codegen (the map indices in the instructions are not the truth under
//     RC);
//   - each mapping-table entry is an architectural resource: connects
//     write it, instructions that reference the index read it, and
//     register writes touch it (the automatic-reset side effect), which
//     orders connects against their consumers with the configured connect
//     latency (0 or 1);
//   - instructions may speculate upward across side-exit branches only if
//     they are restartable (no stores, traps, connects, control) and their
//     destination is dead at the exit target — general speculation as in
//     IMPACT's superblock scheduling.
package sched

import (
	"regconn/internal/abi"
	"regconn/internal/analysis"
	"regconn/internal/codegen"
	"regconn/internal/isa"
)

// Config carries the machine resources the scheduler targets.
type Config struct {
	Issue          int
	MemChannels    int
	Lat            isa.Latencies
	Conv           *abi.Conventions
	ConnectLatency int

	// UnlimitedMode marks the idealized machine: functions own disjoint
	// register ranges, so calls clobber only the return-value registers.
	UnlimitedMode bool

	// ReadPorts caps the distinct registers read per cycle and class
	// (0 = unlimited; the portreduce backend's structural hazard).
	// Operand sharing is credited: the same register read by several
	// instructions in one cycle costs one port. Values below two are
	// clamped so a two-source instruction can always issue.
	ReadPorts int
}

// physID densely numbers physical registers across both classes for one
// function: integers [0, nInt), floats [nInt, nInt+nFP).
type physID struct {
	nInt, nFP int
}

func (p physID) id(class isa.RegClass, phys int32) int {
	if class == isa.ClassFloat {
		return p.nInt + int(phys)
	}
	return int(phys)
}

func (p physID) total() int { return p.nInt + p.nFP }

// newPhysID sizes the dense space from the function's annotations (the
// Unlimited machine can exceed the nominal conventions).
func newPhysID(mf *codegen.MFunc, cfg Config) physID {
	nInt, nFP := cfg.Conv.Int.Total, cfg.Conv.FP.Total
	grow := func(class isa.RegClass, phys int32) {
		if phys == codegen.NoPhys {
			return
		}
		if class == isa.ClassFloat {
			if int(phys) >= nFP {
				nFP = int(phys) + 1
			}
		} else if int(phys) >= nInt {
			nInt = int(phys) + 1
		}
	}
	for i := range mf.Code {
		in, ann := &mf.Code[i], &mf.Ann[i]
		grow(in.Dst.Class, ann.PDst)
		grow(in.A.Class, ann.PA)
		grow(in.B.Class, ann.PB)
	}
	return physID{nInt, nFP}
}

// instrUses appends the dense phys ids read by instruction i to dst.
func instrUses(in *isa.Instr, ann *codegen.Annot, ids physID, cfg Config, dst []int) []int {
	add := func(class isa.RegClass, phys int32) []int {
		if phys == codegen.NoPhys {
			return dst
		}
		if class == isa.ClassInt && phys == isa.RegZero {
			return dst // the zero register is a constant
		}
		return append(dst, ids.id(class, phys))
	}
	switch in.Op {
	case isa.CALL:
		return append(dst, ids.id(isa.ClassInt, isa.RegSP))
	case isa.RET:
		dst = append(dst, ids.id(isa.ClassInt, isa.RegSP))
		dst = append(dst, ids.id(isa.ClassInt, 2), ids.id(isa.ClassFloat, 2))
		if !cfg.UnlimitedMode {
			for c := range cfg.Conv.Int.CalleeSave {
				dst = append(dst, ids.id(isa.ClassInt, int32(c)))
			}
			for c := range cfg.Conv.FP.CalleeSave {
				dst = append(dst, ids.id(isa.ClassFloat, int32(c)))
			}
		}
		return dst
	}
	// Ann.PA/PB are set exactly when the instruction reads that slot.
	if ann.PA != codegen.NoPhys {
		dst = add(in.A.Class, ann.PA)
	}
	if ann.PB != codegen.NoPhys {
		dst = add(in.B.Class, ann.PB)
	}
	return dst
}

// instrDefs appends the dense phys ids written by instruction i.
func instrDefs(in *isa.Instr, ann *codegen.Annot, ids physID, cfg Config, dst []int) []int {
	if in.Op == isa.CALL {
		// Return-value registers are always clobbered.
		dst = append(dst, ids.id(isa.ClassInt, 2), ids.id(isa.ClassFloat, 2))
		if cfg.UnlimitedMode {
			return dst
		}
		// Caller-save core and the whole extended section die.
		for c := range cfg.Conv.Int.CallerSave {
			dst = append(dst, ids.id(isa.ClassInt, int32(c)))
		}
		for c := range cfg.Conv.FP.CallerSave {
			dst = append(dst, ids.id(isa.ClassFloat, int32(c)))
		}
		for p := cfg.Conv.Int.Core; p < cfg.Conv.Int.Total; p++ {
			dst = append(dst, ids.id(isa.ClassInt, int32(p)))
		}
		for p := cfg.Conv.FP.Core; p < cfg.Conv.FP.Total; p++ {
			dst = append(dst, ids.id(isa.ClassFloat, int32(p)))
		}
		// Spill temporaries / connect windows are scratch.
		for _, t := range cfg.Conv.Int.SpillTemps {
			dst = append(dst, ids.id(isa.ClassInt, int32(t)))
		}
		for _, t := range cfg.Conv.FP.SpillTemps {
			dst = append(dst, ids.id(isa.ClassFloat, int32(t)))
		}
		return dst
	}
	if ann.PDst != codegen.NoPhys {
		if !(in.Dst.Class == isa.ClassInt && ann.PDst == isa.RegZero) {
			dst = append(dst, ids.id(in.Dst.Class, ann.PDst))
		}
	}
	return dst
}

// liveness computes live-in sets at every instruction-block boundary of the
// machine function and returns liveAt: for each code index that is a
// branch-target label, the set of phys ids live there.
func liveness(mf *codegen.MFunc, ids physID, cfg Config) map[int]analysis.BitSet {
	n := len(mf.Code)
	// Block starts: entry, branch targets, instruction after control flow.
	isStart := make([]bool, n+1)
	isStart[0] = true
	for i := range mf.Code {
		in := &mf.Code[i]
		switch {
		case in.Op == isa.BR || in.Op.IsCondBranch():
			isStart[in.Target] = true
			isStart[i+1] = true
		case in.Op == isa.RET || in.Op == isa.HALT:
			isStart[i+1] = true
		}
	}
	var starts []int
	blockOf := make([]int, n)
	cur := -1
	for i := 0; i < n; i++ {
		if isStart[i] {
			cur++
			starts = append(starts, i)
		}
		blockOf[i] = cur
	}
	nb := len(starts)
	end := func(b int) int {
		if b+1 < nb {
			return starts[b+1]
		}
		return n
	}
	succs := make([][]int, nb)
	for b := 0; b < nb; b++ {
		last := end(b) - 1
		if last < starts[b] {
			continue
		}
		in := &mf.Code[last]
		switch {
		case in.Op == isa.BR:
			succs[b] = []int{blockOf[in.Target]}
		case in.Op.IsCondBranch():
			succs[b] = append(succs[b], blockOf[in.Target])
			if last+1 < n {
				succs[b] = append(succs[b], blockOf[last+1])
			}
		case in.Op == isa.RET || in.Op == isa.HALT:
			// no successors
		default:
			if last+1 < n {
				succs[b] = []int{blockOf[last+1]}
			}
		}
	}

	liveIn := make([]analysis.BitSet, nb)
	liveOut := make([]analysis.BitSet, nb)
	for b := range liveIn {
		liveIn[b] = analysis.NewBitSet(ids.total())
		liveOut[b] = analysis.NewBitSet(ids.total())
	}
	var scratch []int
	for changed := true; changed; {
		changed = false
		for b := nb - 1; b >= 0; b-- {
			out := liveOut[b]
			for _, s := range succs[b] {
				if out.UnionWith(liveIn[s]) {
					changed = true
				}
			}
			live := out.Clone()
			for i := end(b) - 1; i >= starts[b]; i-- {
				in, ann := &mf.Code[i], &mf.Ann[i]
				scratch = instrDefs(in, ann, ids, cfg, scratch[:0])
				for _, d := range scratch {
					live.Remove(d)
				}
				scratch = instrUses(in, ann, ids, cfg, scratch[:0])
				for _, u := range scratch {
					live.Add(u)
				}
			}
			if !live.Equal(liveIn[b]) {
				liveIn[b].Copy(live)
				changed = true
			}
		}
	}

	liveAt := map[int]analysis.BitSet{}
	for i := range mf.Code {
		in := &mf.Code[i]
		if in.Op == isa.BR || in.Op.IsCondBranch() {
			liveAt[in.Target] = liveIn[blockOf[in.Target]]
		}
	}
	return liveAt
}
