package sched

import (
	"testing"

	"regconn/internal/abi"
	"regconn/internal/codegen"
	"regconn/internal/isa"
)

func cfg(issue int) Config {
	return Config{
		Issue:       issue,
		MemChannels: 2,
		Lat:         isa.DefaultLatencies(2),
		Conv:        abi.New(16, 256, 16, 256),
	}
}

// mk builds a machine function from (instr, annot) pairs.
type pair struct {
	in  isa.Instr
	ann codegen.Annot
}

func mk(ps ...pair) *codegen.MFunc {
	mf := &codegen.MFunc{Name: "t"}
	for _, p := range ps {
		mf.Code = append(mf.Code, p.in)
		mf.Ann = append(mf.Ann, p.ann)
	}
	return mf
}

func ann(dst, a, b int32) codegen.Annot {
	return codegen.Annot{PDst: dst, PA: a, PB: b}
}

func movi(dst int, v int64) pair {
	return pair{isa.Instr{Op: isa.MOVI, Dst: isa.IntReg(dst), Imm: v}, ann(int32(dst), codegen.NoPhys, codegen.NoPhys)}
}

func add(dst, a, b int) pair {
	return pair{isa.Instr{Op: isa.ADD, Dst: isa.IntReg(dst), A: isa.IntReg(a), B: isa.IntReg(b)},
		ann(int32(dst), int32(a), int32(b))}
}

func halt() pair {
	return pair{isa.Instr{Op: isa.HALT}, ann(codegen.NoPhys, codegen.NoPhys, codegen.NoPhys)}
}

func ops(mf *codegen.MFunc) []isa.Op {
	var out []isa.Op
	for i := range mf.Code {
		out = append(out, mf.Code[i].Op)
	}
	return out
}

func TestPreservesDataDependences(t *testing.T) {
	// r4 = r2+r3 must stay after both MOVIs; the independent MOVI r5 may
	// move anywhere.
	mf := mk(
		movi(2, 1),
		movi(3, 2),
		add(4, 2, 3),
		movi(5, 9),
		halt(),
	)
	Schedule(mf, cfg(4))
	pos := map[isa.Op][]int{}
	dstPos := map[int]int{}
	for i := range mf.Code {
		pos[mf.Code[i].Op] = append(pos[mf.Code[i].Op], i)
		if d := mf.Code[i].Def(); d.Valid() {
			dstPos[d.N] = i
		}
	}
	if dstPos[4] < dstPos[2] || dstPos[4] < dstPos[3] {
		t.Errorf("ADD scheduled before its inputs: %v", ops(mf))
	}
	if mf.Code[len(mf.Code)-1].Op != isa.HALT {
		t.Errorf("HALT not last: %v", ops(mf))
	}
}

func TestHidesLoadLatency(t *testing.T) {
	// ld r2; add r4 = r2+r2; independent movi chain. A good schedule puts
	// independent work between the load and its use.
	ld := pair{isa.Instr{Op: isa.LD, Dst: isa.IntReg(2), A: isa.IntReg(1)},
		codegen.Annot{PDst: 2, PA: 1, PB: codegen.NoPhys, MemRootKind: codegen.RootStack, MemOffKnown: true}}
	mf := mk(
		ld,
		add(4, 2, 2),
		movi(5, 1),
		movi(6, 2),
		halt(),
	)
	Schedule(mf, cfg(1))
	// The use of r2 must not directly follow the load when independent
	// work exists (1-issue, 2-cycle load: one filler slot wanted).
	var ldAt, useAt int
	for i := range mf.Code {
		if mf.Code[i].Op == isa.LD {
			ldAt = i
		}
		if mf.Code[i].Op == isa.ADD {
			useAt = i
		}
	}
	if useAt == ldAt+1 {
		t.Errorf("load latency not hidden: %v", ops(mf))
	}
}

func TestStoreLoadNotReorderedWhenAliasing(t *testing.T) {
	st := pair{isa.Instr{Op: isa.ST, A: isa.IntReg(3), B: isa.IntReg(2), Imm: 0},
		codegen.Annot{PDst: codegen.NoPhys, PA: 3, PB: 2,
			MemRootKind: codegen.RootGlobal, MemRoot: 0, MemOff: 0, MemOffKnown: true}}
	ld := pair{isa.Instr{Op: isa.LD, Dst: isa.IntReg(4), A: isa.IntReg(3), Imm: 0},
		codegen.Annot{PDst: 4, PA: 3, PB: codegen.NoPhys,
			MemRootKind: codegen.RootGlobal, MemRoot: 0, MemOff: 0, MemOffKnown: true}}
	mf := mk(movi(2, 7), st, ld, halt())
	Schedule(mf, cfg(4))
	stAt, ldAt := -1, -1
	for i := range mf.Code {
		switch mf.Code[i].Op {
		case isa.ST:
			stAt = i
		case isa.LD:
			ldAt = i
		}
	}
	if ldAt < stAt {
		t.Errorf("aliasing load hoisted above store: %v", ops(mf))
	}
}

func TestDisjointGlobalAccessesMayReorder(t *testing.T) {
	// Store to global 0, load from global 1 with a long-latency producer
	// feeding the store: the independent load should hoist above.
	mulp := pair{isa.Instr{Op: isa.MUL, Dst: isa.IntReg(2), A: isa.IntReg(5), B: isa.IntReg(5)},
		ann(2, 5, 5)}
	st := pair{isa.Instr{Op: isa.ST, A: isa.IntReg(3), B: isa.IntReg(2), Imm: 0},
		codegen.Annot{PDst: codegen.NoPhys, PA: 3, PB: 2,
			MemRootKind: codegen.RootGlobal, MemRoot: 0, MemOff: 0, MemOffKnown: true}}
	ld := pair{isa.Instr{Op: isa.LD, Dst: isa.IntReg(4), A: isa.IntReg(3), Imm: 0},
		codegen.Annot{PDst: 4, PA: 3, PB: codegen.NoPhys,
			MemRootKind: codegen.RootGlobal, MemRoot: 1, MemOff: 0, MemOffKnown: true}}
	mf := mk(mulp, st, ld, halt())
	Schedule(mf, cfg(1))
	stAt, ldAt := -1, -1
	for i := range mf.Code {
		switch mf.Code[i].Op {
		case isa.ST:
			stAt = i
		case isa.LD:
			ldAt = i
		}
	}
	if ldAt > stAt {
		t.Errorf("independent load not hoisted above store: %v", ops(mf))
	}
}

func TestConnectStaysWithConsumer(t *testing.T) {
	// con_use ri12 -> rp100; add reads index 12. The connect must stay
	// before the add; an independent movi may move around them.
	con := pair{isa.Instr{Op: isa.CONUSE, CIdx: [2]uint16{12}, CPhys: [2]uint16{100}, CClass: isa.ClassInt},
		ann(codegen.NoPhys, codegen.NoPhys, codegen.NoPhys)}
	use := pair{isa.Instr{Op: isa.ADD, Dst: isa.IntReg(2), A: isa.IntReg(12), B: isa.IntReg(12)},
		ann(2, 100, 100)}
	mf := mk(movi(3, 1), con, use, halt())
	Schedule(mf, cfg(4))
	conAt, useAt := -1, -1
	for i := range mf.Code {
		switch {
		case mf.Code[i].Op == isa.CONUSE:
			conAt = i
		case mf.Code[i].Op == isa.ADD:
			useAt = i
		}
	}
	if conAt > useAt {
		t.Errorf("connect scheduled after its consumer: %v", ops(mf))
	}
}

func TestBranchesKeepOrderAndBarrier(t *testing.T) {
	br := pair{isa.Instr{Op: isa.BEQ, A: isa.IntReg(2), Imm: 0, UseImm: true, Target: 9},
		ann(codegen.NoPhys, 2, codegen.NoPhys)}
	stAfter := pair{isa.Instr{Op: isa.ST, A: isa.IntReg(3), B: isa.IntReg(2), Imm: 0},
		codegen.Annot{PDst: codegen.NoPhys, PA: 3, PB: 2, MemRootKind: codegen.RootStack, MemOffKnown: true}}
	mf := mk(movi(2, 0), br, stAfter, halt())
	// Target 9 is out of range of the code; give it a real target inside.
	mf.Code[1].Target = 3
	Schedule(mf, cfg(4))
	brAt, stAt := -1, -1
	for i := range mf.Code {
		switch mf.Code[i].Op {
		case isa.BEQ:
			brAt = i
		case isa.ST:
			stAt = i
		}
	}
	if stAt < brAt {
		t.Errorf("store hoisted above branch: %v", ops(mf))
	}
}

func TestRegionsRespectLabels(t *testing.T) {
	// Code: movi; movi; (label) movi; br back. The br targets index 2, so
	// instructions must not cross that boundary.
	mf := mk(
		movi(2, 1),
		movi(3, 2),
		movi(4, 3), // label (target of br)
		pair{isa.Instr{Op: isa.BR, Target: 2}, ann(codegen.NoPhys, codegen.NoPhys, codegen.NoPhys)},
	)
	Schedule(mf, cfg(4))
	if mf.Code[2].Op != isa.MOVI || mf.Code[2].Dst.N != 4 {
		t.Errorf("label instruction moved: %v", ops(mf))
	}
}

func TestScheduleIsPermutation(t *testing.T) {
	mf := mk(
		movi(2, 1), movi(3, 2), add(4, 2, 3), add(5, 4, 2),
		movi(6, 5), add(7, 6, 6), halt(),
	)
	before := len(mf.Code)
	Schedule(mf, cfg(2))
	if len(mf.Code) != before {
		t.Fatalf("schedule changed instruction count: %d -> %d", before, len(mf.Code))
	}
	seen := map[int]bool{}
	for i := range mf.Code {
		if d := mf.Code[i].Def(); d.Valid() {
			if seen[d.N] {
				t.Fatalf("duplicate def of r%d", d.N)
			}
			seen[d.N] = true
		}
	}
}
