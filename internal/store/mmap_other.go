//go:build !unix

package store

import (
	"errors"
	"os"
)

// mmapFile is unavailable on this platform; sealed segments fall back to
// pread like the active one (seal tolerates the error).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("store: mmap not supported on this platform")
}

func munmap(b []byte) error { return nil }
