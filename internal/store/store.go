// Package store is the persistent tier of the rcserve result cache: an
// append-only, content-addressed corpus of simulation results that
// survives the daemon process. Records are (key, value) pairs — in rcserve
// the key is the canonical SHA-256 point key (serve.Key) and the value is
// the exact marshaled response body, so a result served from disk after a
// restart is byte-identical to the cold run that produced it.
//
// Layout: a directory of numbered segment files (00000001.seg,
// 00000002.seg, ...). Each record is
//
//	[4B LE key length][4B LE value length][key][value][4B LE CRC-32/IEEE]
//
// with the checksum covering everything before it. Appends go to the
// highest-numbered (active) segment and are fsynced before Put returns;
// when the active segment reaches the size bound it is sealed and a new
// one starts. Sealed segments are mmap'd and served zero-copy; the active
// segment is served with pread until it seals.
//
// Recovery: Open scans every segment in order and rebuilds the in-memory
// index (key → segment/offset/length). A record whose header runs past
// the end of its file, or whose checksum does not match, is a torn tail
// from a crash mid-append: scanning of that segment stops there, and if
// it is the active segment the file is truncated back to the last intact
// record so the next append starts on a clean boundary. Everything before
// the tear is served normally — durability is exactly "every Put that
// returned".
//
// Writes are first-write-wins: a Put for a key that is already indexed is
// a no-op. Values for one key are deterministic re-marshalings of the
// same simulation, so the first complete record is as good as any later
// one, and never rewriting an entry is what lets readers hold returned
// slices without locks. Get results alias the mmap (or a private pread
// buffer) and must not be mutated; they remain valid until Close.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	segSuffix = ".seg"
	headerLen = 8 // key length + value length, uint32 LE each
	crcLen    = 4

	// DefaultMaxSegmentBytes bounds one segment file (64 MiB). Sweeps
	// rotate through a handful of segments rather than one giant file, so
	// recovery scans and mmaps stay modestly sized.
	DefaultMaxSegmentBytes = 64 << 20

	// maxRecordLen sanity-bounds a single key or value length read from
	// disk, so a corrupt header cannot ask for a multi-gigabyte
	// allocation during recovery.
	maxRecordLen = 1 << 30
)

// Options tunes a Store; the zero value is ready to use.
type Options struct {
	// MaxSegmentBytes seals the active segment once it reaches this many
	// bytes (0 = DefaultMaxSegmentBytes). Records larger than the bound
	// still land whole: a segment always contains complete records.
	MaxSegmentBytes int64
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Entries   int64 // indexed records
	Bytes     int64 // total segment-file bytes on disk
	Hits      int64 // Get calls answered since Open
	Recovered int64 // records rebuilt into the index by Open's scan
	Segments  int64 // segment files
	TornBytes int64 // bytes of torn tail truncated during recovery
}

// recordRef locates one value inside a segment.
type recordRef struct {
	seg  int   // index into Store.segs
	off  int64 // offset of the value bytes
	vlen int32
}

// segment is one on-disk file. Sealed segments carry an mmap; the active
// segment (the last one) is read with pread until it seals.
type segment struct {
	path string
	f    *os.File
	size int64
	mm   []byte // nil until sealed (or when mmap is unavailable)
}

// Store is safe for concurrent use by multiple goroutines.
type Store struct {
	mu   sync.RWMutex
	dir  string
	opts Options
	segs []*segment
	idx  map[string]recordRef

	hits      atomic.Int64
	recovered int64
	tornBytes int64
	closed    bool
}

// Open opens (creating if needed) the store in dir and rebuilds the index
// by scanning every segment.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, idx: make(map[string]recordRef)}
	for i, name := range names {
		active := i == len(names)-1
		seg, err := s.openSegment(filepath.Join(dir, name), i, active)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.segs = append(s.segs, seg)
	}
	s.recovered = int64(len(s.idx))
	return s, nil
}

// segmentNames lists dir's segment files in creation order.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == segSuffix {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded numeric names sort chronologically
	return names, nil
}

// openSegment scans one segment into the index. The active (last)
// segment is opened read-write and truncated past any torn tail; sealed
// segments are opened read-only and mmap'd.
func (s *Store) openSegment(path string, segIdx int, active bool) (*segment, error) {
	flags := os.O_RDONLY
	if active {
		flags = os.O_RDWR
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	seg := &segment{path: path, f: f}
	good, err := s.scan(f, segIdx)
	if err != nil {
		f.Close()
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if torn := fi.Size() - good; torn > 0 {
		s.tornBytes += torn
		if active {
			// Drop the torn tail so the next append starts on a record
			// boundary. Sealed segments are left as-is (read-only); the
			// scan already ignores everything past the tear.
			if err := f.Truncate(good); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: %w", err)
			}
		}
	}
	seg.size = good
	if !active {
		seg.seal()
	}
	return seg, nil
}

// scan walks f's records from the start, indexing each intact one
// (first-write-wins), and returns the offset of the first byte past the
// last intact record.
func (s *Store) scan(f *os.File, segIdx int) (good int64, err error) {
	r := io.Reader(f)
	var off int64
	hdr := make([]byte, headerLen)
	var buf []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		klen := binary.LittleEndian.Uint32(hdr[0:4])
		vlen := binary.LittleEndian.Uint32(hdr[4:8])
		if klen == 0 || klen > maxRecordLen || vlen > maxRecordLen {
			return off, nil // corrupt header, treat as tear
		}
		n := int(klen) + int(vlen) + crcLen
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return off, nil // torn body
		}
		sum := crc32.NewIEEE()
		sum.Write(hdr)
		sum.Write(buf[:klen+vlen])
		if binary.LittleEndian.Uint32(buf[n-crcLen:]) != sum.Sum32() {
			return off, nil // checksum mismatch: torn or corrupt record
		}
		key := string(buf[:klen])
		if _, dup := s.idx[key]; !dup { // first write wins
			s.idx[key] = recordRef{seg: segIdx, off: off + headerLen + int64(klen), vlen: int32(vlen)}
		}
		off += headerLen + int64(n)
	}
}

// seal mmaps a segment that will no longer be written. When the platform
// has no mmap (or the file is empty) reads keep using pread.
func (seg *segment) seal() {
	if seg.mm != nil || seg.size == 0 {
		return
	}
	if mm, err := mmapFile(seg.f, seg.size); err == nil {
		seg.mm = mm
	}
}

// Get returns the value stored for key. The returned bytes are read-only
// and valid until Close.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false
	}
	ref, ok := s.idx[key]
	if !ok {
		return nil, false
	}
	seg := s.segs[ref.seg]
	if seg.mm != nil {
		s.hits.Add(1)
		return seg.mm[ref.off : ref.off+int64(ref.vlen) : ref.off+int64(ref.vlen)], true
	}
	buf := make([]byte, ref.vlen)
	if _, err := seg.f.ReadAt(buf, ref.off); err != nil {
		return nil, false
	}
	s.hits.Add(1)
	return buf, true
}

// Has reports whether key is indexed without counting a hit.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.idx[key]
	return ok
}

// Put durably appends (key, val): the record is written and fsynced
// before Put returns. If the key is already present the call is a no-op
// (first write wins); the existing bytes are never rewritten.
func (s *Store) Put(key string, val []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, ok := s.idx[key]; ok {
		return nil
	}
	recLen := int64(headerLen + len(key) + len(val) + crcLen)
	seg, err := s.activeSegment(recLen)
	if err != nil {
		return err
	}
	rec := make([]byte, recLen)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	copy(rec[headerLen:], key)
	copy(rec[headerLen+len(key):], val)
	binary.LittleEndian.PutUint32(rec[recLen-crcLen:], crc32.ChecksumIEEE(rec[:recLen-crcLen]))
	if _, err := seg.f.WriteAt(rec, seg.size); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := seg.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.idx[key] = recordRef{seg: len(s.segs) - 1, off: seg.size + headerLen + int64(len(key)), vlen: int32(len(val))}
	seg.size += recLen
	return nil
}

// activeSegment returns the segment the next record of recLen bytes
// should append to, sealing and rotating as needed.
func (s *Store) activeSegment(recLen int64) (*segment, error) {
	if n := len(s.segs); n > 0 {
		seg := s.segs[n-1]
		if seg.size == 0 || seg.size+recLen <= s.opts.MaxSegmentBytes {
			return seg, nil
		}
		seg.seal()
	}
	path := filepath.Join(s.dir, fmt.Sprintf("%08d%s", len(s.segs)+1, segSuffix))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// fsync the directory so the new segment's name survives a crash
	// as durably as the records inside it.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	seg := &segment{path: path, f: f}
	s.segs = append(s.segs, seg)
	return seg, nil
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var bytes int64
	for _, seg := range s.segs {
		bytes += seg.size
	}
	return Stats{
		Entries:   int64(len(s.idx)),
		Bytes:     bytes,
		Hits:      s.hits.Load(),
		Recovered: s.recovered,
		Segments:  int64(len(s.segs)),
		TornBytes: s.tornBytes,
	}
}

// Len reports the number of indexed records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.idx)
}

// Close unmaps and closes every segment. Slices returned by Get are
// invalid afterwards. A crashed process that never calls Close loses
// nothing: every Put was fsynced when it returned.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.segs {
		if seg.mm != nil {
			if err := munmap(seg.mm); err != nil && first == nil {
				first = err
			}
			seg.mm = nil
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
