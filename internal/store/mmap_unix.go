//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The caller owns the mapping
// and must munmap it before closing the file's last reference.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error { return syscall.Munmap(b) }
