package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	kv := map[string]string{
		"aaaa": "alpha",
		"bbbb": "beta with a longer body " + string(bytes.Repeat([]byte("x"), 300)),
		"cccc": "",
	}
	for k, v := range kv {
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}
	check := func(s *Store) {
		t.Helper()
		for k, v := range kv {
			got, ok := s.Get(k)
			if !ok || string(got) != v {
				t.Fatalf("get %q = %q, %v; want %q", k, got, ok, v)
			}
		}
		if _, ok := s.Get("missing"); ok {
			t.Fatal("missing key found")
		}
	}
	check(s)
	if st := s.Stats(); st.Entries != 3 || st.Recovered != 0 || st.Hits < 3 {
		t.Errorf("fresh stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the index is rebuilt by scanning, nothing is lost.
	s2 := mustOpen(t, dir, Options{})
	check(s2)
	if st := s2.Stats(); st.Entries != 3 || st.Recovered != 3 || st.TornBytes != 0 {
		t.Errorf("reopened stats = %+v", st)
	}
}

func TestFirstWriteWins(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.Put("k", []byte("first")); err != nil {
		t.Fatal(err)
	}
	got1, _ := s.Get("k")
	if err := s.Put("k", []byte("second")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("k"); string(got) != "first" {
		t.Fatalf("second Put overwrote the entry: %q", got)
	}
	// The duplicate never reached disk: same byte count, one entry.
	st := s.Stats()
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	want := int64(headerLen + len("k") + len("first") + crcLen)
	if st.Bytes != want {
		t.Errorf("bytes = %d, want %d (duplicate must not append)", st.Bytes, want)
	}
	// And the original slice is untouched (warm-hit byte identity).
	if string(got1) != "first" {
		t.Errorf("previously returned bytes mutated: %q", got1)
	}
	s.Close()

	// First-write-wins also holds across a reopen scan, even if a crafted
	// file carries a duplicate key: the scan keeps the earliest record.
	seg := filepath.Join(dir, "00000001.seg")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(record("k", "forged-late-duplicate"))
	f.Close()
	s2 := mustOpen(t, dir, Options{})
	if got, _ := s2.Get("k"); string(got) != "first" {
		t.Fatalf("reopen preferred a later duplicate: %q", got)
	}
}

// record builds one wire-format record, mirroring Put's encoding.
func record(key, val string) []byte {
	n := headerLen + len(key) + len(val) + crcLen
	rec := make([]byte, n)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	copy(rec[headerLen:], key)
	copy(rec[headerLen+len(key):], val)
	binary.LittleEndian.PutUint32(rec[n-crcLen:], crc32.ChecksumIEEE(rec[:n-crcLen]))
	return rec
}

func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// ~35-byte records against a 64-byte bound: every other Put rotates.
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 64})
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i), []byte(fmt.Sprintf("value-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("segments = %d, want rotation to have produced several", st.Segments)
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{MaxSegmentBytes: 64})
	for i := 0; i < n; i++ {
		got, ok := s2.Get(fmt.Sprintf("key-%02d", i))
		if !ok || string(got) != fmt.Sprintf("value-%02d", i) {
			t.Fatalf("after reopen, key-%02d = %q, %v", i, got, ok)
		}
	}
	// Appends continue after reopen and land after the existing tail.
	if err := s2.Put("late", []byte("arrival")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("late"); !ok || string(got) != "arrival" {
		t.Fatalf("late append missing: %q, %v", got, ok)
	}
}

// TestTornTailTruncatedAtEveryOffset is the crash-recovery sweep: a store
// with K records is cut off at every possible byte offset of its segment
// file, reopened, and must serve exactly the records whose final byte
// made it to disk — intact prefix preserved, torn tail detected by
// checksum/length and truncated.
func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	src := t.TempDir()
	s := mustOpen(t, src, Options{})
	const k = 4
	var boundaries []int64 // file offset after each record
	var off int64
	for i := 0; i < k; i++ {
		key := fmt.Sprintf("point-%d", i)
		val := fmt.Sprintf("result-body-%d", i)
		if err := s.Put(key, []byte(val)); err != nil {
			t.Fatal(err)
		}
		off += int64(headerLen + len(key) + len(val) + crcLen)
		boundaries = append(boundaries, off)
	}
	s.Close()
	whole, err := os.ReadFile(filepath.Join(src, "00000001.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(whole)) != off {
		t.Fatalf("segment is %d bytes, expected %d", len(whole), off)
	}

	for cut := 0; cut <= len(whole); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000001.seg"), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		intact := 0
		for _, b := range boundaries {
			if int64(cut) >= b {
				intact++
			}
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		st := s2.Stats()
		if int(st.Entries) != intact || int(st.Recovered) != intact {
			t.Fatalf("cut %d: recovered %d/%d records, want %d", cut, st.Entries, st.Recovered, intact)
		}
		for i := 0; i < k; i++ {
			got, ok := s2.Get(fmt.Sprintf("point-%d", i))
			if i < intact {
				if !ok || string(got) != fmt.Sprintf("result-body-%d", i) {
					t.Fatalf("cut %d: intact record %d = %q, %v", cut, i, got, ok)
				}
			} else if ok {
				t.Fatalf("cut %d: torn record %d served: %q", cut, i, got)
			}
		}
		wantTorn := int64(cut)
		if intact > 0 {
			wantTorn = int64(cut) - boundaries[intact-1]
		}
		if st.TornBytes != wantTorn {
			t.Fatalf("cut %d: torn bytes = %d, want %d", cut, st.TornBytes, wantTorn)
		}
		// The file was truncated back to the boundary, and a fresh append
		// both works and survives another reopen.
		if fi, err := os.Stat(filepath.Join(dir, "00000001.seg")); err != nil || fi.Size() != int64(cut)-wantTorn {
			t.Fatalf("cut %d: file size %v (err %v), want %d", cut, fi.Size(), err, int64(cut)-wantTorn)
		}
		if err := s2.Put("fresh", []byte("after-recovery")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		s2.Close()
		s3, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if got, ok := s3.Get("fresh"); !ok || string(got) != "after-recovery" {
			t.Fatalf("cut %d: post-recovery append lost: %q, %v", cut, got, ok)
		}
		s3.Close()
	}
}

// A flipped bit inside the file (not just a short tail) must also stop
// the scan at the damaged record rather than serve corrupt bytes.
func TestCorruptChecksumDropsRecord(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	s.Put("good", []byte("kept"))
	s.Put("bad", []byte("damaged"))
	s.Close()
	path := filepath.Join(dir, "00000001.seg")
	b, _ := os.ReadFile(path)
	firstLen := headerLen + len("good") + len("kept") + crcLen
	b[firstLen+headerLen+1] ^= 0x40 // flip a bit in the second record's key/value area
	os.WriteFile(path, b, 0o644)

	s2 := mustOpen(t, dir, Options{})
	if got, ok := s2.Get("good"); !ok || string(got) != "kept" {
		t.Fatalf("good record lost: %q, %v", got, ok)
	}
	if _, ok := s2.Get("bad"); ok {
		t.Fatal("corrupt record served")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{MaxSegmentBytes: 256})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("k-%d", (g*13+i)%32)
				if err := s.Put(k, []byte("v-"+k)); err != nil {
					t.Error(err)
					return
				}
				if v, ok := s.Get(k); !ok || string(v) != "v-"+k {
					t.Errorf("get %s = %q, %v", k, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 32 {
		t.Errorf("len = %d, want 32", s.Len())
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put("", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}
