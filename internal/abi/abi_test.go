package abi

import (
	"testing"

	"regconn/internal/isa"
)

func TestConventionGeometry(t *testing.T) {
	for _, m := range []int{8, 16, 24, 32, 64} {
		c := NewConvention(isa.ClassInt, m, 256)
		if len(c.SpillTemps) != 4 {
			t.Fatalf("m=%d: %d spill temps", m, len(c.SpillTemps))
		}
		// Paper §5.1: 4 spill registers + SP reserved; r0 is the zero
		// register; everything else allocatable.
		if got, want := len(c.Allocatable), m-6; got != want {
			t.Errorf("m=%d: %d allocatable, want %d", m, got, want)
		}
		for _, r := range c.Allocatable {
			if r == isa.RegZero || r == isa.RegSP {
				t.Errorf("m=%d: reserved register %d allocatable", m, r)
			}
			for _, s := range c.SpillTemps {
				if r == s {
					t.Errorf("m=%d: spill temp %d allocatable", m, r)
				}
			}
			if c.CallerSave[r] == c.CalleeSave[r] {
				t.Errorf("m=%d: register %d must be in exactly one save class", m, r)
			}
		}
		if !c.CallerSave[c.RetReg()] {
			t.Errorf("m=%d: return register must be caller-save", m)
		}
		if c.NumExtended() != 256-m {
			t.Errorf("m=%d: %d extended", m, c.NumExtended())
		}
		if !c.IsExtended(m) || c.IsExtended(m-1) {
			t.Errorf("m=%d: extended boundary wrong", m)
		}
	}
}

func TestFPConventionIncludesF0(t *testing.T) {
	c := NewConvention(isa.ClassFloat, 16, 256)
	if c.Allocatable[0] != 0 {
		t.Errorf("fp allocatable starts at %d, want 0", c.Allocatable[0])
	}
	if len(c.Allocatable) != 12 {
		t.Errorf("fp 16: %d allocatable", len(c.Allocatable))
	}
}

func TestClobberedByCall(t *testing.T) {
	c := NewConvention(isa.ClassInt, 16, 256)
	if !c.ClobberedByCall(2) {
		t.Error("return register must be clobbered")
	}
	if !c.ClobberedByCall(200) {
		t.Error("extended registers are caller-save (clobbered)")
	}
	clobberedCallee := false
	for r := range c.CalleeSave {
		if c.ClobberedByCall(r) {
			clobberedCallee = true
		}
	}
	if clobberedCallee {
		t.Error("callee-save core registers survive calls")
	}
}

func TestConventionsBundle(t *testing.T) {
	cs := New(16, 256, 32, 256)
	if cs.Of(isa.ClassInt) != cs.Int || cs.Of(isa.ClassFloat) != cs.FP {
		t.Error("Of dispatch wrong")
	}
	if cs.Int.Core != 16 || cs.FP.Core != 32 {
		t.Error("core sizes wrong")
	}
}

func TestUnsupportedGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for m < MinCore")
		}
	}()
	NewConvention(isa.ClassInt, 4, 256)
}
