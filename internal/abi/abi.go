// Package abi fixes the register conventions shared by the register
// allocator, the code generator, the scheduler, and the experiment harness.
//
// The conventions follow the paper's experimental setup (§5.1): four
// integer registers are reserved as spill temporaries and one as the stack
// pointer. Because the core register-file size m is an experimental
// variable (8..64 integer, 16..128 FP), every set here is computed from m
// rather than hard-coded:
//
//	integer: r0 = zero, r1 = SP, r2 = return value,
//	         r[m-4..m-1] = spill temporaries,
//	         allocatable = r2..r[m-5], lower half caller-save (incl. r2),
//	         upper half callee-save.
//	float:   f2 = return value, f[m-4..m-1] = spill temporaries,
//	         allocatable = f0..f[m-5], lower half caller-save,
//	         upper half callee-save.
//
// All extended registers (phys >= m, present only with RC) are caller-save:
// values live across a call are saved and restored by the caller via
// connect-use/store and connect-def/load pairs — the code-size cost the
// paper charges in Figure 9. CALL and RET reset the mapping table (§4.1).
package abi

import "regconn/internal/isa"

// Calling convention constants. CALL pushes the return address (one word)
// and arguments are passed on the stack: at function entry, argument i is
// at SP + 8 + 8*i. Results return in r2 (integer) or f2 (float).
const (
	WordSize     = 8
	RetAddrWords = 1
)

// Convention is the register convention for one register class under a
// given core size.
type Convention struct {
	Class isa.RegClass
	Core  int // m: addressable registers
	Total int // n: physical registers (== Core without RC)

	Allocatable []int // physical core registers the allocator may use
	SpillTemps  []int // reserved spill temporaries (4)
	CallerSave  map[int]bool
	CalleeSave  map[int]bool
}

// MinCore is the smallest supported core size: zero + SP + return value +
// one allocatable + four spill temporaries.
const MinCore = 8

// NewConvention computes the convention for a class with m core and n
// total physical registers. It panics on unsupported geometry (experiment
// configuration errors are programming errors).
func NewConvention(class isa.RegClass, m, n int) *Convention {
	if m < MinCore || n < m {
		panic("abi: unsupported core geometry")
	}
	c := &Convention{
		Class:      class,
		Core:       m,
		Total:      n,
		CallerSave: map[int]bool{},
		CalleeSave: map[int]bool{},
	}
	for i := m - 4; i < m; i++ {
		c.SpillTemps = append(c.SpillTemps, i)
	}
	lo := 2 // skip zero and SP for integers
	if class == isa.ClassFloat {
		lo = 0
	}
	for i := lo; i < m-4; i++ {
		c.Allocatable = append(c.Allocatable, i)
	}
	// Lower half caller-save; this always places the return-value
	// register (index 2) in the caller-save set.
	half := (len(c.Allocatable) + 1) / 2
	for i, r := range c.Allocatable {
		if i < half {
			c.CallerSave[r] = true
		} else {
			c.CalleeSave[r] = true
		}
	}
	return c
}

// NumExtended returns the count of extended registers.
func (c *Convention) NumExtended() int { return c.Total - c.Core }

// IsExtended reports whether phys is in the extended section.
func (c *Convention) IsExtended(phys int) bool { return phys >= c.Core }

// RetReg returns the physical return-value register for the class.
func (c *Convention) RetReg() int { return 2 }

// ClobberedByCall reports whether phys does not survive a call from the
// caller's perspective: caller-save core registers, the return-value
// register, and every extended register.
func (c *Convention) ClobberedByCall(phys int) bool {
	if c.IsExtended(phys) {
		return true
	}
	return c.CallerSave[phys] || phys == c.RetReg()
}

// Conventions bundles both classes plus the machine-wide geometry used by
// an experiment configuration.
type Conventions struct {
	Int *Convention
	FP  *Convention
}

// New builds conventions for both register files.
func New(intCore, intTotal, fpCore, fpTotal int) *Conventions {
	return &Conventions{
		Int: NewConvention(isa.ClassInt, intCore, intTotal),
		FP:  NewConvention(isa.ClassFloat, fpCore, fpTotal),
	}
}

// Of returns the per-class convention.
func (cs *Conventions) Of(class isa.RegClass) *Convention {
	if class == isa.ClassFloat {
		return cs.FP
	}
	return cs.Int
}
