package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"regconn"
)

func TestRingDeterministicAndCovering(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := newRing(peers, peers[0])
	r2 := newRing([]string{peers[2], peers[0], peers[1]}, peers[1]) // same fleet, different order
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		key := Key(fmt.Sprintf("bench-%d", i), fastArch())
		o := r1.owner(key)
		if got := r2.owner(key); got != o {
			t.Fatalf("replicas disagree on owner of %s: %s vs %s", key, o, got)
		}
		if o != r1.owner(key) {
			t.Fatalf("owner of %s is unstable", key)
		}
		counts[o]++
	}
	for _, p := range peers {
		if counts[p] == 0 {
			t.Errorf("replica %s owns no keys of 300 (distribution: %v)", p, counts)
		}
	}
	// local() agrees with owner() == self, and a nil ring owns everything.
	key := Key("cpp", fastArch())
	if r1.local(key) != (r1.owner(key) == r1.self) {
		t.Error("local() disagrees with owner()")
	}
	var none *ring
	if !none.local(key) {
		t.Error("nil ring must own every key")
	}
}

// replica is one rcserve instance of a test fleet on a real listener.
type replica struct {
	sv   *Server
	base string
}

// startFleet brings up n replicas that all know the same peer list.
func startFleet(t *testing.T, n int, cfg Config) []replica {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	out := make([]replica, n)
	for i := range lns {
		c := cfg
		c.Peers = append([]string(nil), peers...)
		c.Self = peers[i]
		sv, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sv.Close() })
		hs := &http.Server{Handler: sv}
		go hs.Serve(lns[i])
		t.Cleanup(func() { hs.Close() })
		out[i] = replica{sv: sv, base: peers[i]}
	}
	return out
}

func shardGrid() SweepRequest {
	var archs []regconn.Arch
	for _, issue := range []int{1, 2, 4, 8} {
		for _, lat := range []int{2, 4} {
			a := fastArch()
			a.Issue = issue
			a.LoadLatency = lat
			archs = append(archs, a)
		}
	}
	return SweepRequest{Benchmarks: []string{"matrix300"}, Archs: archs}
}

func TestShardedSweepSplitsByOwnerAndMatchesUnsharded(t *testing.T) {
	fleet := startFleet(t, 2, Config{Workers: 2})
	a, b := fleet[0], fleet[1]
	grid := shardGrid()

	// Ownership is decided by the ring; compute the expected split.
	var aOwned, bOwned int
	for _, arch := range grid.Archs {
		if a.sv.ring.local(Key("matrix300", arch)) {
			aOwned++
		} else {
			bOwned++
		}
	}

	lines := postFleetSweep(t, a.base, grid)
	if len(lines) != len(grid.Archs) {
		t.Fatalf("sweep streamed %d lines, want %d", len(lines), len(grid.Archs))
	}
	for i, line := range lines {
		var rr RunResponse
		if err := json.Unmarshal([]byte(line), &rr); err != nil || rr.Result == nil || rr.Result.Cycles == 0 {
			t.Fatalf("line %d is not a simulated point: %s", i, line)
		}
	}

	// Affinity: each replica cached exactly the points it owns — the
	// fleet holds one copy of the corpus, not two.
	if got := a.sv.cache.len(); got != aOwned {
		t.Errorf("replica A cached %d points, owns %d", got, aOwned)
	}
	if got := b.sv.cache.len(); got != bOwned {
		t.Errorf("replica B cached %d points, owns %d", got, bOwned)
	}
	if fwd := metricsOf(t, a.base)["peer_forwarded"]; fwd != float64(bOwned) {
		t.Errorf("peer_forwarded = %v, want %d", fwd, bOwned)
	}

	// The merged stream is deterministic: a warm re-sweep (replica-local
	// caches now hot) is byte-identical, from either entry replica.
	if warm := postFleetSweep(t, a.base, grid); !equalLines(warm, lines) {
		t.Error("warm sharded sweep differs from cold")
	}
	if viaB := postFleetSweep(t, b.base, grid); !equalLines(viaB, lines) {
		t.Error("sweep through replica B differs from replica A")
	}

	// And the sharded fleet streams exactly what one unsharded daemon
	// would: forwarding never changes bytes or order.
	solo := newServer(t, Config{Workers: 2})
	soloSrv := httptest.NewServer(solo)
	defer soloSrv.Close()
	if ref := postSweep(t, soloSrv, grid); !equalLines(ref, lines) {
		t.Error("sharded sweep differs from the unsharded reference stream")
	}

	// LocalOnly bypasses the ring: no new forwards, still the same bytes.
	before := metricsOf(t, a.base)["peer_forwarded"]
	localReq := grid
	localReq.LocalOnly = true
	if local := postFleetSweep(t, a.base, localReq); !equalLines(local, lines) {
		t.Error("local-only sweep differs")
	}
	if after := metricsOf(t, a.base)["peer_forwarded"]; after != before {
		t.Errorf("local-only sweep forwarded points: %v -> %v", before, after)
	}
}

// TestShardedSweepPeerDownFallsBackLocally: a dead replica's points are
// computed by the replica that took the request; the sweep still
// completes with every point simulated.
func TestShardedSweepPeerDownFallsBackLocally(t *testing.T) {
	// Reserve an address, then close it: a guaranteed-dead peer.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + dead.Addr().String()
	dead.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://" + ln.Addr().String()
	sv, err := New(Config{Workers: 2, Peers: []string{self, deadURL}, Self: self})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sv.Close() })
	hs := &http.Server{Handler: sv}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })

	grid := shardGrid()
	var remote int
	for _, arch := range grid.Archs {
		if !sv.ring.local(Key("matrix300", arch)) {
			remote++
		}
	}
	lines := postFleetSweep(t, self, grid)
	if len(lines) != len(grid.Archs) {
		t.Fatalf("sweep streamed %d lines, want %d", len(lines), len(grid.Archs))
	}
	for i, line := range lines {
		var rr RunResponse
		if err := json.Unmarshal([]byte(line), &rr); err != nil || rr.Result == nil || rr.Result.Cycles == 0 {
			t.Fatalf("line %d did not survive the dead peer: %s", i, line)
		}
	}
	m := metricsOf(t, self)
	if m["peer_fallback"] != float64(remote) {
		t.Errorf("peer_fallback = %v, want %d (every dead-peer point computed locally)", m["peer_fallback"], remote)
	}
	if m["peer_forwarded"] != 0 {
		t.Errorf("peer_forwarded = %v, want 0", m["peer_forwarded"])
	}
}

func TestNewRejectsSelfOutsidePeers(t *testing.T) {
	_, err := New(Config{Peers: []string{"http://a:1", "http://b:1"}, Self: "http://c:1"})
	if err == nil {
		t.Fatal("config with self outside peers accepted")
	}
}

func postFleetSweep(t *testing.T, base string, req SweepRequest) []string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep on %s: %d", base, resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	raw := bytes.TrimRight(buf.Bytes(), "\n")
	var out []string
	for _, b := range bytes.Split(raw, []byte("\n")) {
		out = append(out, string(b))
	}
	return out
}

func metricsOf(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
