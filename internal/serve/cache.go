package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, thread-safe LRU over immutable byte slices (the
// marshaled response bodies). Values are returned by reference and must
// never be mutated by callers; storing the exact bytes is what makes a
// warm hit byte-identical to the cold run that populated it.
type lruCache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recent
	items     map[string]*list.Element
	evictions int64
}

type lruEntry struct {
	key string
	val []byte
}

func newLRUCache(max int) *lruCache {
	if max <= 0 {
		max = 1024
	}
	return &lruCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put stores val for key. The first write wins: if the key is already
// cached the existing bytes are kept (only refreshed in the LRU order).
// Two flights racing on one key must not be able to swap the bytes a
// previous reader was handed — the warm-hit byte-identity contract says
// every response for a key serves the same slice.
func (c *lruCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key, val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *lruCache) evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
