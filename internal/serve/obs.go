package serve

// Serve-side observability state: request tracing (retention ring +
// -trace-dir export + GET /debug/trace), structured request logs, the
// live sweep-progress table behind GET /v1/sweeps, and per-peer health
// timestamps feeding the liveness gauges. All of it is inert when the
// corresponding Config knobs are off: no trace, no spans, discard
// logger.

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"regconn/internal/obs"
)

// serveObs bundles the server's observability state.
type serveObs struct {
	trace    bool          // request tracing on
	traceDir string        // "" = in-memory retention only
	keep     int           // retained finished traces
	log      *slog.Logger  // never nil (discard by default)
	slow     time.Duration // slow-request log threshold

	mu     sync.Mutex
	traces []*obs.Trace // most recent last

	sweeps sweepTable
}

func newServeObs(cfg Config) *serveObs {
	o := &serveObs{
		trace:    cfg.Trace || cfg.TraceDir != "",
		traceDir: cfg.TraceDir,
		keep:     cfg.TraceKeep,
		log:      cfg.Logger,
		slow:     cfg.SlowThreshold,
	}
	if o.keep <= 0 {
		o.keep = 64
	}
	if o.log == nil {
		o.log = slog.New(slog.DiscardHandler)
	}
	if o.slow <= 0 {
		o.slow = 2 * time.Second
	}
	o.sweeps.keepDone = 8
	return o
}

// retain stores a finished trace in the retention ring and, with a
// trace dir configured, writes it out as <id>.trace.json (best effort:
// an unwritable directory costs the file, not the request).
func (o *serveObs) retain(tr *obs.Trace) {
	o.mu.Lock()
	o.traces = append(o.traces, tr)
	if len(o.traces) > o.keep {
		o.traces = o.traces[len(o.traces)-o.keep:]
	}
	o.mu.Unlock()
	if o.traceDir == "" {
		return
	}
	path := filepath.Join(o.traceDir, tr.ID()+".trace.json")
	f, err := os.Create(path)
	if err != nil {
		o.log.Warn("trace write failed", "path", path, "err", err)
		return
	}
	defer f.Close()
	if err := obs.WriteTraces(f, tr); err != nil {
		o.log.Warn("trace write failed", "path", path, "err", err)
	}
}

// recent snapshots the retention ring, newest last; with id != "" only
// the matching trace.
func (o *serveObs) recent(id string) []*obs.Trace {
	o.mu.Lock()
	defer o.mu.Unlock()
	if id == "" {
		return append([]*obs.Trace(nil), o.traces...)
	}
	for _, tr := range o.traces {
		if tr.ID() == id {
			return []*obs.Trace{tr}
		}
	}
	return nil
}

// ridCtxKey carries the request ID through handler contexts so sub-sweep
// forwards can stamp it onto the peer request.
type ridCtxKey struct{}

// requestIDFrom returns the request's ID ("" outside a request).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridCtxKey{}).(string)
	return id
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// ------------------------------------------------------------ peer health

// peerHealth records, per peer, when this replica last completed a fully
// successful forward and when one last failed — the liveness gauges'
// source ("cumulative forward counters cannot distinguish a peer that
// died an hour ago from one that was always dead").
type peerHealth struct {
	mu       sync.Mutex
	lastOK   map[string]time.Time
	lastFail map[string]time.Time
}

func newPeerHealth() *peerHealth {
	return &peerHealth{lastOK: map[string]time.Time{}, lastFail: map[string]time.Time{}}
}

func (h *peerHealth) markOK(peer string) {
	h.mu.Lock()
	h.lastOK[peer] = time.Now()
	h.mu.Unlock()
}

func (h *peerHealth) markFail(peer string) {
	h.mu.Lock()
	h.lastFail[peer] = time.Now()
	h.mu.Unlock()
}

// last returns the peer's timestamps (zero time = never).
func (h *peerHealth) last(peer string) (ok, fail time.Time) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastOK[peer], h.lastFail[peer]
}

// each visits every peer that has either timestamp.
func (h *peerHealth) each(f func(peer string, lastOK, lastFail time.Time)) {
	h.mu.Lock()
	peers := map[string]bool{}
	for p := range h.lastOK {
		peers[p] = true
	}
	for p := range h.lastFail {
		peers[p] = true
	}
	type entry struct {
		peer     string
		ok, fail time.Time
	}
	entries := make([]entry, 0, len(peers))
	for p := range peers {
		entries = append(entries, entry{p, h.lastOK[p], h.lastFail[p]})
	}
	h.mu.Unlock()
	for _, e := range entries {
		f(e.peer, e.ok, e.fail)
	}
}

// ---------------------------------------------------------- sweep table

// sweepTable tracks in-flight sweeps (plus a short tail of finished
// ones) for GET /v1/sweeps. Each sweep's progress is fed point-by-point
// from handleSweep's delivery loop.
type sweepTable struct {
	mu       sync.Mutex
	active   []*sweepStatus
	done     []*sweepStatus
	keepDone int
}

// sweepStatus is one sweep's live progress.
type sweepStatus struct {
	id    string
	start time.Time
	total int

	mu       sync.Mutex
	done     int
	errs     int
	finished bool
	elapsed  time.Duration
	peers    map[string]*peerProgress // owner ("local" or peer URL) → progress
}

type peerProgress struct {
	total int
	done  int
}

// register adds a sweep with its per-owner totals and returns its status
// handle.
func (t *sweepTable) register(id string, ownerOf []string) *sweepStatus {
	st := &sweepStatus{
		id: id, start: time.Now(), total: len(ownerOf),
		peers: map[string]*peerProgress{},
	}
	for _, o := range ownerOf {
		pp := st.peers[o]
		if pp == nil {
			pp = &peerProgress{}
			st.peers[o] = pp
		}
		pp.total++
	}
	t.mu.Lock()
	t.active = append(t.active, st)
	t.mu.Unlock()
	return st
}

// point records one delivered point for the given owner.
func (st *sweepStatus) point(owner string, failed bool) {
	st.mu.Lock()
	st.done++
	if failed {
		st.errs++
	}
	if pp := st.peers[owner]; pp != nil {
		pp.done++
	}
	st.mu.Unlock()
}

// finish moves the sweep from active to the done tail.
func (t *sweepTable) finish(st *sweepStatus) {
	st.mu.Lock()
	st.finished = true
	st.elapsed = time.Since(st.start)
	st.mu.Unlock()
	t.mu.Lock()
	for i, a := range t.active {
		if a == st {
			t.active = append(t.active[:i], t.active[i+1:]...)
			break
		}
	}
	t.done = append(t.done, st)
	if len(t.done) > t.keepDone {
		t.done = t.done[len(t.done)-t.keepDone:]
	}
	t.mu.Unlock()
}

// SweepView is one sweep's progress as served by GET /v1/sweeps (and
// consumed by cmd/rctop).
type SweepView struct {
	ID        string                   `json:"id"`
	Start     time.Time                `json:"start"`
	ElapsedMS int64                    `json:"elapsed_ms"`
	Total     int                      `json:"total"`
	Done      int                      `json:"done"`
	Errors    int                      `json:"errors"`
	Active    bool                     `json:"active"`
	Peers     map[string]SweepPeerView `json:"peers"`
}

// SweepPeerView is one owner's slice of a sweep (key "local" = points
// this replica computes itself).
type SweepPeerView struct {
	Total int `json:"total"`
	Done  int `json:"done"`
}

// SweepsResponse is the body of GET /v1/sweeps: active sweeps first
// (oldest first), then recently finished ones.
type SweepsResponse struct {
	Sweeps []SweepView `json:"sweeps"`
}

func (st *sweepStatus) view() SweepView {
	st.mu.Lock()
	defer st.mu.Unlock()
	v := SweepView{
		ID: st.id, Start: st.start, Total: st.total,
		Done: st.done, Errors: st.errs, Active: !st.finished,
		Peers: make(map[string]SweepPeerView, len(st.peers)),
	}
	if st.finished {
		v.ElapsedMS = st.elapsed.Milliseconds()
	} else {
		v.ElapsedMS = time.Since(st.start).Milliseconds()
	}
	for o, pp := range st.peers {
		v.Peers[o] = SweepPeerView{Total: pp.total, Done: pp.done}
	}
	return v
}

// views snapshots the table.
func (t *sweepTable) views() []SweepView {
	t.mu.Lock()
	snapshot := append(append([]*sweepStatus(nil), t.active...), t.done...)
	t.mu.Unlock()
	out := make([]SweepView, len(snapshot))
	for i, st := range snapshot {
		out[i] = st.view()
	}
	return out
}

// ------------------------------------------------------------- handlers

// handleSweeps serves the live sweep-progress table.
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, SweepsResponse{Sweeps: s.obs.sweeps.views()})
}

// handleDebugTrace exports retained request traces as one Chrome
// trace-event document (404 when tracing is off; ?id= selects one
// request).
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if !s.obs.trace {
		writeError(w, http.StatusNotFound, errorBody{Error: "request tracing is disabled (start rcserve with -trace or -trace-dir)"})
		return
	}
	id := r.URL.Query().Get("id")
	traces := s.obs.recent(id)
	if id != "" && len(traces) == 0 {
		writeError(w, http.StatusNotFound, errorBody{Error: "no retained trace with id " + id})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteTraces(w, traces...)
}
