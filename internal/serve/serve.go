// Package serve is the simulation-as-a-service layer: a long-running HTTP
// daemon (cmd/rcserve) exposing the experiment runner. One POST /v1/run
// simulates a single benchmark × Arch point; POST /v1/sweep streams a grid
// as NDJSON; GET /v1/figures/{id} regenerates a paper figure; /healthz and
// /metrics round out operability.
//
// The hot path is: canonical key → bounded LRU (marshaled response bytes,
// so a warm hit is byte-identical to the cold run that filled it) →
// waiter-counted singleflight (concurrent identical requests collapse to
// one simulation; the simulation's context is canceled only when every
// waiter has gone) → bounded worker pool → exp.RunPoint, whose context
// reaches machine.RunContext's cycle loop. Canceled or failed points are
// never cached, so a cancellation cannot corrupt later results.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/exp"
	"regconn/internal/machine"
)

// Config sizes the daemon.
type Config struct {
	// CacheSize bounds the LRU result cache in entries (0 = 1024).
	CacheSize int
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// Timeout is the per-request simulation deadline (0 = no deadline).
	Timeout time.Duration
}

// Server implements the HTTP API. Create with New; it is an http.Handler.
type Server struct {
	cfg      Config
	cache    *lruCache
	flights  *flightGroup
	met      *metrics
	sem      chan struct{}
	runner   *exp.Runner // memoized figure generation
	mux      *http.ServeMux
	draining atomic.Bool
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:     cfg,
		cache:   newLRUCache(cfg.CacheSize),
		flights: newFlightGroup(),
		met:     newMetrics(),
		sem:     make(chan struct{}, cfg.Workers),
		runner:  exp.NewRunner(),
	}
	s.runner.Workers = cfg.Workers
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/figures/{id}", s.handleFigures)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Metrics exposes the counter map (cmd/rcserve publishes it to expvar).
func (s *Server) Metrics() fmt.Stringer { return s.met.expvarMap(s.cache) }

// SetDraining flips /healthz to 503 so load balancers stop routing new
// work here while http.Server.Shutdown lets inflight requests finish.
func (s *Server) SetDraining() { s.draining.Store(true) }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	if sw.status >= 400 {
		s.met.errors.Add(1)
	}
}

// statusWriter records the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	Benchmark string       `json:"benchmark"`
	Arch      regconn.Arch `json:"arch"`

	// TimeoutMS optionally tightens the server's per-request deadline for
	// this request (milliseconds; 0 = server default). It is not part of
	// the cache key: how long a client was willing to wait does not change
	// what the point computes.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RunResponse is the body of POST /v1/run and of each /v1/sweep line.
// Exactly these marshaled bytes are cached, so warm and cold responses for
// a key are bit-identical.
type RunResponse struct {
	Benchmark string       `json:"benchmark"`
	Arch      regconn.Arch `json:"arch"`
	Key       string       `json:"key"`
	Result    *exp.Result  `json:"result"`
}

// SweepRequest is the body of POST /v1/sweep: the full cross product of
// benchmarks × archs is simulated and streamed back one NDJSON line per
// point, in benchmark-major request order.
type SweepRequest struct {
	Benchmarks []string       `json:"benchmarks"`
	Archs      []regconn.Arch `json:"archs"`
}

// errorBody is any endpoint's failure payload.
type errorBody struct {
	Benchmark string `json:"benchmark,omitempty"`
	Key       string `json:"key,omitempty"`
	Error     string `json:"error"`
}

// Key returns the canonical cache key of one point: the hex SHA-256 of the
// canonical JSON encoding of (benchmark, Arch). Two requests are the same
// point exactly when their benchmark names and Arch values name the same
// backend configuration; client-side knobs like TimeoutMS are deliberately
// excluded. The Arch is canonicalized first so the two spellings of one
// backend — a Backend name or a legacy Mode number — hash identically, and
// so legacy points (whose canonical form leaves Backend empty) keep the
// exact keys they had before Backend existed.
func Key(benchmark string, arch regconn.Arch) string {
	arch = arch.Canonical()
	b, err := json.Marshal(struct {
		Benchmark string       `json:"benchmark"`
		Arch      regconn.Arch `json:"arch"`
	}{benchmark, arch})
	if err != nil {
		panic(fmt.Sprintf("serve: Arch not marshalable: %v", err)) // Arch is plain data; cannot happen
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// point answers one (benchmark, arch) coordinate: LRU, then singleflight,
// then a worker slot, then the simulation. It returns the response bytes
// and whether they came from the cache.
func (s *Server) point(ctx context.Context, bm bench.Benchmark, arch regconn.Arch) (body []byte, cached bool, err error) {
	// Canonicalize before keying so the cached response body names the
	// point the same way the key hashes it, whichever spelling (Backend
	// name or legacy Mode number) the client used.
	arch = arch.Canonical()
	k := Key(bm.Name, arch)
	if b, ok := s.cache.get(k); ok {
		s.met.hits.Add(1)
		return b, true, nil
	}
	s.met.misses.Add(1)
	val, err, shared := s.flights.Do(ctx, k, func(fctx context.Context) ([]byte, error) {
		select {
		case s.sem <- struct{}{}:
		case <-fctx.Done():
			return nil, context.Cause(fctx)
		}
		defer func() { <-s.sem }()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		res, err := exp.RunPoint(fctx, bm, arch)
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(RunResponse{Benchmark: bm.Name, Arch: arch, Key: k, Result: res})
		if err != nil {
			return nil, err
		}
		s.cache.put(k, b)
		return b, nil
	})
	if shared {
		s.met.coalesced.Add(1)
	}
	return val, false, err
}

// requestContext applies the per-request deadline: the server default,
// tightened by the request's own timeout when one is given.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if t := time.Duration(timeoutMS) * time.Millisecond; t > 0 && (d <= 0 || t < d) {
		d = t
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// statusFor maps a point failure to an HTTP status: client deadline or
// disconnect, guest runtime fault, or server-side failure.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		var re *machine.RuntimeError
		if errors.As(err, &re) {
			return http.StatusUnprocessableEntity
		}
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, status int, body errorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	bm, err := bench.ByName(req.Benchmark)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Benchmark: req.Benchmark, Error: err.Error()})
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()
	body, cached, err := s.point(ctx, bm, req.Arch)
	s.met.observe(time.Since(start))
	if err != nil {
		writeError(w, statusFor(err), errorBody{Benchmark: bm.Name, Key: Key(bm.Name, req.Arch), Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	w.Write(body)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if len(req.Benchmarks) == 0 || len(req.Archs) == 0 {
		writeError(w, http.StatusBadRequest, errorBody{Error: "sweep needs at least one benchmark and one arch"})
		return
	}
	bms := make([]bench.Benchmark, len(req.Benchmarks))
	for i, name := range req.Benchmarks {
		bm, err := bench.ByName(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, errorBody{Benchmark: name, Error: err.Error()})
			return
		}
		bms[i] = bm
	}
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()

	// Fan the grid out (the worker-pool semaphore bounds real concurrency)
	// but stream lines back in deterministic benchmark-major order.
	type future struct {
		bm   bench.Benchmark
		arch regconn.Arch
		ch   chan result
	}
	futs := make([]future, 0, len(bms)*len(req.Archs))
	for _, bm := range bms {
		for _, arch := range req.Archs {
			f := future{bm: bm, arch: arch, ch: make(chan result, 1)}
			go func(f future) {
				start := time.Now()
				body, _, err := s.point(ctx, f.bm, f.arch)
				s.met.observe(time.Since(start))
				f.ch <- result{body, err}
			}(f)
			futs = append(futs, f)
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for _, f := range futs {
		res := <-f.ch
		if res.err != nil {
			enc.Encode(errorBody{Benchmark: f.bm.Name, Key: Key(f.bm.Name, f.arch), Error: res.err.Error()})
		} else {
			w.Write(res.body)
			w.Write([]byte("\n"))
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// result pairs one sweep point's outcome.
type result struct {
	body []byte
	err  error
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tables, err := s.runner.Generate(id)
	if err != nil {
		// A bad figure id is the client's fault; a failed generation ours.
		status := http.StatusInternalServerError
		if strings.Contains(err.Error(), "unknown experiment") {
			status = http.StatusBadRequest
		}
		writeError(w, status, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(tables)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"status":"draining"}` + "\n"))
		return
	}
	w.Write([]byte(`{"status":"ok"}` + "\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.met.expvarMap(s.cache).String())
}
