// Package serve is the simulation-as-a-service layer: a long-running HTTP
// daemon (cmd/rcserve) exposing the experiment runner. One POST /v1/run
// simulates a single benchmark × Arch point; POST /v1/sweep streams a grid
// as NDJSON; GET /v1/figures/{id} regenerates a paper figure; /healthz and
// /metrics round out operability.
//
// The hot path is: canonical key → bounded LRU (marshaled response bytes,
// so a warm hit is byte-identical to the cold run that filled it) →
// persistent store (when -store-dir is set: the disk-backed,
// crash-recoverable result corpus, read through into the LRU) →
// waiter-counted singleflight (concurrent identical requests collapse to
// one simulation; the simulation's context is canceled only when every
// waiter has gone) → bounded worker pool → exp.RunPoint, whose context
// reaches machine.RunContext's cycle loop. Canceled or failed points are
// never cached, so a cancellation cannot corrupt later results. With
// -peers, /v1/sweep additionally shards grid points across replicas by
// consistent key hash (shard.go) so a fleet splits the corpus.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"mime"
	"net/http"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/exp"
	"regconn/internal/machine"
	"regconn/internal/obs"
	"regconn/internal/store"
	"regconn/internal/workload"
)

// Config sizes the daemon.
type Config struct {
	// CacheSize bounds the LRU result cache in entries (0 = 1024).
	CacheSize int
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// Timeout is the per-request simulation deadline (0 = no deadline).
	Timeout time.Duration
	// StoreDir enables the persistent result store under the LRU
	// ("" = memory-only, exactly the pre-store behavior).
	StoreDir string
	// Peers lists every replica's base URL, including this one, when the
	// daemon is part of a sharded fleet (empty = unsharded). All replicas
	// must be started with the same list; order is irrelevant.
	Peers []string
	// Self is this replica's entry in Peers (required with Peers).
	Self string

	// Trace enables request tracing: every run/sweep/figures request
	// builds a span tree, retained in memory (TraceKeep) and served by
	// GET /debug/trace. Off by default: with tracing off requests carry
	// no span and the instrumentation is nil no-ops.
	Trace bool
	// TraceDir additionally writes each finished trace as
	// <id>.trace.json into the directory (implies Trace; the directory
	// is created by New).
	TraceDir string
	// TraceKeep bounds the in-memory trace retention ring (0 = 64).
	TraceKeep int
	// Logger receives structured request logs (nil = discard).
	Logger *slog.Logger
	// SlowThreshold marks requests slower than it as slow (logged at
	// Warn, counted in rcserve_slow_requests_total; 0 = 2s).
	SlowThreshold time.Duration
}

// Server implements the HTTP API. Create with New; it is an http.Handler.
type Server struct {
	cfg        Config
	cache      *lruCache
	store      *store.Store // nil = memory-only
	ring       *ring        // nil = unsharded
	peerClient *http.Client
	flights    *flightGroup
	met        *metrics
	obs        *serveObs
	sem        chan struct{}
	runner     *exp.Runner // memoized figure generation
	mux        *http.ServeMux
	draining   atomic.Bool
}

// New returns a ready-to-serve Server. It fails only when the persistent
// store or trace directory cannot be opened or the shard configuration
// is inconsistent.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:     cfg,
		cache:   newLRUCache(cfg.CacheSize),
		flights: newFlightGroup(),
		sem:     make(chan struct{}, cfg.Workers),
		runner:  exp.NewRunner(),
	}
	if cfg.TraceDir != "" {
		if err := os.MkdirAll(cfg.TraceDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: trace dir: %w", err)
		}
	}
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, store.Options{})
		if err != nil {
			return nil, err
		}
		s.store = st
	}
	if len(cfg.Peers) > 0 {
		if !slices.Contains(cfg.Peers, cfg.Self) {
			if s.store != nil {
				s.store.Close()
			}
			return nil, fmt.Errorf("serve: self %q is not in the peers list %v", cfg.Self, cfg.Peers)
		}
		s.ring = newRing(cfg.Peers, cfg.Self)
		// Streaming sub-sweeps have no client-side timeout of their own;
		// the per-request context bounds them.
		s.peerClient = &http.Client{}
	}
	// The metric set is built after cache/store/ring exist: the
	// scrape-time gauges close over them, and the fleet's peer-liveness
	// series are registered up front for every peer we could forward to.
	var others []string
	for _, p := range cfg.Peers {
		if p != cfg.Self {
			others = append(others, p)
		}
	}
	s.met = newMetrics(s.cache, s.store, others)
	s.obs = newServeObs(cfg)
	s.runner.Workers = cfg.Workers
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/replay", s.handleReplay)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweeps)
	mux.HandleFunc("GET /v1/figures/{id}", s.handleFigures)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	s.mux = mux
	return s, nil
}

// Close releases the persistent store (a no-op for memory-only servers).
// A killed process that never got here loses nothing: every store append
// was fsynced before the point was first served.
func (s *Server) Close() error {
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// Metrics exposes the legacy counter map (cmd/rcserve publishes it to
// expvar). The map is assembled exactly once — every call returns the
// same *expvar.Map, whose entries are live views over the obs registry —
// so scraping it does not rebuild anything.
func (s *Server) Metrics() *expvar.Map { return s.met.legacy }

// SetDraining flips /healthz to 503 so load balancers stop routing new
// work here while http.Server.Shutdown lets inflight requests finish.
func (s *Server) SetDraining() { s.draining.Store(true) }

// endpointOf classifies a request for metric labels and trace roots.
func endpointOf(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/run":
		return "run"
	case p == "/v1/replay":
		return "replay"
	case p == "/v1/sweep":
		return "sweep"
	case p == "/v1/sweeps":
		return "sweeps"
	case strings.HasPrefix(p, "/v1/figures/"):
		return "figures"
	case p == "/healthz":
		return "healthz"
	case p == "/metrics":
		return "metrics"
	case p == "/debug/trace":
		return "trace"
	}
	return "other"
}

// traceableEndpoint reports whether the endpoint does work worth a span
// tree (observability polls are not traced).
func traceableEndpoint(ep string) bool {
	return ep == "run" || ep == "replay" || ep == "sweep" || ep == "figures"
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ep := endpointOf(r)
	s.met.requests.With(ep).Inc()

	// Every request gets a request ID: the client's own X-Request-ID when
	// it is safe to echo (peer sub-sweeps propagate theirs so one sweep is
	// one ID fleet-wide), a fresh one otherwise. The ID is the trace ID.
	rid := r.Header.Get("X-Request-ID")
	if !obs.ValidRequestID(rid) {
		rid = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", rid)
	ctx := context.WithValue(r.Context(), ridCtxKey{}, rid)

	var tr *obs.Trace
	var root *obs.Span
	if s.obs.trace && traceableEndpoint(ep) {
		tr = obs.NewTrace(rid)
		root = tr.Root(ep)
		ctx = obs.NewContext(ctx, root)
	}

	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(sw, r.WithContext(ctx))
	dur := time.Since(start)

	if sw.status >= 400 {
		s.met.errors.With(ep).Inc()
	}
	if tr != nil {
		root.End()
		tr.Finish()
		s.obs.retain(tr)
	}
	s.logRequest(r, ep, rid, sw, dur)
}

// logRequest emits the structured request log line. Successful
// observability polls (healthz, metrics, sweeps) are skipped so an rctop
// refresh loop does not flood the log.
func (s *Server) logRequest(r *http.Request, ep, rid string, sw *statusWriter, dur time.Duration) {
	slow := dur >= s.obs.slow
	if slow {
		s.met.slowRequests.Inc()
	}
	if sw.status < 400 && (ep == "healthz" || ep == "metrics" || ep == "sweeps") {
		return
	}
	attrs := []any{
		"request_id", rid,
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.status,
		"duration_ms", dur.Milliseconds(),
	}
	if c := sw.Header().Get("X-Cache"); c != "" {
		attrs = append(attrs, "cache", c)
	}
	if slow {
		s.obs.log.Warn("slow request", attrs...)
		return
	}
	s.obs.log.Info("request", attrs...)
}

// statusWriter records the response status for the error counter and the
// request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	Benchmark string       `json:"benchmark"`
	Arch      regconn.Arch `json:"arch"`

	// Workload selects a generated workload instead of a named benchmark
	// ({"profile": "connect-heavy", "seed": 42}). Exactly one of Benchmark
	// and Workload must be given; the point is keyed by the workload's
	// canonical gen/<profile>/<seed> name, so the spec and the name are
	// one cache entry.
	Workload *workload.Spec `json:"workload,omitempty"`

	// TimeoutMS optionally tightens the server's per-request deadline for
	// this request (milliseconds; 0 = server default). It is not part of
	// the cache key: how long a client was willing to wait does not change
	// what the point computes.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RunResponse is the body of POST /v1/run and of each /v1/sweep line.
// Exactly these marshaled bytes are cached, so warm and cold responses for
// a key are bit-identical.
type RunResponse struct {
	Benchmark string       `json:"benchmark"`
	Arch      regconn.Arch `json:"arch"`
	Key       string       `json:"key"`
	Result    *exp.Result  `json:"result"`
}

// SweepRequest is the body of POST /v1/sweep: the full cross product of
// benchmarks × archs is simulated and streamed back one NDJSON line per
// point, in benchmark-major request order. Points, when set, replaces
// the cross product with an explicit list — shard fan-out uses it, since
// one replica's slice of a grid is rarely a cross product itself.
type SweepRequest struct {
	Benchmarks []string       `json:"benchmarks"`
	Archs      []regconn.Arch `json:"archs"`

	// Workloads adds generated workloads to the cross product, after the
	// named benchmarks.
	Workloads []workload.Spec `json:"workloads,omitempty"`

	// Points is an explicit point list (overrides Benchmarks × Archs).
	Points []SweepPoint `json:"points,omitempty"`

	// LocalOnly forces every point to compute on this replica, ignoring
	// the shard ring. Sub-sweeps forwarded between replicas set it, so
	// ownership is resolved exactly once.
	LocalOnly bool `json:"local_only,omitempty"`
}

// SweepPoint is one (benchmark, arch) coordinate of a sweep. Workload, when
// set, selects a generated workload instead of Benchmark (same contract as
// RunRequest); the field forwards verbatim to an owning shard.
type SweepPoint struct {
	Benchmark string         `json:"benchmark"`
	Arch      regconn.Arch   `json:"arch"`
	Workload  *workload.Spec `json:"workload,omitempty"`
}

// resolveBenchmark resolves a request's benchmark coordinate: a workload
// spec when given (its canonical gen/ name becomes the point's identity),
// otherwise a name in either namespace — a paper benchmark or a
// gen/<profile>/<seed> spelling. Giving both is an error unless they name
// the same workload; failures wrap workload.ErrBadSpec (a 400).
func resolveBenchmark(name string, spec *workload.Spec) (bench.Benchmark, error) {
	if spec != nil {
		if name != "" && name != spec.Name() {
			return bench.Benchmark{}, fmt.Errorf("%w: both benchmark %q and workload %q given",
				workload.ErrBadSpec, name, spec.Name())
		}
		return spec.Generate()
	}
	return workload.ByName(name)
}

// errorBody is any endpoint's failure payload.
type errorBody struct {
	Benchmark string `json:"benchmark,omitempty"`
	Key       string `json:"key,omitempty"`
	Error     string `json:"error"`
}

// Key returns the canonical cache key of one point: the hex SHA-256 of the
// canonical JSON encoding of (benchmark, Arch). Two requests are the same
// point exactly when their benchmark names and Arch values name the same
// backend configuration; client-side knobs like TimeoutMS are deliberately
// excluded. The Arch is canonicalized first so the two spellings of one
// backend — a Backend name or a legacy Mode number — hash identically, and
// so legacy points (whose canonical form leaves Backend empty) keep the
// exact keys they had before Backend existed.
func Key(benchmark string, arch regconn.Arch) string {
	arch = arch.Canonical()
	b, err := json.Marshal(struct {
		Benchmark string       `json:"benchmark"`
		Arch      regconn.Arch `json:"arch"`
	}{benchmark, arch})
	if err != nil {
		panic(fmt.Sprintf("serve: Arch not marshalable: %v", err)) // Arch is plain data; cannot happen
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// pointSource says where a point's bytes came from; handleRun renders it
// as the X-Cache header and exactly one counter is bumped per source.
type pointSource int

const (
	srcMiss      pointSource = iota // this request owned the flight and simulated
	srcHit                          // served from the LRU or the persistent store
	srcCoalesced                    // joined a flight another request owned
)

func (src pointSource) String() string {
	switch src {
	case srcHit:
		return "HIT"
	case srcCoalesced:
		return "COALESCED"
	default:
		return "MISS"
	}
}

// label is the source's metric-label spelling.
func (src pointSource) label() string {
	switch src {
	case srcHit:
		return "hit"
	case srcCoalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// point answers one (benchmark, arch) coordinate: LRU, then the
// persistent store, then singleflight, then a worker slot, then the
// simulation. It returns the response bytes and their source. Every
// route into a point — /v1/run and each /v1/sweep job alike — comes
// through here, so the deferred observe covers per-point latency and the
// source counters uniformly, and the span tree (when the request is
// traced) records each stage.
func (s *Server) point(ctx context.Context, endpoint string, bm bench.Benchmark, arch regconn.Arch) (body []byte, src pointSource, err error) {
	// Canonicalize before keying so the cached response body names the
	// point the same way the key hashes it, whichever spelling (Backend
	// name or legacy Mode number) the client used.
	arch = arch.Canonical()
	k := Key(bm.Name, arch)
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "point")
	span.Set("benchmark", bm.Name).Set("key", k).Set("backend", backendLabel(arch))
	defer func() {
		span.Set("cache", src.String()).End()
		s.met.observe(endpoint, arch, src, time.Since(start))
	}()
	lk := span.Child("cache.lookup")
	b, ok := s.cache.get(k)
	lk.End()
	if ok {
		return b, srcHit, nil
	}
	if s.store != nil {
		rd := span.Child("store.read")
		b, ok := s.store.Get(k)
		rd.End()
		if ok {
			// Read through: promote the durable record into the LRU so the
			// next hit skips the store index.
			s.cache.put(k, b)
			return b, srcHit, nil
		}
	}
	// The flight span covers the whole wait; only the owner's closure
	// runs, so the simulate/store.append children attach to exactly one
	// request's tree — the owner's.
	fl := span.Child("flight")
	val, err, shared := s.flights.Do(ctx, k, func(fctx context.Context) ([]byte, error) {
		select {
		case s.sem <- struct{}{}:
		case <-fctx.Done():
			return nil, context.Cause(fctx)
		}
		defer func() { <-s.sem }()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		sim := fl.Child("simulate")
		res, err := exp.RunPoint(obs.NewContext(fctx, sim), bm, arch)
		if err != nil {
			sim.End()
			return nil, err
		}
		sim.Set("cycles", res.Cycles).Set("instrs", res.Instrs)
		sim.End()
		b, err := json.Marshal(RunResponse{Benchmark: bm.Name, Arch: arch, Key: k, Result: res})
		if err != nil {
			return nil, err
		}
		// Write through: durable first (Put fsyncs, first write wins),
		// then the LRU. A store failure costs persistence, not the result.
		if s.store != nil {
			ap := fl.Child("store.append")
			perr := s.store.Put(k, b)
			ap.End()
			if perr != nil {
				s.met.storeErrors.Inc()
			}
		}
		s.cache.put(k, b)
		return b, nil
	})
	// A true miss is the flight owner alone; everyone who joined its
	// flight coalesced. (Counted on errors too: the flight did run.)
	if shared {
		fl.Set("role", "join").End()
		return val, srcCoalesced, err
	}
	fl.Set("role", "own").End()
	return val, srcMiss, err
}

// requestContext applies the per-request deadline: the server default,
// tightened by the request's own timeout when one is given.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if t := time.Duration(timeoutMS) * time.Millisecond; t > 0 && (d <= 0 || t < d) {
		d = t
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// statusFor maps a point failure to an HTTP status: client deadline or
// disconnect, guest runtime fault, or server-side failure.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, workload.ErrBadSpec), errors.Is(err, workload.ErrBadTrace):
		return http.StatusBadRequest
	default:
		var re *machine.RuntimeError
		if errors.As(err, &re) {
			return http.StatusUnprocessableEntity
		}
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, status int, body errorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	bm, err := resolveBenchmark(req.Benchmark, req.Workload)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Benchmark: req.Benchmark, Error: err.Error()})
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	body, src, err := s.point(ctx, "run", bm, req.Arch)
	if err != nil {
		writeError(w, statusFor(err), errorBody{Benchmark: bm.Name, Key: Key(bm.Name, req.Arch), Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", src.String())
	w.Write(body)
}

// ReplayResponse is the body of POST /v1/replay. Like RunResponse, exactly
// these marshaled bytes are cached under the trace's key, so warm replays
// are bit-identical to the cold one.
type ReplayResponse struct {
	Name  string          `json:"name"`
	Key   string          `json:"key"`
	Arch  json.RawMessage `json:"arch,omitempty"`
	Ret   int64           `json:"ret"`
	Stats machine.Stats   `json:"stats"`
}

// maxReplayBody bounds a replay request body: the trace format's own
// payload cap plus header slack.
const maxReplayBody = workload.MaxTracePayload + 4096

// handleReplay serves POST /v1/replay: the body is an rctrace file
// (rcrun -emit-trace / rcgen emit), replayed through the simulator
// without re-entering the IR pipeline. Malformed, corrupt, or truncated
// traces are a structured 400; a valid trace is keyed by its payload
// checksum and served through the same LRU/store/flight stack as any
// other point, so repeated replays of one trace are warm byte-identical
// hits.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	tr, key, err := workload.DecodeTrace(http.MaxBytesReader(w, r.Body, maxReplayBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	body, src, err := s.replayPoint(ctx, tr, key)
	if err != nil {
		writeError(w, statusFor(err), errorBody{Benchmark: tr.Name, Key: key, Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", src.String())
	w.Write(body)
}

// replayPoint is point's twin for trace replays: same LRU → store →
// flight → worker-slot path, but the simulation is Trace.Replay — the
// recorded configuration fed straight to the machine, verified against
// the trace's recorded oracle outcome and cycle counts.
func (s *Server) replayPoint(ctx context.Context, tr *workload.Trace, k string) (body []byte, src pointSource, err error) {
	// The recorded arch JSON is the canonical regconn.Arch encoding;
	// decoded here only to label metrics and spans.
	var arch regconn.Arch
	_ = json.Unmarshal(tr.Arch, &arch)
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "point")
	span.Set("benchmark", tr.Name).Set("key", k).Set("backend", backendLabel(arch))
	defer func() {
		span.Set("cache", src.String()).End()
		s.met.observe("replay", arch, src, time.Since(start))
	}()
	lk := span.Child("cache.lookup")
	b, ok := s.cache.get(k)
	lk.End()
	if ok {
		return b, srcHit, nil
	}
	if s.store != nil {
		rd := span.Child("store.read")
		b, ok := s.store.Get(k)
		rd.End()
		if ok {
			s.cache.put(k, b)
			return b, srcHit, nil
		}
	}
	fl := span.Child("flight")
	val, err, shared := s.flights.Do(ctx, k, func(fctx context.Context) ([]byte, error) {
		select {
		case s.sem <- struct{}{}:
		case <-fctx.Done():
			return nil, context.Cause(fctx)
		}
		defer func() { <-s.sem }()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		sim := fl.Child("replay")
		res, err := tr.Replay(obs.NewContext(fctx, sim))
		if err != nil {
			sim.End()
			return nil, err
		}
		sim.Set("cycles", res.Cycles).Set("instrs", res.Instrs)
		sim.End()
		b, err := json.Marshal(ReplayResponse{Name: tr.Name, Key: k, Arch: tr.Arch, Ret: res.RetInt, Stats: res.Stats()})
		if err != nil {
			return nil, err
		}
		if s.store != nil {
			ap := fl.Child("store.append")
			perr := s.store.Put(k, b)
			ap.End()
			if perr != nil {
				s.met.storeErrors.Inc()
			}
		}
		s.cache.put(k, b)
		return b, nil
	})
	if shared {
		fl.Set("role", "join").End()
		return val, srcCoalesced, err
	}
	fl.Set("role", "own").End()
	return val, srcMiss, err
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	pts := req.Points
	if len(pts) == 0 {
		if (len(req.Benchmarks) == 0 && len(req.Workloads) == 0) || len(req.Archs) == 0 {
			writeError(w, http.StatusBadRequest, errorBody{Error: "sweep needs at least one benchmark or workload and one arch (or explicit points)"})
			return
		}
		pts = make([]SweepPoint, 0, (len(req.Benchmarks)+len(req.Workloads))*len(req.Archs))
		for _, name := range req.Benchmarks {
			for _, arch := range req.Archs {
				pts = append(pts, SweepPoint{Benchmark: name, Arch: arch})
			}
		}
		for i := range req.Workloads {
			for _, arch := range req.Archs {
				pts = append(pts, SweepPoint{Workload: &req.Workloads[i], Arch: arch})
			}
		}
	}
	jobs := make([]*sweepJob, len(pts))
	for i, p := range pts {
		bm, err := resolveBenchmark(p.Benchmark, p.Workload)
		if err != nil {
			writeError(w, http.StatusBadRequest, errorBody{Benchmark: p.Benchmark, Error: err.Error()})
			return
		}
		jobs[i] = &sweepJob{bm: bm, arch: p, key: Key(bm.Name, p.Arch), ch: make(chan result, 1)}
	}
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()

	// Resolve every point's owner up front: it labels the sweep-progress
	// table's per-peer breakdown and routes the fan-out below.
	sharded := s.ring != nil && !req.LocalOnly
	ownerOf := make([]string, len(jobs))
	for i, j := range jobs {
		if sharded && !s.ring.local(j.key) {
			ownerOf[i] = s.ring.owner(j.key)
		} else {
			ownerOf[i] = ownerLocal
		}
		j.owner = ownerOf[i]
	}
	// Register in the live progress table (GET /v1/sweeps) under the
	// request ID: a forwarded sub-sweep carries its parent's ID, so one
	// distributed sweep shows up under one ID on every replica it touches.
	st := s.obs.sweeps.register(requestIDFrom(ctx), ownerOf)
	defer s.obs.sweeps.finish(st)

	// Fan the grid out — locally (the worker-pool semaphore bounds real
	// concurrency) or to each point's owning replica — and stream lines
	// back in deterministic benchmark-major request order.
	var owners []string
	byOwner := map[string][]*sweepJob{}
	for _, j := range jobs {
		if j.owner == ownerLocal {
			go s.runSweepJob(ctx, j)
			continue
		}
		if _, ok := byOwner[j.owner]; !ok {
			owners = append(owners, j.owner)
		}
		byOwner[j.owner] = append(byOwner[j.owner], j)
	}
	for _, o := range owners {
		go s.forwardSweep(ctx, o, byOwner[o])
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	failed := 0
	for _, j := range jobs {
		res := <-j.ch
		pointFailed := res.err != nil || res.remoteErr
		switch {
		case res.err != nil:
			s.met.sweepPointErrors.Inc()
			failed++
			enc.Encode(errorBody{Benchmark: j.bm.Name, Key: j.key, Error: res.err.Error()})
		default:
			if res.remoteErr {
				s.met.sweepPointErrors.Inc()
				failed++
			}
			w.Write(res.body)
			w.Write([]byte("\n"))
		}
		st.point(j.owner, pointFailed)
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The 200 header went out before the first point ran, so statusWriter
	// cannot see a sweep where every point failed — count it here.
	if failed > 0 && failed == len(jobs) {
		s.met.errors.With("sweep").Inc()
	}
}

// ownerLocal labels points this replica computes itself in the sweep
// progress table.
const ownerLocal = "local"

// result pairs one sweep point's outcome. remoteErr marks a line relayed
// from a peer that is an error body rather than a RunResponse.
type result struct {
	body      []byte
	err       error
	remoteErr bool
}

// figuresStatus maps a Generate failure to an HTTP status: a bad figure
// id is the client's fault, a failed generation ours.
func figuresStatus(err error) int {
	if errors.Is(err, exp.ErrUnknownExperiment) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tables, err := s.runner.Generate(id)
	if err != nil {
		writeError(w, figuresStatus(err), errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(tables)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"status":"draining"}` + "\n"))
		return
	}
	w.Write([]byte(`{"status":"ok"}` + "\n"))
}

// wantsPrometheus selects the exposition format. ?format=prometheus (or
// ?format=json) always wins; otherwise the Accept header is parsed as
// real content negotiation — the Prometheus scraper sends
// "text/plain; version=0.0.4" — and Prometheus text is served only when
// the client's best q for a text exposition type beats its q for
// application/json. Anything unparseable, q=0, or a mere */* keeps the
// legacy JSON view, so existing JSON scrapers are never switched by an
// incidental Accept header.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	promQ, jsonQ := 0.0, 0.0
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, params, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err != nil {
			continue
		}
		q := 1.0
		if qs, ok := params["q"]; ok {
			v, err := strconv.ParseFloat(qs, 64)
			if err != nil {
				continue
			}
			q = v
		}
		switch mt {
		case "text/plain", "application/openmetrics-text":
			promQ = max(promQ, q)
		case "application/json":
			jsonQ = max(jsonQ, q)
		}
	}
	return promQ > 0 && promQ > jsonQ
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.refresh()
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.met.reg.WritePrometheus(w)
		return
	}
	// Legacy view: the flat expvar JSON map, same shape as ever. The map
	// is never rebuilt — its entries are live views — so a scrape only
	// renders it.
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.met.legacy.String())
}
