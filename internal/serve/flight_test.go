package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var execs atomic.Int64
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	vals := make([][]byte, n)
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, sh := g.do(context.Background(), "k", func(context.Context) ([]byte, error) {
				execs.Add(1)
				<-release
				return []byte("result"), nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], shared[i] = v, sh
		}(i)
	}
	// Wait until all callers joined, then let the single execution finish.
	for deadline := time.Now().Add(5 * time.Second); ; {
		g.mu.Lock()
		w := 0
		if f := g.m["k"]; f != nil {
			w = f.waiters
		}
		g.mu.Unlock()
		if w == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("callers never all joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Errorf("%d executions for %d concurrent callers, want 1", got, n)
	}
	joiners := 0
	for i := range vals {
		if string(vals[i]) != "result" {
			t.Errorf("caller %d got %q", i, vals[i])
		}
		if shared[i] {
			joiners++
		}
	}
	if joiners != n-1 {
		t.Errorf("%d callers joined an existing flight, want %d", joiners, n-1)
	}
}

func TestFlightSurvivesOneWaiterLeaving(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	canceled := make(chan error, 1)
	fn := func(fctx context.Context) ([]byte, error) {
		select {
		case <-release:
			return []byte("ok"), nil
		case <-fctx.Done():
			canceled <- context.Cause(fctx)
			return nil, fctx.Err()
		}
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan error, 1)
	go func() {
		_, err, _ := g.do(ctx1, "k", fn)
		done1 <- err
	}()
	done2 := make(chan error, 1)
	var val2 []byte
	go func() {
		v, err, _ := g.do(context.Background(), "k", fn)
		val2 = v
		done2 <- err
	}()
	waitWaiters(t, g, "k", 2)

	cancel1()
	if err := <-done1; !errors.Is(err, context.Canceled) {
		t.Fatalf("leaver got %v, want context.Canceled", err)
	}
	// The flight must still be running for waiter 2.
	select {
	case err := <-canceled:
		t.Fatalf("flight canceled (%v) while a waiter remained", err)
	default:
	}
	close(release)
	if err := <-done2; err != nil || string(val2) != "ok" {
		t.Fatalf("remaining waiter got %q, %v", val2, err)
	}
}

func TestFlightCanceledWhenAllWaitersLeave(t *testing.T) {
	g := newFlightGroup()
	canceled := make(chan error, 1)
	started := make(chan struct{})
	fn := func(fctx context.Context) ([]byte, error) {
		close(started)
		<-fctx.Done()
		canceled <- context.Cause(fctx)
		return nil, fctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.do(ctx, "k", fn)
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter got %v", err)
	}
	select {
	case cause := <-canceled:
		if !errors.Is(cause, context.Canceled) {
			t.Errorf("flight cancel cause = %v", cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flight was never canceled after its last waiter left")
	}
	// The abandoned key must not block a fresh execution.
	v, err, _ := g.do(context.Background(), "k", func(context.Context) ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || string(v) != "fresh" {
		t.Fatalf("fresh flight after abandonment: %q, %v", v, err)
	}
}

func TestAbandonedFlightDoesNotTrapLaterCallers(t *testing.T) {
	g := newFlightGroup()
	slowExit := make(chan struct{})
	started := make(chan struct{})
	doomed := func(fctx context.Context) ([]byte, error) {
		close(started)
		<-fctx.Done()
		<-slowExit // a canceled simulation takes a while to notice
		return nil, fctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.do(ctx, "k", doomed)
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter got %v", err)
	}
	// The doomed execution has not exited yet; a new caller for the same
	// key must start a fresh flight rather than inherit the canceled one.
	v, err, _ := g.do(context.Background(), "k", func(context.Context) ([]byte, error) {
		return []byte("fresh"), nil
	})
	close(slowExit)
	if err != nil || string(v) != "fresh" {
		t.Fatalf("later caller got %q, %v — joined the doomed flight?", v, err)
	}
}

func waitWaiters(t *testing.T, g *flightGroup, key string, n int) {
	t.Helper()
	for deadline := time.Now().Add(5 * time.Second); ; {
		g.mu.Lock()
		w := 0
		if f := g.m[key]; f != nil {
			w = f.waiters
		}
		g.mu.Unlock()
		if w == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d waiters on %q", n, key)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLRUCacheEvictsOldest(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // refresh a: b becomes oldest
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted (oldest)")
	}
	if v, ok := c.get("a"); !ok || string(v) != "A" {
		t.Error("a should have survived (recently used)")
	}
	if v, ok := c.get("c"); !ok || string(v) != "C" {
		t.Error("c missing")
	}
	if c.evicted() != 1 || c.len() != 2 {
		t.Errorf("evictions=%d len=%d, want 1 and 2", c.evicted(), c.len())
	}
}

func TestLRUCacheConcurrent(t *testing.T) {
	c := newLRUCache(8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := fmt.Sprintf("k%d", (i+j)%16)
				c.put(k, []byte(k))
				c.get(k)
			}
		}(i)
	}
	wg.Wait()
	if c.len() > 8 {
		t.Errorf("cache exceeded its bound: %d entries", c.len())
	}
}
