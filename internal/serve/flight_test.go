package serve

// The waiter-counted singleflight tests live with the mechanism in
// internal/flight; this file keeps the daemon-local cache tests.

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUCacheEvictsOldest(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // refresh a: b becomes oldest
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted (oldest)")
	}
	if v, ok := c.get("a"); !ok || string(v) != "A" {
		t.Error("a should have survived (recently used)")
	}
	if v, ok := c.get("c"); !ok || string(v) != "C" {
		t.Error("c missing")
	}
	if c.evicted() != 1 || c.len() != 2 {
		t.Errorf("evictions=%d len=%d, want 1 and 2", c.evicted(), c.len())
	}
}

// TestLRUCacheFirstWriteWins: two flights racing on one key must not be
// able to swap the bytes under an earlier reader — the first put pins the
// entry, later puts only refresh recency.
func TestLRUCacheFirstWriteWins(t *testing.T) {
	c := newLRUCache(2)
	c.put("k", []byte("first"))
	c.put("k", []byte("second"))
	if v, ok := c.get("k"); !ok || string(v) != "first" {
		t.Errorf("entry = %q, want the first write to win", v)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
	// The duplicate put still refreshes LRU order: k survives a new key.
	c.put("other", []byte("x"))
	c.put("k", []byte("third"))
	c.put("newest", []byte("y"))
	if v, ok := c.get("k"); !ok || string(v) != "first" {
		t.Errorf("after refresh, entry = %q, %v; want first bytes retained", v, ok)
	}
}

func TestLRUCacheConcurrent(t *testing.T) {
	c := newLRUCache(8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := fmt.Sprintf("k%d", (i+j)%16)
				c.put(k, []byte(k))
				c.get(k)
			}
		}(i)
	}
	wg.Wait()
	if c.len() > 8 {
		t.Errorf("cache exceeded its bound: %d entries", c.len())
	}
}
