package serve

import (
	"expvar"
	"fmt"
	"time"

	"regconn"
	"regconn/internal/backend"
	"regconn/internal/obs"
	"regconn/internal/store"
)

// metrics is the daemon's metric set, built on the internal/obs registry:
// labeled counters and fixed-bucket latency histograms replacing the old
// flat expvar ints and the 1024-sample sorted latency window. The
// registry renders two ways from one source of truth: Prometheus text
// exposition (GET /metrics?format=prometheus) and the legacy expvar JSON
// map, whose keys are derived views (sums over the labeled families,
// quantiles over the merged histogram) so pre-existing scrapers and
// tests see exactly the shape they always did.
//
// Nothing here is published to the process-global expvar registry — it
// panics on duplicate names and tests construct many servers per
// process. cmd/rcserve publishes the map once under "rcserve".
//
// The registered families are documented in DESIGN.md §15's metric
// table; scripts/metricslint.sh cross-checks code against that table in
// both directions.
type metrics struct {
	reg *obs.Registry

	requests     *obs.CounterVec   // by endpoint
	errors       *obs.CounterVec   // by endpoint
	points       *obs.CounterVec   // by endpoint, source (hit|miss|coalesced)
	latency      *obs.HistogramVec // by endpoint, backend; seconds
	inflight     *obs.Gauge
	slowRequests *obs.Counter

	sweepPointErrors *obs.Counter
	peerForwarded    *obs.CounterVec // by peer
	peerFallback     *obs.CounterVec // by peer
	peerOKAge        *obs.GaugeVec   // by peer; refreshed at scrape
	peerFailAge      *obs.GaugeVec   // by peer; refreshed at scrape
	storeErrors      *obs.Counter

	health *peerHealth // nil when unsharded

	legacy *expvar.Map // built once; Funcs pull live values at render
}

// newMetrics registers every family. cache and st (st may be nil) feed
// the scrape-time gauges; peers are the fleet's other replicas, whose
// liveness series exist from startup so a scrape sees a never-contacted
// peer as age -1 rather than as a missing series.
func newMetrics(cache *lruCache, st *store.Store, peers []string) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		requests: reg.CounterVec("rcserve_requests_total",
			"HTTP requests accepted", "endpoint"),
		errors: reg.CounterVec("rcserve_errors_total",
			"requests answered with status >= 400, plus sweeps whose every point failed", "endpoint"),
		points: reg.CounterVec("rcserve_points_total",
			"points answered, by how the bytes were produced (hit, miss, coalesced)", "endpoint", "source"),
		latency: reg.HistogramVec("rcserve_point_latency_seconds",
			"per-point answer latency, every route (run and sweep)", nil, "endpoint", "backend"),
		inflight: reg.Gauge("rcserve_inflight",
			"simulations currently executing"),
		slowRequests: reg.Counter("rcserve_slow_requests_total",
			"requests slower than the slow-request threshold"),
		sweepPointErrors: reg.Counter("rcserve_sweep_point_errors_total",
			"failed points inside 200 NDJSON sweep streams"),
		peerForwarded: reg.CounterVec("rcserve_peer_forwarded_total",
			"sweep points answered by the owning peer replica", "peer"),
		peerFallback: reg.CounterVec("rcserve_peer_fallback_total",
			"peer-owned points computed locally because the peer failed", "peer"),
		peerOKAge: reg.GaugeVec("rcserve_peer_ok_age_seconds",
			"seconds since the last fully successful forward to the peer (-1 = never)", "peer"),
		peerFailAge: reg.GaugeVec("rcserve_peer_fail_age_seconds",
			"seconds since the last failed forward to the peer (-1 = never)", "peer"),
		storeErrors: reg.Counter("rcserve_store_errors_total",
			"store appends that failed (result still served)"),
	}
	reg.GaugeFunc("rcserve_cache_entries",
		"entries resident in the LRU result cache",
		func() float64 { return float64(cache.len()) })
	reg.GaugeFunc("rcserve_cache_evictions",
		"entries evicted from the LRU since start",
		func() float64 { return float64(cache.evicted()) })
	if st != nil {
		reg.GaugeFunc("rcserve_store_entries", "points in the persistent store",
			func() float64 { return float64(st.Stats().Entries) })
		reg.GaugeFunc("rcserve_store_bytes", "bytes in the persistent store's segments",
			func() float64 { return float64(st.Stats().Bytes) })
		reg.GaugeFunc("rcserve_store_hits", "points served from the persistent store",
			func() float64 { return float64(st.Stats().Hits) })
		reg.GaugeFunc("rcserve_store_recovered", "records recovered by the torn-tail scan at open",
			func() float64 { return float64(st.Stats().Recovered) })
	}
	if len(peers) > 0 {
		m.health = newPeerHealth()
		for _, p := range peers {
			m.peerOKAge.With(p).Set(-1)
			m.peerFailAge.With(p).Set(-1)
			m.peerForwarded.With(p)
			m.peerFallback.With(p)
		}
	}
	m.legacy = m.buildLegacyMap(cache, st, peers)
	return m
}

// observe records one answered point: the source counter and the latency
// histogram, labeled by endpoint and backend. Every route goes through
// it (run, sweep-local, sweep-fallback), which is what makes the p50/p99
// truthful for sweep-dominated traffic.
func (m *metrics) observe(endpoint string, arch regconn.Arch, src pointSource, d time.Duration) {
	m.points.With(endpoint, src.label()).Inc()
	m.latency.With(endpoint, backendLabel(arch)).Observe(d.Seconds())
}

// refresh recomputes the scrape-time peer liveness gauges. Called by
// handleMetrics before either rendering.
func (m *metrics) refresh() {
	if m.health == nil {
		return
	}
	now := time.Now()
	m.health.each(func(peer string, lastOK, lastFail time.Time) {
		m.peerOKAge.With(peer).Set(age(now, lastOK))
		m.peerFailAge.With(peer).Set(age(now, lastFail))
	})
}

func age(now, t time.Time) float64 {
	if t.IsZero() {
		return -1
	}
	return now.Sub(t).Seconds()
}

// backendLabel names the register architecture of a (canonicalized) Arch
// for the latency histogram's backend label.
func backendLabel(arch regconn.Arch) string {
	if arch.Backend != "" {
		return arch.Backend
	}
	if be, err := backend.ByID(arch.Mode); err == nil {
		return be.Name()
	}
	return fmt.Sprintf("mode%d", arch.Mode)
}

// intFunc and floatFunc adapt live reads into expvar map entries.
func intFunc(f func() int64) expvar.Func     { return func() any { return f() } }
func floatFunc(f func() float64) expvar.Func { return func() any { return f() } }

// buildLegacyMap assembles the expvar map served as GET /metrics JSON —
// the same flat map[string]float64 shape as before the obs registry,
// every key a live view over the labeled families. It is built exactly
// once; Server.Metrics hands out this same *expvar.Map on every call.
func (m *metrics) buildLegacyMap(cache *lruCache, st *store.Store, peers []string) *expvar.Map {
	out := new(expvar.Map).Init()
	sum := func(v *obs.CounterVec) expvar.Func {
		return intFunc(func() int64 { return v.Sum(nil) })
	}
	srcSum := func(src string) expvar.Func {
		return intFunc(func() int64 {
			return m.points.Sum(func(values []string) bool { return values[1] == src })
		})
	}
	out.Set("requests", sum(m.requests))
	out.Set("cache_hits", srcSum("hit"))
	out.Set("cache_misses", srcSum("miss"))
	out.Set("coalesced", srcSum("coalesced"))
	out.Set("inflight", intFunc(func() int64 { return int64(m.inflight.Value()) }))
	out.Set("errors", sum(m.errors))
	out.Set("slow_requests", intFunc(m.slowRequests.Value))
	out.Set("sweep_point_errors", intFunc(m.sweepPointErrors.Value))
	out.Set("peer_forwarded", sum(m.peerForwarded))
	out.Set("peer_fallback", sum(m.peerFallback))
	out.Set("store_errors", intFunc(m.storeErrors.Value))
	out.Set("cache_entries", intFunc(func() int64 { return int64(cache.len()) }))
	out.Set("cache_evictions", intFunc(cache.evicted))
	if st != nil {
		out.Set("store_entries", intFunc(func() int64 { return st.Stats().Entries }))
		out.Set("store_bytes", intFunc(func() int64 { return st.Stats().Bytes }))
		out.Set("store_hits", intFunc(func() int64 { return st.Stats().Hits }))
		out.Set("store_recovered", intFunc(func() int64 { return st.Stats().Recovered }))
	}
	out.Set("latency_p50_ms", floatFunc(func() float64 { return m.latency.Quantile(0.50) * 1000 }))
	out.Set("latency_p99_ms", floatFunc(func() float64 { return m.latency.Quantile(0.99) * 1000 }))
	// Peer liveness, one flat key per peer so the map stays decodable as
	// map[string]float64 (age in seconds; -1 = never happened).
	for _, p := range peers {
		peer := p
		out.Set("peer_ok_age_s;peer="+peer, floatFunc(func() float64 {
			ok, _ := m.health.last(peer)
			return age(time.Now(), ok)
		}))
		out.Set("peer_fail_age_s;peer="+peer, floatFunc(func() float64 {
			_, fail := m.health.last(peer)
			return age(time.Now(), fail)
		}))
	}
	return out
}
