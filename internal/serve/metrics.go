package serve

import (
	"expvar"
	"sort"
	"sync"
	"time"

	"regconn/internal/store"
)

// metrics is the daemon's counter set, built from expvar types but NOT
// published to the process-global expvar registry here: the registry
// panics on duplicate names, and tests construct many servers per process.
// cmd/rcserve publishes the map once under "rcserve" for /debug/vars-style
// scrapers; the server itself renders it at GET /metrics.
type metrics struct {
	requests  expvar.Int // HTTP requests accepted (all endpoints)
	hits      expvar.Int // points answered from the LRU or the store
	misses    expvar.Int // points this process simulated (flight owners)
	coalesced expvar.Int // requests that joined another request's flight
	inflight  expvar.Int // simulations currently executing (gauge)
	errors    expvar.Int // non-2xx requests, plus sweeps whose every point failed

	sweepPointErrors expvar.Int // failed points inside 200 NDJSON sweep streams
	peerForwarded    expvar.Int // sweep points answered by the owning peer replica
	peerFallback     expvar.Int // peer-owned points computed locally (peer down)
	storeErrors      expvar.Int // store appends that failed (result still served)

	mu        sync.Mutex
	latencies []time.Duration // sliding window of /v1/run point latencies
	next      int
}

const latencyWindow = 1024

func newMetrics() *metrics {
	return &metrics{latencies: make([]time.Duration, 0, latencyWindow)}
}

func (m *metrics) observe(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latencies) < latencyWindow {
		m.latencies = append(m.latencies, d)
		return
	}
	m.latencies[m.next] = d
	m.next = (m.next + 1) % latencyWindow
}

// quantiles returns the p50 and p99 of the latency window.
func (m *metrics) quantiles() (p50, p99 time.Duration) {
	m.mu.Lock()
	s := append([]time.Duration(nil), m.latencies...)
	m.mu.Unlock()
	if len(s) == 0 {
		return 0, 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return q(0.50), q(0.99)
}

// expvarMap assembles the full counter set (plus the cache's and — when
// persistence is on — the store's view) as an expvar.Map whose String()
// is the JSON served at GET /metrics.
func (m *metrics) expvarMap(cache *lruCache, st *store.Store) *expvar.Map {
	out := new(expvar.Map).Init()
	out.Set("requests", &m.requests)
	out.Set("cache_hits", &m.hits)
	out.Set("cache_misses", &m.misses)
	out.Set("coalesced", &m.coalesced)
	out.Set("inflight", &m.inflight)
	out.Set("errors", &m.errors)
	out.Set("sweep_point_errors", &m.sweepPointErrors)
	out.Set("peer_forwarded", &m.peerForwarded)
	out.Set("peer_fallback", &m.peerFallback)
	out.Set("store_errors", &m.storeErrors)
	cacheLen, evictions := new(expvar.Int), new(expvar.Int)
	cacheLen.Set(int64(cache.len()))
	evictions.Set(cache.evicted())
	out.Set("cache_entries", cacheLen)
	out.Set("cache_evictions", evictions)
	if st != nil {
		ss := st.Stats()
		for name, v := range map[string]int64{
			"store_entries":   ss.Entries,
			"store_bytes":     ss.Bytes,
			"store_hits":      ss.Hits,
			"store_recovered": ss.Recovered,
		} {
			iv := new(expvar.Int)
			iv.Set(v)
			out.Set(name, iv)
		}
	}
	p50, p99 := m.quantiles()
	l50, l99 := new(expvar.Float), new(expvar.Float)
	l50.Set(p50.Seconds() * 1000)
	l99.Set(p99.Seconds() * 1000)
	out.Set("latency_p50_ms", l50)
	out.Set("latency_p99_ms", l99)
	return out
}
