package serve

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"regconn/internal/bench"
	"regconn/internal/obs"
)

// Sharding: when rcserve runs as N replicas (-peers, -self), every point
// key has exactly one owning replica, chosen by consistent hashing over
// the canonical SHA-256 key. A sweep received by any replica fans each
// grid point to its owner's /v1/sweep (marked local-only so forwarding
// terminates after one hop) and merges the NDJSON streams back into the
// deterministic benchmark-major request order, so the merged stream is
// byte-identical no matter which replica the client hit. Cache affinity
// is the point: a key's LRU entry and store record live on one replica,
// so N replicas hold N different slices of the corpus instead of N
// copies of the hottest one. A dead peer degrades, not fails: its points
// are computed locally (peer_fallback) and the sweep still completes.

// ringVnodes is the number of virtual nodes per replica; enough that a
// small fleet splits a sweep roughly evenly.
const ringVnodes = 64

// ring is a fixed consistent-hash ring over replica base URLs. Every
// replica builds the same ring from the same -peers list (order does not
// matter: positions are hashes of the URLs), so all replicas agree on
// every key's owner without coordination.
type ring struct {
	points []uint64 // sorted positions
	owners []string // parallel: points[i] is owned by owners[i]
	self   string
}

// newRing builds the ring. peers are replica base URLs (including self).
func newRing(peers []string, self string) *ring {
	r := &ring{self: self}
	for _, p := range peers {
		for v := 0; v < ringVnodes; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", p, v)))
			r.points = append(r.points, binary.BigEndian.Uint64(sum[:8]))
			r.owners = append(r.owners, p)
		}
	}
	sort.Sort(r)
	return r
}

func (r *ring) Len() int           { return len(r.points) }
func (r *ring) Less(i, j int) bool { return r.points[i] < r.points[j] }
func (r *ring) Swap(i, j int) {
	r.points[i], r.points[j] = r.points[j], r.points[i]
	r.owners[i], r.owners[j] = r.owners[j], r.owners[i]
}

// owner returns the replica owning key (a 64-char hex SHA-256 from Key):
// the first ring position clockwise from the key's own hash.
func (r *ring) owner(key string) string {
	var pos uint64
	if raw, err := hex.DecodeString(key); err == nil && len(raw) >= 8 {
		pos = binary.BigEndian.Uint64(raw[:8])
	} else {
		sum := sha256.Sum256([]byte(key))
		pos = binary.BigEndian.Uint64(sum[:8])
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= pos })
	if i == len(r.points) {
		i = 0
	}
	return r.owners[i]
}

// local reports whether this replica owns key (always true without a
// ring: a single replica owns everything).
func (r *ring) local(key string) bool {
	return r == nil || len(r.points) == 0 || r.owner(key) == r.self
}

// sweepJob is one grid point flowing through handleSweep: computed
// locally or answered by its owning peer, delivered on ch either way.
type sweepJob struct {
	bm    bench.Benchmark
	arch  SweepPoint // request spelling, forwarded verbatim to the owner
	key   string
	owner string // ownerLocal or the owning peer's base URL
	ch    chan result
}

// forwardSweep sends one owner's slice of the grid to that peer as a
// local-only sub-sweep and relays the NDJSON lines, one per job, in
// order. The parent request's X-Request-ID rides along, so the peer's
// logs, trace, and progress table file the sub-sweep under the same ID.
// Any transport failure — connect, mid-stream disconnect, or a non-200 —
// falls back to computing the remaining points locally, so a dead peer
// costs affinity, never results; either way the peer's health timestamps
// are updated for the liveness gauges.
func (s *Server) forwardSweep(ctx context.Context, owner string, jobs []*sweepJob) {
	_, span := obs.StartSpan(ctx, "peer.forward")
	span.Set("peer", owner).Set("points", len(jobs))
	n := s.relaySweep(ctx, owner, jobs, span)
	span.Set("relayed", n)
	if n == len(jobs) {
		span.Set("ok", true).End()
		s.met.health.markOK(owner)
		return
	}
	// A stream that never started or ended early (peer down, or crashed
	// mid-sweep) leaves a tail of the slice unanswered; compute it here.
	span.Set("ok", false).End()
	s.met.health.markFail(owner)
	s.fallbackSweep(ctx, owner, jobs[n:])
}

// relaySweep POSTs the sub-sweep to the owner and relays lines; it
// returns how many jobs were answered.
func (s *Server) relaySweep(ctx context.Context, owner string, jobs []*sweepJob, span *obs.Span) int {
	pts := make([]SweepPoint, len(jobs))
	for i, j := range jobs {
		pts[i] = j.arch
	}
	body, err := json.Marshal(SweepRequest{Points: pts, LocalOnly: true})
	if err != nil {
		return 0
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	req.Header.Set("Content-Type", "application/json")
	if rid := requestIDFrom(ctx); rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	i := 0
	for i < len(jobs) && sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		jobs[i].ch <- result{body: line, remoteErr: isErrorLine(line)}
		s.met.peerForwarded.With(owner).Inc()
		i++
	}
	return i
}

// fallbackSweep computes the peer-owned jobs on this replica, in its own
// worker pool.
func (s *Server) fallbackSweep(ctx context.Context, owner string, jobs []*sweepJob) {
	for _, j := range jobs {
		s.met.peerFallback.With(owner).Inc()
		go s.runSweepJob(ctx, j)
	}
}

// runSweepJob computes one grid point locally and delivers it. Latency
// and source counters are observed inside point, exactly as on the
// /v1/run route.
func (s *Server) runSweepJob(ctx context.Context, j *sweepJob) {
	body, _, err := s.point(ctx, "sweep", j.bm, j.arch.Arch)
	j.ch <- result{body: body, err: err}
}

// isErrorLine distinguishes a peer's error line from a RunResponse line:
// only errorBody carries a non-empty "error" field.
func isErrorLine(line []byte) bool {
	var eb errorBody
	return json.Unmarshal(line, &eb) == nil && eb.Error != ""
}
