package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/core"
	"regconn/internal/exp"
	"regconn/internal/machine"
)

// fastArch is a cheap-to-simulate point used throughout these tests.
func fastArch() regconn.Arch {
	return regconn.Arch{Issue: 4, LoadLatency: 2, Mode: regconn.WithRC, IntCore: 16, FPCore: 32}
}

// newServer builds a Server that is closed with the test.
func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	sv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sv.Close() })
	return sv
}

func postRun(t *testing.T, srv *httptest.Server, req RunRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getMetrics(t *testing.T, srv *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunColdWarmByteIdentical(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	req := RunRequest{Benchmark: "matrix300", Arch: fastArch()}
	resp1, cold := postRun(t, srv, req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %d %s", resp1.StatusCode, cold)
	}
	if got := resp1.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("cold X-Cache = %q, want MISS", got)
	}
	resp2, warm := postRun(t, srv, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm run: %d %s", resp2.StatusCode, warm)
	}
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("warm X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm response differs from cold:\ncold: %s\nwarm: %s", cold, warm)
	}

	// And both match a run on a completely fresh server — the cache entry
	// is bit-identical to an independent cold execution.
	sv2 := newServer(t, Config{Workers: 2})
	srv2 := httptest.NewServer(sv2)
	defer srv2.Close()
	_, fresh := postRun(t, srv2, req)
	if !bytes.Equal(cold, fresh) {
		t.Fatalf("cold runs on independent servers differ:\n%s\n%s", cold, fresh)
	}

	var rr RunResponse
	if err := json.Unmarshal(cold, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Result == nil || rr.Result.Cycles == 0 || rr.Result.Stats.Cycles != rr.Result.Cycles {
		t.Fatalf("malformed result: %+v", rr.Result)
	}
	if rr.Key != Key("matrix300", fastArch()) {
		t.Errorf("response key %q does not match canonical key", rr.Key)
	}
}

func TestConcurrentIdenticalRequestsCollapse(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	const n = 6
	req := RunRequest{Benchmark: "cpp", Arch: fastArch()}
	bodies := make([][]byte, n)
	caches := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postRun(t, srv, req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: %d %s", i, resp.StatusCode, body)
			}
			bodies[i] = body
			caches[i] = resp.Header.Get("X-Cache")
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	// Every request is exactly one of: cache hit, flight owner (the one
	// true MISS), or coalesced joiner — and the X-Cache header says which.
	headerCount := map[string]float64{}
	for i, c := range caches {
		if c != "MISS" && c != "HIT" && c != "COALESCED" {
			t.Fatalf("request %d: X-Cache = %q", i, c)
		}
		headerCount[c]++
	}
	if headerCount["MISS"] != 1 {
		t.Errorf("a cold key must have exactly one MISS owner, got %v (%v)", headerCount["MISS"], caches)
	}
	m := getMetrics(t, srv)
	if m["cache_misses"] != 1 {
		t.Errorf("cache_misses = %v, want 1 (only the flight owner is a true miss)", m["cache_misses"])
	}
	for header, metric := range map[string]string{"MISS": "cache_misses", "HIT": "cache_hits", "COALESCED": "coalesced"} {
		if m[metric] != headerCount[header] {
			t.Errorf("%s = %v but %v requests reported X-Cache: %s", metric, m[metric], headerCount[header], header)
		}
	}
	if got := m["cache_hits"] + m["coalesced"] + m["cache_misses"]; got != n {
		t.Errorf("hit+coalesced+miss = %v, want %d (each request counted once)", got, n)
	}
}

func TestDeadlineExceededDoesNotCorruptCache(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	// 1 ms expires during the build, long before the simulation would
	// finish; the cycle loop's context poll turns it into a clean error.
	req := RunRequest{Benchmark: "espresso", Arch: fastArch(), TimeoutMS: 1}
	resp, body := postRun(t, srv, req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline-exceeded run: %d %s, want 504", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("error body %s (%v)", body, err)
	}

	// The deadline never corrupted the cache. Normally the point was
	// canceled mid-simulation and not cached (X-Cache: MISS here); on a
	// heavily loaded host the simulation can outrace the starved waiter and
	// complete — then the complete result is legitimately cached (HIT).
	// Either way the bytes served now must equal an independent cold run.
	req.TimeoutMS = 0
	resp2, good := postRun(t, srv, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("recomputation: %d %s", resp2.StatusCode, good)
	}
	resp3, warm := postRun(t, srv, req)
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("warm after recompute: %d X-Cache=%s", resp3.StatusCode, resp3.Header.Get("X-Cache"))
	}
	if !bytes.Equal(good, warm) {
		t.Fatal("cached bytes differ from the recomputed cold run")
	}
	srv2 := httptest.NewServer(newServer(t, Config{Workers: 2}))
	defer srv2.Close()
	_, cold := postRun(t, srv2, req)
	if !bytes.Equal(good, cold) {
		t.Fatalf("bytes served after the deadline-exceeded request differ from an independent cold run:\n%s\nvs\n%s", good, cold)
	}
}

// TestCancellationStopsSimulationEarly proves — under -race, via the serve
// stack's execution primitive — that a canceled context stops the cycle
// loop within the poll stride rather than running the program out.
func TestCancellationStopsSimulationEarly(t *testing.T) {
	bm, err := bench.ByName("cpp")
	if err != nil {
		t.Fatal(err)
	}
	full, err := exp.RunPoint(context.Background(), bm, fastArch())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = exp.RunPoint(ctx, bm, fastArch())
	if !errors.Is(err, machine.ErrCanceled) {
		t.Fatalf("canceled point error = %v", err)
	}
	var re *machine.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("canceled point error is %T, want to wrap *machine.RuntimeError", err)
	}
	if re.Cycle >= full.Cycles {
		t.Errorf("cancellation at cycle %d did not stop early (full run = %d cycles)", re.Cycle, full.Cycles)
	}
	if re.Cycle > 8192 {
		t.Errorf("cancellation latency %d cycles exceeds two poll strides", re.Cycle)
	}
}

func TestCacheEvictionUnderPressure(t *testing.T) {
	sv := newServer(t, Config{Workers: 2, CacheSize: 1})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	a1, a2 := fastArch(), fastArch()
	a2.Issue = 2
	reqs := []RunRequest{
		{Benchmark: "matrix300", Arch: a1},
		{Benchmark: "matrix300", Arch: a2},
	}
	first := make([][]byte, 2)
	for i, rq := range reqs {
		resp, body := postRun(t, srv, rq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, resp.StatusCode, body)
		}
		first[i] = body
	}
	if m := getMetrics(t, srv); m["cache_evictions"] < 1 {
		t.Errorf("cache_evictions = %v, want >= 1 with a 1-entry cache", m["cache_evictions"])
	}
	// The evicted point recomputes to identical bytes.
	resp, again := postRun(t, srv, reqs[0])
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("evicted point: %d X-Cache=%s", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(first[0], again) {
		t.Fatal("recomputed evicted point differs from its original bytes")
	}
}

func TestSweepStreamsNDJSON(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	good := fastArch()
	bad := regconn.Arch{} // Issue 0: the machine config is invalid
	body, _ := json.Marshal(SweepRequest{
		Benchmarks: []string{"matrix300"},
		Archs:      []regconn.Arch{good, bad},
	})
	resp, err := srv.Client().Post(srv.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("sweep streamed %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var ok RunResponse
	if err := json.Unmarshal([]byte(lines[0]), &ok); err != nil || ok.Result == nil || ok.Result.Cycles == 0 {
		t.Fatalf("line 0 is not a good point: %s (%v)", lines[0], err)
	}
	var eb errorBody
	if err := json.Unmarshal([]byte(lines[1]), &eb); err != nil || eb.Error == "" {
		t.Fatalf("line 1 is not an error line: %s (%v)", lines[1], err)
	}
	// The failed point is visible to observability even though the stream
	// carried a 200: one sweep_point_errors, but not an all-failed sweep.
	m := getMetrics(t, srv)
	if m["sweep_point_errors"] != 1 {
		t.Errorf("sweep_point_errors = %v, want 1", m["sweep_point_errors"])
	}
	if m["errors"] != 0 {
		t.Errorf("errors = %v, want 0 for a partially failed sweep", m["errors"])
	}
}

// TestSweepAllPointsFailedCountsError: a sweep whose every point fails
// streams only error lines after its 200 header — statusWriter never sees
// a failure status, so handleSweep itself must count the sweep as an
// error and each point in sweep_point_errors.
func TestSweepAllPointsFailedCountsError(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	bad1 := regconn.Arch{}          // Issue 0: invalid machine config
	bad2 := regconn.Arch{Issue: -4} // still invalid, distinct key
	body, _ := json.Marshal(SweepRequest{
		Benchmarks: []string{"matrix300"},
		Archs:      []regconn.Arch{bad1, bad2},
	})
	resp, err := srv.Client().Post(srv.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d (errors stream after a 200 header)", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("streamed %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var eb errorBody
		if err := json.Unmarshal([]byte(line), &eb); err != nil || eb.Error == "" {
			t.Fatalf("line %d is not an error line: %s", i, line)
		}
	}
	m := getMetrics(t, srv)
	if m["sweep_point_errors"] != 2 {
		t.Errorf("sweep_point_errors = %v, want 2", m["sweep_point_errors"])
	}
	if m["errors"] != 1 {
		t.Errorf("errors = %v, want 1 for an all-failed sweep", m["errors"])
	}
}

// TestFiguresStatusBranches pins the sentinel-based classification: only
// an unknown experiment id is the client's fault.
func TestFiguresStatusBranches(t *testing.T) {
	_, err := exp.NewRunner().Generate("bogus")
	if !errors.Is(err, exp.ErrUnknownExperiment) {
		t.Fatalf("Generate error %v does not wrap ErrUnknownExperiment", err)
	}
	if got := figuresStatus(err); got != http.StatusBadRequest {
		t.Errorf("unknown-experiment status = %d, want 400", got)
	}
	if got := figuresStatus(errors.New("exp: this mentions unknown experiment but is not one")); got != http.StatusInternalServerError {
		t.Errorf("generation-failure status = %d, want 500 (no substring matching)", got)
	}
}

func TestFiguresHealthzMetricsAndBadRequests(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	// table1 is static (no simulations) so this stays fast.
	resp, err := srv.Client().Get(srv.URL + "/v1/figures/table1")
	if err != nil {
		t.Fatal(err)
	}
	var tables []exp.Table
	if err := json.NewDecoder(resp.Body).Decode(&tables); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(tables) != 1 || tables[0].ID != "table1" {
		t.Fatalf("figures/table1: %d %+v", resp.StatusCode, tables)
	}

	resp, err = srv.Client().Get(srv.URL + "/v1/figures/bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("figures/bogus: %d, want 400", resp.StatusCode)
	}

	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	for _, body := range []string{`{"benchmark":"nope","arch":{"Issue":4}}`, `not json`} {
		resp, err := srv.Client().Post(srv.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %q: %d, want 400", body, resp.StatusCode)
		}
	}

	// A guest memory fault is the client's configuration, not our crash.
	tiny := fastArch()
	tiny.MemSize = 4096
	resp2, body := postRun(t, srv, RunRequest{Benchmark: "matrix300", Arch: tiny})
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("fault body: %s", body)
	}
	if resp2.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(eb.Error, "memory fault") {
		t.Errorf("guest fault: %d %q, want 422 with a memory fault", resp2.StatusCode, eb.Error)
	}

	if m := getMetrics(t, srv); m["requests"] == 0 || m["errors"] == 0 {
		t.Errorf("metrics not counting: %v", m)
	}
}

func TestGracefulShutdownWithInflightRequest(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: sv}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// A cold point that takes real work, started just before shutdown.
	reqBody, _ := json.Marshal(RunRequest{Benchmark: "espresso", Arch: fastArch()})
	type outcome struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(base+"/v1/run", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			done <- outcome{err: err}
			return
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		done <- outcome{status: resp.StatusCode, body: b.Bytes()}
	}()

	time.Sleep(20 * time.Millisecond) // let the request reach the handler
	sv.SetDraining()
	resp, err := http.Get(base + "/healthz")
	if err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
		}
		resp.Body.Close()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	o := <-done
	if o.err != nil {
		t.Fatalf("inflight request failed during drain: %v", o.err)
	}
	if o.status != http.StatusOK {
		t.Fatalf("inflight request got %d during drain: %s", o.status, o.body)
	}
}

func TestKeyCanonical(t *testing.T) {
	a := fastArch()
	if Key("cpp", a) != Key("cpp", a) {
		t.Error("identical points produced different keys")
	}
	b := a
	b.Issue = 8
	if Key("cpp", a) == Key("cpp", b) {
		t.Error("different archs collided")
	}
	if Key("cpp", a) == Key("lex", a) {
		t.Error("different benchmarks collided")
	}
	if len(Key("cpp", a)) != 64 {
		t.Errorf("key is not hex sha256: %q", Key("cpp", a))
	}
}

// legacyArch replicates the Arch struct exactly as it marshaled before the
// backend refactor added the Backend and ReadPorts fields: same Go-name
// keys, same order, no omitempty anywhere. Hashing a point through this
// struct reproduces the keys a pre-refactor daemon handed out.
type legacyArch struct {
	Issue              int
	MemChannels        int
	LoadLatency        int
	IntCore            int
	FPCore             int
	Mode               regconn.RegMode
	Model              core.Model
	ConnectLatency     int
	ExtraDecodeStage   bool
	CombineConnects    bool
	Windows            regconn.WindowPolicy
	ExpandAccumulators bool
	ScalarOnly         bool
	NoSchedule         bool
	Verify             bool
	Trap               regconn.TrapConfig
	Profile            bool
	MemSize            int64
}

func legacyKey(t *testing.T, benchmark string, a regconn.Arch) string {
	t.Helper()
	la := legacyArch{
		Issue:              a.Issue,
		MemChannels:        a.MemChannels,
		LoadLatency:        a.LoadLatency,
		IntCore:            a.IntCore,
		FPCore:             a.FPCore,
		Mode:               a.Mode,
		Model:              a.Model,
		ConnectLatency:     a.ConnectLatency,
		ExtraDecodeStage:   a.ExtraDecodeStage,
		CombineConnects:    a.CombineConnects,
		Windows:            a.Windows,
		ExpandAccumulators: a.ExpandAccumulators,
		ScalarOnly:         a.ScalarOnly,
		NoSchedule:         a.NoSchedule,
		Verify:             a.Verify,
		Trap:               a.Trap,
		Profile:            a.Profile,
		MemSize:            a.MemSize,
	}
	b, err := json.Marshal(struct {
		Benchmark string     `json:"benchmark"`
		Arch      legacyArch `json:"arch"`
	}{benchmark, la})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestKeyStabilityAcrossBackendFields: the Backend/ReadPorts fields must not
// move any pre-existing (benchmark, arch) point to a new cache key — a
// daemon upgraded in place keeps every warm entry. Representative points
// from the paper's sweeps are hashed through a byte-for-byte replica of the
// pre-refactor Arch and must land on the same SHA-256.
func TestKeyStabilityAcrossBackendFields(t *testing.T) {
	archs := []regconn.Arch{
		{Issue: 4, LoadLatency: 2, Mode: regconn.WithRC, IntCore: 16, FPCore: 32},
		{Issue: 1, LoadLatency: 4, Mode: regconn.WithoutRC, IntCore: 8, FPCore: 16, CombineConnects: true},
		{Issue: 8, LoadLatency: 2, Mode: regconn.Unlimited},
		{Issue: 4, MemChannels: 4, LoadLatency: 2, Mode: regconn.WithRC, IntCore: 32, FPCore: 64,
			Model: core.WriteResetReadUpdate, ConnectLatency: 1, ExtraDecodeStage: true,
			CombineConnects: true, Verify: true, Profile: true, MemSize: 1 << 20},
		{Issue: 2, LoadLatency: 2, Mode: regconn.WithRC, IntCore: 16, FPCore: 32,
			Trap: regconn.TrapConfig{Interval: 5000, ContextSwitch: true, PSWFlag: true}},
	}
	for _, bm := range []string{"cpp", "matrix300"} {
		for i, a := range archs {
			if got, want := Key(bm, a), legacyKey(t, bm, a); got != want {
				t.Errorf("%s/arch[%d]: key %s, want pre-refactor key %s", bm, i, got, want)
			}
		}
	}
	// And the two spellings of one extension point collapse to one key.
	byName := regconn.Arch{Issue: 4, LoadLatency: 2, Backend: "portreduce", IntCore: 16, FPCore: 32}
	byMode := regconn.Arch{Issue: 4, LoadLatency: 2, Mode: regconn.PortReduce, IntCore: 16, FPCore: 32}
	if Key("cpp", byName) != Key("cpp", byMode) {
		t.Error("backend-name and mode-number spellings of one point produced different keys")
	}
	if Key("cpp", byName) == Key("cpp", fastArch()) {
		t.Error("portreduce point collided with the rc point")
	}
}

// TestSweepRivalBackendsWarmByteIdentical drives the five-backend rivals
// grid through /v1/sweep twice: every point must simulate (cold), and the
// warm pass must stream back byte-identical lines from the cache —
// including the two extension backends and both spellings of a point.
func TestSweepRivalBackendsWarmByteIdentical(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	req := SweepRequest{
		Benchmarks: []string{"grep"},
		Archs: []regconn.Arch{
			{Issue: 4, LoadLatency: 2, Mode: regconn.WithoutRC, IntCore: 16, FPCore: 32, CombineConnects: true},
			{Issue: 4, LoadLatency: 2, Mode: regconn.WithRC, IntCore: 16, FPCore: 32, CombineConnects: true},
			{Issue: 4, LoadLatency: 2, Mode: regconn.Unlimited},
			{Issue: 4, LoadLatency: 2, Backend: "portreduce", IntCore: 16, FPCore: 32, CombineConnects: true},
			{Issue: 4, LoadLatency: 2, Backend: "chain", IntCore: 16, FPCore: 32, CombineConnects: true},
		},
	}
	post := func() string {
		body, _ := json.Marshal(req)
		resp, err := srv.Client().Post(srv.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.String()
	}
	cold := post()
	lines := strings.Split(strings.TrimRight(cold, "\n"), "\n")
	if len(lines) != len(req.Archs) {
		t.Fatalf("sweep streamed %d lines, want %d:\n%s", len(lines), len(req.Archs), cold)
	}
	for i, line := range lines {
		var rr RunResponse
		if err := json.Unmarshal([]byte(line), &rr); err != nil || rr.Result == nil || rr.Result.Cycles == 0 {
			t.Fatalf("line %d is not a simulated point: %s (%v)", i, line, err)
		}
	}
	if warm := post(); warm != cold {
		t.Error("warm sweep is not byte-identical to the cold sweep")
	}
	m := getMetrics(t, srv)
	if m["cache_hits"] < float64(len(req.Archs)) {
		t.Errorf("warm sweep hit cache %v times, want >= %d", m["cache_hits"], len(req.Archs))
	}
	// A mode-number respelling of the portreduce point is the same cache
	// entry: no new simulation, same bytes.
	req.Archs = []regconn.Arch{{Issue: 4, LoadLatency: 2, Mode: regconn.PortReduce, IntCore: 16, FPCore: 32, CombineConnects: true}}
	if got := strings.TrimRight(post(), "\n"); got != lines[3] {
		t.Error("mode-number spelling of the portreduce point missed the cache or diverged")
	}
}
