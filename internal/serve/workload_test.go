package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"regconn"
	"regconn/internal/workload"
)

// postRaw POSTs arbitrary bytes to a path and returns status + body.
func postRaw(t *testing.T, srv *httptest.Server, path, contentType string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestRunWorkloadSpec pins the workload contract on /v1/run: a spec and
// its canonical gen/ name are one point — same key, one cache entry — and
// the warm hit is byte-identical.
func TestRunWorkloadSpec(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	spec := &workload.Spec{Profile: "connect-heavy", Seed: 7}
	resp, cold := postRun(t, srv, RunRequest{Workload: spec, Arch: fastArch()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spec run: status %d: %s", resp.StatusCode, cold)
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("cold spec run: X-Cache %q", got)
	}
	var rr RunResponse
	if err := json.Unmarshal(cold, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Benchmark != "gen/connect-heavy/7" {
		t.Fatalf("response benchmark %q, want canonical gen name", rr.Benchmark)
	}
	if want := Key("gen/connect-heavy/7", fastArch()); rr.Key != want {
		t.Fatalf("key %s, want canonical name's key %s", rr.Key, want)
	}

	// The same workload by its gen/ name must be a warm, byte-identical hit.
	resp2, warm := postRun(t, srv, RunRequest{Benchmark: "gen/connect-heavy/7", Arch: fastArch()})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("name run: status %d: %s", resp2.StatusCode, warm)
	}
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("name spelling of the same point: X-Cache %q, want HIT", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("spec and name spellings returned different bytes")
	}
}

// TestRunWorkloadValidation pins the serve boundary's failure behavior for
// workload specs: every malformed spelling is a structured 400 with an
// error body, never a panic or a 500.
func TestRunWorkloadValidation(t *testing.T) {
	sv := newServer(t, Config{Workers: 1})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	cases := []struct {
		name string
		req  RunRequest
	}{
		{"unknown profile", RunRequest{Workload: &workload.Spec{Profile: "no-such", Seed: 1}, Arch: fastArch()}},
		{"negative seed", RunRequest{Workload: &workload.Spec{Profile: "mixed", Seed: -4}, Arch: fastArch()}},
		{"empty spec", RunRequest{Workload: &workload.Spec{}, Arch: fastArch()}},
		{"conflicting benchmark and workload", RunRequest{Benchmark: "grep",
			Workload: &workload.Spec{Profile: "mixed", Seed: 1}, Arch: fastArch()}},
		{"malformed gen name", RunRequest{Benchmark: "gen/mixed/xyz", Arch: fastArch()}},
		{"unknown gen profile", RunRequest{Benchmark: "gen/no-such/3", Arch: fastArch()}},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.ReplaceAll(c.name, " ", "-"), func(t *testing.T) {
			resp, body := postRun(t, srv, c.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Fatalf("expected structured error body, got %s (err %v)", body, err)
			}
		})
	}
}

// TestSweepWorkloads pins workload specs in sweep requests: the Workloads
// cross product and explicit workload points both stream results keyed by
// canonical gen/ names, and a bad spec anywhere fails the sweep up front
// with a 400.
func TestSweepWorkloads(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	body, _ := json.Marshal(SweepRequest{
		Benchmarks: []string{"grep"},
		Workloads:  []workload.Spec{{Profile: "mixed", Seed: 0}, {Profile: "call-heavy", Seed: 1}},
		Archs:      []regconn.Arch{fastArch()},
	})
	resp, out := postRaw(t, srv, "/v1/sweep", "application/json", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, out)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %s", len(lines), out)
	}
	wantNames := []string{"grep", "gen/mixed/0", "gen/call-heavy/1"}
	for i, ln := range lines {
		var rr RunResponse
		if err := json.Unmarshal([]byte(ln), &rr); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rr.Benchmark != wantNames[i] || rr.Result == nil {
			t.Fatalf("line %d: benchmark %q result %v, want %q", i, rr.Benchmark, rr.Result, wantNames[i])
		}
	}

	// Explicit points with workload specs.
	body, _ = json.Marshal(SweepRequest{Points: []SweepPoint{
		{Workload: &workload.Spec{Profile: "mixed", Seed: 0}, Arch: fastArch()},
	}})
	resp, out = postRaw(t, srv, "/v1/sweep", "application/json", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("points sweep: status %d: %s", resp.StatusCode, out)
	}
	var rr RunResponse
	if err := json.Unmarshal(bytes.TrimSpace(out), &rr); err != nil || rr.Benchmark != "gen/mixed/0" {
		t.Fatalf("points sweep line %s (err %v)", out, err)
	}

	// A bad spec fails the whole sweep before any point runs.
	body, _ = json.Marshal(SweepRequest{
		Workloads: []workload.Spec{{Profile: "no-such", Seed: 0}},
		Archs:     []regconn.Arch{fastArch()},
	})
	resp, out = postRaw(t, srv, "/v1/sweep", "application/json", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec sweep: status %d, want 400: %s", resp.StatusCode, out)
	}
}

// encodedTrace builds and encodes a trace for one workload under fastArch.
func encodedTrace(t *testing.T, name string) []byte {
	t.Helper()
	bm, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := regconn.Build(bm.Build(), fastArch())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ex.Trace(name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReplayEndpoint pins POST /v1/replay: a valid trace replays to a 200
// whose Ret matches the recorded oracle, a second replay of the same trace
// is a warm byte-identical HIT, and corrupt or truncated traces are
// structured 400s.
func TestReplayEndpoint(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	raw := encodedTrace(t, "gen/mispredict-heavy/2")
	resp, cold := postRaw(t, srv, "/v1/replay", "application/octet-stream", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d: %s", resp.StatusCode, cold)
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("cold replay: X-Cache %q", got)
	}
	var rr ReplayResponse
	if err := json.Unmarshal(cold, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Name != "gen/mispredict-heavy/2" || rr.Stats.Cycles == 0 {
		t.Fatalf("replay response %+v", rr)
	}

	resp2, warm := postRaw(t, srv, "/v1/replay", "application/octet-stream", raw)
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("warm replay: X-Cache %q, want HIT", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm replay bytes differ from cold")
	}

	headerLen := bytes.IndexByte(raw, '\n') + 1
	bad := []struct {
		name string
		data []byte
	}{
		{"empty body", nil},
		{"not a trace", []byte("GET me a sandwich\n")},
		{"truncated", raw[:len(raw)-25]},
		{"corrupt payload", func() []byte {
			b := append([]byte(nil), raw...)
			b[headerLen+32] ^= 0x01
			return b
		}()},
		{"wrong version", append([]byte(fmt.Sprintf("rctrace 999 %d deadbeef\n", len(raw)-headerLen)), raw[headerLen:]...)},
	}
	for _, c := range bad {
		c := c
		t.Run(strings.ReplaceAll(c.name, " ", "-"), func(t *testing.T) {
			resp, body := postRaw(t, srv, "/v1/replay", "application/octet-stream", c.data)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Fatalf("expected structured error body, got %s (err %v)", body, err)
			}
		})
	}
}

// TestReplayMatchesRun pins cross-path determinism: replaying a trace
// reports exactly the cycles and result that running the same workload
// through /v1/run computes — the simulator is deterministic whether it is
// fed from the IR pipeline or from a trace file.
func TestReplayMatchesRun(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	const name = "gen/trap-heavy/1"
	resp, runBody := postRun(t, srv, RunRequest{Benchmark: name, Arch: fastArch()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, runBody)
	}
	var run RunResponse
	if err := json.Unmarshal(runBody, &run); err != nil {
		t.Fatal(err)
	}

	resp, repBody := postRaw(t, srv, "/v1/replay", "application/octet-stream", encodedTrace(t, name))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d: %s", resp.StatusCode, repBody)
	}
	var rep ReplayResponse
	if err := json.Unmarshal(repBody, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Cycles != run.Result.Cycles || rep.Stats.Instrs != run.Result.Instrs {
		t.Fatalf("replay cycles/instrs %d/%d, run %d/%d",
			rep.Stats.Cycles, rep.Stats.Instrs, run.Result.Cycles, run.Result.Instrs)
	}
}
