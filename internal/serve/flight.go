package serve

import "regconn/internal/flight"

// flightGroup coalesces concurrent requests for the same key onto one
// execution, with waiter-counted cancellation (the execution's context is
// canceled only when the last waiter leaves, so one impatient client
// cannot kill a simulation other clients are still waiting for). The
// mechanism lives in internal/flight, shared with the in-process
// experiment runner; the daemon's values are marshaled response bytes so
// warm hits stay byte-identical.
type flightGroup = flight.Group[[]byte]

func newFlightGroup() *flightGroup { return flight.NewGroup[[]byte]() }
