package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent requests for the same key onto one
// execution, with waiter-counted cancellation: the execution runs under its
// own context, which is canceled only when every request waiting on it has
// gone away. One impatient client therefore cannot kill a simulation other
// clients are still waiting for, and a simulation nobody wants anymore is
// stopped instead of burning a worker slot. A canceled execution's error is
// returned to (and only to) the waiters that stayed; because the caller
// never caches errors, the next request for the key starts a fresh flight.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done    chan struct{}
	val     []byte
	err     error
	waiters int
	cancel  context.CancelCauseFunc
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[string]*flight{}}
}

// do runs fn for key, sharing one execution among concurrent callers.
// It reports the result, the caller's context error if the caller gave up
// first, and whether this caller joined an execution another caller
// started (for coalescing telemetry).
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	f, joined := g.m[key]
	if !joined {
		fctx, cancel := context.WithCancelCause(context.Background())
		f = &flight{done: make(chan struct{}), cancel: cancel}
		g.m[key] = f
		go func() {
			f.val, f.err = fn(fctx)
			g.mu.Lock()
			if g.m[key] == f { // a canceled flight may already be forgotten
				delete(g.m, key)
			}
			g.mu.Unlock()
			cancel(nil) // release the context's resources
			close(f.done)
		}()
	}
	f.waiters++
	g.mu.Unlock()

	select {
	case <-f.done:
		// If the caller's deadline expired while the flight was finishing
		// (both channels ready, select picked the flight), honor the
		// deadline: a caller that asked for 1ms never sees a success that
		// took longer. The completed result stays available for others.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr, joined
		}
		return f.val, f.err, joined
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			f.cancel(context.Cause(ctx))
			// Forget the key immediately: the canceled execution may take a
			// while to notice (the cycle loop polls every few thousand
			// cycles), and a later caller must start a fresh flight rather
			// than join a doomed one.
			if g.m[key] == f {
				delete(g.m, key)
			}
		}
		g.mu.Unlock()
		return nil, ctx.Err(), joined
	}
}
