package serve

// The kill -9 milestone (ROADMAP / DESIGN.md §14): a daemon with a
// -store-dir that dies mid-sweep loses only the points that had not
// finished. Every point completed before the kill is served by the
// restarted daemon as a byte-identical X-Cache: HIT without simulating.
//
// The crash is emulated faithfully in-process: the first server is
// abandoned without Close (a kill -9 never unwinds anything; the store's
// contract is that every Put fsynced before it returned), and a torn
// half-record — the shape a crash mid-append leaves — is appended to the
// active segment before the restart.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"regconn"
)

func sweepGrid() SweepRequest {
	a1 := fastArch()
	a2 := fastArch()
	a2.Issue = 2
	a3 := fastArch()
	a3.Mode = regconn.WithoutRC
	return SweepRequest{
		Benchmarks: []string{"matrix300", "cpp"},
		Archs:      []regconn.Arch{a1, a2, a3},
	}
}

func postSweep(t *testing.T, srv *httptest.Server, req SweepRequest) []string {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
}

func TestStoreKillRestartServesCompletedPointsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	grid := sweepGrid()

	// Phase 1: the daemon completes half the grid, then is killed. The
	// "completed" half is the first three points, run individually so we
	// hold their exact response bytes.
	sv1, err := New(Config{Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(sv1)
	completed := map[string][]byte{} // key → response bytes
	var done []RunRequest
	for _, bm := range grid.Benchmarks[:1] {
		for _, arch := range grid.Archs {
			rq := RunRequest{Benchmark: bm, Arch: arch}
			resp, body := postRun(t, srv1, rq)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("phase 1 point: %d %s", resp.StatusCode, body)
			}
			completed[Key(bm, arch)] = body
			done = append(done, rq)
		}
	}
	// kill -9: close the listener so nothing else lands, but never Close
	// the server or its store — no flush, no unmap, no goodbye.
	srv1.Close()

	// A record that was mid-append when the process died: a valid-looking
	// header whose body never fully made it to disk.
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files written: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{64, 0, 0, 0, 255, 255, 0, 0} // header: 64-byte key, 65535-byte value
	torn = append(torn, []byte("only-part-of-the-key")...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Phase 2: restart on the same directory, re-run the whole sweep.
	sv2 := newServer(t, Config{Workers: 2, StoreDir: dir})
	srv2 := httptest.NewServer(sv2)
	defer srv2.Close()

	// Every previously completed point answers X-Cache: HIT with the
	// exact bytes phase 1 returned — before any new simulation runs.
	for _, rq := range done {
		resp, body := postRun(t, srv2, rq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("restarted point: %d %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Cache"); got != "HIT" {
			t.Errorf("%s after restart: X-Cache = %q, want HIT", rq.Benchmark, got)
		}
		if !bytes.Equal(body, completed[Key(rq.Benchmark, rq.Arch)]) {
			t.Errorf("%s after restart: bytes differ from the pre-kill response", rq.Benchmark)
		}
	}
	m := getMetrics(t, srv2)
	if m["store_recovered"] != float64(len(done)) {
		t.Errorf("store_recovered = %v, want %d (the torn tail must not be indexed)", m["store_recovered"], len(done))
	}
	if m["cache_misses"] != 0 {
		t.Errorf("cache_misses = %v after restart, want 0 (no resimulation of completed points)", m["cache_misses"])
	}

	// The full sweep now mixes restored HITs with fresh computation, and
	// each restored line is byte-identical to its pre-kill response.
	lines := postSweep(t, srv2, grid)
	if want := len(grid.Benchmarks) * len(grid.Archs); len(lines) != want {
		t.Fatalf("sweep streamed %d lines, want %d", len(lines), want)
	}
	restored := 0
	for i, line := range lines {
		var rr RunResponse
		if err := json.Unmarshal([]byte(line), &rr); err != nil || rr.Result == nil {
			t.Fatalf("line %d is not a point: %s", i, line)
		}
		if pre, ok := completed[rr.Key]; ok {
			restored++
			if string(pre) != line {
				t.Errorf("line %d (key %s) differs from its pre-kill bytes", i, rr.Key)
			}
		}
	}
	if restored != len(done) {
		t.Errorf("sweep restored %d pre-kill points, want %d", restored, len(done))
	}

	// And a third daemon sees everything the second one added.
	sv3 := newServer(t, Config{Workers: 2, StoreDir: dir})
	srv3 := httptest.NewServer(sv3)
	defer srv3.Close()
	if again := postSweep(t, srv3, grid); len(again) != len(lines) {
		t.Fatalf("third daemon streamed %d lines, want %d", len(again), len(lines))
	} else {
		for i := range again {
			if again[i] != lines[i] {
				t.Errorf("third daemon line %d differs", i)
			}
		}
	}
	m3 := getMetrics(t, srv3)
	if m3["cache_misses"] != 0 {
		t.Errorf("third daemon simulated %v points, want 0 (all served from the store)", m3["cache_misses"])
	}
	if m3["store_entries"] != float64(len(lines)) {
		t.Errorf("store_entries = %v, want %v", m3["store_entries"], len(lines))
	}
}

// TestStoreDirEmptyIsMemoryOnly: the zero config is exactly the
// pre-store daemon — no store metrics, nothing on disk, MISS after a
// restart-equivalent (a second server).
func TestStoreDirEmptyIsMemoryOnly(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()
	rq := RunRequest{Benchmark: "matrix300", Arch: fastArch()}
	resp, _ := postRun(t, srv, rq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d", resp.StatusCode)
	}
	if m := getMetrics(t, srv); m["store_entries"] != 0 {
		// decoded map returns 0 for absent keys; also assert absence
		t.Errorf("memory-only metrics unexpectedly carry store_entries = %v", m["store_entries"])
	}
	raw, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(raw.Body)
	if strings.Contains(buf.String(), "store_entries") {
		t.Error("memory-only /metrics exposes store counters")
	}

	sv2 := newServer(t, Config{Workers: 2})
	srv2 := httptest.NewServer(sv2)
	defer srv2.Close()
	resp2, _ := postRun(t, srv2, rq)
	if got := resp2.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("fresh memory-only server: X-Cache = %q, want MISS", got)
	}
}
