package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/exp"
	"regconn/internal/obs"
)

// slogJSON is a JSON structured logger into w.
func slogJSON(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}

// goldenGrid is the 48-point golden benchmark×config grid (12 benchmarks
// × 4 ledger configs) as an explicit sweep point list.
func goldenGrid() SweepRequest {
	var req SweepRequest
	for _, bm := range bench.All() {
		for _, lc := range exp.LedgerConfigs(bm) {
			req.Points = append(req.Points, SweepPoint{Benchmark: bm.Name, Arch: lc.Arch})
		}
	}
	return req
}

// TestSpanTreeInvariantGoldenGrid sweeps the 48-point golden grid on a
// tracing server and cross-checks the recorded span tree against the
// request: spans nest, their durations sum to the request wall time
// within tolerance, and every simulate span's recorded cycle count
// equals the ledger's global clock for that point's response.
func TestSpanTreeInvariantGoldenGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("48 real simulations")
	}
	sv := newServer(t, Config{Workers: 4, Trace: true})
	srv := httptest.NewServer(sv)
	defer srv.Close()

	grid := goldenGrid()
	if len(grid.Points) != 48 {
		t.Fatalf("golden grid has %d points, want 48", len(grid.Points))
	}
	body, _ := json.Marshal(grid)
	resp, err := srv.Client().Post(srv.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rid := resp.Header.Get("X-Request-ID")
	cyclesByKey := map[string]int64{}
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var rr RunResponse
		if err := json.Unmarshal([]byte(line), &rr); err != nil || rr.Result == nil {
			t.Fatalf("bad sweep line: %s", line)
		}
		cyclesByKey[rr.Key] = rr.Result.Cycles
	}
	if len(cyclesByKey) != 48 {
		t.Fatalf("sweep returned %d distinct points, want 48", len(cyclesByKey))
	}

	traces := sv.obs.recent(rid)
	if len(traces) != 1 {
		t.Fatalf("retained %d traces for id %s, want 1", len(traces), rid)
	}
	tr := traces[0]
	if err := tr.Check(500 * time.Millisecond); err != nil {
		t.Fatalf("span-tree cross-check failed: %v", err)
	}

	spans := tr.Spans()
	attr := func(si obs.SpanInfo, key string) (any, bool) {
		for _, a := range si.Attrs {
			if a.Key == key {
				return a.Val, true
			}
		}
		return nil, false
	}
	// Walk every simulate span up to its owning point span and compare
	// the recorded cycle count against the streamed result.
	simulated := 0
	for _, si := range spans {
		if si.Name != "simulate" {
			continue
		}
		simulated++
		cycles, ok := attr(si, "cycles")
		if !ok {
			t.Fatalf("simulate span without cycles attr: %+v", si)
		}
		p := si.Parent
		for p != -1 && spans[p].Name != "point" {
			p = spans[p].Parent
		}
		if p == -1 {
			t.Fatalf("simulate span has no point ancestor: %+v", si)
		}
		keyAttr, ok := attr(spans[p], "key")
		if !ok {
			t.Fatalf("point span without key attr: %+v", spans[p])
		}
		key := keyAttr.(string)
		want, ok := cyclesByKey[key]
		if !ok {
			t.Fatalf("trace references key %s absent from the response", key)
		}
		if got := cycles.(int64); got != want {
			t.Errorf("key %s: simulate span recorded %d cycles, response says %d", key, got, want)
		}
	}
	if simulated != 48 {
		t.Errorf("trace has %d simulate spans, want 48 (all points were cold)", simulated)
	}
	if tr.ID() != rid {
		t.Errorf("trace id %s != response request id %s", tr.ID(), rid)
	}
}

// syncWriter serializes concurrent slog writes into one buffer.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// startObsFleet is startFleet with tracing on and a separate JSON log
// buffer per replica.
func startObsFleet(t *testing.T, n int) ([]replica, []*syncWriter) {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	out := make([]replica, n)
	logs := make([]*syncWriter, n)
	for i := range lns {
		logs[i] = &syncWriter{}
		sv, err := New(Config{
			Workers: 2,
			Peers:   append([]string(nil), peers...),
			Self:    peers[i],
			Trace:   true,
			Logger:  slogJSON(logs[i]),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sv.Close() })
		hs := &http.Server{Handler: sv}
		go hs.Serve(lns[i])
		t.Cleanup(func() { hs.Close() })
		out[i] = replica{sv: sv, base: peers[i]}
	}
	return out, logs
}

// TestTwoReplicaRequestIDPropagation drives one sharded sweep through a
// two-replica fleet and checks that the client's request ID follows the
// fan-out: it is echoed on the response, appears in both replicas'
// request logs, and names the retained trace on both sides — the peer's
// trace holding point spans for the points it owned.
func TestTwoReplicaRequestIDPropagation(t *testing.T) {
	fleet, logs := startObsFleet(t, 2)
	a, b := fleet[0], fleet[1]
	grid := shardGrid()

	var bOwned int
	for _, arch := range grid.Archs {
		if !a.sv.ring.local(Key("matrix300", arch)) {
			bOwned++
		}
	}
	if bOwned == 0 {
		t.Fatal("shard grid gives replica B no points; the fan-out path is untested")
	}

	const rid = "e2e-sweep.42"
	body, _ := json.Marshal(grid)
	req, _ := http.NewRequest("POST", a.base+"/v1/sweep", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Fatalf("response X-Request-ID = %q, want %q", got, rid)
	}
	var lines int
	for _, l := range strings.Split(strings.TrimSpace(readAll(t, resp)), "\n") {
		if l != "" {
			lines++
		}
	}
	if lines != len(grid.Archs) {
		t.Fatalf("sweep streamed %d lines, want %d", lines, len(grid.Archs))
	}

	for i, lw := range logs {
		if !strings.Contains(lw.String(), rid) {
			t.Errorf("replica %d log does not mention request id %s:\n%s", i, rid, lw.String())
		}
	}

	// Both replicas retained a trace under the same ID; the peer's holds
	// point spans for its owned slice of the grid.
	for name, rp := range map[string]replica{"A": a, "B": b} {
		traces := rp.sv.obs.recent(rid)
		if len(traces) != 1 {
			t.Fatalf("replica %s retained %d traces for %s, want 1", name, len(traces), rid)
		}
		if err := traces[0].Check(500 * time.Millisecond); err != nil {
			t.Errorf("replica %s trace check: %v", name, err)
		}
	}
	var bPoints int
	for _, si := range b.sv.obs.recent(rid)[0].Spans() {
		if si.Name == "point" {
			bPoints++
		}
	}
	if bPoints != bOwned {
		t.Errorf("replica B trace has %d point spans, owns %d points", bPoints, bOwned)
	}

	// The entry replica's trace shows the fan-out itself.
	var forwards int
	for _, si := range a.sv.obs.recent(rid)[0].Spans() {
		if si.Name == "peer.forward" {
			forwards++
		}
	}
	if forwards == 0 {
		t.Error("entry replica trace has no peer.forward span")
	}

	// The trace is exported over HTTP as well-formed Chrome trace JSON.
	tresp, err := http.Get(a.base + "/debug/trace?id=" + rid)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace?id=%s: %d", rid, tresp.StatusCode)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("/debug/trace exported no events")
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestDebugTraceDisabled pins the 404 contract when tracing is off.
func TestDebugTraceDisabled(t *testing.T) {
	sv := newServer(t, Config{Workers: 1})
	srv := httptest.NewServer(sv)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if body := readAll(t, resp); !strings.Contains(body, "disabled") {
		t.Fatalf("404 body does not explain how to enable tracing: %s", body)
	}
}

// TestRequestIDEchoAndMint: a valid client ID is echoed, an invalid one
// replaced by a minted hex ID.
func TestRequestIDEchoAndMint(t *testing.T) {
	sv := newServer(t, Config{Workers: 1})
	srv := httptest.NewServer(sv)
	defer srv.Close()
	body, _ := json.Marshal(RunRequest{Benchmark: "matrix300", Arch: fastArch()})

	req, _ := http.NewRequest("POST", srv.URL+"/v1/run", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "client-id.7")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-id.7" {
		t.Fatalf("valid client ID not echoed: got %q", got)
	}

	req, _ = http.NewRequest("POST", srv.URL+"/v1/run", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "has space")
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if got == "has space" || len(got) != 16 || !obs.ValidRequestID(got) {
		t.Fatalf("invalid client ID not replaced with a minted one: got %q", got)
	}
}

// TestMetricsSamePointer: Server.Metrics returns one map, built once.
func TestMetricsSamePointer(t *testing.T) {
	sv := newServer(t, Config{Workers: 1})
	if sv.Metrics() != sv.Metrics() {
		t.Fatal("Metrics() built a fresh map per call")
	}
}

// TestMetricsPrometheusExposition scrapes /metrics in Prometheus text
// format and runs it through the strict in-repo parser.
func TestMetricsPrometheusExposition(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()
	if resp, _ := postRun(t, srv, RunRequest{Benchmark: "matrix300", Arch: fastArch()}); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d", resp.StatusCode)
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	fams, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("exposition rejected by the strict parser: %v", err)
	}
	byName := map[string]obs.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	req := byName["rcserve_requests_total"]
	var runReqs float64
	for _, s := range req.Samples {
		if s.Labels["endpoint"] == "run" {
			runReqs = s.Value
		}
	}
	if req.Type != "counter" || runReqs < 1 {
		t.Fatalf("rcserve_requests_total{endpoint=run} = %v (family %+v)", runReqs, req)
	}
	lat := byName["rcserve_point_latency_seconds"]
	if lat.Type != "histogram" || len(lat.Samples) == 0 {
		t.Fatalf("rcserve_point_latency_seconds = %+v", lat)
	}
	if _, ok := byName["rcserve_inflight"]; !ok {
		t.Fatal("rcserve_inflight gauge missing from exposition")
	}

	// The Accept header selects the same format.
	hreq, _ := http.NewRequest("GET", srv.URL+"/metrics", nil)
	hreq.Header.Set("Accept", "text/plain")
	hresp, err := srv.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if _, err := obs.ParsePrometheus(hresp.Body); err != nil {
		t.Fatalf("Accept: text/plain did not yield a parseable exposition: %v", err)
	}
}

// TestWantsPrometheus: format selection is real content negotiation,
// not an Accept substring sniff — a JSON scraper that happens to
// mention text/plain with a low (or zero) preference keeps getting the
// legacy JSON view.
func TestWantsPrometheus(t *testing.T) {
	cases := []struct {
		query, accept string
		want          bool
	}{
		{"", "", false},
		{"format=prometheus", "", true},
		{"format=prometheus", "application/json", true},
		{"format=json", "text/plain", false},
		{"", "text/plain", true},
		{"", "text/plain; version=0.0.4", true},
		{"", "application/openmetrics-text; version=1.0.0; q=0.9", true},
		{"", "text/plain;q=0", false},
		{"", "application/json, text/plain;q=0.1", false},
		{"", "text/plain;q=0.9, application/json;q=0.2", true},
		{"", "*/*", false},
		{"", "text/html", false},
		{"", "not an accept header", false},
	}
	for _, c := range cases {
		url := "http://x/metrics"
		if c.query != "" {
			url += "?" + c.query
		}
		r, err := http.NewRequest("GET", url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if c.accept != "" {
			r.Header.Set("Accept", c.accept)
		}
		if got := wantsPrometheus(r); got != c.want {
			t.Errorf("wantsPrometheus(query=%q, accept=%q) = %v, want %v",
				c.query, c.accept, got, c.want)
		}
	}
}

// TestSweepsProgressEndpoint: a finished sweep stays visible on GET
// /v1/sweeps with done == total and a per-owner breakdown.
func TestSweepsProgressEndpoint(t *testing.T) {
	sv := newServer(t, Config{Workers: 2})
	srv := httptest.NewServer(sv)
	defer srv.Close()
	second := fastArch()
	second.Issue = 2
	grid := SweepRequest{Benchmarks: []string{"matrix300"}, Archs: []regconn.Arch{fastArch(), second}}
	body, _ := json.Marshal(grid)
	resp, err := srv.Client().Post(srv.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	resp.Body.Close()

	sresp, err := srv.Client().Get(srv.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sw SweepsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sw); err != nil {
		t.Fatal(err)
	}
	if len(sw.Sweeps) != 1 {
		t.Fatalf("sweeps table has %d entries, want 1: %+v", len(sw.Sweeps), sw)
	}
	v := sw.Sweeps[0]
	if v.Active || v.Total != 2 || v.Done != 2 || v.Errors != 0 {
		t.Fatalf("sweep view = %+v, want finished 2/2", v)
	}
	if pp := v.Peers["local"]; pp.Total != 2 || pp.Done != 2 {
		t.Fatalf("local owner progress = %+v, want 2/2", pp)
	}
}

// TestPeerLivenessGauges: the age gauges read -1 before any contact and
// a real age after a successful forward.
func TestPeerLivenessGauges(t *testing.T) {
	fleet := startFleet(t, 2, Config{Workers: 2})
	a, b := fleet[0], fleet[1]

	m := metricsOf(t, a.base)
	okKey := "peer_ok_age_s;peer=" + b.base
	failKey := "peer_fail_age_s;peer=" + b.base
	if m[okKey] != -1 || m[failKey] != -1 {
		t.Fatalf("pre-contact ages = ok %v fail %v, want -1/-1 (keys: %v)", m[okKey], m[failKey], m)
	}

	grid := shardGrid()
	var bOwned int
	for _, arch := range grid.Archs {
		if !a.sv.ring.local(Key("matrix300", arch)) {
			bOwned++
		}
	}
	if bOwned == 0 {
		t.Fatal("shard grid gives replica B no points")
	}
	postFleetSweep(t, a.base, grid)

	m = metricsOf(t, a.base)
	if age := m[okKey]; age < 0 {
		t.Fatalf("post-forward ok age = %v, want >= 0", age)
	}
	if m[failKey] != -1 {
		t.Fatalf("fail age = %v after a clean forward, want -1", m[failKey])
	}
}

// TestSlowRequestLogged: a request over the threshold logs at Warn and
// bumps the counter.
func TestSlowRequestLogged(t *testing.T) {
	lw := &syncWriter{}
	sv := newServer(t, Config{Workers: 1, Logger: slogJSON(lw), SlowThreshold: time.Nanosecond})
	srv := httptest.NewServer(sv)
	defer srv.Close()
	if resp, _ := postRun(t, srv, RunRequest{Benchmark: "matrix300", Arch: fastArch()}); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d", resp.StatusCode)
	}
	out := lw.String()
	if !strings.Contains(out, "slow request") || !strings.Contains(out, `"level":"WARN"`) {
		t.Fatalf("no Warn slow-request log:\n%s", out)
	}
	if m := getMetrics(t, srv); m["slow_requests"] < 1 {
		t.Fatalf("slow_requests = %v, want >= 1", m["slow_requests"])
	}
}
