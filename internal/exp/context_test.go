package exp

import (
	"context"
	"errors"
	"testing"

	"regconn"
)

// TestRunContextCancelDoesNotPoisonCache: a canceled point must be evicted
// from the memo so a later request recomputes it, and that recomputation
// must produce the normal verified result.
func TestRunContextCancelDoesNotPoisonCache(t *testing.T) {
	r := NewQuickRunner()
	bm := r.Benchmarks[0]
	arch := regconn.Arch{Issue: 4, LoadLatency: 2, Mode: regconn.WithRC, IntCore: 16, FPCore: 32}

	// A caller abandoning a flight gets its own context's error (the
	// execution may still be running for other waiters — rcserve's flight
	// semantics), so the error matches context.Canceled but not
	// necessarily machine.ErrCanceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunContext(ctx, bm, arch); err == nil {
		t.Fatal("canceled run returned no error")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run error = %v; want to match context.Canceled", err)
	}

	res, err := r.RunContext(context.Background(), bm, arch)
	if err != nil {
		t.Fatalf("recomputation after cancel failed: %v", err)
	}
	if res.Cycles == 0 {
		t.Fatal("recomputed point has no cycles")
	}

	// And the recomputed result is now memoized normally.
	res2, err := r.Run(bm, arch)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Error("successful result was not memoized after the canceled entry was evicted")
	}
}
