package exp

import (
	"fmt"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/isa"
	"regconn/internal/regalloc"
)

type benchLike = bench.Benchmark

// AblationPressure quantifies the paper's premise (§1): ILP optimization
// increases the register requirement. For each benchmark it reports the
// maximum number of simultaneously live virtual registers (of the
// benchmark's class) in main under scalar compilation and under ILP
// compilation for 2/4/8-issue targets.
func (r *Runner) AblationPressure() (*Table, error) {
	t := &Table{
		ID:    "pressure",
		Title: "Register demand (distinct registers allocated, benchmark's class) vs compilation level",
		Cols:  []string{"scalar", "ilp-2", "ilp-4", "ilp-8"},
		Notes: []string{"the paper's premise (§1): optimization and scheduling for wider issue raise the register requirement past small register files"},
	}
	for _, bm := range r.sortedBench() {
		var vals []float64
		for _, cfg := range []regconn.Arch{
			{Issue: 4, LoadLatency: 2, Mode: regconn.WithRC, CombineConnects: true, ScalarOnly: true, Verify: true},
			{Issue: 2, LoadLatency: 2, Mode: regconn.WithRC, CombineConnects: true, Verify: true},
			{Issue: 4, LoadLatency: 2, Mode: regconn.WithRC, CombineConnects: true, Verify: true},
			{Issue: 8, LoadLatency: 2, Mode: regconn.WithRC, CombineConnects: true, Verify: true},
		} {
			cfg = archFor(bm, 16, cfg)
			ex, err := regconn.Build(bm.Build(), cfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", bm.Name, err)
			}
			demand := 0
			class := isa.ClassInt
			if bm.FP {
				class = isa.ClassFloat
			}
			for _, f := range ex.MProg.IR.Funcs {
				a := ex.Alloc.ByFunc[f]
				if a == nil {
					continue
				}
				regs := map[int]bool{}
				slots := map[int]bool{}
				for r, loc := range a.Loc {
					if r.Class != class {
						continue
					}
					switch loc.Kind {
					case regalloc.LocReg:
						regs[loc.N] = true
					case regalloc.LocSpill:
						slots[loc.N] = true
					}
				}
				if d := len(regs) + len(slots); d > demand {
					demand = d
				}
			}
			vals = append(vals, float64(demand))
		}
		t.AddRow(bm.Name, vals...)
	}
	return t, nil
}

// AblationAccum measures accumulator variable expansion (an IMPACT
// transformation): speedup with and without it, at the paper's pressured
// operating point (16/32 cores) and with ample registers (unlimited). The
// tradeoff — more ILP for reduction chains vs. more live partials — is why
// expansion is opt-in.
func (r *Runner) AblationAccum() (*Table, error) {
	t := &Table{
		ID:    "accum",
		Title: "Accumulator expansion: speedup off/on at 16/32 cores (RC) and unlimited, 8-issue",
		Cols:  []string{"rc/off", "rc/on", "unl/off", "unl/on"},
		Notes: []string{"expansion raises reduction ILP but also register pressure; profitable only with registers to spare"},
	}
	archsOf := func(bm benchLike) []regconn.Arch {
		core := core1632(bm)
		return []regconn.Arch{
			archFor(bm, core, regconn.Arch{Issue: 8, LoadLatency: 2, Mode: regconn.WithRC, CombineConnects: true}),
			archFor(bm, core, regconn.Arch{Issue: 8, LoadLatency: 2, Mode: regconn.WithRC, CombineConnects: true, ExpandAccumulators: true}),
			{Issue: 8, LoadLatency: 2, Mode: regconn.Unlimited},
			{Issue: 8, LoadLatency: 2, Mode: regconn.Unlimited, ExpandAccumulators: true},
		}
	}
	var pts []point
	for _, bm := range r.sortedBench() {
		for _, cfg := range archsOf(bm) {
			pts = append(pts, point{bm, cfg})
		}
	}
	r.warmSpeedups(pts)
	for _, bm := range r.sortedBench() {
		var vals []float64
		for _, cfg := range archsOf(bm) {
			s, err := r.Speedup(bm, cfg)
			if err != nil {
				return nil, err
			}
			vals = append(vals, s)
		}
		t.AddRow(bm.Name, vals...)
	}
	t.AddMeanRow()
	return t, nil
}

// AblationOS quantifies the operating-system costs discussed in paper
// §4.2–4.3: what share of cycles goes to context switching under the
// PSW-flag policy vs. a conservative OS, and to interrupt handlers using
// the map-enable flag vs. naive per-register map bookkeeping.
func (r *Runner) AblationOS() (*Table, error) {
	t := &Table{
		ID:    "os",
		Title: "OS overhead %: context switches every 10k cycles; interrupts every 2k cycles",
		Cols:  []string{"sw/orig", "sw/rc", "sw/noflag", "trap/flag", "trap/naive"},
		Notes: []string{
			"sw/orig: original-architecture process, PSW flag on (core registers only, §4.2)",
			"sw/rc: RC process (core + extended + map state)",
			"sw/noflag: original-architecture process, conservative OS without the PSW flag",
			"trap/flag: handler uses the register-map enable bit (§4.3)",
			"trap/naive: handler saves/connects/restores a map entry per register",
		},
	}
	overheadPct := func(bm benchLike, arch regconn.Arch) (float64, error) {
		arch.Verify = true
		ex, err := regconn.Build(bm.Build(), arch)
		if err != nil {
			return 0, err
		}
		res, err := ex.Verify()
		if err != nil {
			return 0, err
		}
		if res.Traps == 0 {
			return 0, fmt.Errorf("%s: no traps fired", bm.Name)
		}
		return 100 * float64(res.TrapOverheads) / float64(res.Cycles), nil
	}
	archsOf := func(bm benchLike) []regconn.Arch {
		core := core1632(bm)
		rcArch := archFor(bm, core, regconn.Arch{Issue: 4, LoadLatency: 2,
			Mode: regconn.WithRC, CombineConnects: true})
		origArch := archFor(bm, core, regconn.Arch{Issue: 4, LoadLatency: 2,
			Mode: regconn.WithoutRC})

		mkSwitch := func(base regconn.Arch, pswFlag bool) regconn.Arch {
			base.Trap = regconn.TrapConfig{Interval: 10000, ContextSwitch: true, PSWFlag: pswFlag}
			return base
		}
		mkTrap := func(base regconn.Arch, flag bool) regconn.Arch {
			base.Trap = regconn.TrapConfig{Interval: 2000, HandlerCycles: 30,
				HandlerRegs: 8, UseEnableFlag: flag}
			return base
		}
		return []regconn.Arch{
			mkSwitch(origArch, true),
			mkSwitch(rcArch, true),
			mkSwitch(origArch, false),
			mkTrap(rcArch, true),
			mkTrap(rcArch, false),
		}
	}

	// These points carry trap configs the memo cache never sees elsewhere,
	// so fan the bm×arch grid out directly rather than through warm.
	bms := r.sortedBench()
	type job struct{ i, j int }
	var jobs []job
	vals := make([][]float64, len(bms))
	errs := make([][]error, len(bms))
	for i, bm := range bms {
		n := len(archsOf(bm))
		vals[i] = make([]float64, n)
		errs[i] = make([]error, n)
		for j := 0; j < n; j++ {
			jobs = append(jobs, job{i, j})
		}
	}
	r.forAll(len(jobs), func(k int) {
		jb := jobs[k]
		bm := bms[jb.i]
		vals[jb.i][jb.j], errs[jb.i][jb.j] = overheadPct(bm, archsOf(bm)[jb.j])
	})
	for i, bm := range bms {
		for _, err := range errs[i] {
			if err != nil {
				return nil, err
			}
		}
		t.AddRow(bm.Name, vals[i]...)
	}
	return t, nil
}
