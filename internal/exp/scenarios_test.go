package exp

import (
	"reflect"
	"testing"
)

// scenarioTestConfig keeps the determinism pins fast: two contrasting
// profiles (register-pressure-bound and trap-bound) at two seeds.
func scenarioTestConfig() ScenarioConfig {
	return ScenarioConfig{
		Profiles: []string{"connect-heavy", "trap-heavy"},
		Seeds:    []int64{0, 1},
	}
}

// TestScenariosParallelMatchesSequential is the workload determinism pin
// at the experiment level: the same {profile, seed} set must produce a
// bit-identical scenarios table whether points run through the pooled
// worker fan-out (warm prepass, per-worker run arenas) or strictly one at
// a time. Run with -race to also exercise the generator under the
// concurrent warm pass.
func TestScenariosParallelMatchesSequential(t *testing.T) {
	par := NewRunner()
	par.Workers = 4
	seq := NewRunner()
	seq.Workers = 1

	pt, err := par.Scenarios(scenarioTestConfig())
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	st, err := seq.Scenarios(scenarioTestConfig())
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if !reflect.DeepEqual(pt, st) {
		t.Fatalf("parallel and sequential scenarios tables differ:\n%s\nvs\n%s", pt.Format(), st.Format())
	}
	if pf, sf := pt.Format(), st.Format(); pf != sf {
		t.Fatalf("formatted tables differ:\n%s\nvs\n%s", pf, sf)
	}
}

// TestScenariosRegeneration pins that two independent runners — each
// regenerating every workload from its seed — agree bit-for-bit, i.e. the
// generator has no hidden state across Generate calls and the Build
// closures are pure functions of {profile, seed}.
func TestScenariosRegeneration(t *testing.T) {
	a, err := NewRunner().Scenarios(scenarioTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner().Scenarios(scenarioTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("independent runners disagree:\n%s\nvs\n%s", a.Format(), b.Format())
	}
}

// TestScenarioBenchmarksRejectsBadConfig: a bad profile name surfaces
// before any simulation.
func TestScenarioBenchmarksRejectsBadConfig(t *testing.T) {
	if _, err := ScenarioBenchmarks(ScenarioConfig{Profiles: []string{"no-such"}}); err == nil {
		t.Fatal("expected error for unknown profile")
	}
	if _, err := (&Runner{}).Scenarios(ScenarioConfig{Profiles: []string{"no-such"}}); err == nil {
		t.Fatal("expected Scenarios to propagate the bad config")
	}
}
