// Package exp regenerates every table and figure of the paper's evaluation
// (§5.3): Figure 7 (unlimited-register speedups by issue rate), Figure 8
// (speedup vs core register count), Figure 9 (code-size increase), Figures
// 10/11 (speedup vs issue rate at 2- and 4-cycle load latency), Figure 12
// (RC implementation scenarios), Figure 13 (memory channels vs RC), plus
// Table 1 (latencies) and two ablations (§2.2 combined connects, §2.3
// automatic-reset models). Each experiment returns a Table whose rows are
// benchmarks and whose columns are the paper's series.
package exp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/flight"
	"regconn/internal/machine"
	"regconn/internal/obs"
)

// Result is one simulated data point.
type Result struct {
	Cycles   int64
	Instrs   int64
	Connects int64
	Growth   float64 // fractional code-size increase (Figure 9)
	SaveRest float64 // save/restore share of growth (Figure 9 black bar)

	// Stats is the full cycle-ledger export of the simulation (stall
	// breakdown, issue-slot histogram, map-table telemetry).
	Stats machine.Stats
}

// Runner executes benchmark/architecture pairs with memoization — the
// baseline run of each benchmark is shared by every figure. It is safe for
// concurrent use: duplicate in-flight points collapse onto one waiter-
// counted flight (internal/flight, the same mechanism as the rcserve
// daemon), so one caller abandoning a point cannot cancel the simulation
// for the others, and each figure generator fans its point grid out across
// a bounded worker pool (warm) before a deterministic sequential pass
// assembles the table from the memoized results.
type Runner struct {
	mu      sync.Mutex
	done    map[string]memo        // completed points (results and non-cancel errors)
	flights *flight.Group[*Result] // in-flight points

	// Workers bounds the worker pool (0 = GOMAXPROCS, 1 = sequential).
	Workers int

	// Benchmarks restricts the suite (nil = all twelve).
	Benchmarks []bench.Benchmark

	// Progress, when set, is called after each point of a warm pass
	// completes, with the number of finished points and the pass total.
	// It is the hook live dashboards (rcexp -progress, rcserve's
	// /v1/sweeps) build on. Called from worker goroutines — must be
	// safe for concurrent use.
	Progress func(done, total int)

	// runPoint overrides the execution primitive (nil = RunPoint). It is a
	// test seam: flight semantics — waiter counting, cancellation of
	// abandoned executions — are probed with deterministic stand-ins
	// instead of real multi-second simulations.
	runPoint func(ctx context.Context, bm bench.Benchmark, arch regconn.Arch) (*Result, error)
}

// memo is one completed point: the memoized result or its terminal error.
type memo struct {
	res *Result
	err error
}

// NewRunner returns a Runner over the full suite.
func NewRunner() *Runner {
	return &Runner{Benchmarks: bench.All()}
}

// NewQuickRunner returns a Runner over a reduced suite (one call-heavy
// integer, one loop integer, one FP benchmark) for fast smoke runs.
func NewQuickRunner() *Runner {
	r := NewRunner()
	var keep []bench.Benchmark
	for _, b := range bench.All() {
		switch b.Name {
		case "cpp", "espresso", "matrix300":
			keep = append(keep, b)
		}
	}
	r.Benchmarks = keep
	return r
}

// key identifies a memoized point. The architecture is canonicalized
// first, so configurations that resolve to the same backend — a legacy
// Mode value and its registry name, e.g. Mode: WithRC and Backend: "rc" —
// share one memo entry instead of simulating twice (the daemon's point
// keys canonicalize the same way; see serve.Key).
func key(name string, a regconn.Arch) string {
	return fmt.Sprintf("%s/%+v", name, a.Canonical())
}

// Run builds and simulates one benchmark under one architecture, verifying
// the result against the interpreter oracle. Concurrent calls for the same
// point share one execution.
func (r *Runner) Run(bm bench.Benchmark, arch regconn.Arch) (*Result, error) {
	return r.RunContext(context.Background(), bm, arch)
}

// canceledErr reports whether err is a cancellation (never memoized).
func canceledErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunContext is Run under a cancelable context. Concurrent requests for
// one point join a waiter-counted flight: the execution's context is
// canceled only when the last waiter has gone away, so an impatient caller
// gets its own context error while the remaining waiters still receive the
// completed result. Cancellation never poisons the memo — only completed
// results and terminal (non-cancel) errors are stored, and an abandoned
// execution's key is released immediately, so the next request recomputes
// instead of replaying a stale cancellation forever.
func (r *Runner) RunContext(ctx context.Context, bm bench.Benchmark, arch regconn.Arch) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := key(bm.Name, arch)
	r.mu.Lock()
	if m, ok := r.done[k]; ok {
		r.mu.Unlock()
		return m.res, m.err
	}
	if r.flights == nil {
		r.flights = flight.NewGroup[*Result]()
	}
	g := r.flights
	run := r.runPoint
	if run == nil {
		run = RunPoint
	}
	r.mu.Unlock()
	res, err, _ := g.Do(ctx, k, func(fctx context.Context) (*Result, error) {
		res, err := run(fctx, bm, arch)
		if err == nil || !canceledErr(err) {
			// Memoize inside the flight, before it completes: a caller
			// arriving after completion but before memoization would
			// otherwise start a duplicate simulation.
			r.mu.Lock()
			if r.done == nil {
				r.done = map[string]memo{}
			}
			r.done[k] = memo{res, err}
			r.mu.Unlock()
		}
		return res, err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// arenas pools simulation arenas across points and workers: a sweep's
// thousands of runs reuse a handful of warm arenas (one per concurrent
// worker) instead of reallocating the simulator state per point. Safe
// because an arena's Reset restores power-on state and RunPoint copies
// everything it returns out of the arena before putting it back.
var arenas = sync.Pool{New: func() any { return regconn.NewArena() }}

// RunPoint is the uncached build+simulate+verify of one data point,
// canceled through ctx. Every point also runs the static map-state verifier
// (Arch.Verify): a sweep result is only reported for code rclint proved
// correct. It is the execution primitive behind Runner.Run and the serve
// daemon's cold path. When the context carries an obs span (a traced
// rcserve request), the build and execute phases open child spans; with
// no span in the context the instrumentation is nil no-ops.
func RunPoint(ctx context.Context, bm bench.Benchmark, arch regconn.Arch) (*Result, error) {
	arch.Verify = true
	_, buildSpan := obs.StartSpan(ctx, "build")
	ex, err := regconn.Build(bm.Build(), arch)
	buildSpan.End()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", bm.Name, err)
	}
	arena := arenas.Get().(*regconn.Arena)
	defer arenas.Put(arena)
	execCtx, execSpan := obs.StartSpan(ctx, "execute")
	res, err := arena.VerifyContext(execCtx, ex)
	if err == nil {
		execSpan.Set("cycles", res.Cycles).Set("instrs", res.Instrs)
	}
	execSpan.End()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", bm.Name, err)
	}
	if res.RetInt != bm.Expect {
		return nil, fmt.Errorf("%s: checksum %d, want %d", bm.Name, res.RetInt, bm.Expect)
	}
	// Every experiment point continuously proves the cycle ledger closes;
	// a simulator change that loses cycles fails the whole figure.
	if err := res.CheckLedger(); err != nil {
		return nil, fmt.Errorf("%s: %w", bm.Name, err)
	}
	// res aliases the pooled arena: everything returned is copied out here
	// (Stats deep-copies the histogram and map-telemetry slices).
	return &Result{
		Cycles:   res.Cycles,
		Instrs:   res.Instrs,
		Connects: res.Connects,
		Growth:   ex.CodeGrowth(),
		SaveRest: ex.SaveRestoreGrowth(),
		Stats:    res.Stats(),
	}, nil
}

// point is one benchmark×architecture coordinate of a figure's grid.
type point struct {
	bm   bench.Benchmark
	arch regconn.Arch
}

// workers returns the effective worker-pool size.
func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forAll runs f(i) for every i in [0, n) across the bounded worker pool.
func (r *Runner) forAll(n int, f func(i int)) {
	w := r.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	sem := make(chan struct{}, w)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			f(i)
		}(i)
	}
	wg.Wait()
}

// warm simulates the given points concurrently, populating the memo cache
// so the figure's sequential pass — which keeps row order and error
// reporting deterministic — hits only memoized results. Errors are left in
// the cache for that pass to surface. When a Progress hook is set, the
// warm pass also runs in sequential mode (the hook has to see the grid
// advance), reporting after each unique point completes.
func (r *Runner) warm(pts []point) {
	progress := r.Progress
	if r.workers() <= 1 && progress == nil {
		return
	}
	seen := make(map[string]bool, len(pts))
	uniq := make([]point, 0, len(pts))
	for _, p := range pts {
		if k := key(p.bm.Name, p.arch); !seen[k] {
			seen[k] = true
			uniq = append(uniq, p)
		}
	}
	var done atomic.Int64
	r.forAll(len(uniq), func(i int) {
		_, _ = r.Run(uniq[i].bm, uniq[i].arch)
		if progress != nil {
			progress(int(done.Add(1)), len(uniq))
		}
	})
}

// warmSpeedups warms the points plus each benchmark's baseline (the
// Speedup denominator).
func (r *Runner) warmSpeedups(pts []point) {
	withBase := make([]point, 0, len(pts)+len(r.Benchmarks))
	seen := map[string]bool{}
	for _, p := range pts {
		if !seen[p.bm.Name] {
			seen[p.bm.Name] = true
			withBase = append(withBase, point{p.bm, regconn.Baseline()})
		}
		withBase = append(withBase, p)
	}
	r.warm(withBase)
}

// BaselineCycles returns the speedup denominator of §5.3 for one
// benchmark: a single-issue processor with unlimited registers and
// conventional scalar optimization.
func (r *Runner) BaselineCycles(bm bench.Benchmark) (int64, error) {
	res, err := r.Run(bm, regconn.Baseline())
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// Speedup runs the benchmark under arch and returns baseline/arch cycles.
func (r *Runner) Speedup(bm bench.Benchmark, arch regconn.Arch) (float64, error) {
	base, err := r.BaselineCycles(bm)
	if err != nil {
		return 0, err
	}
	res, err := r.Run(bm, arch)
	if err != nil {
		return 0, err
	}
	return float64(base) / float64(res.Cycles), nil
}

// archFor applies the paper's per-class convention (§5.2): integer
// benchmarks vary the integer core with a fixed 64-entry FP file; FP
// benchmarks vary the FP core with a fixed 64-entry integer file.
func archFor(bm bench.Benchmark, core int, base regconn.Arch) regconn.Arch {
	if bm.FP {
		base.FPCore = core
		base.IntCore = 64
	} else {
		base.IntCore = core
		base.FPCore = 64
	}
	return base
}

// sweepArch is the shared sweep-grid constructor: it stamps the register
// mode onto a base configuration and applies archFor's per-class core-size
// convention. Every figure's grid — and the golden ledger grid — is a
// partial application of it, so a sweep axis is added in exactly one
// place.
func sweepArch(bm bench.Benchmark, core int, mode regconn.RegMode, base regconn.Arch) regconn.Arch {
	base.Mode = mode
	return archFor(bm, core, base)
}

// IntCores and FPCores are the experimental register-file sizes of §5.2.
var (
	IntCores = []int{8, 16, 24, 32, 64}
	FPCores  = []int{16, 32, 48, 64, 128}
)

// coresFor returns the core-size axis for a benchmark's class.
func coresFor(bm bench.Benchmark) []int {
	if bm.FP {
		return FPCores
	}
	return IntCores
}

// Table is one reproduced table/figure.
type Table struct {
	ID    string // "fig8", "table1", ...
	Title string
	Cols  []string
	Rows  []Row
	Notes []string
}

// Row is one table line.
type Row struct {
	Name string
	Vals []float64
}

// AddRow appends a row.
func (t *Table) AddRow(name string, vals ...float64) {
	t.Rows = append(t.Rows, Row{name, vals})
}

// AddMeanRow appends a geometric-mean summary row over the current rows.
func (t *Table) AddMeanRow() {
	if len(t.Rows) == 0 {
		return
	}
	n := len(t.Rows[0].Vals)
	vals := make([]float64, n)
	for c := 0; c < n; c++ {
		logSum, cnt := 0.0, 0
		for _, r := range t.Rows {
			if c < len(r.Vals) && r.Vals[c] > 0 {
				logSum += math.Log(r.Vals[c])
				cnt++
			}
		}
		if cnt > 0 {
			vals[c] = math.Exp(logSum / float64(cnt))
		}
	}
	t.Rows = append(t.Rows, Row{"geomean", vals})
}

// CSV renders the table as comma-separated values (header row first) for
// plotting tools.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString("benchmark")
	for _, c := range t.Cols {
		sb.WriteByte(',')
		sb.WriteString(c)
	}
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		sb.WriteString(r.Name)
		for _, v := range r.Vals {
			fmt.Fprintf(&sb, ",%.4f", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Format renders the table as aligned ASCII text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	w := 8
	for _, c := range t.Cols {
		if len(c)+2 > w {
			w = len(c) + 2
		}
	}
	nameW := 10
	for _, r := range t.Rows {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s", nameW+2, "benchmark")
	for _, c := range t.Cols {
		fmt.Fprintf(&sb, "%*s", w, c)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", nameW+2+w*len(t.Cols)))
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-*s", nameW+2, r.Name)
		for _, v := range r.Vals {
			fmt.Fprintf(&sb, "%*.2f", w, v)
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// ErrUnknownExperiment is wrapped by Generate when the experiment id is
// not in Experiments(); callers branch with errors.Is (a bad id is the
// client's fault, a failed generation is ours).
var ErrUnknownExperiment = errors.New("unknown experiment")

// Experiments lists every reproducible experiment by id.
func Experiments() []string {
	return []string{"table1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "rivals", "models", "combined", "windows", "os", "pressure", "accum", "scenarios"}
}

// Generate dispatches on an experiment id.
func (r *Runner) Generate(id string) ([]*Table, error) {
	switch id {
	case "table1":
		return []*Table{Table1()}, nil
	case "fig7":
		t, err := r.Figure7()
		return []*Table{t}, err
	case "fig8":
		return r.Figure8()
	case "fig9":
		return r.Figure9()
	case "fig10":
		t, err := r.Figure10()
		return []*Table{t}, err
	case "fig11":
		t, err := r.Figure11()
		return []*Table{t}, err
	case "fig12":
		t, err := r.Figure12()
		return []*Table{t}, err
	case "fig13":
		t, err := r.Figure13()
		return []*Table{t}, err
	case "rivals":
		t, err := r.Rivals()
		return []*Table{t}, err
	case "models":
		t, err := r.AblationModels()
		return []*Table{t}, err
	case "combined":
		t, err := r.AblationCombined()
		return []*Table{t}, err
	case "windows":
		t, err := r.AblationWindows()
		return []*Table{t}, err
	case "os":
		t, err := r.AblationOS()
		return []*Table{t}, err
	case "pressure":
		t, err := r.AblationPressure()
		return []*Table{t}, err
	case "accum":
		t, err := r.AblationAccum()
		return []*Table{t}, err
	case "scenarios":
		t, err := r.Scenarios(ScenarioConfig{})
		return []*Table{t}, err
	}
	ids := strings.Join(Experiments(), ", ")
	return nil, fmt.Errorf("exp: %w %q (have: %s)", ErrUnknownExperiment, id, ids)
}

// sortedBench returns the runner's suite in stable order.
func (r *Runner) sortedBench() []bench.Benchmark {
	out := append([]bench.Benchmark(nil), r.Benchmarks...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].FP != out[j].FP {
			return !out[i].FP
		}
		return false // preserve suite order within class
	})
	return out
}
