package exp

import (
	"fmt"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/machine"
)

// LedgerConfig is one pinned benchmark architecture of the golden grid.
type LedgerConfig struct {
	Name string
	Arch regconn.Arch
}

// LedgerConfigs returns the four architectures pinned per benchmark by the
// golden file and the ledger invariant tests: the paper's center point
// (4-issue, 2-cycle loads, 16/32 cores, model-3 RC with combined
// connects), the spill-only and unlimited contrasts, and the
// 1-cycle-connect scenario that exercises the connect-latency interlock.
func LedgerConfigs(bm bench.Benchmark) []LedgerConfig {
	core := 16
	if bm.FP {
		core = 32
	}
	base := regconn.Arch{Issue: 4, LoadLatency: 2, CombineConnects: true, Verify: true}
	return []LedgerConfig{
		{"center-rc", sweepArch(bm, core, regconn.WithRC, base)},
		{"without-rc", sweepArch(bm, core, regconn.WithoutRC, base)},
		{"unlimited", regconn.Arch{Issue: 4, LoadLatency: 2, Mode: regconn.Unlimited, Verify: true}},
		{"rc-1cy-connect", archFor(bm, core, regconn.Arch{Issue: 4, LoadLatency: 2,
			Mode: regconn.WithRC, CombineConnects: true, ConnectLatency: 1, Verify: true})},
	}
}

// PointStats is the machine-readable statistics of one golden point.
type PointStats struct {
	Benchmark string        `json:"benchmark"`
	Config    string        `json:"config"`
	Stats     machine.Stats `json:"stats"`
}

// StatsReport simulates every golden benchmark×config point of the
// runner's suite and returns full cycle-ledger statistics per point —
// stall breakdown, issue-slot utilization histogram, and map-table
// telemetry — verifying the ledger invariant on each. It is the
// machine-readable counterpart of the golden file, fanned out across the
// runner's worker pool.
func (r *Runner) StatsReport() ([]PointStats, error) {
	type job struct {
		bm bench.Benchmark
		lc LedgerConfig
	}
	var jobs []job
	for _, bm := range r.sortedBench() {
		for _, lc := range LedgerConfigs(bm) {
			jobs = append(jobs, job{bm, lc})
		}
	}
	out := make([]PointStats, len(jobs))
	errs := make([]error, len(jobs))
	r.forAll(len(jobs), func(i int) {
		jb := jobs[i]
		ex, err := regconn.Build(jb.bm.Build(), jb.lc.Arch)
		if err != nil {
			errs[i] = fmt.Errorf("%s/%s: %w", jb.bm.Name, jb.lc.Name, err)
			return
		}
		res, err := ex.Run()
		if err != nil {
			errs[i] = fmt.Errorf("%s/%s: %w", jb.bm.Name, jb.lc.Name, err)
			return
		}
		if err := res.CheckLedger(); err != nil {
			errs[i] = fmt.Errorf("%s/%s: %w", jb.bm.Name, jb.lc.Name, err)
			return
		}
		out[i] = PointStats{Benchmark: jb.bm.Name, Config: jb.lc.Name, Stats: res.Stats()}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
