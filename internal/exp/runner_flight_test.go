package exp

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"regconn"
	"regconn/internal/bench"
)

// TestRunnerKeyCanonical: a point addressed by a legacy Mode value and the
// same point addressed by its backend registry name must share one memo
// entry — the Runner analogue of the daemon's canonical point keys. Before
// keys went through Arch.Canonical, the two spellings simulated twice and
// diverging formats could split a figure's baseline from its sweeps.
func TestRunnerKeyCanonical(t *testing.T) {
	r := NewQuickRunner()
	bm := r.Benchmarks[0]
	legacy := regconn.Arch{Issue: 1, LoadLatency: 2, Mode: regconn.WithRC, IntCore: 16, FPCore: 32}
	named := legacy
	named.Mode = 0
	named.Backend = "rc"

	res1, err := r.Run(bm, legacy)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Run(bm, named)
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Error("equivalent architectures returned distinct results (memo keyed on raw Arch?)")
	}
	r.mu.Lock()
	n := len(r.done)
	r.mu.Unlock()
	if n != 1 {
		t.Errorf("memo holds %d entries for one canonical point, want 1", n)
	}
}

// stubPoint installs a controllable runPoint: it signals start, then blocks
// until released or its flight context is canceled.
func stubPoint(r *Runner) (started chan struct{}, release chan struct{}, cancels *atomic.Int32) {
	started = make(chan struct{}, 16)
	release = make(chan struct{})
	cancels = new(atomic.Int32)
	r.runPoint = func(ctx context.Context, bm bench.Benchmark, arch regconn.Arch) (*Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &Result{Cycles: 42}, nil
		case <-ctx.Done():
			cancels.Add(1)
			return nil, context.Cause(ctx)
		}
	}
	return started, release, cancels
}

// TestRunnerWaiterSurvivesOtherCancel: with two waiters on one flight, one
// caller canceling must not cancel the execution — the patient waiter still
// gets the completed result. Run with -race: this is the regression test
// for the sync.Once runner, where the second caller inherited whatever
// context the first caller happened to start the execution with.
func TestRunnerWaiterSurvivesOtherCancel(t *testing.T) {
	r := NewQuickRunner()
	started, release, cancels := stubPoint(r)
	bm := r.Benchmarks[0]
	arch := regconn.Baseline()

	impatientCtx, impatientCancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var impatientErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, impatientErr = r.RunContext(impatientCtx, bm, arch)
	}()
	<-started // the flight is running; the impatient caller owns it so far

	var patientRes *Result
	var patientErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		patientRes, patientErr = r.RunContext(context.Background(), bm, arch)
	}()
	// Wait until the patient caller has joined the flight, then cancel the
	// impatient one: the execution must keep running.
	waiters := func() int {
		r.mu.Lock()
		g := r.flights
		r.mu.Unlock()
		if g == nil {
			return 0
		}
		return g.Waiters(key(bm.Name, arch))
	}
	for waiters() < 2 {
		runtime.Gosched()
	}
	impatientCancel()
	for waiters() > 1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if !errors.Is(impatientErr, context.Canceled) {
		t.Errorf("impatient caller error = %v, want context.Canceled", impatientErr)
	}
	if patientErr != nil {
		t.Fatalf("patient caller failed: %v", patientErr)
	}
	if patientRes == nil || patientRes.Cycles != 42 {
		t.Errorf("patient caller result = %+v, want the completed run", patientRes)
	}
	if n := cancels.Load(); n != 0 {
		t.Errorf("execution was canceled %d times despite a surviving waiter", n)
	}
	// The completed result is memoized and pointer-stable.
	again, err := r.Run(bm, arch)
	if err != nil || again != patientRes {
		t.Errorf("memoized result not stable after flight: %v %v", again, err)
	}
}

// TestRunnerCancelAllWaitersStopsExecution: when every waiter leaves, the
// execution's context is canceled and nothing is memoized — the next
// request starts fresh.
func TestRunnerCancelAllWaitersStopsExecution(t *testing.T) {
	r := NewQuickRunner()
	started, release, cancels := stubPoint(r)
	bm := r.Benchmarks[0]
	arch := regconn.Baseline()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := r.RunContext(ctx, bm, arch)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned caller error = %v, want context.Canceled", err)
	}
	for cancels.Load() == 0 {
		runtime.Gosched() // the flight notices the cancel asynchronously
	}
	r.mu.Lock()
	n := len(r.done)
	r.mu.Unlock()
	if n != 0 {
		t.Errorf("canceled execution was memoized (%d entries)", n)
	}
	// A fresh request recomputes and succeeds.
	close(release)
	res, err := r.Run(bm, arch)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the rerun's flight start signal
	if res.Cycles != 42 {
		t.Errorf("recomputed result = %+v", res)
	}
}
