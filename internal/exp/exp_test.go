package exp

import (
	"errors"
	"strings"
	"testing"

	"regconn"
	"regconn/internal/bench"
)

func quick(t *testing.T) *Runner {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment regeneration is not -short")
	}
	return NewQuickRunner()
}

func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1()
	want := map[string]float64{
		"INT ALU": 1, "INT multiply": 3, "INT divide": 10,
		"FP ALU": 3, "FP conversion": 3, "FP multiply": 3, "FP divide": 10,
		"branch": 1, "memory load": 2, "memory store": 1,
	}
	if len(tab.Rows) != len(want) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Vals[0] != want[r.Name] {
			t.Errorf("%s = %v, want %v", r.Name, r.Vals[0], want[r.Name])
		}
	}
}

func TestFigure7SpeedupGrowsWithIssue(t *testing.T) {
	r := quick(t)
	tab, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		// Monotone non-decreasing speedup with issue rate (within noise).
		for c := 1; c < len(row.Vals); c++ {
			if row.Vals[c] < row.Vals[c-1]*0.95 {
				t.Errorf("%s: speedup dropped %v", row.Name, row.Vals)
			}
		}
		// 1-issue ILP-compiled vs scalar baseline should be near 1.
		if row.Vals[0] < 0.5 || row.Vals[0] > 2.0 {
			t.Errorf("%s: 1-issue speedup %v out of range", row.Name, row.Vals[0])
		}
	}
}

func TestFigure8RCDominatesAtSmallCores(t *testing.T) {
	r := quick(t)
	tables, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(r.Benchmarks) {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tab := range tables {
		// Row 0 is the smallest core size; with-RC (col 1) must beat
		// without-RC (col 0) there.
		small := tab.Rows[0]
		if small.Vals[1] <= small.Vals[0] {
			t.Errorf("%s: with-RC %v <= without-RC %v at smallest core",
				tab.Title, small.Vals[1], small.Vals[0])
		}
		// At the largest size the two models converge.
		big := tab.Rows[len(tab.Rows)-1]
		if big.Vals[1] < big.Vals[0]*0.98 || big.Vals[1] > big.Vals[0]*1.02 {
			t.Errorf("%s: models did not converge at largest core: %v", tab.Title, big.Vals)
		}
	}
}

func TestFigure9GrowthShape(t *testing.T) {
	r := quick(t)
	tables, err := r.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		small := tab.Rows[0]
		big := tab.Rows[len(tab.Rows)-1]
		// Small cores grow code much more than large cores.
		if small.Vals[0] <= big.Vals[0] {
			t.Errorf("%s: without-RC growth not larger at small cores: %v vs %v",
				tab.Title, small.Vals[0], big.Vals[0])
		}
		if small.Vals[1] <= 0 {
			t.Errorf("%s: with-RC growth %v at smallest core", tab.Title, small.Vals[1])
		}
	}
}

func TestFigure12LittleLossFromImplementation(t *testing.T) {
	r := quick(t)
	tab, err := r.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	mean := tab.Rows[len(tab.Rows)-1] // geomean
	best := mean.Vals[0]
	worst := mean.Vals[3] // 1cy + extra stage
	if worst < best*0.90 {
		t.Errorf("implementation scenarios lose too much: best %.2f, worst %.2f", best, worst)
	}
	// All RC scenarios beat without-RC (last column).
	if mean.Vals[4] >= worst {
		t.Errorf("without-RC %.2f should trail all RC scenarios (worst %.2f)", mean.Vals[4], worst)
	}
}

func TestFigure13RCBeatsChannels(t *testing.T) {
	r := quick(t)
	tab, err := r.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	mean := tab.Rows[len(tab.Rows)-1]
	// Adding RC at 2 channels (col 2) helps more than going to 4 channels
	// without RC (col 1), at 2-cycle load.
	if mean.Vals[2] <= mean.Vals[1] {
		t.Errorf("RC at 2ch (%.2f) should beat 4ch without RC (%.2f)", mean.Vals[2], mean.Vals[1])
	}
}

// TestAllExperimentsOneBenchmark regenerates every experiment id over a
// single benchmark — full coverage of the figure generators at a fraction
// of the full-suite cost.
func TestAllExperimentsOneBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("not -short")
	}
	r := NewRunner()
	bm, err := bench.ByName("espresso")
	if err != nil {
		t.Fatal(err)
	}
	r.Benchmarks = []bench.Benchmark{bm}
	for _, id := range Experiments() {
		tabs, err := r.Generate(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, tab := range tabs {
			if len(tab.Rows) == 0 || tab.Format() == "" {
				t.Errorf("%s: empty table", id)
			}
		}
	}
}

func TestGenerateDispatch(t *testing.T) {
	r := quick(t)
	for _, id := range []string{"table1"} {
		tabs, err := r.Generate(id)
		if err != nil || len(tabs) == 0 {
			t.Errorf("generate %s: %v", id, err)
		}
	}
	if _, err := r.Generate("nosuch"); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("unknown id error = %v, want errors.Is(ErrUnknownExperiment)", err)
	} else if !strings.Contains(err.Error(), `"nosuch"`) || !strings.Contains(err.Error(), "table1") {
		t.Errorf("unknown id error %q should name the id and the valid ids", err)
	}
	if len(Experiments()) != 16 {
		t.Errorf("experiments = %d", len(Experiments()))
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Cols: []string{"a", "b"}}
	tab.AddRow("row1", 1.5, 2.25)
	tab.AddRow("row2", 3, 4)
	tab.AddMeanRow()
	s := tab.Format()
	for _, want := range []string{"X — demo", "row1", "1.50", "geomean"} {
		if !strings.Contains(s, want) {
			t.Errorf("format missing %q:\n%s", want, s)
		}
	}
	// Geomean of (1.5,3) = sqrt(4.5) ~ 2.12.
	g := tab.Rows[2].Vals[0]
	if g < 2.11 || g > 2.13 {
		t.Errorf("geomean = %v", g)
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := quick(t)
	bm := r.Benchmarks[0]
	a := regconn.Baseline()
	r1, err := r.Run(bm, a)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := r.Run(bm, a)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("memoization failed (distinct results returned)")
	}
}

func TestRunRejectsBadChecksum(t *testing.T) {
	r := NewRunner()
	bad := bench.Benchmark{Name: "bad", Paper: "x", Build: r.Benchmarks[0].Build, Expect: -1}
	if _, err := r.Run(bad, regconn.Baseline()); err == nil {
		t.Error("expected checksum mismatch error")
	}
}
