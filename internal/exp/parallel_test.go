package exp

import (
	"reflect"
	"testing"

	"regconn"
)

// TestParallelRunnerMatchesSequential: the worker-pool fan-out must be
// invisible in the output — every table is bit-for-bit identical whether
// points are simulated concurrently or one at a time. Run with -race to
// also exercise the singleflight cache under contention.
func TestParallelRunnerMatchesSequential(t *testing.T) {
	par := NewQuickRunner()
	par.Workers = 4
	seq := NewQuickRunner()
	seq.Workers = 1
	// fig7/fig13 go through the warm prepass; os fans out directly.
	for _, id := range []string{"fig7", "fig13", "os"} {
		pt, err := par.Generate(id)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		st, err := seq.Generate(id)
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		if !reflect.DeepEqual(pt, st) {
			t.Errorf("%s: parallel and sequential tables differ", id)
		}
	}
}

// TestWarmCollapsesDuplicates: concurrent requests for one point must run
// the simulation once (the cache is singleflight, not just memoizing).
func TestWarmCollapsesDuplicates(t *testing.T) {
	r := NewQuickRunner()
	r.Workers = 8
	bm := r.Benchmarks[0]
	arch := regconn.Baseline()
	pts := make([]point, 16)
	for i := range pts {
		pts[i] = point{bm, arch}
	}
	r.warm(pts)
	r.mu.Lock()
	n := len(r.done)
	r.mu.Unlock()
	if n != 1 {
		t.Errorf("memo holds %d entries after warming one duplicated point, want 1", n)
	}
}
