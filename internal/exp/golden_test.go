package exp

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"regconn"
	"regconn/internal/bench"
)

// The golden file pins the simulator's observable behaviour: every
// refactor of the execution stack must reproduce these numbers exactly
// (cycles, instruction counts, stall attribution, op mix) for all twelve
// benchmarks under the paper's center configuration and three contrasting
// register models. Regenerate with `go test ./internal/exp -run Golden -update`
// only when an intentional modelling change is made, and say why in the
// commit message.
var update = flag.Bool("update", false, "rewrite testdata/golden_center.json")

type goldenPoint struct {
	Benchmark   string  `json:"benchmark"`
	Config      string  `json:"config"`
	Cycles      int64   `json:"cycles"`
	Instrs      int64   `json:"instrs"`
	Connects    int64   `json:"connects"`
	MemOps      int64   `json:"mem_ops"`
	Mispred     int64   `json:"mispredicts"`
	RetInt      int64   `json:"ret_int"`
	StallData   int64   `json:"stall_data"`
	StallMem    int64   `json:"stall_mem"`
	StallConn   int64   `json:"stall_conn"`
	StallBranch int64   `json:"stall_branch"`
	OpMix       []int64 `json:"op_mix"`
}

// The pinned architecture grid lives in LedgerConfigs (stats.go), shared
// with rcexp -stats and the ledger invariant tests.

func collectGolden(t *testing.T) []goldenPoint {
	t.Helper()
	var pts []goldenPoint
	for _, bm := range bench.All() {
		for _, gc := range LedgerConfigs(bm) {
			ex, err := regconn.Build(bm.Build(), gc.Arch)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", bm.Name, gc.Name, err)
			}
			res, err := ex.Run()
			if err != nil {
				t.Fatalf("%s/%s: run: %v", bm.Name, gc.Name, err)
			}
			mix := make([]int64, len(res.OpMix))
			copy(mix, res.OpMix[:])
			pts = append(pts, goldenPoint{
				Benchmark:   bm.Name,
				Config:      gc.Name,
				Cycles:      res.Cycles,
				Instrs:      res.Instrs,
				Connects:    res.Connects,
				MemOps:      res.MemOps,
				Mispred:     res.Mispredicts,
				RetInt:      res.RetInt,
				StallData:   res.StallData,
				StallMem:    res.StallMem,
				StallConn:   res.StallConn,
				StallBranch: res.StallBranch,
				OpMix:       mix,
			})
		}
	}
	return pts
}

// TestGoldenSimulatorEquivalence asserts the simulator is observationally
// identical to the recorded seed behaviour for the full suite.
func TestGoldenSimulatorEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite golden run is not -short")
	}
	path := filepath.Join("testdata", "golden_center.json")
	got := collectGolden(t)
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden points to %s", len(got), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want []goldenPoint
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden points: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Benchmark != w.Benchmark || g.Config != w.Config {
			t.Fatalf("point %d: got %s/%s, want %s/%s", i, g.Benchmark, g.Config, w.Benchmark, w.Config)
		}
		if g.Cycles != w.Cycles || g.Instrs != w.Instrs || g.Connects != w.Connects ||
			g.MemOps != w.MemOps || g.Mispred != w.Mispred || g.RetInt != w.RetInt ||
			g.StallData != w.StallData || g.StallMem != w.StallMem || g.StallConn != w.StallConn ||
			g.StallBranch != w.StallBranch {
			t.Errorf("%s/%s: result drifted:\n got %+v\nwant %+v", w.Benchmark, w.Config, g, w)
			continue
		}
		for k := range w.OpMix {
			if g.OpMix[k] != w.OpMix[k] {
				t.Errorf("%s/%s: op mix class %d: got %d, want %d",
					w.Benchmark, w.Config, k, g.OpMix[k], w.OpMix[k])
			}
		}
	}
}
