package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/prof"
)

// TestAttributionMatchesLedgerOnGoldenGrid profiles every golden
// benchmark×config point and proves two things per point: the per-PC
// attribution columns sum bit-exactly to the run's ledger buckets
// (prof.CrossCheck), and enabling profiling leaves the simulation
// bit-identical to the recorded profiling-off golden behaviour — the
// observability layer observes, it never perturbs.
func TestAttributionMatchesLedgerOnGoldenGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid attribution check is not -short")
	}
	data, err := os.ReadFile(filepath.Join("testdata", "golden_center.json"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var pts []goldenPoint
	if err := json.Unmarshal(data, &pts); err != nil {
		t.Fatal(err)
	}
	want := map[string]goldenPoint{}
	for _, p := range pts {
		want[p.Benchmark+"/"+p.Config] = p
	}

	for _, bm := range bench.All() {
		bm := bm
		for _, gc := range LedgerConfigs(bm) {
			gc := gc
			t.Run(bm.Name+"/"+gc.Name, func(t *testing.T) {
				t.Parallel()
				arch := gc.Arch
				arch.Profile = true
				ex, err := regconn.Build(bm.Build(), arch)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				res, err := ex.Run()
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if res.Prof == nil {
					t.Fatal("profiled run carries no per-PC attribution")
				}
				p, err := prof.New(ex.Image, res)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.CrossCheck(); err != nil {
					t.Errorf("attribution does not sum to ledger: %v", err)
				}
				w, ok := want[bm.Name+"/"+gc.Name]
				if !ok {
					t.Fatalf("no golden point for %s/%s", bm.Name, gc.Name)
				}
				if res.Cycles != w.Cycles || res.Instrs != w.Instrs ||
					res.Connects != w.Connects || res.MemOps != w.MemOps ||
					res.Mispredicts != w.Mispred || res.RetInt != w.RetInt ||
					res.StallData != w.StallData || res.StallMem != w.StallMem ||
					res.StallConn != w.StallConn || res.StallBranch != w.StallBranch {
					t.Errorf("profiling perturbed the simulation:\n got cycles=%d instrs=%d\nwant cycles=%d instrs=%d (full golden %+v)",
						res.Cycles, res.Instrs, w.Cycles, w.Instrs, w)
				}
			})
		}
	}
}

// TestProfReportRenders smoke-tests the full report path on one real
// compiled benchmark (formatting details are golden-tested on a fixture in
// internal/prof).
func TestProfReportRenders(t *testing.T) {
	bm, err := bench.ByName("cmp")
	if err != nil {
		t.Fatal(err)
	}
	arch := LedgerConfigs(bm)[0].Arch
	arch.Profile = true
	ex, err := regconn.Build(bm.Build(), arch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	p, err := prof.New(ex.Image, res)
	if err != nil {
		t.Fatal(err)
	}
	var sink countingWriter
	if err := p.WriteReport(&sink, 10); err != nil {
		t.Fatal(err)
	}
	if sink == 0 {
		t.Error("report is empty")
	}
}

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}
