package exp

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"

	"regconn"
	"regconn/internal/bench"
)

// TestLedgerClosesOnGoldenGrid asserts Result.CheckLedger over every
// golden benchmark×config point: every simulated cycle is attributed to
// exactly one bucket and the buckets sum back to the cycle count. Under
// -short the grid is restricted to the quick three-benchmark suite.
func TestLedgerClosesOnGoldenGrid(t *testing.T) {
	suite := bench.All()
	if testing.Short() {
		suite = NewQuickRunner().Benchmarks
	}
	for _, bm := range suite {
		for _, gc := range LedgerConfigs(bm) {
			bm, gc := bm, gc
			t.Run(bm.Name+"/"+gc.Name, func(t *testing.T) {
				t.Parallel()
				ex, err := regconn.Build(bm.Build(), gc.Arch)
				if err != nil {
					t.Fatal(err)
				}
				res, err := ex.Run()
				if err != nil {
					t.Fatal(err)
				}
				if err := res.CheckLedger(); err != nil {
					t.Error(err)
				}
				if res.ActiveCycles != res.Cycles {
					t.Errorf("single-process run: active %d != cycles %d", res.ActiveCycles, res.Cycles)
				}
				if len(res.IssueHist) != gc.Arch.Issue+1 {
					t.Errorf("issue histogram has %d buckets, want %d", len(res.IssueHist), gc.Arch.Issue+1)
				}
			})
		}
	}
}

// TestLedgerWithTraps asserts the ledger still closes when trap overhead
// cycles enter the attribution: both the lightweight-handler and the
// context-switch trap models, with and without the §4.3 enable flag.
func TestLedgerWithTraps(t *testing.T) {
	bm, err := bench.ByName("cpp")
	if err != nil {
		t.Fatal(err)
	}
	base := archFor(bm, 16, regconn.Arch{Issue: 4, LoadLatency: 2,
		Mode: regconn.WithRC, CombineConnects: true})
	for _, tc := range []struct {
		name string
		trap regconn.TrapConfig
	}{
		{"handler-flag", regconn.TrapConfig{Interval: 2000, HandlerCycles: 30, HandlerRegs: 8, UseEnableFlag: true}},
		{"handler-naive", regconn.TrapConfig{Interval: 2000, HandlerCycles: 30, HandlerRegs: 8}},
		{"context-switch", regconn.TrapConfig{Interval: 10000, ContextSwitch: true, PSWFlag: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			arch := base
			arch.Trap = tc.trap
			ex, err := regconn.Build(bm.Build(), arch)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ex.Verify()
			if err != nil {
				t.Fatal(err)
			}
			if res.Traps == 0 || res.TrapOverheads == 0 {
				t.Fatalf("no traps fired: %+v", res.Stats().Ledger)
			}
			if err := res.CheckLedger(); err != nil {
				t.Error(err)
			}
			if res.ActiveCycles != res.Cycles {
				t.Errorf("active %d != cycles %d", res.ActiveCycles, res.Cycles)
			}
		})
	}
}

// TestTraceMonotonicCycles runs a branch-heavy benchmark with a full
// per-cycle trace and asserts the cycle stamps are strictly increasing:
// the line for a mispredicting cycle must carry the pre-penalty issue
// cycle, not the post-penalty clock.
func TestTraceMonotonicCycles(t *testing.T) {
	bm, err := bench.ByName("grep")
	if err != nil {
		t.Fatal(err)
	}
	arch := archFor(bm, 16, regconn.Arch{Issue: 4, LoadLatency: 2,
		Mode: regconn.WithRC, CombineConnects: true})
	ex, err := regconn.Build(bm.Build(), arch)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := ex.RunWithTrace(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mispredicts == 0 {
		t.Fatal("benchmark has no mispredicts; trace test needs a branchy workload")
	}
	prev := int64(-1)
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) == 0 {
			continue
		}
		c, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			t.Fatalf("trace line %q: %v", sc.Text(), err)
		}
		if c <= prev {
			t.Fatalf("trace not monotonic: cycle %d after %d", c, prev)
		}
		prev = c
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if int64(lines) > res.Cycles || lines == 0 {
		t.Fatalf("trace has %d lines for %d cycles", lines, res.Cycles)
	}
}
