package exp

import (
	"fmt"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/core"
	"regconn/internal/isa"
)

// Table1 reproduces the instruction-latency table (configuration, not
// measurement).
func Table1() *Table {
	l := isa.DefaultLatencies(2)
	t := &Table{
		ID:    "table1",
		Title: "Instruction latencies",
		Cols:  []string{"latency"},
		Notes: []string{"memory load latency is the experimental variable: 2 or 4 cycles",
			"branch is 1 cycle; the 1-slot cost is modeled by static prediction + misprediction flush"},
	}
	t.AddRow("INT ALU", float64(l.IntALU))
	t.AddRow("INT multiply", float64(l.IntMul))
	t.AddRow("INT divide", float64(l.IntDiv))
	t.AddRow("FP ALU", float64(l.FPALU))
	t.AddRow("FP conversion", float64(l.FPConv))
	t.AddRow("FP multiply", float64(l.FPMul))
	t.AddRow("FP divide", float64(l.FPDiv))
	t.AddRow("branch", float64(l.Branch))
	t.AddRow("memory load", 2)
	t.AddRow("memory store", float64(l.Store))
	return t
}

// Figure7 reproduces the unlimited-register speedups for issue rates
// 1/2/4/8 with the paper's default memory channels.
func (r *Runner) Figure7() (*Table, error) {
	issues := []int{1, 2, 4, 8}
	t := &Table{
		ID:    "fig7",
		Title: "Speedup, unlimited registers, varying issue rate and memory channels",
		Cols:  []string{"1-issue", "2-issue", "4-issue", "8-issue"},
		Notes: []string{"2 memory channels for 1/2/4-issue, 4 for 8-issue (§5.2)",
			"baseline: 1-issue, unlimited registers, scalar optimization only"},
	}
	arch := func(is int) regconn.Arch {
		return regconn.Arch{Issue: is, LoadLatency: 2, Mode: regconn.Unlimited}
	}
	var pts []point
	for _, bm := range r.sortedBench() {
		for _, is := range issues {
			pts = append(pts, point{bm, arch(is)})
		}
	}
	r.warmSpeedups(pts)
	for _, bm := range r.sortedBench() {
		var vals []float64
		for _, is := range issues {
			s, err := r.Speedup(bm, arch(is))
			if err != nil {
				return nil, err
			}
			vals = append(vals, s)
		}
		t.AddRow(bm.Name, vals...)
	}
	t.AddMeanRow()
	return t, nil
}

// Figure8 reproduces speedup vs core register count for a 4-issue
// processor with 2-cycle loads: without-RC and with-RC per size, with the
// unlimited-register speedup as the dotted-line reference.
func (r *Runner) Figure8() ([]*Table, error) {
	grid := func(bm bench.Benchmark, m int, mode regconn.RegMode) regconn.Arch {
		return sweepArch(bm, m, mode, regconn.Arch{Issue: 4, LoadLatency: 2, CombineConnects: true})
	}
	unlArch := regconn.Arch{Issue: 4, LoadLatency: 2, Mode: regconn.Unlimited}
	var pts []point
	for _, bm := range r.sortedBench() {
		for _, m := range coresFor(bm) {
			pts = append(pts, point{bm, grid(bm, m, regconn.WithoutRC)}, point{bm, grid(bm, m, regconn.WithRC)})
		}
		pts = append(pts, point{bm, unlArch})
	}
	r.warmSpeedups(pts)
	var tables []*Table
	for _, bm := range r.sortedBench() {
		cores := coresFor(bm)
		t := &Table{
			ID:    "fig8",
			Title: fmt.Sprintf("Speedup vs core registers, 4-issue, 2-cycle load — %s (%s)", bm.Name, bm.Paper),
			Cols:  []string{"without-RC", "with-RC"},
		}
		for _, m := range cores {
			noRC, err := r.Speedup(bm, grid(bm, m, regconn.WithoutRC))
			if err != nil {
				return nil, err
			}
			rc, err := r.Speedup(bm, grid(bm, m, regconn.WithRC))
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%s/m=%d", bm.Name, m), noRC, rc)
		}
		unl, err := r.Speedup(bm, unlArch)
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("unlimited-register speedup (dotted line): %.2f", unl))
		tables = append(tables, t)
	}
	return tables, nil
}

// Figure9 reproduces the percentage code-size increase due to register
// allocation for the Figure 8 grid; the with-RC save/restore share is the
// black portion of the paper's bars.
func (r *Runner) Figure9() ([]*Table, error) {
	grid := func(bm bench.Benchmark, m int, mode regconn.RegMode) regconn.Arch {
		return sweepArch(bm, m, mode, regconn.Arch{Issue: 4, LoadLatency: 2, CombineConnects: true})
	}
	var pts []point
	for _, bm := range r.sortedBench() {
		for _, m := range coresFor(bm) {
			pts = append(pts, point{bm, grid(bm, m, regconn.WithoutRC)}, point{bm, grid(bm, m, regconn.WithRC)})
		}
	}
	r.warm(pts)
	var tables []*Table
	for _, bm := range r.sortedBench() {
		cores := coresFor(bm)
		t := &Table{
			ID:    "fig9",
			Title: fmt.Sprintf("%% code-size increase after allocation — %s (%s)", bm.Name, bm.Paper),
			Cols:  []string{"without-RC%", "with-RC%", "save/rest%"},
		}
		for _, m := range cores {
			noRC, err := r.Run(bm, grid(bm, m, regconn.WithoutRC))
			if err != nil {
				return nil, err
			}
			rc, err := r.Run(bm, grid(bm, m, regconn.WithRC))
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%s/m=%d", bm.Name, m),
				noRC.Growth*100, rc.Growth*100, rc.SaveRest*100)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// figure1011 is the shared shape of Figures 10 and 11: 16 core integer /
// 32 core FP registers, issue rates 2/4/8, at the given load latency.
func (r *Runner) figure1011(id string, load int) (*Table, error) {
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("Speedup, %d-cycle load, 16 int / 32 fp cores, varying issue rate", load),
		Cols:  []string{"2/noRC", "2/RC", "4/noRC", "4/RC", "8/noRC", "8/RC", "unlim-4"},
	}
	grid := func(bm bench.Benchmark, is int, mode regconn.RegMode) regconn.Arch {
		return sweepArch(bm, core1632(bm), mode,
			regconn.Arch{Issue: is, LoadLatency: load, CombineConnects: true})
	}
	unlArch := regconn.Arch{Issue: 4, LoadLatency: load, Mode: regconn.Unlimited}
	var pts []point
	for _, bm := range r.sortedBench() {
		for _, is := range []int{2, 4, 8} {
			pts = append(pts, point{bm, grid(bm, is, regconn.WithoutRC)}, point{bm, grid(bm, is, regconn.WithRC)})
		}
		pts = append(pts, point{bm, unlArch})
	}
	r.warmSpeedups(pts)
	for _, bm := range r.sortedBench() {
		var vals []float64
		for _, is := range []int{2, 4, 8} {
			noRC, err := r.Speedup(bm, grid(bm, is, regconn.WithoutRC))
			if err != nil {
				return nil, err
			}
			rc, err := r.Speedup(bm, grid(bm, is, regconn.WithRC))
			if err != nil {
				return nil, err
			}
			vals = append(vals, noRC, rc)
		}
		unl, err := r.Speedup(bm, unlArch)
		if err != nil {
			return nil, err
		}
		vals = append(vals, unl)
		t.AddRow(bm.Name, vals...)
	}
	t.AddMeanRow()
	return t, nil
}

// Figure10 is the 2-cycle-load issue-rate sweep.
func (r *Runner) Figure10() (*Table, error) { return r.figure1011("fig10", 2) }

// Figure11 is the 4-cycle-load issue-rate sweep.
func (r *Runner) Figure11() (*Table, error) { return r.figure1011("fig11", 4) }

// Figure12 compares the four RC implementation scenarios: zero-cycle
// connects, zero-cycle plus an extra decode stage, one-cycle connects, and
// one-cycle plus the extra stage.
func (r *Runner) Figure12() (*Table, error) {
	t := &Table{
		ID:    "fig12",
		Title: "Speedup by RC implementation scenario, 4-issue, 2-cycle load, 16/32 cores",
		Cols:  []string{"0cy", "0cy+stage", "1cy", "1cy+stage", "without-RC"},
	}
	scenarios := []struct {
		lat   int
		stage bool
	}{{0, false}, {0, true}, {1, false}, {1, true}}
	scArch := func(bm bench.Benchmark, lat int, stage bool) regconn.Arch {
		return archFor(bm, core1632(bm), regconn.Arch{Issue: 4, LoadLatency: 2, Mode: regconn.WithRC,
			CombineConnects: true, ConnectLatency: lat, ExtraDecodeStage: stage})
	}
	noArch := func(bm bench.Benchmark) regconn.Arch {
		return archFor(bm, core1632(bm), regconn.Arch{Issue: 4, LoadLatency: 2, Mode: regconn.WithoutRC})
	}
	var pts []point
	for _, bm := range r.sortedBench() {
		for _, sc := range scenarios {
			pts = append(pts, point{bm, scArch(bm, sc.lat, sc.stage)})
		}
		pts = append(pts, point{bm, noArch(bm)})
	}
	r.warmSpeedups(pts)
	for _, bm := range r.sortedBench() {
		var vals []float64
		for _, sc := range scenarios {
			s, err := r.Speedup(bm, scArch(bm, sc.lat, sc.stage))
			if err != nil {
				return nil, err
			}
			vals = append(vals, s)
		}
		noRC, err := r.Speedup(bm, noArch(bm))
		if err != nil {
			return nil, err
		}
		vals = append(vals, noRC)
		t.AddRow(bm.Name, vals...)
	}
	t.AddMeanRow()
	return t, nil
}

// Figure13 compares the gain from doubling memory channels (2 to 4)
// against the gain from adding RC, for a 4-issue processor at both load
// latencies.
func (r *Runner) Figure13() (*Table, error) {
	t := &Table{
		ID:    "fig13",
		Title: "Speedup: memory channels vs RC, 4-issue, 2- and 4-cycle load, 16/32 cores",
		Cols:  []string{"L2/no/2ch", "L2/no/4ch", "L2/RC/2ch", "L4/no/2ch", "L4/no/4ch", "L4/RC/2ch"},
		Notes: []string{"paper's comparison: the without-RC model gains less from 2->4 channels than from adding RC at 2 channels"},
	}
	cfgs := []struct {
		mode regconn.RegMode
		ch   int
	}{{regconn.WithoutRC, 2}, {regconn.WithoutRC, 4}, {regconn.WithRC, 2}}
	mkArch := func(bm bench.Benchmark, load int, mode regconn.RegMode, ch int) regconn.Arch {
		return sweepArch(bm, core1632(bm), mode, regconn.Arch{Issue: 4, LoadLatency: load,
			MemChannels: ch, CombineConnects: true})
	}
	var pts []point
	for _, bm := range r.sortedBench() {
		for _, load := range []int{2, 4} {
			for _, cfg := range cfgs {
				pts = append(pts, point{bm, mkArch(bm, load, cfg.mode, cfg.ch)})
			}
		}
	}
	r.warmSpeedups(pts)
	for _, bm := range r.sortedBench() {
		var vals []float64
		for _, load := range []int{2, 4} {
			for _, cfg := range cfgs {
				s, err := r.Speedup(bm, mkArch(bm, load, cfg.mode, cfg.ch))
				if err != nil {
					return nil, err
				}
				vals = append(vals, s)
			}
		}
		t.AddRow(bm.Name, vals...)
	}
	t.AddMeanRow()
	return t, nil
}

// Rivals compares the five register architectures at the paper's pressured
// 16/32-core operating point: spill-only and RC from the paper, the two
// extension backends (reduced read ports; producer-consumer chaining), and
// the unlimited-register reference.
func (r *Runner) Rivals() (*Table, error) {
	t := &Table{
		ID:    "rivals",
		Title: "Speedup by register backend, 4-issue, 2-cycle load, 16/32 cores",
		Cols:  []string{"spill", "rc", "portreduce", "chain", "unlimited"},
		Notes: []string{
			"portreduce: the full 256-register file addressed directly, read ports = issue rate",
			"chain: core registers only, plus producer->consumer forwarding that elides single-use RF traffic",
		},
	}
	modes := []regconn.RegMode{regconn.WithoutRC, regconn.WithRC, regconn.PortReduce, regconn.Chain}
	base := regconn.Arch{Issue: 4, LoadLatency: 2, CombineConnects: true}
	unlArch := regconn.Arch{Issue: 4, LoadLatency: 2, Mode: regconn.Unlimited}
	var pts []point
	for _, bm := range r.sortedBench() {
		for _, m := range modes {
			pts = append(pts, point{bm, sweepArch(bm, core1632(bm), m, base)})
		}
		pts = append(pts, point{bm, unlArch})
	}
	r.warmSpeedups(pts)
	for _, bm := range r.sortedBench() {
		var vals []float64
		for _, m := range modes {
			s, err := r.Speedup(bm, sweepArch(bm, core1632(bm), m, base))
			if err != nil {
				return nil, err
			}
			vals = append(vals, s)
		}
		unl, err := r.Speedup(bm, unlArch)
		if err != nil {
			return nil, err
		}
		vals = append(vals, unl)
		t.AddRow(bm.Name, vals...)
	}
	t.AddMeanRow()
	return t, nil
}

// AblationModels compares the four automatic-reset models of §2.3 under
// identical pressure: speedup and dynamic connect counts.
func (r *Runner) AblationModels() (*Table, error) {
	t := &Table{
		ID:    "models",
		Title: "RC automatic-reset models (§2.3): speedup | dynamic connects (millions x0.01)",
		Cols:  []string{"m1", "m2", "m3", "m4", "m1-con", "m2-con", "m3-con", "m4-con"},
		Notes: []string{"model 3 (write reset + read update) is the paper's choice"},
	}
	mkArch := func(bm bench.Benchmark, model int) regconn.Arch {
		return archFor(bm, core1632(bm), regconn.Arch{Issue: 4, LoadLatency: 2,
			Mode: regconn.WithRC, CombineConnects: true, Model: modelOf(model)})
	}
	var pts []point
	for _, bm := range r.sortedBench() {
		for model := 1; model <= 4; model++ {
			pts = append(pts, point{bm, mkArch(bm, model)})
		}
	}
	r.warmSpeedups(pts)
	for _, bm := range r.sortedBench() {
		var speed, conns []float64
		for model := 1; model <= 4; model++ {
			arch := mkArch(bm, model)
			s, err := r.Speedup(bm, arch)
			if err != nil {
				return nil, err
			}
			res, err := r.Run(bm, arch)
			if err != nil {
				return nil, err
			}
			speed = append(speed, s)
			conns = append(conns, float64(res.Connects)/10000)
		}
		t.AddRow(bm.Name, append(speed, conns...)...)
	}
	return t, nil
}

// AblationCombined compares combined (two-pair) connect instructions
// against single-pair connects (§2.2, footnote 1).
func (r *Runner) AblationCombined() (*Table, error) {
	t := &Table{
		ID:    "combined",
		Title: "Combined vs single connect instructions (§2.2)",
		Cols:  []string{"combined", "single", "comb-con", "sing-con"},
	}
	mkArch := func(bm bench.Benchmark, combine bool) regconn.Arch {
		return archFor(bm, core1632(bm), regconn.Arch{Issue: 4, LoadLatency: 2,
			Mode: regconn.WithRC, CombineConnects: combine})
	}
	var pts []point
	for _, bm := range r.sortedBench() {
		pts = append(pts, point{bm, mkArch(bm, true)}, point{bm, mkArch(bm, false)})
	}
	r.warmSpeedups(pts)
	for _, bm := range r.sortedBench() {
		var vals []float64
		var cons []float64
		for _, combine := range []bool{true, false} {
			arch := mkArch(bm, combine)
			s, err := r.Speedup(bm, arch)
			if err != nil {
				return nil, err
			}
			res, err := r.Run(bm, arch)
			if err != nil {
				return nil, err
			}
			vals = append(vals, s)
			cons = append(cons, float64(res.Connects)/10000)
		}
		t.AddRow(bm.Name, append(vals, cons...)...)
	}
	return t, nil
}

// AblationWindows compares connect-window selection policies (§3: the map
// entry used to access an extended register is arbitrary for correctness
// but shapes the artificial dependences and the connect count).
func (r *Runner) AblationWindows() (*Table, error) {
	t := &Table{
		ID:    "windows",
		Title: "Connect-window policy (§3): speedup | dynamic connects (x0.01M), 4-issue, 16/32 cores",
		Cols:  []string{"lru", "rrobin", "first", "lru-con", "rrobin-con", "first-con"},
	}
	policies := []regconn.WindowPolicy{regconn.WindowLRU, regconn.WindowRoundRobin, regconn.WindowFirstFree}
	mkArch := func(bm bench.Benchmark, pol regconn.WindowPolicy) regconn.Arch {
		return archFor(bm, core1632(bm), regconn.Arch{Issue: 4, LoadLatency: 2,
			Mode: regconn.WithRC, CombineConnects: true, Windows: pol})
	}
	var pts []point
	for _, bm := range r.sortedBench() {
		for _, pol := range policies {
			pts = append(pts, point{bm, mkArch(bm, pol)})
		}
	}
	r.warmSpeedups(pts)
	for _, bm := range r.sortedBench() {
		var speed, cons []float64
		for _, pol := range policies {
			arch := mkArch(bm, pol)
			s, err := r.Speedup(bm, arch)
			if err != nil {
				return nil, err
			}
			res, err := r.Run(bm, arch)
			if err != nil {
				return nil, err
			}
			speed = append(speed, s)
			cons = append(cons, float64(res.Connects)/10000)
		}
		t.AddRow(bm.Name, append(speed, cons...)...)
	}
	return t, nil
}

// core1632 is the paper's pressured operating point: 16 integer or 32
// floating-point core registers by benchmark class.
func core1632(bm bench.Benchmark) int {
	if bm.FP {
		return 32
	}
	return 16
}

func modelOf(n int) core.Model { return core.Model(n) }
