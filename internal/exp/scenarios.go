package exp

import (
	"fmt"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/workload"
)

// ScenarioConfig selects the generated workloads the scenarios experiment
// sweeps: the named profiles (nil = every registered profile) at the
// given seeds (nil = DefaultScenarioSeeds). Zero value = full default
// sweep.
type ScenarioConfig struct {
	Profiles []string
	Seeds    []int64
}

// DefaultScenarioSeeds is the seed set the scenarios experiment (and the
// verify smoke) runs when none is given: three programs per profile keeps
// the default sweep minutes-scale while still exposing per-seed variance.
var DefaultScenarioSeeds = []int64{0, 1, 2}

// ScenarioBenchmarks resolves the configuration into oracle-pinned
// benchmarks, profile-major then seed-major — the row order of the table.
// Every workload is generated and interpreter-checked here, so a
// generator regression fails fast, before any simulation.
func ScenarioBenchmarks(cfg ScenarioConfig) ([]bench.Benchmark, error) {
	profiles := cfg.Profiles
	if len(profiles) == 0 {
		profiles = workload.ProfileNames()
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = DefaultScenarioSeeds
	}
	bms := make([]bench.Benchmark, 0, len(profiles)*len(seeds))
	for _, p := range profiles {
		for _, seed := range seeds {
			bm, err := workload.Spec{Profile: p, Seed: seed}.Generate()
			if err != nil {
				return nil, fmt.Errorf("exp: scenarios: %w", err)
			}
			bms = append(bms, bm)
		}
	}
	return bms, nil
}

// Scenarios sweeps generated workloads across every register backend —
// the rivals comparison on synthetic scenarios instead of the paper
// suite. Each row is one gen/<profile>/<seed> workload; columns are
// speedups over the §5.3 scalar baseline, and every point passes the
// interpreter oracle and the cycle ledger like any other experiment
// point.
func (r *Runner) Scenarios(cfg ScenarioConfig) (*Table, error) {
	bms, err := ScenarioBenchmarks(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "scenarios",
		Title: "Generated workloads: speedup by register backend, 4-issue, 2-cycle load, 16/32 cores",
		Cols:  []string{"spill", "rc", "portreduce", "chain", "unlimited"},
		Notes: []string{
			"rows are seeded scenario-generator workloads (internal/workload); every point is oracle- and ledger-checked",
		},
	}
	modes := []regconn.RegMode{regconn.WithoutRC, regconn.WithRC, regconn.PortReduce, regconn.Chain}
	base := regconn.Arch{Issue: 4, LoadLatency: 2, CombineConnects: true}
	unlArch := regconn.Arch{Issue: 4, LoadLatency: 2, Mode: regconn.Unlimited}
	var pts []point
	for _, bm := range bms {
		for _, m := range modes {
			pts = append(pts, point{bm, sweepArch(bm, core1632(bm), m, base)})
		}
		pts = append(pts, point{bm, unlArch})
	}
	r.warmSpeedups(pts)
	for _, bm := range bms {
		var vals []float64
		for _, m := range modes {
			s, err := r.Speedup(bm, sweepArch(bm, core1632(bm), m, base))
			if err != nil {
				return nil, err
			}
			vals = append(vals, s)
		}
		unl, err := r.Speedup(bm, unlArch)
		if err != nil {
			return nil, err
		}
		vals = append(vals, unl)
		t.AddRow(bm.Name, vals...)
	}
	t.AddMeanRow()
	return t, nil
}
