package machine

import "regconn/internal/isa"

// Issue stage: the in-order interlocks of the simulated pipeline. Each
// register operand is resolved through the mapping table at most once per
// cycle — resolutions are cached per map index and stamped with the
// table's generation counter (core.MapTable.Gen), which advances only when
// a connect, automatic reset, context restore, or enable flip actually
// changes a mapping. Execute (exec.go) reads the same cache, so an
// instruction that issues resolves each operand exactly once.

// physReadI returns the physical register behind a source access of
// integer map index n.
func (s *simState) physReadI(n int) int {
	if g := s.tabI.Gen(); s.rStampI[n] != g {
		s.rPhysI[n] = int32(s.tabI.ReadPhys(n))
		s.rStampI[n] = g
		s.res.ResolveMisses++
	} else {
		s.res.ResolveHits++
	}
	return int(s.rPhysI[n])
}

// physWriteI returns the physical register a write through integer map
// index n will go to (without committing the write; see simState.setI).
func (s *simState) physWriteI(n int) int {
	if g := s.tabI.Gen(); s.wStampI[n] != g {
		s.wPhysI[n] = int32(s.tabI.WritePhys(n))
		s.wStampI[n] = g
		s.res.ResolveMisses++
	} else {
		s.res.ResolveHits++
	}
	return int(s.wPhysI[n])
}

// physReadF and physWriteF are the floating-point file equivalents.
func (s *simState) physReadF(n int) int {
	if g := s.tabF.Gen(); s.rStampF[n] != g {
		s.rPhysF[n] = int32(s.tabF.ReadPhys(n))
		s.rStampF[n] = g
		s.res.ResolveMisses++
	} else {
		s.res.ResolveHits++
	}
	return int(s.rPhysF[n])
}

func (s *simState) physWriteF(n int) int {
	if g := s.tabF.Gen(); s.wStampF[n] != g {
		s.wPhysF[n] = int32(s.tabF.WritePhys(n))
		s.wStampF[n] = g
		s.res.ResolveMisses++
	} else {
		s.res.ResolveHits++
	}
	return int(s.wPhysF[n])
}

// lastConnect returns the cycle of the last connect touching the register's
// map entry (-1 if never).
func (s *simState) lastConnect(r isa.Reg) int64 {
	if r.Class == isa.ClassFloat {
		return s.lcF[r.N]
	}
	return s.lcI[r.N]
}

// canIssue applies the in-order issue interlocks: source operands ready
// (CRAY-1 style), destination not pending (scoreboard WAW), a free memory
// channel for loads/stores, and — under 1-cycle connect latency — no
// same-cycle connect on a referenced map entry.
func (s *simState) canIssue(u *uop, cycle int64, memUsed int) (bool, stallReason) {
	if u.Mem && memUsed >= s.cfg.MemChannels {
		return false, stallMem
	}
	// Map-entry connect-latency interlock.
	if s.cfg.ConnectLatency > 0 {
		if d := u.Dst; d.Valid() && s.lastConnect(d) >= cycle {
			return false, stallConn
		}
		for _, r := range u.Uses() {
			if s.lastConnect(r) >= cycle {
				return false, stallConn
			}
		}
	}
	// Source readiness through the mapping table. A chain-forwarded slot
	// skips the interlock: the producer's value forwards within the cycle.
	for k, r := range u.Uses() {
		if u.chainIn && u.chainSkip[k] {
			continue
		}
		if r.Class == isa.ClassFloat {
			if s.rdyF[s.physReadF(r.N)] > cycle {
				return false, stallData
			}
		} else if p := s.physReadI(r.N); p != isa.RegZero && s.rdyI[p] > cycle {
			return false, stallData
		}
	}
	if d := u.Dst; d.Valid() && !u.chainDst {
		if d.Class == isa.ClassFloat {
			if s.rdyF[s.physWriteF(d.N)] > cycle {
				return false, stallData
			}
		} else if p := s.physWriteI(d.N); p != isa.RegZero && s.rdyI[p] > cycle {
			return false, stallData
		}
	}
	// Register-file read-port hazard (Config.ReadPorts): the instruction
	// issues only if its not-yet-read distinct source registers fit in
	// the remaining ports of each class. Commit is safe here — a canIssue
	// success always issues.
	if s.cfg.ReadPorts > 0 {
		var newI, newF [3]int
		needI, needF := 0, 0
	uses:
		for _, r := range u.Uses() {
			if r.Class == isa.ClassFloat {
				p := s.physReadF(r.N)
				if s.portStampF[p] == cycle {
					continue
				}
				for _, q := range newF[:needF] {
					if q == p {
						continue uses
					}
				}
				newF[needF] = p
				needF++
			} else {
				p := s.physReadI(r.N)
				if p == isa.RegZero || s.portStampI[p] == cycle {
					continue
				}
				for _, q := range newI[:needI] {
					if q == p {
						continue uses
					}
				}
				newI[needI] = p
				needI++
			}
		}
		if s.portCntI+needI > s.cfg.ReadPorts || s.portCntF+needF > s.cfg.ReadPorts {
			return false, stallPorts
		}
		for _, p := range newI[:needI] {
			s.portStampI[p] = cycle
		}
		s.portCntI += needI
		for _, p := range newF[:needF] {
			s.portStampF[p] = cycle
		}
		s.portCntF += needF
	}
	return true, stallNone
}
