// Package machine is the execution-driven simulator: a generic in-order
// superscalar processor with CRAY-1-style register interlocking, the
// deterministic latencies of Table 1, a configurable number of memory
// channels, and the register-connection hardware of §2 (mapping table with
// read/write maps, zero- or one-cycle connects, the four automatic-reset
// models, map reset on CALL/RET, and an optional extra decode stage).
// Functional execution and timing run together, so every simulated
// configuration also validates against the IR interpreter's output.
package machine

import (
	"fmt"

	"regconn/internal/codegen"
	"regconn/internal/isa"
	"regconn/internal/mem"
)

// Image is a loaded (linked) machine program.
type Image struct {
	Code      []isa.Instr
	Ann       []codegen.Annot // 1:1 with Code (chain-forwarding marks)
	FuncStart map[string]int
	Entry     int
	Layout    mem.Layout
	Prog      *codegen.MProg
}

// Load links a machine program: functions are concatenated, local branch
// targets become absolute instruction addresses, CALL symbols resolve to
// entry addresses, and LGA pseudo-instructions become absolute MOVIs.
func Load(mp *codegen.MProg) (*Image, error) {
	img := &Image{FuncStart: map[string]int{}, Prog: mp}
	img.Layout = mem.ComputeLayout(mp.IR)
	for _, f := range mp.Funcs {
		img.FuncStart[f.Name] = len(img.Code)
		for i := range f.Code {
			in := f.Code[i]
			if in.Op == isa.BR || in.Op.IsCondBranch() {
				in.Target += img.FuncStart[f.Name]
			}
			img.Code = append(img.Code, in)
			img.Ann = append(img.Ann, f.Ann[i])
		}
	}
	for i := range img.Code {
		in := &img.Code[i]
		switch in.Op {
		case isa.CALL:
			start, ok := img.FuncStart[in.Sym]
			if !ok {
				return nil, fmt.Errorf("machine: unresolved call target %q", in.Sym)
			}
			in.Target = start
		case isa.LGA:
			base, ok := img.Layout[in.Sym]
			if !ok {
				return nil, fmt.Errorf("machine: unresolved global %q", in.Sym)
			}
			in.Op = isa.MOVI
			in.Imm += base
			in.Sym = ""
		}
	}
	entry, ok := img.FuncStart[mp.Entry]
	if !ok {
		return nil, fmt.Errorf("machine: no entry function %q", mp.Entry)
	}
	img.Entry = entry
	return img, nil
}

// FuncAt returns the name of the function containing the static instruction
// at pc — the function with the largest start not past pc ("?" when pc is
// outside the image). Used to contextualize runtime errors; it is not on
// any hot path.
func (img *Image) FuncAt(pc int) string {
	if pc < 0 || pc >= len(img.Code) {
		return "?"
	}
	best, name := -1, "?"
	for f, start := range img.FuncStart {
		if start <= pc && start > best {
			best, name = start, f
		}
	}
	return name
}
