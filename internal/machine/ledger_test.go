package machine

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"regconn/internal/isa"
)

// mispredictProg is a single guaranteed-mispredicted branch.
func mispredictProg() []isa.Instr {
	return []isa.Instr{
		movi(2, 1),
		{Op: isa.BEQ, A: isa.IntReg(2), Imm: 1, UseImm: true, Target: 3, Pred: false},
		movi(2, 99), // skipped
		halt(),
	}
}

// TestStallBranchCountsPenalty: the mispredict refill penalty must land in
// StallBranch (basePenalty cycles, +1 with the extra decode stage), and
// the ledger must close either way.
func TestStallBranchCountsPenalty(t *testing.T) {
	c := DefaultConfig()
	base := run(t, asm(mispredictProg()...), c)
	if base.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d", base.Mispredicts)
	}
	if base.StallBranch != basePenalty {
		t.Errorf("StallBranch = %d, want %d", base.StallBranch, int64(basePenalty))
	}
	cs := c
	cs.ExtraDecodeStage = true
	stage := run(t, asm(mispredictProg()...), cs)
	if stage.StallBranch != basePenalty+1 {
		t.Errorf("extra-stage StallBranch = %d, want %d", stage.StallBranch, int64(basePenalty+1))
	}
	for _, r := range []*Result{base, stage} {
		if err := r.CheckLedger(); err != nil {
			t.Error(err)
		}
		if r.ActiveCycles != r.Cycles {
			t.Errorf("active %d != cycles %d", r.ActiveCycles, r.Cycles)
		}
	}
}

// TestIssueHistogram pins the per-cycle issue-slot utilization: four
// independent MOVIs at 4-issue fill one cycle completely, and the HALT
// fetch occupies a final zero-issue cycle attributed to HaltCycles.
func TestIssueHistogram(t *testing.T) {
	img := asm(movi(2, 1), movi(3, 2), movi(4, 3), movi(5, 4), halt())
	res := run(t, img, DefaultConfig())
	if res.Cycles != 2 {
		t.Fatalf("cycles = %d, want 2", res.Cycles)
	}
	if res.IssueHist[4] != 1 || res.IssueHist[0] != 1 {
		t.Errorf("issue hist = %v, want one full cycle and one halt cycle", res.IssueHist)
	}
	if res.HaltCycles != 1 {
		t.Errorf("halt cycles = %d, want 1", res.HaltCycles)
	}
	if err := res.CheckLedger(); err != nil {
		t.Error(err)
	}
}

// TestResolutionCacheTelemetry: a tight loop over home registers should
// resolve operands mostly from the per-map-entry cache.
func TestResolutionCacheTelemetry(t *testing.T) {
	res := run(t, coreProg(500), DefaultConfig())
	if res.ResolveMisses == 0 {
		t.Error("expected cold resolution misses")
	}
	if res.ResolveHits <= res.ResolveMisses {
		t.Errorf("loop should hit the resolution cache: hits=%d misses=%d",
			res.ResolveHits, res.ResolveMisses)
	}
}

// TestMapTelemetryCaptured: connects and model-3 automatic resets must
// show up in the map-table snapshot of the result.
func TestMapTelemetryCaptured(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.CONDEF, CIdx: [2]uint16{3}, CPhys: [2]uint16{10}, CClass: isa.ClassInt},
		movi(3, 7), // write through the diverted entry: model-3 auto reset
		add(2, 3, 0),
		halt(),
	}
	c := DefaultConfig()
	c.IntCore, c.IntTotal = 8, 16
	c.FPCore, c.FPTotal = 8, 16
	res := run(t, asm(prog...), c)
	if res.MapInt.ConnectDefs != 1 {
		t.Errorf("connect defs = %d, want 1", res.MapInt.ConnectDefs)
	}
	if res.MapInt.AutoResets == 0 {
		t.Error("model-3 write should have auto-reset the map")
	}
	if res.MapInt.GenAdvances == 0 {
		t.Error("generation counter never advanced")
	}
}

// TestMultiprogrammedLedger: the global clock must equal the processes'
// own active cycles plus switch overhead, with per-process ledgers closed.
func TestMultiprogrammedLedger(t *testing.T) {
	imgs := []*Image{rcProg(111, 2000), rcProg(222, 2000), coreProg(2000)}
	res, err := RunMultiprogrammed(imgs, multiCfg(), 300, FullSave)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckLedger(); err != nil {
		t.Fatal(err)
	}
	if res.MapInt.Restores == 0 {
		t.Error("full-save switching should restore map contexts")
	}
}

// TestNoSwitchChargeAfterFinalHalt: once the last runnable process halts
// there is nothing to switch to, so the OS charges no further save cost.
// A single process that finishes inside its first quantum pays for no
// context switch at all.
func TestNoSwitchChargeAfterFinalHalt(t *testing.T) {
	res, err := RunMultiprogrammed([]*Image{coreProg(100)}, multiCfg(), 1<<20, FullSave)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 0 || res.SwitchCycles != 0 {
		t.Errorf("lone process charged %d switches (%d cycles)", res.Switches, res.SwitchCycles)
	}
	if res.Cycles != res.Results[0].ActiveCycles {
		t.Errorf("global clock %d != process active cycles %d", res.Cycles, res.Results[0].ActiveCycles)
	}
	if err := res.CheckLedger(); err != nil {
		t.Error(err)
	}

	// Two processes that both halt in their first quantum: only the switch
	// away from the first is charged.
	two, err := RunMultiprogrammed([]*Image{coreProg(100), coreProg(100)}, multiCfg(), 1<<20, FullSave)
	if err != nil {
		t.Fatal(err)
	}
	if two.Switches != 1 {
		t.Errorf("switches = %d, want 1 (no charge after the final halt)", two.Switches)
	}
	if err := two.CheckLedger(); err != nil {
		t.Error(err)
	}
}

// TestTraceStampsPrePenaltyCycle pins the mispredict trace fix: the
// branch's trace line carries the cycle it issued in, and the next line
// resumes after the penalty, keeping stamps strictly increasing.
func TestTraceStampsPrePenaltyCycle(t *testing.T) {
	var buf bytes.Buffer
	c := cfg1()
	c.Trace = &buf
	res := run(t, asm(mispredictProg()...), c)
	if res.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d", res.Mispredicts)
	}
	var stamps []int64
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		cyc, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		stamps = append(stamps, cyc)
	}
	// 1-issue: movi at 0, branch issues at 1 (penalty pushes the clock to
	// 4), halt fetched at 4.
	want := []int64{0, 1, 4}
	if len(stamps) != len(want) {
		t.Fatalf("trace stamps %v, want %v", stamps, want)
	}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("trace stamps %v, want %v (branch line must carry the pre-penalty cycle)", stamps, want)
		}
	}
}
