package machine

import (
	"context"
	"fmt"

	"regconn/internal/core"
)

// Multiprogrammed execution (paper §4.2, made functional rather than a
// cost model): several processes time-share ONE physical register file and
// mapping table. At each quantum boundary the "operating system" saves the
// outgoing process's architectural state into its process control block
// and restores the incoming one's. FullSave preserves core registers,
// extended registers, and the connection state — the paper's requirement
// for RC-extended processes. CoreOnlySave models a pre-RC operating system
// that saves only the core registers: original-architecture binaries still
// run correctly, and RC-extended binaries are silently corrupted — exactly
// the hazard §4.2's process-status-word flag exists to prevent.

// SaveMode selects the context-switch strategy.
type SaveMode uint8

const (
	// FullSave switches core + extended registers + mapping-table state.
	FullSave SaveMode = iota
	// CoreOnlySave switches only the core registers (a pre-RC OS).
	CoreOnlySave
)

// pcb is one process's saved architectural state.
type pcb struct {
	ri   []int64
	rf   []float64
	ctxI core.Context
	ctxF core.Context
}

// MultiResult reports a multiprogrammed run.
type MultiResult struct {
	Results      []*Result // per process, in input order
	Switches     int64
	SwitchCycles int64 // total context-switch overhead charged
	Cycles       int64 // global cycles including switch overhead

	// MapInt, MapFP are telemetry snapshots of the shared mapping tables
	// (the per-process Results cannot carry them: all processes mutate the
	// same physical tables).
	MapInt, MapFP core.Stats
}

// CheckLedger verifies the global cycle ledger: the final clock equals
// each process's own active cycles plus the context-switch overhead, and
// every per-process ledger closes.
func (m *MultiResult) CheckLedger() error {
	var active int64
	for i, r := range m.Results {
		if r == nil {
			return fmt.Errorf("machine: process %d has no result", i)
		}
		if err := r.CheckLedger(); err != nil {
			return fmt.Errorf("process %d: %w", i, err)
		}
		active += r.ActiveCycles
	}
	if got := active + m.SwitchCycles; got != m.Cycles {
		return fmt.Errorf("machine: multiprogrammed ledger does not close: active %d + switch %d = %d, want %d cycles",
			active, m.SwitchCycles, got, m.Cycles)
	}
	return nil
}

// RunMultiprogrammed time-slices the images on one machine with the given
// quantum. Processes have private memories (separate address spaces) but
// share the physical register file and mapping table, so correctness
// depends on the OS's save mode. Each process runs on the same predecoded
// micro-op pipeline as Run.
func RunMultiprogrammed(imgs []*Image, cfg Config, quantum int64, mode SaveMode) (*MultiResult, error) {
	return RunMultiprogrammedContext(context.Background(), imgs, cfg, quantum, mode)
}

// RunMultiprogrammedContext is RunMultiprogrammed with cooperative
// cancellation: each process's cycle loop polls ctx on the same stride as
// RunContext. Each call constructs a private arena; to amortize it across
// runs, use Machine.RunMultiprogrammedContext.
func RunMultiprogrammedContext(ctx context.Context, imgs []*Image, cfg Config, quantum int64, mode SaveMode) (*MultiResult, error) {
	return NewMachine().RunMultiprogrammedContext(ctx, imgs, cfg, quantum, mode)
}

// runMultiprogrammed is the scheduler loop over an arena whose shared
// machine, per-process states, and PCBs RunMultiprogrammedContext has
// already reset.
func (m *Machine) runMultiprogrammed(imgs []*Image, cfg Config, quantum int64, mode SaveMode) (*MultiResult, error) {
	ri, rf, rdyI, rdyF := m.ri, m.rf, m.rdyI, m.rdyF
	tabI, tabF := m.tabI, m.tabF
	procs := m.procs[:len(imgs)]
	pcbs := m.pcbs[:len(imgs)]
	halted := m.halted

	saveWords := int64(cfg.IntCore + cfg.FPCore)
	if mode == FullSave {
		saveWords += int64(cfg.IntTotal - cfg.IntCore + cfg.FPTotal - cfg.FPCore)
		saveWords += int64(2*cfg.IntCore + 2*cfg.FPCore) // both maps
	}
	switchCost := 2 * ((saveWords + int64(cfg.MemChannels) - 1) / int64(cfg.MemChannels))

	save := func(i int) {
		p := pcbs[i]
		switch mode {
		case FullSave:
			copy(p.ri, ri)
			copy(p.rf, rf)
			tabI.SaveContextInto(&p.ctxI)
			tabF.SaveContextInto(&p.ctxF)
		case CoreOnlySave:
			copy(p.ri[:cfg.IntCore], ri[:cfg.IntCore])
			copy(p.rf[:cfg.FPCore], rf[:cfg.FPCore])
			// Connection state is neither saved nor restored.
		}
	}
	restore := func(i int, at int64) {
		p := pcbs[i]
		switch mode {
		case FullSave:
			copy(ri, p.ri)
			copy(rf, p.rf)
			tabI.RestoreContext(p.ctxI)
			tabF.RestoreContext(p.ctxF)
		case CoreOnlySave:
			copy(ri[:cfg.IntCore], p.ri[:cfg.IntCore])
			copy(rf[:cfg.FPCore], p.rf[:cfg.FPCore])
		}
		// The pipeline drains across a switch.
		for k := range rdyI {
			rdyI[k] = at
		}
		for k := range rdyF {
			rdyF[k] = at
		}
	}

	out := &MultiResult{Results: make([]*Result, len(imgs))}
	clock := int64(0)
	remaining := len(imgs)
	for remaining > 0 {
		progress := false
		for i, s := range procs {
			if halted[i] {
				continue
			}
			restore(i, clock)
			s.cycle = clock
			h, err := s.runUntil(clock + quantum)
			if err != nil {
				return nil, fmt.Errorf("process %d: %w", i, err)
			}
			clock = s.cycle
			if h {
				halted[i] = true
				remaining--
				s.res.RetInt = ri[2]
				out.Results[i] = s.res
			}
			if remaining == 0 {
				// The last process has halted: there is nothing to
				// switch to, so the OS performs no save and charges no
				// switch cost.
				break
			}
			save(i)
			out.Switches++
			out.SwitchCycles += switchCost
			if cfg.Events != nil {
				cfg.Events.add(Event{Kind: EvSwitch, Cycle: clock, Dur: switchCost, Proc: uint8(i)})
			}
			clock += switchCost
			progress = true
			if clock > cfg.MaxCycles {
				return nil, fmt.Errorf("%w (multiprogrammed)", ErrCycleLimit)
			}
		}
		if !progress {
			break
		}
	}
	out.Cycles = clock
	out.MapInt = tabI.Stats()
	out.MapFP = tabF.Stats()
	return out, nil
}
