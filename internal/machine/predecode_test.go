package machine

import (
	"testing"

	"regconn/internal/isa"
)

// TestPredecodeMirrorsImage: the micro-op stream is 1:1 with the image and
// each uop carries the configuration's latency for its opcode. (Field-level
// operand round-trip for every opcode is covered by isa.TestDecodeRoundTrip.)
func TestPredecodeMirrorsImage(t *testing.T) {
	img := asm(
		movi(3, 7),
		addi(4, 3, 1),
		isa.Instr{Op: isa.MUL, Dst: isa.IntReg(5), A: isa.IntReg(3), B: isa.IntReg(4)},
		isa.Instr{Op: isa.LD, Dst: isa.IntReg(6), A: isa.IntReg(1), Imm: -8},
		isa.Instr{Op: isa.CONDEF, CIdx: [2]uint16{3}, CPhys: [2]uint16{40}, CClass: isa.ClassInt},
		isa.Instr{Op: isa.BLT, A: isa.IntReg(4), Imm: 8, UseImm: true, Target: 1, Pred: false},
		halt(),
	)
	lat := isa.DefaultLatencies(4)
	us := predecode(img.Code, nil, false, lat)
	if len(us) != len(img.Code) {
		t.Fatalf("predecoded %d uops from %d instructions", len(us), len(img.Code))
	}
	for i, u := range us {
		in := &img.Code[i]
		if u.Op != in.Op {
			t.Errorf("uop %d: op %v, want %v", i, u.Op, in.Op)
		}
		if want := int64(lat.Of(in.Op)); u.lat != want {
			t.Errorf("uop %d (%v): lat %d, want %d", i, in.Op, u.lat, want)
		}
		if u.Dst != in.Def() {
			t.Errorf("uop %d (%v): dst %v, want %v", i, in.Op, u.Dst, in.Def())
		}
	}
	// The predecoded run still executes correctly.
	res := run(t, img, cfg1())
	if res.Instrs == 0 || res.Cycles == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

// TestRunMatchesSeedSemantics: a program touching ALU, memory, connects,
// and branches produces the same architectural result at every issue rate
// (the predecoded pipeline must not change semantics with width).
func TestRunMatchesSeedSemantics(t *testing.T) {
	img := asm(
		isa.Instr{Op: isa.CONDEF, CIdx: [2]uint16{3}, CPhys: [2]uint16{80}, CClass: isa.ClassInt},
		movi(3, 5),
		movi(4, 0),
		movi(5, 0),
		add(5, 5, 3), // pc 4, loop head
		addi(4, 4, 1),
		isa.Instr{Op: isa.BLT, A: isa.IntReg(4), Imm: 10, UseImm: true, Target: 4, Pred: true},
		add(2, 5, 0),
		halt(),
	)
	c := DefaultConfig()
	c.IntCore, c.IntTotal = 16, 128
	var want int64 = 50
	for _, issue := range []int{1, 2, 4, 8} {
		c.IssueRate = issue
		res := run(t, img, c)
		if res.RetInt != want {
			t.Errorf("issue=%d: ret %d, want %d", issue, res.RetInt, want)
		}
	}
}
