package machine

import (
	"testing"

	"regconn/internal/codegen"
	"regconn/internal/core"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// asm assembles a raw machine function (no compiler involved) so timing
// behaviours can be probed instruction by instruction.
func asm(code ...isa.Instr) *Image {
	mp := &codegen.MProg{Entry: "t", IR: ir.NewProgram()}
	mf := &codegen.MFunc{Name: "t", Code: code, Ann: make([]codegen.Annot, len(code))}
	mp.Funcs = append(mp.Funcs, mf)
	img, err := Load(mp)
	if err != nil {
		panic(err)
	}
	return img
}

func cfg1() Config {
	c := DefaultConfig()
	c.IssueRate = 1
	return c
}

func run(t *testing.T, img *Image, c Config) *Result {
	t.Helper()
	res, err := Run(img, c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func movi(dst int, v int64) isa.Instr { return isa.Instr{Op: isa.MOVI, Dst: isa.IntReg(dst), Imm: v} }
func addi(dst, a int, v int64) isa.Instr {
	return isa.Instr{Op: isa.ADD, Dst: isa.IntReg(dst), A: isa.IntReg(a), Imm: v, UseImm: true}
}
func add(dst, a, b int) isa.Instr {
	return isa.Instr{Op: isa.ADD, Dst: isa.IntReg(dst), A: isa.IntReg(a), B: isa.IntReg(b)}
}
func halt() isa.Instr { return isa.Instr{Op: isa.HALT} }

func TestOpMixAccounting(t *testing.T) {
	img := asm(
		movi(2, 64), // aligned base address
		addi(2, 2, 8),
		isa.Instr{Op: isa.MUL, Dst: isa.IntReg(3), A: isa.IntReg(2), Imm: 2, UseImm: true},
		isa.Instr{Op: isa.ST, A: isa.IntReg(2), B: isa.IntReg(3), Imm: 0},
		isa.Instr{Op: isa.LD, Dst: isa.IntReg(4), A: isa.IntReg(2), Imm: 0},
		halt(),
	)
	res := run(t, img, cfg1())
	if res.MixOf(isa.KindIntALU) != 2 || res.MixOf(isa.KindIntMul) != 1 ||
		res.MixOf(isa.KindLoad) != 1 || res.MixOf(isa.KindStore) != 1 {
		t.Errorf("op mix wrong: alu=%d mul=%d ld=%d st=%d",
			res.MixOf(isa.KindIntALU), res.MixOf(isa.KindIntMul),
			res.MixOf(isa.KindLoad), res.MixOf(isa.KindStore))
	}
	total := int64(0)
	for k := isa.Kind(0); k < 16; k++ {
		total += res.MixOf(k)
	}
	if total != res.Instrs {
		t.Errorf("mix total %d != instrs %d", total, res.Instrs)
	}
}

func TestFunctionalALU(t *testing.T) {
	img := asm(
		movi(2, 20),
		addi(2, 2, 22),
		halt(),
	)
	res := run(t, img, cfg1())
	if res.RetInt != 42 {
		t.Errorf("r2 = %d, want 42", res.RetInt)
	}
	if res.Instrs != 2 { // HALT itself does not issue
		t.Errorf("instrs = %d", res.Instrs)
	}
}

func TestZeroRegister(t *testing.T) {
	img := asm(
		movi(0, 99), // write to r0 is dropped
		add(2, 0, 0),
		halt(),
	)
	res := run(t, img, cfg1())
	if res.RetInt != 0 {
		t.Errorf("r0 writable: r2 = %d", res.RetInt)
	}
}

func TestInterlockStallsOnLoadLatency(t *testing.T) {
	// ld r3 <- mem; add r2 = r3+1 immediately: 4-cycle load must stall
	// longer than 2-cycle.
	prog := []isa.Instr{
		movi(3, 64),
		{Op: isa.ST, A: isa.IntReg(3), B: isa.IntReg(3), Imm: 0},
		{Op: isa.LD, Dst: isa.IntReg(4), A: isa.IntReg(3), Imm: 0},
		addi(2, 4, 0),
		halt(),
	}
	c2 := cfg1()
	c2.Lat = isa.DefaultLatencies(2)
	r2 := run(t, asm(prog...), c2)
	c4 := cfg1()
	c4.Lat = isa.DefaultLatencies(4)
	r4 := run(t, asm(prog...), c4)
	if r4.Cycles != r2.Cycles+2 {
		t.Errorf("load-latency interlock: 2cy=%d 4cy=%d", r2.Cycles, r4.Cycles)
	}
	if r2.RetInt != 64 || r4.RetInt != 64 {
		t.Error("functional result wrong")
	}
	if r2.StallData == 0 {
		t.Error("expected data stalls")
	}
}

func TestSuperscalarIssuesParallel(t *testing.T) {
	// Four independent MOVIs: 1 cycle at 4-issue (+1 for HALT detection),
	// 4 cycles at 1-issue.
	prog := []isa.Instr{movi(2, 1), movi(3, 2), movi(4, 3), movi(5, 4), halt()}
	c1 := cfg1()
	r1 := run(t, asm(prog...), c1)
	c4 := DefaultConfig()
	r4 := run(t, asm(prog...), c4)
	if r4.Cycles >= r1.Cycles {
		t.Errorf("4-issue (%d cycles) not faster than 1-issue (%d)", r4.Cycles, r1.Cycles)
	}
}

func TestMemChannelLimit(t *testing.T) {
	// Eight independent stores at 4-issue: 2 channels need twice the
	// cycles 4 channels do.
	prog := []isa.Instr{movi(3, 64)}
	for k := int64(0); k < 8; k++ {
		prog = append(prog, isa.Instr{Op: isa.ST, A: isa.IntReg(3), B: isa.IntReg(3), Imm: k * 8})
	}
	prog = append(prog, halt())
	c2 := DefaultConfig()
	c2.MemChannels = 2
	r2 := run(t, asm(prog...), c2)
	c4 := DefaultConfig()
	c4.MemChannels = 4
	r4 := run(t, asm(prog...), c4)
	if r4.Cycles >= r2.Cycles {
		t.Errorf("4 channels (%d) not faster than 2 (%d)", r4.Cycles, r2.Cycles)
	}
}

// TestZeroCycleConnect reproduces §2.4: a connect and its consumer issued
// in the same cycle work under zero-cycle latency; one-cycle latency
// inserts a stall.
func TestZeroCycleConnect(t *testing.T) {
	prog := []isa.Instr{
		movi(2, 5), // r2 = 5 (home)
		// connect-def ri3 -> rp10, then write 7 through ri3.
		{Op: isa.CONDEF, CIdx: [2]uint16{3}, CPhys: [2]uint16{10}, CClass: isa.ClassInt},
		movi(3, 7), // lands in rp10 (model 3: read map r3 -> rp10)
		// read back via ri3: model-3 side effect redirected the read map.
		add(2, 3, 0),
		halt(),
	}
	mk := func(connLat int) Config {
		c := DefaultConfig()
		c.IntCore, c.IntTotal = 8, 16
		c.FPCore, c.FPTotal = 8, 16
		c.ConnectLatency = connLat
		c.Lat.Connect = connLat
		return c
	}
	r0 := run(t, asm(prog...), mk(0))
	if r0.RetInt != 7 {
		t.Fatalf("RC redirect failed: r2 = %d, want 7", r0.RetInt)
	}
	r1 := run(t, asm(prog...), mk(1))
	if r1.RetInt != 7 {
		t.Fatalf("1-cycle connect broke semantics: %d", r1.RetInt)
	}
	if r1.Cycles <= r0.Cycles {
		t.Errorf("1-cycle connects (%d cy) should be slower than 0-cycle (%d cy)", r1.Cycles, r0.Cycles)
	}
	if r0.Connects != 1 {
		t.Errorf("connects counted = %d", r0.Connects)
	}
}

// TestCallResetsMap reproduces §4.1: CALL resets the mapping table so the
// callee sees home mappings.
func TestCallResetsMap(t *testing.T) {
	mp := &codegen.MProg{Entry: "t", IR: ir.NewProgram()}
	main := &codegen.MFunc{Name: "t"}
	main.Code = []isa.Instr{
		{Op: isa.CONUSE, CIdx: [2]uint16{3}, CPhys: [2]uint16{12}, CClass: isa.ClassInt},
		movi(4, 1), // keep something in flight
		{Op: isa.CALL, Sym: "leaf"},
		halt(), // r2 from leaf
	}
	main.Ann = make([]codegen.Annot, len(main.Code))
	leaf := &codegen.MFunc{Name: "leaf"}
	leaf.Code = []isa.Instr{
		movi(3, 55),  // write via home r3 (map was reset)
		add(2, 3, 0), // read r3: must be 55, not rp12's garbage
		{Op: isa.RET},
	}
	leaf.Ann = make([]codegen.Annot, len(leaf.Code))
	mp.Funcs = []*codegen.MFunc{main, leaf}
	img, err := Load(mp)
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultConfig()
	c.IntCore, c.IntTotal = 8, 16
	c.FPCore, c.FPTotal = 8, 16
	res := run(t, img, c)
	if res.RetInt != 55 {
		t.Errorf("callee saw stale map: r2 = %d, want 55", res.RetInt)
	}
}

func TestMispredictPenaltyAndExtraStage(t *testing.T) {
	// A branch with Pred=false that is taken mispredicts.
	prog := []isa.Instr{
		movi(2, 1),
		{Op: isa.BEQ, A: isa.IntReg(2), Imm: 1, UseImm: true, Target: 3, Pred: false},
		movi(2, 99), // skipped
		halt(),
	}
	c := DefaultConfig()
	base := run(t, asm(prog...), c)
	if base.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d", base.Mispredicts)
	}
	cs := c
	cs.ExtraDecodeStage = true
	stage := run(t, asm(prog...), cs)
	if stage.Cycles != base.Cycles+1 {
		t.Errorf("extra stage penalty: %d vs %d cycles", stage.Cycles, base.Cycles)
	}
	// Correct prediction avoids the penalty entirely.
	progOK := append([]isa.Instr(nil), prog...)
	progOK[1].Pred = true
	ok := run(t, asm(progOK...), c)
	if ok.Cycles >= base.Cycles {
		t.Errorf("predicted branch (%d cy) not cheaper than mispredicted (%d cy)", ok.Cycles, base.Cycles)
	}
	if ok.RetInt != 1 || base.RetInt != 1 {
		t.Error("branch semantics wrong")
	}
}

func TestCallPushesReturnAddress(t *testing.T) {
	mp := &codegen.MProg{Entry: "t", IR: ir.NewProgram()}
	main := &codegen.MFunc{Name: "t"}
	main.Code = []isa.Instr{
		{Op: isa.CALL, Sym: "f"},
		addi(2, 2, 1), // after return: r2 = 10+1
		halt(),
	}
	main.Ann = make([]codegen.Annot, len(main.Code))
	f := &codegen.MFunc{Name: "f", Code: []isa.Instr{movi(2, 10), {Op: isa.RET}}}
	f.Ann = make([]codegen.Annot, len(f.Code))
	mp.Funcs = []*codegen.MFunc{main, f}
	img, err := Load(mp)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, img, DefaultConfig())
	if res.RetInt != 11 {
		t.Errorf("call/ret broken: r2 = %d, want 11", res.RetInt)
	}
}

func TestCycleLimit(t *testing.T) {
	img := asm(
		isa.Instr{Op: isa.BR, Target: 0},
	)
	c := DefaultConfig()
	c.MaxCycles = 1000
	if _, err := Run(img, c); err == nil {
		t.Fatal("expected cycle-limit error")
	}
}

func TestDivideByZeroError(t *testing.T) {
	img := asm(
		movi(3, 0),
		isa.Instr{Op: isa.DIV, Dst: isa.IntReg(2), A: isa.IntReg(3), B: isa.IntReg(3)},
		halt(),
	)
	if _, err := Run(img, DefaultConfig()); err == nil {
		t.Fatal("expected divide error")
	}
}

func TestLoadRejectsUnknownCall(t *testing.T) {
	mp := &codegen.MProg{Entry: "t", IR: ir.NewProgram()}
	mf := &codegen.MFunc{Name: "t", Code: []isa.Instr{{Op: isa.CALL, Sym: "ghost"}}}
	mf.Ann = make([]codegen.Annot, 1)
	mp.Funcs = []*codegen.MFunc{mf}
	if _, err := Load(mp); err == nil {
		t.Fatal("expected unresolved-call error")
	}
}

func TestFloatPath(t *testing.T) {
	fa := isa.Instr{Op: isa.FMOVI, Dst: isa.FloatReg(3)}
	fa.SetFImm(2.5)
	fb := isa.Instr{Op: isa.FMOVI, Dst: isa.FloatReg(4)}
	fb.SetFImm(4.0)
	img := asm(
		fa, fb,
		isa.Instr{Op: isa.FMUL, Dst: isa.FloatReg(5), A: isa.FloatReg(3), B: isa.FloatReg(4)},
		isa.Instr{Op: isa.CVTFI, Dst: isa.IntReg(2), A: isa.FloatReg(5)},
		halt(),
	)
	res := run(t, img, DefaultConfig())
	if res.RetInt != 10 {
		t.Errorf("fp path: r2 = %d, want 10", res.RetInt)
	}
}

func TestModelOneRequiresExplicitReconnect(t *testing.T) {
	// Under model 1 (no reset) a write through a diverted write map does
	// NOT update the read map: the read still sees the home register.
	prog := []isa.Instr{
		movi(3, 5), // home r3 = 5
		{Op: isa.CONDEF, CIdx: [2]uint16{3}, CPhys: [2]uint16{10}, CClass: isa.ClassInt},
		movi(3, 7), // goes to rp10
		add(2, 3, 0),
		halt(),
	}
	c := DefaultConfig()
	c.IntCore, c.IntTotal = 8, 16
	c.FPCore, c.FPTotal = 8, 16
	c.Model = core.NoReset
	res := run(t, asm(prog...), c)
	if res.RetInt != 5 {
		t.Errorf("model 1 read map should stay home: r2 = %d, want 5", res.RetInt)
	}
	c.Model = core.WriteResetReadUpdate
	res3 := run(t, asm(prog...), c)
	if res3.RetInt != 7 {
		t.Errorf("model 3 read map should follow the write: r2 = %d, want 7", res3.RetInt)
	}
}
