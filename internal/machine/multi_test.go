package machine

import (
	"testing"

	"regconn/internal/isa"
)

// rcProg keeps a value in extended register rp100 across a long spin, then
// returns it — correct only if the OS preserves extended state across
// context switches.
func rcProg(val int64, spin int64) *Image {
	return asm(
		isa.Instr{Op: isa.CONDEF, CIdx: [2]uint16{3}, CPhys: [2]uint16{100}, CClass: isa.ClassInt},
		movi(3, val), // into rp100; model 3 re-points the read map
		movi(4, 0),
		addi(4, 4, 1), // pc 3
		isa.Instr{Op: isa.BLT, A: isa.IntReg(4), Imm: spin, UseImm: true, Target: 3, Pred: true},
		add(2, 3, 0), // read back through the diverted map entry
		halt(),
	)
}

// coreProg uses only core registers.
func coreProg(spin int64) *Image {
	return asm(
		movi(2, 0),
		movi(4, 0),
		addi(2, 2, 2), // pc 2
		addi(4, 4, 1),
		isa.Instr{Op: isa.BLT, A: isa.IntReg(4), Imm: spin, UseImm: true, Target: 2, Pred: true},
		halt(),
	)
}

func multiCfg() Config {
	c := DefaultConfig()
	c.IntCore, c.IntTotal = 16, 256
	c.FPCore, c.FPTotal = 16, 256
	return c
}

// TestMultiprogrammedFullSave: two RC processes that both use rp100 with
// different values, plus a core-only process; under the full save mode
// everyone computes correctly despite sharing one register file.
func TestMultiprogrammedFullSave(t *testing.T) {
	imgs := []*Image{rcProg(111, 2000), rcProg(222, 2000), coreProg(2000)}
	res, err := RunMultiprogrammed(imgs, multiCfg(), 300, FullSave)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches < 3 {
		t.Fatalf("only %d switches", res.Switches)
	}
	if got := res.Results[0].RetInt; got != 111 {
		t.Errorf("process 0 = %d, want 111", got)
	}
	if got := res.Results[1].RetInt; got != 222 {
		t.Errorf("process 1 = %d, want 222", got)
	}
	if got := res.Results[2].RetInt; got != 4000 {
		t.Errorf("process 2 = %d, want 4000", got)
	}
	if res.SwitchCycles == 0 || res.Cycles <= 2000 {
		t.Errorf("accounting wrong: %+v", res)
	}
}

// TestMultiprogrammedCoreOnlyCorruptsRC demonstrates §4.2's hazard: a
// pre-RC operating system that saves only core registers corrupts
// RC-extended processes (they share rp100) while core-only processes
// still work.
func TestMultiprogrammedCoreOnlyCorruptsRC(t *testing.T) {
	imgs := []*Image{rcProg(111, 2000), rcProg(222, 2000), coreProg(2000)}
	res, err := RunMultiprogrammed(imgs, multiCfg(), 300, CoreOnlySave)
	if err != nil {
		t.Fatal(err)
	}
	// The core-only process is unaffected.
	if got := res.Results[2].RetInt; got != 4000 {
		t.Errorf("core-only process = %d, want 4000", got)
	}
	// At least one RC process observes the other's rp100 value: process
	// 0 wrote 111 into rp100 early, then process 1 overwrote it with 222
	// before process 0 read it back.
	if res.Results[0].RetInt == 111 && res.Results[1].RetInt == 222 {
		t.Error("core-only switching unexpectedly preserved extended state " +
			"(the §4.2 hazard should be observable)")
	}
}

// TestMultiprogrammedCoreOnlySharedPhys pins down the mechanism of the
// §4.2 corruption: without extended-state switching, both RC processes
// literally share physical register 100, so both read back whatever value
// the later writer left — their results collide on one of the two written
// values. The identical workload under FullSave stays correct.
func TestMultiprogrammedCoreOnlySharedPhys(t *testing.T) {
	res, err := RunMultiprogrammed([]*Image{rcProg(111, 2000), rcProg(222, 2000)},
		multiCfg(), 300, CoreOnlySave)
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Results[0].RetInt, res.Results[1].RetInt
	if a != b {
		t.Errorf("core-only: processes read different values %d / %d; "+
			"they share one physical register and must collide", a, b)
	}
	if a != 111 && a != 222 {
		t.Errorf("core-only: shared value %d is neither written value", a)
	}
	full, err := RunMultiprogrammed([]*Image{rcProg(111, 2000), rcProg(222, 2000)},
		multiCfg(), 300, FullSave)
	if err != nil {
		t.Fatal(err)
	}
	if full.Results[0].RetInt != 111 || full.Results[1].RetInt != 222 {
		t.Errorf("full save: got %d/%d, want 111/222",
			full.Results[0].RetInt, full.Results[1].RetInt)
	}
}

// TestMultiprogrammedFullSaveCostsMore: the full save moves more state, so
// its per-switch overhead exceeds the core-only save's.
func TestMultiprogrammedFullSaveCostsMore(t *testing.T) {
	imgs := []*Image{coreProg(1500), coreProg(1500)}
	full, err := RunMultiprogrammed(imgs, multiCfg(), 300, FullSave)
	if err != nil {
		t.Fatal(err)
	}
	imgs2 := []*Image{coreProg(1500), coreProg(1500)}
	coreOnly, err := RunMultiprogrammed(imgs2, multiCfg(), 300, CoreOnlySave)
	if err != nil {
		t.Fatal(err)
	}
	perFull := float64(full.SwitchCycles) / float64(full.Switches)
	perCore := float64(coreOnly.SwitchCycles) / float64(coreOnly.Switches)
	if perFull <= perCore {
		t.Errorf("full save %.1f cy/switch should exceed core-only %.1f", perFull, perCore)
	}
}

func TestMultiprogrammedValidation(t *testing.T) {
	if _, err := RunMultiprogrammed(nil, multiCfg(), 100, FullSave); err == nil {
		t.Error("expected error for no processes")
	}
	if _, err := RunMultiprogrammed([]*Image{coreProg(10)}, multiCfg(), 0, FullSave); err == nil {
		t.Error("expected error for zero quantum")
	}
}
