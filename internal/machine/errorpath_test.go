package machine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"regconn/internal/codegen"
	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/mem"
)

// loopImg counts r3 down from n: a program whose runtime scales with n, for
// cancellation and long-trace tests.
func loopImg(n int64) *Image {
	return asm(
		movi(3, n),
		movi(4, 0),
		addi(3, 3, -1),
		isa.Instr{Op: isa.BNE, A: isa.IntReg(3), B: isa.IntReg(4), Target: 2},
		halt(),
	)
}

// wildStoreImg stores to addr (pc=1 is the faulting instruction).
func wildStoreImg(addr int64) *Image {
	return asm(
		movi(2, addr),
		isa.Instr{Op: isa.ST, A: isa.IntReg(2), B: isa.IntReg(2), Imm: 0},
		halt(),
	)
}

func TestWildStoreReturnsRuntimeError(t *testing.T) {
	for _, tc := range []struct {
		name   string
		addr   int64
		reason string
	}{
		{"out-of-range", mem.DefaultSize + 8, "out of range"},
		{"negative", -16, "out of range"},
		{"unaligned", 1001, "unaligned access"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(wildStoreImg(tc.addr), cfg1())
			if res != nil {
				t.Fatalf("got result %+v alongside fault", res)
			}
			var re *RuntimeError
			if !errors.As(err, &re) {
				t.Fatalf("error is %T (%v), want *RuntimeError", err, err)
			}
			if re.Func != "t" || re.PC != 1 {
				t.Errorf("fault located at %s pc=%d, want t pc=1", re.Func, re.PC)
			}
			var f *mem.Fault
			if !errors.As(err, &f) {
				t.Fatalf("RuntimeError does not wrap *mem.Fault: %v", err)
			}
			if f.Reason != tc.reason || f.Addr != tc.addr {
				t.Errorf("fault = %v, want addr %#x %s", f, tc.addr, tc.reason)
			}
		})
	}
}

func TestInitFaultReturnsRuntimeError(t *testing.T) {
	// A global whose initializer lands beyond MemSize makes image setup
	// itself fault, before any instruction issues.
	p := ir.NewProgram()
	g := p.AddGlobal("big", 64)
	g.InitI = []int64{1, 2, 3, 4, 5, 6, 7, 8}
	mp := &codegen.MProg{Entry: "t", IR: p}
	mp.Funcs = append(mp.Funcs, &codegen.MFunc{Name: "t", Code: []isa.Instr{halt()}, Ann: make([]codegen.Annot, 1)})
	img, err := Load(mp)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg1()
	c.MemSize = mem.GlobalBase // global data starts exactly at the end: first store faults
	res, err := Run(img, c)
	if res != nil || err == nil {
		t.Fatalf("Run = %v, %v; want nil result and an error", res, err)
	}
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("init fault surfaced as %T (%v), want *RuntimeError", err, err)
	}
	if re.Func != "(init)" || re.PC != -1 {
		t.Errorf("init fault located at %q pc=%d, want (init) pc=-1", re.Func, re.PC)
	}
	var f *mem.Fault
	if !errors.As(err, &f) {
		t.Fatalf("init RuntimeError does not wrap *mem.Fault: %v", err)
	}
}

func TestRunContextCancelStopsEarly(t *testing.T) {
	const n = 100_000
	full, err := Run(loopImg(n), cfg1())
	if err != nil {
		t.Fatal(err)
	}
	if full.Cycles < 2*n {
		t.Fatalf("loop program too short to observe cancellation: %d cycles", full.Cycles)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, loopImg(n), cfg1())
	if res != nil || err == nil {
		t.Fatalf("RunContext = %v, %v; want nil result and an error", res, err)
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation error = %v; want to match ErrCanceled and context.Canceled", err)
	}
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("cancellation surfaced as %T, want *RuntimeError", err)
	}
	if re.Cycle > 2*cancelCheckInterval {
		t.Errorf("run canceled at cycle %d, want within %d (poll stride %d)",
			re.Cycle, 2*cancelCheckInterval, cancelCheckInterval)
	}
	if full.Cycles <= re.Cycle {
		t.Errorf("canceled run (%d cycles) did not stop before the full run (%d)", re.Cycle, full.Cycles)
	}
}

func TestRunContextDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	_, err := RunContext(ctx, loopImg(100_000), cfg1())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want to match context.DeadlineExceeded", err)
	}
}

func TestRunMultiprogrammedContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	imgs := []*Image{loopImg(100_000), loopImg(100_000)}
	res, err := RunMultiprogrammedContext(ctx, imgs, cfg1(), 1000, FullSave)
	if res != nil || !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunMultiprogrammedContext = %v, %v; want nil and ErrCanceled", res, err)
	}
}

func TestTraceTailOnFault(t *testing.T) {
	var buf bytes.Buffer
	c := cfg1()
	c.Trace = &buf
	_, err := Run(wildStoreImg(mem.DefaultSize+8), c)
	if err == nil {
		t.Fatal("wild store did not fail")
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "!!") || !strings.Contains(last, "memory fault") {
		t.Fatalf("trace tail does not show the fault:\n%s", buf.String())
	}
	if !strings.Contains(last, "1:") || !strings.Contains(last, "st") {
		t.Errorf("trace tail does not name the faulting instruction: %q", last)
	}
}

func TestTraceFileSyncedOnFault(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "trace-*.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := cfg1()
	c.Trace = f
	if _, err := Run(wildStoreImg(mem.DefaultSize+8), c); err == nil {
		t.Fatal("wild store did not fail")
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "memory fault") {
		t.Fatalf("file trace lost its tail:\n%s", data)
	}
}

func TestEventRingZeroValue(t *testing.T) {
	// Config.Events = &EventRing{} must behave like a default-capacity ring,
	// not panic on the first event.
	c := cfg1()
	c.Events = &EventRing{}
	img := asm(movi(2, 1), add(3, 2, 2), halt())
	if _, err := Run(img, c); err != nil {
		t.Fatal(err)
	}
	evs := c.Events.Events()
	if len(evs) == 0 {
		t.Fatal("zero-value ring recorded no events")
	}
	if c.Events.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", c.Events.Dropped())
	}
	if evs[len(evs)-1].Kind != EvHalt {
		t.Errorf("last event kind = %d, want EvHalt", evs[len(evs)-1].Kind)
	}
}

func TestEventRingWraparound(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 7; i++ {
		r.add(Event{Kind: EvIssue, Cycle: int64(i), PC: int32(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events returned %d entries, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(i + 3); e.Cycle != want {
			t.Errorf("event %d has cycle %d, want %d (oldest retained is event 3)", i, e.Cycle, want)
		}
	}
	if r.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", r.Dropped())
	}
}

func TestEventRingPartialFill(t *testing.T) {
	r := NewEventRing(8)
	for i := 0; i < 3; i++ {
		r.add(Event{Cycle: int64(i)})
	}
	if evs := r.Events(); len(evs) != 3 || evs[0].Cycle != 0 || evs[2].Cycle != 2 {
		t.Fatalf("partial ring Events = %v", evs)
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", r.Dropped())
	}
	if evs := NewEventRing(4).Events(); len(evs) != 0 {
		t.Errorf("empty ring Events = %v, want none", evs)
	}
}

func TestWriteTraceJSONAfterWraparound(t *testing.T) {
	// Drive a real run into a tiny ring so it wraps, then check the exported
	// Chrome trace: timestamps must be monotonic and must not predate the
	// oldest retained event.
	c := cfg1()
	c.Events = NewEventRing(16)
	img := loopImg(50)
	if _, err := Run(img, c); err != nil {
		t.Fatal(err)
	}
	if c.Events.Dropped() == 0 {
		t.Fatal("ring did not wrap; enlarge the loop")
	}
	oldest := c.Events.Events()[0].Cycle

	var buf bytes.Buffer
	if err := c.Events.WriteTraceJSON(&buf, img); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
			Ts int64  `json:"ts"`
		} `json:"traceEvents"`
		OtherData struct {
			Dropped int64 `json:"events_dropped"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData.Dropped != c.Events.Dropped() {
		t.Errorf("exported dropped count %d, want %d", doc.OtherData.Dropped, c.Events.Dropped())
	}
	prev := int64(-1)
	for _, te := range doc.TraceEvents {
		if te.Ph == "M" {
			continue
		}
		if te.Ts < oldest {
			t.Fatalf("exported event at ts=%d predates the oldest retained event (cycle %d): overwritten slot leaked", te.Ts, oldest)
		}
		if te.Ts < prev {
			t.Fatalf("trace timestamps not monotonic: %d after %d", te.Ts, prev)
		}
		prev = te.Ts
	}
}
