package machine

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"regconn/internal/core"
	"regconn/internal/isa"
	"regconn/internal/mem"
)

// Config describes one simulated machine (the experimental variables of
// §5.2: issue rate, memory channels, load latency, core register counts,
// RC support and its implementation scenario).
type Config struct {
	IssueRate   int
	MemChannels int
	Lat         isa.Latencies

	IntCore, IntTotal int // m and n for the integer file
	FPCore, FPTotal   int
	Model             core.Model

	// ConnectLatency 0 models the forwarding implementation of §2.4
	// (connects affect same-cycle instructions); 1 models the simpler
	// implementation where dependent instructions wait a cycle.
	ConnectLatency int

	// ExtraDecodeStage adds the pipeline stage of Figure 12's
	// "additional pipeline stage" scenarios: the branch misprediction
	// penalty grows by one cycle.
	ExtraDecodeStage bool

	// Trap enables periodic interrupts / context switches (§4.2–4.3).
	Trap TrapConfig

	// Trace, when non-nil, receives a per-cycle issue log for the first
	// TraceCycles cycles (0 = no limit): one line per cycle listing the
	// instructions issued with their resolved physical operands.
	Trace       io.Writer
	TraceCycles int64

	MemSize   int64
	MaxCycles int64
}

// basePenalty is the front-end refill cost of a mispredicted branch for the
// four-stage pipeline of Figure 4 (fetch + decode refill).
const basePenalty = 2

// DefaultConfig returns the paper's center configuration: 4-issue, two
// memory channels, 2-cycle loads, model-3 RC with zero-cycle connects.
func DefaultConfig() Config {
	return Config{
		IssueRate:   4,
		MemChannels: 2,
		Lat:         isa.DefaultLatencies(2),
		IntCore:     64, IntTotal: 64,
		FPCore: 64, FPTotal: 64,
		Model: core.WriteResetReadUpdate,
	}
}

// Result reports one simulation.
type Result struct {
	Cycles      int64
	Instrs      int64 // dynamic instructions issued
	Connects    int64 // dynamic connect instructions
	MemOps      int64
	Mispredicts int64
	RetInt      int64 // integer return value of main (r2 at halt)
	Mem         *mem.Memory
	Layout      mem.Layout

	// Stall cycle attribution (a cycle with no issue at all).
	StallData   int64
	StallMem    int64
	StallConn   int64
	StallBranch int64

	// Interrupt accounting (Config.Trap).
	Traps         int64
	TrapOverheads int64 // cycles spent in handlers / context switches

	// OpMix counts dynamic instructions by functional-unit class.
	OpMix [16]int64
}

// MixOf returns the dynamic count for a functional-unit class.
func (r *Result) MixOf(k isa.Kind) int64 { return r.OpMix[k] }

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// ErrCycleLimit reports that simulation exceeded Config.MaxCycles.
var ErrCycleLimit = errors.New("machine: cycle limit exceeded")

const defaultMaxCycles = int64(1) << 34

// Run simulates the image to completion (HALT) and returns the result.
func Run(img *Image, cfg Config) (res *Result, err error) {
	if cfg.IssueRate <= 0 || cfg.MemChannels <= 0 {
		return nil, fmt.Errorf("machine: invalid config issue=%d channels=%d", cfg.IssueRate, cfg.MemChannels)
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = defaultMaxCycles
	}
	if cfg.MemSize == 0 {
		cfg.MemSize = mem.DefaultSize
	}
	if !cfg.Model.Valid() {
		cfg.Model = core.WriteResetReadUpdate
	}

	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*mem.Fault); ok {
				res, err = nil, f
				return
			}
			panic(r)
		}
	}()

	m := mem.InitImage(img.Prog.IR, img.Layout, cfg.MemSize)
	s := &simState{
		img:  img,
		cfg:  cfg,
		mem:  m,
		ri:   make([]int64, cfg.IntTotal),
		rf:   make([]float64, cfg.FPTotal),
		rdyI: make([]int64, cfg.IntTotal),
		rdyF: make([]int64, cfg.FPTotal),
		tabI: core.NewMapTable(cfg.Model, cfg.IntCore, cfg.IntTotal),
		tabF: core.NewMapTable(cfg.Model, cfg.FPCore, cfg.FPTotal),
		lcI:  make([]int64, cfg.IntCore),
		lcF:  make([]int64, cfg.FPCore),
		res:  &Result{Mem: m, Layout: img.Layout},
	}
	for i := range s.lcI {
		s.lcI[i] = -1
	}
	for i := range s.lcF {
		s.lcF[i] = -1
	}
	s.ri[isa.RegSP] = m.StackTop()
	s.pc = img.Entry
	s.nextTrap = cfg.Trap.Interval
	halted, err := s.runUntil(cfg.MaxCycles)
	if err != nil {
		return nil, err
	}
	if !halted {
		return nil, fmt.Errorf("%w at pc=%d", ErrCycleLimit, s.pc)
	}
	s.res.RetInt = s.ri[2]
	return s.res, nil
}

type simState struct {
	img *Image
	cfg Config
	mem *mem.Memory

	pc   int
	ri   []int64
	rf   []float64
	rdyI []int64 // cycle at which the register's value is available
	rdyF []int64
	tabI *core.MapTable
	tabF *core.MapTable
	lcI  []int64 // cycle of the last connect touching this int map entry
	lcF  []int64

	cycle    int64
	nextTrap int64

	res *Result
}

// stall reasons for attribution.
type stallReason uint8

const (
	stallNone stallReason = iota
	stallData
	stallMem
	stallConn
)

// runUntil simulates until HALT or the global cycle reaches stopAt,
// whichever comes first, reporting whether the program halted. State
// persists across calls so multiprogramming can interleave processes.
func (s *simState) runUntil(stopAt int64) (halted bool, err error) {
	cfg := s.cfg
	penalty := int64(basePenalty)
	if cfg.ExtraDecodeStage {
		penalty++
	}
	for {
		cycle := s.cycle
		if cycle >= stopAt {
			return false, nil
		}
		if cfg.Trap.Interval > 0 && cycle >= s.nextTrap {
			ov := s.trapOverhead()
			cycle += ov
			s.res.Traps++
			s.res.TrapOverheads += ov
			s.nextTrap = cycle + cfg.Trap.Interval
		}
		issued := 0
		memUsed := 0
		var firstStall stallReason
		branchRedirect := false
		var traceLine []string
		tracing := cfg.Trace != nil && (cfg.TraceCycles == 0 || cycle < cfg.TraceCycles)
		for issued < cfg.IssueRate {
			in := &s.img.Code[s.pc]
			if in.Op == isa.HALT {
				if tracing {
					fmt.Fprintf(cfg.Trace, "%8d  halt\n", cycle)
				}
				s.cycle = cycle + 1
				s.res.Cycles = s.cycle
				return true, nil
			}
			ok, reason := s.canIssue(in, cycle, memUsed)
			if !ok {
				if issued == 0 {
					firstStall = reason
				}
				break
			}
			if tracing {
				traceLine = append(traceLine, fmt.Sprintf("%d:%s", s.pc, in.String()))
			}
			next, mispredict, err := s.execute(in, cycle)
			if err != nil {
				return false, err
			}
			issued++
			s.res.Instrs++
			s.res.OpMix[in.Op.Kind()]++
			if in.Op.IsMem() {
				memUsed++
				s.res.MemOps++
			}
			if in.Op.IsConnect() {
				s.res.Connects++
			}
			s.pc = next
			if mispredict {
				s.res.Mispredicts++
				cycle += penalty
				branchRedirect = true
				break
			}
		}
		if issued == 0 && !branchRedirect {
			switch firstStall {
			case stallData:
				s.res.StallData++
			case stallMem:
				s.res.StallMem++
			case stallConn:
				s.res.StallConn++
			}
		}
		if tracing {
			if issued == 0 {
				stall := map[stallReason]string{stallData: "data", stallMem: "mem", stallConn: "connect"}[firstStall]
				fmt.Fprintf(cfg.Trace, "%8d  (stall: %s)\n", cycle, stall)
			} else {
				fmt.Fprintf(cfg.Trace, "%8d  %s\n", cycle, strings.Join(traceLine, " | "))
			}
		}
		s.cycle = cycle + 1
	}
}

// canIssue applies the in-order issue interlocks: source operands ready
// (CRAY-1 style), destination not pending (scoreboard WAW), a free memory
// channel for loads/stores, and — under 1-cycle connect latency — no
// same-cycle connect on a referenced map entry.
func (s *simState) canIssue(in *isa.Instr, cycle int64, memUsed int) (bool, stallReason) {
	if in.Op.IsMem() && memUsed >= s.cfg.MemChannels {
		return false, stallMem
	}
	// Map-entry connect-latency interlock.
	if s.cfg.ConnectLatency > 0 {
		check := func(r isa.Reg) bool {
			lc := s.lcI
			if r.Class == isa.ClassFloat {
				lc = s.lcF
			}
			return lc[r.N] < cycle
		}
		if d := in.Def(); d.Valid() && !check(d) {
			return false, stallConn
		}
		for _, u := range in.Uses(nil) {
			if !check(u) {
				return false, stallConn
			}
		}
	}
	// Source readiness through the mapping table.
	srcReady := func(r isa.Reg) bool {
		if r.Class == isa.ClassFloat {
			return s.rdyF[s.tabF.ReadPhys(r.N)] <= cycle
		}
		p := s.tabI.ReadPhys(r.N)
		if p == isa.RegZero {
			return true
		}
		return s.rdyI[p] <= cycle
	}
	var buf [3]isa.Reg
	for _, u := range in.Uses(buf[:0]) {
		if !srcReady(u) {
			return false, stallData
		}
	}
	if d := in.Def(); d.Valid() {
		if d.Class == isa.ClassFloat {
			if s.rdyF[s.tabF.WritePhys(d.N)] > cycle {
				return false, stallData
			}
		} else if p := s.tabI.WritePhys(d.N); p != isa.RegZero && s.rdyI[p] > cycle {
			return false, stallData
		}
	}
	return true, stallNone
}

// execute performs the instruction functionally and updates timing state.
// It returns the next pc and whether a branch mispredicted.
func (s *simState) execute(in *isa.Instr, cycle int64) (int, bool, error) {
	cfg := &s.cfg
	lat := int64(cfg.Lat.Of(in.Op))
	next := s.pc + 1

	readI := func(r isa.Reg) int64 {
		p := s.tabI.ReadPhys(r.N)
		if p == isa.RegZero {
			return 0
		}
		return s.ri[p]
	}
	readF := func(r isa.Reg) float64 { return s.rf[s.tabF.ReadPhys(r.N)] }
	writeI := func(r isa.Reg, v int64) {
		p := s.tabI.NoteWrite(r.N)
		if p == isa.RegZero {
			return
		}
		s.ri[p] = v
		s.rdyI[p] = cycle + lat
	}
	writeF := func(r isa.Reg, v float64) {
		p := s.tabF.NoteWrite(r.N)
		s.rf[p] = v
		s.rdyF[p] = cycle + lat
	}
	src2 := func() int64 {
		if in.UseImm {
			return in.Imm
		}
		return readI(in.B)
	}

	switch in.Op {
	case isa.NOP:
	case isa.ADD:
		writeI(in.Dst, readI(in.A)+src2())
	case isa.SUB:
		writeI(in.Dst, readI(in.A)-src2())
	case isa.MUL:
		writeI(in.Dst, readI(in.A)*src2())
	case isa.DIV:
		d := src2()
		if d == 0 {
			return 0, false, fmt.Errorf("machine: divide by zero at pc=%d", s.pc)
		}
		writeI(in.Dst, readI(in.A)/d)
	case isa.REM:
		d := src2()
		if d == 0 {
			return 0, false, fmt.Errorf("machine: rem by zero at pc=%d", s.pc)
		}
		writeI(in.Dst, readI(in.A)%d)
	case isa.AND:
		writeI(in.Dst, readI(in.A)&src2())
	case isa.OR:
		writeI(in.Dst, readI(in.A)|src2())
	case isa.XOR:
		writeI(in.Dst, readI(in.A)^src2())
	case isa.SLL:
		writeI(in.Dst, readI(in.A)<<uint64(src2()&63))
	case isa.SRL:
		writeI(in.Dst, int64(uint64(readI(in.A))>>uint64(src2()&63)))
	case isa.SRA:
		writeI(in.Dst, readI(in.A)>>uint64(src2()&63))
	case isa.SLT:
		if readI(in.A) < src2() {
			writeI(in.Dst, 1)
		} else {
			writeI(in.Dst, 0)
		}
	case isa.MOV:
		writeI(in.Dst, readI(in.A))
	case isa.MOVI:
		writeI(in.Dst, in.Imm)
	case isa.LD:
		writeI(in.Dst, s.mem.LoadI(readI(in.A)+in.Imm))
	case isa.ST:
		s.mem.StoreI(readI(in.A)+in.Imm, readI(in.B))
	case isa.FLD:
		writeF(in.Dst, s.mem.LoadF(readI(in.A)+in.Imm))
	case isa.FST:
		s.mem.StoreF(readI(in.A)+in.Imm, readF(in.B))
	case isa.FADD:
		writeF(in.Dst, readF(in.A)+readF(in.B))
	case isa.FSUB:
		writeF(in.Dst, readF(in.A)-readF(in.B))
	case isa.FMUL:
		writeF(in.Dst, readF(in.A)*readF(in.B))
	case isa.FDIV:
		writeF(in.Dst, readF(in.A)/readF(in.B))
	case isa.FMOV:
		writeF(in.Dst, readF(in.A))
	case isa.FMOVI:
		writeF(in.Dst, in.FImm())
	case isa.FNEG:
		writeF(in.Dst, -readF(in.A))
	case isa.FABS:
		writeF(in.Dst, math.Abs(readF(in.A)))
	case isa.CVTIF:
		writeF(in.Dst, float64(readI(in.A)))
	case isa.CVTFI:
		writeI(in.Dst, int64(readF(in.A)))
	case isa.BR:
		next = in.Target
	case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE:
		taken := intTaken(in.Op, readI(in.A), src2())
		if taken {
			next = in.Target
		}
		return next, taken != in.Pred, nil
	case isa.FBEQ, isa.FBNE, isa.FBLT, isa.FBLE:
		taken := fpTaken(in.Op, readF(in.A), readF(in.B))
		if taken {
			next = in.Target
		}
		return next, taken != in.Pred, nil
	case isa.CALL:
		sp := s.ri[isa.RegSP] - 8
		s.mem.StoreI(sp, int64(s.pc+1))
		s.ri[isa.RegSP] = sp
		s.tabI.Reset()
		s.tabF.Reset()
		next = in.Target
	case isa.RET:
		sp := s.ri[isa.RegSP]
		next = int(s.mem.LoadI(sp))
		s.ri[isa.RegSP] = sp + 8
		s.tabI.Reset()
		s.tabF.Reset()
	case isa.CONUSE, isa.CONDEF, isa.CONUU, isa.CONDU, isa.CONDD:
		tab, lc := s.tabI, s.lcI
		if in.CClass == isa.ClassFloat {
			tab, lc = s.tabF, s.lcF
		}
		for _, p := range in.ConnectPairs() {
			if p.Def {
				tab.ConnectDef(int(p.Idx), int(p.Phys))
			} else {
				tab.ConnectUse(int(p.Idx), int(p.Phys))
			}
			lc[p.Idx] = cycle
		}
	default:
		return 0, false, fmt.Errorf("machine: cannot execute %v at pc=%d", in.Op, s.pc)
	}
	return next, false, nil
}

func intTaken(op isa.Op, a, b int64) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return a < b
	case isa.BLE:
		return a <= b
	case isa.BGT:
		return a > b
	case isa.BGE:
		return a >= b
	}
	return false
}

func fpTaken(op isa.Op, a, b float64) bool {
	switch op {
	case isa.FBEQ:
		return a == b
	case isa.FBNE:
		return a != b
	case isa.FBLT:
		return a < b
	case isa.FBLE:
		return a <= b
	}
	return false
}
