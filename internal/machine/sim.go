package machine

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"syscall"

	"regconn/internal/core"
	"regconn/internal/isa"
	"regconn/internal/mem"
)

// Config describes one simulated machine (the experimental variables of
// §5.2: issue rate, memory channels, load latency, core register counts,
// RC support and its implementation scenario).
type Config struct {
	IssueRate   int
	MemChannels int
	Lat         isa.Latencies

	IntCore, IntTotal int // m and n for the integer file
	FPCore, FPTotal   int
	Model             core.Model

	// ConnectLatency 0 models the forwarding implementation of §2.4
	// (connects affect same-cycle instructions); 1 models the simpler
	// implementation where dependent instructions wait a cycle.
	ConnectLatency int

	// ExtraDecodeStage adds the pipeline stage of Figure 12's
	// "additional pipeline stage" scenarios: the branch misprediction
	// penalty grows by one cycle.
	ExtraDecodeStage bool

	// ReadPorts caps the distinct physical registers read per cycle and
	// class (0 = unlimited): the portreduce backend's issue-stage
	// structural hazard. Several instructions reading the same register
	// in one cycle share a port (operand-sharing credit). Values below
	// two are clamped so a two-source instruction can always issue.
	ReadPorts int

	// Chain honors the chain backend's forwarding annotations: a marked
	// consumer's read of the forwarded operand skips the readiness
	// interlock (the value forwards producer→consumer within the cycle),
	// modeling the elided register-file write/read pair.
	Chain bool

	// Trap enables periodic interrupts / context switches (§4.2–4.3).
	Trap TrapConfig

	// Trace, when non-nil, receives a per-cycle issue log for the first
	// TraceCycles cycles (0 = no limit): one line per cycle listing the
	// instructions issued with their resolved physical operands. The
	// writer is wrapped in a buffered writer for the duration of the run
	// and flushed when the run returns.
	Trace       io.Writer
	TraceCycles int64

	// Prof enables per-static-instruction cycle attribution: every cycle
	// the ledger accounts for is additionally charged to a PC (see
	// PCProf). The result carries the counters in Result.Prof.
	Prof bool

	// Events, when non-nil, receives structured pipeline events (issues,
	// stalls, connects, map resets, traps) for the Chrome trace-event
	// export; see EventRing.WriteTraceJSON.
	Events *EventRing

	MemSize   int64
	MaxCycles int64
}

// basePenalty is the front-end refill cost of a mispredicted branch for the
// four-stage pipeline of Figure 4 (fetch + decode refill).
const basePenalty = 2

// DefaultConfig returns the paper's center configuration: 4-issue, two
// memory channels, 2-cycle loads, model-3 RC with zero-cycle connects.
func DefaultConfig() Config {
	return Config{
		IssueRate:   4,
		MemChannels: 2,
		Lat:         isa.DefaultLatencies(2),
		IntCore:     64, IntTotal: 64,
		FPCore: 64, FPTotal: 64,
		Model: core.WriteResetReadUpdate,
	}
}

// normalize validates the issue geometry and fills the defaults shared by
// Run and RunMultiprogrammed, so the two entry points cannot drift.
func (cfg *Config) normalize() error {
	if cfg.IssueRate <= 0 || cfg.MemChannels <= 0 {
		return fmt.Errorf("machine: invalid config issue=%d channels=%d", cfg.IssueRate, cfg.MemChannels)
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = defaultMaxCycles
	}
	if cfg.MemSize == 0 {
		cfg.MemSize = mem.DefaultSize
	}
	if !cfg.Model.Valid() {
		cfg.Model = core.WriteResetReadUpdate
	}
	if cfg.ReadPorts > 0 && cfg.ReadPorts < 2 {
		cfg.ReadPorts = 2 // a two-source instruction must always fit
	}
	return nil
}

// bufferTrace wraps the config's trace writer in a buffered writer for the
// duration of a run — the per-issued-line fmt.Fprintf would otherwise hit
// the underlying writer unbuffered — and returns the flush to defer
// (`defer bufferTrace(&cfg).finish(&err)`). The flush runs on every exit
// path (clean halt, simulation error, recovered fault panic); when the
// underlying writer is a file it is also fsynced, so the tail of a trace
// survives even a crashed run. A flush failure on an otherwise-successful
// run surfaces through errp. With tracing off it is a no-op; the flusher
// is a concrete value rather than a closure so the deferred call does not
// force the caller's error result onto the heap (the zero-allocation
// arena path runs through here every Machine.RunContext).
func bufferTrace(cfg *Config) traceFlusher {
	if cfg.Trace == nil {
		return traceFlusher{}
	}
	orig := cfg.Trace
	bw := bufio.NewWriterSize(orig, 1<<16)
	cfg.Trace = bw
	return traceFlusher{bw: bw, orig: orig}
}

// traceFlusher flushes a run's buffered trace writer; see bufferTrace.
type traceFlusher struct {
	bw   *bufio.Writer
	orig io.Writer
}

func (t traceFlusher) finish(errp *error) {
	if t.bw == nil {
		return
	}
	ferr := t.bw.Flush()
	if f, ok := t.orig.(*os.File); ok {
		serr := f.Sync()
		// Pipes, terminals, and /dev/null don't support fsync
		// (EINVAL/ENOTSUP); only real files need the durability.
		if errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP) {
			serr = nil
		}
		if ferr == nil {
			ferr = serr
		}
	}
	if ferr != nil && *errp == nil {
		*errp = fmt.Errorf("machine: trace flush: %w", ferr)
	}
}

// RuntimeError is a structured simulated-execution failure: the faulting
// function and static instruction, the cycle the instruction issued in, the
// process index (multiprogramming; 0 otherwise), and the underlying cause
// (a *mem.Fault for wild accesses, or an arithmetic error). It is returned
// as an ordinary error — a guest program's memory fault must never surface
// as a host panic, no matter which entry point ran it.
type RuntimeError struct {
	Func  string // function containing PC ("(init)" for image setup faults)
	PC    int    // static instruction index (-1 outside program execution)
	Cycle int64  // issue cycle of the faulting instruction
	Proc  uint8  // process index (multiprogrammed runs)
	Err   error  // underlying cause
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("machine: runtime error in %s at pc=%d cycle=%d: %v", e.Func, e.PC, e.Cycle, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *RuntimeError) Unwrap() error { return e.Err }

// runtimeError wraps a failure with the simulator's current execution
// context. pc is the instruction being issued when the failure occurred.
func (s *simState) runtimeError(pc int, cycle int64, cause error) error {
	var re *RuntimeError
	if errors.As(cause, &re) {
		return cause // already contextualized (nested runUntil)
	}
	return &RuntimeError{Func: s.img.FuncAt(pc), PC: pc, Cycle: cycle, Proc: s.proc, Err: cause}
}

// recoverFault converts a memory-fault panic raised outside the cycle loop
// (image initialization in simState.reset — the loop itself recovers its
// own faults with full pc context) into a structured error return; any other
// panic is re-raised. Used as `defer recoverFault(&res, &err)` by both
// simulation entry points.
func recoverFault[T any](res **T, err *error) {
	if r := recover(); r != nil {
		f, ok := r.(*mem.Fault)
		if !ok {
			panic(r)
		}
		*res, *err = nil, &RuntimeError{Func: "(init)", PC: -1, Err: f}
	}
}

// Result reports one simulation.
type Result struct {
	Cycles      int64
	Instrs      int64 // dynamic instructions issued
	Connects    int64 // dynamic connect instructions
	MemOps      int64
	Mispredicts int64
	RetInt      int64 // integer return value of main (r2 at halt)
	Mem         *mem.Memory
	Layout      mem.Layout

	// Stall cycle attribution (a cycle with no issue at all).
	StallData   int64
	StallMem    int64
	StallConn   int64
	StallPorts  int64 // register-file read ports exhausted (Config.ReadPorts)
	StallBranch int64 // mispredict front-end refill penalty cycles

	// HaltCycles counts the final HALT-fetch cycle when nothing issued in
	// it (0 or 1 per program; the halt cycle is an issue cycle otherwise).
	HaltCycles int64

	// ActiveCycles is the number of cycles this process occupied the
	// machine. Equal to Cycles for single-process runs; in a
	// multiprogrammed run Cycles is the global clock at halt while
	// ActiveCycles is this process's own share of it.
	ActiveCycles int64

	// IssueHist[k] counts cycles in which exactly k instructions issued
	// (length Config.IssueRate+1): per-cycle issue-slot utilization.
	IssueHist []int64

	// Resolution-cache telemetry (issue.go): operand resolutions served
	// from the per-map-entry cache vs recomputed through the mapping table.
	ResolveHits   int64
	ResolveMisses int64

	// Interrupt accounting (Config.Trap).
	Traps         int64
	TrapOverheads int64 // cycles spent in handlers / context switches

	// Map-table telemetry, captured when a single-process run completes.
	// Multiprogrammed processes share the tables; see MultiResult.
	MapInt, MapFP core.Stats

	// Prof is the per-PC cycle attribution, non-nil only when Config.Prof
	// was set (see PCProf for the charging rules).
	Prof *PCProf

	// OpMix counts dynamic instructions by functional-unit class.
	OpMix [16]int64

	// Chain-forwarding telemetry (Config.Chain): producer instructions
	// issued with a forwarding mark, and consumer operand reads served by
	// the forward instead of the register file.
	ChainPairs       int64
	ChainElidedReads int64

	// PortLimitedCycles counts cycles whose issue group was cut short by
	// the read-port limit after at least one instruction issued. Such
	// cycles are issue cycles in the ledger (the width loss, not a stall,
	// is the cost), so this is telemetry rather than a ledger bucket; the
	// zero-issue StallPorts bucket stays reachable only for ISAs with more
	// sources than ports.
	PortLimitedCycles int64
}

// CheckLedger verifies that every cycle this process occupied the machine
// is attributed to exactly one bucket: issue cycles (IssueHist), branch
// penalty, and trap overhead must sum to ActiveCycles; zero-issue cycles
// must be fully explained by the four stall reasons plus the halt cycle;
// and the issue histogram must account for every issued instruction.
func (r *Result) CheckLedger() error {
	if r.IssueHist == nil {
		return errors.New("machine: result has no issue histogram")
	}
	var histCycles, histInstrs int64
	for k, c := range r.IssueHist {
		histCycles += c
		histInstrs += int64(k) * c
	}
	if got := histCycles + r.StallBranch + r.TrapOverheads; got != r.ActiveCycles {
		return fmt.Errorf("machine: ledger does not close: issue %d + branch %d + trap %d = %d, want %d active cycles",
			histCycles, r.StallBranch, r.TrapOverheads, got, r.ActiveCycles)
	}
	if got := r.StallData + r.StallMem + r.StallConn + r.StallPorts + r.HaltCycles; got != r.IssueHist[0] {
		return fmt.Errorf("machine: zero-issue cycles unattributed: data %d + mem %d + connect %d + ports %d + halt %d = %d, want %d",
			r.StallData, r.StallMem, r.StallConn, r.StallPorts, r.HaltCycles, got, r.IssueHist[0])
	}
	if histInstrs != r.Instrs {
		return fmt.Errorf("machine: issue histogram covers %d instructions, result has %d", histInstrs, r.Instrs)
	}
	return nil
}

// MixOf returns the dynamic count for a functional-unit class.
func (r *Result) MixOf(k isa.Kind) int64 { return r.OpMix[k] }

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// ErrCycleLimit reports that simulation exceeded Config.MaxCycles.
var ErrCycleLimit = errors.New("machine: cycle limit exceeded")

const defaultMaxCycles = int64(1) << 34

// cancelCheckInterval is how often (in cycles) the cycle loop polls the
// run's context. Checking every cycle would put a channel poll on the hot
// path; at this stride the check amortizes to one compare per cycle (see
// BENCH_sim.json) while still bounding cancellation latency to a few
// thousand simulated cycles.
const cancelCheckInterval = 4096

// ErrCanceled reports that a run was stopped by its context; the wrapping
// RuntimeError records where. errors.Is also matches the context's own
// error (context.Canceled or context.DeadlineExceeded).
var ErrCanceled = errors.New("machine: run canceled")

// Run simulates the image to completion (HALT) and returns the result.
func Run(img *Image, cfg Config) (res *Result, err error) {
	return RunContext(context.Background(), img, cfg)
}

// RunContext simulates the image to completion or until ctx is canceled,
// whichever comes first. Cancellation is polled inside the cycle loop every
// cancelCheckInterval cycles, so a long simulation stops within a bounded
// number of simulated cycles of the cancel; the returned error wraps both
// ErrCanceled and the context's error.
//
// Each call constructs a private arena, so the result aliases nothing; to
// amortize the arena across many runs, use Machine directly.
func RunContext(ctx context.Context, img *Image, cfg Config) (*Result, error) {
	m := NewMachine()
	if err := m.Reset(img, cfg); err != nil {
		return nil, err
	}
	return m.RunContext(ctx)
}

// simState is the execution pipeline state of one simulated process: the
// predecoded micro-op stream, the (possibly shared) physical register file
// and mapping tables, and the per-map-entry resolution caches stamped with
// the tables' generation counters.
type simState struct {
	img  *Image
	cfg  Config
	mem  *mem.Memory
	code []uop // predecoded micro-ops, 1:1 with img.Code

	pc   int
	ri   []int64
	rf   []float64
	rdyI []int64 // cycle at which the register's value is available
	rdyF []int64
	tabI *core.MapTable
	tabF *core.MapTable
	lcI  []int64 // cycle of the last connect touching this int map entry
	lcF  []int64

	// Cached physical resolutions per map index, valid while the stamp
	// equals the owning table's generation (see issue.go).
	rPhysI, wPhysI   []int32
	rStampI, wStampI []uint64
	rPhysF, wPhysF   []int32
	rStampF, wStampF []uint64

	// Read-port tracking (Config.ReadPorts): the cycle each physical
	// register was last read in, and the distinct registers read so far
	// this cycle per class. Allocated only when the port hazard is on.
	portStampI, portStampF []int64
	portCntI, portCntF     int

	cycle    int64
	nextTrap int64

	// Cooperative cancellation: ctxDone is the run context's done channel
	// (nil for background contexts, which can never cancel), polled when
	// the cycle count reaches nextCancel.
	ctx        context.Context
	ctxDone    <-chan struct{}
	nextCancel int64

	res  *Result
	prof *PCProf    // per-PC attribution, nil unless Config.Prof
	ev   *EventRing // structured event sink, nil unless Config.Events
	proc uint8      // process index (multiprogramming; 0 otherwise)

	// Predecode cache: code is rebuilt by reset only when the image or the
	// predecode-relevant configuration (chain mode, latency table) changed
	// since the previous run on this state.
	predImg   *Image
	predChain bool
	predLat   isa.Latencies

	// Arena scratch reused across runs: the map-table telemetry snapshots
	// the Result exports (statI/statF) and the trap path's save/restore
	// contexts (trapCtxI/trapCtxF).
	statI, statF core.Stats
	trapCtxI     core.Context
	trapCtxF     core.Context
}

// bindContext arms the cycle loop's cancellation polling. A context that
// can never be canceled (Done() == nil) keeps nextCancel beyond any
// reachable cycle so the hot path pays a single int compare.
func (s *simState) bindContext(ctx context.Context) {
	s.ctx = ctx
	s.ctxDone = ctx.Done()
	if s.ctxDone == nil {
		s.nextCancel = math.MaxInt64
	} else {
		s.nextCancel = s.cycle + cancelCheckInterval
	}
}

// reset wires the state for a fresh run over the given (possibly shared)
// register file and mapping tables, reusing every allocation from the
// previous run on this state. Predecode is skipped when the image and the
// predecode-relevant configuration are unchanged; memory reinitialization
// rezeros only the pages the previous run dirtied (mem.InitImageInto). The
// resulting state is observationally identical to a freshly constructed
// one; only the PCProf (cfg.Prof) allocates, because the profile must
// outlive the arena it was collected on.
func (s *simState) reset(img *Image, cfg Config, ri []int64, rf []float64,
	rdyI, rdyF []int64, tabI, tabF *core.MapTable, proc uint8) {
	s.img, s.cfg = img, cfg
	s.mem = mem.InitImageInto(s.mem, img.Prog.IR, img.Layout, cfg.MemSize)
	if s.predImg != img || s.predChain != cfg.Chain || s.predLat != cfg.Lat {
		s.code = predecodeInto(s.code, img.Code, img.Ann, cfg.Chain, cfg.Lat)
		s.predImg, s.predChain, s.predLat = img, cfg.Chain, cfg.Lat
	}
	s.ri, s.rf, s.rdyI, s.rdyF = ri, rf, rdyI, rdyF
	s.tabI, s.tabF = tabI, tabF
	s.lcI = filled(s.lcI, cfg.IntCore, -1)
	s.lcF = filled(s.lcF, cfg.FPCore, -1)
	// Cached resolutions: the values may stay stale (a stamp mismatch
	// forces recomputation) but the stamps must be zeroed — a reinitialized
	// table restarts its generation counter, so a stale stamp could
	// otherwise collide with a live generation.
	s.rPhysI = grown(s.rPhysI, cfg.IntCore)
	s.wPhysI = grown(s.wPhysI, cfg.IntCore)
	s.rPhysF = grown(s.rPhysF, cfg.FPCore)
	s.wPhysF = grown(s.wPhysF, cfg.FPCore)
	s.rStampI = zeroed(s.rStampI, cfg.IntCore)
	s.wStampI = zeroed(s.wStampI, cfg.IntCore)
	s.rStampF = zeroed(s.rStampF, cfg.FPCore)
	s.wStampF = zeroed(s.wStampF, cfg.FPCore)
	if cfg.ReadPorts > 0 {
		s.portStampI = filled(s.portStampI, cfg.IntTotal, -1)
		s.portStampF = filled(s.portStampF, cfg.FPTotal, -1)
	}
	s.portCntI, s.portCntF = 0, 0
	s.pc = img.Entry
	s.cycle, s.nextTrap = 0, 0
	s.ctx, s.ctxDone = nil, nil
	s.nextCancel = math.MaxInt64 // no context bound yet
	if s.res == nil {
		s.res = &Result{}
	}
	hist := zeroed(s.res.IssueHist, cfg.IssueRate+1)
	*s.res = Result{Mem: s.mem, Layout: img.Layout, IssueHist: hist}
	s.prof = nil
	if cfg.Prof {
		s.prof = newPCProf(len(img.Code))
		s.res.Prof = s.prof
	}
	s.ev = cfg.Events
	if s.ev != nil {
		s.ev.issue = cfg.IssueRate
	}
	s.proc = proc
}

// stall reasons for attribution.
type stallReason uint8

const (
	stallNone stallReason = iota
	stallData
	stallMem
	stallConn
	stallPorts
)

// stallNames labels stall reasons in traces (hoisted so tracing a stall
// cycle does not rebuild a map).
var stallNames = [...]string{
	stallNone:  "",
	stallData:  "data",
	stallMem:   "mem",
	stallConn:  "connect",
	stallPorts: "ports",
}

// runUntil simulates until HALT or the global cycle reaches stopAt,
// whichever comes first, reporting whether the program halted. State
// persists across calls so multiprogramming can interleave processes.
//
// Failures — execute errors and the memory-fault panics of wild guest
// accesses — leave through a single exit that wraps them in a RuntimeError
// (function, pc, issue cycle) and, when tracing, emits the partially
// assembled line of the faulting cycle so the trace tail shows the
// instruction that died rather than ending one cycle early.
func (s *simState) runUntil(stopAt int64) (halted bool, err error) {
	cfg := s.cfg
	penalty := int64(basePenalty)
	if cfg.ExtraDecodeStage {
		penalty++
	}
	start := s.cycle
	defer func() { s.res.ActiveCycles += s.cycle - start }()
	var (
		tracing    bool
		issueCycle int64
		traceLine  []string
	)
	defer func() {
		if r := recover(); r != nil {
			f, ok := r.(*mem.Fault)
			if !ok {
				panic(r)
			}
			// s.pc still names the faulting instruction: the issue loop
			// only advances it after execute returns.
			halted, err = false, s.runtimeError(s.pc, issueCycle, f)
		}
		if err != nil && tracing {
			line := strings.Join(traceLine, " | ")
			if line != "" {
				line += "  "
			}
			fmt.Fprintf(cfg.Trace, "%8d  %s!! %v\n", issueCycle, line, err)
		}
	}()
	for {
		cycle := s.cycle
		// Keep the trace-tail state fresh so an error raised before this
		// cycle's issue loop (cancellation) reports cleanly.
		issueCycle, traceLine = cycle, traceLine[:0]
		tracing = cfg.Trace != nil && (cfg.TraceCycles == 0 || cycle < cfg.TraceCycles)
		if cycle >= stopAt {
			return false, nil
		}
		if cycle >= s.nextCancel && s.ctxDone != nil {
			select {
			case <-s.ctxDone:
				return false, s.runtimeError(s.pc, cycle,
					fmt.Errorf("%w after %d cycles: %w", ErrCanceled, cycle, context.Cause(s.ctx)))
			default:
				s.nextCancel = cycle + cancelCheckInterval
			}
		}
		if cfg.Trap.Interval > 0 && cycle >= s.nextTrap {
			ov := s.trapOverhead()
			if s.prof != nil {
				// Charged to the instruction that was about to issue.
				s.prof.TrapOverhead[s.pc] += ov
			}
			if s.ev != nil {
				s.ev.add(Event{Kind: EvTrap, Cycle: cycle, Dur: ov, PC: int32(s.pc), Proc: s.proc})
			}
			cycle += ov
			s.res.Traps++
			s.res.TrapOverheads += ov
			s.nextTrap = cycle + cfg.Trap.Interval
		}
		issued := 0
		memUsed := 0
		s.portCntI, s.portCntF = 0, 0
		var firstStall stallReason
		branchRedirect := false
		// issueCycle is the cycle the issue engine runs in; `cycle` may
		// have absorbed trap overhead above (and may additionally absorb a
		// mispredict penalty below), so trace lines are stamped with
		// issueCycle to stay monotonic.
		issueCycle = cycle
		tracing = cfg.Trace != nil && (cfg.TraceCycles == 0 || issueCycle < cfg.TraceCycles)
		for issued < cfg.IssueRate {
			u := &s.code[s.pc]
			if u.Op == isa.HALT {
				if tracing {
					fmt.Fprintf(cfg.Trace, "%8d  halt\n", issueCycle)
				}
				s.res.IssueHist[issued]++
				if issued == 0 {
					s.res.HaltCycles++
					if s.prof != nil {
						s.prof.Halt[s.pc]++
					}
				}
				if s.ev != nil {
					s.ev.add(Event{Kind: EvHalt, Cycle: issueCycle, PC: int32(s.pc), Proc: s.proc})
				}
				s.cycle = cycle + 1
				s.res.Cycles = s.cycle
				return true, nil
			}
			ok, reason := s.canIssue(u, cycle, memUsed)
			if !ok {
				if issued == 0 {
					firstStall = reason
				} else if reason == stallPorts {
					// The group still issued something, so no ledger stall is
					// charged; count the cycle as port-limited for the stats.
					// (With the two-source ISA and the >=2-port clamp, the
					// head of a group always has ports, so this — not the
					// zero-issue StallPorts bucket — is where a reduced-port
					// file shows up.)
					s.res.PortLimitedCycles++
				}
				break
			}
			if tracing {
				traceLine = append(traceLine, fmt.Sprintf("%d:%s", s.pc, s.img.Code[s.pc].String()))
			}
			issuePC := s.pc
			next, mispredict, err := s.execute(u, cycle)
			if err != nil {
				return false, s.runtimeError(issuePC, issueCycle, err)
			}
			issued++
			s.res.Instrs++
			s.res.OpMix[u.Kind]++
			if s.prof != nil {
				s.prof.Instrs[issuePC]++
				if issued == 1 {
					// The cycle's issue slot time is owned by the
					// instruction that opened it.
					s.prof.IssueCycles[issuePC]++
				}
			}
			if s.ev != nil {
				s.ev.add(Event{Kind: EvIssue, Cycle: issueCycle, Dur: 1,
					PC: int32(issuePC), Slot: uint8(issued - 1), Proc: s.proc})
			}
			if u.Mem {
				memUsed++
				s.res.MemOps++
			}
			if u.Connect {
				s.res.Connects++
			}
			if u.chainOut {
				s.res.ChainPairs++
			}
			if u.chainIn {
				for k := range u.Uses() {
					if u.chainSkip[k] {
						s.res.ChainElidedReads++
					}
				}
			}
			s.pc = next
			if mispredict {
				s.res.Mispredicts++
				cycle += penalty
				s.res.StallBranch += penalty
				if s.prof != nil {
					s.prof.StallBranch[issuePC] += penalty
				}
				branchRedirect = true
				break
			}
		}
		s.res.IssueHist[issued]++
		if issued == 0 && !branchRedirect {
			// s.pc is the instruction that failed to issue: the stall
			// cycle is charged to it.
			switch firstStall {
			case stallData:
				s.res.StallData++
				if s.prof != nil {
					s.prof.StallData[s.pc]++
				}
			case stallMem:
				s.res.StallMem++
				if s.prof != nil {
					s.prof.StallMem[s.pc]++
				}
			case stallConn:
				s.res.StallConn++
				if s.prof != nil {
					s.prof.StallConn[s.pc]++
				}
			case stallPorts:
				s.res.StallPorts++
				if s.prof != nil {
					s.prof.StallPorts[s.pc]++
				}
			}
			if s.ev != nil {
				s.ev.add(Event{Kind: EvStall, Cycle: issueCycle, Dur: 1,
					PC: int32(s.pc), Proc: s.proc, Arg: int32(firstStall)})
			}
		}
		if tracing {
			if issued == 0 {
				fmt.Fprintf(cfg.Trace, "%8d  (stall: %s)\n", issueCycle, stallNames[firstStall])
			} else {
				fmt.Fprintf(cfg.Trace, "%8d  %s\n", issueCycle, strings.Join(traceLine, " | "))
			}
		}
		s.cycle = cycle + 1
	}
}
