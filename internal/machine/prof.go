package machine

// Per-PC cycle attribution (the rcprof collection layer). When
// Config.Prof is set, the issue engine charges every cycle the aggregate
// ledger (Result.CheckLedger) accounts for to one static instruction:
//
//   - each issued instruction charges Instrs at its own PC, and the first
//     instruction to issue in a cycle additionally charges IssueCycles
//     (so issue cycles are owned by the instruction that opened them);
//   - a zero-issue stall cycle charges StallData/StallMem/StallConn at the
//     PC of the instruction that failed to issue;
//   - a mispredict's front-end refill penalty charges StallBranch at the
//     mispredicted branch's PC;
//   - trap/context-switch overhead charges TrapOverhead at the PC that was
//     about to issue when the interrupt fired;
//   - the final no-issue HALT fetch charges Halt at the HALT's PC.
//
// CheckAgainst proves the per-PC columns sum bit-exactly back to the
// ledger buckets, so attribution can never silently drift from PR 2's
// accounting (see DESIGN.md §10).

import (
	"errors"
	"fmt"
)

// PCProf is the per-static-instruction attribution of one simulation. All
// slices are indexed by absolute instruction address (Image.Code index).
type PCProf struct {
	Instrs       []int64 // dynamic instructions issued at this PC
	IssueCycles  []int64 // issue cycles opened by this PC (first issuer)
	StallData    []int64 // operand-not-ready stall cycles blocked here
	StallMem     []int64 // memory-channel stall cycles blocked here
	StallConn    []int64 // connect-interlock stall cycles blocked here
	StallPorts   []int64 // read-port stall cycles blocked here (portreduce)
	StallBranch  []int64 // mispredict penalty cycles caused by this branch
	TrapOverhead []int64 // interrupt overhead charged at the resume PC
	Halt         []int64 // final no-issue HALT fetch cycle
}

func newPCProf(n int) *PCProf {
	return &PCProf{
		Instrs:       make([]int64, n),
		IssueCycles:  make([]int64, n),
		StallData:    make([]int64, n),
		StallMem:     make([]int64, n),
		StallConn:    make([]int64, n),
		StallPorts:   make([]int64, n),
		StallBranch:  make([]int64, n),
		TrapOverhead: make([]int64, n),
		Halt:         make([]int64, n),
	}
}

// Len returns the number of static instructions covered.
func (p *PCProf) Len() int { return len(p.Instrs) }

// CyclesAt returns the total cycles attributed to one PC (every bucket the
// ledger partitions ActiveCycles into).
func (p *PCProf) CyclesAt(pc int) int64 {
	return p.IssueCycles[pc] + p.StallData[pc] + p.StallMem[pc] + p.StallConn[pc] +
		p.StallPorts[pc] + p.StallBranch[pc] + p.TrapOverhead[pc] + p.Halt[pc]
}

// sum totals one attribution column.
func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// CheckAgainst verifies that every per-PC attribution column sums exactly
// to its aggregate ledger bucket in r: issued instructions to the issue
// histogram's instruction count, issue cycles to the histogram's non-zero
// cycles, each stall column to its stall counter, branch penalties to
// StallBranch, trap overhead to TrapOverheads, and halt to HaltCycles.
// Together with Result.CheckLedger this proves per-PC attribution is a
// partition refinement of ActiveCycles.
func (p *PCProf) CheckAgainst(r *Result) error {
	if r.IssueHist == nil {
		return errors.New("machine: result has no issue histogram")
	}
	var histCycles, histInstrs int64
	for k, c := range r.IssueHist {
		if k > 0 {
			histCycles += c
		}
		histInstrs += int64(k) * c
	}
	checks := []struct {
		name      string
		col       []int64
		wantTotal int64
	}{
		{"instrs", p.Instrs, histInstrs},
		{"issue-cycles", p.IssueCycles, histCycles},
		{"stall-data", p.StallData, r.StallData},
		{"stall-mem", p.StallMem, r.StallMem},
		{"stall-connect", p.StallConn, r.StallConn},
		{"stall-ports", p.StallPorts, r.StallPorts},
		{"stall-branch", p.StallBranch, r.StallBranch},
		{"trap-overhead", p.TrapOverhead, r.TrapOverheads},
		{"halt", p.Halt, r.HaltCycles},
	}
	for _, c := range checks {
		if got := sum(c.col); got != c.wantTotal {
			return fmt.Errorf("machine: per-PC %s attribution sums to %d, ledger bucket has %d",
				c.name, got, c.wantTotal)
		}
	}
	return nil
}
