package machine

import (
	"reflect"
	"testing"

	"regconn/internal/isa"
)

// connProg is a small program exercising the paths that matter for arena
// reuse: connects (map-table telemetry with per-index breakdowns), memory
// traffic (dirty pages), data stalls, and a branch.
func connProg() []isa.Instr {
	return []isa.Instr{
		movi(3, 64),
		{Op: isa.ST, A: isa.IntReg(3), B: isa.IntReg(3), Imm: 0},
		{Op: isa.CONDEF, CIdx: [2]uint16{4}, CPhys: [2]uint16{10}, CClass: isa.ClassInt},
		{Op: isa.LD, Dst: isa.IntReg(4), A: isa.IntReg(3), Imm: 0},
		addi(2, 4, 0),
		{Op: isa.BEQ, A: isa.IntReg(2), Imm: 0, UseImm: true, Target: 7, Pred: false},
		addi(2, 2, 1),
		halt(),
	}
}

func smallCfg() Config {
	c := DefaultConfig()
	c.IntCore, c.IntTotal = 8, 16
	c.FPCore, c.FPTotal = 8, 16
	return c
}

// mustRunArena resets and runs the arena, failing the test on any error.
func mustRunArena(t *testing.T, m *Machine, img *Image, c Config) *Result {
	t.Helper()
	if err := m.Reset(img, c); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compareResults checks that an arena run is bit-identical to a fresh one:
// the full exported statistics (ledger, histograms, map telemetry, op mix)
// and the architectural result must match.
func compareResults(t *testing.T, fresh, reused *Result) {
	t.Helper()
	if fresh.RetInt != reused.RetInt {
		t.Errorf("RetInt: fresh %d, reused %d", fresh.RetInt, reused.RetInt)
	}
	fs, rs := fresh.Stats(), reused.Stats()
	if !reflect.DeepEqual(fs, rs) {
		t.Errorf("stats diverge:\nfresh:  %+v\nreused: %+v", fs, rs)
	}
}

func TestMachineResetRerunBitIdentical(t *testing.T) {
	img := asm(connProg()...)
	c := smallCfg()
	fresh := run(t, img, c)

	m := NewMachine()
	for i := 0; i < 3; i++ {
		compareResults(t, fresh, mustRunArena(t, m, img, c))
	}
}

func TestMachineResetAcrossImagesAndConfigs(t *testing.T) {
	imgA := asm(connProg()...)
	imgB := asm(
		movi(2, 20),
		addi(2, 2, 22),
		halt(),
	)
	c2 := smallCfg()
	c4 := smallCfg()
	c4.Lat = isa.DefaultLatencies(4) // invalidates the predecode cache
	cPorts := smallCfg()
	cPorts.ReadPorts = 2
	cWide := DefaultConfig() // back to the 64/64 geometry
	cTrap := smallCfg()
	cTrap.Trap = TrapConfig{Interval: 8, HandlerCycles: 3, HandlerRegs: 2}

	points := []struct {
		name string
		img  *Image
		cfg  Config
	}{
		{"connects/lat2", imgA, c2},
		{"connects/lat4", imgA, c4},
		{"connects/ports", imgA, cPorts},
		{"plain/wide", imgB, cWide},
		{"connects/trap", imgA, cTrap},
		{"connects/lat2-again", imgA, c2},
	}
	m := NewMachine()
	for _, p := range points {
		fresh := run(t, p.img, p.cfg)
		got := mustRunArena(t, m, p.img, p.cfg)
		t.Run(p.name, func(t *testing.T) { compareResults(t, fresh, got) })
	}
}

// TestMachineMemoryResetIsComplete verifies the dirty-page wipe: a store
// from one run must not be visible to the next, including across a memory
// size change.
func TestMachineMemoryResetIsComplete(t *testing.T) {
	const addr = 1 << 16 // in a page the second program never writes
	writer := asm(
		movi(3, addr),
		movi(4, 77),
		isa.Instr{Op: isa.ST, A: isa.IntReg(3), B: isa.IntReg(4), Imm: 0},
		halt(),
	)
	reader := asm(
		movi(3, addr),
		isa.Instr{Op: isa.LD, Dst: isa.IntReg(2), A: isa.IntReg(3), Imm: 0},
		halt(),
	)
	m := NewMachine()
	c := smallCfg()
	if res := mustRunArena(t, m, writer, c); res.Mem.LoadI(addr) != 77 {
		t.Fatalf("store lost: mem[%#x] = %d", addr, res.Mem.LoadI(addr))
	}
	if res := mustRunArena(t, m, reader, c); res.RetInt != 0 {
		t.Errorf("stale memory across Reset: read %d, want 0", res.RetInt)
	}
	// Size change reallocates; the wipe must still hold in both directions.
	cBig := c
	cBig.MemSize = 1 << 25
	mustRunArena(t, m, writer, cBig)
	if res := mustRunArena(t, m, reader, c); res.RetInt != 0 {
		t.Errorf("stale memory across size change: read %d, want 0", res.RetInt)
	}
}

func TestMachineRunRequiresReset(t *testing.T) {
	m := NewMachine()
	if _, err := m.Run(); err == nil {
		t.Fatal("run on unarmed arena should fail")
	}
	img := asm(movi(2, 1), halt())
	mustRunArena(t, m, img, smallCfg())
	if _, err := m.Run(); err == nil {
		t.Fatal("second run without a new Reset should fail")
	}
}

// TestMachineSteadyStateZeroAllocs pins the arena contract: once warm, a
// Reset+Run cycle performs no heap allocation. This is the invariant the
// batch sweep path (internal/exp, cmd/rcbench) depends on; scripts/
// benchgate.sh enforces the same property on the recorded benchmark.
func TestMachineSteadyStateZeroAllocs(t *testing.T) {
	img := asm(connProg()...)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"plain", smallCfg()},
		{"ports", func() Config { c := smallCfg(); c.ReadPorts = 2; return c }()},
		{"trap-switch", func() Config {
			c := smallCfg()
			c.Trap = TrapConfig{Interval: 8, ContextSwitch: true}
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMachine()
			mustRunArena(t, m, img, tc.cfg) // warm the arena
			allocs := testing.AllocsPerRun(20, func() {
				if err := m.Reset(img, tc.cfg); err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state Reset+Run allocates %.1f times, want 0", allocs)
			}
		})
	}
}

func TestMachineMultiprogrammedReuse(t *testing.T) {
	imgs := []*Image{asm(connProg()...), asm(
		movi(2, 20),
		addi(2, 2, 22),
		halt(),
	)}
	c := smallCfg()
	fresh, err := RunMultiprogrammed(imgs, c, 16, FullSave)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	// A single-process run in between must not disturb the multi path.
	mustRunArena(t, m, imgs[0], c)
	for i := 0; i < 2; i++ {
		got, err := m.RunMultiprogrammedContext(t.Context(), imgs, c, 16, FullSave)
		if err != nil {
			t.Fatal(err)
		}
		if got.Switches != fresh.Switches || got.SwitchCycles != fresh.SwitchCycles ||
			got.Cycles != fresh.Cycles {
			t.Errorf("scheduler diverges: got %d/%d/%d, want %d/%d/%d",
				got.Switches, got.SwitchCycles, got.Cycles,
				fresh.Switches, fresh.SwitchCycles, fresh.Cycles)
		}
		for p := range imgs {
			compareResults(t, fresh.Results[p], got.Results[p])
		}
		if !reflect.DeepEqual(fresh.MapInt, got.MapInt) || !reflect.DeepEqual(fresh.MapFP, got.MapFP) {
			t.Error("shared map telemetry diverges")
		}
	}
}

// BenchmarkArenaResetRun times the Reset+Run cycle on a warm arena — the
// per-point cost a batched sweep pays after predecode and slice growth
// have been amortized. Run with -benchmem: the contract is 0 allocs/op.
func BenchmarkArenaResetRun(b *testing.B) {
	img := asm(connProg()...)
	c := smallCfg()
	m := NewMachine()
	if err := m.Reset(img, c); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Reset(img, c); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
