package machine

import (
	"testing"

	"regconn/internal/isa"
)

// trapProg is a long-enough loop for interrupts to fire repeatedly.
func trapProg() []isa.Instr {
	return []isa.Instr{
		movi(2, 0),
		movi(3, 0),
		addi(2, 2, 1), // loop body (pc 2)
		addi(3, 3, 1),
		{Op: isa.BLT, A: isa.IntReg(3), Imm: 5000, UseImm: true, Target: 2, Pred: true},
		halt(),
	}
}

func TestTrapsAreTransparent(t *testing.T) {
	c := DefaultConfig()
	c.IntCore, c.IntTotal = 16, 256
	c.FPCore, c.FPTotal = 16, 256
	base := run(t, asm(trapProg()...), c)

	c.Trap = TrapConfig{Interval: 500, HandlerCycles: 20, HandlerRegs: 4, UseEnableFlag: true}
	trapped := run(t, asm(trapProg()...), c)
	if trapped.RetInt != base.RetInt {
		t.Fatalf("traps changed architectural state: %d vs %d", trapped.RetInt, base.RetInt)
	}
	if trapped.Traps == 0 || trapped.TrapOverheads == 0 {
		t.Fatalf("no traps fired: %+v", trapped)
	}
	if trapped.Cycles != base.Cycles+trapped.TrapOverheads {
		t.Errorf("overhead accounting: %d != %d + %d", trapped.Cycles, base.Cycles, trapped.TrapOverheads)
	}
}

func TestEnableFlagCheaperThanNaiveHandler(t *testing.T) {
	c := DefaultConfig()
	c.Trap = TrapConfig{Interval: 500, HandlerCycles: 10, HandlerRegs: 8, UseEnableFlag: true}
	flag := run(t, asm(trapProg()...), c)
	c.Trap.UseEnableFlag = false
	naive := run(t, asm(trapProg()...), c)
	if flag.TrapOverheads >= naive.TrapOverheads {
		t.Errorf("enable flag (%d) should be cheaper than naive bookkeeping (%d)",
			flag.TrapOverheads, naive.TrapOverheads)
	}
	if flag.RetInt != naive.RetInt {
		t.Error("handler strategy changed program result")
	}
}

func TestContextSwitchPSWFlag(t *testing.T) {
	mk := func(programUsesRC, pswFlag bool) *Result {
		c := DefaultConfig()
		c.IntCore, c.IntTotal = 16, 256
		c.FPCore, c.FPTotal = 16, 256
		c.Trap = TrapConfig{Interval: 1000, ContextSwitch: true,
			PSWFlag: pswFlag, ProgramUsesRC: programUsesRC}
		return run(t, asm(trapProg()...), c)
	}
	origFlag := mk(false, true) // original-arch process, smart OS
	rcFlag := mk(true, true)    // RC process: full state either way
	origNoFlag := mk(false, false)
	if origFlag.TrapOverheads >= rcFlag.TrapOverheads {
		t.Errorf("core-only switch (%d) should be cheaper than full RC switch (%d)",
			origFlag.TrapOverheads, rcFlag.TrapOverheads)
	}
	if origFlag.TrapOverheads >= origNoFlag.TrapOverheads {
		t.Errorf("PSW flag (%d) should beat the conservative OS (%d)",
			origFlag.TrapOverheads, origNoFlag.TrapOverheads)
	}
	for _, r := range []*Result{origFlag, rcFlag, origNoFlag} {
		if r.RetInt != 5000 {
			t.Errorf("context switches corrupted state: %d", r.RetInt)
		}
	}
}

func TestContextSwitchPreservesConnections(t *testing.T) {
	// A diverted map entry must survive a context switch (§4.2's whole
	// point): connect, loop with switches, then read through the entry.
	prog := []isa.Instr{
		{Op: isa.CONDEF, CIdx: [2]uint16{3}, CPhys: [2]uint16{100}, CClass: isa.ClassInt},
		movi(3, 77), // into rp100; model 3 sets read map
		movi(4, 0),
		addi(4, 4, 1), // pc 3: spin to attract context switches
		{Op: isa.BLT, A: isa.IntReg(4), Imm: 3000, UseImm: true, Target: 3, Pred: true},
		add(2, 3, 0), // read through the diverted entry
		halt(),
	}
	c := DefaultConfig()
	c.IntCore, c.IntTotal = 16, 256
	c.FPCore, c.FPTotal = 16, 256
	c.Trap = TrapConfig{Interval: 400, ContextSwitch: true, PSWFlag: true, ProgramUsesRC: true}
	res := run(t, asm(prog...), c)
	if res.Traps == 0 {
		t.Fatal("no switches fired")
	}
	if res.RetInt != 77 {
		t.Errorf("connection state lost across context switch: r2 = %d, want 77", res.RetInt)
	}
}
