package machine

import "regconn/internal/isa"

// Predecode stage of the simulator pipeline: the image's instructions are
// lowered once per run into micro-ops (uops) whose operand sets, connect
// pairs, classification flags, and result latencies are pre-extracted.
// Issue (issue.go) and execute (exec.go) then run entirely off this form —
// the per-cycle hot path performs no per-op switches and no allocation.

// uop is one predecoded micro-op: the isa.Decoded operand/role extraction
// plus the configuration-dependent result latency.
type uop struct {
	isa.Decoded
	lat int64 // cycles until a dependent instruction may issue
}

// predecode lowers machine code to micro-ops under the run's latency
// configuration.
func predecode(code []isa.Instr, lat isa.Latencies) []uop {
	us := make([]uop, len(code))
	for i := range code {
		us[i].Decoded = code[i].Decode()
		us[i].lat = int64(lat.Of(us[i].Op))
	}
	return us
}
