package machine

import (
	"regconn/internal/codegen"
	"regconn/internal/isa"
)

// Predecode stage of the simulator pipeline: the image's instructions are
// lowered once per run into micro-ops (uops) whose operand sets, connect
// pairs, classification flags, and result latencies are pre-extracted.
// Issue (issue.go) and execute (exec.go) then run entirely off this form —
// the per-cycle hot path performs no per-op switches and no allocation.

// uop is one predecoded micro-op: the isa.Decoded operand/role extraction
// plus the configuration-dependent result latency and the chain backend's
// forwarding marks resolved to use-slot positions.
type uop struct {
	isa.Decoded
	lat int64 // cycles until a dependent instruction may issue

	// Chain-forwarding marks (Config.Chain). chainOut marks a producer
	// whose result forwards to the next instruction; chainSkip marks the
	// consumer's use slots served by the forward (their readiness
	// interlock is skipped); chainIn is set when any slot is; chainDst
	// marks a consumer that overwrites the forwarded register (its WAW
	// interlock against the elided producer write is skipped).
	chainOut  bool
	chainIn   bool
	chainSkip [3]bool
	chainDst  bool
}

// predecode lowers machine code to micro-ops under the run's latency
// configuration. With chain enabled, the per-instruction annotations'
// forwarding marks are resolved against the operand registers (under the
// chain backend instructions carry physical register numbers directly).
func predecode(code []isa.Instr, ann []codegen.Annot, chain bool, lat isa.Latencies) []uop {
	return predecodeInto(nil, code, ann, chain, lat)
}

// predecodeInto is predecode over a reused micro-op slice: dst's backing
// array is kept when its capacity suffices (the run-arena path), and every
// element is fully rewritten so no mark from a previous lowering survives.
func predecodeInto(dst []uop, code []isa.Instr, ann []codegen.Annot, chain bool, lat isa.Latencies) []uop {
	us := grown(dst, len(code))
	for i := range code {
		u := &us[i]
		*u = uop{Decoded: code[i].Decode()}
		u.lat = int64(lat.Of(u.Op))
		if !chain || i >= len(ann) {
			continue
		}
		a := &ann[i]
		u.chainOut = a.ChainOut
		if !a.ChainA && !a.ChainB {
			continue
		}
		in := &code[i]
		for k, r := range u.Uses() {
			if r.Class != isa.ClassInt {
				continue
			}
			if (a.ChainA && r == in.A) || (a.ChainB && r == in.B) {
				u.chainSkip[k] = true
				u.chainIn = true
			}
		}
		if d := u.Dst; d.Valid() && d.Class == isa.ClassInt {
			if (a.ChainA && d == in.A) || (a.ChainB && d == in.B) {
				u.chainDst = true
			}
		}
	}
	return us
}
