package machine

import (
	"fmt"
	"math"

	"regconn/internal/isa"
)

// Execute stage: functional execution plus timing update, dispatched
// through a function table indexed by opcode instead of a monolithic
// switch. Operand reads go through the issue stage's cached resolutions
// (issue.go), so each operand is resolved through the mapping table once
// per cycle; writes commit through MapTable.NoteWrite, which applies the
// automatic-reset side effect of the configured model (§2.3).

type execFn func(s *simState, u *uop, cycle int64) (next int, mispredict bool, err error)

// execTab is sized for the whole opcode byte so corrupt opcodes dispatch
// to the nil entry (an error) rather than out of bounds.
var execTab [256]execFn

// execute performs the micro-op and returns the next pc and whether a
// branch mispredicted.
func (s *simState) execute(u *uop, cycle int64) (int, bool, error) {
	if fn := execTab[u.Op]; fn != nil {
		return fn(s, u, cycle)
	}
	return 0, false, fmt.Errorf("machine: cannot execute %v at pc=%d", u.Op, s.pc)
}

// srcI reads the integer register behind map index n; a read resolving to
// the zero register yields 0.
func (s *simState) srcI(n int) int64 {
	p := s.physReadI(n)
	if p == isa.RegZero {
		return 0
	}
	return s.ri[p]
}

// srcF reads the floating-point register behind map index n.
func (s *simState) srcF(n int) float64 { return s.rf[s.physReadF(n)] }

// src2 is the second integer source: immediate or the B register.
func (s *simState) src2(u *uop) int64 {
	if u.UseImm {
		return u.Imm
	}
	return s.srcI(u.B.N)
}

// setI commits an integer write through the destination map entry,
// applying the model's automatic reset; writes landing on the zero
// register are dropped.
func (s *simState) setI(u *uop, v int64, cycle int64) {
	p := s.tabI.NoteWrite(u.Dst.N)
	if p == isa.RegZero {
		return
	}
	s.ri[p] = v
	s.rdyI[p] = cycle + u.lat
}

// setF commits a floating-point write through the destination map entry.
func (s *simState) setF(u *uop, v float64, cycle int64) {
	p := s.tabF.NoteWrite(u.Dst.N)
	s.rf[p] = v
	s.rdyF[p] = cycle + u.lat
}

// aluOp builds the executor for a three-address integer op.
func aluOp(f func(a, b int64) int64) execFn {
	return func(s *simState, u *uop, cycle int64) (int, bool, error) {
		s.setI(u, f(s.srcI(u.A.N), s.src2(u)), cycle)
		return s.pc + 1, false, nil
	}
}

// fpOp builds the executor for a two-source floating-point op.
func fpOp(f func(a, b float64) float64) execFn {
	return func(s *simState, u *uop, cycle int64) (int, bool, error) {
		s.setF(u, f(s.srcF(u.A.N), s.srcF(u.B.N)), cycle)
		return s.pc + 1, false, nil
	}
}

// fpOp1 builds the executor for a single-source floating-point op.
func fpOp1(f func(a float64) float64) execFn {
	return func(s *simState, u *uop, cycle int64) (int, bool, error) {
		s.setF(u, f(s.srcF(u.A.N)), cycle)
		return s.pc + 1, false, nil
	}
}

func execNOP(s *simState, u *uop, cycle int64) (int, bool, error) {
	return s.pc + 1, false, nil
}

func execDIV(s *simState, u *uop, cycle int64) (int, bool, error) {
	d := s.src2(u)
	if d == 0 {
		return 0, false, fmt.Errorf("machine: divide by zero at pc=%d", s.pc)
	}
	s.setI(u, s.srcI(u.A.N)/d, cycle)
	return s.pc + 1, false, nil
}

func execREM(s *simState, u *uop, cycle int64) (int, bool, error) {
	d := s.src2(u)
	if d == 0 {
		return 0, false, fmt.Errorf("machine: rem by zero at pc=%d", s.pc)
	}
	s.setI(u, s.srcI(u.A.N)%d, cycle)
	return s.pc + 1, false, nil
}

func execMOV(s *simState, u *uop, cycle int64) (int, bool, error) {
	s.setI(u, s.srcI(u.A.N), cycle)
	return s.pc + 1, false, nil
}

func execMOVI(s *simState, u *uop, cycle int64) (int, bool, error) {
	s.setI(u, u.Imm, cycle)
	return s.pc + 1, false, nil
}

func execFMOVI(s *simState, u *uop, cycle int64) (int, bool, error) {
	s.setF(u, u.FI, cycle)
	return s.pc + 1, false, nil
}

func execLD(s *simState, u *uop, cycle int64) (int, bool, error) {
	s.setI(u, s.mem.LoadI(s.srcI(u.A.N)+u.Imm), cycle)
	return s.pc + 1, false, nil
}

func execST(s *simState, u *uop, cycle int64) (int, bool, error) {
	s.mem.StoreI(s.srcI(u.A.N)+u.Imm, s.srcI(u.B.N))
	return s.pc + 1, false, nil
}

func execFLD(s *simState, u *uop, cycle int64) (int, bool, error) {
	s.setF(u, s.mem.LoadF(s.srcI(u.A.N)+u.Imm), cycle)
	return s.pc + 1, false, nil
}

func execFST(s *simState, u *uop, cycle int64) (int, bool, error) {
	s.mem.StoreF(s.srcI(u.A.N)+u.Imm, s.srcF(u.B.N))
	return s.pc + 1, false, nil
}

func execCVTIF(s *simState, u *uop, cycle int64) (int, bool, error) {
	s.setF(u, float64(s.srcI(u.A.N)), cycle)
	return s.pc + 1, false, nil
}

func execCVTFI(s *simState, u *uop, cycle int64) (int, bool, error) {
	s.setI(u, int64(s.srcF(u.A.N)), cycle)
	return s.pc + 1, false, nil
}

func execBR(s *simState, u *uop, cycle int64) (int, bool, error) {
	return u.Target, false, nil
}

func execIntBranch(s *simState, u *uop, cycle int64) (int, bool, error) {
	taken := intTaken(u.Op, s.srcI(u.A.N), s.src2(u))
	next := s.pc + 1
	if taken {
		next = u.Target
	}
	return next, taken != u.Pred, nil
}

func execFPBranch(s *simState, u *uop, cycle int64) (int, bool, error) {
	taken := fpTaken(u.Op, s.srcF(u.A.N), s.srcF(u.B.N))
	next := s.pc + 1
	if taken {
		next = u.Target
	}
	return next, taken != u.Pred, nil
}

func execCALL(s *simState, u *uop, cycle int64) (int, bool, error) {
	sp := s.ri[isa.RegSP] - 8
	s.mem.StoreI(sp, int64(s.pc+1))
	s.ri[isa.RegSP] = sp
	s.tabI.Reset()
	s.tabF.Reset()
	if s.ev != nil {
		s.ev.add(Event{Kind: EvReset, Cycle: cycle, PC: int32(s.pc), Proc: s.proc})
	}
	return u.Target, false, nil
}

func execRET(s *simState, u *uop, cycle int64) (int, bool, error) {
	sp := s.ri[isa.RegSP]
	next := int(s.mem.LoadI(sp))
	s.ri[isa.RegSP] = sp + 8
	s.tabI.Reset()
	s.tabF.Reset()
	if s.ev != nil {
		s.ev.add(Event{Kind: EvReset, Cycle: cycle, PC: int32(s.pc), Proc: s.proc})
	}
	return next, false, nil
}

func execConnect(s *simState, u *uop, cycle int64) (int, bool, error) {
	tab, lc := s.tabI, s.lcI
	if u.CClass == isa.ClassFloat {
		tab, lc = s.tabF, s.lcF
	}
	for _, p := range u.Pairs() {
		if p.Def {
			tab.ConnectDef(int(p.Idx), int(p.Phys))
		} else {
			tab.ConnectUse(int(p.Idx), int(p.Phys))
		}
		lc[p.Idx] = cycle
	}
	if s.ev != nil {
		s.ev.add(Event{Kind: EvConnect, Cycle: cycle, PC: int32(s.pc), Proc: s.proc})
	}
	return s.pc + 1, false, nil
}

func init() {
	execTab[isa.NOP] = execNOP
	execTab[isa.ADD] = aluOp(func(a, b int64) int64 { return a + b })
	execTab[isa.SUB] = aluOp(func(a, b int64) int64 { return a - b })
	execTab[isa.MUL] = aluOp(func(a, b int64) int64 { return a * b })
	execTab[isa.AND] = aluOp(func(a, b int64) int64 { return a & b })
	execTab[isa.OR] = aluOp(func(a, b int64) int64 { return a | b })
	execTab[isa.XOR] = aluOp(func(a, b int64) int64 { return a ^ b })
	execTab[isa.SLL] = aluOp(func(a, b int64) int64 { return a << uint64(b&63) })
	execTab[isa.SRL] = aluOp(func(a, b int64) int64 { return int64(uint64(a) >> uint64(b&63)) })
	execTab[isa.SRA] = aluOp(func(a, b int64) int64 { return a >> uint64(b&63) })
	execTab[isa.SLT] = aluOp(func(a, b int64) int64 {
		if a < b {
			return 1
		}
		return 0
	})
	execTab[isa.MOV] = execMOV
	execTab[isa.DIV] = execDIV
	execTab[isa.REM] = execREM
	execTab[isa.MOVI] = execMOVI
	execTab[isa.LD] = execLD
	execTab[isa.ST] = execST
	execTab[isa.FLD] = execFLD
	execTab[isa.FST] = execFST
	execTab[isa.FADD] = fpOp(func(a, b float64) float64 { return a + b })
	execTab[isa.FSUB] = fpOp(func(a, b float64) float64 { return a - b })
	execTab[isa.FMUL] = fpOp(func(a, b float64) float64 { return a * b })
	execTab[isa.FDIV] = fpOp(func(a, b float64) float64 { return a / b })
	execTab[isa.FMOV] = fpOp1(func(a float64) float64 { return a })
	execTab[isa.FMOVI] = execFMOVI
	execTab[isa.FNEG] = fpOp1(func(a float64) float64 { return -a })
	execTab[isa.FABS] = fpOp1(math.Abs)
	execTab[isa.CVTIF] = execCVTIF
	execTab[isa.CVTFI] = execCVTFI
	execTab[isa.BR] = execBR
	for _, op := range []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE} {
		execTab[op] = execIntBranch
	}
	for _, op := range []isa.Op{isa.FBEQ, isa.FBNE, isa.FBLT, isa.FBLE} {
		execTab[op] = execFPBranch
	}
	execTab[isa.CALL] = execCALL
	execTab[isa.RET] = execRET
	for _, op := range []isa.Op{isa.CONUSE, isa.CONDEF, isa.CONUU, isa.CONDU, isa.CONDD} {
		execTab[op] = execConnect
	}
}

func intTaken(op isa.Op, a, b int64) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return a < b
	case isa.BLE:
		return a <= b
	case isa.BGT:
		return a > b
	case isa.BGE:
		return a >= b
	}
	return false
}

func fpTaken(op isa.Op, a, b float64) bool {
	switch op {
	case isa.FBEQ:
		return a == b
	case isa.FBNE:
		return a != b
	case isa.FBLT:
		return a < b
	case isa.FBLE:
		return a <= b
	}
	return false
}
