package machine

// Structured pipeline event trace: a fixed-capacity ring of compact event
// records fed by the issue/execute pipeline when Config.Events is set, and
// a Chrome trace-event JSON exporter so a run can be inspected on a
// timeline in chrome://tracing or Perfetto instead of by eyeballing the
// flat text trace. One simulated cycle maps to one microsecond of trace
// time; each process gets one track per issue slot, one stall track, and
// one instant track for connects, map resets, and traps.

import (
	"encoding/json"
	"fmt"
	"io"
)

// EventKind classifies one pipeline event.
type EventKind uint8

const (
	// EvIssue is one instruction occupying one issue slot for one cycle.
	EvIssue EventKind = iota
	// EvStall is a zero-issue cycle; Arg is the stall reason (stallReason).
	EvStall
	// EvConnect is a connect instruction rewriting map entries (instant).
	EvConnect
	// EvReset is a CALL/RET map-table home reset (instant).
	EvReset
	// EvTrap is an interrupt; Dur is the overhead charged.
	EvTrap
	// EvHalt is the final HALT fetch (instant).
	EvHalt
	// EvSwitch is a multiprogramming context switch; Dur is its cost.
	EvSwitch
)

// Event is one compact trace record. PC indexes Image.Code; Slot is the
// issue slot (issue events only); Proc is the process index (0 for
// single-process runs).
type Event struct {
	Kind  EventKind
	Cycle int64
	Dur   int64
	PC    int32
	Slot  uint8
	Proc  uint8
	Arg   int32
}

// EventRing is a bounded event buffer: when full, the oldest events are
// overwritten, so the trace always holds the most recent window of the
// run. The zero value is a ready-to-use ring of DefaultEventCap events
// (storage allocated on first add), so `Config.Events = &EventRing{}`
// works. It is not safe for concurrent use (the simulator is single-
// threaded).
//
// The ring is a single monotonic write counter over a fixed slice: event
// number i lives at buf[i % len(buf)]. The oldest retained event and the
// overwrite count both derive from the counter, so iteration cannot drift
// out of sync with the write position.
type EventRing struct {
	buf   []Event
	total int64 // events ever added; next write goes to buf[total % len]
	issue int   // issue rate of the attached machine (track layout)
}

// DefaultEventCap is the default ring capacity (events, not cycles).
const DefaultEventCap = 1 << 16

// NewEventRing returns a ring holding up to capacity events (0 selects
// DefaultEventCap).
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventRing{buf: make([]Event, capacity)}
}

// add appends one event, overwriting the oldest when full.
func (r *EventRing) add(e Event) {
	if len(r.buf) == 0 {
		r.buf = make([]Event, DefaultEventCap)
	}
	r.buf[r.total%int64(len(r.buf))] = e
	r.total++
}

// Events returns the buffered events, oldest first. After the ring wraps,
// the first returned event is the true oldest retained entry (event number
// total-len), never a slot the writer has already reclaimed.
func (r *EventRing) Events() []Event {
	n := int64(len(r.buf))
	if r.total == 0 || n == 0 {
		return nil
	}
	if r.total <= n {
		return append([]Event(nil), r.buf[:r.total]...)
	}
	start := r.total % n
	out := make([]Event, 0, n)
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// Dropped reports how many events were overwritten after the ring filled.
func (r *EventRing) Dropped() int64 {
	if n := int64(len(r.buf)); r.total > n {
		return r.total - n
	}
	return 0
}

// traceEvent is one Chrome trace-event JSON record (the subset of the
// trace-event format the viewers need: complete "X", instant "i", and
// metadata "M" events).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level chrome://tracing document.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	Meta            struct {
		CycleUnit string `json:"cycle_unit"`
		Dropped   int64  `json:"events_dropped"`
	} `json:"otherData"`
}

// instrName disassembles the instruction at pc in the process's image
// (best effort; out-of-range PCs can only come from a corrupted ring).
func instrName(imgs []*Image, proc uint8, pc int32) string {
	if int(proc) < len(imgs) {
		if code := imgs[proc].Code; pc >= 0 && int(pc) < len(code) {
			return code[pc].String()
		}
	}
	return fmt.Sprintf("pc=%d", pc)
}

// WriteTraceJSON renders the buffered events as Chrome trace-event JSON
// (load the file in chrome://tracing or ui.perfetto.dev). imgs holds one
// image per process, in process order, for instruction names; pass the
// single image of a plain Run. One cycle is rendered as one microsecond.
func (r *EventRing) WriteTraceJSON(w io.Writer, imgs ...*Image) error {
	stallTid := r.issue
	instantTid := r.issue + 1

	var out traceFile
	out.DisplayTimeUnit = "ms"
	out.Meta.CycleUnit = "1 cycle = 1us"
	out.Meta.Dropped = r.Dropped()

	procs := map[int]bool{}
	for _, e := range r.Events() {
		procs[int(e.Proc)] = true
		te := traceEvent{Ts: e.Cycle, Pid: int(e.Proc)}
		switch e.Kind {
		case EvIssue:
			te.Name = instrName(imgs, e.Proc, e.PC)
			te.Ph, te.Dur, te.Tid = "X", 1, int(e.Slot)
			te.Args = map[string]any{"pc": e.PC}
		case EvStall:
			te.Name = "stall:" + stallNames[stallReason(e.Arg)]
			te.Ph, te.Dur, te.Tid = "X", 1, stallTid
			te.Args = map[string]any{"pc": e.PC}
		case EvConnect:
			te.Name = instrName(imgs, e.Proc, e.PC)
			te.Ph, te.S, te.Tid = "i", "t", instantTid
			te.Args = map[string]any{"pc": e.PC}
		case EvReset:
			te.Name = "map-reset"
			te.Ph, te.S, te.Tid = "i", "t", instantTid
			te.Args = map[string]any{"pc": e.PC}
		case EvTrap:
			te.Name = "trap"
			te.Ph, te.Dur, te.Tid = "X", e.Dur, instantTid
			te.Args = map[string]any{"overhead_cycles": e.Dur}
		case EvHalt:
			te.Name = "halt"
			te.Ph, te.S, te.Tid = "i", "t", instantTid
		case EvSwitch:
			te.Name = "context-switch"
			te.Ph, te.Dur, te.Tid = "X", e.Dur, instantTid
		default:
			continue
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}

	// Track metadata: name each process and thread so the viewer shows
	// "slot 0..n-1 / stall / events" instead of bare tids.
	for pid := range procs {
		name := fmt.Sprintf("process %d", pid)
		if pid < len(imgs) {
			name = fmt.Sprintf("process %d (%s)", pid, imgs[pid].Prog.Entry)
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
		for s := 0; s < r.issue; s++ {
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: s,
				Args: map[string]any{"name": fmt.Sprintf("issue slot %d", s)},
			})
		}
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: stallTid,
			Args: map[string]any{"name": "stall"},
		}, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: instantTid,
			Args: map[string]any{"name": "events"},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
