package machine

// Structured pipeline event trace: a fixed-capacity ring of compact event
// records fed by the issue/execute pipeline when Config.Events is set, and
// a Chrome trace-event JSON exporter so a run can be inspected on a
// timeline in chrome://tracing or Perfetto instead of by eyeballing the
// flat text trace. One simulated cycle maps to one microsecond of trace
// time; each process gets one track per issue slot, one stall track, and
// one instant track for connects, map resets, and traps.

import (
	"fmt"
	"io"

	"regconn/internal/obs"
)

// EventKind classifies one pipeline event.
type EventKind uint8

const (
	// EvIssue is one instruction occupying one issue slot for one cycle.
	EvIssue EventKind = iota
	// EvStall is a zero-issue cycle; Arg is the stall reason (stallReason).
	EvStall
	// EvConnect is a connect instruction rewriting map entries (instant).
	EvConnect
	// EvReset is a CALL/RET map-table home reset (instant).
	EvReset
	// EvTrap is an interrupt; Dur is the overhead charged.
	EvTrap
	// EvHalt is the final HALT fetch (instant).
	EvHalt
	// EvSwitch is a multiprogramming context switch; Dur is its cost.
	EvSwitch
)

// Event is one compact trace record. PC indexes Image.Code; Slot is the
// issue slot (issue events only); Proc is the process index (0 for
// single-process runs).
type Event struct {
	Kind  EventKind
	Cycle int64
	Dur   int64
	PC    int32
	Slot  uint8
	Proc  uint8
	Arg   int32
}

// EventRing is a bounded event buffer: when full, the oldest events are
// overwritten, so the trace always holds the most recent window of the
// run. The zero value is a ready-to-use ring of DefaultEventCap events
// (storage allocated on first add), so `Config.Events = &EventRing{}`
// works. It is not safe for concurrent use (the simulator is single-
// threaded).
//
// The ring is a single monotonic write counter over a fixed slice: event
// number i lives at buf[i % len(buf)]. The oldest retained event and the
// overwrite count both derive from the counter, so iteration cannot drift
// out of sync with the write position.
type EventRing struct {
	buf   []Event
	total int64 // events ever added; next write goes to buf[total % len]
	issue int   // issue rate of the attached machine (track layout)
}

// DefaultEventCap is the default ring capacity (events, not cycles).
const DefaultEventCap = 1 << 16

// NewEventRing returns a ring holding up to capacity events (0 selects
// DefaultEventCap).
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventRing{buf: make([]Event, capacity)}
}

// add appends one event, overwriting the oldest when full.
func (r *EventRing) add(e Event) {
	if len(r.buf) == 0 {
		r.buf = make([]Event, DefaultEventCap)
	}
	r.buf[r.total%int64(len(r.buf))] = e
	r.total++
}

// Events returns the buffered events, oldest first. After the ring wraps,
// the first returned event is the true oldest retained entry (event number
// total-len), never a slot the writer has already reclaimed.
func (r *EventRing) Events() []Event {
	n := int64(len(r.buf))
	if r.total == 0 || n == 0 {
		return nil
	}
	if r.total <= n {
		return append([]Event(nil), r.buf[:r.total]...)
	}
	start := r.total % n
	out := make([]Event, 0, n)
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// Dropped reports how many events were overwritten after the ring filled.
func (r *EventRing) Dropped() int64 {
	if n := int64(len(r.buf)); r.total > n {
		return r.total - n
	}
	return 0
}

// instrName disassembles the instruction at pc in the process's image
// (best effort; out-of-range PCs can only come from a corrupted ring).
func instrName(imgs []*Image, proc uint8, pc int32) string {
	if int(proc) < len(imgs) {
		if code := imgs[proc].Code; pc >= 0 && int(pc) < len(code) {
			return code[pc].String()
		}
	}
	return fmt.Sprintf("pc=%d", pc)
}

// WriteTraceJSON renders the buffered events as Chrome trace-event JSON
// (load the file in chrome://tracing or ui.perfetto.dev), using the
// document model shared with the request-level span export in
// internal/obs. imgs holds one image per process, in process order, for
// instruction names; pass the single image of a plain Run. One cycle is
// rendered as one microsecond.
func (r *EventRing) WriteTraceJSON(w io.Writer, imgs ...*Image) error {
	stallTid := r.issue
	instantTid := r.issue + 1

	out := obs.TraceFile{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"cycle_unit":     "1 cycle = 1us",
			"events_dropped": r.Dropped(),
		},
	}

	procs := map[int]bool{}
	for _, e := range r.Events() {
		procs[int(e.Proc)] = true
		pid := int(e.Proc)
		var te obs.TraceEvent
		switch e.Kind {
		case EvIssue:
			te = obs.Complete(instrName(imgs, e.Proc, e.PC), e.Cycle, 1, pid, int(e.Slot))
			te.Args = map[string]any{"pc": e.PC}
		case EvStall:
			te = obs.Complete("stall:"+stallNames[stallReason(e.Arg)], e.Cycle, 1, pid, stallTid)
			te.Args = map[string]any{"pc": e.PC}
		case EvConnect:
			te = obs.Instant(instrName(imgs, e.Proc, e.PC), e.Cycle, pid, instantTid)
			te.Args = map[string]any{"pc": e.PC}
		case EvReset:
			te = obs.Instant("map-reset", e.Cycle, pid, instantTid)
			te.Args = map[string]any{"pc": e.PC}
		case EvTrap:
			te = obs.Complete("trap", e.Cycle, e.Dur, pid, instantTid)
			te.Args = map[string]any{"overhead_cycles": e.Dur}
		case EvHalt:
			te = obs.Instant("halt", e.Cycle, pid, instantTid)
		case EvSwitch:
			te = obs.Complete("context-switch", e.Cycle, e.Dur, pid, instantTid)
		default:
			continue
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}

	// Track metadata: name each process and thread so the viewer shows
	// "slot 0..n-1 / stall / events" instead of bare tids.
	for pid := range procs {
		name := fmt.Sprintf("process %d", pid)
		if pid < len(imgs) {
			name = fmt.Sprintf("process %d (%s)", pid, imgs[pid].Prog.Entry)
		}
		out.TraceEvents = append(out.TraceEvents, obs.MetaProcessName(pid, name))
		for s := 0; s < r.issue; s++ {
			out.TraceEvents = append(out.TraceEvents,
				obs.MetaThreadName(pid, s, fmt.Sprintf("issue slot %d", s)))
		}
		out.TraceEvents = append(out.TraceEvents,
			obs.MetaThreadName(pid, stallTid, "stall"),
			obs.MetaThreadName(pid, instantTid, "events"))
	}

	return obs.WriteTraceFile(w, &out)
}
