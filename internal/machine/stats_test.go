package machine

import (
	"encoding/json"
	"reflect"
	"testing"

	"regconn/internal/isa"
)

// statsFixture runs a small RC program whose connects populate the map-
// table telemetry (including the per-index counters), so the export
// exercises every Stats field class: scalars, the ledger, the issue
// histogram, nested core.Stats, and the op-mix map.
func statsFixture(t *testing.T) *Result {
	t.Helper()
	img := asm(
		isa.Instr{Op: isa.CONDEF, CIdx: [2]uint16{4}, CPhys: [2]uint16{40}, CClass: isa.ClassInt},
		movi(4, 21), // writes extended r40
		isa.Instr{Op: isa.CONUSE, CIdx: [2]uint16{5}, CPhys: [2]uint16{40}, CClass: isa.ClassInt},
		add(2, 5, 5),
		isa.Instr{Op: isa.ST, A: isa.IntReg(3), B: isa.IntReg(2), Imm: 64},
		isa.Instr{Op: isa.LD, Dst: isa.IntReg(6), A: isa.IntReg(3), Imm: 64},
		halt(),
	)
	cfg := DefaultConfig()
	cfg.IntCore, cfg.IntTotal = 16, 64
	res := run(t, img, cfg)
	if res.RetInt != 42 {
		t.Fatalf("fixture returns %d, want 42", res.RetInt)
	}
	return res
}

// TestStatsJSONRoundTrip proves the machine-readable export survives a
// marshal/unmarshal cycle without loss: every field of Stats — including
// the nested map-table telemetry and its per-index counters — compares
// deeply equal after the round trip, so rcrun -stats / rcexp -stats
// consumers see exactly what the simulator measured.
func TestStatsJSONRoundTrip(t *testing.T) {
	res := statsFixture(t)
	st := res.Stats()
	if st.Connects != 2 {
		t.Fatalf("fixture ran %d connects, want 2", st.Connects)
	}
	if st.MapInt.ConnectUsesByIndex == nil || st.MapInt.ConnectDefsByIndex == nil {
		t.Fatal("per-index connect counters missing from export")
	}

	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Errorf("Stats did not survive the JSON round trip:\n sent %+v\n got  %+v", st, back)
	}

	// The exported ledger must close over ActiveCycles like the internal
	// one does, even after deserialization.
	if back.Ledger.Total != back.ActiveCycles {
		t.Errorf("exported ledger total %d != active cycles %d", back.Ledger.Total, back.ActiveCycles)
	}
}

// TestStatsIdleClassesExportNil pins the omitempty contract: register
// classes with no connect traffic export nil per-index slices (keeping
// golden JSON files free of zero noise), and nil survives the round trip.
func TestStatsIdleClassesExportNil(t *testing.T) {
	res := statsFixture(t)
	st := res.Stats()
	if st.MapFP.ConnectUsesByIndex != nil || st.MapFP.AutoResetsByIndex != nil {
		t.Fatal("idle FP class exported per-index counters")
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.MapFP.ConnectUsesByIndex != nil {
		t.Error("nil per-index slice materialized through JSON")
	}
}
