package machine

// Machine-readable statistics export: a flattened, JSON-tagged view of a
// Result for tooling (rcrun -stats, rcexp -stats, rcbench). Stats carries
// plain data only — no memory image — so it can be marshalled, diffed
// across runs, and folded into benchmark reports.

import (
	"regconn/internal/core"
	"regconn/internal/isa"
)

// Ledger is the per-bucket cycle attribution of one simulation. The
// buckets partition ActiveCycles exactly; Result.CheckLedger enforces the
// invariant (see DESIGN.md §8 for the attribution semantics).
type Ledger struct {
	Issued       int64 `json:"issued"`                // cycles issuing >= 1 instruction
	StallData    int64 `json:"stall_data"`            // operand not ready
	StallMem     int64 `json:"stall_mem"`             // memory channels exhausted
	StallConnect int64 `json:"stall_connect"`         // connect-latency interlock
	StallPorts   int64 `json:"stall_ports,omitempty"` // read ports exhausted (portreduce)
	StallBranch  int64 `json:"stall_branch"`          // mispredict refill penalty
	TrapOverhead int64 `json:"trap_overhead"`         // handlers / context switches
	Halt         int64 `json:"halt"`                  // final HALT fetch with no issue
	Total        int64 `json:"total"`                 // sum of the above == ActiveCycles
}

// Stats is the machine-readable summary of one simulation.
type Stats struct {
	Cycles        int64            `json:"cycles"`
	ActiveCycles  int64            `json:"active_cycles"`
	Instrs        int64            `json:"instrs"`
	IPC           float64          `json:"ipc"`
	Connects      int64            `json:"connects"`
	MemOps        int64            `json:"mem_ops"`
	Mispredicts   int64            `json:"mispredicts"`
	Traps         int64            `json:"traps"`
	Ledger        Ledger           `json:"ledger"`
	IssueHist     []int64          `json:"issue_hist"`
	ResolveHits   int64            `json:"resolve_hits"`
	ResolveMisses int64            `json:"resolve_misses"`
	MapInt        core.Stats       `json:"map_int"`
	MapFP         core.Stats       `json:"map_fp"`
	OpMix         map[string]int64 `json:"op_mix"`

	// Chain-forwarding telemetry (the chain backend; zero elsewhere).
	ChainPairs       int64 `json:"chain_pairs,omitempty"`
	ChainElidedReads int64 `json:"chain_elided_reads,omitempty"`

	// PortLimitedCycles counts issue cycles cut short by the read-port
	// limit (the portreduce backend; zero elsewhere).
	PortLimitedCycles int64 `json:"port_limited_cycles,omitempty"`
}

// Stats flattens the result into its export form.
func (r *Result) Stats() Stats {
	led := Ledger{
		StallData:    r.StallData,
		StallMem:     r.StallMem,
		StallConnect: r.StallConn,
		StallPorts:   r.StallPorts,
		StallBranch:  r.StallBranch,
		TrapOverhead: r.TrapOverheads,
		Halt:         r.HaltCycles,
	}
	for k, c := range r.IssueHist {
		if k > 0 {
			led.Issued += c
		}
	}
	led.Total = led.Issued + led.StallData + led.StallMem + led.StallConnect +
		led.StallPorts + led.StallBranch + led.TrapOverhead + led.Halt
	mix := make(map[string]int64)
	for k, n := range r.OpMix {
		if n != 0 {
			mix[isa.Kind(k).String()] = n
		}
	}
	return Stats{
		Cycles:        r.Cycles,
		ActiveCycles:  r.ActiveCycles,
		Instrs:        r.Instrs,
		IPC:           r.IPC(),
		Connects:      r.Connects,
		MemOps:        r.MemOps,
		Mispredicts:   r.Mispredicts,
		Traps:         r.Traps,
		Ledger:        led,
		IssueHist:     append([]int64(nil), r.IssueHist...),
		ResolveHits:   r.ResolveHits,
		ResolveMisses: r.ResolveMisses,
		// Deep-copied: on an arena-owned Result the breakdown slices alias
		// scratch the next Reset overwrites, and Stats must outlive it.
		MapInt:            r.MapInt.Clone(),
		MapFP:             r.MapFP.Clone(),
		OpMix:             mix,
		ChainPairs:        r.ChainPairs,
		ChainElidedReads:  r.ChainElidedReads,
		PortLimitedCycles: r.PortLimitedCycles,
	}
}
