package machine

// Trap/interrupt and context-switch modeling (paper §4.2–4.3). Traps are
// transparent to the interrupted program (architectural state is preserved)
// but cost cycles; how many depends on whether the operating system uses
// the RC-aware mechanisms the paper proposes:
//
//   - §4.3: a trap handler can set the register-map *enable* flag in the
//     processor status word and access core registers directly — no
//     connect traffic. A naive handler must save the map entry, connect,
//     access, and restore for every register it touches.
//   - §4.2: a context switch must save core registers, and — only for
//     processes marked RC-extended in their PSW — the extended registers
//     and the connection state. The PSW flag lets original-architecture
//     processes switch at the original cost.

// TrapConfig enables periodic interrupts.
type TrapConfig struct {
	// Interval is the number of cycles between interrupts (0 = disabled).
	Interval int64

	// HandlerCycles is the handler's own work (device-driver body).
	HandlerCycles int64

	// HandlerRegs is how many scratch registers the handler needs.
	HandlerRegs int64

	// UseEnableFlag selects the §4.3 mechanism: the handler disables the
	// register map and uses core registers directly. When false, the
	// handler pays per-register map bookkeeping (save entry, connect,
	// access, restore).
	UseEnableFlag bool

	// ContextSwitch models a full process switch at each interrupt
	// instead of a lightweight handler: core registers are saved and
	// restored, plus — depending on PSWFlag and whether this program uses
	// RC — the extended file and mapping table.
	ContextSwitch bool

	// PSWFlag is the §4.2 optimization: processes compiled for the
	// original architecture are marked in the processor status word and
	// only their core registers are switched. Without it the OS must
	// conservatively save the full extended state for every process.
	PSWFlag bool

	// ProgramUsesRC marks the simulated program as RC-extended (its PSW
	// bit). Set automatically by the regconn facade.
	ProgramUsesRC bool
}

// trapState tracks interrupt accounting during a run.
type trapState struct {
	next int64
}

// trapOverhead computes the cycle cost of one interrupt and exercises the
// architectural mechanisms involved (enable flag, context save/restore) so
// their transparency is continuously verified, not assumed.
func (s *simState) trapOverhead() int64 {
	t := &s.cfg.Trap
	mem := int64(s.cfg.MemChannels)
	memCost := func(words int64) int64 {
		// Save/restore traffic is store+load per word, through the
		// memory channels.
		return 2 * ((words + mem - 1) / mem)
	}

	overhead := t.HandlerCycles

	if t.ContextSwitch {
		// Both register files' core sections always switch.
		words := int64(s.cfg.IntCore + s.cfg.FPCore)
		if t.ProgramUsesRC || !t.PSWFlag {
			// Extended sections plus both mapping tables (read and
			// write map words per entry).
			words += int64(s.cfg.IntTotal - s.cfg.IntCore)
			words += int64(s.cfg.FPTotal - s.cfg.FPCore)
			words += int64(2*s.cfg.IntCore + 2*s.cfg.FPCore)
			// Exercise the save/restore path itself, through the
			// state's scratch contexts (an interrupt-heavy run would
			// otherwise allocate two contexts per trap).
			s.tabI.SaveContextInto(&s.trapCtxI)
			s.tabF.SaveContextInto(&s.trapCtxF)
			s.tabI.Reset()
			s.tabF.Reset()
			s.tabI.RestoreContext(s.trapCtxI)
			s.tabF.RestoreContext(s.trapCtxF)
		}
		return overhead + memCost(words)
	}

	// Lightweight handler.
	overhead += memCost(t.HandlerRegs) // save/restore its scratch registers
	if t.UseEnableFlag {
		// §4.3: disable the map, work on core registers, re-enable on
		// return from exception. Two PSW writes.
		s.tabI.SetEnabled(false)
		s.tabF.SetEnabled(false)
		s.tabI.SetEnabled(true)
		s.tabF.SetEnabled(true)
		overhead += 2
	} else {
		// Per register: save the map entry, connect to the core
		// register, and restore the entry afterwards (§4.3's "severe
		// performance penalty" path).
		overhead += 4 * t.HandlerRegs
	}
	return overhead
}
