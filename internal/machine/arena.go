package machine

// Run arenas: a Machine owns every per-run allocation of the simulator —
// register files, ready stamps, mapping tables, resolution caches, the
// predecoded micro-op stream, the memory image, and the Result itself —
// and Reset reinitializes them in place instead of reallocating. A sweep
// that runs many points through one Machine pays the allocation and
// zeroing cost once, and a steady-state Reset+Run performs zero heap
// allocations (pinned by TestMachineSteadyStateZeroAllocs); see DESIGN.md
// §13 for the arena/batch contract.
//
// Aliasing: results returned by a Machine's run methods point into the
// arena — the Result struct, its IssueHist and map-telemetry slices, and
// the memory image are all reused by the next Reset. Callers that outlive
// the next Reset must copy what they keep (Result.Stats deep-copies
// everything it exports). The package-level Run/RunContext entry points
// construct a private Machine per call, so their results never alias
// anything and the one-shot API is unchanged.

import (
	"context"
	"errors"
	"fmt"

	"regconn/internal/core"
	"regconn/internal/isa"
	"regconn/internal/mem"
)

// Machine is a reusable simulation arena. The zero value is ready to use;
// it is not safe for concurrent use (pool Machines for parallel sweeps).
type Machine struct {
	// The (possibly process-shared) physical machine: register files,
	// per-register ready cycles, and the two mapping tables.
	ri   []int64
	rf   []float64
	rdyI []int64
	rdyF []int64
	tabI *core.MapTable
	tabF *core.MapTable

	// Per-process pipeline state; single-process runs use procs[0].
	procs []*simState

	// Multiprogramming scratch (RunMultiprogrammedContext).
	pcbs   []*pcb
	halted []bool

	// armed is set by Reset and consumed by RunContext: each Reset admits
	// exactly one run, so a stale arena cannot be run twice by accident.
	armed bool
}

// NewMachine returns an empty arena; the first Reset sizes it.
func NewMachine() *Machine { return &Machine{} }

// grown returns s resized to length n, reusing the backing array when
// capacity allows. Contents are stale; callers must reinitialize.
func grown[E any](s []E, n int) []E {
	if cap(s) < n {
		return make([]E, n)
	}
	return s[:n]
}

// zeroed returns s resized to length n with every element zero.
func zeroed[E any](s []E, n int) []E {
	s = grown(s, n)
	clear(s)
	return s
}

// filled returns s resized to length n with every element v.
func filled(s []int64, n int, v int64) []int64 {
	s = grown(s, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// ensureShared sizes and reinitializes the shared physical machine for a
// fresh run: zeroed register files and ready stamps, mapping tables at
// their home locations with telemetry cleared.
func (m *Machine) ensureShared(cfg Config) {
	m.ri = zeroed(m.ri, cfg.IntTotal)
	m.rf = zeroed(m.rf, cfg.FPTotal)
	m.rdyI = zeroed(m.rdyI, cfg.IntTotal)
	m.rdyF = zeroed(m.rdyF, cfg.FPTotal)
	if m.tabI == nil {
		m.tabI = core.NewMapTable(cfg.Model, cfg.IntCore, cfg.IntTotal)
		m.tabF = core.NewMapTable(cfg.Model, cfg.FPCore, cfg.FPTotal)
	} else {
		m.tabI.Reinit(cfg.Model, cfg.IntCore, cfg.IntTotal)
		m.tabF.Reinit(cfg.Model, cfg.FPCore, cfg.FPTotal)
	}
}

// proc returns the i'th per-process state, growing the arena as needed.
func (m *Machine) proc(i int) *simState {
	for len(m.procs) <= i {
		m.procs = append(m.procs, &simState{})
	}
	return m.procs[i]
}

// recoverInitFault converts a memory-fault panic raised during image
// initialization into a structured error return (the Reset-path analogue
// of recoverFault); any other panic is re-raised.
func recoverInitFault(err *error) {
	if r := recover(); r != nil {
		f, ok := r.(*mem.Fault)
		if !ok {
			panic(r)
		}
		*err = &RuntimeError{Func: "(init)", PC: -1, Err: f}
	}
}

// Reset reinitializes the arena in place for one run of img under cfg:
// the register files, ready stamps, mapping tables, resolution caches,
// memory image, and result are restored to power-on state reusing the
// arena's allocations, and the micro-op stream is re-predecoded only when
// (img, cfg.Chain, cfg.Lat) changed since the previous Reset. The
// subsequent RunContext is bit-identical to a run on a fresh Machine.
func (m *Machine) Reset(img *Image, cfg Config) (err error) {
	if err := cfg.normalize(); err != nil {
		return err
	}
	m.armed = false
	defer recoverInitFault(&err)
	m.ensureShared(cfg)
	s := m.proc(0)
	s.reset(img, cfg, m.ri, m.rf, m.rdyI, m.rdyF, m.tabI, m.tabF, 0)
	s.ri[isa.RegSP] = s.mem.StackTop()
	s.nextTrap = cfg.Trap.Interval
	m.armed = true
	return nil
}

// errNotReset reports a run attempted on an unprepared arena.
var errNotReset = errors.New("machine: Machine run without a successful Reset")

// Run is RunContext under a background context.
func (m *Machine) Run() (*Result, error) {
	return m.RunContext(context.Background())
}

// RunContext executes the image prepared by the last Reset to completion
// (HALT), cancellation, or the cycle limit. Each Reset admits exactly one
// run. The returned Result and its memory image alias the arena and are
// valid until the next Reset; copy (e.g. via Result.Stats) anything that
// must outlive it.
func (m *Machine) RunContext(ctx context.Context) (res *Result, err error) {
	if !m.armed {
		return nil, errNotReset
	}
	m.armed = false
	s := m.procs[0]
	defer bufferTrace(&s.cfg).finish(&err)
	defer recoverFault(&res, &err)
	s.bindContext(ctx)
	halted, err := s.runUntil(s.cfg.MaxCycles)
	if err != nil {
		return nil, err
	}
	if !halted {
		return nil, fmt.Errorf("%w at pc=%d", ErrCycleLimit, s.pc)
	}
	s.res.RetInt = s.ri[2]
	s.tabI.StatsInto(&s.statI)
	s.tabF.StatsInto(&s.statF)
	s.res.MapInt = s.statI
	s.res.MapFP = s.statF
	return s.res, nil
}

// RunMultiprogrammedContext time-slices the images on this arena's shared
// physical machine (see the package-level RunMultiprogrammed for the
// model). It resets the arena itself — no prior Reset is needed — and the
// returned results alias the arena like RunContext's.
func (m *Machine) RunMultiprogrammedContext(ctx context.Context, imgs []*Image, cfg Config, quantum int64, mode SaveMode) (res *MultiResult, err error) {
	if len(imgs) == 0 || quantum <= 0 {
		return nil, fmt.Errorf("machine: need processes and a positive quantum")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	m.armed = false
	defer bufferTrace(&cfg).finish(&err)
	defer recoverFault(&res, &err)

	m.ensureShared(cfg)
	m.halted = zeroed(m.halted, len(imgs))
	for len(m.pcbs) < len(imgs) {
		m.pcbs = append(m.pcbs, &pcb{})
	}
	for i, img := range imgs {
		s := m.proc(i)
		s.reset(img, cfg, m.ri, m.rf, m.rdyI, m.rdyF, m.tabI, m.tabF, uint8(i))
		s.bindContext(ctx)
		// Fresh PCB: zeroed registers, home mapping, entry SP.
		p := m.pcbs[i]
		p.ri = zeroed(p.ri, cfg.IntTotal)
		p.rf = zeroed(p.rf, cfg.FPTotal)
		p.ri[isa.RegSP] = s.mem.StackTop()
		p.ctxI = core.HomeContext(cfg.IntCore)
		p.ctxF = core.HomeContext(cfg.FPCore)
	}
	return m.runMultiprogrammed(imgs, cfg, quantum, mode)
}
