// Package regalloc assigns virtual registers to physical registers. It
// implements the paper's allocation strategy (§3, §5.1): profile-weighted
// priority graph coloring that places the most important variables in core
// registers and the rest in extended registers (with RC) or memory
// (without RC). The actual rewriting — spill code, connect insertion,
// save/restore around calls — is performed by package codegen from the
// Assignment this package produces.
package regalloc

import (
	"sort"

	"regconn/internal/abi"
	"regconn/internal/analysis"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// Mode selects the allocation strategy.
type Mode uint8

const (
	// Unlimited models the paper's idealized machine: every virtual
	// register gets its own physical register, disjoint across functions,
	// so there are no spills and no save/restore.
	Unlimited Mode = iota
	// Spill is the without-RC model: only the allocatable core registers
	// are available; the rest of the variables live in memory.
	Spill
	// RC is the with-RC model: core registers first, then extended
	// registers, memory only if even the extended section overflows.
	RC
)

func (m Mode) String() string {
	switch m {
	case Unlimited:
		return "unlimited"
	case Spill:
		return "without-RC"
	case RC:
		return "with-RC"
	}
	return "mode?"
}

// LocKind tells where a virtual register lives.
type LocKind uint8

const (
	LocNone  LocKind = iota // never referenced
	LocReg                  // physical register (core or extended)
	LocSpill                // stack frame slot
)

// Location is the assigned home of one virtual register.
type Location struct {
	Kind LocKind
	N    int // physical register number, or frame slot index
}

// Assignment is the allocation result for one function.
type Assignment struct {
	F    *ir.Func
	Mode Mode
	Conv *abi.Conventions

	// Loc maps every referenced virtual register to its location.
	Loc map[isa.Reg]Location

	// SpillSlots is the number of frame slots used for spilled registers
	// (each 8 bytes; slots are shared across classes by index).
	SpillSlots int

	// LiveAcrossCall marks virtual registers live across at least one
	// call site (these may not occupy caller-save core registers; in
	// extended registers they require caller save/restore).
	LiveAcrossCall map[isa.Reg]bool

	// UsedCalleeSave lists, per class, the callee-save core registers the
	// function was assigned (prologue must preserve them).
	UsedCalleeSaveInt []int
	UsedCalleeSaveFP  []int

	// MaxLiveInt/MaxLiveFP record the maximum number of simultaneously
	// live virtual registers per class (register-pressure statistic).
	MaxLiveInt int
	MaxLiveFP  int
}

// ProgramAssignment carries per-function assignments plus the program-wide
// physical register demand (for sizing the Unlimited machine).
type ProgramAssignment struct {
	ByFunc      map[*ir.Func]*Assignment
	NeedInt     int // physical integer registers required
	NeedFP      int
	TotalSpills int // across functions: number of vregs sent to memory
}

// DefaultWindow is the default scheduling-overlap window (see Allocate).
const DefaultWindow = 32

// Allocate runs allocation over the whole program. window is the
// prepass-scheduling overlap horizon in instructions: registers defined
// within `window` instructions of each other inside one scheduling region
// are treated as simultaneously live (pass 0 for DefaultWindow). Wider
// machines schedule across more instructions, so callers scale the window
// with issue width.
func Allocate(p *ir.Program, mode Mode, conv *abi.Conventions, window int) *ProgramAssignment {
	if window <= 0 {
		window = DefaultWindow
	}
	pa := &ProgramAssignment{
		ByFunc:  map[*ir.Func]*Assignment{},
		NeedInt: conv.Int.Total,
		NeedFP:  conv.FP.Total,
	}
	// Unlimited mode hands out globally disjoint registers, starting past
	// r0 (zero), r1 (SP) and r2/f2 (return values, clobbered by calls).
	nextInt, nextFP := 3, 3
	for _, f := range p.Funcs {
		a := allocateFunc(f, mode, conv, window, &nextInt, &nextFP)
		pa.ByFunc[f] = a
		for _, loc := range a.Loc {
			if loc.Kind == LocSpill {
				pa.TotalSpills++
			}
		}
	}
	if mode == Unlimited {
		pa.NeedInt, pa.NeedFP = nextInt, nextFP
	}
	return pa
}

type liveRange struct {
	reg      isa.Reg
	id       int
	priority float64 // profile-weighted reference count
	neigh    map[int]bool
}

func allocateFunc(f *ir.Func, mode Mode, conv *abi.Conventions, window int, nextInt, nextFP *int) *Assignment {
	a := &Assignment{
		F:              f,
		Mode:           mode,
		Conv:           conv,
		Loc:            map[isa.Reg]Location{},
		LiveAcrossCall: map[isa.Reg]bool{},
	}
	cfg := analysis.BuildCFG(f)
	lv := analysis.ComputeLiveness(f, cfg)
	ids := lv.IDs

	referenced := make([]bool, ids.Total)
	priority := make([]float64, ids.Total)
	liveAcross := make([]bool, ids.Total)

	// Interference graph and statistics.
	adj := make([]map[int]bool, ids.Total)
	addEdge := func(x, y int) {
		if x == y {
			return
		}
		if adj[x] == nil {
			adj[x] = map[int]bool{}
		}
		if adj[y] == nil {
			adj[y] = map[int]bool{}
		}
		adj[x][y] = true
		adj[y][x] = true
	}
	sameClass := func(x, y int) bool {
		return (x < ids.NumInt) == (y < ids.NumInt)
	}

	var scratch []isa.Reg
	for bi, b := range f.Blocks {
		w := b.Weight
		if w <= 0 {
			w = 1
		}
		lv.ForEachLivePoint(f, bi, func(j int, liveAfter analysis.BitSet) {
			in := &b.Instrs[j]
			// Reference counting for priorities.
			scratch = in.Uses(scratch[:0])
			for _, r := range scratch {
				id := ids.ID(r)
				referenced[id] = true
				priority[id] += w
			}
			d := in.Def()
			if d.Valid() {
				did := ids.ID(d)
				referenced[did] = true
				priority[did] += w
				// The def interferes with everything live after it
				// (same class), including copy sources — we do not
				// implement move coalescing here.
				liveAfter.ForEach(func(o int) {
					if sameClass(did, o) {
						addEdge(did, o)
					}
				})
			}
			if in.Op == isa.CALL {
				liveAfter.ForEach(func(o int) {
					// Live after the call and not defined by it:
					// lives across.
					if d.Valid() && o == ids.ID(d) {
						return
					}
					liveAcross[o] = true
				})
			}
			// Pressure statistics.
			ni, nf := 0, 0
			liveAfter.ForEach(func(o int) {
				if o < ids.NumInt {
					ni++
				} else {
					nf++
				}
			})
			if ni > a.MaxLiveInt {
				a.MaxLiveInt = ni
			}
			if nf > a.MaxLiveFP {
				a.MaxLiveFP = nf
			}
		})
	}
	// Prepass-scheduling pressure model: IMPACT schedules before
	// allocating, which overlaps the lifetimes of independent operations;
	// the allocator then sees them as simultaneously live. We reproduce
	// that by making all registers *defined* within one scheduling region
	// interfere, so the scheduler (which runs after allocation here) is
	// free to overlap them — this is what makes ILP optimization
	// "increase the register requirement of programs" (paper §1).
	// A region is a maximal fallthrough chain of blocks (a superblock),
	// matching the machine scheduler's notion of a region.
	if mode != Unlimited {
		type posDef struct {
			id  int
			pos int
		}
		var live []posDef
		pos := 0
		reset := func() { live = live[:0] }
		for bi, b := range f.Blocks {
			// A block entered by anything other than fallthrough from its
			// predecessor starts a new region.
			preds := cfg.Preds[bi]
			fallthroughOnly := len(preds) == 1 && preds[0] == bi-1
			if fallthroughOnly {
				if t := f.Blocks[bi-1].Term(); t != nil && !t.Op.IsCondBranch() {
					fallthroughOnly = false
				}
			}
			if !fallthroughOnly {
				reset()
			}
			for j := range b.Instrs {
				pos++
				d := b.Instrs[j].Def()
				if !d.Valid() {
					continue
				}
				id := ids.ID(d)
				// Drop defs that slid out of the window.
				keep := live[:0]
				for _, pd := range live {
					if pos-pd.pos <= window {
						keep = append(keep, pd)
					}
				}
				live = keep
				for _, pd := range live {
					if sameClass(id, pd.id) {
						addEdge(id, pd.id)
					}
				}
				live = append(live, posDef{id, pos})
			}
		}
	}

	// Parameters are live-in at entry: they interfere with each other.
	for i, p1 := range f.Params {
		referenced[ids.ID(p1)] = true
		for _, p2 := range f.Params[i+1:] {
			if p1.Class == p2.Class {
				addEdge(ids.ID(p1), ids.ID(p2))
			}
		}
		// ...and with everything live-in at the entry block.
		lv.LiveIn[0].ForEach(func(o int) {
			if sameClass(ids.ID(p1), o) {
				addEdge(ids.ID(p1), o)
			}
		})
	}

	for id := 0; id < ids.Total; id++ {
		if liveAcross[id] {
			a.LiveAcrossCall[ids.Reg(id)] = true
		}
	}

	if mode == Unlimited {
		// Return-value preference: call results and returned values that
		// are not live across calls sit directly in r2/f2, avoiding the
		// result-move (first-fit coloring gets this by accident in the
		// limited modes; the ideal machine should not be penalized).
		rvUsers := map[isa.RegClass][]int{}
		tryRV := func(r isa.Reg) {
			id := ids.ID(r)
			if !referenced[id] || liveAcross[id] {
				return
			}
			if _, done := a.Loc[r]; done {
				return
			}
			for _, o := range rvUsers[r.Class] {
				if adj[id][o] {
					return
				}
			}
			rvUsers[r.Class] = append(rvUsers[r.Class], id)
			a.Loc[r] = Location{LocReg, 2}
		}
		for _, b := range f.Blocks {
			for j := range b.Instrs {
				in := &b.Instrs[j]
				switch in.Op {
				case isa.CALL:
					if in.Dst.Valid() {
						tryRV(in.Dst)
					}
				case isa.RET:
					if in.A.Valid() {
						tryRV(in.A)
					}
				}
			}
		}
		for id := 0; id < ids.Total; id++ {
			if !referenced[id] {
				continue
			}
			r := ids.Reg(id)
			if _, done := a.Loc[r]; done {
				continue
			}
			if r.Class == isa.ClassInt {
				a.Loc[r] = Location{LocReg, *nextInt}
				*nextInt++
			} else {
				a.Loc[r] = Location{LocReg, *nextFP}
				*nextFP++
			}
		}
		return a
	}

	// Priority coloring: highest profile-weighted reference count first.
	order := make([]int, 0, ids.Total)
	for id := 0; id < ids.Total; id++ {
		if referenced[id] {
			order = append(order, id)
		}
	}
	sort.Slice(order, func(x, y int) bool {
		if priority[order[x]] != priority[order[y]] {
			return priority[order[x]] > priority[order[y]]
		}
		return order[x] < order[y]
	})

	colored := map[int]int{} // reg id -> phys
	spillSlot := map[int]int{}
	usedCalleeSave := map[isa.RegClass]map[int]bool{
		isa.ClassInt:   {},
		isa.ClassFloat: {},
	}
	for _, id := range order {
		r := ids.Reg(id)
		cv := conv.Of(r.Class)
		// Colors already taken by interfering neighbours.
		taken := map[int]bool{}
		for o := range adj[id] {
			if c, ok := colored[o]; ok {
				taken[c] = true
			}
		}
		phys := -1
		// Core registers first, preferring callee-save for values live
		// across calls (caller-save core is forbidden for them).
		if liveAcross[id] {
			for _, c := range cv.Allocatable {
				if cv.CalleeSave[c] && !taken[c] {
					phys = c
					break
				}
			}
		} else {
			for _, c := range cv.Allocatable {
				if !taken[c] {
					phys = c
					break
				}
			}
		}
		// Extended section (RC mode only).
		if phys == -1 && mode == RC {
			for c := cv.Core; c < cv.Total; c++ {
				if !taken[c] {
					phys = c
					break
				}
			}
		}
		if phys == -1 {
			// Spill to memory.
			slot := a.SpillSlots
			a.SpillSlots++
			spillSlot[id] = slot
			a.Loc[r] = Location{LocSpill, slot}
			continue
		}
		colored[id] = phys
		a.Loc[r] = Location{LocReg, phys}
		if cv.CalleeSave[phys] {
			usedCalleeSave[r.Class][phys] = true
		}
	}
	for c := range usedCalleeSave[isa.ClassInt] {
		a.UsedCalleeSaveInt = append(a.UsedCalleeSaveInt, c)
	}
	for c := range usedCalleeSave[isa.ClassFloat] {
		a.UsedCalleeSaveFP = append(a.UsedCalleeSaveFP, c)
	}
	sort.Ints(a.UsedCalleeSaveInt)
	sort.Ints(a.UsedCalleeSaveFP)
	return a
}
