package regalloc

import (
	"testing"
	"testing/quick"

	"regconn/internal/abi"
	"regconn/internal/analysis"
	"regconn/internal/interp"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

func conv(intCore, total int) *abi.Conventions {
	fpTotal := total
	if fpTotal < 16 {
		fpTotal = 16
	}
	return abi.New(intCore, total, 16, fpTotal)
}

// buildPressure returns a program with `width` simultaneously live integer
// values (loads), optionally across a call.
func buildPressure(width int, acrossCall bool) *ir.Program {
	p := ir.NewProgram()
	g := p.AddGlobal("g", int64(width)*8)
	if acrossCall {
		id := ir.NewFunc(p, "id", 1, 0)
		id.Ret(id.Param(0))
	}
	b := ir.NewFunc(p, "main", 0, 0)
	base := b.Addr(g, 0)
	var vs []isa.Reg
	for k := 0; k < width; k++ {
		vs = append(vs, b.Ld(base, int64(k)*8))
	}
	acc := b.Const(0)
	if acrossCall {
		acc = b.Call("id", b.Const(1))
	}
	for _, v := range vs {
		b.MovTo(acc, b.Add(acc, v))
	}
	b.Ret(acc)
	return p
}

// checkNoInterferingShare asserts the fundamental allocation invariant: two
// simultaneously live virtual registers never share a physical register or
// spill slot.
func checkNoInterferingShare(t *testing.T, f *ir.Func, a *Assignment) {
	t.Helper()
	cfg := analysis.BuildCFG(f)
	lv := analysis.ComputeLiveness(f, cfg)
	ids := lv.IDs
	for bi := range f.Blocks {
		lv.ForEachLivePoint(f, bi, func(j int, liveAfter analysis.BitSet) {
			in := &f.Blocks[bi].Instrs[j]
			d := in.Def()
			if !d.Valid() {
				return
			}
			dloc, ok := a.Loc[d]
			if !ok {
				return
			}
			liveAfter.ForEach(func(o int) {
				or := ids.Reg(o)
				if or == d || or.Class != d.Class {
					return
				}
				oloc, ok := a.Loc[or]
				if !ok {
					return
				}
				if oloc.Kind == dloc.Kind && oloc.N == dloc.N {
					t.Errorf("block %d instr %d: %v and %v share %v/%d while both live",
						bi, j, d, or, dloc.Kind, dloc.N)
				}
			})
		})
	}
}

func TestSpillModeUnderPressure(t *testing.T) {
	p := buildPressure(20, false)
	if err := ir.Verify(p); err != nil {
		t.Fatal(err)
	}
	cv := conv(8, 8)
	pa := Allocate(p, Spill, cv, 0)
	a := pa.ByFunc[p.Func("main")]
	if a.SpillSlots == 0 {
		t.Error("20 live values in 2 allocatable registers must spill")
	}
	checkNoInterferingShare(t, p.Func("main"), a)
	// No allocation to reserved registers.
	for r, loc := range a.Loc {
		if loc.Kind != LocReg {
			continue
		}
		if r.Class == isa.ClassInt && (loc.N == isa.RegZero || loc.N == isa.RegSP) {
			t.Errorf("%v allocated to reserved r%d", r, loc.N)
		}
		for _, s := range cv.Of(r.Class).SpillTemps {
			if loc.N == s {
				t.Errorf("%v allocated to spill temp %d", r, loc.N)
			}
		}
	}
}

func TestRCModeUsesExtended(t *testing.T) {
	p := buildPressure(20, false)
	cv := conv(8, 256)
	pa := Allocate(p, RC, cv, 0)
	a := pa.ByFunc[p.Func("main")]
	if a.SpillSlots != 0 {
		t.Errorf("RC mode spilled %d slots with 248 extended registers free", a.SpillSlots)
	}
	ext := 0
	for r, loc := range a.Loc {
		if loc.Kind == LocReg && r.Class == isa.ClassInt && cv.Int.IsExtended(loc.N) {
			ext++
		}
	}
	if ext == 0 {
		t.Error("RC mode used no extended registers under pressure")
	}
	checkNoInterferingShare(t, p.Func("main"), a)
}

func TestLiveAcrossCallAvoidsCallerSave(t *testing.T) {
	p := buildPressure(6, true)
	cv := conv(16, 16)
	pa := Allocate(p, Spill, cv, 0)
	a := pa.ByFunc[p.Func("main")]
	for r := range a.LiveAcrossCall {
		loc := a.Loc[r]
		if loc.Kind == LocReg && cv.Of(r.Class).CallerSave[loc.N] {
			t.Errorf("%v live across call in caller-save r%d", r, loc.N)
		}
	}
	if len(a.LiveAcrossCall) == 0 {
		t.Error("expected live-across-call registers")
	}
}

func TestUnlimitedDisjointAcrossFunctions(t *testing.T) {
	p := buildPressure(6, true)
	pa := Allocate(p, Unlimited, conv(64, 64), 0)
	seen := map[[2]int]string{} // (classBit, phys) -> func
	for _, f := range p.Funcs {
		a := pa.ByFunc[f]
		if a.SpillSlots != 0 {
			t.Errorf("%s: unlimited mode spilled", f.Name)
		}
		for r, loc := range a.Loc {
			if loc.Kind != LocReg || loc.N == 2 {
				continue // r2/f2 are the shared return registers
			}
			key := [2]int{int(r.Class), loc.N}
			if owner, ok := seen[key]; ok && owner != f.Name {
				t.Errorf("register %v shared between %s and %s", key, owner, f.Name)
			}
			seen[key] = f.Name
		}
	}
}

func TestPriorityFavorsHotRegisters(t *testing.T) {
	// A register referenced in a hot loop must get a core register ahead
	// of registers referenced once.
	p := ir.NewProgram()
	g := p.AddGlobal("g", 80)
	b := ir.NewFunc(p, "main", 0, 0)
	base := b.Addr(g, 0)
	cold1 := b.Ld(base, 0)
	cold2 := b.Ld(base, 8)
	hot := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	b.MovTo(hot, b.AddI(hot, 7))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, 1000, loop)
	b.Continue()
	b.Ret(b.Add(hot, b.Add(cold1, cold2)))
	if err := ir.Verify(p); err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(p, "main", nil, interp.Options{Profile: true}); err != nil {
		t.Fatal(err)
	}
	cv := conv(8, 256)
	pa := Allocate(p, RC, cv, 0)
	a := pa.ByFunc[p.Func("main")]
	hotLoc := a.Loc[hot]
	if hotLoc.Kind != LocReg || cv.Int.IsExtended(hotLoc.N) {
		t.Errorf("hot register placed at %+v, want core register", hotLoc)
	}
}

// TestPressureWindowScalesDemand pins the prepass-scheduling model: a
// straight-line stream of independent short-lived values colors into a few
// registers under a narrow window and demands many more under a wide one.
func TestPressureWindowScalesDemand(t *testing.T) {
	build := func() *ir.Program {
		p := ir.NewProgram()
		g := p.AddGlobal("g", 8)
		b := ir.NewFunc(p, "main", 0, 0)
		base := b.Addr(g, 0)
		acc := b.Const(0)
		for k := 0; k < 64; k++ {
			v := b.Ld(base, 0) // short-lived: consumed immediately
			b.MovTo(acc, b.Add(acc, v))
		}
		b.Ret(acc)
		return p
	}
	demand := func(window int) int {
		p := build()
		pa := Allocate(p, RC, conv(16, 256), window)
		a := pa.ByFunc[p.Func("main")]
		regs := map[int]bool{}
		for r, loc := range a.Loc {
			if r.Class == isa.ClassInt && loc.Kind == LocReg {
				regs[loc.N] = true
			}
		}
		return len(regs)
	}
	narrow := demand(4)
	wide := demand(96)
	if wide <= narrow {
		t.Errorf("window 96 demand (%d) should exceed window 4 demand (%d)", wide, narrow)
	}
	if wide < 30 {
		t.Errorf("wide-window demand = %d, expected the region's values to overlap", wide)
	}
}

func TestMaxLiveStatistic(t *testing.T) {
	p := buildPressure(20, false)
	pa := Allocate(p, RC, conv(8, 256), 0)
	a := pa.ByFunc[p.Func("main")]
	if a.MaxLiveInt < 20 {
		t.Errorf("MaxLiveInt = %d, want >= 20", a.MaxLiveInt)
	}
}

// Property: allocation never assigns two interfering registers the same
// location, for random straight-line programs.
func TestQuickAllocationInvariant(t *testing.T) {
	f := func(ops []uint8, width uint8) bool {
		w := int(width%16) + 2
		p := ir.NewProgram()
		g := p.AddGlobal("g", int64(w+1)*8)
		b := ir.NewFunc(p, "main", 0, 0)
		base := b.Addr(g, 0)
		regs := []isa.Reg{b.Const(1)}
		for _, op := range ops {
			switch op % 4 {
			case 0:
				regs = append(regs, b.Ld(base, int64(op%uint8(w))*8))
			case 1:
				if len(regs) >= 2 {
					regs = append(regs, b.Add(regs[len(regs)-1], regs[len(regs)-2]))
				}
			case 2:
				regs = append(regs, b.Const(int64(op)))
			case 3:
				if len(regs) >= 1 {
					b.St(regs[len(regs)-1], base, int64(op%uint8(w))*8)
				}
			}
		}
		acc := b.Const(0)
		for _, r := range regs {
			b.MovTo(acc, b.Add(acc, r))
		}
		b.Ret(acc)
		if err := ir.Verify(p); err != nil {
			return false
		}
		for _, mode := range []Mode{Spill, RC} {
			pa := Allocate(p, mode, conv(8, 256), 0)
			a := pa.ByFunc[p.Func("main")]
			bad := false
			tt := &testing.T{}
			checkNoInterferingShare(tt, p.Func("main"), a)
			if tt.Failed() {
				bad = true
			}
			if bad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
