// Package mem provides the flat, deterministic memory image shared by the
// IR interpreter and the machine simulator. The paper assumes a 100% cache
// hit rate (§5.3), so memory is modeled as a fixed-latency word store; the
// latency itself lives in the timing model, not here.
//
// Layout: globals are placed consecutively from GlobalBase; the stack
// occupies the top of the address space and grows down. All accesses move
// aligned 8-byte words.
package mem

import (
	"fmt"
	"math"

	"regconn/internal/ir"
)

// GlobalBase is the address of the first global data object.
const GlobalBase = 1 << 12

// DefaultSize is the default memory image size in bytes (16 MiB).
const DefaultSize = 1 << 24

// pageWords is the dirty-tracking granularity in words (64 KiB pages):
// coarse enough that the per-store bookkeeping is one byte write, fine
// enough that resetting a 16 MiB image whose program touched a few hundred
// KiB of globals and stack clears only those pages.
const pageWords = 1 << 13

// Memory is a byte-addressed, word-accessed memory image. Stores mark
// their page dirty so Reset can rezero in place at the cost of the pages
// actually written rather than the whole image (the per-run zeroing that
// DESIGN.md §10's profile found dominating short sweeps).
type Memory struct {
	words []int64
	dirty []bool // per pageWords-sized page: written since last Reset/New
}

// New returns a zeroed memory of the given size in bytes (rounded up to a
// word multiple).
func New(size int64) *Memory {
	n := (size + 7) / 8
	return &Memory{
		words: make([]int64, n),
		dirty: make([]bool, (n+pageWords-1)/pageWords),
	}
}

// Reset rezeroes the memory in place: every page written since the last
// New/Reset is cleared (and its dirty mark dropped), leaving the image
// bit-identical to a freshly allocated one of the same size.
func (m *Memory) Reset() {
	for p, d := range m.dirty {
		if !d {
			continue
		}
		lo := p * pageWords
		hi := lo + pageWords
		if hi > len(m.words) {
			hi = len(m.words)
		}
		clear(m.words[lo:hi])
		m.dirty[p] = false
	}
}

// Reinit makes the memory equivalent to New(size), reusing the backing
// arrays when the size is unchanged and reallocating otherwise.
func (m *Memory) Reinit(size int64) {
	if n := (size + 7) / 8; n != int64(len(m.words)) {
		*m = *New(size)
		return
	}
	m.Reset()
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int64 { return int64(len(m.words)) * 8 }

// StackTop returns the initial stack pointer (just past the highest word).
func (m *Memory) StackTop() int64 { return m.Size() }

func (m *Memory) index(addr int64) int64 {
	if addr%8 != 0 {
		panic(&Fault{Addr: addr, Reason: "unaligned access"})
	}
	w := addr / 8
	if w < 0 || w >= int64(len(m.words)) {
		panic(&Fault{Addr: addr, Reason: "out of range"})
	}
	return w
}

// LoadI loads an integer word; StoreI stores one.
func (m *Memory) LoadI(addr int64) int64 { return m.words[m.index(addr)] }
func (m *Memory) StoreI(addr, v int64) {
	w := m.index(addr)
	m.words[w] = v
	m.dirty[w/pageWords] = true
}

// LoadF and StoreF view the word as a float64 bit pattern.
func (m *Memory) LoadF(addr int64) float64 { return math.Float64frombits(uint64(m.LoadI(addr))) }
func (m *Memory) StoreF(addr int64, v float64) {
	m.StoreI(addr, int64(math.Float64bits(v)))
}

// Fault is a memory access violation. The interpreter and simulator convert
// it into an execution error.
type Fault struct {
	Addr   int64
	Reason string
}

func (f *Fault) Error() string { return fmt.Sprintf("memory fault at %#x: %s", f.Addr, f.Reason) }

// Layout maps each global name to its assigned address.
type Layout map[string]int64

// ComputeLayout assigns consecutive addresses from GlobalBase to the
// program's globals.
func ComputeLayout(p *ir.Program) Layout {
	l := make(Layout, len(p.Globals))
	addr := int64(GlobalBase)
	for _, g := range p.Globals {
		l[g.Name] = addr
		addr += g.Size
	}
	return l
}

// DataEnd returns the first address past the global data section.
func (l Layout) DataEnd(p *ir.Program) int64 {
	end := int64(GlobalBase)
	for _, g := range p.Globals {
		if a := l[g.Name] + g.Size; a > end {
			end = a
		}
	}
	return end
}

// InitImage builds a fresh memory image of the given size with the
// program's globals initialized at their layout addresses.
func InitImage(p *ir.Program, l Layout, size int64) *Memory {
	return InitImageInto(nil, p, l, size)
}

// InitImageInto is InitImage over a reused memory: a nil m allocates
// fresh, otherwise m is rezeroed in place (Reinit) and the globals are
// rewritten. It is the arena path of the simulator — one run's image
// becomes the next run's, without reallocating or rezeroing untouched
// pages.
func InitImageInto(m *Memory, p *ir.Program, l Layout, size int64) *Memory {
	if m == nil {
		m = New(size)
	} else {
		m.Reinit(size)
	}
	for _, g := range p.Globals {
		base := l[g.Name]
		for i, v := range g.InitI {
			m.StoreI(base+int64(i)*8, v)
		}
		for i, v := range g.InitF {
			m.StoreF(base+int64(i)*8, v)
		}
	}
	return m
}
