package mem

import (
	"testing"
	"testing/quick"

	"regconn/internal/ir"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New(1 << 16)
	m.StoreI(8, 42)
	if m.LoadI(8) != 42 {
		t.Fatal("int round trip failed")
	}
	m.StoreF(16, 3.25)
	if m.LoadF(16) != 3.25 {
		t.Fatal("float round trip failed")
	}
	if m.Size() != 1<<16 || m.StackTop() != 1<<16 {
		t.Fatal("size/stacktop wrong")
	}
}

func TestFaults(t *testing.T) {
	m := New(1 << 12)
	for _, addr := range []int64{-8, 1 << 12, 12 /* unaligned */} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("addr %d: expected fault", addr)
				} else if _, ok := r.(*Fault); !ok {
					t.Errorf("addr %d: panic type %T", addr, r)
				}
			}()
			m.LoadI(addr)
		}()
	}
	f := &Fault{Addr: 12, Reason: "unaligned access"}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestLayoutAndImage(t *testing.T) {
	p := ir.NewProgram()
	a := p.AddGlobal("a", 16)
	a.InitI = []int64{5, 6}
	b := p.AddGlobal("b", 8)
	b.InitF = []float64{2.5}
	l := ComputeLayout(p)
	if l["a"] != GlobalBase || l["b"] != GlobalBase+16 {
		t.Fatalf("layout = %v", l)
	}
	if l.DataEnd(p) != GlobalBase+24 {
		t.Fatalf("data end = %d", l.DataEnd(p))
	}
	m := InitImage(p, l, 1<<16)
	if m.LoadI(l["a"]) != 5 || m.LoadI(l["a"]+8) != 6 {
		t.Error("int init wrong")
	}
	if m.LoadF(l["b"]) != 2.5 {
		t.Error("float init wrong")
	}
}

func TestQuickMemoryIsLastWriteWins(t *testing.T) {
	f := func(writes []struct {
		Slot uint8
		Val  int64
	}) bool {
		m := New(1 << 12)
		last := map[int64]int64{}
		for _, w := range writes {
			addr := int64(w.Slot&63) * 8
			m.StoreI(addr, w.Val)
			last[addr] = w.Val
		}
		for addr, v := range last {
			if m.LoadI(addr) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
