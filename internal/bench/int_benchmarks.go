package bench

import (
	"regconn/internal/ir"
)

// ---------------------------------------------------------------- grep ---

// buildGrep is a shift-and text matcher (the hot loop of grep): one pass
// over the text updating a match bit-vector from a per-character mask
// table, counting completed matches branchlessly. The loop body is
// straight-line, so the ILP transformer unrolls it into a superblock.
func buildGrep() *ir.Program {
	const (
		textLen = 16384
		patLen  = 12
		classes = 32
	)
	p := ir.NewProgram()
	text := p.AddGlobal("text", textLen*8)
	patTab := p.AddGlobal("pattab", classes*8)

	rng := lcg(0x67726570)
	pat := make([]int64, patLen)
	for i := range pat {
		pat[i] = rng.intn(classes)
	}
	masks := make([]int64, classes)
	for i, c := range pat {
		masks[c] |= 1 << uint(i)
	}
	patTab.InitI = masks
	txt := make([]int64, textLen)
	for i := range txt {
		txt[i] = rng.intn(classes)
	}
	for at := 100; at+patLen < textLen; at += 977 {
		copy(txt[at:], pat)
	}
	text.InitI = txt

	b := ir.NewFunc(p, "main", 0, 0)
	pt := b.Addr(text, 0)
	tb := b.Addr(patTab, 0)
	m := b.Const(0)
	hits := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	c := b.Ld(pt, 0)
	pm := b.Ld(b.Add(tb, b.SllI(c, 3)), 0)
	b.MovTo(m, b.And(b.OrI(b.SllI(m, 1), 1), pm))
	b.MovTo(hits, b.Add(hits, b.AndI(b.SraI(m, patLen-1), 1)))
	b.MovTo(pt, b.AddI(pt, 8))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, textLen, loop)
	b.Continue()
	b.Ret(hits)
	return p
}

// ----------------------------------------------------------------- lex ---

// buildLex is a table-driven DFA scanner (lex's inner loop): per character,
// a class lookup and a transition lookup, with branchless accept counting.
// The loop is straight-line but serialized through the state register.
func buildLex() *ir.Program {
	const (
		textLen = 16384
		nStates = 16
		nClass  = 8
		nChars  = 64
	)
	p := ir.NewProgram()
	text := p.AddGlobal("ltext", textLen*8)
	classTab := p.AddGlobal("class", nChars*8)
	trans := p.AddGlobal("trans", nStates*nClass*8)
	accept := p.AddGlobal("accept", nStates*8)

	rng := lcg(0x6c6578)
	cls := make([]int64, nChars)
	for i := range cls {
		cls[i] = rng.intn(nClass)
	}
	classTab.InitI = cls
	tr := make([]int64, nStates*nClass)
	for i := range tr {
		tr[i] = rng.intn(nStates)
	}
	trans.InitI = tr
	acc := make([]int64, nStates)
	for i := range acc {
		acc[i] = rng.intn(2)
	}
	accept.InitI = acc
	txt := make([]int64, textLen)
	for i := range txt {
		txt[i] = rng.intn(nChars)
	}
	text.InitI = txt

	b := ir.NewFunc(p, "main", 0, 0)
	pt := b.Addr(text, 0)
	cb := b.Addr(classTab, 0)
	tb := b.Addr(trans, 0)
	ab := b.Addr(accept, 0)
	st := b.Const(0)
	found := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	ch := b.Ld(pt, 0)
	cl := b.Ld(b.Add(cb, b.SllI(ch, 3)), 0)
	idx := b.Add(b.SllI(st, 3), cl) // state*nClass + class
	b.MovTo(st, b.Ld(b.Add(tb, b.SllI(idx, 3)), 0))
	b.MovTo(found, b.Add(found, b.Ld(b.Add(ab, b.SllI(st, 3)), 0)))
	b.MovTo(pt, b.AddI(pt, 8))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, textLen, loop)
	b.Continue()
	b.Ret(found)
	return p
}

// ----------------------------------------------------------------- cmp ---

// buildCmp compares buffer pairs word by word with early exit through a
// comparison function called once per pair (cmp's whole job).
func buildCmp() *ir.Program {
	const (
		words = 512
		pairs = 64
	)
	p := ir.NewProgram()
	bufA := p.AddGlobal("bufA", words*8)
	bufB := p.AddGlobal("bufB", words*8)
	rng := lcg(0x636d70)
	a := make([]int64, words)
	for i := range a {
		a[i] = rng.intn(1 << 30)
	}
	bufA.InitI = a
	bufB.InitI = append([]int64(nil), a...)

	// cmpbuf(pa, pb, n): first differing index, or n.
	cb := ir.NewFunc(p, "cmpbuf", 3, 0)
	pa, pb, n := cb.Param(0), cb.Param(1), cb.Param(2)
	i := cb.Const(0)
	test := cb.NewBlock()
	cb.Br(test)
	cb.SetBlock(test)
	out := cb.NewBlock()
	diff := cb.NewBlock()
	cb.Bge(i, n, out)
	cb.Continue() // body
	va := cb.Ld(pa, 0)
	vb := cb.Ld(pb, 0)
	cb.Bne(va, vb, diff)
	cb.Continue() // advance
	cb.MovTo(pa, cb.AddI(pa, 8))
	cb.MovTo(pb, cb.AddI(pb, 8))
	cb.MovTo(i, cb.AddI(i, 1))
	cb.Br(test)
	cb.SetBlock(out)
	cb.Ret(n)
	cb.SetBlock(diff)
	cb.Ret(i)

	b := ir.NewFunc(p, "main", 0, 0)
	sum := b.Const(0)
	k := b.Const(0)
	ba := b.Addr(bufA, 0)
	bb := b.Addr(bufB, 0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	// Poison one word of bufB at position (k*37+11) % words, compare,
	// then restore it.
	pos := b.RemI(b.AddI(b.MulI(k, 37), 11), words)
	addr := b.Add(bb, b.SllI(pos, 3))
	old := b.Ld(addr, 0)
	b.St(b.XorI(old, 1), addr, 0)
	r := b.Call("cmpbuf", ba, bb, b.Const(words))
	b.St(old, addr, 0)
	b.MovTo(sum, b.Add(sum, r))
	b.MovTo(k, b.AddI(k, 1))
	b.BltI(k, pairs, loop)
	b.Continue()
	b.Ret(sum)
	return p
}

// ------------------------------------------------------------ compress ---

// buildCompress is an LZW-style compressor loop: hash-probe a dictionary
// keyed by (prefix code, symbol), extending matches and emitting codes.
func buildCompress() *ir.Program {
	const (
		inputLen = 8192
		tabSize  = 4096 // power of two
		nSyms    = 64
	)
	p := ir.NewProgram()
	input := p.AddGlobal("input", inputLen*8)
	keys := p.AddGlobal("keys", tabSize*8)
	vals := p.AddGlobal("vals", tabSize*8)
	rng := lcg(0x636f6d7072)
	in := make([]int64, inputLen)
	for i := 0; i < inputLen; {
		runLen := int(rng.intn(6)) + 1
		s := rng.intn(nSyms / 4)
		if rng.intn(4) == 0 {
			s = rng.intn(nSyms)
		}
		for j := 0; j < runLen && i < inputLen; j++ {
			in[i] = s
			i++
		}
	}
	input.InitI = in

	b := ir.NewFunc(p, "main", 0, 0)
	pin := b.Addr(input, 0)
	kb := b.Addr(keys, 0)
	vb := b.Addr(vals, 0)
	code := b.Ld(pin, 0)
	b.MovTo(pin, b.AddI(pin, 8))
	nextCode := b.Const(nSyms)
	emitted := b.Const(0)
	i := b.Const(1)

	outer := b.NewBlock()
	b.Br(outer)
	b.SetBlock(outer)
	sym := b.Ld(pin, 0)
	// key = (code<<8) | sym | (1<<40); the high marker keeps 0 = empty.
	key := b.Or(b.Or(b.SllI(code, 8), sym), b.Const(1<<40))
	h := b.AndI(b.Xor(b.MulI(key, 0x9E3779B1), b.SraI(key, 7)), tabSize-1)
	probe := b.NewBlock()
	b.Br(probe)

	b.SetBlock(probe)
	hitBlk := b.NewBlock()
	missBlk := b.NewBlock()
	stepBlk := b.NewBlock()
	slot := b.Add(kb, b.SllI(h, 3))
	kv := b.Ld(slot, 0)
	b.Beq(kv, key, hitBlk)
	b.Continue()
	b.BeqI(kv, 0, missBlk)
	b.Continue()
	b.MovTo(h, b.AndI(b.AddI(h, 1), tabSize-1))
	b.Br(probe)

	b.SetBlock(hitBlk)
	b.MovTo(code, b.Ld(b.Add(vb, b.SllI(h, 3)), 0))
	b.Br(stepBlk)

	b.SetBlock(missBlk)
	b.St(key, slot, 0)
	b.St(nextCode, b.Add(vb, b.SllI(h, 3)), 0)
	b.MovTo(nextCode, b.AddI(nextCode, 1))
	b.MovTo(emitted, b.Add(emitted, code))
	b.MovTo(code, sym)
	b.Br(stepBlk)

	b.SetBlock(stepBlk)
	b.MovTo(pin, b.AddI(pin, 8))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, inputLen, outer)
	b.Continue()
	b.Ret(b.Add(emitted, b.Add(code, nextCode)))
	return p
}

// ----------------------------------------------------------------- cpp ---

// buildCPP is a cccp-style token scanner: a dispatch over token kinds with
// a called hash-table lookup for identifiers and directive counting.
func buildCPP() *ir.Program {
	const (
		nToks   = 6144
		symTab  = 1024
		nameMax = 200
	)
	p := ir.NewProgram()
	toks := p.AddGlobal("toks", nToks*2*8) // (kind, payload) pairs
	symKeys := p.AddGlobal("symkeys", symTab*8)
	counters := p.AddGlobal("dirs", 8*8)
	rng := lcg(0x63707000)
	tk := make([]int64, nToks*2)
	for i := 0; i < nToks; i++ {
		k := rng.intn(16)
		var payload int64
		switch {
		case k < 8: // identifier
			payload = rng.intn(nameMax) + 1
		case k < 12: // literal
			payload = rng.intn(1 << 20)
		default: // directive
			payload = k - 12
		}
		tk[2*i] = k
		tk[2*i+1] = payload
	}
	toks.InitI = tk
	keys := make([]int64, symTab)
	for n := int64(1); n <= nameMax/2; n++ {
		h := (n * 2654435761) & (symTab - 1)
		for keys[h] != 0 {
			h = (h + 1) & (symTab - 1)
		}
		keys[h] = n
	}
	symKeys.InitI = keys

	// look(name): open-addressing probe; insert on empty; returns 1 if
	// the name was already present.
	lk := ir.NewFunc(p, "look", 1, 0)
	name := lk.Param(0)
	kb := lk.Addr(symKeys, 0)
	h := lk.AndI(lk.MulI(name, 2654435761), symTab-1)
	probe := lk.NewBlock()
	lk.Br(probe)
	lk.SetBlock(probe)
	hitB := lk.NewBlock()
	missB := lk.NewBlock()
	slot := lk.Add(kb, lk.SllI(h, 3))
	kv := lk.Ld(slot, 0)
	lk.Beq(kv, name, hitB)
	lk.Continue()
	lk.BeqI(kv, 0, missB)
	lk.Continue()
	lk.MovTo(h, lk.AndI(lk.AddI(h, 1), symTab-1))
	lk.Br(probe)
	lk.SetBlock(hitB)
	lk.Ret(lk.Const(1))
	lk.SetBlock(missB)
	lk.St(name, slot, 0)
	lk.Ret(lk.Const(0))

	b := ir.NewFunc(p, "main", 0, 0)
	pt := b.Addr(toks, 0)
	cb := b.Addr(counters, 0)
	foundIDs := b.Const(0)
	litSum := b.Const(0)
	i := b.Const(0)

	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	isLit := b.NewBlock()
	isDir := b.NewBlock()
	step := b.NewBlock()
	kind := b.Ld(pt, 0)
	payload := b.Ld(pt, 8)
	b.BgeI(kind, 8, isLit)
	b.Continue() // identifier
	r := b.Call("look", payload)
	b.MovTo(foundIDs, b.Add(foundIDs, r))
	b.Br(step)
	b.SetBlock(isLit)
	b.BgeI(kind, 12, isDir)
	b.Continue() // literal
	b.MovTo(litSum, b.Xor(litSum, payload))
	b.Br(step)
	b.SetBlock(isDir)
	daddr := b.Add(cb, b.SllI(payload, 3))
	b.St(b.AddI(b.Ld(daddr, 0), 1), daddr, 0)
	b.Br(step)
	b.SetBlock(step)
	b.MovTo(pt, b.AddI(pt, 16))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, nToks, loop)
	b.Continue()
	d3 := b.Ld(b.Add(cb, b.Const(3*8)), 0)
	b.Ret(b.Add(b.Add(foundIDs, b.AndI(litSum, 0xffff)), d3))
	return p
}

// ----------------------------------------------------------------- eqn ---

// buildEqn is an operator-precedence expression evaluator (eqn's parse
// kernel): a token loop driving an explicit precedence/value stack with a
// called combine step per reduction.
func buildEqn() *ir.Program {
	const nPairs = 3072
	p := ir.NewProgram()
	stream := p.AddGlobal("etoks", nPairs*2*8) // (prec, value) pairs
	stack := p.AddGlobal("estack", 64*2*8)
	depthG := p.AddGlobal("edepth", 8)
	rng := lcg(0x65716e)
	ts := make([]int64, nPairs*2)
	for i := 0; i < nPairs; i++ {
		ts[2*i] = rng.intn(4) + 1
		ts[2*i+1] = rng.intn(97) + 1
	}
	stream.InitI = ts

	// apply(prec, acc, v) combines per precedence level.
	ap := ir.NewFunc(p, "apply", 3, 0)
	prec, acc, v := ap.Param(0), ap.Param(1), ap.Param(2)
	pm := ap.NewBlock()
	ap.BgeI(prec, 3, pm)
	ap.Continue()
	ap.Ret(ap.Add(acc, v))
	ap.SetBlock(pm)
	ap.Ret(ap.AndI(ap.Add(ap.MulI(acc, 3), v), 0xfffff))

	b := ir.NewFunc(p, "main", 0, 0)
	pt := b.Addr(stream, 0)
	sb := b.Addr(stack, 0)
	dg := b.Addr(depthG, 0)
	b.St(b.Const(0), dg, 0)
	checksum := b.Const(0)
	i := b.Const(0)

	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	reduce := b.NewBlock()
	push := b.NewBlock()
	step := b.NewBlock()
	prec2 := b.Ld(pt, 0)
	val := b.Ld(pt, 8)
	b.Br(reduce)

	// while depth > 0 and stack[depth-1].prec >= prec: pop and apply
	b.SetBlock(reduce)
	d := b.Ld(dg, 0)
	b.BleI(d, 0, push)
	b.Continue()
	topAddr := b.Add(sb, b.SllI(b.SubI(d, 1), 4))
	topPrec := b.Ld(topAddr, 0)
	b.Blt(topPrec, prec2, push)
	b.Continue()
	topVal := b.Ld(topAddr, 8)
	b.MovTo(val, b.Call("apply", topPrec, topVal, val))
	b.St(b.SubI(d, 1), dg, 0)
	b.Br(reduce)

	b.SetBlock(push)
	d2 := b.Ld(dg, 0)
	slotA := b.Add(sb, b.SllI(d2, 4))
	b.St(prec2, slotA, 0)
	b.St(val, slotA, 8)
	b.St(b.AddI(d2, 1), dg, 0)
	b.MovTo(checksum, b.Xor(checksum, val))
	b.Br(step)

	b.SetBlock(step)
	b.MovTo(pt, b.AddI(pt, 16))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, nPairs, loop)
	b.Continue()
	b.Ret(b.Add(checksum, b.Ld(dg, 0)))
	return p
}

// ------------------------------------------------------------- eqntott ---

// buildEqntott sorts bit-vector rows (truth-table terms) by insertion sort
// over a called lexicographic word comparison — eqntott's dominant kernel.
func buildEqntott() *ir.Program {
	const (
		rows  = 96
		width = 8
	)
	p := ir.NewProgram()
	table := p.AddGlobal("tt", rows*width*8)
	tmp := p.AddGlobal("ttmp", width*8)
	rng := lcg(0x65716e74)
	tt := make([]int64, rows*width)
	for i := range tt {
		tt[i] = rng.intn(1 << 24)
	}
	table.InitI = tt

	// cmpvec(pa, pb): -1/0/1 lexicographic over width words.
	cv := ir.NewFunc(p, "cmpvec", 2, 0)
	pa, pb := cv.Param(0), cv.Param(1)
	i := cv.Const(0)
	test := cv.NewBlock()
	cv.Br(test)
	cv.SetBlock(test)
	eq := cv.NewBlock()
	lt := cv.NewBlock()
	gt := cv.NewBlock()
	cv.BgeI(i, width, eq)
	cv.Continue()
	va := cv.Ld(pa, 0)
	vb := cv.Ld(pb, 0)
	cv.Blt(va, vb, lt)
	cv.Continue()
	cv.Bgt(va, vb, gt)
	cv.Continue()
	cv.MovTo(pa, cv.AddI(pa, 8))
	cv.MovTo(pb, cv.AddI(pb, 8))
	cv.MovTo(i, cv.AddI(i, 1))
	cv.Br(test)
	cv.SetBlock(eq)
	cv.Ret(cv.Const(0))
	cv.SetBlock(lt)
	cv.Ret(cv.Const(-1))
	cv.SetBlock(gt)
	cv.Ret(cv.Const(1))

	// copyrow(dst, src)
	cr := ir.NewFunc(p, "copyrow", 2, 0)
	dst, src := cr.Param(0), cr.Param(1)
	j := cr.Const(0)
	cl := cr.NewBlock()
	cr.Br(cl)
	cr.SetBlock(cl)
	cr.St(cr.Ld(src, 0), dst, 0)
	cr.MovTo(dst, cr.AddI(dst, 8))
	cr.MovTo(src, cr.AddI(src, 8))
	cr.MovTo(j, cr.AddI(j, 1))
	cr.BltI(j, width, cl)
	cr.Continue()
	cr.RetVoid()

	b := ir.NewFunc(p, "main", 0, 0)
	tb := b.Addr(table, 0)
	tmpB := b.Addr(tmp, 0)
	const rowBytes = width * 8
	k := b.Const(1)

	outer := b.NewBlock()
	b.Br(outer)
	b.SetBlock(outer)
	inner := b.NewBlock()
	place := b.NewBlock()
	b.CallVoid("copyrow", tmpB, b.Add(tb, b.MulI(k, rowBytes)))
	jj := b.Mov(k)
	b.Br(inner)

	// while j > 0 && cmpvec(row[j-1], tmp) > 0: row[j] = row[j-1]; j--
	b.SetBlock(inner)
	b.BleI(jj, 0, place)
	b.Continue()
	prev := b.Add(tb, b.MulI(b.SubI(jj, 1), rowBytes))
	c := b.Call("cmpvec", prev, tmpB)
	b.BleI(c, 0, place)
	b.Continue()
	b.CallVoid("copyrow", b.Add(tb, b.MulI(jj, rowBytes)), prev)
	b.MovTo(jj, b.SubI(jj, 1))
	b.Br(inner)

	b.SetBlock(place)
	b.CallVoid("copyrow", b.Add(tb, b.MulI(jj, rowBytes)), tmpB)
	b.MovTo(k, b.AddI(k, 1))
	b.BltI(k, rows, outer)
	b.Continue()

	// checksum = sum of first word of each row weighted by index
	cs := b.Const(0)
	r := b.Const(0)
	csl := b.NewBlock()
	b.Br(csl)
	b.SetBlock(csl)
	w := b.Ld(b.Add(tb, b.MulI(r, rowBytes)), 0)
	b.MovTo(cs, b.Add(cs, b.Mul(w, b.AddI(r, 1))))
	b.MovTo(r, b.AddI(r, 1))
	b.BltI(r, rows, csl)
	b.Continue()
	b.Ret(b.AndI(cs, 0x7fffffff))
	return p
}

// ------------------------------------------------------------ espresso ---

// buildEspresso is a cube-intersection kernel over bit-row pairs (the
// heart of espresso's cover manipulation): the word loop is straight-line
// and unrollable, with two loads and branchless non-empty counting.
func buildEspresso() *ir.Program {
	const (
		cubes = 48
		width = 8
	)
	p := ir.NewProgram()
	cover := p.AddGlobal("cover", cubes*width*8)
	rng := lcg(0x657370)
	cvr := make([]int64, cubes*width)
	for i := range cvr {
		cvr[i] = int64(rng.next() & 0x3fffffff)
	}
	cover.InitI = cvr

	b := ir.NewFunc(p, "main", 0, 0)
	cb := b.Addr(cover, 0)
	const rowBytes = width * 8
	total := b.Const(0)
	ii := b.Const(0)

	outer := b.NewBlock()
	b.Br(outer)
	b.SetBlock(outer)
	mid := b.NewBlock()
	pi := b.Add(cb, b.MulI(ii, rowBytes))
	jj := b.AddI(ii, 1)
	b.Br(mid)

	b.SetBlock(mid)
	inner := b.NewBlock()
	pj := b.Add(cb, b.MulI(jj, rowBytes))
	qa := b.Mov(pi)
	qb := b.Mov(pj)
	nz := b.Const(0)
	w := b.Const(0)
	b.Br(inner)

	// Straight-line word loop: unrollable.
	b.SetBlock(inner)
	x := b.And(b.Ld(qa, 0), b.Ld(qb, 0))
	neg := b.Sub(b.Const(0), x)
	bit := b.AndI(b.SrlI(b.Or(x, neg), 63), 1)
	b.MovTo(nz, b.Add(nz, bit))
	b.MovTo(qa, b.AddI(qa, 8))
	b.MovTo(qb, b.AddI(qb, 8))
	b.MovTo(w, b.AddI(w, 1))
	b.BltI(w, width, inner)
	b.Continue()
	b.MovTo(total, b.Add(total, nz))
	b.MovTo(jj, b.AddI(jj, 1))
	b.BltI(jj, cubes, mid)
	b.Continue()
	b.MovTo(ii, b.AddI(ii, 1))
	b.BltI(ii, cubes-1, outer)
	b.Continue()
	b.Ret(total)
	return p
}

// ---------------------------------------------------------------- yacc ---

// buildYacc is a table-driven shift/reduce stack automaton (yacc's parser
// skeleton): per token, an action lookup dispatching to shift (push) or a
// called reduce step that pops and consults a goto table.
func buildYacc() *ir.Program {
	const (
		nStates = 12
		nToks   = 6
		nRules  = 8
		nInput  = 6144
		stackSz = 256
	)
	p := ir.NewProgram()
	action := p.AddGlobal("action", nStates*nToks*8)
	gotoTab := p.AddGlobal("gototab", nStates*nRules*8)
	ruleLen := p.AddGlobal("rulelen", nRules*8)
	inputG := p.AddGlobal("yinput", nInput*8)
	stackG := p.AddGlobal("ystack", stackSz*8)
	depthG := p.AddGlobal("ydepth", 8)

	rng := lcg(0x79616363)
	act := make([]int64, nStates*nToks)
	for i := range act {
		switch rng.intn(3) {
		case 0:
			act[i] = rng.intn(nStates) + 1 // shift to state-1
		case 1:
			act[i] = -(rng.intn(nRules) + 1) // reduce
		default:
			act[i] = 0 // error
		}
	}
	action.InitI = act
	gt := make([]int64, nStates*nRules)
	for i := range gt {
		gt[i] = rng.intn(nStates)
	}
	gotoTab.InitI = gt
	rl := make([]int64, nRules)
	for i := range rl {
		rl[i] = rng.intn(3) + 1
	}
	ruleLen.InitI = rl
	in := make([]int64, nInput)
	for i := range in {
		in[i] = rng.intn(nToks)
	}
	inputG.InitI = in

	// reduce(rule): pop ruleLen[rule] entries, return goto[base][rule].
	rd := ir.NewFunc(p, "reduce", 1, 0)
	rule := rd.Param(0)
	dgr := rd.Addr(depthG, 0)
	sgr := rd.Addr(stackG, 0)
	rlb := rd.Addr(ruleLen, 0)
	gtb := rd.Addr(gotoTab, 0)
	ln := rd.Ld(rd.Add(rlb, rd.SllI(rule, 3)), 0)
	d := rd.Ld(dgr, 0)
	nd := rd.Sub(d, ln)
	under := rd.NewBlock()
	rd.BltI(nd, 1, under)
	rd.Continue()
	rd.St(nd, dgr, 0)
	base := rd.Ld(rd.Add(sgr, rd.SllI(rd.SubI(nd, 1), 3)), 0)
	ns := rd.Ld(rd.Add(gtb, rd.SllI(rd.Add(rd.MulI(base, nRules), rule), 3)), 0)
	rd.Ret(ns)
	rd.SetBlock(under)
	rd.St(rd.Const(1), dgr, 0)
	rd.Ret(rd.Const(0))

	b := ir.NewFunc(p, "main", 0, 0)
	ab := b.Addr(action, 0)
	ib := b.Addr(inputG, 0)
	sgb := b.Addr(stackG, 0)
	dgb := b.Addr(depthG, 0)
	b.St(b.Const(1), dgb, 0)
	b.St(b.Const(0), sgb, 0)
	state := b.Const(0)
	shifts := b.Const(0)
	reduces := b.Const(0)
	errs := b.Const(0)
	i := b.Const(0)

	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	doShift := b.NewBlock()
	doReduce := b.NewBlock()
	step := b.NewBlock()
	tok := b.Ld(b.Add(ib, b.SllI(i, 3)), 0)
	act2 := b.Ld(b.Add(ab, b.SllI(b.Add(b.MulI(state, nToks), tok), 3)), 0)
	b.BgtI(act2, 0, doShift)
	b.Continue()
	b.BltI(act2, 0, doReduce)
	b.Continue() // error path
	b.MovTo(errs, b.AddI(errs, 1))
	b.MovTo(state, b.Const(0))
	b.Br(step)

	b.SetBlock(doShift)
	b.MovTo(state, b.SubI(act2, 1))
	dS := b.Ld(dgb, 0)
	capB := b.NewBlock()
	b.BgeI(dS, stackSz, capB)
	b.Continue()
	b.St(state, b.Add(sgb, b.SllI(dS, 3)), 0)
	b.St(b.AddI(dS, 1), dgb, 0)
	b.MovTo(shifts, b.AddI(shifts, 1))
	b.Br(step)
	b.SetBlock(capB)
	b.St(b.Const(1), dgb, 0)
	b.Br(step)

	b.SetBlock(doReduce)
	rr := b.Sub(b.Const(0), act2)
	b.MovTo(state, b.Call("reduce", b.SubI(rr, 1)))
	b.MovTo(reduces, b.AddI(reduces, 1))
	b.Br(step)

	b.SetBlock(step)
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, nInput, loop)
	b.Continue()
	b.Ret(b.Add(b.Add(b.MulI(shifts, 3), b.MulI(reduces, 5)), b.Add(errs, state)))
	return p
}
