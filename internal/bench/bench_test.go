package bench

import (
	"testing"

	"regconn/internal/interp"
	"regconn/internal/ir"
)

// TestGoldenResults runs every benchmark in the interpreter and asserts the
// recorded golden checksum; -v also reports dynamic instruction counts.
func TestGoldenResults(t *testing.T) {
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			p := bm.Build()
			if err := ir.Verify(p); err != nil {
				t.Fatalf("verify: %v", err)
			}
			res, err := interp.Run(p, "main", nil, interp.Options{})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			t.Logf("%-10s ret=%-12d steps=%d", bm.Name, res.Ret, res.Steps)
			if res.Ret != bm.Expect {
				t.Errorf("checksum = %d, want %d", res.Ret, bm.Expect)
			}
			if res.Steps < 50_000 {
				t.Errorf("workload too small: %d dynamic instructions", res.Steps)
			}
		})
	}
}

// TestFreshBuilds verifies Build returns an independent program each call
// (compilation mutates IR in place, so sharing would corrupt experiments).
func TestFreshBuilds(t *testing.T) {
	for _, bm := range All() {
		p1 := bm.Build()
		p2 := bm.Build()
		if p1 == p2 || p1.Funcs[0] == p2.Funcs[0] {
			t.Errorf("%s: Build returned shared state", bm.Name)
		}
	}
}

func TestSuitePartitions(t *testing.T) {
	if len(All()) != 12 || len(Integer()) != 9 || len(FloatingPoint()) != 3 {
		t.Fatalf("suite sizes: all=%d int=%d fp=%d", len(All()), len(Integer()), len(FloatingPoint()))
	}
	if _, err := ByName("grep"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("expected error for unknown name")
	}
	seen := map[string]bool{}
	for _, b := range All() {
		if seen[b.Name] {
			t.Errorf("duplicate name %s", b.Name)
		}
		seen[b.Name] = true
		if b.Paper == "" {
			t.Errorf("%s missing paper mapping", b.Name)
		}
	}
}
