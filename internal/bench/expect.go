package bench

// Golden checksums, produced by the IR interpreter (see TestGoldenResults,
// which recomputes and asserts them). Every simulated configuration must
// reproduce these exactly — the FP benchmarks included, because no pipeline
// stage reassociates floating-point arithmetic.
const (
	expectCPP       = 50839
	expectCmp       = 15904
	expectCompress  = 693680
	expectEqn       = 470624
	expectEqntott   = 1103327520
	expectEspresso  = 9023
	expectGrep      = 267
	expectLex       = 8192
	expectYacc      = 18618
	expectMatrix300 = 414672
	expectNasa7     = 323423
	expectTomcatv   = 83488
)
