// Package bench provides the twelve benchmark programs of the evaluation:
// nine integer and three floating-point workloads standing in for the
// paper's suite (cccp, cmp, compress, eqn, eqntott, espresso, grep, lex,
// yacc; matrix300, nasa7, tomcatv — §5.3). Each stand-in reproduces the
// computational character of its original: token scanners and
// table-driven state machines for the branchy call-heavy integer codes,
// and dense loop nests for the FP codes. See DESIGN.md §4 for the mapping.
//
// Build functions return a fresh program on every call so callers own the
// result outright (regconn.Build additionally clones its input before the
// destructive optimization passes, and asserts in the fuzz harness that
// the caller's program survives bit-identical); Expect is the checksum
// main must return, verified against the interpreter in the package tests
// and against every simulated configuration by regconn.Executable.Verify.
//
// Generated workloads (internal/workload) widen this suite with seeded
// scenario programs under gen/<profile>/<seed> names; workload.ByName
// resolves both namespaces.
package bench

import (
	"fmt"

	"regconn/internal/ir"
)

// Benchmark is one workload.
type Benchmark struct {
	Name   string
	Paper  string // the original benchmark this stands in for
	FP     bool   // floating-point benchmark (RC applies to the FP file)
	Build  func() *ir.Program
	Expect int64
}

// All returns the full suite in the paper's order.
func All() []Benchmark {
	return []Benchmark{
		{"cpp", "cccp", false, buildCPP, expectCPP},
		{"cmp", "cmp", false, buildCmp, expectCmp},
		{"compress", "compress", false, buildCompress, expectCompress},
		{"eqn", "eqn", false, buildEqn, expectEqn},
		{"eqntott", "eqntott", false, buildEqntott, expectEqntott},
		{"espresso", "espresso", false, buildEspresso, expectEspresso},
		{"grep", "grep", false, buildGrep, expectGrep},
		{"lex", "lex", false, buildLex, expectLex},
		{"yacc", "yacc", false, buildYacc, expectYacc},
		{"matrix300", "matrix300", true, buildMatrix300, expectMatrix300},
		{"nasa7", "nasa7", true, buildNasa7, expectNasa7},
		{"tomcatv", "tomcatv", true, buildTomcatv, expectTomcatv},
	}
}

// Integer returns the nine integer benchmarks.
func Integer() []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if !b.FP {
			out = append(out, b)
		}
	}
	return out
}

// FloatingPoint returns the three FP benchmarks.
func FloatingPoint() []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.FP {
			out = append(out, b)
		}
	}
	return out
}

// ByName finds a benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

// lcg is the deterministic input generator (constants from Numerical
// Recipes); all benchmark inputs derive from fixed seeds.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = (*r)*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

func (r *lcg) intn(n int64) int64 {
	return int64(r.next()>>1) % n
}
