package bench

import (
	"regconn/internal/ir"
)

// ------------------------------------------------------------ matrix300 ---

// buildMatrix300 is a dense matrix multiply (matrix300's whole job),
// blocked four columns at a time so each inner iteration carries four
// independent multiply-accumulate chains — the style IMPACT's unrolling
// produced, and the source of the FP register pressure in Figure 8.
func buildMatrix300() *ir.Program {
	const n = 24 // n^3 = 13824 inner iterations, x4 the FP ops
	p := ir.NewProgram()
	ga := p.AddGlobal("A", n*n*8)
	gb := p.AddGlobal("B", n*n*8)
	gc := p.AddGlobal("C", n*n*8)
	av := make([]float64, n*n)
	bv := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			av[i*n+j] = float64((i*3+j*7)%11) * 0.25
			bv[i*n+j] = float64((i*5+j*2)%13) * 0.125
		}
	}
	ga.InitF = av
	gb.InitF = bv

	b := ir.NewFunc(p, "main", 0, 0)
	ab := b.Addr(ga, 0)
	bb := b.Addr(gb, 0)
	cb := b.Addr(gc, 0)
	const rowB = n * 8

	i := b.Const(0)
	li := b.NewBlock()
	b.Br(li)
	b.SetBlock(li)
	lj := b.NewBlock()
	j := b.Const(0)
	rowA := b.Add(ab, b.MulI(i, rowB))
	rowC := b.Add(cb, b.MulI(i, rowB))
	b.Br(lj)

	b.SetBlock(lj)
	lk := b.NewBlock()
	acc0 := b.FConst(0)
	acc1 := b.FConst(0)
	acc2 := b.FConst(0)
	acc3 := b.FConst(0)
	pa := b.Mov(rowA)
	pb := b.Add(bb, b.SllI(j, 3)) // &B[0][j]
	k := b.Const(0)
	b.Br(lk)

	// Inner loop: one A element against four B columns; straight-line and
	// unrollable, with four independent FP chains.
	b.SetBlock(lk)
	a := b.FLd(pa, 0)
	b0 := b.FLd(pb, 0)
	b1 := b.FLd(pb, 8)
	b2 := b.FLd(pb, 16)
	b3 := b.FLd(pb, 24)
	b.MovTo(acc0, b.FAdd(acc0, b.FMul(a, b0)))
	b.MovTo(acc1, b.FAdd(acc1, b.FMul(a, b1)))
	b.MovTo(acc2, b.FAdd(acc2, b.FMul(a, b2)))
	b.MovTo(acc3, b.FAdd(acc3, b.FMul(a, b3)))
	b.MovTo(pa, b.AddI(pa, 8))
	b.MovTo(pb, b.AddI(pb, rowB))
	b.MovTo(k, b.AddI(k, 1))
	b.BltI(k, n, lk)
	b.Continue()
	outC := b.Add(rowC, b.SllI(j, 3))
	b.FSt(acc0, outC, 0)
	b.FSt(acc1, outC, 8)
	b.FSt(acc2, outC, 16)
	b.FSt(acc3, outC, 24)
	b.MovTo(j, b.AddI(j, 4))
	b.BltI(j, n, lj)
	b.Continue()
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, n, li)
	b.Continue()

	// Checksum: sum(C) scaled to an exact integer.
	s := b.FConst(0)
	q := b.Mov(cb)
	t := b.Const(0)
	cs := b.NewBlock()
	b.Br(cs)
	b.SetBlock(cs)
	b.MovTo(s, b.FAdd(s, b.FLd(q, 0)))
	b.MovTo(q, b.AddI(q, 8))
	b.MovTo(t, b.AddI(t, 1))
	b.BltI(t, n*n, cs)
	b.Continue()
	b.Ret(b.FToI(b.FMul(s, b.FConst(32))))
	return p
}

// ---------------------------------------------------------------- nasa7 ---

// buildNasa7 mixes three kernels in the spirit of the NASA7 collection:
// a daxpy sweep (independent iterations, memory-bound), a dot product
// (reduction chain), and a three-point smoothing recurrence.
func buildNasa7() *ir.Program {
	const n = 4096
	p := ir.NewProgram()
	gx := p.AddGlobal("nx", n*8)
	gy := p.AddGlobal("ny", n*8)
	gz := p.AddGlobal("nz", n*8)
	xv := make([]float64, n)
	yv := make([]float64, n)
	for i := 0; i < n; i++ {
		xv[i] = float64(i%17) * 0.5
		yv[i] = float64((i*3)%23) * 0.25
	}
	gx.InitF = xv
	gy.InitF = yv

	b := ir.NewFunc(p, "main", 0, 0)
	xb := b.Addr(gx, 0)
	yb := b.Addr(gy, 0)
	zb := b.Addr(gz, 0)

	// daxpy: y = y + a*x
	a := b.FConst(1.5)
	px := b.Mov(xb)
	py := b.Mov(yb)
	i := b.Const(0)
	l1 := b.NewBlock()
	b.Br(l1)
	b.SetBlock(l1)
	vy := b.FAdd(b.FLd(py, 0), b.FMul(a, b.FLd(px, 0)))
	b.FSt(vy, py, 0)
	b.MovTo(px, b.AddI(px, 8))
	b.MovTo(py, b.AddI(py, 8))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, n, l1)
	b.Continue()

	// dot: d = sum x[i]*y[i], four accumulator chains wide
	d0 := b.FConst(0)
	d1 := b.FConst(0)
	d2 := b.FConst(0)
	d3 := b.FConst(0)
	qx := b.Mov(xb)
	qy := b.Mov(yb)
	j := b.Const(0)
	l2 := b.NewBlock()
	b.Br(l2)
	b.SetBlock(l2)
	b.MovTo(d0, b.FAdd(d0, b.FMul(b.FLd(qx, 0), b.FLd(qy, 0))))
	b.MovTo(d1, b.FAdd(d1, b.FMul(b.FLd(qx, 8), b.FLd(qy, 8))))
	b.MovTo(d2, b.FAdd(d2, b.FMul(b.FLd(qx, 16), b.FLd(qy, 16))))
	b.MovTo(d3, b.FAdd(d3, b.FMul(b.FLd(qx, 24), b.FLd(qy, 24))))
	b.MovTo(qx, b.AddI(qx, 32))
	b.MovTo(qy, b.AddI(qy, 32))
	b.MovTo(j, b.AddI(j, 4))
	b.BltI(j, n, l2)
	b.Continue()
	d := b.FAdd(b.FAdd(d0, d1), b.FAdd(d2, d3))

	// smooth: z[i] = 0.25*y[i-1] + 0.5*y[i] + 0.25*y[i+1]
	c14 := b.FConst(0.25)
	c12 := b.FConst(0.5)
	ry := b.AddI(yb, 8)
	rz := b.AddI(zb, 8)
	k := b.Const(1)
	l3 := b.NewBlock()
	b.Br(l3)
	b.SetBlock(l3)
	vm := b.FLd(ry, -8)
	v0 := b.FLd(ry, 0)
	vp := b.FLd(ry, 8)
	sm := b.FAdd(b.FAdd(b.FMul(c14, vm), b.FMul(c12, v0)), b.FMul(c14, vp))
	b.FSt(sm, rz, 0)
	b.MovTo(ry, b.AddI(ry, 8))
	b.MovTo(rz, b.AddI(rz, 8))
	b.MovTo(k, b.AddI(k, 1))
	b.BltI(k, n-1, l3)
	b.Continue()

	// checksum: d + sum z
	sz := b.FConst(0)
	qz := b.Mov(zb)
	t := b.Const(0)
	l4 := b.NewBlock()
	b.Br(l4)
	b.SetBlock(l4)
	b.MovTo(sz, b.FAdd(sz, b.FLd(qz, 0)))
	b.MovTo(qz, b.AddI(qz, 8))
	b.MovTo(t, b.AddI(t, 1))
	b.BltI(t, n, l4)
	b.Continue()
	b.Ret(b.FToI(b.FAdd(d, b.FMul(sz, b.FConst(4)))))
	return p
}

// -------------------------------------------------------------- tomcatv ---

// buildTomcatv is a 2-D mesh relaxation (tomcatv's sweep structure): a
// Gauss-Seidel 5-point stencil over a grid, several sweeps, with an error
// accumulation per sweep.
func buildTomcatv() *ir.Program {
	const (
		dim    = 34
		sweeps = 5
	)
	p := ir.NewProgram()
	grid := p.AddGlobal("grid", dim*dim*8)
	gv := make([]float64, dim*dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			// Boundary values fixed, interior seeded.
			switch {
			case i == 0 || j == 0 || i == dim-1 || j == dim-1:
				gv[i*dim+j] = float64((i+j)%7) * 0.5
			default:
				gv[i*dim+j] = 0.1 * float64((i*j)%5)
			}
		}
	}
	grid.InitF = gv

	b := ir.NewFunc(p, "main", 0, 0)
	gb := b.Addr(grid, 0)
	const rowB = dim * 8
	quarter := b.FConst(0.25)
	errAcc := b.FConst(0)

	s := b.Const(0)
	ls := b.NewBlock()
	b.Br(ls)
	b.SetBlock(ls)
	li := b.NewBlock()
	i := b.Const(1)
	b.Br(li)

	b.SetBlock(li)
	lj := b.NewBlock()
	// row pointer to grid[i][1]
	q := b.Add(gb, b.AddI(b.MulI(i, rowB), 8))
	j := b.Const(1)
	b.Br(lj)

	// Inner sweep: straight-line Gauss-Seidel update.
	b.SetBlock(lj)
	up := b.FLd(q, -rowB)
	down := b.FLd(q, rowB)
	left := b.FLd(q, -8)
	right := b.FLd(q, 8)
	old := b.FLd(q, 0)
	nv := b.FMul(quarter, b.FAdd(b.FAdd(up, down), b.FAdd(left, right)))
	b.FSt(nv, q, 0)
	diff := b.FSub(nv, old)
	b.MovTo(errAcc, b.FAdd(errAcc, b.FMul(diff, diff)))
	b.MovTo(q, b.AddI(q, 8))
	b.MovTo(j, b.AddI(j, 1))
	b.BltI(j, dim-1, lj)
	b.Continue()
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, dim-1, li)
	b.Continue()
	b.MovTo(s, b.AddI(s, 1))
	b.BltI(s, sweeps, ls)
	b.Continue()

	// checksum: scaled error plus grid center sample
	center := b.FLd(b.Add(gb, b.Const((dim/2)*rowB+(dim/2)*8)), 0)
	sum := b.FAdd(b.FMul(errAcc, b.FConst(1024)), b.FMul(center, b.FConst(65536)))
	b.Ret(b.FToI(sum))
	return p
}
