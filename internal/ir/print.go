package ir

import (
	"fmt"
	"strings"
)

// String renders the whole program as readable assembly-like text.
func (p *Program) String() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, ".global %s %d\n", g.Name, g.Size)
	}
	for _, f := range p.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders one function.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "\nfunc %s(", f.Name)
	for i, r := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(r.String())
	}
	sb.WriteString("):\n")
	for _, b := range f.Blocks {
		if b.Weight > 0 {
			fmt.Fprintf(&sb, ".T%d:  ; weight=%.0f\n", b.Index, b.Weight)
		} else {
			fmt.Fprintf(&sb, ".T%d:\n", b.Index)
		}
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", b.Instrs[i].String())
		}
	}
	return sb.String()
}
