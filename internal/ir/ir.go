// Package ir defines the compiler's intermediate representation: functions
// of basic blocks holding isa.Instr instructions over unbounded virtual
// registers. The IR is directly executable (package interp), which provides
// both profiling and a correctness oracle for every compiled configuration.
//
// Control-flow convention: a conditional branch transfers to its Target
// block when taken and falls through to the next block in Blocks order when
// not taken. An unconditional BR transfers to Target. A block whose last
// instruction is not a terminator falls through to the next block. RET and
// HALT end control flow.
//
// Definite assignment: every register use must be dominated by a
// definition (or be a parameter). Reading a register that is undefined on
// some path is undefined behaviour — the interpreter happens to read zero,
// but compiled code reads whatever the assigned physical register holds.
package ir

import (
	"fmt"

	"regconn/internal/isa"
)

// Program is a whole compilation unit: functions plus global data.
type Program struct {
	Funcs   []*Func
	Globals []*Global

	byName map[string]*Func
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{byName: make(map[string]*Func)}
}

// Func looks up a function by name, returning nil if absent.
func (p *Program) Func(name string) *Func {
	if p.byName == nil {
		p.byName = make(map[string]*Func)
		for _, f := range p.Funcs {
			p.byName[f.Name] = f
		}
	}
	return p.byName[name]
}

// AddFunc appends a function; duplicate names are a programming error.
func (p *Program) AddFunc(f *Func) {
	if p.Func(f.Name) != nil {
		panic(fmt.Sprintf("ir: duplicate function %q", f.Name))
	}
	p.Funcs = append(p.Funcs, f)
	p.byName[f.Name] = f
}

// Global is one named data object. Size is in bytes (multiple of 8); at
// most one of InitI/InitF provides initial words, the remainder is zeroed.
type Global struct {
	Name  string
	Size  int64
	InitI []int64
	InitF []float64
}

// Words returns the global's size in 8-byte words.
func (g *Global) Words() int64 { return g.Size / 8 }

// AddGlobal appends a global data object and returns it. Size is rounded up
// to a multiple of 8 bytes.
func (p *Program) AddGlobal(name string, size int64) *Global {
	for _, g := range p.Globals {
		if g.Name == name {
			panic(fmt.Sprintf("ir: duplicate global %q", name))
		}
	}
	g := &Global{Name: name, Size: (size + 7) &^ 7}
	p.Globals = append(p.Globals, g)
	return g
}

// Func is one function: an entry block (Blocks[0]), parameter registers,
// and virtual-register counters per class.
type Func struct {
	Name   string
	Params []isa.Reg // virtual registers holding incoming arguments
	Blocks []*Block

	NextInt   int // next unused integer virtual register
	NextFloat int // next unused float virtual register
}

// NewBlock appends a fresh empty block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{Index: len(f.Blocks), fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// MakeBlock returns a fresh block linked to f but not yet in f.Blocks;
// callers splice it in (e.g. loop restructuring) and must Renumber.
func (f *Func) MakeBlock() *Block { return &Block{fn: f, Index: -1} }

// InsertBlock inserts a fresh empty block at index pos, shifting later
// blocks down, and returns it. Branch targets are not adjusted; callers
// must remap them.
func (f *Func) InsertBlock(pos int) *Block {
	nb := &Block{fn: f}
	f.Blocks = append(f.Blocks, nil)
	copy(f.Blocks[pos+1:], f.Blocks[pos:])
	f.Blocks[pos] = nb
	f.Renumber()
	return nb
}

// NewInt allocates a fresh integer virtual register.
func (f *Func) NewInt() isa.Reg {
	r := isa.IntReg(f.NextInt)
	f.NextInt++
	return r
}

// NewFloat allocates a fresh floating-point virtual register.
func (f *Func) NewFloat() isa.Reg {
	r := isa.FloatReg(f.NextFloat)
	f.NextFloat++
	return r
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Renumber rebuilds Block.Index after structural edits. Branch targets are
// block pointers' indices, so callers must fix Target fields themselves (or
// use the editing helpers in packages opt/ilp, which do).
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// NumInstrs returns the static instruction count of the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Block is a basic block.
type Block struct {
	Index  int
	Instrs []isa.Instr

	// Weight is the profiled execution count of the block; TakenWeight is
	// the profiled count of the terminating conditional branch being
	// taken. Zero before profiling.
	Weight      float64
	TakenWeight float64

	fn *Func
}

// Func returns the block's containing function.
func (b *Block) Func() *Func { return b.fn }

// Term returns a pointer to the block's final instruction if it is a
// terminator, else nil (fallthrough block).
func (b *Block) Term() *isa.Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerminator() {
		return last
	}
	return nil
}

// Succs returns the indices of the block's successor blocks in the
// containing function, in (taken, fallthrough) order for conditional
// branches.
func (b *Block) Succs() []int {
	t := b.Term()
	next := b.Index + 1
	hasNext := next < len(b.fn.Blocks)
	switch {
	case t == nil:
		if hasNext {
			return []int{next}
		}
		return nil
	case t.Op == isa.BR:
		return []int{t.Target}
	case t.Op.IsCondBranch():
		if hasNext {
			return []int{t.Target, next}
		}
		return []int{t.Target}
	default: // RET, HALT
		return nil
	}
}

// Append adds an instruction to the end of the block.
func (b *Block) Append(in isa.Instr) { b.Instrs = append(b.Instrs, in) }
