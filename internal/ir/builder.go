package ir

import (
	"fmt"

	"regconn/internal/isa"
)

// Builder provides a fluent API for constructing IR functions. All emit
// methods append to the current block and return the destination register
// (where there is one). The builder is how benchmark programs and tests are
// written; misuse (e.g. emitting into a terminated block) panics, since IR
// construction errors are programming errors.
type Builder struct {
	F   *Func
	cur *Block

	// fixes remembers every emitted branch with the *Block it targets so
	// Continue can insert blocks mid-construction and re-resolve indices.
	fixes []branchFix
}

type branchFix struct {
	blk *Block
	idx int
	tgt *Block
}

// NewFunc creates a function with nparams integer parameters followed by
// nfparams floating-point parameters, registers it in p, and returns a
// builder positioned at a fresh entry block.
func NewFunc(p *Program, name string, nparams, nfparams int) *Builder {
	f := &Func{Name: name}
	for i := 0; i < nparams; i++ {
		f.Params = append(f.Params, f.NewInt())
	}
	for i := 0; i < nfparams; i++ {
		f.Params = append(f.Params, f.NewFloat())
	}
	p.AddFunc(f)
	b := &Builder{F: f}
	b.cur = f.NewBlock()
	return b
}

// Param returns the i'th parameter register.
func (b *Builder) Param(i int) isa.Reg { return b.F.Params[i] }

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.cur }

// NewBlock creates a new block (without changing the insertion point).
func (b *Builder) NewBlock() *Block { return b.F.NewBlock() }

// SetBlock moves the insertion point to blk.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Continue inserts a fresh block immediately after the current block — the
// fallthrough successor of the conditional branch just emitted — moves the
// insertion point there, and returns it. All previously emitted branch
// targets are re-resolved, so layout position never needs hand-managing.
func (b *Builder) Continue() *Block {
	nb := b.F.InsertBlock(b.cur.Index + 1)
	for _, fx := range b.fixes {
		fx.blk.Instrs[fx.idx].Target = fx.tgt.Index
	}
	b.cur = nb
	return nb
}

func (b *Builder) emit(in isa.Instr) {
	if t := b.cur.Term(); t != nil {
		panic(fmt.Sprintf("ir: emit %v into terminated block .T%d of %s", in.Op, b.cur.Index, b.F.Name))
	}
	b.cur.Append(in)
}

func (b *Builder) bin(op isa.Op, x, y isa.Reg) isa.Reg {
	d := b.destFor(op)
	b.emit(isa.Instr{Op: op, Dst: d, A: x, B: y})
	return d
}

func (b *Builder) binI(op isa.Op, x isa.Reg, imm int64) isa.Reg {
	d := b.destFor(op)
	b.emit(isa.Instr{Op: op, Dst: d, A: x, Imm: imm, UseImm: true})
	return d
}

func (b *Builder) destFor(op isa.Op) isa.Reg {
	switch op {
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FMOV, isa.FNEG, isa.FABS, isa.CVTIF, isa.FLD, isa.FMOVI:
		return b.F.NewFloat()
	default:
		return b.F.NewInt()
	}
}

// Integer arithmetic.
func (b *Builder) Add(x, y isa.Reg) isa.Reg        { return b.bin(isa.ADD, x, y) }
func (b *Builder) AddI(x isa.Reg, k int64) isa.Reg { return b.binI(isa.ADD, x, k) }
func (b *Builder) Sub(x, y isa.Reg) isa.Reg        { return b.bin(isa.SUB, x, y) }
func (b *Builder) SubI(x isa.Reg, k int64) isa.Reg { return b.binI(isa.SUB, x, k) }
func (b *Builder) Mul(x, y isa.Reg) isa.Reg        { return b.bin(isa.MUL, x, y) }
func (b *Builder) MulI(x isa.Reg, k int64) isa.Reg { return b.binI(isa.MUL, x, k) }
func (b *Builder) Div(x, y isa.Reg) isa.Reg        { return b.bin(isa.DIV, x, y) }
func (b *Builder) DivI(x isa.Reg, k int64) isa.Reg { return b.binI(isa.DIV, x, k) }
func (b *Builder) Rem(x, y isa.Reg) isa.Reg        { return b.bin(isa.REM, x, y) }
func (b *Builder) RemI(x isa.Reg, k int64) isa.Reg { return b.binI(isa.REM, x, k) }
func (b *Builder) And(x, y isa.Reg) isa.Reg        { return b.bin(isa.AND, x, y) }
func (b *Builder) AndI(x isa.Reg, k int64) isa.Reg { return b.binI(isa.AND, x, k) }
func (b *Builder) Or(x, y isa.Reg) isa.Reg         { return b.bin(isa.OR, x, y) }
func (b *Builder) OrI(x isa.Reg, k int64) isa.Reg  { return b.binI(isa.OR, x, k) }
func (b *Builder) Xor(x, y isa.Reg) isa.Reg        { return b.bin(isa.XOR, x, y) }
func (b *Builder) XorI(x isa.Reg, k int64) isa.Reg { return b.binI(isa.XOR, x, k) }
func (b *Builder) Sll(x, y isa.Reg) isa.Reg        { return b.bin(isa.SLL, x, y) }
func (b *Builder) SllI(x isa.Reg, k int64) isa.Reg { return b.binI(isa.SLL, x, k) }
func (b *Builder) SrlI(x isa.Reg, k int64) isa.Reg { return b.binI(isa.SRL, x, k) }
func (b *Builder) SraI(x isa.Reg, k int64) isa.Reg { return b.binI(isa.SRA, x, k) }
func (b *Builder) Slt(x, y isa.Reg) isa.Reg        { return b.bin(isa.SLT, x, y) }
func (b *Builder) SltI(x isa.Reg, k int64) isa.Reg { return b.binI(isa.SLT, x, k) }

// Mov copies an integer register; FMov copies a float register.
func (b *Builder) Mov(x isa.Reg) isa.Reg {
	d := b.F.NewInt()
	b.emit(isa.Instr{Op: isa.MOV, Dst: d, A: x})
	return d
}
func (b *Builder) FMov(x isa.Reg) isa.Reg {
	d := b.F.NewFloat()
	b.emit(isa.Instr{Op: isa.FMOV, Dst: d, A: x})
	return d
}

// MovTo copies src into an existing register dst (the builder's only way
// to redefine a register, used for loop-carried variables).
func (b *Builder) MovTo(dst, src isa.Reg) {
	op := isa.MOV
	if dst.Class == isa.ClassFloat {
		op = isa.FMOV
	}
	b.emit(isa.Instr{Op: op, Dst: dst, A: src})
}

// Const materializes an integer constant; FConst a float constant.
func (b *Builder) Const(k int64) isa.Reg {
	d := b.F.NewInt()
	b.emit(isa.Instr{Op: isa.MOVI, Dst: d, Imm: k})
	return d
}
func (b *Builder) FConst(v float64) isa.Reg {
	d := b.F.NewFloat()
	in := isa.Instr{Op: isa.FMOVI, Dst: d}
	in.SetFImm(v)
	b.emit(in)
	return d
}

// Addr materializes the address of a global (+ byte offset).
func (b *Builder) Addr(g *Global, off int64) isa.Reg {
	d := b.F.NewInt()
	b.emit(isa.Instr{Op: isa.LGA, Dst: d, Sym: g.Name, Imm: off})
	return d
}

// Memory. Offsets are in bytes; accesses move one 8-byte word.
func (b *Builder) Ld(base isa.Reg, off int64) isa.Reg {
	d := b.F.NewInt()
	b.emit(isa.Instr{Op: isa.LD, Dst: d, A: base, Imm: off})
	return d
}
func (b *Builder) St(val, base isa.Reg, off int64) {
	b.emit(isa.Instr{Op: isa.ST, A: base, B: val, Imm: off})
}
func (b *Builder) FLd(base isa.Reg, off int64) isa.Reg {
	d := b.F.NewFloat()
	b.emit(isa.Instr{Op: isa.FLD, Dst: d, A: base, Imm: off})
	return d
}
func (b *Builder) FSt(val, base isa.Reg, off int64) {
	b.emit(isa.Instr{Op: isa.FST, A: base, B: val, Imm: off})
}

// Floating point arithmetic.
func (b *Builder) FAdd(x, y isa.Reg) isa.Reg { return b.bin(isa.FADD, x, y) }
func (b *Builder) FSub(x, y isa.Reg) isa.Reg { return b.bin(isa.FSUB, x, y) }
func (b *Builder) FMul(x, y isa.Reg) isa.Reg { return b.bin(isa.FMUL, x, y) }
func (b *Builder) FDiv(x, y isa.Reg) isa.Reg { return b.bin(isa.FDIV, x, y) }
func (b *Builder) FNeg(x isa.Reg) isa.Reg {
	d := b.F.NewFloat()
	b.emit(isa.Instr{Op: isa.FNEG, Dst: d, A: x})
	return d
}
func (b *Builder) FAbs(x isa.Reg) isa.Reg {
	d := b.F.NewFloat()
	b.emit(isa.Instr{Op: isa.FABS, Dst: d, A: x})
	return d
}
func (b *Builder) IToF(x isa.Reg) isa.Reg {
	d := b.F.NewFloat()
	b.emit(isa.Instr{Op: isa.CVTIF, Dst: d, A: x})
	return d
}
func (b *Builder) FToI(x isa.Reg) isa.Reg {
	d := b.F.NewInt()
	b.emit(isa.Instr{Op: isa.CVTFI, Dst: d, A: x})
	return d
}

// Control flow.
func (b *Builder) Br(t *Block) {
	b.emit(isa.Instr{Op: isa.BR, Target: t.Index})
	b.noteBranch(t)
}

func (b *Builder) CondBr(op isa.Op, x, y isa.Reg, t *Block) {
	b.emit(isa.Instr{Op: op, A: x, B: y, Target: t.Index})
	b.noteBranch(t)
}
func (b *Builder) CondBrI(op isa.Op, x isa.Reg, k int64, t *Block) {
	b.emit(isa.Instr{Op: op, A: x, Imm: k, UseImm: true, Target: t.Index})
	b.noteBranch(t)
}

func (b *Builder) noteBranch(t *Block) {
	b.fixes = append(b.fixes, branchFix{b.cur, len(b.cur.Instrs) - 1, t})
}
func (b *Builder) Beq(x, y isa.Reg, t *Block)        { b.CondBr(isa.BEQ, x, y, t) }
func (b *Builder) Bne(x, y isa.Reg, t *Block)        { b.CondBr(isa.BNE, x, y, t) }
func (b *Builder) Blt(x, y isa.Reg, t *Block)        { b.CondBr(isa.BLT, x, y, t) }
func (b *Builder) Ble(x, y isa.Reg, t *Block)        { b.CondBr(isa.BLE, x, y, t) }
func (b *Builder) Bgt(x, y isa.Reg, t *Block)        { b.CondBr(isa.BGT, x, y, t) }
func (b *Builder) Bge(x, y isa.Reg, t *Block)        { b.CondBr(isa.BGE, x, y, t) }
func (b *Builder) BeqI(x isa.Reg, k int64, t *Block) { b.CondBrI(isa.BEQ, x, k, t) }
func (b *Builder) BneI(x isa.Reg, k int64, t *Block) { b.CondBrI(isa.BNE, x, k, t) }
func (b *Builder) BltI(x isa.Reg, k int64, t *Block) { b.CondBrI(isa.BLT, x, k, t) }
func (b *Builder) BleI(x isa.Reg, k int64, t *Block) { b.CondBrI(isa.BLE, x, k, t) }
func (b *Builder) BgtI(x isa.Reg, k int64, t *Block) { b.CondBrI(isa.BGT, x, k, t) }
func (b *Builder) BgeI(x isa.Reg, k int64, t *Block) { b.CondBrI(isa.BGE, x, k, t) }
func (b *Builder) FBlt(x, y isa.Reg, t *Block)       { b.CondBr(isa.FBLT, x, y, t) }
func (b *Builder) FBle(x, y isa.Reg, t *Block)       { b.CondBr(isa.FBLE, x, y, t) }
func (b *Builder) FBeq(x, y isa.Reg, t *Block)       { b.CondBr(isa.FBEQ, x, y, t) }
func (b *Builder) FBne(x, y isa.Reg, t *Block)       { b.CondBr(isa.FBNE, x, y, t) }

// Call emits a call returning an integer result; FCall a float result;
// CallVoid no result. Callees are named (resolved at verify time).
func (b *Builder) Call(name string, args ...isa.Reg) isa.Reg {
	d := b.F.NewInt()
	b.emit(isa.Instr{Op: isa.CALL, Dst: d, Sym: name, Args: append([]isa.Reg(nil), args...)})
	return d
}
func (b *Builder) FCall(name string, args ...isa.Reg) isa.Reg {
	d := b.F.NewFloat()
	b.emit(isa.Instr{Op: isa.CALL, Dst: d, Sym: name, Args: append([]isa.Reg(nil), args...)})
	return d
}
func (b *Builder) CallVoid(name string, args ...isa.Reg) {
	b.emit(isa.Instr{Op: isa.CALL, Sym: name, Args: append([]isa.Reg(nil), args...)})
}

// Ret returns a value; RetVoid returns nothing.
func (b *Builder) Ret(v isa.Reg) { b.emit(isa.Instr{Op: isa.RET, A: v}) }
func (b *Builder) RetVoid()      { b.emit(isa.Instr{Op: isa.RET}) }
