package ir

import (
	"strings"
	"testing"

	"regconn/internal/isa"
)

// TestBuilderSurface touches every emit helper and verifies the result —
// both coverage for the builder and living documentation of the API.
func TestBuilderSurface(t *testing.T) {
	p := NewProgram()
	g := p.AddGlobal("data", 128)
	callee := NewFunc(p, "callee", 1, 1)
	callee.Ret(callee.Param(0))

	b := NewFunc(p, "main", 0, 0)
	x := b.Const(6)
	y := b.Const(3)
	f1 := b.FConst(2.0)
	f2 := b.FConst(0.5)

	ints := []isa.Reg{
		b.Add(x, y), b.AddI(x, 1), b.Sub(x, y), b.SubI(x, 1),
		b.Mul(x, y), b.MulI(x, 2), b.Div(x, y), b.DivI(x, 2),
		b.Rem(x, y), b.RemI(x, 4), b.And(x, y), b.AndI(x, 7),
		b.Or(x, y), b.OrI(x, 8), b.Xor(x, y), b.XorI(x, 5),
		b.Sll(x, y), b.SllI(x, 2), b.SrlI(x, 1), b.SraI(x, 1),
		b.Slt(x, y), b.SltI(x, 10), b.Mov(x),
	}
	floats := []isa.Reg{
		b.FAdd(f1, f2), b.FSub(f1, f2), b.FMul(f1, f2), b.FDiv(f1, f2),
		b.FNeg(f1), b.FAbs(f2), b.FMov(f1), b.IToF(x),
	}
	base := b.Addr(g, 0)
	b.St(x, base, 0)
	b.FSt(f1, base, 8)
	lv := b.Ld(base, 0)
	fv := b.FLd(base, 8)
	b.MovTo(x, lv)
	b.MovTo(f1, fv)
	r := b.Call("callee", x, f1)
	b.CallVoid("callee", x, f1)
	fr := b.FCall("callee", x, f1)
	_ = fr

	// Control flow: every conditional helper gets a target.
	done := b.NewBlock()
	for _, emit := range []func(*Block){
		func(t2 *Block) { b.Beq(x, y, t2) }, func(t2 *Block) { b.Bne(x, y, t2) },
		func(t2 *Block) { b.Blt(x, y, t2) }, func(t2 *Block) { b.Ble(x, y, t2) },
		func(t2 *Block) { b.Bgt(x, y, t2) }, func(t2 *Block) { b.Bge(x, y, t2) },
		func(t2 *Block) { b.BeqI(x, 1, t2) }, func(t2 *Block) { b.BneI(x, 1, t2) },
		func(t2 *Block) { b.BltI(x, 1, t2) }, func(t2 *Block) { b.BleI(x, 1, t2) },
		func(t2 *Block) { b.BgtI(x, 1, t2) }, func(t2 *Block) { b.BgeI(x, 1, t2) },
		func(t2 *Block) { b.FBeq(f1, f2, t2) }, func(t2 *Block) { b.FBne(f1, f2, t2) },
		func(t2 *Block) { b.FBlt(f1, f2, t2) }, func(t2 *Block) { b.FBle(f1, f2, t2) },
	} {
		emit(done)
		b.Continue()
	}
	sum := b.Const(0)
	for _, v := range ints {
		b.MovTo(sum, b.Add(sum, v))
	}
	for _, v := range floats {
		b.MovTo(sum, b.Add(sum, b.FToI(v)))
	}
	b.MovTo(sum, b.Add(sum, r))
	b.Br(done)
	b.SetBlock(done)
	b.Ret(sum)

	if err := Verify(p); err != nil {
		t.Fatalf("builder produced invalid IR: %v", err)
	}
	if got := b.Block(); got != done {
		t.Error("Block() should report the insertion point")
	}
	text := p.String()
	for _, want := range []string{"func main()", "fadd", "cvtif", "call callee"} {
		if !strings.Contains(text, want) {
			t.Errorf("print missing %q", want)
		}
	}
}

func TestFuncHelpers(t *testing.T) {
	p := NewProgram()
	b := NewFunc(p, "f", 2, 1)
	if len(b.F.Params) != 3 || b.Param(2).Class != isa.ClassFloat {
		t.Fatal("params wrong")
	}
	nb := b.F.MakeBlock()
	if nb.Func() != b.F || nb.Index != -1 {
		t.Error("MakeBlock linkage wrong")
	}
	b.RetVoid()
	if b.F.Entry() != b.F.Blocks[0] {
		t.Error("Entry wrong")
	}
	if n := b.F.NumInstrs(); n != 1 {
		t.Errorf("NumInstrs = %d", n)
	}
	if p.Func("f") != b.F || p.Func("nope") != nil {
		t.Error("Func lookup wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate function should panic")
		}
	}()
	NewFunc(p, "f", 0, 0)
}
