package ir

import (
	"strings"
	"testing"

	"regconn/internal/isa"
)

// buildLoopSum constructs: func sum(n) { s=0; i=0; do { s+=i; i++ } while (i<n); return s }
func buildLoopSum(p *Program) *Builder {
	b := NewFunc(p, "sum", 1, 0)
	n := b.Param(0)
	s := b.Const(0)
	i := b.Const(0)
	body := b.NewBlock()
	b.Br(body)
	b.SetBlock(body)
	s2 := b.Add(s, i)
	i2 := b.AddI(i, 1)
	// Loop carried: write back via MOVs to keep single registers.
	b.Block().Append(isa.Instr{Op: isa.MOV, Dst: s, A: s2})
	b.Block().Append(isa.Instr{Op: isa.MOV, Dst: i, A: i2})
	b.Blt(i, n, body)
	exit := b.NewBlock()
	b.SetBlock(exit)
	b.Ret(s)
	return b
}

func TestBuilderAndVerify(t *testing.T) {
	p := NewProgram()
	buildLoopSum(p)
	if err := Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	f := p.Func("sum")
	if f == nil || len(f.Blocks) != 3 {
		t.Fatalf("unexpected function shape: %v", f)
	}
}

func TestVerifyCatchesBadTarget(t *testing.T) {
	p := NewProgram()
	b := NewFunc(p, "f", 0, 0)
	b.Block().Append(isa.Instr{Op: isa.BR, Target: 99})
	if err := Verify(p); err == nil {
		t.Fatal("expected bad-target error")
	}
}

func TestVerifyCatchesClassMismatch(t *testing.T) {
	p := NewProgram()
	b := NewFunc(p, "f", 0, 0)
	x := b.Const(1)
	// Abuse: FADD with integer registers.
	b.Block().Append(isa.Instr{Op: isa.FADD, Dst: x, A: x, B: x})
	b.Ret(x)
	if err := Verify(p); err == nil {
		t.Fatal("expected class mismatch error")
	}
}

func TestVerifyCatchesFallOffEnd(t *testing.T) {
	p := NewProgram()
	b := NewFunc(p, "f", 0, 0)
	b.Const(1) // no terminator
	if err := Verify(p); err == nil {
		t.Fatal("expected fall-off-end error")
	}
}

func TestVerifyCatchesUnknownCallee(t *testing.T) {
	p := NewProgram()
	b := NewFunc(p, "f", 0, 0)
	r := b.Call("nosuch")
	b.Ret(r)
	if err := Verify(p); err == nil {
		t.Fatal("expected unknown-callee error")
	}
}

func TestVerifyCatchesConnectInIR(t *testing.T) {
	p := NewProgram()
	b := NewFunc(p, "f", 0, 0)
	b.Block().Append(isa.Instr{Op: isa.CONUSE})
	b.RetVoid()
	if err := Verify(p); err == nil {
		t.Fatal("expected connect-in-IR error")
	}
}

func TestVerifyArgCount(t *testing.T) {
	p := NewProgram()
	callee := NewFunc(p, "g", 2, 0)
	callee.Ret(callee.Param(0))
	b := NewFunc(p, "f", 0, 0)
	x := b.Const(1)
	r := b.Call("g", x) // wrong arity
	b.Ret(r)
	if err := Verify(p); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestSuccs(t *testing.T) {
	p := NewProgram()
	buildLoopSum(p)
	f := p.Func("sum")
	// entry -> body (BR)
	if s := f.Blocks[0].Succs(); len(s) != 1 || s[0] != 1 {
		t.Errorf("entry succs = %v", s)
	}
	// body -> (body taken, exit fallthrough)
	if s := f.Blocks[1].Succs(); len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Errorf("body succs = %v", s)
	}
	// exit (RET) -> none
	if s := f.Blocks[2].Succs(); len(s) != 0 {
		t.Errorf("exit succs = %v", s)
	}
}

func TestInsertBlock(t *testing.T) {
	p := NewProgram()
	buildLoopSum(p)
	f := p.Func("sum")
	nb := f.InsertBlock(1)
	if f.Blocks[1] != nb || nb.Index != 1 || f.Blocks[2].Index != 2 {
		t.Fatal("insert did not renumber")
	}
	if nb.Func() != f {
		t.Fatal("inserted block not linked to function")
	}
}

func TestGlobals(t *testing.T) {
	p := NewProgram()
	g := p.AddGlobal("tbl", 100) // rounds to 104
	if g.Size != 104 || g.Words() != 13 {
		t.Errorf("size = %d words = %d", g.Size, g.Words())
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate global should panic")
		}
	}()
	p.AddGlobal("tbl", 8)
}

func TestPrint(t *testing.T) {
	p := NewProgram()
	p.AddGlobal("data", 64)
	buildLoopSum(p)
	s := p.String()
	for _, want := range []string{".global data 64", "func sum(r0):", ".T0:", "blt", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("printout missing %q:\n%s", want, s)
		}
	}
}

func TestEmitIntoTerminatedBlockPanics(t *testing.T) {
	p := NewProgram()
	b := NewFunc(p, "f", 0, 0)
	b.RetVoid()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.Const(1)
}
