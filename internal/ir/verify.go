package ir

import (
	"fmt"

	"regconn/internal/isa"
)

// Verify checks structural invariants of the program's IR form: register
// classes match opcodes, branch targets exist, virtual register numbers are
// in range, call targets resolve, terminators are sane. It returns the
// first violation found.
func Verify(p *Program) error {
	for _, f := range p.Funcs {
		if err := verifyFunc(p, f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(p *Program, f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	for i, b := range f.Blocks {
		if b.Index != i {
			return fmt.Errorf("block %d has stale index %d", i, b.Index)
		}
		for j := range b.Instrs {
			in := &b.Instrs[j]
			if err := verifyInstr(p, f, in); err != nil {
				return fmt.Errorf(".T%d[%d] %v: %w", i, j, in, err)
			}
			if in.Op.IsTerminator() && j != len(b.Instrs)-1 {
				return fmt.Errorf(".T%d[%d]: terminator %v not at block end", i, j, in.Op)
			}
		}
	}
	// The last block must not fall off the end of the function.
	last := f.Blocks[len(f.Blocks)-1]
	if t := last.Term(); t == nil || t.Op.IsCondBranch() {
		return fmt.Errorf("last block .T%d falls through past function end", last.Index)
	}
	return nil
}

func verifyInstr(p *Program, f *Func, in *isa.Instr) error {
	checkReg := func(r isa.Reg, want isa.RegClass, what string) error {
		if r.Class != want {
			return fmt.Errorf("%s has class %v, want %v", what, r.Class, want)
		}
		max := f.NextInt
		if want == isa.ClassFloat {
			max = f.NextFloat
		}
		if r.N < 0 || r.N >= max {
			return fmt.Errorf("%s register %v out of range [0,%d)", what, r, max)
		}
		return nil
	}
	checkTarget := func() error {
		if in.Target < 0 || in.Target >= len(f.Blocks) {
			return fmt.Errorf("branch target %d out of range", in.Target)
		}
		return nil
	}

	switch in.Op {
	case isa.NOP, isa.HALT:
		return nil
	case isa.MOVI, isa.LGA:
		if in.Op == isa.LGA && findGlobal(p, in.Sym) == nil {
			return fmt.Errorf("unknown global %q", in.Sym)
		}
		return checkReg(in.Dst, isa.ClassInt, "dst")
	case isa.FMOVI:
		return checkReg(in.Dst, isa.ClassFloat, "dst")
	case isa.MOV, isa.SLT:
		if err := checkReg(in.Dst, isa.ClassInt, "dst"); err != nil {
			return err
		}
		if in.Op == isa.MOV {
			return checkReg(in.A, isa.ClassInt, "src")
		}
		fallthrough
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR, isa.XOR,
		isa.SLL, isa.SRL, isa.SRA:
		if err := checkReg(in.Dst, isa.ClassInt, "dst"); err != nil {
			return err
		}
		if err := checkReg(in.A, isa.ClassInt, "srcA"); err != nil {
			return err
		}
		if !in.UseImm {
			return checkReg(in.B, isa.ClassInt, "srcB")
		}
		return nil
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		if err := checkReg(in.Dst, isa.ClassFloat, "dst"); err != nil {
			return err
		}
		if err := checkReg(in.A, isa.ClassFloat, "srcA"); err != nil {
			return err
		}
		return checkReg(in.B, isa.ClassFloat, "srcB")
	case isa.FMOV, isa.FNEG, isa.FABS:
		if err := checkReg(in.Dst, isa.ClassFloat, "dst"); err != nil {
			return err
		}
		return checkReg(in.A, isa.ClassFloat, "src")
	case isa.CVTIF:
		if err := checkReg(in.Dst, isa.ClassFloat, "dst"); err != nil {
			return err
		}
		return checkReg(in.A, isa.ClassInt, "src")
	case isa.CVTFI:
		if err := checkReg(in.Dst, isa.ClassInt, "dst"); err != nil {
			return err
		}
		return checkReg(in.A, isa.ClassFloat, "src")
	case isa.LD:
		if err := checkReg(in.Dst, isa.ClassInt, "dst"); err != nil {
			return err
		}
		return checkReg(in.A, isa.ClassInt, "base")
	case isa.FLD:
		if err := checkReg(in.Dst, isa.ClassFloat, "dst"); err != nil {
			return err
		}
		return checkReg(in.A, isa.ClassInt, "base")
	case isa.ST:
		if err := checkReg(in.A, isa.ClassInt, "base"); err != nil {
			return err
		}
		return checkReg(in.B, isa.ClassInt, "val")
	case isa.FST:
		if err := checkReg(in.A, isa.ClassInt, "base"); err != nil {
			return err
		}
		return checkReg(in.B, isa.ClassFloat, "val")
	case isa.BR:
		return checkTarget()
	case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE:
		if err := checkReg(in.A, isa.ClassInt, "srcA"); err != nil {
			return err
		}
		if !in.UseImm {
			if err := checkReg(in.B, isa.ClassInt, "srcB"); err != nil {
				return err
			}
		}
		return checkTarget()
	case isa.FBEQ, isa.FBNE, isa.FBLT, isa.FBLE:
		if err := checkReg(in.A, isa.ClassFloat, "srcA"); err != nil {
			return err
		}
		if err := checkReg(in.B, isa.ClassFloat, "srcB"); err != nil {
			return err
		}
		return checkTarget()
	case isa.CALL:
		callee := p.Func(in.Sym)
		if callee == nil {
			return fmt.Errorf("unknown callee %q", in.Sym)
		}
		if len(in.Args) != len(callee.Params) {
			return fmt.Errorf("callee %q takes %d args, got %d", in.Sym, len(callee.Params), len(in.Args))
		}
		for i, a := range in.Args {
			if err := checkReg(a, callee.Params[i].Class, fmt.Sprintf("arg%d", i)); err != nil {
				return err
			}
		}
		if in.Dst.Valid() {
			if err := checkReg(in.Dst, in.Dst.Class, "dst"); err != nil {
				return err
			}
		}
		return nil
	case isa.RET:
		if in.A.Valid() {
			return checkReg(in.A, in.A.Class, "value")
		}
		return nil
	case isa.CONUSE, isa.CONDEF, isa.CONUU, isa.CONDU, isa.CONDD:
		return fmt.Errorf("connect instructions are not valid in IR form (inserted by codegen)")
	}
	return fmt.Errorf("unknown opcode %v", in.Op)
}

func findGlobal(p *Program, name string) *Global {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}
