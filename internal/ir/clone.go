package ir

import "regconn/internal/isa"

// Clone returns a deep copy of the program: functions, blocks,
// instructions (including CALL argument slices), globals with their
// initial data, and the profile weights. The copy shares no mutable state
// with the original, so compiling the clone — which optimizes and
// profiles IR in place — leaves the original untouched. regconn.Build
// clones its input through this, which is what lets one constructed
// program be built under many architectures (and lets the workload
// generator hand out a single program per seed).
func Clone(p *Program) *Program {
	q := NewProgram()
	for _, g := range p.Globals {
		ng := &Global{Name: g.Name, Size: g.Size}
		if g.InitI != nil {
			ng.InitI = append([]int64(nil), g.InitI...)
		}
		if g.InitF != nil {
			ng.InitF = append([]float64(nil), g.InitF...)
		}
		q.Globals = append(q.Globals, ng)
	}
	for _, f := range p.Funcs {
		nf := &Func{
			Name:      f.Name,
			NextInt:   f.NextInt,
			NextFloat: f.NextFloat,
		}
		if f.Params != nil {
			nf.Params = append([]isa.Reg(nil), f.Params...)
		}
		for _, b := range f.Blocks {
			nb := &Block{
				Index:       b.Index,
				Weight:      b.Weight,
				TakenWeight: b.TakenWeight,
				fn:          nf,
			}
			if b.Instrs != nil {
				nb.Instrs = append([]isa.Instr(nil), b.Instrs...)
				for i := range nb.Instrs {
					if nb.Instrs[i].Args != nil {
						nb.Instrs[i].Args = append([]isa.Reg(nil), nb.Instrs[i].Args...)
					}
				}
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
		q.AddFunc(nf)
	}
	return q
}
