package ilp

import (
	"testing"

	"regconn/internal/interp"
	"regconn/internal/ir"
	"regconn/internal/opt"
)

// buildDiamondLoop is a cpp-style dispatch loop: a biased if/else inside
// the body makes it a non-chain loop until trace formation duplicates the
// hot path.
func buildDiamondLoop(n int64) *ir.Program {
	p := ir.NewProgram()
	g := p.AddGlobal("dd", 256*8)
	init := make([]int64, 256)
	for i := range init {
		if i%13 == 0 { // rare path
			init[i] = 1
		}
	}
	g.InitI = init
	b := ir.NewFunc(p, "main", 0, 0)
	base := b.Addr(g, 0)
	s := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	rare := b.NewBlock()
	join := b.NewBlock()
	v := b.Ld(b.Add(base, b.SllI(b.AndI(i, 255), 3)), 0)
	b.BneI(v, 0, rare)
	b.Continue() // common path
	b.MovTo(s, b.AddI(s, 3))
	b.Br(join)
	b.SetBlock(rare)
	b.MovTo(s, b.Mul(s, b.Const(2)))
	b.Br(join)
	b.SetBlock(join)
	b.MovTo(i, b.AddI(i, 1))
	b.Blt(i, b.Const(n), loop)
	b.Continue()
	b.Ret(s)
	return p
}

// prep runs classical optimization and a profiling pass (trace formation
// requires edge profiles).
func prep(t *testing.T, p *ir.Program) {
	t.Helper()
	opt.Classical(p)
	if _, err := interp.Run(p, "main", nil, interp.Options{Profile: true}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceFormationSemantics(t *testing.T) {
	for _, n := range []int64{1, 2, 5, 13, 14, 100, 257, 1000} {
		for _, factor := range []int{2, 4, 8} {
			want := run(t, buildDiamondLoop(n))
			p := buildDiamondLoop(n)
			prep(t, p)
			Transform(p, factor, false)
			if err := ir.Verify(p); err != nil {
				t.Fatalf("n=%d u=%d: %v", n, factor, err)
			}
			if got := run(t, p); got != want {
				t.Errorf("n=%d unroll=%d: got %d, want %d", n, factor, got, want)
			}
		}
	}
}

func TestTraceFormationBuildsAndUnrollsChain(t *testing.T) {
	p := buildDiamondLoop(1000)
	prep(t, p)
	before := p.Func("main").NumInstrs()
	blocksBefore := len(p.Func("main").Blocks)
	Transform(p, 4, false)
	f := p.Func("main")
	if f.NumInstrs() <= before {
		t.Fatalf("no code growth: %d -> %d", before, f.NumInstrs())
	}
	if len(f.Blocks) <= blocksBefore {
		t.Fatalf("no trace chain appended: %d -> %d blocks", blocksBefore, len(f.Blocks))
	}
	// The hot path must now execute mostly in the duplicated chain: the
	// old header should receive only the rare iterations.
	interpProfileAndCheck(t, p)
}

func interpProfileAndCheck(t *testing.T, p *ir.Program) {
	t.Helper()
	interpClear(p)
	if _, err := interp.Run(p, "main", nil, interp.Options{Profile: true}); err != nil {
		t.Fatal(err)
	}
	f := p.Func("main")
	// Find the hottest block; it must not be one of the original loop
	// blocks (index small) but a duplicated/unrolled one appended later.
	hot, hotIdx := 0.0, -1
	for i, b := range f.Blocks {
		if b.Weight > hot {
			hot, hotIdx = b.Weight, i
		}
	}
	if hotIdx < 3 {
		t.Errorf("hottest block is an original block (%d); trace formation ineffective\n%s", hotIdx, f)
	}
}

func interpClear(p *ir.Program) { interp.ClearProfile(p) }

// TestTraceFormationSkipsWithoutProfile ensures nothing happens when no
// weights are available (the likely successor cannot be chosen).
func TestTraceFormationSkipsWithoutProfile(t *testing.T) {
	p := buildDiamondLoop(100)
	opt.Classical(p)
	before := p.Func("main").NumInstrs()
	blocks := len(p.Func("main").Blocks)
	Transform(p, 4, false)
	f := p.Func("main")
	if f.NumInstrs() != before || len(f.Blocks) != blocks {
		t.Errorf("trace formation ran without a profile: %d->%d instrs", before, f.NumInstrs())
	}
}
