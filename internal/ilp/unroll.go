// Package ilp implements the instruction-level-parallelism transformations
// of the paper's prototype compiler (§5.1): superblock-style loop unrolling
// with side exits and register renaming to break false dependences among
// the unrolled temporaries. These transformations are what create the
// increased register pressure the RC method is designed to absorb — without
// them, Figures 8, 10 and 11 have no pressure to show.
package ilp

import (
	"regconn/internal/analysis"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// maxUnrolledBody caps code expansion per loop (IMPACT bounded superblock
// growth the same way).
const maxUnrolledBody = 512

// Transform applies ILP optimization at an aggressiveness matched to the
// target issue rate: innermost *chain loops* — a run of consecutive blocks
// entered only at the top, leaving only through side exits, with a single
// back edge at the bottom (single-block bottom-test loops are the simplest
// case) — are unrolled by `factor` copies, and unrolled temporaries are
// renamed so iterations can overlap in the scheduler. factor <= 1 is a
// no-op.
// Transform's expandAcc enables accumulator variable expansion (see
// accum.go): higher ILP for reduction chains at the price of extra live
// partials — profitable with ample registers, counterproductive under
// pressure, which is why it is an option (and an ablation) rather than a
// default.
func Transform(p *ir.Program, factor int, expandAcc bool) {
	if factor <= 1 {
		return
	}
	for _, f := range p.Funcs {
		transformFunc(f, factor, expandAcc)
	}
}

// UnrollFactorFor returns the unroll factor the compiler uses for a given
// issue rate (more aggressive unrolling for wider machines, as IMPACT's
// code expansion grows with issue width).
func UnrollFactorFor(issue int) int {
	switch {
	case issue >= 8:
		return 8
	case issue >= 4:
		return 4
	case issue >= 2:
		return 2
	default:
		return 1
	}
}

func transformFunc(f *ir.Func, factor int, expandAcc bool) {
	// Unrolling restructures the CFG, so re-analyze after each loop. An
	// unrolled loop is itself a chain loop again, so headers are marked
	// done by block identity (stable across index shifts).
	done := map[*ir.Block]bool{}
	for rounds := 0; rounds < 64; rounds++ {
		cfg := analysis.BuildCFG(f)
		idom := cfg.Dominators()
		loops := cfg.NaturalLoops(idom)
		lv := analysis.ComputeLiveness(f, cfg)
		progress := false
		for _, l := range loops {
			if !analysis.Innermost(l, loops) || done[f.Blocks[l.Header]] {
				continue
			}
			if hdr := unrollChainLoop(f, cfg, lv, l, factor, expandAcc); hdr != nil {
				done[hdr] = true
				progress = true
				break
			}
		}
		if !progress {
			// No chain loop left to unroll: form a superblock trace from
			// a branchy innermost loop (profile required); the new chain
			// unrolls on the next round.
			for _, l := range loops {
				if !analysis.Innermost(l, loops) || done[f.Blocks[l.Header]] {
					continue
				}
				if hdr := formTrace(f, cfg, l, factor); hdr != nil {
					progress = true
					break
				}
				done[f.Blocks[l.Header]] = true // unsuitable: don't retry
			}
		}
		if !progress {
			return
		}
	}
}

// chainOf finds the loop's *chain prefix*: the longest run of consecutive
// blocks [header, header+count) such that interior blocks are entered only
// by fallthrough from their predecessor, mid-chain conditional branches
// leave the chain (side exits — possibly into the loop's cold remainder),
// and the last block ends with a back edge to the header. Additional
// latches outside the chain (the cold path re-entering the header) are
// allowed; the unrolled header keeps its index, so they stay correct.
func chainOf(f *ir.Func, cfg *analysis.CFG, l *analysis.Loop) (count int, ok bool) {
	h := l.Header
	// Find the chain's end: the first consecutive loop block whose final
	// instruction is a back edge to the header.
	count = -1
	for i := 0; h+i < len(f.Blocks) && l.Blocks.Has(h+i); i++ {
		if i > 0 {
			preds := cfg.Preds[h+i]
			if len(preds) != 1 || preds[0] != h+i-1 {
				return 0, false
			}
			// The single edge must be the fallthrough (an unconditional
			// BR in the predecessor would make this block unreachable).
			if t := f.Blocks[h+i-1].Term(); t != nil && !t.Op.IsCondBranch() {
				return 0, false
			}
		}
		blk := f.Blocks[h+i]
		if n := len(blk.Instrs); n > 0 {
			last := &blk.Instrs[n-1]
			if (last.Op == isa.BR || last.Op.IsCondBranch()) && last.Target == h {
				count = i + 1
				break
			}
		}
	}
	if count <= 0 {
		return 0, false
	}
	// Branch discipline: every branch except the final back edge must be
	// a conditional side exit leaving the chain.
	for i := 0; i < count; i++ {
		blk := f.Blocks[h+i]
		for j := range blk.Instrs {
			in := &blk.Instrs[j]
			if !(in.Op == isa.BR || in.Op.IsCondBranch()) {
				continue
			}
			if i == count-1 && j == len(blk.Instrs)-1 {
				continue // the back edge
			}
			if in.Op == isa.BR {
				return 0, false
			}
			if in.Target >= h && in.Target < h+count {
				return 0, false
			}
		}
	}
	return count, true
}

// unrollChainLoop unrolls a chain loop by `factor` copies. With a
// conditional back edge, intermediate copies end in the inverted test (a
// side exit to the loop's fallthrough successor); with an unconditional
// back edge the copies concatenate directly (the mid-chain side exits are
// the only way out). Returns the new header block, or nil if the loop did
// not match.
func unrollChainLoop(f *ir.Func, cfg *analysis.CFG, lv *analysis.Liveness, l *analysis.Loop, factor int, expandAcc bool) *ir.Block {
	h := l.Header
	count, ok := chainOf(f, cfg, l)
	if !ok {
		return nil
	}

	// Flatten the body: all chain instructions except the back edge.
	var body []isa.Instr
	for i := 0; i < count; i++ {
		body = append(body, f.Blocks[h+i].Instrs...)
	}
	backBranch := body[len(body)-1]
	body = body[:len(body)-1]
	if len(body)*factor > maxUnrolledBody {
		return nil
	}

	condBack := backBranch.Op.IsCondBranch()

	// Profile gate: unrolling a loop that usually runs one or two
	// iterations (hash-probe hits, early-out scans) only pays the side
	// exits' code-expansion cost. When trip-count profile data is
	// available, skip loops averaging fewer than three iterations per
	// entry — the same use IMPACT made of its profiler.
	if hdrW := f.Blocks[h].Weight; hdrW > 0 {
		latch := f.Blocks[h+count-1]
		back := latch.Weight
		if condBack {
			back = latch.TakenWeight
		}
		if entries := hdrW - back; entries > 0 && hdrW/entries < 3 {
			return nil
		}
	}
	var inv isa.Instr
	if condBack {
		var ok bool
		inv, ok = invertBranch(backBranch)
		if !ok {
			return nil
		}
	}
	fallExit := h + count // the loop's fallthrough successor (old index)
	if condBack && fallExit >= len(f.Blocks) {
		return nil
	}

	// Pinned registers keep their names in every copy: anything live into
	// the header (loop-carried) or observable at any exit.
	ids := lv.IDs
	pinned := lv.LiveIn[h].Clone()
	liveAtExits := analysis.NewBitSet(ids.Total)
	addExit := func(target int) {
		pinned.UnionWith(lv.LiveIn[target])
		liveAtExits.UnionWith(lv.LiveIn[target])
	}
	for j := range body {
		if body[j].Op.IsCondBranch() {
			addExit(body[j].Target)
		}
	}
	if condBack {
		addExit(fallExit)
	}

	bw := newBumpRewriter(body, &backBranch, pinned, liveAtExits, ids, factor)
	fullChain := l.Blocks.Count() == count
	ex := newExpander(f, body, &backBranch, pinned, ids, factor, expandAcc && fullChain)

	// Emit the copies, splitting into fresh blocks at every branch so the
	// IR invariant (terminators only at block ends) holds. The copies
	// lower to contiguous label-free machine code — one superblock region
	// for the scheduler.
	var newBlocks []*ir.Block
	cur := f.MakeBlock()
	newBlocks = []*ir.Block{cur}
	cut := func() {
		cur = f.MakeBlock()
		newBlocks = append(newBlocks, cur)
	}

	rename := map[isa.Reg]isa.Reg{}
	for k := 0; k < factor; k++ {
		for j := range body {
			in := body[j] // copy
			// Induction pointers: fold this copy's delta into memory
			// displacements; the pair is re-emitted combined at the end.
			if !bw.rewrite(&in, j, k) {
				continue
			}
			// Accumulators: copy k reduces into its own partial.
			ex.rewrite(&in, j, k)
			remap := func(r *isa.Reg) {
				if nr, ok := rename[*r]; ok {
					*r = nr
				}
			}
			remap(&in.A)
			if !in.UseImm {
				remap(&in.B)
			}
			if len(in.Args) > 0 {
				// The shallow instruction copy shares the Args slice
				// with the template body; clone before remapping.
				in.Args = append([]isa.Reg(nil), in.Args...)
				for a := range in.Args {
					remap(&in.Args[a])
				}
			}
			if d := in.Def(); d.Valid() && inIDRange(ids, d) {
				if !pinned.Has(ids.ID(d)) {
					var nd isa.Reg
					if d.Class == isa.ClassFloat {
						nd = f.NewFloat()
					} else {
						nd = f.NewInt()
					}
					rename[d] = nd
					in.Dst = nd
				} else {
					delete(rename, d)
				}
			}
			isBranch := in.Op == isa.BR || in.Op.IsCondBranch()
			cur.Instrs = append(cur.Instrs, in)
			if isBranch {
				cut()
			}
		}
		switch {
		case k < factor-1 && condBack:
			// Intermediate test: leave when the loop condition fails.
			side := inv
			remapBranch(&side, rename)
			side.Target = fallExit
			cur.Instrs = append(cur.Instrs, side)
			cut()
		case k == factor-1:
			cur.Instrs = append(cur.Instrs, bw.combined(f)...)
			back := backBranch
			remapBranch(&back, rename)
			back.Target = h
			cur.Instrs = append(cur.Instrs, back)
		}
	}

	// Accumulator expansion adds a preheader (zeroing the partials) ahead
	// of the copies and one merge block per exit target behind them; the
	// final conditional back edge falls through into the fallExit merge.
	copyStart := 0
	numCopyBlocks := len(newBlocks)
	var exitTargets []int
	if ex.active() {
		pre := f.MakeBlock()
		pre.Instrs = ex.preheader()
		newBlocks = append([]*ir.Block{pre}, newBlocks...)
		copyStart = 1
		seen := map[int]bool{}
		addT := func(t int) {
			if !seen[t] {
				seen[t] = true
				exitTargets = append(exitTargets, t)
			}
		}
		if condBack {
			addT(fallExit) // must be first: entered by fallthrough
		}
		for j := range body {
			if body[j].Op.IsCondBranch() {
				addT(body[j].Target)
			}
		}
		for _, tgt := range exitTargets {
			mb := f.MakeBlock()
			mb.Instrs = append(ex.mergeInstrs(f), isa.Instr{Op: isa.BR, Target: tgt})
			newBlocks = append(newBlocks, mb)
		}
	}

	// Splice the new blocks over the old chain and remap every branch
	// target from the old index space: targets below the loop are
	// unchanged, targets at/after its old end shift by the growth, the
	// back edge target h maps to itself (the first new block).
	grow := len(newBlocks) - count
	blocks := make([]*ir.Block, 0, len(f.Blocks)+grow)
	blocks = append(blocks, f.Blocks[:h]...)
	blocks = append(blocks, newBlocks...)
	blocks = append(blocks, f.Blocks[h+count:]...)
	f.Blocks = blocks
	f.Renumber()
	for _, bb := range f.Blocks {
		for j := range bb.Instrs {
			in := &bb.Instrs[j]
			if (in.Op == isa.BR || in.Op.IsCondBranch()) && in.Target >= h+count {
				in.Target += grow
			}
		}
	}
	if ex.active() {
		// Route the copies' exits through the merge blocks and the back
		// edge past the preheader (entries from outside still reach the
		// preheader at h and restart the partials).
		mergeIdx := map[int]int{} // shifted exit target -> merge block index
		mergeBase := h + copyStart + numCopyBlocks
		for mi, tgt := range exitTargets {
			if tgt >= h+count {
				tgt += grow
			}
			mergeIdx[tgt] = mergeBase + mi
		}
		for bi := h + copyStart; bi < mergeBase; bi++ {
			for j := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[j]
				if !(in.Op == isa.BR || in.Op.IsCondBranch()) {
					continue
				}
				if in.Target == h {
					in.Target = h + copyStart // back edge skips the preheader
				} else if gi, ok := mergeIdx[in.Target]; ok {
					in.Target = gi
				}
			}
		}
	}
	// New blocks' side exits were emitted in old indexing too and were
	// remapped by the pass above (their targets are outside [h, h+count)).
	return newBlocks[copyStart]
}

// inIDRange reports whether r existed when the liveness pass numbered the
// registers (registers created during unrolling are outside the pinned
// set's universe).
func inIDRange(ids *analysis.RegIDs, r isa.Reg) bool {
	if r.Class == isa.ClassFloat {
		return r.N < ids.Total-ids.NumInt
	}
	return r.N < ids.NumInt
}

func remapBranch(in *isa.Instr, rename map[isa.Reg]isa.Reg) {
	if nr, ok := rename[in.A]; ok {
		in.A = nr
	}
	if !in.UseImm {
		if nr, ok := rename[in.B]; ok {
			in.B = nr
		}
	}
}

// invertBranch returns a branch with the opposite condition and the same
// operands (FP inverses swap operands: !(a<b) == (b<=a)).
func invertBranch(in isa.Instr) (isa.Instr, bool) {
	switch in.Op {
	case isa.BEQ:
		in.Op = isa.BNE
	case isa.BNE:
		in.Op = isa.BEQ
	case isa.BLT:
		in.Op = isa.BGE
	case isa.BGE:
		in.Op = isa.BLT
	case isa.BLE:
		in.Op = isa.BGT
	case isa.BGT:
		in.Op = isa.BLE
	case isa.FBEQ:
		in.Op = isa.FBNE
	case isa.FBNE:
		in.Op = isa.FBEQ
	case isa.FBLT:
		in.Op = isa.FBLE
		in.A, in.B = in.B, in.A
	case isa.FBLE:
		in.Op = isa.FBLT
		in.A, in.B = in.B, in.A
	default:
		return in, false
	}
	return in, true
}
