package ilp

import (
	"testing"

	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/opt"
)

// buildReduction sums f(i) over a counted loop: the canonical accumulator.
func buildReduction(n int64, fp bool) *ir.Program {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "main", 0, 0)
	i := b.Const(0)
	if fp {
		acc := b.FConst(0)
		x := b.FConst(0.25)
		loop := b.NewBlock()
		b.Br(loop)
		b.SetBlock(loop)
		b.MovTo(acc, b.FAdd(acc, x))
		b.MovTo(x, b.FAdd(x, b.FConst(0.25)))
		b.MovTo(i, b.AddI(i, 1))
		b.Blt(i, b.Const(n), loop)
		b.Continue()
		b.Ret(b.FToI(b.FMul(acc, b.FConst(4))))
		return p
	}
	acc := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	b.MovTo(acc, b.Add(acc, b.Mul(i, i)))
	b.MovTo(i, b.AddI(i, 1))
	b.Blt(i, b.Const(n), loop)
	b.Continue()
	b.Ret(acc)
	return p
}

func TestAccumExpansionSemantics(t *testing.T) {
	for _, fp := range []bool{false, true} {
		// FP values are dyadic rationals, so reassociation stays exact.
		for _, n := range []int64{1, 2, 3, 4, 5, 7, 8, 9, 31, 32, 33, 100} {
			for _, factor := range []int{2, 4, 8} {
				want := run(t, buildReduction(n, fp))
				p := buildReduction(n, fp)
				opt.Classical(p)
				Transform(p, factor, true)
				if err := ir.Verify(p); err != nil {
					t.Fatalf("fp=%v n=%d u=%d: %v", fp, n, factor, err)
				}
				if got := run(t, p); got != want {
					t.Errorf("fp=%v n=%d unroll=%d: got %d, want %d", fp, n, factor, got, want)
				}
			}
		}
	}
}

// TestAccumExpansionBreaksChain verifies the structural effect: with
// expansion, the unrolled body carries `factor` distinct accumulator
// registers instead of one.
func TestAccumExpansionBreaksChain(t *testing.T) {
	count := func(expand bool) int {
		p := buildReduction(64, true)
		opt.Classical(p)
		Transform(p, 4, expand)
		// Count distinct FMOV destinations (accumulator write-backs).
		dsts := map[isa.Reg]bool{}
		for _, b := range p.Func("main").Blocks {
			for j := range b.Instrs {
				if b.Instrs[j].Op == isa.FMOV {
					dsts[b.Instrs[j].Dst] = true
				}
			}
		}
		return len(dsts)
	}
	off := count(false)
	on := count(true)
	if on <= off {
		t.Errorf("expansion did not split the accumulator: %d -> %d distinct write-backs", off, on)
	}
}

// TestAccumExpansionWithSideExitMerges exercises merge blocks on a chain
// loop whose side exit fires mid-stream.
func TestAccumExpansionWithSideExitMerges(t *testing.T) {
	build := func(stop int64) *ir.Program {
		p := ir.NewProgram()
		g := p.AddGlobal("a", 256*8)
		init := make([]int64, 256)
		for i := range init {
			init[i] = int64(i)
		}
		g.InitI = init
		b := ir.NewFunc(p, "main", 0, 0)
		ptr := b.Addr(g, 0)
		acc := b.Const(0)
		i := b.Const(0)
		loop := b.NewBlock()
		b.Br(loop)
		b.SetBlock(loop)
		out := b.NewBlock()
		v := b.Ld(ptr, 0)
		b.Bgt(v, b.Const(stop), out) // side exit: accumulator must merge
		b.Continue()
		b.MovTo(acc, b.Add(acc, v))
		b.MovTo(ptr, b.AddI(ptr, 8))
		b.MovTo(i, b.AddI(i, 1))
		b.BltI(i, 200, loop)
		b.Continue()
		b.Ret(acc)
		b.SetBlock(out)
		b.Ret(b.Sub(acc, i))
		return p
	}
	for _, stop := range []int64{0, 1, 5, 38, 39, 40, 41, 199, 500} {
		want := run(t, build(stop))
		for _, factor := range []int{2, 4, 8} {
			p := build(stop)
			opt.Classical(p)
			Transform(p, factor, true)
			if got := run(t, p); got != want {
				t.Errorf("stop=%d unroll=%d: got %d, want %d", stop, factor, got, want)
			}
		}
	}
}
