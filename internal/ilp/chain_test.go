package ilp

import (
	"testing"

	"regconn/internal/interp"
	"regconn/internal/ir"
	"regconn/internal/opt"
)

// buildScan is a cmp-style chain loop with an unconditional back edge and
// two side exits: scan words until a mismatch or the end.
func buildScan(n int64, poison int64) *ir.Program {
	p := ir.NewProgram()
	g := p.AddGlobal("buf", 512*8)
	init := make([]int64, 512)
	for i := range init {
		init[i] = 7
	}
	if poison >= 0 {
		init[poison] = 99
	}
	g.InitI = init
	b := ir.NewFunc(p, "main", 0, 0)
	ptr := b.Addr(g, 0)
	i := b.Const(0)
	test := b.NewBlock()
	b.Br(test)
	b.SetBlock(test)
	out := b.NewBlock()
	diff := b.NewBlock()
	b.Bge(i, b.Const(n), out)
	b.Continue()
	v := b.Ld(ptr, 0)
	b.BneI(v, 7, diff)
	b.Continue()
	b.MovTo(ptr, b.AddI(ptr, 8))
	b.MovTo(i, b.AddI(i, 1))
	b.Br(test)
	b.SetBlock(out)
	b.Ret(b.AddI(i, 1000))
	b.SetBlock(diff)
	b.Ret(i)
	return p
}

func TestChainLoopUnrollSemantics(t *testing.T) {
	cases := []struct{ n, poison int64 }{
		{0, -1}, {1, -1}, {3, -1}, {4, -1}, {5, -1}, {16, -1}, {100, -1},
		{100, 0}, {100, 1}, {100, 3}, {100, 4}, {100, 7}, {100, 50}, {100, 99},
	}
	for _, c := range cases {
		for _, factor := range []int{2, 4, 8} {
			want := run(t, buildScan(c.n, c.poison))
			p := buildScan(c.n, c.poison)
			opt.Classical(p)
			Transform(p, factor, false)
			if err := ir.Verify(p); err != nil {
				t.Fatalf("n=%d poison=%d u=%d: %v", c.n, c.poison, factor, err)
			}
			if got := run(t, p); got != want {
				t.Errorf("n=%d poison=%d unroll=%d: got %d, want %d",
					c.n, c.poison, factor, got, want)
			}
		}
	}
}

func TestChainLoopUnrollExpands(t *testing.T) {
	p := buildScan(100, -1)
	opt.Classical(p)
	before := p.Func("main").NumInstrs()
	Transform(p, 4, false)
	after := p.Func("main").NumInstrs()
	if after < before*2 {
		t.Errorf("chain loop not unrolled: %d -> %d\n%s", before, after, p.Func("main"))
	}
}

// buildCallChain is an eqn-style chain loop containing a call — the
// regression case for the shared-Args-slice aliasing bug: copy k's call
// must use copy k's renamed arguments, not copy 1's.
func buildCallChain() *ir.Program {
	p := ir.NewProgram()
	g := p.AddGlobal("vals", 64*8)
	init := make([]int64, 64)
	for i := range init {
		init[i] = int64(i * 5)
	}
	g.InitI = init
	tw := ir.NewFunc(p, "twice", 1, 0)
	tw.Ret(tw.MulI(tw.Param(0), 2))

	b := ir.NewFunc(p, "main", 0, 0)
	ptr := b.Addr(g, 0)
	s := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	out := b.NewBlock()
	v := b.Ld(ptr, 0)
	b.BgtI(v, 250, out) // side exit mid-body
	b.Continue()
	d := b.Call("twice", v) // call with a renamed argument
	b.MovTo(s, b.Add(s, d))
	b.MovTo(ptr, b.AddI(ptr, 8))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, 64, loop)
	b.Continue()
	b.Ret(s)
	b.SetBlock(out)
	b.Ret(b.Sub(s, i))
	return p
}

func TestChainLoopWithCallRenamesArgs(t *testing.T) {
	want := run(t, buildCallChain())
	for _, factor := range []int{2, 4, 8} {
		p := buildCallChain()
		opt.Classical(p)
		Transform(p, factor, false)
		if got := run(t, p); got != want {
			t.Errorf("unroll=%d: got %d, want %d (call args aliased?)", factor, got, want)
		}
	}
}

// TestProfileGateSkipsLowTripLoops checks that a loop averaging ~1
// iteration per entry is left alone when profile data is present.
func TestProfileGateSkipsLowTripLoops(t *testing.T) {
	// Outer loop runs 100 times; inner loop runs 1 iteration per entry.
	build := func() *ir.Program {
		p := ir.NewProgram()
		b := ir.NewFunc(p, "main", 0, 0)
		s := b.Const(0)
		i := b.Const(0)
		outer := b.NewBlock()
		b.Br(outer)
		b.SetBlock(outer)
		j := b.Const(0)
		inner := b.NewBlock()
		b.Br(inner)
		b.SetBlock(inner)
		b.MovTo(s, b.Add(s, j))
		b.MovTo(j, b.AddI(j, 1))
		b.BltI(j, 1, inner) // single-trip inner loop
		b.Continue()
		b.MovTo(i, b.AddI(i, 1))
		b.BltI(i, 100, outer)
		b.Continue()
		b.Ret(s)
		return p
	}
	p := build()
	opt.Classical(p)
	if _, err := interp.Run(p, "main", nil, interp.Options{Profile: true}); err != nil {
		t.Fatal(err)
	}
	before := p.Func("main").NumInstrs()
	Transform(p, 8, false)
	after := p.Func("main").NumInstrs()
	// The single-trip inner loop must be skipped; the outer loop (100
	// trips) may legitimately unroll, but it is not a chain loop here
	// (contains the inner loop), so nothing should change at all.
	if after != before {
		t.Errorf("low-trip loop unrolled: %d -> %d\n%s", before, after, p.Func("main"))
	}
}
