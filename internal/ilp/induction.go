package ilp

import (
	"regconn/internal/analysis"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// Induction-pointer rewriting. A pointer that is bumped by a constant each
// iteration (p = p + c) and used only as a memory base serializes the
// unrolled copies through its bump chain. When such a pointer is found,
// the unroller folds per-copy deltas into the memory displacement fields
// and emits a single combined bump (p += c*factor) at the bottom of the
// unrolled body, leaving the copies' memory accesses independent — the
// address-code restructuring IMPACT's loop unrolling performed.
//
// A pointer qualifies when:
//   - its only definition in the body is the pair "t = ADD p, #c" followed
//     by "MOV p, t" (what the builder's MovTo(p, AddI(p, c)) produces),
//   - the bump temporary t has no other use,
//   - every other use of p is as the base register of a load or store, and
//   - p is not live at the loop's side exits (the combined bump happens
//     only at the bottom, so mid-body exits would observe a stale p).
type bumpInfo struct {
	p      isa.Reg
	t      isa.Reg
	c      int64
	addIdx int
	movIdx int
}

// findBumps analyzes a single-block loop body (terminator excluded) and
// returns the qualifying induction pointers.
func findBumps(body []isa.Instr, term *isa.Instr, pinned analysis.BitSet, liveAtExit analysis.BitSet, ids *analysis.RegIDs) []bumpInfo {
	// Candidate pairs: ADD t,p,#c ... MOV p,t.
	var out []bumpInfo
	for mi := range body {
		mov := &body[mi]
		if mov.Op != isa.MOV || mov.Dst.Class != isa.ClassInt {
			continue
		}
		p, t := mov.Dst, mov.A
		if p.N >= ids.NumInt || !pinned.Has(ids.ID(p)) {
			continue
		}
		if liveAtExit.Has(ids.ID(p)) {
			continue
		}
		// Find t's definition: must be ADD t, p, #c before the MOV.
		ai := -1
		for j := 0; j < mi; j++ {
			in := &body[j]
			if d := in.Def(); d.Valid() && d == t {
				if in.Op == isa.ADD && in.UseImm && in.A == p {
					ai = j
				} else {
					ai = -2
				}
			}
		}
		if ai < 0 {
			continue
		}
		if !validateBump(body, term, p, t, ai, mi) {
			continue
		}
		out = append(out, bumpInfo{p: p, t: t, c: body[ai].Imm, addIdx: ai, movIdx: mi})
	}
	return out
}

// validateBump checks the use constraints for p and t.
func validateBump(body []isa.Instr, term *isa.Instr, p, t isa.Reg, addIdx, movIdx int) bool {
	var buf [4]isa.Reg
	usesOK := func(j int, in *isa.Instr) bool {
		for _, u := range in.Uses(buf[:0]) {
			switch u {
			case p:
				switch {
				case j == addIdx: // the bump itself
				case in.Op.IsMem() && in.A == p && in.B != p:
					// base register use: displacement is foldable
				default:
					return false
				}
			case t:
				if j != movIdx {
					return false
				}
			}
		}
		return true
	}
	for j := range body {
		in := &body[j]
		// No other definitions of p or t.
		if d := in.Def(); d.Valid() && (d == p || d == t) {
			if !(j == addIdx || j == movIdx) {
				return false
			}
		}
		if !usesOK(j, in) {
			return false
		}
	}
	return usesOK(-1, term)
}

// bumpRewriter adjusts instruction copies during unrolling.
type bumpRewriter struct {
	bumps  []bumpInfo
	factor int
}

func newBumpRewriter(body []isa.Instr, term *isa.Instr, pinned, liveAtExit analysis.BitSet, ids *analysis.RegIDs, factor int) *bumpRewriter {
	return &bumpRewriter{bumps: findBumps(body, term, pinned, liveAtExit, ids), factor: factor}
}

// info returns the bump description for body index j, if j is part of a
// bump pair.
func (bw *bumpRewriter) pairAt(j int) (bumpInfo, bool) {
	for _, b := range bw.bumps {
		if j == b.addIdx || j == b.movIdx {
			return b, true
		}
	}
	return bumpInfo{}, false
}

// rewrite adjusts one copied instruction for copy k: memory accesses based
// on a bump pointer get the copy's delta folded into their displacement;
// the bump pair itself is dropped (the combined bump is emitted at the
// bottom). It reports whether the instruction should be emitted.
func (bw *bumpRewriter) rewrite(in *isa.Instr, j, k int) bool {
	if _, isPair := bw.pairAt(j); isPair {
		return false
	}
	if in.Op.IsMem() {
		for _, b := range bw.bumps {
			if in.A == b.p {
				delta := b.c * int64(k)
				if j > b.movIdx {
					delta += b.c
				}
				in.Imm += delta
			}
		}
	}
	return true
}

// combined returns the combined bump instructions to append at the bottom
// of the unrolled body (before the back-edge branch).
func (bw *bumpRewriter) combined(f *ir.Func) []isa.Instr {
	var out []isa.Instr
	for _, b := range bw.bumps {
		t := f.NewInt()
		out = append(out,
			isa.Instr{Op: isa.ADD, Dst: t, A: b.p, Imm: b.c * int64(bw.factor), UseImm: true},
			isa.Instr{Op: isa.MOV, Dst: b.p, A: t},
		)
	}
	return out
}
