package ilp

import (
	"testing"

	"regconn/internal/interp"
	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/opt"
)

// buildCounted returns sum-of-i*i over [0,n) as a canonical single-block
// bottom-test loop, plus the builder.
func buildCounted(n int64) *ir.Program {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "main", 0, 0)
	s := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	b.MovTo(s, b.Add(s, b.Mul(i, i)))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, n, loop)
	b.Continue()
	b.Ret(s)
	return p
}

func run(t *testing.T, p *ir.Program) int64 {
	t.Helper()
	if err := ir.Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	res, err := interp.Run(p, "main", nil, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Ret
}

func TestUnrollPreservesSemantics(t *testing.T) {
	// Trip counts around the unroll factor boundaries matter most.
	for _, n := range []int64{1, 2, 3, 4, 5, 7, 8, 9, 16, 100, 101, 102, 103} {
		for _, factor := range []int{2, 4, 8} {
			p := buildCounted(n)
			want := run(t, p)
			p2 := buildCounted(n)
			opt.Classical(p2)
			Transform(p2, factor, false)
			if err := ir.Verify(p2); err != nil {
				t.Fatalf("n=%d u=%d verify: %v", n, factor, err)
			}
			if got := run(t, p2); got != want {
				t.Errorf("n=%d unroll=%d: got %d, want %d", n, factor, got, want)
			}
		}
	}
}

func TestUnrollCreatesSideExits(t *testing.T) {
	p := buildCounted(100)
	opt.Classical(p)
	before := p.Func("main").NumInstrs()
	Transform(p, 4, false)
	f := p.Func("main")
	if f.NumInstrs() <= before*2 {
		t.Errorf("unroll did not expand code: %d -> %d", before, f.NumInstrs())
	}
	// Count conditional branches: 3 side exits + 1 back edge.
	branches := 0
	for _, b := range f.Blocks {
		for j := range b.Instrs {
			if b.Instrs[j].Op.IsCondBranch() {
				branches++
			}
		}
	}
	if branches != 4 {
		t.Errorf("cond branches = %d, want 4 (3 side exits + back edge)\n%s", branches, f)
	}
}

func TestUnrollRenamesTemporaries(t *testing.T) {
	p := buildCounted(64)
	opt.Classical(p)
	before := p.Func("main").NextInt
	Transform(p, 4, false)
	after := p.Func("main").NextInt
	if after <= before {
		t.Errorf("renaming created no fresh registers: %d -> %d", before, after)
	}
}

func TestUnrollSkipsMultiBlockLoops(t *testing.T) {
	// A loop with an if inside is not a single-block loop.
	p := ir.NewProgram()
	b := ir.NewFunc(p, "main", 0, 0)
	s := b.Const(0)
	i := b.Const(0)
	head := b.NewBlock()
	b.Br(head)
	b.SetBlock(head)
	odd := b.NewBlock()
	latch := b.NewBlock()
	b.CondBrI(isa.BNE, b.AndI(i, 1), 0, odd)
	b.Continue()
	b.MovTo(s, b.Add(s, i))
	b.Br(latch)
	b.SetBlock(odd)
	b.MovTo(s, b.Sub(s, i))
	b.Br(latch)
	b.SetBlock(latch)
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, 50, head)
	b.Continue()
	b.Ret(s)

	want := run(t, p)
	nblocks := len(p.Func("main").Blocks)
	Transform(p, 4, false)
	if len(p.Func("main").Blocks) != nblocks {
		t.Error("multi-block loop should not be unrolled")
	}
	if got := run(t, p); got != want {
		t.Errorf("semantics changed: %d vs %d", got, want)
	}
}

func TestUnrollFactorFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 4: 4, 8: 8, 16: 8}
	for issue, want := range cases {
		if got := UnrollFactorFor(issue); got != want {
			t.Errorf("UnrollFactorFor(%d) = %d, want %d", issue, got, want)
		}
	}
}

func TestInvertBranch(t *testing.T) {
	cases := []struct{ in, want isa.Op }{
		{isa.BEQ, isa.BNE}, {isa.BNE, isa.BEQ},
		{isa.BLT, isa.BGE}, {isa.BGE, isa.BLT},
		{isa.BLE, isa.BGT}, {isa.BGT, isa.BLE},
		{isa.FBEQ, isa.FBNE}, {isa.FBNE, isa.FBEQ},
	}
	for _, c := range cases {
		out, ok := invertBranch(isa.Instr{Op: c.in})
		if !ok || out.Op != c.want {
			t.Errorf("invert(%v) = %v", c.in, out.Op)
		}
	}
	// FP inequalities swap operands.
	in := isa.Instr{Op: isa.FBLT, A: isa.FloatReg(1), B: isa.FloatReg(2)}
	out, ok := invertBranch(in)
	if !ok || out.Op != isa.FBLE || out.A != in.B || out.B != in.A {
		t.Errorf("invert(fblt a,b) = %v %v %v", out.Op, out.A, out.B)
	}
	if _, ok := invertBranch(isa.Instr{Op: isa.BR}); ok {
		t.Error("BR must not invert")
	}
}

// TestUnrollFPLoop checks the FP side-exit inversion end to end.
func TestUnrollFPLoop(t *testing.T) {
	build := func() *ir.Program {
		p := ir.NewProgram()
		b := ir.NewFunc(p, "main", 0, 0)
		acc := b.FConst(0)
		x := b.FConst(0)
		lim := b.FConst(37.5)
		loop := b.NewBlock()
		b.Br(loop)
		b.SetBlock(loop)
		b.MovTo(acc, b.FAdd(acc, x))
		b.MovTo(x, b.FAdd(x, b.FConst(0.5)))
		b.FBlt(x, lim, loop)
		b.Continue()
		b.Ret(b.FToI(acc))
		return p
	}
	p := build()
	want := run(t, p)
	p2 := build()
	opt.Classical(p2)
	Transform(p2, 4, false)
	if got := run(t, p2); got != want {
		t.Errorf("FP unroll changed semantics: %d vs %d", got, want)
	}
}
