package ilp

import (
	"regconn/internal/analysis"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// Superblock formation via trace duplication (the technique of the
// paper's reference [5], "The Superblock"). An innermost loop whose body
// branches internally — a hash-probe hit/miss diamond, a shift/reduce
// dispatch — is not a chain, so the unroller cannot touch it. Using the
// profile, we select the likely trace through the loop and emit a fresh
// copy of it as a chain appended to the function:
//
//   - each trace block's conditional branch is oriented so the likely
//     path falls through inside the chain and the unlikely path side-exits
//     into the ORIGINAL loop body (now the cold path);
//   - the chain ends with a back edge to its own head;
//   - entries into the old header and the cold path's back edges are
//     redirected to the chain head, so every iteration restarts hot.
//
// Appending never shifts existing block indices, so no target remapping is
// needed beyond the explicit redirections. The resulting chain satisfies
// chainOf and is unrolled by the normal path on a later round.

// maxTraceBlocks bounds trace length (IMPACT bounded superblock size).
const maxTraceBlocks = 8

// likelySucc returns the profile-likely successor of block bi within f,
// and whether the edge is the block's taken edge.
func likelySucc(f *ir.Func, bi int) (succ int, viaTaken bool, ok bool) {
	b := f.Blocks[bi]
	t := b.Term()
	switch {
	case t == nil:
		if bi+1 < len(f.Blocks) {
			return bi + 1, false, true
		}
		return 0, false, false
	case t.Op == isa.BR:
		return t.Target, true, true
	case t.Op.IsCondBranch():
		if b.Weight <= 0 {
			return 0, false, false // no profile: cannot choose
		}
		if b.TakenWeight*2 >= b.Weight {
			return t.Target, true, true
		}
		return bi + 1, false, true
	default: // RET/HALT
		return 0, false, false
	}
}

// selectTrace picks the likely path through the loop starting at its
// header, succeeding only if the trace closes back to the header.
func selectTrace(f *ir.Func, l *analysis.Loop) []int {
	trace := []int{l.Header}
	seen := map[int]bool{l.Header: true}
	cur := l.Header
	for len(trace) <= maxTraceBlocks {
		next, _, ok := likelySucc(f, cur)
		if !ok || !l.Blocks.Has(next) {
			return nil // trace leaves the loop: not a cyclic trace
		}
		if next == l.Header {
			return trace // closed
		}
		if seen[next] {
			return nil // internal cycle that is not the back edge
		}
		seen[next] = true
		trace = append(trace, next)
		cur = next
	}
	return nil
}

// formTrace duplicates the loop's likely trace into a chain at the end of
// the function. It returns the chain's head block, or nil if the loop is
// unsuitable.
func formTrace(f *ir.Func, cfg *analysis.CFG, l *analysis.Loop, factor int) *ir.Block {
	// Already a chain? Leave it to the unroller.
	if _, ok := chainOf(f, cfg, l); ok {
		return nil
	}
	trace := selectTrace(f, l)
	if len(trace) < 1 {
		return nil
	}
	// Size gate (the chain will later be unrolled by `factor`).
	total := 0
	for _, bi := range trace {
		total += len(f.Blocks[bi].Instrs)
	}
	if total*factor > maxUnrolledBody {
		return nil
	}
	h := l.Header
	// Entries into the header must be redirectable: explicit branches are
	// retargeted; a fallthrough entry needs its predecessor to accept an
	// appended BR (i.e. to have no terminator).
	for _, p := range cfg.Preds[h] {
		if t := f.Blocks[p].Term(); t != nil && t.Op.IsCondBranch() && p+1 == h {
			// Conditional fallthrough into the header: retargeting would
			// require a trampoline that shifts indices. Bail out.
			return nil
		}
	}

	head := len(f.Blocks) // index of the chain's first block
	var chain []*ir.Block
	backEdgeBlock := false // latch needs a separate BR block
	for pos, bi := range trace {
		src := f.Blocks[bi]
		nb := f.MakeBlock()
		nb.Weight, nb.TakenWeight = src.Weight, src.TakenWeight
		nb.Instrs = append([]isa.Instr(nil), src.Instrs...)
		// Deep-copy call argument slices (shared otherwise).
		for j := range nb.Instrs {
			if len(nb.Instrs[j].Args) > 0 {
				nb.Instrs[j].Args = append([]isa.Reg(nil), nb.Instrs[j].Args...)
			}
		}
		_, viaTaken, _ := likelySucc(f, bi)
		last := len(nb.Instrs) - 1
		t := src.Term()
		isLatch := pos == len(trace)-1 // likely == header
		switch {
		case t == nil:
			// Fallthrough to the likely successor: inside the chain the
			// next copy follows directly; for the latch, append an
			// explicit back edge.
			if isLatch {
				nb.Instrs = append(nb.Instrs, isa.Instr{Op: isa.BR, Target: head})
			}
		case t.Op == isa.BR:
			// BR to the likely successor: drop it (fallthrough in the
			// chain) or turn it into the chain's back edge.
			if isLatch {
				nb.Instrs[last].Target = head
			} else {
				nb.Instrs = nb.Instrs[:last]
			}
		case t.Op.IsCondBranch():
			br := nb.Instrs[last]
			if viaTaken {
				// Likely path is the taken edge: invert so the unlikely
				// old fallthrough becomes the side exit and the likely
				// path falls through in the chain.
				inv, ok := invertBranch(br)
				if !ok {
					return nil
				}
				inv.Target = bi + 1 // old fallthrough block (cold)
				inv.Pred = false
				nb.Instrs[last] = inv
			} else {
				// Likely path is the fallthrough; the taken edge (cold)
				// stays as the side exit.
				nb.Instrs[last].Pred = false
			}
			if isLatch {
				// The latch ends with a conditional side exit; the back
				// edge goes in its own block (a conditional branch must
				// stay a terminator), entered by fallthrough.
				backEdgeBlock = true
			}
		}
		chain = append(chain, nb)
	}
	if backEdgeBlock {
		nb := f.MakeBlock()
		nb.Weight = chain[len(chain)-1].Weight
		nb.Instrs = []isa.Instr{{Op: isa.BR, Target: head}}
		chain = append(chain, nb)
	}
	// The chain's trailing BR back edge means no fallthrough block is
	// needed after it.
	f.Blocks = append(f.Blocks, chain...)
	f.Renumber()

	// Redirect every entry into the old header — from outside the loop,
	// from the cold path's back edges, and from the chain's own side
	// exits alike — to the chain head.
	for bi, b := range f.Blocks {
		for j := range b.Instrs {
			in := &b.Instrs[j]
			if (in.Op == isa.BR || in.Op.IsCondBranch()) && in.Target == h {
				in.Target = head
			}
		}
		// Fallthrough entry into the old header: append an explicit BR.
		if bi == h-1 {
			if t := b.Term(); t == nil {
				b.Instrs = append(b.Instrs, isa.Instr{Op: isa.BR, Target: head})
			}
		}
	}
	return chain[0]
}
