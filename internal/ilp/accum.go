package ilp

import (
	"regconn/internal/analysis"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// Accumulator variable expansion (an IMPACT transformation the paper's
// compiler applied alongside unrolling). A reduction
//
//	t = a OP x ; a = t            (OP associative: ADD or FADD)
//
// serializes the unrolled copies through a's dependence chain — three
// cycles per iteration for FADD. Expansion gives copy k its own partial
// accumulator a_k (initialized to zero in a preheader the loop's entries
// are redirected through) and merges the partials into a on every exit
// path. Re-entering the loop passes through the preheader again, so the
// partials restart cleanly.
//
// Floating-point expansion reassociates the reduction. The interpreter
// oracle runs on the transformed IR, so verification is unaffected; the
// benchmark checksums stay exact because their FP values are dyadic
// rationals (see DESIGN.md).

// accumInfo describes one expandable accumulator in a chain-loop body.
type accumInfo struct {
	a      isa.Reg // the pinned accumulator
	op     isa.Op  // ADD or FADD
	opIdx  int     // body index of "t = a OP x"
	movIdx int     // body index of "a = t"
	aFirst bool    // accumulator is the OP's first operand
	extras []isa.Reg
}

// findAccumulators locates expandable reductions: a pinned, defined in the
// body only by the OP/MOV pair, and read in the body only by the OP.
func findAccumulators(f *ir.Func, body []isa.Instr, term *isa.Instr, pinned analysis.BitSet, ids *analysis.RegIDs) []accumInfo {
	var out []accumInfo
	var buf [4]isa.Reg
	for mi := range body {
		mov := &body[mi]
		if mov.Op != isa.MOV && mov.Op != isa.FMOV {
			continue
		}
		a, t := mov.Dst, mov.A
		if !pinned.Has(ids.ID(a)) {
			continue
		}
		// Find t's definition: a OP x with matching class, register
		// operands, before the MOV.
		oi := -1
		aFirst := false
		for j := 0; j < mi; j++ {
			in := &body[j]
			if d := in.Def(); d.Valid() && d == t {
				ok := (in.Op == isa.ADD || in.Op == isa.FADD) && !in.UseImm &&
					(in.A == a) != (in.B == a) // exactly one operand is a
				if ok {
					oi, aFirst = j, in.A == a
				} else {
					oi = -2
				}
			}
		}
		if oi < 0 {
			continue
		}
		if !validateAccum(body, term, a, t, oi, mi) {
			continue
		}
		_ = buf
		out = append(out, accumInfo{a: a, op: body[oi].Op, opIdx: oi, movIdx: mi, aFirst: aFirst})
	}
	return out
}

// validateAccum checks the use/def constraints for a and t across the
// whole body and the terminator.
func validateAccum(body []isa.Instr, term *isa.Instr, a, t isa.Reg, opIdx, movIdx int) bool {
	var buf [4]isa.Reg
	check := func(j int, in *isa.Instr) bool {
		for _, u := range in.Uses(buf[:0]) {
			switch u {
			case a:
				if j != opIdx {
					return false
				}
			case t:
				if j != movIdx {
					return false
				}
			}
		}
		if d := in.Def(); d.Valid() && (d == a || d == t) {
			if !(j == opIdx || j == movIdx) {
				return false
			}
		}
		return true
	}
	for j := range body {
		if !check(j, &body[j]) {
			return false
		}
	}
	return check(-1, term)
}

// expander carries accumulator-expansion state through one unroll.
type expander struct {
	accs   []accumInfo
	factor int
}

func newExpander(f *ir.Func, body []isa.Instr, term *isa.Instr, pinned analysis.BitSet, ids *analysis.RegIDs, factor int, fullChain bool) *expander {
	// Expansion needs the preheader to dominate every path into the
	// chain; with a cold remainder re-entering the header per iteration
	// (trace-formed prefix chains), that does not hold, so expand only
	// full-chain loops.
	if !fullChain || factor <= 1 {
		return &expander{}
	}
	accs := findAccumulators(f, body, term, pinned, ids)
	for i := range accs {
		for k := 1; k < factor; k++ {
			var nr isa.Reg
			if accs[i].a.Class == isa.ClassFloat {
				nr = f.NewFloat()
			} else {
				nr = f.NewInt()
			}
			accs[i].extras = append(accs[i].extras, nr)
		}
	}
	return &expander{accs: accs, factor: factor}
}

// active reports whether any accumulator is being expanded.
func (ex *expander) active() bool { return len(ex.accs) > 0 }

// rewrite redirects copy k's accumulator OP/MOV pair to partial a_k.
func (ex *expander) rewrite(in *isa.Instr, j, k int) {
	if k == 0 {
		return
	}
	for _, ac := range ex.accs {
		part := ac.extras[k-1]
		switch j {
		case ac.opIdx:
			if ac.aFirst {
				in.A = part
			} else {
				in.B = part
			}
		case ac.movIdx:
			in.Dst = part
		}
	}
}

// preheader returns the partial-initialization instructions.
func (ex *expander) preheader() []isa.Instr {
	var out []isa.Instr
	for _, ac := range ex.accs {
		for _, part := range ac.extras {
			if part.Class == isa.ClassFloat {
				out = append(out, isa.Instr{Op: isa.FMOVI, Dst: part}) // +0.0
			} else {
				out = append(out, isa.Instr{Op: isa.MOVI, Dst: part})
			}
		}
	}
	return out
}

// mergeInstrs returns the code folding the partials back into each
// accumulator (used on every exit path).
func (ex *expander) mergeInstrs(f *ir.Func) []isa.Instr {
	var out []isa.Instr
	for _, ac := range ex.accs {
		for _, part := range ac.extras {
			var t isa.Reg
			mov := isa.MOV
			if ac.a.Class == isa.ClassFloat {
				t = f.NewFloat()
				mov = isa.FMOV
			} else {
				t = f.NewInt()
			}
			out = append(out,
				isa.Instr{Op: ac.op, Dst: t, A: ac.a, B: part},
				isa.Instr{Op: mov, Dst: ac.a, A: t},
			)
		}
	}
	return out
}
