package ilp

import (
	"testing"

	"regconn/internal/ir"
	"regconn/internal/isa"
	"regconn/internal/opt"
)

// buildPtrLoop sums an array through a bumped pointer — the canonical
// induction-rewriting candidate.
func buildPtrLoop(n int64) *ir.Program {
	p := ir.NewProgram()
	g := p.AddGlobal("arr", 256*8)
	init := make([]int64, 256)
	for i := range init {
		init[i] = int64(i * 3)
	}
	g.InitI = init
	b := ir.NewFunc(p, "main", 0, 0)
	ptr := b.Addr(g, 0)
	s := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	b.MovTo(s, b.Add(s, b.Ld(ptr, 0)))
	b.MovTo(ptr, b.AddI(ptr, 8))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, n, loop)
	b.Continue()
	b.Ret(s)
	return p
}

func TestInductionRewriteSemantics(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 100} {
		for _, factor := range []int{2, 4, 8} {
			want := run(t, buildPtrLoop(n))
			p := buildPtrLoop(n)
			opt.Classical(p)
			Transform(p, factor, false)
			if err := ir.Verify(p); err != nil {
				t.Fatalf("n=%d u=%d: %v", n, factor, err)
			}
			if got := run(t, p); got != want {
				t.Errorf("n=%d unroll=%d: got %d, want %d", n, factor, got, want)
			}
		}
	}
}

func TestInductionRewriteFoldsBumps(t *testing.T) {
	p := buildPtrLoop(64)
	opt.Classical(p)
	Transform(p, 4, false)
	f := p.Func("main")
	// The unrolled copies must access distinct displacements off the same
	// base, and the pointer must be bumped once per unrolled body (one
	// ADD #32 instead of four ADD #8).
	var offs []int64
	bigBump := 0
	smallBump := 0
	for _, blk := range f.Blocks {
		for j := range blk.Instrs {
			in := &blk.Instrs[j]
			switch {
			case in.Op == isa.LD:
				offs = append(offs, in.Imm)
			case in.Op == isa.ADD && in.UseImm && in.Imm == 32:
				bigBump++
			case in.Op == isa.ADD && in.UseImm && in.Imm == 8:
				smallBump++
			}
		}
	}
	if bigBump != 1 {
		t.Errorf("combined bumps = %d, want 1\n%s", bigBump, f)
	}
	if smallBump != 0 {
		t.Errorf("per-copy bumps survived: %d\n%s", smallBump, f)
	}
	seen := map[int64]bool{}
	for _, o := range offs {
		seen[o] = true
	}
	for _, want := range []int64{0, 8, 16, 24} {
		if !seen[want] {
			t.Errorf("missing folded displacement %d (got %v)", want, offs)
		}
	}
}

// TestInductionSkipsPointerLiveAtExit ensures the rewrite declines when
// the pointer's side-exit value is observable.
func TestInductionSkipsPointerLiveAtExit(t *testing.T) {
	p := ir.NewProgram()
	g := p.AddGlobal("arr", 256*8)
	b := ir.NewFunc(p, "main", 0, 0)
	ptr := b.Addr(g, 0)
	s := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	b.MovTo(s, b.Add(s, b.Ld(ptr, 0)))
	b.MovTo(ptr, b.AddI(ptr, 8))
	b.MovTo(i, b.AddI(i, 1))
	b.BltI(i, 10, loop)
	b.Continue()
	// ptr observed after the loop: it is live at the exit.
	b.Ret(b.Add(s, ptr))
	want := run(t, p)

	p2 := ir.NewProgram()
	g2 := p2.AddGlobal("arr", 256*8)
	b2 := ir.NewFunc(p2, "main", 0, 0)
	ptr2 := b2.Addr(g2, 0)
	s2 := b2.Const(0)
	i2 := b2.Const(0)
	loop2 := b2.NewBlock()
	b2.Br(loop2)
	b2.SetBlock(loop2)
	b2.MovTo(s2, b2.Add(s2, b2.Ld(ptr2, 0)))
	b2.MovTo(ptr2, b2.AddI(ptr2, 8))
	b2.MovTo(i2, b2.AddI(i2, 1))
	b2.BltI(i2, 10, loop2)
	b2.Continue()
	b2.Ret(b2.Add(s2, ptr2))
	opt.Classical(p2)
	Transform(p2, 4, false)
	if got := run(t, p2); got != want {
		t.Errorf("live-at-exit pointer mishandled: got %d, want %d", got, want)
	}
}
