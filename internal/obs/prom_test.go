package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// buildTestRegistry populates a registry with one of each family kind,
// including label values that exercise the escaping rules.
func buildTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("plain_total", "a plain counter").Add(3)
	v := reg.CounterVec("labeled_total", "counter with\nnewline help", "endpoint", "peer")
	v.With("run", `http://x:1/"q"`).Add(2)
	v.With("sweep", `back\slash`).Inc()
	reg.Gauge("temp", "a gauge").Set(-2.5)
	reg.GaugeFunc("fn_gauge", "callback gauge", func() float64 { return 7 })
	h := reg.HistogramVec("lat_seconds", "latency", []float64{0.1, 1}, "endpoint")
	h.With("run").Observe(0.05)
	h.With("run").Observe(0.5)
	h.With("run").Observe(5)
	return reg
}

func TestPrometheusRoundTrip(t *testing.T) {
	reg := buildTestRegistry()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	fams, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParsePrometheus rejected our own output: %v\n%s", err, buf.String())
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	if f := byName["plain_total"]; f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 3 {
		t.Fatalf("plain_total = %+v", f)
	}
	lf := byName["labeled_total"]
	if lf.Help != "counter with\nnewline help" {
		t.Fatalf("help round-trip = %q", lf.Help)
	}
	got := map[string]float64{}
	for _, s := range lf.Samples {
		got[s.Labels["endpoint"]+"|"+s.Labels["peer"]] = s.Value
	}
	if got[`run|http://x:1/"q"`] != 2 || got[`sweep|back\slash`] != 1 {
		t.Fatalf("labeled samples = %v", got)
	}
	if f := byName["temp"]; f.Type != "gauge" || f.Samples[0].Value != -2.5 {
		t.Fatalf("temp = %+v", f)
	}
	if f := byName["fn_gauge"]; f.Samples[0].Value != 7 {
		t.Fatalf("fn_gauge = %+v", f)
	}

	hf := byName["lat_seconds"]
	if hf.Type != "histogram" {
		t.Fatalf("lat_seconds type = %q", hf.Type)
	}
	// Expect cumulative buckets 1, 2, 3 and sum/count.
	want := map[string]float64{
		"bucket|0.1":  1,
		"bucket|1":    2,
		"bucket|+Inf": 3,
		"sum|":        5.55,
		"count|":      3,
	}
	seen := map[string]float64{}
	for _, s := range hf.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			seen["bucket|"+s.Labels["le"]] = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			seen["sum|"] = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			seen["count|"] = s.Value
		}
	}
	for k, v := range want {
		if k == "sum|" {
			if math.Abs(seen[k]-v) > 1e-9 {
				t.Fatalf("histogram %s = %v, want %v", k, seen[k], v)
			}
			continue
		}
		if seen[k] != v {
			t.Fatalf("histogram %s = %v, want %v (all: %v)", k, seen[k], v, seen)
		}
	}
}

func TestParsePrometheusRejections(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of the error
	}{
		{
			"sample before TYPE",
			"orphan_total 1\n",
			"before # TYPE",
		},
		{
			"interleaved families",
			"# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n",
			"interleaved",
		},
		{
			"duplicate series",
			"# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n",
			"duplicate",
		},
		{
			"bad metric name",
			"# TYPE 9bad counter\n9bad 1\n",
			"name",
		},
		{
			"unquoted label value",
			"# TYPE a counter\na{x=1} 1\n",
			"label",
		},
		{
			"bad escape in label value",
			"# TYPE a counter\na{x=\"\\q\"} 1\n",
			"escape",
		},
		{
			"unparseable value",
			"# TYPE a counter\na one\n",
			"value",
		},
		{
			"bad type keyword",
			"# TYPE a summary2\na 1\n",
			"type",
		},
		{
			"histogram missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"+Inf",
		},
		{
			"histogram non-cumulative",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"cumulative",
		},
		{
			"histogram count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 5\n",
			"count",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParsePrometheus(strings.NewReader(c.text))
			if err == nil {
				t.Fatalf("parser accepted %q", c.text)
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.want)) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestParsePrometheusAcceptsSpecials(t *testing.T) {
	text := "# HELP g special values\n# TYPE g gauge\n" +
		"g{k=\"inf\"} +Inf\ng{k=\"ninf\"} -Inf\ng{k=\"nan\"} NaN\ng{k=\"exp\"} 1e-3\n"
	fams, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v", err)
	}
	if len(fams) != 1 || len(fams[0].Samples) != 4 {
		t.Fatalf("families = %+v", fams)
	}
	vals := map[string]float64{}
	for _, s := range fams[0].Samples {
		vals[s.Labels["k"]] = s.Value
	}
	if !math.IsInf(vals["inf"], 1) || !math.IsInf(vals["ninf"], -1) ||
		!math.IsNaN(vals["nan"]) || vals["exp"] != 1e-3 {
		t.Fatalf("special values = %v", vals)
	}
}
