// Package obs is the serving fleet's observability layer: request
// tracing, fixed-bucket metrics, and the shared Chrome trace-event
// writer. It is deliberately zero-dependency (stdlib only) and split
// along the same lines as the simulator's own instrumentation:
//
//   - trace.go: a Trace is the span tree of one request. Spans propagate
//     through context.Context, are safe to create from concurrent
//     goroutines (a sweep's points fan out), and carry a ledger-style
//     cross-check (Trace.Check) proving the tree is well-formed: spans
//     nest inside their parents and the tree accounts for the request's
//     wall time within tolerance — the service-level analogue of
//     machine.Result.CheckLedger.
//   - traceevent.go: the Chrome trace-event JSON document model, factored
//     out of machine.EventRing so the cycle-level pipeline trace and the
//     request-level span trace export through one writer and load in the
//     same viewers (chrome://tracing, ui.perfetto.dev).
//   - metrics.go: counters, gauges, and fixed-bucket histograms with
//     label vectors, replacing rcserve's sliding-window latency sort.
//   - prom.go: Prometheus text exposition over a metric Registry, plus a
//     strict parser of the format used by tests in place of promtool.
//
// Everything is nil-tolerant on the hot path: with tracing disabled a
// request carries no span, StartSpan returns its context unchanged, and
// every method on a nil *Span is a no-op — tracing off costs nothing,
// preserving the repo's zero-alloc steady-state gate.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"path/filepath"
)

// NewRequestID returns a fresh 16-hex-character request identifier, the
// value rcserve stamps into X-Request-ID and uses as the trace ID. IDs
// are random (crypto/rand), not sequential: replicas must be able to
// mint them independently without collisions.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a broken
		// entropy source should be loud, not produce colliding IDs.
		panic("obs: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a client-supplied request ID is safe to
// adopt: non-empty, at most 64 bytes, and limited to [0-9A-Za-z._-]. The
// ID is echoed into headers, logs, and trace JSON, and — with -trace-dir
// set — becomes part of an on-disk filename, so anything that could act
// as a path separator or escape a directory (slashes, "..", backslashes)
// is rejected outright rather than sanitized.
func ValidRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	// Belt and braces: the ID must be a plain path element. With the
	// charset above this only excludes the dot-only names "." and "..".
	return id != "." && id != ".." && filepath.Base(id) == id
}
