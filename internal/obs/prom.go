package obs

// Prometheus text exposition (format version 0.0.4) over a Registry,
// and a deliberately strict parser of the same format. The parser
// stands in for promtool in the test suite: exposition output must
// round-trip through it, and it rejects the classic mistakes (samples
// before TYPE, unescaped label values, non-cumulative histogram
// buckets, missing +Inf).

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the registry in registration
// order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.writeProm(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// unescapeHelp inverts escapeHelp; unknown escapes pass through
// verbatim (HELP text is informational, not validated).
func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelString renders {k="v",...}; extra appends one more pair (used
// for histogram le). Empty input renders as "".
func labelString(names, values []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(extraVal))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func (f *family) writeProm(w *bufio.Writer) error {
	keys, series := f.snapshot()
	if len(series) == 0 {
		return nil
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for i, s := range series {
		switch v := s.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, keys[i], "", ""), v.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, keys[i], "", ""), formatFloat(v.Value()))
		case *Histogram:
			var cum int64
			counts := v.BucketCounts()
			for bi, bound := range v.bounds {
				cum += counts[bi]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, keys[i], "le", formatFloat(bound)), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, keys[i], "le", "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
				labelString(f.labels, keys[i], "", ""), formatFloat(v.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name,
				labelString(f.labels, keys[i], "", ""), cum)
		}
	}
	return nil
}

// ------------------------------------------------------------- parser

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParsePrometheus parses text exposition strictly: every sample must
// follow a # TYPE line for its family, names and labels must match the
// Prometheus grammar, label values must be properly quoted/escaped, no
// series may repeat, and histograms must have cumulative buckets ending
// in le="+Inf" whose count equals the family's _count sample. It
// returns families in document order.
func ParsePrometheus(r io.Reader) ([]PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var fams []PromFamily
	byName := map[string]*PromFamily{}
	seen := map[string]bool{} // duplicate-series detection
	cur := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimPrefix(rest, " ")
			switch {
			case strings.HasPrefix(rest, "HELP "):
				parts := strings.SplitN(rest[len("HELP "):], " ", 2)
				name := parts[0]
				if !nameOK(name) {
					return nil, fmt.Errorf("line %d: bad metric name %q in HELP", lineNo, name)
				}
				if _, dup := byName[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
				}
				fams = append(fams, PromFamily{Name: name})
				f := &fams[len(fams)-1]
				if len(parts) == 2 {
					f.Help = unescapeHelp(parts[1])
				}
				byName[name] = f
				cur = name
			case strings.HasPrefix(rest, "TYPE "):
				parts := strings.Fields(rest[len("TYPE "):])
				if len(parts) != 2 {
					return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				name, typ := parts[0], parts[1]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				f, ok := byName[name]
				if !ok {
					fams = append(fams, PromFamily{Name: name})
					f = &fams[len(fams)-1]
					byName[name] = f
				}
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				f.Type = typ
				cur = name
			default:
				// plain comment: ignored
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := familyOf(s.Name)
		f, ok := byName[fam]
		if !ok || f.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s before # TYPE %s", lineNo, s.Name, fam)
		}
		if fam != cur {
			return nil, fmt.Errorf("line %d: sample %s interleaved outside its family block", lineNo, s.Name)
		}
		sk := seriesKey(s)
		if seen[sk] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, sk)
		}
		seen[sk] = true
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if fams[i].Type == "histogram" {
			if err := checkHistogramFamily(&fams[i]); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyOf strips the histogram/summary sample suffixes.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func seriesKey(s PromSample) string {
	var sb strings.Builder
	sb.WriteString(s.Name)
	// deterministic order for the key
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		sb.WriteString(keySep)
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(s.Labels[k])
	}
	return sb.String()
}

func parseSampleLine(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !nameOK(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			for i < len(line) && (line[i] == ' ' || line[i] == ',') {
				i++
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j == len(line) {
				return s, fmt.Errorf("unterminated label set")
			}
			lname := line[i:j]
			if !nameOK(lname) || strings.Contains(lname, ":") {
				return s, fmt.Errorf("bad label name %q", lname)
			}
			i = j + 1
			if i >= len(line) || line[i] != '"' {
				return s, fmt.Errorf("label %s value not quoted", lname)
			}
			i++
			var val strings.Builder
			for {
				if i >= len(line) {
					return s, fmt.Errorf("unterminated label value for %s", lname)
				}
				c := line[i]
				if c == '"' {
					i++
					break
				}
				if c == '\\' {
					i++
					if i >= len(line) {
						return s, fmt.Errorf("dangling escape in label %s", lname)
					}
					switch line[i] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("bad escape \\%c in label %s", line[i], lname)
					}
					i++
					continue
				}
				val.WriteByte(c)
				i++
			}
			if _, dup := s.Labels[lname]; dup {
				return s, fmt.Errorf("duplicate label %s", lname)
			}
			s.Labels[lname] = val.String()
		}
	}
	rest := strings.TrimSpace(line[i:])
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("expected value after series, got %q", rest)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parsePromValue(tok string) (float64, error) {
	switch tok {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(tok, 64)
}

// checkHistogramFamily enforces the histogram shape per label set:
// buckets cumulative and non-decreasing in le order, le="+Inf" present,
// and _count equal to the +Inf bucket.
func checkHistogramFamily(f *PromFamily) error {
	type hist struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	groups := map[string]*hist{}
	group := func(s PromSample) *hist {
		labels := map[string]string{}
		for k, v := range s.Labels {
			if k != "le" {
				labels[k] = v
			}
		}
		key := seriesKey(PromSample{Name: f.Name, Labels: labels})
		h, ok := groups[key]
		if !ok {
			h = &hist{}
			groups[key] = h
		}
		return h
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket sample without le label", f.Name)
			}
			le, err := parsePromValue(leStr)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", f.Name, leStr)
			}
			h := group(s)
			h.les = append(h.les, le)
			h.counts = append(h.counts, s.Value)
		case f.Name + "_count":
			h := group(s)
			h.count = s.Value
			h.hasCnt = true
		case f.Name + "_sum":
			// value unconstrained
		default:
			return fmt.Errorf("histogram %s: unexpected sample %s", f.Name, s.Name)
		}
	}
	for _, h := range groups {
		if len(h.les) == 0 {
			return fmt.Errorf("histogram %s: series without buckets", f.Name)
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				return fmt.Errorf("histogram %s: le bounds not ascending", f.Name)
			}
			if h.counts[i] < h.counts[i-1] {
				return fmt.Errorf("histogram %s: bucket counts not cumulative", f.Name)
			}
		}
		last := h.les[len(h.les)-1]
		if !math.IsInf(last, +1) {
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", f.Name)
		}
		if !h.hasCnt {
			return fmt.Errorf("histogram %s: missing _count sample", f.Name)
		}
		if h.count != h.counts[len(h.counts)-1] {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", f.Name, h.count, h.counts[len(h.counts)-1])
		}
	}
	return nil
}
