package obs

// The Chrome trace-event JSON document model: the subset of the format
// the viewers need (complete "X", instant "i", and metadata "M" events),
// shared by machine.EventRing's cycle-level pipeline export and the
// request-level span export (Trace.Events). One writer means one dialect:
// a file produced by either layer loads in chrome://tracing and
// ui.perfetto.dev the same way.

import (
	"encoding/json"
	"io"
)

// TraceEvent is one trace-event record.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the top-level chrome://tracing document. OtherData carries
// free-form metadata shown in the viewer's info panel.
type TraceFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// Complete returns a duration ("X") event.
func Complete(name string, ts, dur int64, pid, tid int) TraceEvent {
	return TraceEvent{Name: name, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid}
}

// Instant returns a thread-scoped instant ("i") event.
func Instant(name string, ts int64, pid, tid int) TraceEvent {
	return TraceEvent{Name: name, Ph: "i", S: "t", Ts: ts, Pid: pid, Tid: tid}
}

// MetaProcessName returns the metadata event naming a process track.
func MetaProcessName(pid int, name string) TraceEvent {
	return TraceEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}}
}

// MetaThreadName returns the metadata event naming a thread track.
func MetaThreadName(pid, tid int, name string) TraceEvent {
	return TraceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}}
}

// WriteTraceFile encodes the document to w.
func WriteTraceFile(w io.Writer, f *TraceFile) error {
	return json.NewEncoder(w).Encode(f)
}
