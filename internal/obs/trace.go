package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// A Trace is the span tree of one request: the service-level analogue of
// the simulator's cycle ledger. Spans are created from possibly many
// goroutines (a sweep fans its points out); every mutation takes the
// trace's lock, so the hot path stays lock-free only when tracing is off
// (nil spans). Times are offsets from one monotonic base, so intervals
// are directly comparable and the nesting invariant is checkable.
type Trace struct {
	id    string
	begin time.Time // wall + monotonic base

	mu        sync.Mutex
	spans     []*Span
	nextTrack int
	openRoots int
	wall      time.Duration // set by Finish
	finished  bool
}

// Span is one timed operation inside a trace. A nil *Span is valid and
// every method on it is a no-op: code instruments unconditionally and
// pays nothing when tracing is disabled.
type Span struct {
	tr     *Trace
	name   string
	parent *Span
	track  int
	start  time.Duration
	end    time.Duration // < 0 while open
	open   int           // currently open children (track assignment)
	attrs  []Attr
}

// Attr is one span attribute (rendered into the trace event's args).
type Attr struct {
	Key string
	Val any
}

// NewTrace starts an empty trace identified by id (the request ID).
func NewTrace(id string) *Trace {
	return &Trace{id: id, begin: time.Now()}
}

// ID returns the trace identifier.
func (t *Trace) ID() string { return t.id }

// Begin returns the trace's start time.
func (t *Trace) Begin() time.Time { return t.begin }

// Finish stamps the trace's wall time. Call it exactly once, after the
// request completes; Check and Events read the recorded wall.
func (t *Trace) Finish() {
	d := time.Since(t.begin)
	t.mu.Lock()
	if !t.finished {
		t.wall = d
		t.finished = true
	}
	t.mu.Unlock()
}

// Wall returns the wall time recorded by Finish (0 before).
func (t *Trace) Wall() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wall
}

// newSpan allocates a span under parent (nil = root) holding t.mu.
// Track assignment mirrors how the work actually forked: a span whose
// parent has no other open child continues on the parent's track
// (sequential phases render as one stacked lane), while a concurrent
// sibling forks a fresh track so overlapping "X" events never share a
// lane in the viewer.
func (t *Trace) newSpan(parent *Span, name string) *Span {
	s := &Span{tr: t, name: name, parent: parent, start: time.Since(t.begin), end: -1}
	if parent == nil {
		if t.openRoots == 0 && t.nextTrack == 0 {
			t.nextTrack = 1 // track 0 belongs to the first root
		} else {
			s.track = t.nextTrack
			t.nextTrack++
		}
		t.openRoots++
	} else {
		if parent.open == 0 {
			s.track = parent.track
		} else {
			s.track = t.nextTrack
			t.nextTrack++
		}
		parent.open++
	}
	t.spans = append(t.spans, s)
	return s
}

// Root opens a root span (the request itself).
func (t *Trace) Root(name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.newSpan(nil, name)
}

// Child opens a sub-span. Safe on a nil receiver (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.tr.newSpan(s, name)
}

// End closes the span. Ending twice is a no-op; ending a nil span is a
// no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.tr.begin)
	s.tr.mu.Lock()
	if s.end < 0 {
		s.end = d
		if s.parent != nil {
			s.parent.open--
		} else {
			s.tr.openRoots--
		}
	}
	s.tr.mu.Unlock()
}

// Set attaches an attribute (chainable). No-op on nil.
func (s *Span) Set(key string, val any) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, val})
	s.tr.mu.Unlock()
	return s
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

type spanCtxKey struct{}

// NewContext returns ctx carrying s as the current span. A nil span
// returns ctx unchanged, so untraced requests never allocate.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// FromContext returns the current span, or nil when the request is not
// being traced.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns the
// derived context plus the span. With no span in ctx (tracing off) it
// returns ctx unchanged and a nil span — the zero-overhead path.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.Child(name)
	return NewContext(ctx, s), s
}

// SpanInfo is the exported snapshot of one span (tests, /v1/sweeps).
// Parent indexes the trace's span list (-1 = root).
type SpanInfo struct {
	Name   string
	Parent int
	Track  int
	Start  time.Duration
	End    time.Duration // -1 while still open
	Attrs  []Attr
}

// Spans snapshots the span tree in creation order.
func (t *Trace) Spans() []SpanInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := make(map[*Span]int, len(t.spans))
	for i, s := range t.spans {
		idx[s] = i
	}
	out := make([]SpanInfo, len(t.spans))
	for i, s := range t.spans {
		p := -1
		if s.parent != nil {
			p = idx[s.parent]
		}
		out[i] = SpanInfo{
			Name: s.name, Parent: p, Track: s.track,
			Start: s.start, End: s.end,
			Attrs: append([]Attr(nil), s.attrs...),
		}
	}
	return out
}

// interval is a closed span interval used by Check's union accounting.
type interval struct{ lo, hi time.Duration }

// unionLen returns the total length of the union of intervals.
func unionLen(ivs []interval) time.Duration {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var total time.Duration
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.lo > cur.hi {
			total += cur.hi - cur.lo
			cur = iv
			continue
		}
		if iv.hi > cur.hi {
			cur.hi = iv.hi
		}
	}
	return total + cur.hi - cur.lo
}

// Check verifies the trace's ledger-style invariants within tolerance
// tol:
//
//  1. the trace is finished and every span has ended;
//  2. nesting — every span's interval lies inside its parent's (each
//     point's simulate span encloses its build/execute children, and so
//     on up the tree);
//  3. accounting — for every span, the union of its children's intervals
//     does not exceed the span's own duration plus tol (children cannot
//     claim time their parent does not have); and
//  4. wall closure — the union of the root spans' intervals equals the
//     request's recorded wall time within tol: the tree accounts for
//     where the request's time went, the way CheckLedger proves every
//     simulated cycle lands in a bucket.
//
// A request that abandoned an in-flight execution (client cancellation)
// can legitimately fail 2: the flight's spans outlive the request that
// started it. Tests exercise cancellation-free paths.
func (t *Trace) Check(tol time.Duration) error {
	spans := t.Spans()
	t.mu.Lock()
	finished, wall := t.finished, t.wall
	t.mu.Unlock()
	if !finished {
		return fmt.Errorf("obs: trace %s: Check before Finish", t.id)
	}
	children := make([][]interval, len(spans))
	var roots []interval
	for _, s := range spans {
		if s.End < 0 {
			return fmt.Errorf("obs: trace %s: span %q never ended", t.id, s.Name)
		}
		if s.End < s.Start {
			return fmt.Errorf("obs: trace %s: span %q ends (%v) before it starts (%v)", t.id, s.Name, s.End, s.Start)
		}
		if s.Parent >= 0 {
			p := spans[s.Parent]
			if s.Start+tol < p.Start || s.End > p.End+tol {
				return fmt.Errorf("obs: trace %s: span %q [%v,%v] escapes parent %q [%v,%v]",
					t.id, s.Name, s.Start, s.End, p.Name, p.Start, p.End)
			}
			children[s.Parent] = append(children[s.Parent], interval{s.Start, s.End})
		} else {
			roots = append(roots, interval{s.Start, s.End})
		}
	}
	for i, ivs := range children {
		if len(ivs) == 0 {
			continue
		}
		if u, d := unionLen(ivs), spans[i].End-spans[i].Start; u > d+tol {
			return fmt.Errorf("obs: trace %s: children of %q cover %v, span only lasts %v",
				t.id, spans[i].Name, u, d)
		}
	}
	if len(roots) == 0 {
		return fmt.Errorf("obs: trace %s has no root span", t.id)
	}
	u := unionLen(roots)
	if diff := u - wall; diff > tol || -diff > tol {
		return fmt.Errorf("obs: trace %s: root spans cover %v, request wall time is %v (tolerance %v)",
			t.id, u, wall, tol)
	}
	return nil
}

// Events renders the trace as Chrome trace events under pid: one "X"
// event per completed span (timestamps in microseconds from the trace
// start), tracks named, the process named after the trace ID. Spans
// still open at export time are skipped.
func (t *Trace) Events(pid int) []TraceEvent {
	spans := t.Spans()
	out := make([]TraceEvent, 0, len(spans)+4)
	out = append(out, MetaProcessName(pid, "request "+t.id))
	maxTrack := 0
	for _, s := range spans {
		if s.End < 0 {
			continue
		}
		te := Complete(s.Name, s.Start.Microseconds(), (s.End - s.Start).Microseconds(), pid, s.Track)
		if len(s.Attrs) > 0 {
			te.Args = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				te.Args[a.Key] = a.Val
			}
		}
		out = append(out, te)
		if s.Track > maxTrack {
			maxTrack = s.Track
		}
	}
	for tr := 0; tr <= maxTrack; tr++ {
		name := fmt.Sprintf("track %d", tr)
		if tr == 0 {
			name = "request"
		}
		out = append(out, MetaThreadName(pid, tr, name))
	}
	return out
}

// WriteTraces renders traces as one Chrome trace document, one process
// track group per trace.
func WriteTraces(w io.Writer, traces ...*Trace) error {
	f := &TraceFile{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"time_unit": "1us", "traces": len(traces)},
	}
	for i, t := range traces {
		f.TraceEvents = append(f.TraceEvents, t.Events(i)...)
	}
	return WriteTraceFile(w, f)
}
