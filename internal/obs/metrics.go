package obs

// Fixed-bucket metrics replacing rcserve's 1024-sample sorted latency
// window. A Registry owns metric families; each family is a counter,
// gauge, or histogram, optionally fanned out over label values (a
// "vec"). Values are lock-free atomics on the observe path; the
// registry lock is only taken when a new label combination first
// appears or when the registry is scraped.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// DefBuckets is the default latency histogram layout, in seconds. The
// top bucket is well above rcserve's 2-minute request timeout; +Inf is
// implicit.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 120,
}

// A Registry holds metric families in registration order. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string  // label names, fixed at registration
	buckets []float64 // histogram upper bounds (ascending, no +Inf)

	mu     sync.Mutex
	series map[string]any // label-values key -> *Counter/*Gauge/*Histogram/func()float64
	order  []string       // series insertion order
	keys   [][]string     // label values per series, same order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

var nameOK = func(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !nameOK(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, l := range labels {
		if !nameOK(l) || strings.Contains(l, ":") {
			panic("obs: invalid label name " + l + " on metric " + name)
		}
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram " + name + " buckets not strictly ascending")
		}
	}
	if len(buckets) > 0 && math.IsInf(buckets[len(buckets)-1], +1) {
		panic("obs: histogram " + name + " must not list +Inf explicitly")
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  map[string]any{},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("obs: duplicate metric registration: " + name)
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

const keySep = "\xff"

func (f *family) seriesFor(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, keySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make()
	f.series[key] = s
	f.order = append(f.order, key)
	f.keys = append(f.keys, append([]string(nil), values...))
	return s
}

// snapshot returns (label values, series) pairs in insertion order.
func (f *family) snapshot() ([][]string, []any) {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([][]string, len(f.order))
	copy(keys, f.keys)
	series := make([]any, len(f.order))
	for i, k := range f.order {
		series[i] = f.series[k]
	}
	return keys, series
}

// ---------------------------------------------------------------- counter

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// String renders the value, making Counter usable as an expvar.Var.
func (c *Counter) String() string { return fmt.Sprintf("%d", c.v.Load()) }

// Counter registers (or the family for) a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.seriesFor(nil, func() any { return new(Counter) }).(*Counter)
}

// CounterVec is a counter family fanned out over label values.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec " + name + " needs at least one label")
	}
	return &CounterVec{r.register(name, help, KindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.seriesFor(values, func() any { return new(Counter) }).(*Counter)
}

// Sum totals the counters whose label values satisfy filter (nil filter
// = all series). This is how the legacy unlabeled expvar keys are
// derived from the labeled families.
func (v *CounterVec) Sum(filter func(values []string) bool) int64 {
	keys, series := v.f.snapshot()
	var total int64
	for i, s := range series {
		if filter == nil || filter(keys[i]) {
			total += s.(*Counter).Value()
		}
	}
	return total
}

// ------------------------------------------------------------------ gauge

// Gauge is an instantaneous value, either set directly or computed by a
// callback at scrape time.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set stores v. Panics if the gauge was registered with a callback.
func (g *Gauge) Set(v float64) {
	if g.fn != nil {
		panic("obs: Set on a callback gauge")
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (either sign). Panics on a callback
// gauge.
func (g *Gauge) Add(delta float64) {
	if g.fn != nil {
		panic("obs: Add on a callback gauge")
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// String renders the value, making Gauge usable as an expvar.Var.
func (g *Gauge) String() string { return formatFloat(g.Value()) }

// Gauge registers a label-less settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.seriesFor(nil, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a label-less gauge computed by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.seriesFor(nil, func() any { return &Gauge{fn: fn} })
}

// GaugeVec is a settable gauge family fanned out over label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec " + name + " needs at least one label")
	}
	return &GaugeVec{r.register(name, help, KindGauge, labels, nil)}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.seriesFor(values, func() any { return new(Gauge) }).(*Gauge)
}

// Each calls fn for every series in insertion order.
func (v *GaugeVec) Each(fn func(values []string, g *Gauge)) {
	keys, series := v.f.snapshot()
	for i, s := range series {
		fn(keys[i], s.(*Gauge))
	}
}

// -------------------------------------------------------------- histogram

// Histogram counts observations into fixed buckets: counts[i] holds
// observations v <= bounds[i] that missed every lower bucket, and the
// final counts entry is the implicit +Inf bucket. Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = +Inf
	total  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the "le" bucket
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns per-bucket (non-cumulative) counts; the final
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank. Returns 0
// with no observations; a target in the +Inf bucket returns the top
// finite bound (the histogram cannot see beyond it).
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.BucketCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	return quantileOf(h.bounds, counts, total, q)
}

func quantileOf(bounds []float64, counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i == len(bounds) { // +Inf bucket: saturate at the top bound
				if len(bounds) == 0 {
					return 0
				}
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			frac := (rank - float64(cum-c)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// Histogram registers a label-less histogram with the given bucket
// upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, KindHistogram, nil, buckets)
	return f.seriesFor(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family fanned out over label values.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family (nil buckets =
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec " + name + " needs at least one label")
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, KindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.seriesFor(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Quantile estimates the q-quantile across all series merged
// bucket-wise — the family-wide view the legacy latency_p50_ms expvar
// keys are computed from.
func (v *HistogramVec) Quantile(q float64) float64 {
	_, series := v.f.snapshot()
	merged := make([]int64, len(v.f.buckets)+1)
	var total int64
	for _, s := range series {
		for i, c := range s.(*Histogram).BucketCounts() {
			merged[i] += c
			total += c
		}
	}
	return quantileOf(v.f.buckets, merged, total, q)
}

// Count totals observations across all series.
func (v *HistogramVec) Count() int64 {
	_, series := v.f.snapshot()
	var total int64
	for _, s := range series {
		total += s.(*Histogram).Count()
	}
	return total
}

// formatFloat renders a float the way Prometheus text exposition wants.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
