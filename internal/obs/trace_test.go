package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	s.End()
	s.Set("k", 1)
	if c := s.Child("x"); c != nil {
		t.Fatalf("nil.Child = %v, want nil", c)
	}
	if s.Name() != "" {
		t.Fatalf("nil.Name = %q", s.Name())
	}
}

func TestNilSpanZeroAllocs(t *testing.T) {
	var s *Span
	allocs := testing.AllocsPerRun(100, func() {
		_, sp := StartSpan(t.Context(), "x")
		sp.Set("k", 1)
		sp.End()
		_ = s.Child("y")
	})
	if allocs != 0 {
		t.Fatalf("untraced span path allocates %v/op, want 0", allocs)
	}
}

func TestStartSpanWithoutParentReturnsSameContext(t *testing.T) {
	ctx := t.Context()
	ctx2, sp := StartSpan(ctx, "x")
	if sp != nil {
		t.Fatalf("span = %v, want nil", sp)
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan changed the context with no parent span")
	}
}

func TestTraceNestingAndCheck(t *testing.T) {
	tr := NewTrace("t1")
	root := tr.Root("request")
	ctx := NewContext(t.Context(), root)
	ctx, a := StartSpan(ctx, "a")
	_, b := StartSpan(ctx, "b")
	time.Sleep(2 * time.Millisecond)
	b.Set("cycles", int64(42))
	b.End()
	a.End()
	root.End()
	tr.Finish()
	if err := tr.Check(50 * time.Millisecond); err != nil {
		t.Fatalf("Check: %v", err)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Parent != -1 || spans[1].Parent != 0 || spans[2].Parent != 1 {
		t.Fatalf("parent chain = %d,%d,%d, want -1,0,1",
			spans[0].Parent, spans[1].Parent, spans[2].Parent)
	}
	// Sequential descent: all three share the root's track.
	if spans[1].Track != spans[0].Track || spans[2].Track != spans[0].Track {
		t.Fatalf("sequential children forked tracks: %d,%d,%d",
			spans[0].Track, spans[1].Track, spans[2].Track)
	}
	if len(spans[2].Attrs) != 1 || spans[2].Attrs[0].Key != "cycles" {
		t.Fatalf("attrs = %v", spans[2].Attrs)
	}
}

func TestConcurrentChildrenForkTracks(t *testing.T) {
	tr := NewTrace("t2")
	root := tr.Root("sweep")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := root.Child("point")
			time.Sleep(time.Millisecond)
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	tr.Finish()
	if err := tr.Check(50 * time.Millisecond); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// With 4 children all open at once, at least two distinct tracks must
	// exist (the first inherits the root's, the overlapping rest fork).
	tracks := map[int]bool{}
	for _, s := range tr.Spans() {
		tracks[s.Track] = true
	}
	if len(tracks) < 2 {
		t.Fatalf("concurrent children shared one track: %v", tracks)
	}
}

func TestCheckRejectsUnendedSpan(t *testing.T) {
	tr := NewTrace("t3")
	root := tr.Root("request")
	root.Child("leak") // never ended
	root.End()
	tr.Finish()
	err := tr.Check(time.Second)
	if err == nil || !strings.Contains(err.Error(), "never ended") {
		t.Fatalf("Check = %v, want never-ended error", err)
	}
}

func TestCheckRejectsChildEscapingParent(t *testing.T) {
	tr := NewTrace("t4")
	root := tr.Root("request")
	child := root.Child("late")
	root.End() // parent ends while the child is open
	time.Sleep(5 * time.Millisecond)
	child.End() // child now ends well after its parent
	tr.Finish()
	err := tr.Check(time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "escapes parent") {
		t.Fatalf("Check = %v, want escape error", err)
	}
}

func TestCheckRejectsWallMismatch(t *testing.T) {
	tr := NewTrace("t5")
	root := tr.Root("request")
	root.End() // root covers ~0 of the wall
	time.Sleep(20 * time.Millisecond)
	tr.Finish() // wall is ~20ms
	err := tr.Check(time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "wall time") {
		t.Fatalf("Check = %v, want wall-closure error", err)
	}
	// The same trace passes with a tolerance wider than the gap.
	if err := tr.Check(time.Second); err != nil {
		t.Fatalf("Check with wide tolerance: %v", err)
	}
}

func TestCheckBeforeFinish(t *testing.T) {
	tr := NewTrace("t6")
	tr.Root("r").End()
	if err := tr.Check(time.Second); err == nil {
		t.Fatal("Check passed before Finish")
	}
}

func TestDoubleEndKeepsFirst(t *testing.T) {
	tr := NewTrace("t7")
	s := tr.Root("r")
	s.End()
	end1 := tr.Spans()[0].End
	time.Sleep(2 * time.Millisecond)
	s.End()
	if end2 := tr.Spans()[0].End; end2 != end1 {
		t.Fatalf("second End moved the span end: %v -> %v", end1, end2)
	}
}

func TestWriteTracesChromeJSON(t *testing.T) {
	tr := NewTrace("abc123")
	root := tr.Root("run")
	c := root.Child("point")
	c.Set("key", "k1")
	time.Sleep(time.Millisecond)
	c.End()
	root.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteTraces(&buf, tr); err != nil {
		t.Fatalf("WriteTraces: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	var haveRun, havePoint, haveProcName bool
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "X" && e.Name == "run":
			haveRun = true
		case e.Ph == "X" && e.Name == "point":
			havePoint = true
			if e.Args["key"] != "k1" {
				t.Fatalf("point args = %v", e.Args)
			}
		case e.Ph == "M" && e.Name == "process_name":
			haveProcName = true
			if got := e.Args["name"]; got != "request abc123" {
				t.Fatalf("process name = %v", got)
			}
		}
	}
	if !haveRun || !havePoint || !haveProcName {
		t.Fatalf("missing events: run=%v point=%v procname=%v", haveRun, havePoint, haveProcName)
	}
	if doc.OtherData["traces"] != float64(1) {
		t.Fatalf("otherData = %v", doc.OtherData)
	}
}

func TestOpenSpansSkippedInExport(t *testing.T) {
	tr := NewTrace("t8")
	root := tr.Root("r")
	root.Child("open") // never ended
	root.End()
	for _, e := range tr.Events(0) {
		if e.Name == "open" {
			t.Fatal("open span exported")
		}
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("two NewRequestID calls collided: %s", a)
	}
	if len(a) != 16 || !ValidRequestID(a) {
		t.Fatalf("NewRequestID() = %q, want 16 valid hex chars", a)
	}
	for id, want := range map[string]bool{
		"abc-123.X_Y":           true,
		"":                      false,
		"has space":             false,
		"quote\"inside":         false,
		"back\\slash":           false,
		"ctrl\nchar":            false,
		"non-ascii-é":           false,
		"../../../tmp/evil":     false,
		"a/b":                   false,
		"..":                    false,
		".":                     false,
		"has:colon":             false,
		"..leading-dots-ok":     true,
		strings.Repeat("a", 64): true,
		strings.Repeat("a", 65): false,
	} {
		if got := ValidRequestID(id); got != want {
			t.Errorf("ValidRequestID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestUnionLen(t *testing.T) {
	cases := []struct {
		ivs  []interval
		want time.Duration
	}{
		{nil, 0},
		{[]interval{{0, 10}}, 10},
		{[]interval{{0, 10}, {5, 15}}, 15},
		{[]interval{{0, 10}, {20, 30}}, 20},
		{[]interval{{5, 15}, {0, 10}, {12, 20}}, 20},
		{[]interval{{0, 10}, {2, 4}}, 10},
	}
	for _, c := range cases {
		if got := unionLen(append([]interval(nil), c.ivs...)); got != c.want {
			t.Errorf("unionLen(%v) = %v, want %v", c.ivs, got, c.want)
		}
	}
}
