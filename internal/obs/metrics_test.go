package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterAndVec(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	if c.String() != "5" {
		t.Fatalf("String = %q", c.String())
	}
	v := reg.CounterVec("by_ep", "help", "endpoint")
	v.With("run").Add(3)
	v.With("sweep").Add(2)
	v.With("run").Inc()
	if got := v.Sum(nil); got != 6 {
		t.Fatalf("Sum(nil) = %d, want 6", got)
	}
	if got := v.Sum(func(vals []string) bool { return vals[0] == "run" }); got != 4 {
		t.Fatalf("Sum(run) = %d, want 4", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.Gauge("dup", "")
}

func TestBadNamesPanic(t *testing.T) {
	for _, name := range []string{"", "0starts_with_digit", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
}

func TestWrongLabelCountPanics(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("c", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label count did not panic")
		}
	}()
	v.With("only-one")
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g", "")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("Value = %v", g.Value())
	}
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("after Add: %v", g.Value())
	}
	called := false
	reg.GaugeFunc("gf", "", func() float64 { called = true; return 7 })
	_, series := reg.byName["gf"].snapshot()
	if got := series[0].(*Gauge).Value(); got != 7 || !called {
		t.Fatalf("GaugeFunc = %v (called %v)", got, called)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to a bound lands in that bound's bucket, just above it in the
// next.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.0, 4.99, 5.0, 5.0001, 100} {
		h.Observe(v)
	}
	want := []int64{
		2, // le=1: 0.5, 1.0
		2, // le=2: 1.0001, 2.0
		2, // le=5: 4.99, 5.0
		2, // +Inf: 5.0001, 100
	}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
	if sum := h.Sum(); math.Abs(sum-119.4902) > 1e-9 {
		t.Fatalf("Sum = %v", sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", "", []float64{10, 20, 40})
	// 10 observations in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %v, want 10 (upper edge of first bucket)", q)
	}
	if q := h.Quantile(0.25); q != 5 {
		t.Fatalf("p25 = %v, want 5 (midpoint of first bucket)", q)
	}
	if q := h.Quantile(1); q != 20 {
		t.Fatalf("p100 = %v, want 20", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("p0 = %v, want 0", q)
	}
	// Everything in +Inf saturates at the top finite bound.
	h2 := reg.Histogram("h2", "", []float64{1, 2})
	h2.Observe(99)
	if q := h2.Quantile(0.5); q != 2 {
		t.Fatalf("+Inf quantile = %v, want 2", q)
	}
	// Empty histogram.
	h3 := reg.Histogram("h3", "", nil)
	if q := h3.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramVecMergedQuantile(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("lat", "", []float64{1, 2, 4}, "endpoint")
	for i := 0; i < 8; i++ {
		v.With("run").Observe(0.5) // first bucket
	}
	for i := 0; i < 2; i++ {
		v.With("sweep").Observe(3) // third bucket
	}
	if n := v.Count(); n != 10 {
		t.Fatalf("Count = %d, want 10", n)
	}
	// p50 of the merged distribution sits inside the first bucket.
	if q := v.Quantile(0.5); q > 1 {
		t.Fatalf("merged p50 = %v, want <= 1", q)
	}
	// p95 lands in the (2,4] bucket.
	if q := v.Quantile(0.95); q <= 2 || q > 4 {
		t.Fatalf("merged p95 = %v, want in (2,4]", q)
	}
}

func TestNonAscendingBucketsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets did not panic")
		}
	}()
	NewRegistry().Histogram("h", "", []float64{1, 1})
}

func TestExplicitInfBucketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("+Inf bucket did not panic")
		}
	}()
	NewRegistry().Histogram("h", "", []float64{1, math.Inf(1)})
}

func TestConcurrentObserves(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramVec("h", "", []float64{0.5}, "l")
	c := reg.CounterVec("c", "", "l")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := []string{"a", "b"}[w%2]
			for i := 0; i < 1000; i++ {
				h.With(lbl).Observe(0.25)
				c.With(lbl).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Sum(nil); got != 8000 {
		t.Fatalf("counter sum = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := h.With("a").Sum(); got != 4000*0.25 {
		t.Fatalf("series a sum = %v, want 1000", got)
	}
}
