package opt

import (
	"regconn/internal/analysis"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// DCE removes pure instructions whose results are dead, using global
// liveness. It reports whether anything changed.
func DCE(f *ir.Func) bool {
	cfg := analysis.BuildCFG(f)
	lv := analysis.ComputeLiveness(f, cfg)
	changed := false
	for bi, b := range f.Blocks {
		dead := make([]bool, len(b.Instrs))
		lv.ForEachLivePoint(f, bi, func(j int, liveAfter analysis.BitSet) {
			in := &b.Instrs[j]
			if !isPure(in.Op) && in.Op != isa.NOP {
				return
			}
			if in.Op == isa.NOP {
				dead[j] = true
				return
			}
			d := in.Def()
			if d.Valid() && !liveAfter.Has(lv.IDs.ID(d)) {
				dead[j] = true
			}
		})
		// Note: ForEachLivePoint walks backwards updating the live set
		// using the original instructions; removing an instruction whose
		// result is dead can expose more dead code, which the caller's
		// fixpoint loop picks up on the next round.
		out := b.Instrs[:0]
		for j := range b.Instrs {
			if dead[j] {
				changed = true
				continue
			}
			out = append(out, b.Instrs[j])
		}
		b.Instrs = out
	}
	return changed
}

// isPure reports whether op has no side effects beyond writing its
// destination register (so it is removable when the destination is dead).
// DIV/REM can trap and are kept.
func isPure(op isa.Op) bool {
	switch op {
	case isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.MOV, isa.MOVI, isa.LGA,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FMOV, isa.FMOVI,
		isa.FNEG, isa.FABS, isa.CVTIF, isa.CVTFI, isa.LD, isa.FLD:
		return true
	}
	return false
}
