package opt

import (
	"fmt"

	"regconn/internal/ir"
	"regconn/internal/isa"
)

// CSE performs local common-subexpression elimination: within each block, a
// pure instruction that recomputes an available expression is replaced by a
// copy from the earlier result. Loads participate until a store or call
// invalidates memory. It reports whether anything changed.
func CSE(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		if cseBlock(b) {
			changed = true
		}
	}
	return changed
}

func cseBlock(b *ir.Block) bool {
	avail := map[string]isa.Reg{}    // expression key -> register holding it
	exprOf := map[isa.Reg][]string{} // defining register -> keys to kill
	changed := false
	kill := func(r isa.Reg) {
		for _, k := range exprOf[r] {
			delete(avail, k)
		}
		delete(exprOf, r)
		// Also kill expressions that *use* r.
		for k, v := range avail {
			if usesReg(k, r) {
				delete(avail, k)
				_ = v
			}
		}
	}
	killLoads := func() {
		for k := range avail {
			if len(k) > 3 && (k[:3] == "ld/" || k[:4] == "fld/") {
				delete(avail, k)
			}
		}
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		key, pure := exprKey(in)
		if pure {
			if prev, ok := avail[key]; ok && prev.Class == in.Dst.Class {
				op := isa.MOV
				if in.Dst.Class == isa.ClassFloat {
					op = isa.FMOV
				}
				*in = isa.Instr{Op: op, Dst: in.Dst, A: prev}
				changed = true
				if d := in.Def(); d.Valid() {
					kill(d)
				}
				continue
			}
		}
		switch in.Op {
		case isa.ST, isa.FST:
			killLoads()
		case isa.CALL:
			killLoads()
		}
		if d := in.Def(); d.Valid() {
			kill(d)
			if pure {
				avail[key] = d
				exprOf[d] = append(exprOf[d], key)
			}
		}
	}
	return changed
}

// exprKey builds a value-numbering key for instructions worth sharing.
// The key embeds register operands as "c<class>n<num>" tokens so usesReg
// can later invalidate dependent expressions.
func exprKey(in *isa.Instr) (string, bool) {
	switch in.Op {
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR, isa.XOR,
		isa.SLL, isa.SRL, isa.SRA, isa.SLT,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.CVTIF, isa.CVTFI,
		isa.LGA, isa.MOVI, isa.FMOVI:
		b := ""
		if in.UseImm {
			b = fmt.Sprintf("#%d", in.Imm)
		} else if in.B.Valid() {
			b = regTok(in.B)
		}
		imm := ""
		if in.Op == isa.MOVI || in.Op == isa.FMOVI || in.Op == isa.LGA {
			imm = fmt.Sprintf("#%d/%s", in.Imm, in.Sym)
		}
		return fmt.Sprintf("%d/%s/%s%s", in.Op, regTok(in.A), b, imm), true
	case isa.LD:
		return fmt.Sprintf("ld/%s/%d", regTok(in.A), in.Imm), true
	case isa.FLD:
		return fmt.Sprintf("fld/%s/%d", regTok(in.A), in.Imm), true
	}
	return "", false
}

func regTok(r isa.Reg) string {
	if !r.Valid() {
		return "_"
	}
	return fmt.Sprintf("c%dn%d", r.Class, r.N)
}

func usesReg(key string, r isa.Reg) bool {
	tok := regTok(r)
	// Token boundaries in keys are '/', so search for "/<tok>/" patterns
	// including at segment ends.
	for i := 0; i+len(tok) <= len(key); i++ {
		if key[i:i+len(tok)] == tok {
			before := i == 0 || key[i-1] == '/'
			afterIdx := i + len(tok)
			after := afterIdx == len(key) || key[afterIdx] == '/' || key[afterIdx] == '#'
			if before && after {
				return true
			}
		}
	}
	return false
}
