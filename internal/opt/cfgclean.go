package opt

import (
	"regconn/internal/analysis"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// CleanCFG removes unreachable blocks, threads jumps through empty
// BR-only blocks, and merges straight-line block pairs. It reports whether
// anything changed.
func CleanCFG(f *ir.Func) bool {
	changed := false
	for {
		step := false
		if threadJumps(f) {
			step = true
		}
		if removeUnreachable(f) {
			step = true
		}
		if mergeAdjacent(f) {
			step = true
		}
		if dropRedundantBR(f) {
			step = true
		}
		if !step {
			return changed
		}
		changed = true
	}
}

// threadJumps retargets branches that jump to a block containing only an
// unconditional BR.
func threadJumps(f *ir.Func) bool {
	changed := false
	finalTarget := func(t int) int {
		seen := map[int]bool{}
		for {
			b := f.Blocks[t]
			if seen[t] || len(b.Instrs) != 1 || b.Instrs[0].Op != isa.BR {
				return t
			}
			seen[t] = true
			t = b.Instrs[0].Target
		}
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || !(t.Op == isa.BR || t.Op.IsCondBranch()) {
			continue
		}
		if ft := finalTarget(t.Target); ft != t.Target {
			t.Target = ft
			changed = true
		}
	}
	return changed
}

// removeUnreachable deletes blocks not reachable from the entry.
func removeUnreachable(f *ir.Func) bool {
	cfg := analysis.BuildCFG(f)
	reach := cfg.Reachable()
	if reach.Count() == len(f.Blocks) {
		return false
	}
	// Unreachable blocks are never fallthrough successors of reachable
	// ones, so deleting them and compacting preserves all implicit edges.
	remap := make([]int, len(f.Blocks))
	var kept []*ir.Block
	for i, b := range f.Blocks {
		if reach.Has(i) {
			remap[i] = len(kept)
			kept = append(kept, b)
		} else {
			remap[i] = -1
		}
	}
	for _, b := range kept {
		for j := range b.Instrs {
			in := &b.Instrs[j]
			if in.Op == isa.BR || in.Op.IsCondBranch() {
				in.Target = remap[in.Target]
			}
		}
	}
	f.Blocks = kept
	f.Renumber()
	return true
}

// mergeAdjacent merges block pairs (p, p+1) where p ends in BR to p+1 or
// falls through to it, and p+1 has no other predecessors and is not a
// branch target of p itself. Deleting p+1 keeps all other fallthrough
// adjacency intact.
func mergeAdjacent(f *ir.Func) bool {
	cfg := analysis.BuildCFG(f)
	for p := 0; p+1 < len(f.Blocks); p++ {
		b := f.Blocks[p]
		nxt := f.Blocks[p+1]
		preds := cfg.Preds[p+1]
		if len(preds) != 1 || preds[0] != p {
			continue
		}
		t := b.Term()
		switch {
		case t == nil:
			// fallthrough into nxt: splice directly
		case t.Op == isa.BR && t.Target == p+1:
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
		default:
			continue
		}
		b.Instrs = append(b.Instrs, nxt.Instrs...)
		// Delete block p+1, shifting the rest up.
		f.Blocks = append(f.Blocks[:p+1], f.Blocks[p+2:]...)
		f.Renumber()
		for _, bb := range f.Blocks {
			for j := range bb.Instrs {
				in := &bb.Instrs[j]
				if in.Op == isa.BR || in.Op.IsCondBranch() {
					if in.Target > p {
						in.Target--
					}
				}
			}
		}
		return true // CFG changed; caller loops
	}
	return false
}

// dropRedundantBR removes a BR whose target is the next block.
func dropRedundantBR(f *ir.Func) bool {
	changed := false
	for i, b := range f.Blocks {
		if t := b.Term(); t != nil && t.Op == isa.BR && t.Target == i+1 {
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
			changed = true
		}
	}
	return changed
}
