package opt

import (
	"testing"

	"regconn/internal/interp"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// run executes the program's entry function and returns its result.
func run(t *testing.T, p *ir.Program, entry string, args ...int64) int64 {
	t.Helper()
	if err := ir.Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	res, err := interp.Run(p, entry, args, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Ret
}

func countOps(f *ir.Func, op isa.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

func TestConstantFolding(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "f", 0, 0)
	x := b.Const(6)
	y := b.Const(7)
	z := b.Mul(x, y)
	w := b.AddI(z, 8)
	b.Ret(w)

	before := run(t, p, "f")
	Classical(p)
	after := run(t, p, "f")
	if before != after || after != 50 {
		t.Fatalf("results differ: %d vs %d", before, after)
	}
	f := p.Func("f")
	// Everything folds to a single MOVI + RET.
	if got := f.NumInstrs(); got > 2 {
		t.Errorf("instruction count after folding = %d, want <= 2\n%s", got, f)
	}
}

func TestStrengthReduction(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "f", 1, 0)
	b.Ret(b.MulI(b.Param(0), 8))
	Classical(p)
	f := p.Func("f")
	if countOps(f, isa.MUL) != 0 {
		t.Errorf("MUL by 8 not strength-reduced:\n%s", f)
	}
	if countOps(f, isa.SLL) != 1 {
		t.Errorf("expected SLL:\n%s", f)
	}
	if got := run(t, p, "f", 5); got != 40 {
		t.Errorf("f(5) = %d, want 40", got)
	}
}

func TestCopyPropagationAndDCE(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "f", 1, 0)
	x := b.Param(0)
	c1 := b.Mov(x)
	c2 := b.Mov(c1)
	dead := b.AddI(c2, 99) // dead
	_ = dead
	b.Ret(b.AddI(c2, 1))
	Classical(p)
	f := p.Func("f")
	if countOps(f, isa.MOV) != 0 {
		t.Errorf("copies not propagated away:\n%s", f)
	}
	if got := run(t, p, "f", 10); got != 11 {
		t.Errorf("f(10) = %d", got)
	}
}

func TestCSEEliminatesRecomputation(t *testing.T) {
	p := ir.NewProgram()
	g := p.AddGlobal("g", 8)
	b := ir.NewFunc(p, "f", 2, 0)
	x, y := b.Param(0), b.Param(1)
	a1 := b.Add(x, y)
	a2 := b.Add(x, y) // same expression
	base := b.Addr(g, 0)
	b.St(a1, base, 0)
	v1 := b.Ld(base, 0)
	v2 := b.Ld(base, 0) // redundant load
	b.Ret(b.Add(b.Add(a2, v1), v2))
	Classical(p)
	f := p.Func("f")
	if countOps(f, isa.LD) != 1 {
		t.Errorf("redundant load survived:\n%s", f)
	}
	if got := run(t, p, "f", 2, 3); got != 15 {
		t.Errorf("f(2,3) = %d, want 15", got)
	}
}

func TestCSELoadKilledByStore(t *testing.T) {
	p := ir.NewProgram()
	g := p.AddGlobal("g", 16)
	b := ir.NewFunc(p, "f", 1, 0)
	base := b.Addr(g, 0)
	v1 := b.Ld(base, 0)
	b.St(b.Param(0), base, 0) // may alias: kills availability
	v2 := b.Ld(base, 0)
	b.Ret(b.Add(v1, v2))
	Classical(p)
	f := p.Func("f")
	if countOps(f, isa.LD) != 2 {
		t.Errorf("load past a store was wrongly CSEd:\n%s", f)
	}
	if got := run(t, p, "f", 9); got != 9 {
		t.Errorf("f(9) = %d, want 9 (0 + 9)", got)
	}
}

func TestBranchFolding(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "f", 0, 0)
	c := b.Const(5)
	dead := b.NewBlock()
	live := b.NewBlock()
	b.BgtI(c, 3, live) // always taken
	b.SetBlock(dead)
	b.Ret(b.Const(111))
	b.SetBlock(live)
	b.Ret(b.Const(222))

	if got := run(t, p, "f"); got != 222 {
		t.Fatalf("before: %d", got)
	}
	Classical(p)
	if got := run(t, p, "f"); got != 222 {
		t.Fatalf("after: %d", got)
	}
	f := p.Func("f")
	if len(f.Blocks) != 1 {
		t.Errorf("expected everything folded into one block:\n%s", f)
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	p := ir.NewProgram()
	b := ir.NewFunc(p, "f", 2, 0)
	n, k := b.Param(0), b.Param(1)
	s := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	inv := b.Mul(k, k) // loop-invariant multiply
	b.MovTo(s, b.Add(s, inv))
	b.MovTo(i, b.AddI(i, 1))
	b.Blt(i, n, loop)
	exit := b.NewBlock()
	b.SetBlock(exit)
	b.Ret(s)

	want := run(t, p, "f", 10, 3)
	Classical(p)
	got := run(t, p, "f", 10, 3)
	if want != got || got != 90 {
		t.Fatalf("LICM changed semantics: %d vs %d", want, got)
	}
	// The MUL must now execute once per call, not once per iteration.
	f := p.Func("f")
	interp.ClearProfile(p)
	if _, err := interp.Run(p, "f", []int64{10, 3}, interp.Options{Profile: true}); err != nil {
		t.Fatal(err)
	}
	mulWeight := 0.0
	for _, blk := range f.Blocks {
		for j := range blk.Instrs {
			if blk.Instrs[j].Op == isa.MUL || (blk.Instrs[j].Op == isa.SLL && blk.Instrs[j].A == k) {
				mulWeight = blk.Weight
			}
		}
	}
	if mulWeight > 1 {
		t.Errorf("invariant executes %v times, want 1:\n%s", mulWeight, f)
	}
}

func TestLICMRespectsMemoryClobber(t *testing.T) {
	p := ir.NewProgram()
	g := p.AddGlobal("g", 8)
	g.InitI = []int64{1}
	b := ir.NewFunc(p, "f", 1, 0)
	n := b.Param(0)
	base := b.Addr(g, 0)
	s := b.Const(0)
	i := b.Const(0)
	loop := b.NewBlock()
	b.Br(loop)
	b.SetBlock(loop)
	v := b.Ld(base, 0) // NOT invariant: the store below changes it
	b.St(b.AddI(v, 1), base, 0)
	b.MovTo(s, b.Add(s, v))
	b.MovTo(i, b.AddI(i, 1))
	b.Blt(i, n, loop)
	exit := b.NewBlock()
	b.SetBlock(exit)
	b.Ret(s)

	want := run(t, p, "f", 4) // 1+2+3+4 = 10
	Classical(p)
	got := run(t, p, "f", 4)
	if want != got || got != 10 {
		t.Fatalf("load hoisted past store: %d vs %d", want, got)
	}
}

func TestOptPreservesFib(t *testing.T) {
	p := ir.NewProgram()
	fb := ir.NewFunc(p, "fib", 1, 0)
	n := fb.Param(0)
	base := fb.NewBlock()
	rec := fb.NewBlock()
	fb.BgtI(n, 1, rec)
	fb.SetBlock(base)
	fb.Ret(n)
	fb.SetBlock(rec)
	a := fb.Call("fib", fb.SubI(n, 1))
	c := fb.Call("fib", fb.SubI(n, 2))
	fb.Ret(fb.Add(a, c))

	want := run(t, p, "fib", 12)
	Classical(p)
	got := run(t, p, "fib", 12)
	if want != got || got != 144 {
		t.Fatalf("fib broken by opts: %d vs %d", want, got)
	}
}
