package opt

import "regconn/internal/ir"

// Classical runs the full classical optimization pipeline on every function
// of the program: iterated {simplify, CSE, DCE, CFG cleanup} to a fixpoint,
// then loop-invariant code motion, then a final cleanup round. This is the
// "conventional compiler scalar optimization" level used for the paper's
// baseline (§5.3) and the foundation under the ILP transformations.
func Classical(p *ir.Program) {
	for _, f := range p.Funcs {
		classicalFunc(f)
	}
}

func classicalFunc(f *ir.Func) {
	const maxRounds = 20
	fix := func() {
		for i := 0; i < maxRounds; i++ {
			changed := Simplify(f)
			if CSE(f) {
				changed = true
			}
			if DCE(f) {
				changed = true
			}
			if CleanCFG(f) {
				changed = true
			}
			if !changed {
				return
			}
		}
	}
	fix()
	if LICM(f) {
		fix()
	}
}
