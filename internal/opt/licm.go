package opt

import (
	"regconn/internal/analysis"
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// LICM hoists loop-invariant computations into a preheader, innermost
// loops first. Instructions eligible for hoisting are pure, non-trapping
// (DIV/REM are excluded), have invariant operands, are the only definition
// of their destination in the loop, and satisfy the standard safety
// conditions on liveness at the header and the loop exits. Loads are
// hoisted only from loops that contain no stores or calls.
func LICM(f *ir.Func) bool {
	changed := false
	for {
		cfg := analysis.BuildCFG(f)
		idom := cfg.Dominators()
		loops := cfg.NaturalLoops(idom)
		hoisted := false
		// Innermost-first: process deepest loops before their parents.
		for i := len(loops) - 1; i >= 0; i-- {
			if hoistLoop(f, cfg, idom, loops[i]) {
				hoisted = true
				break // CFG changed (preheader inserted); recompute
			}
		}
		if !hoisted {
			return changed
		}
		changed = true
	}
}

func hoistLoop(f *ir.Func, cfg *analysis.CFG, idom []int, l *analysis.Loop) bool {
	lv := analysis.ComputeLiveness(f, cfg)
	ids := lv.IDs

	// Count definitions of each register inside the loop and whether the
	// loop has any memory-clobbering operations.
	defCount := map[int]int{}
	memClobber := false
	l.Blocks.ForEach(func(bi int) {
		for j := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[j]
			if d := in.Def(); d.Valid() {
				defCount[ids.ID(d)]++
			}
			switch in.Op {
			case isa.ST, isa.FST, isa.CALL:
				memClobber = true
			}
		}
	})

	exits := l.Exits(cfg)

	var scratch []isa.Reg
	type cand struct{ block, idx int }
	var toHoist []cand
	hoistedDefs := analysis.NewBitSet(ids.Total)

	invariantReg := func(r isa.Reg) bool {
		id := ids.ID(r)
		return defCount[id] == 0 || hoistedDefs.Has(id)
	}

	// Iterate to a fixpoint so chains of invariants hoist together.
	for again := true; again; {
		again = false
		l.Blocks.ForEach(func(bi int) {
			for j := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[j]
				if !isPure(in.Op) || in.Op == isa.MOV || in.Op == isa.FMOV {
					// MOVs are left for copy propagation.
					continue
				}
				if (in.Op == isa.LD || in.Op == isa.FLD) && memClobber {
					continue
				}
				d := in.Def()
				if !d.Valid() {
					continue
				}
				did := ids.ID(d)
				if hoistedDefs.Has(did) || defCount[did] != 1 {
					continue
				}
				scratch = in.Uses(scratch[:0])
				ok := true
				for _, u := range scratch {
					if !invariantReg(u) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				// Safety: no use-before-def across the back edge.
				if lv.LiveIn[l.Header].Has(did) {
					continue
				}
				// Safety at exits: value dead at the exit target unless the
				// defining block dominates the exit source.
				for _, e := range exits {
					if lv.LiveIn[e[1]].Has(did) && !analysis.Dominates(idom, bi, e[0]) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				hoistedDefs.Add(did)
				toHoist = append(toHoist, cand{bi, j})
				again = true
			}
		})
	}
	if len(toHoist) == 0 {
		return false
	}

	// Build the preheader at the header's layout position; the header and
	// everything after shift down by one.
	pre := insertBlockBefore(f, l.Header)
	for _, c := range toHoist {
		// Block indices from before insertion shift by one if >= header.
		bi := c.block
		if bi >= l.Header {
			bi++
		}
		pre.Append(f.Blocks[bi].Instrs[c.idx])
		f.Blocks[bi].Instrs[c.idx].Op = isa.NOP
	}
	// Strip the NOPs left behind.
	l.Blocks.ForEach(func(old int) {
		bi := old
		if bi >= l.Header {
			bi++
		}
		b := f.Blocks[bi]
		out := b.Instrs[:0]
		for k := range b.Instrs {
			if b.Instrs[k].Op != isa.NOP {
				out = append(out, b.Instrs[k])
			}
		}
		b.Instrs = out
	})
	// Entry edges must enter the preheader; back edges keep targeting the
	// header. insertBlockBefore already redirected branch targets >= pos
	// (+1); branches to the old header position now point at the
	// preheader, which is correct for entry edges but wrong for latches.
	newHeader := l.Header + 1
	l.Blocks.ForEach(func(old int) {
		bi := old
		if bi >= l.Header {
			bi++
		}
		for j := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[j]
			if (in.Op == isa.BR || in.Op.IsCondBranch()) && in.Target == l.Header {
				in.Target = newHeader
			}
		}
	})
	return true
}

// insertBlockBefore inserts a fresh block at index pos. Branch targets are
// adjusted so that control flow is unchanged: targets >= pos+1 (blocks that
// shifted) are incremented; targets == pos still reach the same
// instructions because the new block falls through to the shifted original.
func insertBlockBefore(f *ir.Func, pos int) *ir.Block {
	nb := f.InsertBlock(pos)
	for _, b := range f.Blocks {
		for j := range b.Instrs {
			in := &b.Instrs[j]
			if in.Op == isa.BR || in.Op.IsCondBranch() {
				if in.Target > pos {
					in.Target++
				}
				// Target == pos: falls to the new block, which falls
				// through to the shifted original -> same semantics.
				// Callers decide whether those edges should retarget.
			}
		}
	}
	return nb
}
