// Package opt implements the "full-scale classical" optimizations of the
// paper's prototype compiler (§5.1): constant folding and propagation, copy
// propagation, local common-subexpression elimination, dead-code
// elimination, loop-invariant code motion, strength reduction, and CFG
// cleanup. These run before the ILP transformations (package ilp) and
// before register allocation.
package opt

import (
	"regconn/internal/ir"
	"regconn/internal/isa"
)

// Simplify performs one forward pass of local constant folding, constant
// and copy propagation, algebraic simplification and strength reduction
// over every block. It reports whether anything changed.
func Simplify(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		if simplifyBlock(f, b) {
			changed = true
		}
	}
	return changed
}

type lattice struct {
	consts  map[isa.Reg]int64
	fconsts map[isa.Reg]float64
	copies  map[isa.Reg]isa.Reg // dst -> original source
}

func (l *lattice) kill(r isa.Reg) {
	delete(l.consts, r)
	delete(l.fconsts, r)
	delete(l.copies, r)
	// Any copy whose source is r is now stale.
	for d, s := range l.copies {
		if s == r {
			delete(l.copies, d)
		}
	}
}

// resolve follows copy chains to the oldest still-valid source.
func (l *lattice) resolve(r isa.Reg) isa.Reg {
	for {
		s, ok := l.copies[r]
		if !ok {
			return r
		}
		r = s
	}
}

func simplifyBlock(f *ir.Func, b *ir.Block) bool {
	lat := &lattice{
		consts:  map[isa.Reg]int64{},
		fconsts: map[isa.Reg]float64{},
		copies:  map[isa.Reg]isa.Reg{},
	}
	changed := false
	out := b.Instrs[:0]
	for i := range b.Instrs {
		in := b.Instrs[i]

		// Copy-propagate sources.
		prop := func(r *isa.Reg) {
			if !r.Valid() {
				return
			}
			if s := lat.resolve(*r); s != *r {
				*r = s
				changed = true
			}
		}
		prop(&in.A)
		if !in.UseImm {
			prop(&in.B)
		}
		for k := range in.Args {
			prop(&in.Args[k])
		}

		// Immediate-ize integer second operands.
		if !in.UseImm && in.B.Valid() && in.B.Class == isa.ClassInt && opTakesImm(in.Op) {
			if c, ok := lat.consts[in.B]; ok {
				in.B = isa.Reg{}
				in.Imm = c
				in.UseImm = true
				changed = true
			}
		}

		// Fold / simplify.
		if rep, ok := foldInstr(&in, lat); ok {
			in = rep
			changed = true
		}

		// Conditional branch on constants: fold to BR or drop.
		if in.Op.IsCondBranch() && in.Op.Kind() == isa.KindBranch {
			if in.UseImm {
				if c, ok := lat.consts[in.A]; ok {
					if takenConst(in.Op, c, in.Imm) {
						in = isa.Instr{Op: isa.BR, Target: in.Target}
					} else {
						changed = true
						continue // branch never taken: delete
					}
					changed = true
				}
			}
		}

		// Update lattice with this instruction's effect.
		if d := in.Def(); d.Valid() {
			lat.kill(d)
			switch in.Op {
			case isa.MOVI:
				lat.consts[d] = in.Imm
			case isa.FMOVI:
				lat.fconsts[d] = in.FImm()
			case isa.MOV, isa.FMOV:
				if in.A != d {
					lat.copies[d] = in.A
				}
			}
		}
		out = append(out, in)
	}
	b.Instrs = out
	return changed
}

func opTakesImm(op isa.Op) bool {
	switch op {
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR, isa.XOR,
		isa.SLL, isa.SRL, isa.SRA, isa.SLT,
		isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE:
		return true
	}
	return false
}

// foldInstr applies constant folding, algebraic identity and strength
// reduction rules. It returns the replacement instruction and whether a
// rewrite happened.
func foldInstr(in *isa.Instr, lat *lattice) (isa.Instr, bool) {
	movi := func(v int64) (isa.Instr, bool) {
		return isa.Instr{Op: isa.MOVI, Dst: in.Dst, Imm: v}, true
	}
	mov := func(src isa.Reg) (isa.Instr, bool) {
		if src == in.Dst {
			return isa.Instr{Op: isa.NOP}, true
		}
		op := isa.MOV
		if in.Dst.Class == isa.ClassFloat {
			op = isa.FMOV
		}
		return isa.Instr{Op: op, Dst: in.Dst, A: src}, true
	}

	switch in.Op {
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR, isa.XOR,
		isa.SLL, isa.SRL, isa.SRA, isa.SLT:
		ca, aConst := lat.consts[in.A]
		var cb int64
		bConst := in.UseImm
		if bConst {
			cb = in.Imm
		} else if c, ok := lat.consts[in.B]; ok {
			cb, bConst = c, true
		}
		if aConst && bConst {
			if v, ok := evalInt(in.Op, ca, cb); ok {
				return movi(v)
			}
		}
		if bConst {
			switch {
			case in.Op == isa.ADD && cb == 0,
				in.Op == isa.SUB && cb == 0,
				in.Op == isa.OR && cb == 0,
				in.Op == isa.XOR && cb == 0,
				in.Op == isa.SLL && cb == 0,
				in.Op == isa.SRL && cb == 0,
				in.Op == isa.SRA && cb == 0,
				in.Op == isa.MUL && cb == 1,
				in.Op == isa.DIV && cb == 1:
				return mov(in.A)
			case in.Op == isa.MUL && cb == 0, in.Op == isa.AND && cb == 0:
				return movi(0)
			case in.Op == isa.MUL && cb > 1 && cb&(cb-1) == 0:
				// Strength reduction: multiply by power of two.
				sh := 0
				for v := cb; v > 1; v >>= 1 {
					sh++
				}
				return isa.Instr{Op: isa.SLL, Dst: in.Dst, A: in.A, Imm: int64(sh), UseImm: true}, true
			}
		}
		if aConst && ca == 0 && in.Op == isa.ADD && !in.UseImm {
			return mov(in.B)
		}
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		fa, aOK := lat.fconsts[in.A]
		fb, bOK := lat.fconsts[in.B]
		if aOK && bOK {
			var v float64
			switch in.Op {
			case isa.FADD:
				v = fa + fb
			case isa.FSUB:
				v = fa - fb
			case isa.FMUL:
				v = fa * fb
			case isa.FDIV:
				v = fa / fb
			}
			rep := isa.Instr{Op: isa.FMOVI, Dst: in.Dst}
			rep.SetFImm(v)
			return rep, true
		}
	case isa.CVTIF:
		if c, ok := lat.consts[in.A]; ok {
			rep := isa.Instr{Op: isa.FMOVI, Dst: in.Dst}
			rep.SetFImm(float64(c))
			return rep, true
		}
	}
	return *in, false
}

func evalInt(op isa.Op, a, b int64) (int64, bool) {
	switch op {
	case isa.ADD:
		return a + b, true
	case isa.SUB:
		return a - b, true
	case isa.MUL:
		return a * b, true
	case isa.DIV:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case isa.REM:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case isa.AND:
		return a & b, true
	case isa.OR:
		return a | b, true
	case isa.XOR:
		return a ^ b, true
	case isa.SLL:
		return a << uint64(b&63), true
	case isa.SRL:
		return int64(uint64(a) >> uint64(b&63)), true
	case isa.SRA:
		return a >> uint64(b&63), true
	case isa.SLT:
		if a < b {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func takenConst(op isa.Op, a, b int64) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return a < b
	case isa.BLE:
		return a <= b
	case isa.BGT:
		return a > b
	case isa.BGE:
		return a >= b
	}
	return false
}
