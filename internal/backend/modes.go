package backend

import (
	"regconn/internal/codegen"
	"regconn/internal/machine"
	"regconn/internal/regalloc"
	"regconn/internal/sched"
)

func init() {
	Register(unlimitedBackend{})
	Register(spillBackend{})
	Register(rcBackend{})
	Register(portReduceBackend{})
	Register(chainBackend{})
}

// baseCodegen fills the fields every lowering shares; Conv is the
// caller's.
func baseCodegen(p Params, mode regalloc.Mode) codegen.Config {
	return codegen.Config{
		Mode:            mode,
		Model:           p.Model,
		CombineConnects: p.CombineConnects,
		Windows:         p.Windows,
	}
}

// readPorts resolves the portreduce port count: the configured value or
// the issue rate, clamped to two so a two-source instruction can always
// issue.
func readPorts(p Params) int {
	n := p.ReadPorts
	if n == 0 {
		n = p.Issue
	}
	if n < 2 {
		n = 2
	}
	return n
}

// unlimitedBackend is the idealized machine: every virtual register gets
// its own physical register and the file grows to demand.
type unlimitedBackend struct{}

func (unlimitedBackend) ID() ID                   { return Unlimited }
func (unlimitedBackend) Name() string             { return "unlimited" }
func (unlimitedBackend) Display() string          { return "unlimited" }
func (unlimitedBackend) AllocMode() regalloc.Mode { return regalloc.Unlimited }
func (unlimitedBackend) UsesRC() bool             { return false }
func (unlimitedBackend) File(p Params) File {
	return File{IntTotal: p.TotalRegs, FPTotal: p.TotalRegs, GrowToDemand: true}
}
func (unlimitedBackend) Codegen(p Params) codegen.Config {
	return baseCodegen(p, regalloc.Unlimited)
}
func (unlimitedBackend) Sched(p Params, base sched.Config) sched.Config {
	base.UnlimitedMode = true
	return base
}
func (unlimitedBackend) Machine(p Params, base machine.Config) machine.Config {
	// The mapping table is identity over the whole file.
	base.IntCore = base.IntTotal
	base.FPCore = base.FPTotal
	return base
}
func (unlimitedBackend) Finish(mp *codegen.MProg, p Params) error { return nil }

// spillBackend is the conventional machine: core registers only, the rest
// spilled to the stack.
type spillBackend struct{}

func (spillBackend) ID() ID                   { return WithoutRC }
func (spillBackend) Name() string             { return "spill" }
func (spillBackend) Display() string          { return "without-RC" }
func (spillBackend) AllocMode() regalloc.Mode { return regalloc.Spill }
func (spillBackend) UsesRC() bool             { return false }
func (spillBackend) File(p Params) File {
	return File{IntTotal: p.IntCore, FPTotal: p.FPCore}
}
func (spillBackend) Codegen(p Params) codegen.Config {
	return baseCodegen(p, regalloc.Spill)
}
func (spillBackend) Sched(p Params, base sched.Config) sched.Config { return base }
func (spillBackend) Machine(p Params, base machine.Config) machine.Config {
	base.IntTotal, base.FPTotal = p.IntCore, p.FPCore
	return base
}
func (spillBackend) Finish(mp *codegen.MProg, p Params) error { return nil }

// rcBackend is the paper's register-connection machine: a core file
// extended through the mapping table by connect instructions.
type rcBackend struct{}

func (rcBackend) ID() ID                   { return WithRC }
func (rcBackend) Name() string             { return "rc" }
func (rcBackend) Display() string          { return "with-RC" }
func (rcBackend) AllocMode() regalloc.Mode { return regalloc.RC }
func (rcBackend) UsesRC() bool             { return true }
func (rcBackend) File(p Params) File {
	return File{IntTotal: p.TotalRegs, FPTotal: p.TotalRegs}
}
func (rcBackend) Codegen(p Params) codegen.Config {
	return baseCodegen(p, regalloc.RC)
}
func (rcBackend) Sched(p Params, base sched.Config) sched.Config       { return base }
func (rcBackend) Machine(p Params, base machine.Config) machine.Config { return base }
func (rcBackend) Finish(mp *codegen.MProg, p Params) error             { return nil }

// portReduceBackend exposes the whole file directly (no connects, no
// mapping table) but constrains issue by the number of register-file read
// ports, with operand-sharing credit: distinct registers read per cycle,
// not operand slots (arXiv 2502.00147).
type portReduceBackend struct{}

func (portReduceBackend) ID() ID                   { return PortReduce }
func (portReduceBackend) Name() string             { return "portreduce" }
func (portReduceBackend) Display() string          { return "portreduce" }
func (portReduceBackend) AllocMode() regalloc.Mode { return regalloc.RC }
func (portReduceBackend) UsesRC() bool             { return false }
func (portReduceBackend) File(p Params) File {
	return File{IntTotal: p.TotalRegs, FPTotal: p.TotalRegs}
}
func (portReduceBackend) Codegen(p Params) codegen.Config {
	cfg := baseCodegen(p, regalloc.RC)
	cfg.DirectExtended = true
	return cfg
}
func (portReduceBackend) Sched(p Params, base sched.Config) sched.Config {
	base.ReadPorts = readPorts(p)
	return base
}
func (portReduceBackend) Machine(p Params, base machine.Config) machine.Config {
	// Identity map over the whole file; the port count is the hazard.
	base.IntCore = base.IntTotal
	base.FPCore = base.FPTotal
	base.ReadPorts = readPorts(p)
	return base
}
func (portReduceBackend) Finish(mp *codegen.MProg, p Params) error { return nil }

// chainBackend forwards a single-use producer value straight to the next
// instruction, eliding the register-file write/read pair
// (arXiv 2503.20609). Allocation and lowering are the spill machine's; a
// post-schedule pass marks the forwardable pairs.
type chainBackend struct{}

func (chainBackend) ID() ID                   { return Chain }
func (chainBackend) Name() string             { return "chain" }
func (chainBackend) Display() string          { return "chain" }
func (chainBackend) AllocMode() regalloc.Mode { return regalloc.Spill }
func (chainBackend) UsesRC() bool             { return false }
func (chainBackend) File(p Params) File {
	return File{IntTotal: p.IntCore, FPTotal: p.FPCore}
}
func (chainBackend) Codegen(p Params) codegen.Config {
	cfg := baseCodegen(p, regalloc.Spill)
	cfg.Chain = true
	return cfg
}
func (chainBackend) Sched(p Params, base sched.Config) sched.Config { return base }
func (chainBackend) Machine(p Params, base machine.Config) machine.Config {
	base.IntTotal, base.FPTotal = p.IntCore, p.FPCore
	base.Chain = true
	return base
}
func (chainBackend) Finish(mp *codegen.MProg, p Params) error {
	for _, f := range mp.Funcs {
		codegen.MarkChains(f)
	}
	return nil
}
