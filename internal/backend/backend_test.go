package backend

import (
	"strings"
	"testing"

	"regconn/internal/regalloc"
	"regconn/internal/sched"
)

func TestRegistryRoundTrip(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("registry holds %d backends, want 5: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, name := range names {
		be, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if be.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, be.Name())
		}
		byID, err := ByID(be.ID())
		if err != nil || byID != be {
			t.Errorf("ByID(%v) = %v, %v; want the %q backend", be.ID(), byID, err, name)
		}
		if be.ID().String() != be.Display() {
			t.Errorf("%q: ID.String() = %q, want display %q", name, be.ID().String(), be.Display())
		}
	}
}

func TestLegacyDisplayStrings(t *testing.T) {
	// rcrun -stats JSON and the text reports print Mode.String(); these
	// exact strings are load-bearing output compatibility.
	want := map[ID]string{
		Unlimited:  "unlimited",
		WithoutRC:  "without-RC",
		WithRC:     "with-RC",
		PortReduce: "portreduce",
		Chain:      "chain",
	}
	for id, display := range want {
		if got := id.String(); got != display {
			t.Errorf("ID(%d).String() = %q, want %q", uint8(id), got, display)
		}
	}
	if got := ID(250).String(); got != "RegMode(250)" {
		t.Errorf("unknown id String() = %q", got)
	}
}

func TestUnknownNameListsRegistry(t *testing.T) {
	_, err := ByName("bogus")
	if err == nil {
		t.Fatal("ByName(bogus) succeeded")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name backend %q", err, name)
		}
	}
	if _, err := ByID(ID(250)); err == nil {
		t.Error("ByID(250) succeeded")
	}
}

func TestBackendContracts(t *testing.T) {
	p := Params{Issue: 4, IntCore: 16, FPCore: 32, TotalRegs: TotalRegs}
	for _, name := range Names() {
		be, _ := ByName(name)
		f := be.File(p)
		if f.IntTotal < p.IntCore || f.FPTotal < p.FPCore {
			t.Errorf("%s: file (%d,%d) smaller than the core file", name, f.IntTotal, f.FPTotal)
		}
		if be.UsesRC() != (be.AllocMode() == regalloc.RC && !be.Codegen(p).DirectExtended) {
			t.Errorf("%s: UsesRC()=%v inconsistent with alloc mode %v", name, be.UsesRC(), be.AllocMode())
		}
	}

	// Scheme-specific knobs land where they should.
	unl, _ := ByName("unlimited")
	if !unl.Sched(p, sched.Config{}).UnlimitedMode {
		t.Error("unlimited backend does not set the scheduler's unlimited mode")
	}
	pr, _ := ByName("portreduce")
	if got := pr.Sched(p, sched.Config{}).ReadPorts; got != p.Issue {
		t.Errorf("portreduce default read ports = %d, want issue rate %d", got, p.Issue)
	}
	narrow := p
	narrow.ReadPorts = 1
	if got := pr.Sched(narrow, sched.Config{}).ReadPorts; got != 2 {
		t.Errorf("read ports clamp: got %d, want 2", got)
	}
	ch, _ := ByName("chain")
	if !ch.Codegen(p).Chain {
		t.Error("chain backend does not request chain marking")
	}
}
