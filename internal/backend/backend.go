// Package backend defines the register-architecture seam of the pipeline.
// A Backend owns every per-scheme decision that used to be a switch on the
// three-way register mode smeared across regconn.Build, the register
// allocator, the code generator, the scheduler, the simulator, and the
// static verifier: how the register file is shaped, which allocation
// strategy runs, how lowering annotates the code, what structural
// constraints the scheduler and the machine model enforce, and what
// contract mapcheck verifies.
//
// Backends register themselves by name at init time; the public regconn
// package resolves an Arch to a Backend through this registry, and the
// CLI layer derives its accepted-name set (and error messages) from the
// same registry so tool validation cannot drift from the registered set.
package backend

import (
	"fmt"
	"sort"
	"strings"

	"regconn/internal/codegen"
	"regconn/internal/core"
	"regconn/internal/machine"
	"regconn/internal/regalloc"
	"regconn/internal/sched"
)

// TotalRegs is the full physical register file size under the extended
// schemes (paper §5.2: "the register file is assumed to contain a total of
// 256 registers").
const TotalRegs = 256

// ID is the numeric identity of a backend. The first three values are the
// legacy RegMode enum and must keep their order: serialized Arch values
// (rcserve canonical point keys) and every published experiment identify
// configurations by these numbers.
type ID uint8

const (
	// Unlimited gives every virtual register its own physical register
	// (the paper's idealized dotted lines and the 1-issue baseline).
	Unlimited ID = iota
	// WithoutRC uses only the core registers and spills the rest.
	WithoutRC
	// WithRC extends the core with connect-accessed extended registers
	// for a 256-register total file (paper §5.2).
	WithRC
	// PortReduce exposes the whole 256-register file directly but models
	// a reduced number of register-file read ports as an issue-stage
	// structural hazard with operand-sharing credit (arXiv 2502.00147).
	PortReduce
	// Chain forwards single-use producer values straight to the next
	// instruction, eliding the register-file write/read pair
	// (arXiv 2503.20609).
	Chain
)

// String renders the backend's display name, driven by the registry so it
// cannot drift from the registered set. Unknown values render as
// "RegMode(n)" rather than a sentinel.
func (m ID) String() string {
	if be, err := ByID(m); err == nil {
		return be.Display()
	}
	return fmt.Sprintf("RegMode(%d)", uint8(m))
}

// Params is the architecture slice a backend's hooks consume: the knobs
// that shape the register file and the scheme-specific machinery, already
// normalized by the caller.
type Params struct {
	Issue   int
	IntCore int
	FPCore  int

	// TotalRegs is the full file size available to extending schemes
	// (the paper's 256).
	TotalRegs int

	Model           core.Model
	ConnectLatency  int
	CombineConnects bool
	Windows         codegen.WindowPolicy

	// ReadPorts is the register-file read-port count for the portreduce
	// backend (0 = default to the issue rate).
	ReadPorts int
}

// File is a backend's register-file shaping decision: the total counts fed
// to abi.New alongside the architecture's core counts.
type File struct {
	IntTotal int
	FPTotal  int

	// GrowToDemand marks the idealized file: after allocation the machine
	// totals shrink (or grow) to the program's actual demand, clamped to
	// the core counts.
	GrowToDemand bool
}

// Backend is one register-architecture scheme. Hooks are called in
// pipeline order: File → AllocMode → Codegen → Sched → Finish → Machine.
type Backend interface {
	// ID returns the scheme's numeric identity (the RegMode value).
	ID() ID
	// Name returns the registry/CLI key ("rc", "spill", "unlimited",
	// "portreduce", "chain").
	Name() string
	// Display returns the human-readable name used in reports and stats
	// output ("with-RC", "without-RC", ...).
	Display() string

	// File shapes the register file handed to abi.New.
	File(p Params) File
	// AllocMode selects the register-allocation strategy.
	AllocMode() regalloc.Mode
	// Codegen returns the lowering configuration. The caller fills Conv.
	Codegen(p Params) codegen.Config
	// Sched adjusts the scheduler configuration (base carries the
	// machine-independent fields already filled by the caller).
	Sched(p Params, base sched.Config) sched.Config
	// Machine adjusts the simulator configuration (base carries the
	// architecture-independent fields already filled by the caller,
	// including the post-allocation register totals).
	Machine(p Params, base machine.Config) machine.Config
	// Finish runs after scheduling (and also when scheduling is
	// disabled), before static verification — the hook for post-schedule
	// annotation passes such as chain marking.
	Finish(mp *codegen.MProg, p Params) error
	// UsesRC reports whether the scheme carries RC mapping-table state
	// that the operating-system model must save and restore (§4.2).
	UsesRC() bool
}

var (
	byName = map[string]Backend{}
	byID   = map[ID]Backend{}
)

// Register adds a backend to the registry. It is meant to be called from
// init functions and panics on duplicate names or IDs.
func Register(be Backend) {
	if _, dup := byName[be.Name()]; dup {
		panic(fmt.Sprintf("backend: duplicate name %q", be.Name()))
	}
	if _, dup := byID[be.ID()]; dup {
		panic(fmt.Sprintf("backend: duplicate id %d", be.ID()))
	}
	byName[be.Name()] = be
	byID[be.ID()] = be
}

// ByName resolves a backend by its registry key. The error lists the
// registered names so callers can surface it directly.
func ByName(name string) (Backend, error) {
	if be, ok := byName[name]; ok {
		return be, nil
	}
	return nil, fmt.Errorf("unknown mode %q (want %s)", name, NameList())
}

// ByID resolves a backend by its numeric identity.
func ByID(id ID) (Backend, error) {
	if be, ok := byID[id]; ok {
		return be, nil
	}
	return nil, fmt.Errorf("unknown register mode %d (want %s)", uint8(id), NameList())
}

// Names returns the registered backend names, sorted.
func Names() []string {
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NameList renders the registered names as an "a, b, or c" list for error
// messages and usage strings.
func NameList() string {
	names := Names()
	switch len(names) {
	case 0:
		return "(none registered)"
	case 1:
		return names[0]
	case 2:
		return names[0] + " or " + names[1]
	}
	return strings.Join(names[:len(names)-1], ", ") + ", or " + names[len(names)-1]
}
