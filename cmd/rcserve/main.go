// Command rcserve is the simulation-as-a-service daemon: it serves the
// experiment runner over HTTP with result caching, an optional persistent
// result store, request coalescing, a bounded worker pool, per-request
// deadlines, consistent-hash sweep sharding across replicas, and graceful
// drain.
//
// Usage:
//
//	rcserve [-addr :8347] [-cache 1024] [-workers n] [-timeout 2m]
//	        [-store-dir DIR] [-peers URL,URL,...] [-self URL]
//	        [-trace] [-trace-dir DIR] [-trace-keep 64]
//	        [-log text|json|off] [-slow 2s]
//
// Endpoints:
//
//	POST /v1/run          one benchmark × arch point → stats JSON
//	POST /v1/sweep        a grid, streamed back as NDJSON
//	GET  /v1/sweeps       live sweep progress (completed/total, per peer)
//	GET  /v1/figures/{id} a regenerated paper figure (table1, fig7, ...)
//	GET  /healthz         readiness (503 while draining)
//	GET  /metrics         expvar JSON; ?format=prometheus for text exposition
//	GET  /debug/trace     retained request traces as Chrome trace JSON
//
// Every response carries an X-Request-ID (the client's own, when it sent
// a valid one). With -trace, run/sweep/figures requests record span
// trees — cache lookup, store read, flight, simulate, store append, peer
// forward — exported via /debug/trace and, with -trace-dir, written per
// request as Chrome trace-event JSON. With -log, structured request logs
// (request ID, route, cache state, duration) go to stderr; requests
// slower than -slow log at Warn.
//
// With -store-dir, completed points are appended to a crash-recoverable
// segment store and survive restarts: a re-run sweep answers every
// previously completed point as a byte-identical X-Cache: HIT. With
// -peers/-self, N replicas split a sweep's points by consistent key hash
// (every replica must get the same -peers list). On SIGINT/SIGTERM the
// daemon flips /healthz to draining, stops accepting connections, and
// gives inflight requests up to the shutdown grace period to finish. See
// DESIGN.md §11 for the API and §14 for the store format.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"regconn/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8347", "listen address")
		cache    = flag.Int("cache", 1024, "result cache size in entries")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = all CPUs)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-request simulation deadline (0 = none)")
		grace    = flag.Duration("grace", 30*time.Second, "shutdown grace period for inflight requests")
		storeDir = flag.String("store-dir", "", "persistent result store directory (empty = memory only)")
		peers    = flag.String("peers", "", "comma-separated base URLs of every replica, including this one (empty = unsharded)")
		self     = flag.String("self", "", "this replica's entry in -peers (required with -peers)")
		trace    = flag.Bool("trace", false, "trace requests; export via GET /debug/trace")
		traceDir = flag.String("trace-dir", "", "also write each request trace as <id>.trace.json here (implies -trace)")
		keep     = flag.Int("trace-keep", 64, "finished traces retained in memory for /debug/trace")
		logFmt   = flag.String("log", "off", "structured request log format: text, json, or off")
		slow     = flag.Duration("slow", 2*time.Second, "slow-request log threshold")
	)
	flag.Parse()

	var logger *slog.Logger
	switch *logFmt {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "off":
	default:
		return fmt.Errorf("-log must be text, json, or off (got %q)", *logFmt)
	}

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			p = strings.TrimRight(strings.TrimSpace(p), "/")
			if p == "" {
				return fmt.Errorf("-peers contains an empty entry")
			}
			peerList = append(peerList, p)
		}
		if *self == "" {
			return fmt.Errorf("-peers requires -self (this replica's own base URL)")
		}
	}
	sv, err := serve.New(serve.Config{
		CacheSize:     *cache,
		Workers:       *workers,
		Timeout:       *timeout,
		StoreDir:      *storeDir,
		Peers:         peerList,
		Self:          strings.TrimRight(*self, "/"),
		Trace:         *trace,
		TraceDir:      *traceDir,
		TraceKeep:     *keep,
		Logger:        logger,
		SlowThreshold: *slow,
	})
	if err != nil {
		return err
	}
	defer sv.Close()
	expvar.Publish("rcserve", sv.Metrics())

	httpSrv := &http.Server{Addr: *addr, Handler: sv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "rcserve: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // bind failure or unexpected server exit
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "rcserve: draining")
	sv.SetDraining()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "rcserve: drained")
	return nil
}
