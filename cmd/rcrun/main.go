// Command rcrun compiles and simulates one benchmark under one
// architecture configuration and reports cycles, IPC, and the RC
// statistics.
//
// Usage:
//
//	rcrun -bench grep [-issue 4] [-load 2] [-channels 0] [-intcore 16]
//	      [-fpcore 32] [-mode rc|spill|unlimited|portreduce|chain]
//	      [-readports 0] [-model 3] [-connect-latency 0] [-extra-stage]
//	      [-no-combine] [-scalar] [-stats] [-prof] [-top 20]
//	      [-trace-json FILE] [-emit-trace FILE]
//
// -bench accepts the paper benchmarks ("grep") and generated workloads
// ("gen/<profile>/<seed>", see internal/workload; -list shows both).
// -emit-trace records the compiled, oracle-verified run as a replayable
// instruction trace (the rctrace format; replay with rcgen or POST
// /v1/replay) and prints its key.
//
// -stats replaces the text report with a machine-readable JSON document:
// the full cycle ledger (stall breakdown), the per-cycle issue-slot
// utilization histogram, and the map-table telemetry. -prof appends the
// per-PC attribution report (hot PCs, blocks, per-function stall tables,
// connect overhead per vreg; see cmd/rcprof for the full profiler).
// -trace-json writes a Chrome trace-event timeline of the run, loadable in
// chrome://tracing or ui.perfetto.dev.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"regconn"
	"regconn/internal/bench"
	"regconn/internal/cli"
	"regconn/internal/isa"
	"regconn/internal/machine"
	"regconn/internal/prof"
	"regconn/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rcrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bmName   = flag.String("bench", "grep", "benchmark name (see -list)")
		list     = flag.Bool("list", false, "list benchmarks and exit")
		issue    = flag.Int("issue", 4, "issue rate (1/2/4/8)")
		load     = flag.Int("load", 2, "load latency in cycles (2 or 4)")
		channels = flag.Int("channels", 0, "memory channels (0 = paper default)")
		intCore  = flag.Int("intcore", 16, "core integer registers")
		fpCore   = flag.Int("fpcore", 32, "core floating-point registers")
		mode     = flag.String("mode", "rc", "register backend: "+strings.Join(cli.ModeNames(), ", "))
		ports    = flag.Int("readports", 0, "register-file read ports for portreduce (0 = issue rate)")
		model    = flag.Int("model", 3, "RC automatic-reset model 1..4")
		connLat  = flag.Int("connect-latency", 0, "connect latency (0 or 1)")
		stage    = flag.Bool("extra-stage", false, "extra decode pipeline stage")
		noComb   = flag.Bool("no-combine", false, "disable combined connects")
		scalar   = flag.Bool("scalar", false, "scalar optimization only (no ILP)")
		trace    = flag.Int64("trace", 0, "print a per-cycle issue trace for the first N cycles")
		stats    = flag.Bool("stats", false, "emit machine-readable JSON statistics instead of text")
		profFlag = flag.Bool("prof", false, "append the per-PC cycle attribution report")
		top      = flag.Int("top", 20, "rows in the -prof top tables")
		traceOut = flag.String("trace-json", "", "write a Chrome trace-event JSON timeline to FILE")
		emit     = flag.String("emit-trace", "", "write a replayable instruction trace (rctrace format) to FILE")
	)
	flag.Parse()

	if *list {
		for _, b := range bench.All() {
			kind := "int"
			if b.FP {
				kind = "fp"
			}
			fmt.Printf("%-10s (%s, stands in for %s)\n", b.Name, kind, b.Paper)
		}
		fmt.Println("generated workloads: gen/<profile>/<seed> with profile one of:")
		for _, pr := range workload.Profiles() {
			fmt.Printf("  %-18s %s\n", pr.Name, pr.About)
		}
		return nil
	}

	bm, err := workload.ByName(*bmName)
	if err != nil {
		return err
	}
	rcModel, err := cli.ParseModel(*model)
	if err != nil {
		return err
	}
	arch := regconn.Arch{
		Issue:            *issue,
		MemChannels:      *channels,
		LoadLatency:      *load,
		IntCore:          *intCore,
		FPCore:           *fpCore,
		Model:            rcModel,
		ConnectLatency:   *connLat,
		ExtraDecodeStage: *stage,
		CombineConnects:  !*noComb,
		ScalarOnly:       *scalar,
		ReadPorts:        *ports,
	}
	if arch.Mode, err = cli.ParseMode(*mode); err != nil {
		return err
	}

	arch.Profile = *profFlag
	ex, err := regconn.Build(bm.Build(), arch)
	if err != nil {
		return err
	}
	if *emit != "" {
		tr, err := ex.Trace(bm.Name)
		if err != nil {
			return err
		}
		f, err := os.Create(*emit)
		if err != nil {
			return err
		}
		key, err := tr.Encode(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rcrun: wrote %s (key %s, %d cycles, %d instrs)\n",
			*emit, key, tr.Cycles, tr.Instrs)
	}
	if *traceOut != "" {
		ring := machine.NewEventRing(0)
		if _, err := ex.RunWithEvents(ring); err != nil {
			return err
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := ring.WriteTraceJSON(f, ex.Image); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rcrun: wrote %s (%d events, %d dropped)\n",
			*traceOut, len(ring.Events()), ring.Dropped())
	}
	if *trace > 0 {
		if _, err := ex.RunWithTrace(os.Stdout, *trace); err != nil {
			return err
		}
	}
	res, err := ex.Verify()
	if err != nil {
		return err
	}
	if err := res.CheckLedger(); err != nil {
		return err
	}

	if *stats {
		out := struct {
			Benchmark string        `json:"benchmark"`
			Mode      string        `json:"mode"`
			Stats     machine.Stats `json:"stats"`
		}{bm.Name, arch.Mode.String(), res.Stats()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Printf("benchmark   %s (stands in for %s)\n", bm.Name, bm.Paper)
	fmt.Printf("arch        %d-issue, %d mem channels, %d-cycle load, %s, int=%d fp=%d\n",
		ex.Arch.Issue, ex.Arch.MemChannels, ex.Arch.LoadLatency, arch.Mode, *intCore, *fpCore)
	if arch.Mode == regconn.WithRC {
		fmt.Printf("rc          model %v, %d-cycle connects, extra stage %v, combined %v\n",
			arch.Model, arch.ConnectLatency, arch.ExtraDecodeStage, arch.CombineConnects)
	}
	fmt.Printf("result      %d (verified against interpreter)\n", res.RetInt)
	fmt.Printf("cycles      %d\n", res.Cycles)
	fmt.Printf("instrs      %d (IPC %.2f)\n", res.Instrs, res.IPC())
	fmt.Printf("mem ops     %d\n", res.MemOps)
	fmt.Printf("connects    %d dynamic (%d static)\n", res.Connects, ex.ConnectInstrs)
	fmt.Printf("mispredicts %d\n", res.Mispredicts)
	fmt.Printf("code size   %d -> %d (+%.1f%%, save/restore +%.1f%%)\n",
		ex.PreAllocSize, ex.PostAllocSize, ex.CodeGrowth()*100, ex.SaveRestoreGrowth()*100)
	fmt.Printf("stalls      data=%d mem=%d connect=%d branch=%d\n",
		res.StallData, res.StallMem, res.StallConn, res.StallBranch)
	if arch.Mode == regconn.PortReduce {
		rp := arch.ReadPorts
		if rp <= 0 {
			rp = arch.Issue
		}
		fmt.Printf("read ports  %d per class (port-limited cycles %d, port stalls %d)\n",
			rp, res.PortLimitedCycles, res.StallPorts)
	}
	if arch.Mode == regconn.Chain {
		fmt.Printf("chaining    %d pairs, %d register-file reads elided\n",
			res.ChainPairs, res.ChainElidedReads)
	}
	hist := make([]string, len(res.IssueHist))
	for k, c := range res.IssueHist {
		hist[k] = fmt.Sprintf("%d:%d", k, c)
	}
	fmt.Printf("issue slots %s (cycles issuing k instructions)\n", strings.Join(hist, " "))
	fmt.Printf("op mix      alu=%d mul=%d div=%d fp=%d load=%d store=%d branch=%d call=%d connect=%d\n",
		res.MixOf(isa.KindIntALU), res.MixOf(isa.KindIntMul), res.MixOf(isa.KindIntDiv),
		res.MixOf(isa.KindFPALU)+res.MixOf(isa.KindFPMul)+res.MixOf(isa.KindFPDiv)+res.MixOf(isa.KindFPConv),
		res.MixOf(isa.KindLoad), res.MixOf(isa.KindStore),
		res.MixOf(isa.KindBranch), res.MixOf(isa.KindCall), res.MixOf(isa.KindConnect))

	if *profFlag {
		p, err := prof.New(ex.Image, res)
		if err != nil {
			return err
		}
		fmt.Println()
		if err := p.WriteReport(os.Stdout, *top); err != nil {
			return err
		}
	}
	return nil
}
