// Command rcgen works with generated workloads and instruction traces:
// it lists the scenario-generator profiles, emits replayable traces,
// inspects and replays trace files, and runs the bounded scenario smoke
// that make verify uses to pin the generator against the interpreter
// oracle and the cycle ledger.
//
// Usage:
//
//	rcgen list
//	rcgen emit -profile connect-heavy -seed 42 -o FILE [arch flags]
//	rcgen info FILE
//	rcgen replay FILE
//	rcgen smoke [-seeds 3] [-profiles p1,p2]
//
// Arch flags on emit: -issue, -load, -intcore, -fpcore, -mode,
// -readports, -model. emit accepts -bench NAME instead of
// -profile/-seed to trace a paper benchmark.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"regconn"
	"regconn/internal/cli"
	"regconn/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "emit":
		err = emit(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	case "smoke":
		err = smoke(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rcgen: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcgen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rcgen list                                  list workload profiles
  rcgen emit -profile P -seed N -o FILE       emit a replayable trace
  rcgen info FILE                             describe a trace file
  rcgen replay FILE                           replay and verify a trace
  rcgen smoke [-seeds N] [-profiles p1,p2]    oracle+ledger smoke over profiles`)
}

func list() error {
	for _, pr := range workload.Profiles() {
		kind := "int"
		if pr.FP {
			kind = "fp"
		}
		fmt.Printf("%-18s (%s) %s\n", pr.Name, kind, pr.About)
	}
	return nil
}

// archFlags registers the architecture flags shared by emit and smoke and
// returns a closure resolving them into an Arch.
func archFlags(fs *flag.FlagSet) func() (regconn.Arch, error) {
	var (
		issue   = fs.Int("issue", 4, "issue rate")
		load    = fs.Int("load", 2, "load latency")
		intCore = fs.Int("intcore", 16, "core integer registers")
		fpCore  = fs.Int("fpcore", 32, "core floating-point registers")
		mode    = fs.String("mode", "rc", "register backend: "+strings.Join(cli.ModeNames(), ", "))
		ports   = fs.Int("readports", 0, "read ports for portreduce (0 = issue rate)")
		model   = fs.Int("model", 3, "RC automatic-reset model 1..4")
	)
	return func() (regconn.Arch, error) {
		m, err := cli.ParseModel(*model)
		if err != nil {
			return regconn.Arch{}, err
		}
		arch := regconn.Arch{
			Issue:           *issue,
			LoadLatency:     *load,
			IntCore:         *intCore,
			FPCore:          *fpCore,
			Model:           m,
			ReadPorts:       *ports,
			CombineConnects: true,
		}
		arch.Mode, err = cli.ParseMode(*mode)
		return arch, err
	}
}

func emit(args []string) error {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	profile := fs.String("profile", "", "workload profile (see rcgen list)")
	seed := fs.Int64("seed", 0, "workload seed")
	bmName := fs.String("bench", "", "trace a named benchmark instead of a generated workload")
	out := fs.String("o", "", "output trace file (required)")
	arch := archFlags(fs)
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("emit: -o FILE is required")
	}
	name := *bmName
	if name == "" {
		if *profile == "" {
			return fmt.Errorf("emit: -profile (with -seed) or -bench is required")
		}
		name = workload.Spec{Profile: *profile, Seed: *seed}.Name()
	} else if *profile != "" {
		return fmt.Errorf("emit: -bench and -profile are mutually exclusive")
	}
	a, err := arch()
	if err != nil {
		return err
	}
	bm, err := workload.ByName(name)
	if err != nil {
		return err
	}
	ex, err := regconn.Build(bm.Build(), a)
	if err != nil {
		return err
	}
	tr, err := ex.Trace(bm.Name)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	key, err := tr.Encode(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n  workload %s\n  key      %s\n  cycles   %d\n  instrs   %d\n",
		*out, tr.Name, key, tr.Cycles, tr.Instrs)
	return nil
}

// openTrace decodes one trace file named by the remaining args.
func openTrace(sub string, args []string) (*workload.Trace, string, error) {
	if len(args) != 1 {
		return nil, "", fmt.Errorf("%s: exactly one trace file argument required", sub)
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return workload.DecodeTrace(f)
}

func info(args []string) error {
	tr, key, err := openTrace("info", args)
	if err != nil {
		return err
	}
	fmt.Printf("trace    v%d, key %s\n", workload.TraceVersion, key)
	fmt.Printf("workload %s\n", tr.Name)
	fmt.Printf("arch     %s\n", tr.Arch)
	fmt.Printf("code     %d instructions, entry %s@%d, %d functions\n",
		len(tr.Code), tr.Entry, tr.EntryPC, len(tr.FuncStart))
	fmt.Printf("globals  %d (data digest %s)\n", len(tr.Globals), tr.MemSum)
	fmt.Printf("recorded ret=%d cycles=%d instrs=%d\n", tr.Expect, tr.Cycles, tr.Instrs)
	return nil
}

func replay(args []string) error {
	tr, key, err := openTrace("replay", args)
	if err != nil {
		return err
	}
	res, err := tr.Replay(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s (key %s)\n", tr.Name, key)
	fmt.Printf("result   %d (matches recorded oracle)\n", res.RetInt)
	fmt.Printf("cycles   %d (bit-identical to recording)\n", res.Cycles)
	fmt.Printf("instrs   %d (IPC %.2f)\n", res.Instrs, res.IPC())
	return nil
}

// smoke is the bounded CI gate: every profile × the first N seeds is
// generated, interpreter-pinned, built and simulated under a small
// backend matrix with the oracle and cycle ledger checked, and round-
// tripped through the trace format with a verified replay. It is what
// make verify runs.
func smoke(args []string) error {
	fs := flag.NewFlagSet("smoke", flag.ExitOnError)
	seeds := fs.Int64("seeds", 3, "seeds per profile")
	profilesFlag := fs.String("profiles", "", "comma-separated profiles (default all)")
	fs.Parse(args)

	profiles := workload.ProfileNames()
	if *profilesFlag != "" {
		profiles = strings.Split(*profilesFlag, ",")
	}
	archs := []regconn.Arch{
		{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: regconn.WithRC, CombineConnects: true, Verify: true},
		{Issue: 4, LoadLatency: 2, IntCore: 16, FPCore: 32, Mode: regconn.WithoutRC, Verify: true},
	}
	points := 0
	for _, p := range profiles {
		for seed := int64(0); seed < *seeds; seed++ {
			spec := workload.Spec{Profile: p, Seed: seed}
			bm, err := spec.Generate()
			if err != nil {
				return err
			}
			for _, a := range archs {
				ex, err := regconn.Build(bm.Build(), a)
				if err != nil {
					return fmt.Errorf("%s (%s): %w", bm.Name, a.Mode, err)
				}
				res, err := ex.Verify()
				if err != nil {
					return fmt.Errorf("%s (%s): %w", bm.Name, a.Mode, err)
				}
				if res.RetInt != bm.Expect {
					return fmt.Errorf("%s (%s): checksum %d, want %d", bm.Name, a.Mode, res.RetInt, bm.Expect)
				}
				if err := res.CheckLedger(); err != nil {
					return fmt.Errorf("%s (%s): %w", bm.Name, a.Mode, err)
				}
				points++
			}
			// Round-trip the RC point through the trace format: encode,
			// decode, replay — which re-verifies the recorded oracle
			// outcome and the bit-exact cycle count.
			ex, err := regconn.Build(bm.Build(), archs[0])
			if err != nil {
				return err
			}
			tr, err := ex.Trace(bm.Name)
			if err != nil {
				return err
			}
			var buf strings.Builder
			if _, err := tr.Encode(&buf); err != nil {
				return err
			}
			dt, _, err := workload.DecodeTrace(strings.NewReader(buf.String()))
			if err != nil {
				return fmt.Errorf("%s: trace round-trip: %w", bm.Name, err)
			}
			if _, err := dt.Replay(context.Background()); err != nil {
				return fmt.Errorf("%s: trace replay: %w", bm.Name, err)
			}
		}
	}
	fmt.Printf("rcgen smoke: %d profiles x %d seeds, %d simulated points, oracle+ledger+trace-replay all green\n",
		len(profiles), *seeds, points)
	return nil
}
