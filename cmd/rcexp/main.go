// Command rcexp regenerates the paper's tables and figures.
//
// Usage:
//
//	rcexp [-exp table1|fig7|fig8|fig9|fig10|fig11|fig12|fig13|models|combined|all]
//	      [-quick] [-bench name] [-workers n] [-stats]
//
// -quick restricts the suite to three representative benchmarks; -bench
// restricts it to one. -workers bounds the simulation worker pool (0 uses
// all CPUs, 1 disables parallelism); tables are identical at any setting.
// Output is aligned ASCII, one table per figure (or per benchmark for the
// per-benchmark figures 8 and 9). -stats skips the tables and instead
// emits a JSON array of per-point cycle-ledger statistics (stall
// breakdown, issue-slot histogram, map-table telemetry) over the golden
// benchmark×config grid, verifying the ledger invariant on every point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"regconn/internal/bench"
	"regconn/internal/exp"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment id or 'all'")
		quick   = flag.Bool("quick", false, "reduced three-benchmark suite")
		bmName  = flag.String("bench", "", "restrict to one benchmark")
		format  = flag.String("format", "text", "output format: text or csv")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = all CPUs)")
		stats   = flag.Bool("stats", false, "emit per-point cycle-ledger statistics as JSON")
	)
	flag.Parse()

	r := exp.NewRunner()
	if *quick {
		r = exp.NewQuickRunner()
	}
	r.Workers = *workers
	if *bmName != "" {
		bm, err := bench.ByName(*bmName)
		if err != nil {
			fatal(err)
		}
		r.Benchmarks = []bench.Benchmark{bm}
	}

	if *stats {
		pts, err := r.StatsReport()
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(pts); err != nil {
			fatal(err)
		}
		return
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = exp.Experiments()
	}
	for _, id := range ids {
		tables, err := r.Generate(id)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			if *format == "csv" {
				fmt.Printf("# %s — %s\n%s\n", t.ID, t.Title, t.CSV())
			} else {
				fmt.Println(t.Format())
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rcexp:", err)
	os.Exit(1)
}
